GO ?= go

.PHONY: build test lint staticcheck check bench bench-all soak crash-soak replica-soak certify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the repo's custom analyzer suite (DESIGN.md, "Static
# invariants") in whole-program mode, so the cross-package checks
# (wire<->server exhaustiveness, lock-order cycles) run too. The same
# binary works as a vettool: go vet -vettool=$$(go env GOPATH)/bin/esr-lint ./...
# CI uses scripts/lint-ci.sh instead, which builds the binary and runs
# it directly: `go run` collapses the exit-2 (operational error) code
# into 1.
lint:
	$(GO) run ./cmd/esr-lint ./...

# staticcheck runs the external linters pinned by .golangci.yml when they
# are installed; offline environments skip them instead of failing.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi
	@if command -v golangci-lint >/dev/null 2>&1; then golangci-lint run; \
	else echo "golangci-lint not installed; skipping"; fi

# check is the documented pre-merge gate.
check:
	$(GO) vet ./...
	$(MAKE) lint
	$(MAKE) staticcheck
	$(GO) test -race ./...

# soak runs the fault-injection soak (DESIGN.md §9) under the race
# detector: the banking workload over real TCP through drops, latency,
# partial reads/writes and mid-frame resets, asserting zero leaked
# goroutines/transactions and a conserved total balance. Short mode is
# the CI gate; drop -short for the heavier schedules.
soak:
	$(GO) test -race -short -count=1 ./internal/soak/ ./internal/faultnet/

# crash-soak runs the kill-and-restart durability soak (DESIGN.md §10)
# under the race detector: alternating clean and dirty kills over the
# write-ahead log with torn tails sheared at random crash points,
# asserting conservation, epsilon bounds and replay idempotency at every
# recovery. Short mode is the CI gate; drop -short for the seed sweep.
crash-soak:
	$(GO) test -race -short -count=1 -run 'TestCrashSoak' ./internal/soak/

# replica-soak runs the replication feed soak (DESIGN.md §13) under the
# race detector: a durable primary streams its WAL to bounded-stale
# followers over faultnet-wrapped connections (injected latency,
# fragmented reads, mid-stream resets) while the followers serve
# TIL-bounded queries. Asserts convergence to the primary's head,
# conservation of the bank total on every node, typed redirects for
# zero-epsilon queries, esr-check certification of the merged
# primary+replica trace, and zero leaked goroutines. Short mode is the
# CI gate; drop -short for the heavier run.
replica-soak:
	$(GO) test -race -short -count=1 -run 'TestReplicaSoak' ./internal/soak/

# certify is the end-to-end oracle gate (DESIGN.md §11): boot a real
# server with -trace, drive real clients, shut down, and require
# esr-check to certify the recorded history — once with epsilon bounds,
# once at ε=0 under strict conflict serializability. The soak targets
# above certify their own in-process traces; this target proves the
# on-disk trace schema round-trips through the full binary pipeline.
certify:
	sh scripts/certify-ci.sh

# bench runs the hot-path micro-benchmarks and emits BENCH_hotpath.json
# (archived by CI). `make bench-all` runs every benchmark including the
# figure sweeps.
bench:
	sh scripts/bench.sh

bench-all:
	$(GO) test -bench=. -benchmem
