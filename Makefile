GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the documented pre-merge gate.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
