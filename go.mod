module github.com/epsilondb/epsilondb

go 1.22
