package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/epsilondb/epsilondb/internal/core"
)

// Config controls how a Store creates objects.
type Config struct {
	// HistoryDepth is the number of committed writes retained per object;
	// zero means DefaultHistoryDepth (20, per the paper).
	HistoryDepth int
	// DefaultOIL and DefaultOEL are the object limits applied when
	// Create is called without explicit limits. Zero values mean the
	// limits are zero (SR at the object level), so configurations that
	// want unbounded objects must say core.NoLimit explicitly.
	DefaultOIL core.Distance
	DefaultOEL core.Distance
}

// Store is the object table of the data manager: all objects of the
// in-memory database, keyed by id. Object creation is serialized by an
// internal mutex; object access goes through each object's own lock.
type Store struct {
	mu      sync.RWMutex
	objects map[core.ObjectID]*Object
	cfg     Config

	// dur, when set, logs object creation and limit sweeps so recovery
	// can rebuild the table; see durability.go.
	dur Durability

	// accImported and accExported are the running totals of inconsistency
	// imported/exported by committed transactions; durability.go.
	accImported atomic.Int64
	accExported atomic.Int64

	// properMisses counts FindProper lookups that ran off the end of the
	// bounded history — the situation the paper sized K=20 to avoid.
	properMisses atomic.Int64
}

// NewStore returns an empty store.
func NewStore(cfg Config) *Store {
	return &Store{objects: make(map[core.ObjectID]*Object), cfg: cfg}
}

// Create adds an object with the store's default limits. It fails if the
// id already exists.
func (s *Store) Create(id core.ObjectID, initial core.Value) (*Object, error) {
	return s.CreateWithLimits(id, initial, s.cfg.DefaultOIL, s.cfg.DefaultOEL)
}

// CreateWithLimits adds an object with explicit object limits. With
// durability enabled the creation is logged and the call returns only
// once the record is durable, so a recovered store cannot be missing an
// object a logged commit writes to.
func (s *Store) CreateWithLimits(id core.ObjectID, initial core.Value, oil, oel core.Distance) (*Object, error) {
	if s.dur == nil {
		return s.insert(id, initial, oil, oel)
	}
	var o *Object
	err := s.dur.LogCreate(id, initial, oil, oel, func() error {
		var ierr error
		o, ierr = s.insert(id, initial, oil, oel)
		return ierr
	})
	if err != nil {
		return nil, err
	}
	return o, nil
}

// insert builds the object and adds it under the store mutex.
func (s *Store) insert(id core.ObjectID, initial core.Value, oil, oel core.Distance) (*Object, error) {
	o := NewObject(id, initial, oil, oel, s.cfg.HistoryDepth)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.objects[id]; dup {
		return nil, fmt.Errorf("storage: object %d already exists", id)
	}
	s.objects[id] = o
	return o, nil
}

// Get returns the object with the given id, or an error naming the
// missing id — the server surfaces it to the client as an abort.
func (s *Store) Get(id core.ObjectID) (*Object, error) {
	s.mu.RLock()
	o := s.objects[id]
	s.mu.RUnlock()
	if o == nil {
		return nil, fmt.Errorf("storage: object %d does not exist", id)
	}
	return o, nil
}

// Len returns the number of objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// IDs returns all object ids in ascending order, for deterministic
// iteration in tests and snapshots.
func (s *Store) IDs() []core.ObjectID {
	s.mu.RLock()
	ids := make([]core.ObjectID, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// objectsSnapshot copies the object pointers out under the store lock.
// Iterating the copy decouples per-object locking from the store mutex:
// a Create waiting on mu.Lock cannot interleave with the walk, and the
// walk never holds mu while blocking on an object lock.
func (s *Store) objectsSnapshot() []*Object {
	s.mu.RLock()
	objs := make([]*Object, 0, len(s.objects))
	for _, o := range s.objects {
		objs = append(objs, o)
	}
	s.mu.RUnlock()
	return objs
}

// NotedProperMiss bumps the counter of inexact proper-value lookups.
func (s *Store) NotedProperMiss() { s.properMisses.Add(1) }

// ProperMisses returns how many proper-value lookups were inexact.
func (s *Store) ProperMisses() int64 { return s.properMisses.Load() }

// SetAllLimits rewrites OIL/OEL on every object. The experiment harness
// uses it to sweep object-limit ranges between runs without rebuilding
// the database.
//
// Consistency contract: the object set is fixed at entry (objects
// created concurrently may or may not get the new limits), and each
// object's limits change atomically under its own lock, but the sweep as
// a whole is not atomic — a concurrent commit can observe some objects
// updated and others not. Callers that need a clean cut (the experiment
// harness) run it between measurement intervals.
func (s *Store) SetAllLimits(oil, oel core.Distance) {
	apply := func() {
		for _, o := range s.objectsSnapshot() {
			o.Lock()
			o.SetLimits(oil, oel)
			o.Unlock()
		}
	}
	if s.dur == nil {
		apply()
		return
	}
	// Log errors are deliberately swallowed: the in-memory sweep must
	// happen regardless, and a poisoned log already fails every commit.
	//lint:ignore errprop the sweep must apply even if the log is poisoned; commits already surface the failure
	_ = s.dur.LogSetAllLimits(oil, oel, apply)
}

// RangeError reports an invalid OIL/OEL draw range passed to Populate:
// inverted (hi < lo) or mixed finite/NoLimit endpoints. It is typed so
// callers can distinguish configuration errors from creation failures.
type RangeError struct {
	// Which names the range, "OIL" or "OEL".
	Which  string
	Lo, Hi core.Distance
}

// Error implements error.
func (e *RangeError) Error() string {
	if (e.Lo == core.NoLimit) != (e.Hi == core.NoLimit) {
		return fmt.Sprintf("storage: %s range mixes a finite bound and NoLimit (lo=%d hi=%d); use NoLimit for both or neither",
			e.Which, e.Lo, e.Hi)
	}
	return fmt.Sprintf("storage: %s range [%d,%d] is inverted", e.Which, e.Lo, e.Hi)
}

// validateRange rejects inverted and half-NoLimit ranges. [NoLimit,
// NoLimit] is valid and draws NoLimit.
func validateRange(which string, lo, hi core.Distance) error {
	if (lo == core.NoLimit) != (hi == core.NoLimit) {
		return &RangeError{Which: which, Lo: lo, Hi: hi}
	}
	if lo != core.NoLimit && hi < lo {
		return &RangeError{Which: which, Lo: lo, Hi: hi}
	}
	return nil
}

// Populate creates n objects with ids [0, n) whose initial values are
// drawn uniformly from [valueMin, valueMax] and whose OIL/OEL are drawn
// uniformly from the configured ranges, reproducing the start-up data
// file of the prototype ("the values of OIL and OEL are randomly
// generated within a specified range", §6; object values range from 1000
// to 9999, §7). Inverted or half-NoLimit limit ranges are rejected with
// a *RangeError rather than silently collapsed.
func (s *Store) Populate(n int, valueMin, valueMax core.Value, oilMin, oilMax, oelMin, oelMax core.Distance, rng *rand.Rand) error {
	if n <= 0 {
		return fmt.Errorf("storage: Populate needs a positive object count, got %d", n)
	}
	if valueMax < valueMin {
		return fmt.Errorf("storage: value range [%d,%d] is inverted", valueMin, valueMax)
	}
	if err := validateRange("OIL", oilMin, oilMax); err != nil {
		return err
	}
	if err := validateRange("OEL", oelMin, oelMax); err != nil {
		return err
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	span := valueMax - valueMin + 1
	for i := 0; i < n; i++ {
		v := valueMin + core.Value(rng.Int63n(span))
		oil := drawRange(oilMin, oilMax, rng)
		oel := drawRange(oelMin, oelMax, rng)
		if _, err := s.CreateWithLimits(core.ObjectID(i), v, oil, oel); err != nil {
			return err
		}
	}
	return nil
}

// drawRange draws uniformly from a validated [lo, hi]: both endpoints
// finite with lo <= hi, or both NoLimit (which draws NoLimit). A
// degenerate range collapses to lo.
func drawRange(lo, hi core.Distance, rng *rand.Rand) core.Distance {
	if lo == core.NoLimit || lo >= hi {
		return lo
	}
	return lo + core.Distance(rng.Int63n(hi-lo+1))
}

// TotalValue sums the committed values of all objects. Because writes
// may be dirty, the sum uses the shadow value for dirty objects; it is
// used by tests and examples to compute the consistent ground truth.
//
// Consistency contract: the object set is fixed at entry (snapshot under
// the store lock), then each object is read under its own lock, so every
// addend is a committed value — but the addends are not from one global
// instant. For zero-sum workloads (the soak's bank) the total is still
// exact once the system is quiescent; concurrent non-zero-sum commits
// can make the sum transiently unequal to any single serial state.
func (s *Store) TotalValue() core.Value {
	var total core.Value
	for _, o := range s.objectsSnapshot() {
		o.Lock()
		total += o.CommittedValue()
		o.Unlock()
	}
	return total
}
