package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/epsilondb/epsilondb/internal/core"
)

// Config controls how a Store creates objects.
type Config struct {
	// HistoryDepth is the number of committed writes retained per object;
	// zero means DefaultHistoryDepth (20, per the paper).
	HistoryDepth int
	// DefaultOIL and DefaultOEL are the object limits applied when
	// Create is called without explicit limits. Zero values mean the
	// limits are zero (SR at the object level), so configurations that
	// want unbounded objects must say core.NoLimit explicitly.
	DefaultOIL core.Distance
	DefaultOEL core.Distance
}

// Store is the object table of the data manager: all objects of the
// in-memory database, keyed by id. Object creation is serialized by an
// internal mutex; object access goes through each object's own lock.
type Store struct {
	mu      sync.RWMutex
	objects map[core.ObjectID]*Object
	cfg     Config

	// properMisses counts FindProper lookups that ran off the end of the
	// bounded history — the situation the paper sized K=20 to avoid.
	properMisses atomic.Int64
}

// NewStore returns an empty store.
func NewStore(cfg Config) *Store {
	return &Store{objects: make(map[core.ObjectID]*Object), cfg: cfg}
}

// Create adds an object with the store's default limits. It fails if the
// id already exists.
func (s *Store) Create(id core.ObjectID, initial core.Value) (*Object, error) {
	return s.CreateWithLimits(id, initial, s.cfg.DefaultOIL, s.cfg.DefaultOEL)
}

// CreateWithLimits adds an object with explicit object limits.
func (s *Store) CreateWithLimits(id core.ObjectID, initial core.Value, oil, oel core.Distance) (*Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.objects[id]; dup {
		return nil, fmt.Errorf("storage: object %d already exists", id)
	}
	o := NewObject(id, initial, oil, oel, s.cfg.HistoryDepth)
	s.objects[id] = o
	return o, nil
}

// Get returns the object with the given id, or an error naming the
// missing id — the server surfaces it to the client as an abort.
func (s *Store) Get(id core.ObjectID) (*Object, error) {
	s.mu.RLock()
	o := s.objects[id]
	s.mu.RUnlock()
	if o == nil {
		return nil, fmt.Errorf("storage: object %d does not exist", id)
	}
	return o, nil
}

// Len returns the number of objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// IDs returns all object ids in ascending order, for deterministic
// iteration in tests and snapshots.
func (s *Store) IDs() []core.ObjectID {
	s.mu.RLock()
	ids := make([]core.ObjectID, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NotedProperMiss bumps the counter of inexact proper-value lookups.
func (s *Store) NotedProperMiss() { s.properMisses.Add(1) }

// ProperMisses returns how many proper-value lookups were inexact.
func (s *Store) ProperMisses() int64 { return s.properMisses.Load() }

// SetAllLimits rewrites OIL/OEL on every object. The experiment harness
// uses it to sweep object-limit ranges between runs without rebuilding
// the database.
func (s *Store) SetAllLimits(oil, oel core.Distance) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, o := range s.objects {
		o.Lock()
		o.SetLimits(oil, oel)
		o.Unlock()
	}
}

// Populate creates n objects with ids [0, n) whose initial values are
// drawn uniformly from [valueMin, valueMax] and whose OIL/OEL are drawn
// uniformly from the configured ranges, reproducing the start-up data
// file of the prototype ("the values of OIL and OEL are randomly
// generated within a specified range", §6; object values range from 1000
// to 9999, §7).
func (s *Store) Populate(n int, valueMin, valueMax core.Value, oilMin, oilMax, oelMin, oelMax core.Distance, rng *rand.Rand) error {
	if n <= 0 {
		return fmt.Errorf("storage: Populate needs a positive object count, got %d", n)
	}
	if valueMax < valueMin {
		return fmt.Errorf("storage: value range [%d,%d] is inverted", valueMin, valueMax)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	span := valueMax - valueMin + 1
	for i := 0; i < n; i++ {
		v := valueMin + core.Value(rng.Int63n(span))
		oil := drawRange(oilMin, oilMax, rng)
		oel := drawRange(oelMin, oelMax, rng)
		if _, err := s.CreateWithLimits(core.ObjectID(i), v, oil, oel); err != nil {
			return err
		}
	}
	return nil
}

// drawRange draws uniformly from [lo, hi]; a degenerate or inverted range
// collapses to lo, and NoLimit endpoints stay NoLimit.
func drawRange(lo, hi core.Distance, rng *rand.Rand) core.Distance {
	if lo >= hi || lo == core.NoLimit {
		return lo
	}
	if hi == core.NoLimit {
		return core.NoLimit
	}
	return lo + core.Distance(rng.Int63n(hi-lo+1))
}

// TotalValue sums the committed values of all objects. Because writes may
// be dirty, the sum uses the shadow value for dirty objects; it is used
// by tests and examples to compute the consistent ground truth.
func (s *Store) TotalValue() core.Value {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total core.Value
	for _, o := range s.objects {
		o.Lock()
		if _, dirty := o.Dirty(); dirty {
			total += o.shadow
		} else {
			total += o.Value()
		}
		o.Unlock()
	}
	return total
}
