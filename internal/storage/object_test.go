package storage

import (
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

func ts(n int64) tsgen.Timestamp { return tsgen.Make(n, 0) }

func TestNewObjectSeedsHistoryWithInitialValue(t *testing.T) {
	o := NewObject(1, 5000, 10, 20, 0)
	if o.ID() != 1 || o.Value() != 5000 {
		t.Errorf("id=%d value=%d", o.ID(), o.Value())
	}
	if o.OIL() != 10 || o.OEL() != 20 {
		t.Errorf("oil=%d oel=%d", o.OIL(), o.OEL())
	}
	// A query older than every write must find the initial value.
	v, exact := o.FindProper(ts(1))
	if !exact || v != 5000 {
		t.Errorf("FindProper = %d,%v, want 5000,true", v, exact)
	}
}

func TestWriteCommitPublishesHistory(t *testing.T) {
	o := NewObject(1, 100, 0, 0, 0)
	if err := o.BeginWrite(7, ts(10), 150); err != nil {
		t.Fatal(err)
	}
	if o.Value() != 150 {
		t.Errorf("present value = %d, want 150 (dirty writes are visible)", o.Value())
	}
	if owner, dirty := o.Dirty(); !dirty || owner != 7 {
		t.Errorf("Dirty = %d,%v", owner, dirty)
	}
	// Before commit, the write is not part of the committed history.
	if v, _ := o.FindProper(ts(20)); v != 100 {
		t.Errorf("proper before commit = %d, want 100", v)
	}
	o.CommitWrite(7)
	if _, dirty := o.Dirty(); dirty {
		t.Error("still dirty after commit")
	}
	if v, exact := o.FindProper(ts(20)); !exact || v != 150 {
		t.Errorf("proper after commit = %d,%v, want 150,true", v, exact)
	}
	// A query that began before the write still finds the old value.
	if v, exact := o.FindProper(ts(5)); !exact || v != 100 {
		t.Errorf("older query proper = %d,%v, want 100,true", v, exact)
	}
}

func TestAbortRestoresShadow(t *testing.T) {
	o := NewObject(1, 100, 0, 0, 0)
	if err := o.BeginWrite(7, ts(10), 999); err != nil {
		t.Fatal(err)
	}
	o.AbortWrite(7)
	if o.Value() != 100 {
		t.Errorf("value after abort = %d, want 100", o.Value())
	}
	if o.WriteTS() != tsgen.None {
		t.Errorf("writeTS after abort = %v, want none", o.WriteTS())
	}
	if o.HistoryLen() != 1 {
		t.Errorf("aborted write entered history: len=%d", o.HistoryLen())
	}
}

func TestCommitAbortWrongOwnerIsNoop(t *testing.T) {
	o := NewObject(1, 100, 0, 0, 0)
	if err := o.BeginWrite(7, ts(10), 200); err != nil {
		t.Fatal(err)
	}
	o.CommitWrite(8) // different txn
	if _, dirty := o.Dirty(); !dirty {
		t.Error("commit by non-owner cleared dirty state")
	}
	o.AbortWrite(8)
	if o.Value() != 200 {
		t.Error("abort by non-owner restored shadow")
	}
	o.CommitWrite(7)
	o.CommitWrite(7) // double commit must be a no-op
	if o.HistoryLen() != 2 {
		t.Errorf("history len = %d, want 2", o.HistoryLen())
	}
}

func TestDoubleBeginWriteFails(t *testing.T) {
	o := NewObject(1, 100, 0, 0, 0)
	if err := o.BeginWrite(7, ts(10), 200); err != nil {
		t.Fatal(err)
	}
	if err := o.BeginWrite(8, ts(11), 300); err == nil {
		t.Error("second uncommitted write accepted")
	}
}

func TestHistoryRingEviction(t *testing.T) {
	o := NewObject(1, 0, 0, 0, 3)
	for i := int64(1); i <= 5; i++ {
		if err := o.BeginWrite(core.TxnID(i), ts(i*10), core.Value(i*100)); err != nil {
			t.Fatal(err)
		}
		o.CommitWrite(core.TxnID(i))
	}
	if o.HistoryLen() != 3 {
		t.Fatalf("history len = %d, want 3", o.HistoryLen())
	}
	// Writes at ts 30,40,50 are retained; a query at ts 45 finds 400.
	if v, exact := o.FindProper(ts(45)); !exact || v != 400 {
		t.Errorf("FindProper(45) = %d,%v, want 400,true", v, exact)
	}
	// A query at ts 15 needs the evicted write at ts 10: inexact, oldest
	// retained value returned.
	v, exact := o.FindProper(ts(15))
	if exact {
		t.Error("lookup past evicted history reported exact")
	}
	if v != 300 {
		t.Errorf("fallback proper = %d, want oldest retained 300", v)
	}
}

func TestRecordReadSplitsQueryAndUpdateTimestamps(t *testing.T) {
	o := NewObject(1, 0, 0, 0, 0)
	o.RecordRead(ts(10), true)
	o.RecordRead(ts(20), false)
	o.RecordRead(ts(15), true) // must not regress the query max
	if o.MaxQueryReadTS() != ts(15) {
		t.Errorf("MaxQueryReadTS = %v, want ts(15)", o.MaxQueryReadTS())
	}
	o.RecordRead(ts(30), true)
	if o.MaxQueryReadTS() != ts(30) || o.MaxUpdateReadTS() != ts(20) {
		t.Errorf("query=%v update=%v", o.MaxQueryReadTS(), o.MaxUpdateReadTS())
	}
}

func TestExportDistanceMaxOverReaders(t *testing.T) {
	o := NewObject(1, 0, 0, 0, 0)
	if _, any := o.ExportDistance(500); any {
		t.Error("ExportDistance with no readers reported readers")
	}
	o.AddReader(1, 100) // proper value 100
	o.AddReader(2, 130)
	o.AddReader(3, 90)
	if o.NumReaders() != 3 {
		t.Errorf("NumReaders = %d", o.NumReaders())
	}
	d, any := o.ExportDistance(120)
	if !any || d != 30 {
		t.Errorf("ExportDistance = %d,%v, want 30 (|120-90|)", d, any)
	}
	o.RemoveReader(3)
	d, _ = o.ExportDistance(120)
	if d != 20 {
		t.Errorf("ExportDistance after removal = %d, want 20", d)
	}
}

func TestChangedChannelBroadcastsOnResolve(t *testing.T) {
	o := NewObject(1, 0, 0, 0, 0)
	o.Lock()
	if err := o.BeginWrite(7, ts(10), 1); err != nil {
		t.Fatal(err)
	}
	ch := o.Changed()
	o.Unlock()

	select {
	case <-ch:
		t.Fatal("channel closed before resolve")
	default:
	}

	o.Lock()
	o.CommitWrite(7)
	o.Unlock()

	select {
	case <-ch:
	default:
		t.Fatal("channel not closed after commit")
	}

	// The replacement channel is fresh.
	o.Lock()
	ch2 := o.Changed()
	o.Unlock()
	select {
	case <-ch2:
		t.Fatal("replacement channel already closed")
	default:
	}
}

func TestSetLimits(t *testing.T) {
	o := NewObject(1, 0, 1, 2, 0)
	o.SetLimits(100, 200)
	if o.OIL() != 100 || o.OEL() != 200 {
		t.Errorf("limits = %d,%d", o.OIL(), o.OEL())
	}
}
