package storage

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

func TestStoreCreateGet(t *testing.T) {
	s := NewStore(Config{DefaultOIL: 5, DefaultOEL: 7})
	o, err := s.Create(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if o.OIL() != 5 || o.OEL() != 7 {
		t.Errorf("default limits not applied: %d,%d", o.OIL(), o.OEL())
	}
	got, err := s.Get(1)
	if err != nil || got != o {
		t.Errorf("Get = %v,%v", got, err)
	}
	if _, err := s.Get(2); err == nil {
		t.Error("Get of missing object succeeded")
	}
	if _, err := s.Create(1, 0); err == nil {
		t.Error("duplicate Create succeeded")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStoreIDsSorted(t *testing.T) {
	s := NewStore(Config{})
	for _, id := range []core.ObjectID{5, 1, 3} {
		if _, err := s.Create(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.IDs()
	want := []core.ObjectID{1, 3, 5}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestStorePopulateRanges(t *testing.T) {
	s := NewStore(Config{})
	rng := rand.New(rand.NewSource(42))
	// The paper's setup: 1000 objects valued 1000–9999.
	if err := s.Populate(1000, 1000, 9999, 50, 150, 20, 60, rng); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, id := range s.IDs() {
		o, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v := o.Value(); v < 1000 || v > 9999 {
			t.Fatalf("object %d value %d outside [1000,9999]", id, v)
		}
		if oil := o.OIL(); oil < 50 || oil > 150 {
			t.Fatalf("object %d OIL %d outside [50,150]", id, oil)
		}
		if oel := o.OEL(); oel < 20 || oel > 60 {
			t.Fatalf("object %d OEL %d outside [20,60]", id, oel)
		}
	}
}

func TestStorePopulateValidation(t *testing.T) {
	s := NewStore(Config{})
	if err := s.Populate(0, 0, 10, 0, 0, 0, 0, nil); err == nil {
		t.Error("zero count accepted")
	}
	if err := s.Populate(5, 10, 0, 0, 0, 0, 0, nil); err == nil {
		t.Error("inverted value range accepted")
	}
}

func TestStorePopulateNilRNGIsDeterministic(t *testing.T) {
	s1 := NewStore(Config{})
	s2 := NewStore(Config{})
	if err := s1.Populate(50, 0, 100, 0, 10, 0, 10, nil); err != nil {
		t.Fatal(err)
	}
	if err := s2.Populate(50, 0, 100, 0, 10, 0, 10, nil); err != nil {
		t.Fatal(err)
	}
	for _, id := range s1.IDs() {
		o1, _ := s1.Get(id)
		o2, _ := s2.Get(id)
		if o1.Value() != o2.Value() {
			t.Fatalf("nil-rng populate not deterministic at object %d", id)
		}
	}
}

func TestStoreSetAllLimits(t *testing.T) {
	s := NewStore(Config{})
	if err := s.Populate(10, 0, 10, 0, 5, 0, 5, nil); err != nil {
		t.Fatal(err)
	}
	s.SetAllLimits(core.NoLimit, 99)
	for _, id := range s.IDs() {
		o, _ := s.Get(id)
		if o.OIL() != core.NoLimit || o.OEL() != 99 {
			t.Fatalf("SetAllLimits missed object %d", id)
		}
	}
}

func TestStoreTotalValueUsesShadowForDirty(t *testing.T) {
	s := NewStore(Config{})
	a, _ := s.Create(1, 100)
	if _, err := s.Create(2, 200); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalValue(); got != 300 {
		t.Fatalf("TotalValue = %d, want 300", got)
	}
	a.Lock()
	if err := a.BeginWrite(9, tsgen.Make(5, 0), 9999); err != nil {
		t.Fatal(err)
	}
	a.Unlock()
	if got := s.TotalValue(); got != 300 {
		t.Errorf("TotalValue with dirty write = %d, want committed 300", got)
	}
	a.Lock()
	a.CommitWrite(9)
	a.Unlock()
	if got := s.TotalValue(); got != 10199 {
		t.Errorf("TotalValue after commit = %d, want 10199", got)
	}
}

func TestStoreProperMissCounter(t *testing.T) {
	s := NewStore(Config{})
	if s.ProperMisses() != 0 {
		t.Error("fresh store has misses")
	}
	s.NotedProperMiss()
	s.NotedProperMiss()
	if s.ProperMisses() != 2 {
		t.Errorf("ProperMisses = %d, want 2", s.ProperMisses())
	}
}

func TestDrawRangeEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := drawRange(5, 5, rng); got != 5 {
		t.Errorf("degenerate range = %d", got)
	}
	if got := drawRange(9, 3, rng); got != 9 {
		t.Errorf("inverted range = %d", got)
	}
	if got := drawRange(core.NoLimit, core.NoLimit, rng); got != core.NoLimit {
		t.Errorf("NoLimit lo = %d", got)
	}
	// Half-NoLimit ranges are rejected by validateRange before drawRange
	// runs; drawRange itself only ever sees validated ranges.
	if err := validateRange("OIL", 5, core.NoLimit); err == nil {
		t.Error("validateRange accepted a half-NoLimit range")
	}
}

// TestHistoryProperLookupProperty: for any sequence of committed writes
// with increasing timestamps and any probe timestamp, FindProper returns
// exactly the value of the last write older than the probe whenever that
// write is still retained.
func TestHistoryProperLookupProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := 1 + rng.Intn(6)
		o := NewObject(1, 42, 0, 0, depth)
		type w struct {
			ts    int64
			value core.Value
		}
		writes := []w{{0, 42}} // the seed entry at ts none
		tick := int64(1)
		n := rng.Intn(15)
		for i := 0; i < n; i++ {
			tick += 1 + int64(rng.Intn(5))
			v := core.Value(rng.Intn(10_000))
			if err := o.BeginWrite(core.TxnID(i+1), tsgen.Make(tick, 0), v); err != nil {
				return false
			}
			o.CommitWrite(core.TxnID(i + 1))
			writes = append(writes, w{tick, v})
		}
		for probe := 0; probe < 10; probe++ {
			pt := int64(rng.Intn(int(tick) + 5))
			probeTS := tsgen.Make(pt, 1) // site 1 > site 0 breaks ties upward
			got, exact := o.FindProper(probeTS)
			// Ground truth: last write with ts <= pt (site tiebreak makes
			// equal ticks strictly older than the probe).
			idx := -1
			for i, wr := range writes {
				if wr.ts <= pt {
					idx = i
				}
			}
			retainedFrom := len(writes) - o.HistoryLen()
			if idx >= retainedFrom {
				if !exact || got != writes[idx].value {
					return false
				}
			} else if exact {
				// The needed entry was evicted; exact must be false.
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPopulateRejectsBadRanges is the regression test for the silent
// drawRange collapse: inverted and half-NoLimit OIL/OEL ranges must be
// typed errors, not silently clamped draws.
func TestPopulateRejectsBadRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name         string
		oilLo, oilHi core.Distance
		oelLo, oelHi core.Distance
		wantErr      bool
		wantWhich    string
	}{
		{"both unlimited", core.NoLimit, core.NoLimit, core.NoLimit, core.NoLimit, false, ""},
		{"finite ranges", 10, 20, 5, 5, false, ""},
		{"inverted OIL", 20, 10, 1, 2, true, "OIL"},
		{"inverted OEL", 1, 2, 20, 10, true, "OEL"},
		{"half NoLimit OIL hi", 10, core.NoLimit, 1, 2, true, "OIL"},
		{"half NoLimit OIL lo", core.NoLimit, 10, 1, 2, true, "OIL"},
		{"half NoLimit OEL hi", 1, 2, 10, core.NoLimit, true, "OEL"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewStore(Config{})
			err := s.Populate(4, 100, 200, tc.oilLo, tc.oilHi, tc.oelLo, tc.oelHi, rng)
			if !tc.wantErr {
				if err != nil {
					t.Fatalf("Populate: unexpected error %v", err)
				}
				if s.Len() != 4 {
					t.Fatalf("populated %d objects, want 4", s.Len())
				}
				return
			}
			var re *RangeError
			if !errors.As(err, &re) {
				t.Fatalf("Populate error %v (%T), want *RangeError", err, err)
			}
			if re.Which != tc.wantWhich {
				t.Fatalf("RangeError.Which = %q, want %q", re.Which, tc.wantWhich)
			}
			if s.Len() != 0 {
				t.Fatalf("failed Populate left %d objects behind", s.Len())
			}
		})
	}
}

// TestTotalValueAndSetAllLimitsSnapshot pins the documented consistency
// contract: both walk a point-in-time snapshot of the object set taken
// under the store lock, then visit objects under their own locks, so
// concurrent creates cannot deadlock or corrupt the walk.
func TestTotalValueAndSetAllLimitsSnapshot(t *testing.T) {
	s := NewStore(Config{})
	for i := core.ObjectID(1); i <= 64; i++ {
		if _, err := s.CreateWithLimits(i, core.Value(i), core.NoLimit, core.NoLimit); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := core.ObjectID(1000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = s.CreateWithLimits(next, 1, core.NoLimit, core.NoLimit)
			next++
		}
	}()
	for i := 0; i < 200; i++ {
		if got := s.TotalValue(); got < 64*65/2 {
			t.Errorf("TotalValue %d lost committed value", got)
			break
		}
		s.SetAllLimits(core.Distance(i), core.Distance(i))
	}
	close(stop)
	wg.Wait()
	// Every object present before the last sweep carries its limits.
	o, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	o.Lock()
	oil, oel := o.OIL(), o.OEL()
	o.Unlock()
	if oil != 199 || oel != 199 {
		t.Fatalf("object 1 limits %d/%d after sweeps, want 199/199", oil, oel)
	}
}
