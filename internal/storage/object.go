// Package storage implements the data manager's object table: in-memory
// objects carrying their current value, per-object inconsistency limits
// (OIL/OEL), the bounded history of committed writes used to locate an
// object's proper value, the shadow value used for abort restoration, and
// the list of uncommitted query readers used by the export check.
//
// The paper's prototype kept the database in main memory on the server,
// simulated writes by changing the value in memory, used shadow paging so
// aborts restore previous values without rollback logs, and stored "the
// values of the last 20 writes on each object with the corresponding
// time stamps" to find proper values (§5.1, §6). This package reproduces
// all of that.
//
// Locking discipline: every Object embeds its own mutex. The concurrency
// control engine (internal/tso) locks an object, runs its decision logic
// via the methods below — all of which require the lock to be held — and
// unlocks it. Waiting for an uncommitted write to resolve uses the
// object's broadcast channel (see Object.Changed) rather than a
// condition variable so that waits can carry timeouts.
package storage

import (
	"fmt"
	"sync"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// DefaultHistoryDepth is the number of committed writes remembered per
// object. The paper derived 20 empirically by dividing the average
// duration of query ETs by that of update ETs.
const DefaultHistoryDepth = 20

// versioned is one committed write: the value it installed and the
// timestamp of the writing transaction.
type versioned struct {
	ts    tsgen.Timestamp
	value core.Value
}

// readerEntry records an uncommitted query ET that has read this object,
// together with the proper value of the object with respect to that query
// (§5.2: "for each object x, we maintain a list of uncommitted query ETs
// which have read its value, along with the respective proper values").
type readerEntry struct {
	txn    core.TxnID
	proper core.Value
}

// Object is one database object. All methods except ID and Lock/Unlock
// require the object's lock to be held by the caller.
type Object struct {
	mu sync.Mutex

	id core.ObjectID

	// oil and oel are the server-side object inconsistency limits,
	// randomly generated within a configured range in the paper's tests.
	oil core.Distance
	oel core.Distance

	// value is the present value — current, possibly uncommitted.
	value core.Value

	// writeTS is the timestamp of the write that produced value.
	writeTS tsgen.Timestamp

	// dirty marks an uncommitted write; dirtyOwner is its transaction.
	dirty      bool
	dirtyOwner core.TxnID

	// shadow and shadowTS save the pre-write state while dirty, the
	// shadow-paging technique of §6: on abort the object is restored
	// instead of rolled back from a log.
	shadow   core.Value
	shadowTS tsgen.Timestamp

	// history is a ring of the last historyDepth committed writes in
	// commit order; head indexes the oldest entry.
	history      []versioned
	historyHead  int
	historyDepth int

	// maxQueryReadTS / maxUpdateReadTS are the largest timestamps of
	// successful reads by query and update ETs respectively. The split
	// implements the case-3 condition "the last read was from a query
	// ET": a write older than an update read is a hard conflict, a write
	// older than only query reads may proceed under ESR.
	maxQueryReadTS  tsgen.Timestamp
	maxUpdateReadTS tsgen.Timestamp

	// readers lists uncommitted query ETs that read this object with
	// their proper values.
	readers map[core.TxnID]readerEntry

	// changed is closed and replaced whenever the dirty state resolves,
	// waking operations blocked by strict ordering. observed records
	// whether the current channel was handed to a waiter: broadcast only
	// pays the close-and-replace when someone may be selecting on it, so
	// uncontended commits do not allocate a channel per write.
	changed  chan struct{}
	observed bool

	// parked counts waiters that suspended a virtual timeline before
	// blocking on changed; waker credits them as runnable again, before
	// the channel closes, so simulated time cannot run ahead of a woken
	// waiter.
	parked int
	waker  func(n int)
}

// NewObject creates an object with an initial value and object limits.
// The history is seeded with the initial value at the reserved "none"
// timestamp so that proper-value lookups older than every write resolve
// to the initial state.
func NewObject(id core.ObjectID, initial core.Value, oil, oel core.Distance, historyDepth int) *Object {
	if historyDepth <= 0 {
		historyDepth = DefaultHistoryDepth
	}
	o := &Object{
		id:           id,
		oil:          oil,
		oel:          oel,
		value:        initial,
		historyDepth: historyDepth,
		readers:      make(map[core.TxnID]readerEntry),
		changed:      make(chan struct{}),
	}
	o.history = append(o.history, versioned{ts: tsgen.None, value: initial})
	return o
}

// ID returns the object's identifier. It is immutable and may be read
// without the lock.
func (o *Object) ID() core.ObjectID { return o.id }

// Lock acquires the object's mutex.
func (o *Object) Lock() { o.mu.Lock() }

// Unlock releases the object's mutex.
func (o *Object) Unlock() { o.mu.Unlock() }

// Value returns the present value — the current instance of the object,
// which under ESR may be an uncommitted write (§5.1: "the value read is
// the value of the current instance of the object which is the present
// value").
func (o *Object) Value() core.Value { return o.value }

// CommittedValue returns the last committed value: the shadow value while
// an uncommitted write is pending, the present value otherwise. Update-ET
// reads older than a pending write return this value so they never block
// on a younger writer.
func (o *Object) CommittedValue() core.Value {
	if o.dirty {
		return o.shadow
	}
	return o.value
}

// CommittedTS returns the timestamp of the last committed write.
func (o *Object) CommittedTS() tsgen.Timestamp {
	if o.dirty {
		return o.shadowTS
	}
	return o.writeTS
}

// OIL returns the object import limit.
func (o *Object) OIL() core.Distance { return o.oil }

// OEL returns the object export limit.
func (o *Object) OEL() core.Distance { return o.oel }

// SetLimits installs new object limits; the experiment harness uses this
// to sweep OIL/OEL ranges between runs.
func (o *Object) SetLimits(oil, oel core.Distance) {
	o.oil = oil
	o.oel = oel
}

// WriteTS returns the timestamp of the write that produced the present
// value (committed or dirty).
func (o *Object) WriteTS() tsgen.Timestamp { return o.writeTS }

// Dirty reports whether an uncommitted write is pending and by whom.
func (o *Object) Dirty() (core.TxnID, bool) { return o.dirtyOwner, o.dirty }

// MaxQueryReadTS returns the largest timestamp of a successful query read.
func (o *Object) MaxQueryReadTS() tsgen.Timestamp { return o.maxQueryReadTS }

// MaxUpdateReadTS returns the largest timestamp of a successful read by
// an update ET.
func (o *Object) MaxUpdateReadTS() tsgen.Timestamp { return o.maxUpdateReadTS }

// Changed returns a channel that is closed the next time the object's
// uncommitted state resolves (commit or abort of the writer). Callers
// capture the channel while holding the lock, release the lock, and then
// select on the channel and their timeout.
func (o *Object) Changed() <-chan struct{} {
	o.observed = true
	return o.changed
}

// broadcast wakes all waiters by closing and replacing the channel,
// crediting parked timeline waiters first. The channel is replaced only
// if it was ever observed; waiters fetch it under the same lock, so an
// unobserved channel has no one selecting on it.
func (o *Object) broadcast() {
	if o.parked > 0 && o.waker != nil {
		o.waker(o.parked)
	}
	o.parked = 0
	if o.observed {
		close(o.changed)
		o.changed = make(chan struct{})
		o.observed = false
	}
}

// IncParked records that the caller suspended its timeline and is about
// to block on Changed; the next broadcast credits it. Requires the lock.
func (o *Object) IncParked() { o.parked++ }

// SetWaker installs the credit callback invoked by broadcast with the
// number of parked waiters. Requires the lock; idempotent.
func (o *Object) SetWaker(f func(n int)) { o.waker = f }

// RecordRead registers a successful read at the given timestamp from a
// query or update ET, advancing the corresponding read-timestamp maximum.
func (o *Object) RecordRead(ts tsgen.Timestamp, fromQuery bool) {
	if fromQuery {
		if ts.After(o.maxQueryReadTS) {
			o.maxQueryReadTS = ts
		}
	} else {
		if ts.After(o.maxUpdateReadTS) {
			o.maxUpdateReadTS = ts
		}
	}
}

// FindProper locates the proper value of the object for a query with the
// given begin timestamp: the value written by the last write with a
// timestamp older than the query (§5.1), found by indexing backwards
// through the bounded write history. The second result reports whether
// the lookup was exact; when the history has already evicted the needed
// entry, the oldest retained value is returned with exact=false and the
// caller decides the policy (the prototype sized the history so this
// practically never happened).
func (o *Object) FindProper(queryTS tsgen.Timestamp) (core.Value, bool) {
	n := len(o.history)
	for i := n - 1; i >= 0; i-- {
		e := o.history[(o.historyHead+i)%n]
		if e.ts.Before(queryTS) {
			return e.value, true
		}
	}
	oldest := o.history[o.historyHead]
	return oldest.value, false
}

// HistoryLen returns the number of committed writes currently retained.
func (o *Object) HistoryLen() int { return len(o.history) }

// BeginWrite installs an uncommitted write: the shadow state is saved and
// the present value replaced. The caller must have established that no
// other uncommitted write is pending (strict ordering).
func (o *Object) BeginWrite(txn core.TxnID, ts tsgen.Timestamp, v core.Value) error {
	if o.dirty {
		return fmt.Errorf("storage: object %d already has an uncommitted write by txn %d", o.id, o.dirtyOwner)
	}
	o.shadow = o.value
	o.shadowTS = o.writeTS
	o.value = v
	o.writeTS = ts
	o.dirty = true
	o.dirtyOwner = txn
	return nil
}

// CommitWrite publishes the pending write of the given transaction into
// the committed history and wakes waiters. It is a no-op if the
// transaction has no pending write here.
func (o *Object) CommitWrite(txn core.TxnID) {
	if !o.dirty || o.dirtyOwner != txn {
		return
	}
	o.appendHistory(versioned{ts: o.writeTS, value: o.value})
	o.dirty = false
	o.dirtyOwner = 0
	o.broadcast()
}

// AbortWrite discards the pending write of the given transaction,
// restoring the shadow state, and wakes waiters. It is a no-op if the
// transaction has no pending write here.
func (o *Object) AbortWrite(txn core.TxnID) {
	if !o.dirty || o.dirtyOwner != txn {
		return
	}
	o.value = o.shadow
	o.writeTS = o.shadowTS
	o.dirty = false
	o.dirtyOwner = 0
	o.broadcast()
}

// appendHistory pushes a committed write into the bounded ring.
func (o *Object) appendHistory(v versioned) {
	if len(o.history) < o.historyDepth {
		o.history = append(o.history, v)
		return
	}
	o.history[o.historyHead] = v
	o.historyHead = (o.historyHead + 1) % len(o.history)
}

// AddReader records an uncommitted query ET that read this object along
// with its proper value, for later export checks against writes.
func (o *Object) AddReader(txn core.TxnID, proper core.Value) {
	o.readers[txn] = readerEntry{txn: txn, proper: proper}
}

// RemoveReader drops a query ET from the reader list when it commits or
// aborts.
func (o *Object) RemoveReader(txn core.TxnID) {
	delete(o.readers, txn)
}

// NumReaders returns the number of uncommitted query readers.
func (o *Object) NumReaders() int { return len(o.readers) }

// ExportDistance returns the inconsistency a write of newValue would
// export: the maximum over the uncommitted query readers of the distance
// between the new value and that reader's proper value (§5.2 — the
// maximum, not the sum used by Wu et al., matching the one-read-per-
// object assumption). The second result is false when there are no
// concurrent query readers, in which case the write exports nothing.
func (o *Object) ExportDistance(newValue core.Value) (core.Distance, bool) {
	if len(o.readers) == 0 {
		return 0, false
	}
	var max core.Distance
	for _, r := range o.readers {
		d := newValue - r.proper
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max, true
}
