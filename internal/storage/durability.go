package storage

import (
	"fmt"
	"sort"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// This file is the storage side of the durability layer (DESIGN.md §10):
// the interface the engines log through, the record types the write-ahead
// log persists, and the capture/restore API snapshots and replay use. The
// wal package implements Durability; a nil Durability keeps every commit
// path exactly as allocation-free as before.

// CommittedWrite is one object mutation inside a committed transaction,
// as carried by a commit log record and reapplied on replay.
type CommittedWrite struct {
	Object core.ObjectID
	Value  core.Value
	TS     tsgen.Timestamp
}

// TxnCommit is the durable payload of one commit: the write set plus the
// transaction's final accumulated import/export inconsistency, so replay
// rebuilds the epsilon accounting exactly, not just the data.
type TxnCommit struct {
	Txn      core.TxnID
	Kind     core.Kind
	TS       tsgen.Timestamp
	Imported core.Distance
	Exported core.Distance
	Writes   []CommittedWrite
}

// Ack is the durability ticket a logged commit waits on: Wait blocks
// until the record's batch has been fsynced (group commit) and returns
// the sync error, if any.
type Ack interface {
	Wait() error
}

// Durability is the logging interface the commit paths call. The
// contract that makes recovery exact:
//
//   - LogCommit appends the record AND runs publish (which makes the
//     writes visible in the store) atomically with respect to other log
//     appends and snapshot captures. Log order therefore respects the
//     dependency order between transactions, and a snapshot captured by
//     the implementation sees exactly the commits of a log prefix.
//   - LogCreate runs apply under the same exclusion before appending;
//     if apply fails no record is written.
//   - LogSetAllLimits likewise serializes the limit change with the log.
//
// Implementations must be safe for concurrent use. The wal package is
// the production implementation; tests may substitute their own.
type Durability interface {
	LogCommit(rec *TxnCommit, publish func()) (Ack, error)
	LogCreate(id core.ObjectID, initial core.Value, oil, oel core.Distance, apply func() error) error
	LogSetAllLimits(oil, oel core.Distance, apply func()) error
}

// SetDurability installs the durability implementation object creation
// and limit sweeps log through. It must be called before the store is
// shared between goroutines (at recovery/boot time); nil disables
// logging.
func (s *Store) SetDurability(d Durability) { s.dur = d }

// AddCommittedInconsistency accumulates the import/export inconsistency
// of one committed transaction into the store's running totals — the
// epsilon accounting that snapshots persist and replay rebuilds. With
// durability enabled the engines call this from inside the publish
// callback so the totals stay prefix-consistent with the log.
func (s *Store) AddCommittedInconsistency(imported, exported core.Distance) {
	if imported != 0 {
		s.accImported.Add(int64(imported))
	}
	if exported != 0 {
		s.accExported.Add(int64(exported))
	}
}

// CommittedInconsistency returns the accumulated import/export
// inconsistency of all committed transactions.
func (s *Store) CommittedInconsistency() (imported, exported core.Distance) {
	return core.Distance(s.accImported.Load()), core.Distance(s.accExported.Load())
}

// RestoreCommittedInconsistency overwrites the accumulated totals; used
// by recovery before replaying the log tail.
func (s *Store) RestoreCommittedInconsistency(imported, exported core.Distance) {
	s.accImported.Store(int64(imported))
	s.accExported.Store(int64(exported))
}

// ApplyCommitted installs a committed write directly: value, write
// timestamp and history entry, with no dirty/shadow transition. Replay
// uses it to reapply logged commits, and the MVTO engine uses it to
// mirror its private version chains into the store so snapshots see
// them. It fails if the object is missing or has an uncommitted write
// pending (replay stores are never dirty).
func (s *Store) ApplyCommitted(id core.ObjectID, v core.Value, ts tsgen.Timestamp) error {
	o, err := s.Get(id)
	if err != nil {
		return err
	}
	o.Lock()
	defer o.Unlock()
	if o.dirty {
		return fmt.Errorf("storage: ApplyCommitted on object %d with uncommitted write by txn %d", id, o.dirtyOwner)
	}
	o.value = v
	o.writeTS = ts
	o.appendHistory(versioned{ts: ts, value: v})
	return nil
}

// HistEntry is one committed write in an object's bounded history, in
// commit order (oldest first), as exposed to snapshots and tests.
type HistEntry struct {
	TS    tsgen.Timestamp
	Value core.Value
}

// ObjectState is the durable state of one object: committed value and
// timestamp, limits, and the full bounded history ring in commit order.
type ObjectState struct {
	ID      core.ObjectID
	Value   core.Value
	WriteTS tsgen.Timestamp
	OIL     core.Distance
	OEL     core.Distance
	History []HistEntry
}

// StoreState is a consistent snapshot of the whole store: every object's
// durable state plus the accumulated epsilon accounting.
type StoreState struct {
	Imported core.Distance
	Exported core.Distance
	Objects  []ObjectState
}

// CaptureState copies the committed state of every object, in id order.
// Uncommitted writes are excluded (the shadow value is captured): their
// commit records, if any, carry a later log position than the capture
// point. The wal package calls this under its own mutex so the capture
// is exactly consistent with a log prefix; see Durability.
func (s *Store) CaptureState() *StoreState {
	imported, exported := s.CommittedInconsistency()
	st := &StoreState{Imported: imported, Exported: exported}
	objs := s.objectsSnapshot()
	sort.Slice(objs, func(i, j int) bool { return objs[i].id < objs[j].id })
	st.Objects = make([]ObjectState, 0, len(objs))
	for _, o := range objs {
		o.Lock()
		os := ObjectState{
			ID:      o.id,
			Value:   o.CommittedValue(),
			WriteTS: o.CommittedTS(),
			OIL:     o.oil,
			OEL:     o.oel,
			History: o.historyEntries(),
		}
		o.Unlock()
		st.Objects = append(st.Objects, os)
	}
	return st
}

// RestoreObject installs one snapshotted object into the store. It is
// used only during recovery, before the store is shared; a duplicate id
// is a corruption error.
func (s *Store) RestoreObject(st ObjectState) error {
	depth := s.cfg.HistoryDepth
	if depth <= 0 {
		depth = DefaultHistoryDepth
	}
	o := NewObject(st.ID, st.Value, st.OIL, st.OEL, depth)
	o.writeTS = st.WriteTS
	hist := st.History
	if len(hist) > depth {
		hist = hist[len(hist)-depth:]
	}
	o.history = o.history[:0]
	o.historyHead = 0
	for _, h := range hist {
		o.history = append(o.history, versioned{ts: h.TS, value: h.Value})
	}
	if len(o.history) == 0 {
		// A snapshot always carries at least the seed entry; tolerate an
		// empty one by reseeding from the restored value.
		o.history = append(o.history, versioned{ts: st.WriteTS, value: st.Value})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.objects[st.ID]; dup {
		return fmt.Errorf("storage: RestoreObject: object %d already exists", st.ID)
	}
	s.objects[st.ID] = o
	return nil
}

// historyEntries copies the ring in commit order. Requires the lock.
func (o *Object) historyEntries() []HistEntry {
	n := len(o.history)
	out := make([]HistEntry, 0, n)
	for i := 0; i < n; i++ {
		e := o.history[(o.historyHead+i)%n]
		out = append(out, HistEntry{TS: e.ts, Value: e.value})
	}
	return out
}

// HistoryEntries returns a copy of the committed-write history in commit
// order (oldest first). It takes the object lock itself; used by tests
// and recovery checks.
func (o *Object) HistoryEntries() []HistEntry {
	o.Lock()
	defer o.Unlock()
	return o.historyEntries()
}
