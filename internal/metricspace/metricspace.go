// Package metricspace defines the database state spaces over which epsilon
// serializability (ESR) is applicable.
//
// ESR measures the inconsistency a transaction imports or exports as a
// distance between database states. For the accounting to be sound the
// state space must be a metric space (Kamath & Ramamritham 1993, §2):
//
//   - a distance function is defined over every pair of states,
//   - the distance is symmetric: distance(u, v) == distance(v, u),
//   - the triangle inequality holds:
//     distance(u, v) + distance(v, w) >= distance(u, w).
//
// Without the triangle inequality the system would have to recompute the
// distance over the entire history whenever a state changes; with it the
// inconsistency accumulated by a transaction can be maintained
// incrementally, one operation at a time.
//
// The values stored by the prototype are integer amounts (dollar balances,
// seat counts), so the canonical space is Absolute — the one-dimensional
// metric |u−v|. Additional spaces are provided for applications whose
// notion of divergence differs (e.g. Discrete for categorical data where
// any change is equally bad, or Scaled for per-object weighting).
package metricspace

import "fmt"

// Value is a database state of a single object. The prototype stores
// integer amounts; using a 64-bit integer keeps distance arithmetic exact.
type Value = int64

// Distance is the magnitude of inconsistency between two states. It is
// always non-negative.
type Distance = int64

// Space is a metric over single-object states. Implementations must
// satisfy the metric-space laws; see Verify for a property check.
type Space interface {
	// Distance returns the distance between two states. It must be
	// non-negative, symmetric, zero iff the arguments would be considered
	// identical by the space, and must satisfy the triangle inequality.
	Distance(u, v Value) Distance
	// Name identifies the space in configuration and diagnostics.
	Name() string
}

// Absolute is the canonical one-dimensional metric used throughout the
// paper: distance(u, v) = |u − v|. Bank balances and seat counts live in
// this space.
type Absolute struct{}

// Distance returns |u − v| computed without intermediate overflow.
func (Absolute) Distance(u, v Value) Distance {
	if u >= v {
		return u - v
	}
	return v - u
}

// Name implements Space.
func (Absolute) Name() string { return "absolute" }

// Discrete is the 0/1 metric: any two distinct states are at distance 1.
// It models categorical data where the application only cares whether a
// value changed at all, turning an epsilon bound into a bound on the
// number of concurrent updates observed.
type Discrete struct{}

// Distance returns 0 if the states are equal and 1 otherwise.
func (Discrete) Distance(u, v Value) Distance {
	if u == v {
		return 0
	}
	return 1
}

// Name implements Space.
func (Discrete) Name() string { return "discrete" }

// Scaled wraps another space and multiplies its distances by a positive
// integer weight. It supports the weighted-sum formulation of hierarchical
// bounds (§3.1): "inconsistency bounds could also be specified using
// relative weights for the nodes in the tree".
type Scaled struct {
	// Base is the underlying metric. A nil Base means Absolute.
	Base Space
	// Weight multiplies every distance. It must be positive; a zero
	// weight would collapse the space and break the metric laws.
	Weight int64
}

// Distance returns Weight × Base.Distance(u, v), saturating at the maximum
// Distance instead of overflowing.
func (s Scaled) Distance(u, v Value) Distance {
	base := s.base().Distance(u, v)
	if base == 0 || s.Weight <= 0 {
		return 0
	}
	const maxDistance = int64(^uint64(0) >> 1)
	if base > maxDistance/s.Weight {
		return maxDistance
	}
	return base * s.Weight
}

// Name implements Space.
func (s Scaled) Name() string {
	return fmt.Sprintf("scaled(%s,%d)", s.base().Name(), s.Weight)
}

func (s Scaled) base() Space {
	if s.Base == nil {
		return Absolute{}
	}
	return s.Base
}

// Verify checks the metric-space laws on a concrete triple of states and
// returns a descriptive error on the first violation. It is used by the
// property-based tests and is exported so applications can sanity-check
// custom spaces against their own data.
func Verify(s Space, u, v, w Value) error {
	duv := s.Distance(u, v)
	dvu := s.Distance(v, u)
	dvw := s.Distance(v, w)
	duw := s.Distance(u, w)
	switch {
	case duv < 0 || dvw < 0 || duw < 0:
		return fmt.Errorf("metricspace: %s: negative distance for states (%d,%d,%d)", s.Name(), u, v, w)
	case duv != dvu:
		return fmt.Errorf("metricspace: %s: asymmetric: d(%d,%d)=%d but d(%d,%d)=%d", s.Name(), u, v, duv, v, u, dvu)
	case s.Distance(u, u) != 0:
		return fmt.Errorf("metricspace: %s: d(%d,%d) != 0", s.Name(), u, u)
	case addSat(duv, dvw) < duw:
		return fmt.Errorf("metricspace: %s: triangle inequality violated: d(%d,%d)+d(%d,%d)=%d < d(%d,%d)=%d",
			s.Name(), u, v, v, w, addSat(duv, dvw), u, w, duw)
	}
	return nil
}

// addSat adds two non-negative distances, saturating at the maximum value.
func addSat(a, b Distance) Distance {
	const maxDistance = int64(^uint64(0) >> 1)
	if a > maxDistance-b {
		return maxDistance
	}
	return a + b
}
