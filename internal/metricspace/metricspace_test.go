package metricspace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAbsoluteDistance(t *testing.T) {
	cases := []struct {
		u, v Value
		want Distance
	}{
		{0, 0, 0},
		{5, 3, 2},
		{3, 5, 2},
		{-4, 4, 8},
		{1000, 9999, 8999},
		{math.MinInt64 + 1, 0, math.MaxInt64},
	}
	var s Absolute
	for _, c := range cases {
		if got := s.Distance(c.u, c.v); got != c.want {
			t.Errorf("Absolute.Distance(%d,%d) = %d, want %d", c.u, c.v, got, c.want)
		}
	}
}

func TestDiscreteDistance(t *testing.T) {
	var s Discrete
	if got := s.Distance(7, 7); got != 0 {
		t.Errorf("Discrete.Distance(7,7) = %d, want 0", got)
	}
	if got := s.Distance(7, 8); got != 1 {
		t.Errorf("Discrete.Distance(7,8) = %d, want 1", got)
	}
}

func TestScaledDistance(t *testing.T) {
	s := Scaled{Weight: 3}
	if got := s.Distance(10, 4); got != 18 {
		t.Errorf("Scaled{3}.Distance(10,4) = %d, want 18", got)
	}
	if got := s.Distance(4, 4); got != 0 {
		t.Errorf("Scaled{3}.Distance(4,4) = %d, want 0", got)
	}
}

func TestScaledDefaultsToAbsolute(t *testing.T) {
	s := Scaled{Weight: 1}
	if got := s.Distance(2, 9); got != 7 {
		t.Errorf("Scaled{nil base}.Distance(2,9) = %d, want 7", got)
	}
	if s.Name() != "scaled(absolute,1)" {
		t.Errorf("Name() = %q", s.Name())
	}
}

func TestScaledSaturatesInsteadOfOverflowing(t *testing.T) {
	s := Scaled{Weight: math.MaxInt64}
	got := s.Distance(0, 1000)
	if got != math.MaxInt64 {
		t.Errorf("saturating multiply = %d, want MaxInt64", got)
	}
	if got < 0 {
		t.Fatalf("overflowed to negative: %d", got)
	}
}

func TestScaledZeroWeightIsZero(t *testing.T) {
	s := Scaled{Weight: 0}
	if got := s.Distance(1, 100); got != 0 {
		t.Errorf("Scaled{0}.Distance = %d, want 0", got)
	}
}

func TestVerifyReportsAsymmetry(t *testing.T) {
	bad := asymmetricSpace{}
	if err := Verify(bad, 1, 2, 3); err == nil {
		t.Error("Verify accepted an asymmetric space")
	}
}

func TestVerifyReportsTriangleViolation(t *testing.T) {
	bad := squaredSpace{}
	// d(0,2) = 4 but d(0,1)+d(1,2) = 2: squared distance is not a metric.
	if err := Verify(bad, 0, 1, 2); err == nil {
		t.Error("Verify accepted a space violating the triangle inequality")
	}
}

func TestVerifyAcceptsMetricSpaces(t *testing.T) {
	for _, s := range []Space{Absolute{}, Discrete{}, Scaled{Weight: 7}} {
		if err := Verify(s, -5, 11, 42); err != nil {
			t.Errorf("Verify(%s) = %v", s.Name(), err)
		}
	}
}

// clamp keeps quick-generated values inside a range where distance sums
// cannot overflow, so the property tests exercise the metric laws rather
// than saturation behaviour.
func clamp(v Value) Value {
	const bound = int64(1) << 40
	if v > bound {
		return bound
	}
	if v < -bound {
		return -bound
	}
	return v
}

func TestAbsoluteMetricLawsProperty(t *testing.T) {
	prop := func(u, v, w Value) bool {
		return Verify(Absolute{}, clamp(u), clamp(v), clamp(w)) == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDiscreteMetricLawsProperty(t *testing.T) {
	prop := func(u, v, w Value) bool {
		return Verify(Discrete{}, u, v, w) == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestScaledMetricLawsProperty(t *testing.T) {
	prop := func(u, v, w Value, weight int64) bool {
		wt := weight % 1000
		if wt <= 0 {
			wt = 1
		}
		s := Scaled{Weight: wt}
		return Verify(s, clamp(u), clamp(v), clamp(w)) == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// asymmetricSpace deliberately breaks symmetry for Verify tests.
type asymmetricSpace struct{}

func (asymmetricSpace) Distance(u, v Value) Distance {
	if u < v {
		return v - u + 1
	}
	return u - v
}
func (asymmetricSpace) Name() string { return "asymmetric" }

// squaredSpace deliberately breaks the triangle inequality.
type squaredSpace struct{}

func (squaredSpace) Distance(u, v Value) Distance {
	d := u - v
	if d < 0 {
		d = -d
	}
	return d * d
}
func (squaredSpace) Name() string { return "squared" }
