// Package vclock provides the virtual timeline the experiment harness
// runs on: simulated service times advance a logical clock instead of
// sleeping on the wall clock, so a multiprogramming experiment that
// "lasts" one second completes in milliseconds of CPU and — more
// importantly — is immune to scheduler and timer noise on shared
// machines.
//
// The model is conservative discrete-event simulation over goroutines.
// Every participating goroutine is registered with the timeline; virtual
// time advances only when every registered goroutine is either asleep
// (Sleep) or suspended on an external event (Suspend/Resume around a
// channel wait). The last goroutine to deactivate performs the
// advancement: it moves the clock to the earliest sleeper deadline and
// wakes everything due.
//
// The paper's prototype measured wall-clock throughput on a quiet LAN;
// our substitution keeps the identical closed-loop structure — clients
// submitting operations that occupy server capacity for a service time —
// while making the "time" axis exact. A Real timeline with the same
// interface is provided for wall-clock runs (e.g. -paper-scale).
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Timeline abstracts virtual versus wall-clock time for the harness.
type Timeline interface {
	// Sleep blocks the calling (registered) goroutine for d.
	Sleep(d time.Duration)
	// Now returns the elapsed time since the timeline's origin.
	Now() time.Duration
	// Enter registers the calling goroutine as a participant. Every
	// participant must be registered before it first sleeps or blocks.
	Enter()
	// Exit deregisters the calling goroutine; it must not use the
	// timeline afterwards.
	Exit()
	// Suspend marks the caller as blocked on an external event (a
	// channel receive that another participant will satisfy). While
	// suspended the goroutine does not hold back virtual time.
	Suspend()
	// Resume marks the caller runnable again after Suspend.
	Resume()
}

// Real is the wall-clock timeline: Sleep is time.Sleep and
// Suspend/Resume are no-ops. The zero value is not valid; use NewReal.
type Real struct{ origin time.Time }

// NewReal returns a wall-clock timeline with origin now.
func NewReal() *Real { return &Real{origin: time.Now()} }

// Sleep implements Timeline.
func (*Real) Sleep(d time.Duration) { time.Sleep(d) }

// Now implements Timeline.
func (r *Real) Now() time.Duration { return time.Since(r.origin) }

// Enter implements Timeline.
func (*Real) Enter() {}

// Exit implements Timeline.
func (*Real) Exit() {}

// Suspend implements Timeline.
func (*Real) Suspend() {}

// Resume implements Timeline.
func (*Real) Resume() {}

// sleeper is one goroutine parked until a virtual deadline.
type sleeper struct {
	when time.Duration
	ch   chan struct{}
	idx  int
}

// sleeperHeap is a min-heap on deadlines.
type sleeperHeap []*sleeper

func (h sleeperHeap) Len() int           { return len(h) }
func (h sleeperHeap) Less(i, j int) bool { return h[i].when < h[j].when }
func (h sleeperHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *sleeperHeap) Push(x any)        { s := x.(*sleeper); s.idx = len(*h); *h = append(*h, s) }
func (h *sleeperHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// Virtual is the simulated timeline. The zero value is ready to use.
type Virtual struct {
	mu       sync.Mutex
	now      time.Duration
	active   int
	sleepers sleeperHeap
}

// NewVirtual returns a virtual timeline at time zero.
func NewVirtual() *Virtual { return &Virtual{} }

// Now implements Timeline.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Enter implements Timeline.
func (v *Virtual) Enter() {
	v.mu.Lock()
	v.active++
	v.mu.Unlock()
}

// Exit implements Timeline.
func (v *Virtual) Exit() {
	v.mu.Lock()
	v.deactivateLocked()
	v.mu.Unlock()
}

// Suspend implements Timeline.
func (v *Virtual) Suspend() {
	v.mu.Lock()
	v.deactivateLocked()
	v.mu.Unlock()
}

// Resume implements Timeline.
func (v *Virtual) Resume() {
	v.mu.Lock()
	v.active++
	v.mu.Unlock()
}

// Sleep implements Timeline. Non-positive durations yield without
// advancing time.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	s := &sleeper{when: v.now + d, ch: make(chan struct{})}
	heap.Push(&v.sleepers, s)
	v.deactivateLocked()
	v.mu.Unlock()
	<-s.ch
	// advanceLocked credited this goroutine as active before waking it.
}

// deactivateLocked retires the caller from the active set; the last
// active goroutine advances the clock.
func (v *Virtual) deactivateLocked() {
	v.active--
	if v.active <= 0 {
		v.advanceLocked()
	}
}

// advanceLocked moves the clock to the earliest deadline and wakes every
// sleeper due at the new time, crediting them as active before their
// channels close so the clock can never run ahead of a woken goroutine.
func (v *Virtual) advanceLocked() {
	for v.active <= 0 && len(v.sleepers) > 0 {
		next := v.sleepers[0].when
		if next > v.now {
			v.now = next
		}
		for len(v.sleepers) > 0 && v.sleepers[0].when <= v.now {
			s := heap.Pop(&v.sleepers).(*sleeper)
			v.active++
			close(s.ch)
		}
	}
	// active == 0 with no sleepers means every participant is suspended
	// on an external event (or has exited); someone else's Resume will
	// continue the simulation.
}

// Semaphore is a counting semaphore integrated with a Timeline. The
// integration has one crucial property: a releaser that hands its slot
// to a blocked acquirer credits the acquirer as active *before* waking
// it, so virtual time can never advance past a goroutine that is about
// to run. (A plain channel semaphore cannot do this — the releaser has
// no way to credit the blocked sender atomically with the handoff — and
// the resulting window systematically under-utilizes simulated
// capacity.)
type Semaphore struct {
	mu      sync.Mutex
	free    int
	waiters []chan struct{}
}

// NewSemaphore returns a semaphore with the given capacity.
func NewSemaphore(capacity int) *Semaphore {
	return &Semaphore{free: capacity}
}

// Acquire claims a slot on behalf of a registered goroutine, suspending
// the timeline while blocked. FIFO handoff keeps the simulation fair.
func (s *Semaphore) Acquire(t Timeline) {
	s.mu.Lock()
	if s.free > 0 {
		s.free--
		s.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	s.waiters = append(s.waiters, ch)
	s.mu.Unlock()
	t.Suspend()
	<-ch
	// The releaser already called t.Resume() on our behalf.
}

// Release returns a slot, handing it directly to the oldest waiter if
// one exists.
func (s *Semaphore) Release(t Timeline) {
	s.mu.Lock()
	if len(s.waiters) > 0 {
		ch := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.mu.Unlock()
		t.Resume() // credit the waiter before it wakes
		close(ch)
		return
	}
	s.free++
	s.mu.Unlock()
}

// Stats reports the timeline's internal state for tests.
func (v *Virtual) Stats() (active, sleeping int, now time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.active, len(v.sleepers), v.now
}
