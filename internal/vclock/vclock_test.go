package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVirtualSingleSleeperAdvances(t *testing.T) {
	v := NewVirtual()
	v.Enter()
	v.Sleep(5 * time.Millisecond)
	if got := v.Now(); got != 5*time.Millisecond {
		t.Errorf("Now = %v, want 5ms", got)
	}
	v.Sleep(3 * time.Millisecond)
	if got := v.Now(); got != 8*time.Millisecond {
		t.Errorf("Now = %v, want 8ms", got)
	}
	v.Exit()
}

func TestVirtualZeroSleepIsNoop(t *testing.T) {
	v := NewVirtual()
	v.Enter()
	v.Sleep(0)
	v.Sleep(-time.Second)
	if got := v.Now(); got != 0 {
		t.Errorf("Now = %v, want 0", got)
	}
	v.Exit()
}

func TestVirtualTwoSleepersInterleave(t *testing.T) {
	v := NewVirtual()
	var order []string
	var mu sync.Mutex
	log := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	run := func(name string, step time.Duration, n int) {
		defer wg.Done()
		defer v.Exit()
		for i := 0; i < n; i++ {
			v.Sleep(step)
			log(name)
		}
	}
	v.Enter()
	v.Enter()
	wg.Add(2)
	go run("a", 2*time.Millisecond, 3) // fires at 2, 4, 6
	go run("b", 3*time.Millisecond, 2) // fires at 3, 6
	wg.Wait()
	if got := v.Now(); got != 6*time.Millisecond {
		t.Errorf("final Now = %v, want 6ms", got)
	}
	// a(2) b(3) a(4) then a/b at 6 in either order.
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 5 || order[0] != "a" || order[1] != "b" || order[2] != "a" {
		t.Errorf("order = %v", order)
	}
}

func TestVirtualTimeDoesNotDependOnWallTime(t *testing.T) {
	v := NewVirtual()
	v.Enter()
	start := time.Now()
	for i := 0; i < 1000; i++ {
		v.Sleep(time.Second) // 1000 virtual seconds
	}
	elapsed := time.Since(start)
	v.Exit()
	if got := v.Now(); got != 1000*time.Second {
		t.Errorf("Now = %v, want 1000s", got)
	}
	if elapsed > 2*time.Second {
		t.Errorf("1000 virtual seconds took %v of wall time", elapsed)
	}
}

func TestVirtualSuspendResumeExternalEvent(t *testing.T) {
	// One goroutine suspends on a channel that a sleeping goroutine
	// closes after a virtual delay: the clock must advance through the
	// sleeper while the waiter is suspended, and the waiter must resume.
	v := NewVirtual()
	ready := make(chan struct{})
	var wg sync.WaitGroup
	var wokenAt time.Duration

	v.Enter() // waiter
	v.Enter() // sleeper
	wg.Add(2)
	go func() { // waiter
		defer wg.Done()
		defer v.Exit()
		v.Suspend()
		<-ready
		v.Resume()
		wokenAt = v.Now()
	}()
	go func() { // sleeper
		defer wg.Done()
		defer v.Exit()
		v.Sleep(7 * time.Millisecond)
		close(ready)
	}()
	wg.Wait()
	if wokenAt != 7*time.Millisecond {
		t.Errorf("waiter woke at %v, want 7ms", wokenAt)
	}
}

func TestVirtualCapacitySemaphoreModel(t *testing.T) {
	// Four workers share two capacity slots; each executes 10 operations
	// of 1ms service time. Total service demand is 40ms over capacity 2
	// → the simulation must end at exactly 20ms of virtual time.
	v := NewVirtual()
	slots := NewSemaphore(2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		v.Enter()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer v.Exit()
			for i := 0; i < 10; i++ {
				slots.Acquire(v)
				v.Sleep(time.Millisecond)
				slots.Release(v)
			}
		}()
	}
	wg.Wait()
	if got := v.Now(); got != 20*time.Millisecond {
		t.Errorf("virtual makespan = %v, want exactly 20ms", got)
	}
}

func TestVirtualDeterministicThroughput(t *testing.T) {
	// The capacity model must produce identical op counts run after run.
	run := func() int64 {
		v := NewVirtual()
		slots := NewSemaphore(3)
		stop := make(chan struct{})
		var ops atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < 5; w++ {
			v.Enter()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer v.Exit()
				for {
					select {
					case <-stop:
						return
					default:
					}
					slots.Acquire(v)
					v.Sleep(time.Millisecond)
					slots.Release(v)
					ops.Add(1)
				}
			}()
		}
		v.Enter() // coordinator
		v.Sleep(100 * time.Millisecond)
		close(stop)
		v.Exit()
		wg.Wait()
		return ops.Load()
	}
	a, b := run(), run()
	// Capacity 3 slots × 1ms → ~300 ops in 100 virtual ms.
	if a < 290 || a > 310 {
		t.Errorf("ops = %d, want ≈300", a)
	}
	// Virtual time removes timer noise; only the stop-boundary op can
	// differ between runs (goroutine scheduling may cut off the last
	// operation on either side of close(stop)).
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > 2 {
		t.Errorf("virtual runs differ: %d vs %d", a, b)
	}
}

func TestRealTimelineBasics(t *testing.T) {
	r := NewReal()
	r.Enter()
	r.Suspend()
	r.Resume()
	start := r.Now()
	r.Sleep(5 * time.Millisecond)
	if r.Now()-start < 5*time.Millisecond {
		t.Error("Real.Sleep returned early")
	}
	r.Exit()
}
