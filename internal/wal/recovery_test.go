package wal

import (
	"math/rand"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// buildLinearLog writes a known sequence — creates then single-write
// commits — into one segment with per-append fsync, and returns the
// MemFS plus the expected store state after each record (index k =
// state once the first k records applied).
func buildLinearLog(t *testing.T, creates, commits int) (*MemFS, []*storage.StoreState) {
	t.Helper()
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: -1, SegmentBytes: 1 << 30})
	expect := []*storage.StoreState{store.CaptureState()}
	for i := 0; i < creates; i++ {
		mustCreate(t, store, core.ObjectID(i+1), core.Value(1000+i))
		expect = append(expect, store.CaptureState())
	}
	for i := 0; i < commits; i++ {
		obj := core.ObjectID(i%creates + 1)
		ts := tsgen.Timestamp(i + 1)
		a := logWrite(t, store, l, core.TxnID(i+1), obj, core.Value(2000+i), ts, core.Distance(i%3), core.Distance(i%2))
		if err := a.Wait(); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		expect = append(expect, store.CaptureState())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return fs, expect
}

// segmentBoundaries walks the single segment's frames and returns the
// byte offset after the magic and after each complete record.
func segmentBoundaries(t *testing.T, fs *MemFS) (string, []int) {
	t.Helper()
	names, _ := fs.List()
	var seg string
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".seg" {
			if seg != "" {
				t.Fatalf("expected one segment, found %q and %q", seg, n)
			}
			seg = n
		}
	}
	if seg == "" {
		t.Fatal("no segment found")
	}
	data, err := fs.ReadFile(seg)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", seg, err)
	}
	bounds := []int{len(segMagic)}
	off := len(segMagic)
	for {
		_, next, ok, torn := nextFrame(data, off)
		if torn {
			t.Fatalf("unexpected torn frame at %d", off)
		}
		if !ok {
			break
		}
		off = next
		bounds = append(bounds, off)
	}
	return seg, bounds
}

// TestReplayAtEveryBoundary crashes the log at every record boundary
// and at a byte inside every record, and checks replay reproduces
// exactly the prefix state: IDs, values, history, accumulated
// inconsistency. Mid-record cuts must be reported as a torn tail and
// replay as the preceding boundary.
func TestReplayAtEveryBoundary(t *testing.T) {
	const creates, commits = 3, 12
	fs, expect := buildLinearLog(t, creates, commits)
	seg, bounds := segmentBoundaries(t, fs)
	if len(bounds) != creates+commits+1 {
		t.Fatalf("found %d boundaries, want %d", len(bounds), creates+commits+1)
	}
	full, err := fs.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	restore := func(n int) *MemFS {
		cut := NewMemFS()
		f, _ := cut.Create(seg)
		f.Write(full[:n])
		f.Sync()
		return cut
	}

	for k, bound := range bounds {
		// Clean cut exactly at a boundary: k records survive, no torn tail.
		cut := restore(bound)
		replayed, info, err := Replay(cut, storage.Config{HistoryDepth: testHistoryDepth})
		if err != nil {
			t.Fatalf("boundary %d: Replay: %v", k, err)
		}
		if info.TornTail {
			t.Fatalf("boundary %d: clean cut reported torn", k)
		}
		if info.Records != k {
			t.Fatalf("boundary %d: replayed %d records", k, info.Records)
		}
		sameState(t, expect[k], replayed.CaptureState(), "boundary cut")

		// Torn cut one byte past the boundary (inside the next record's
		// header): still k records, reported torn.
		if bound+1 <= len(full) && k < len(bounds)-1 {
			cut = restore(bound + 1)
			replayed, info, err = Replay(cut, storage.Config{HistoryDepth: testHistoryDepth})
			if err != nil {
				t.Fatalf("torn %d: Replay: %v", k, err)
			}
			if !info.TornTail {
				t.Fatalf("torn %d: cut at %d not reported torn", k, bound+1)
			}
			if info.Records != k {
				t.Fatalf("torn %d: replayed %d records, want %d", k, info.Records, k)
			}
			sameState(t, expect[k], replayed.CaptureState(), "torn cut")
		}
	}

	// Mid-record cuts through every byte of one representative record:
	// corrupting any byte of the payload or frame must not change the
	// decoded prefix.
	lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
	for n := lo + 1; n < hi; n++ {
		cut := restore(n)
		replayed, info, err := Replay(cut, storage.Config{HistoryDepth: testHistoryDepth})
		if err != nil {
			t.Fatalf("cut %d: Replay: %v", n, err)
		}
		if !info.TornTail || info.Records != len(bounds)-2 {
			t.Fatalf("cut %d: torn=%v records=%d", n, info.TornTail, info.Records)
		}
		sameState(t, expect[len(bounds)-2], replayed.CaptureState(), "mid-record cut")
	}
}

// TestReplayTwiceIdempotent replays the same directory twice and
// requires byte-identical states — replay has no hidden mutation of the
// log itself.
func TestReplayTwiceIdempotent(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: -1})
	for i := 0; i < 4; i++ {
		mustCreate(t, store, core.ObjectID(i+1), core.Value(10*int64(i)))
	}
	for i := 0; i < 10; i++ {
		a := logWrite(t, store, l, core.TxnID(i+1), core.ObjectID(i%4+1), core.Value(i), tsgen.Timestamp(i+1), 1, 1)
		if err := a.Wait(); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	if err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 10; i < 15; i++ {
		a := logWrite(t, store, l, core.TxnID(i+1), core.ObjectID(i%4+1), core.Value(i), tsgen.Timestamp(i+1), 0, 2)
		if err := a.Wait(); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	first, infoA, err := Replay(fs, storage.Config{HistoryDepth: testHistoryDepth})
	if err != nil {
		t.Fatalf("first Replay: %v", err)
	}
	second, infoB, err := Replay(fs, storage.Config{HistoryDepth: testHistoryDepth})
	if err != nil {
		t.Fatalf("second Replay: %v", err)
	}
	if infoA.Records != infoB.Records || infoA.SnapshotLSN != infoB.SnapshotLSN {
		t.Fatalf("replay infos differ: %+v vs %+v", infoA, infoB)
	}
	sameState(t, first.CaptureState(), second.CaptureState(), "replay twice")
	sameState(t, store.CaptureState(), first.CaptureState(), "replay vs live")
}

// TestRecoverContinuesLog reopens via Recover, appends more, and checks
// LSNs continue without collision (the tail replays on a third open).
func TestRecoverContinuesLog(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: -1})
	mustCreate(t, store, 1, 5)
	a := logWrite(t, store, l, 1, 1, 50, 1, 0, 0)
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	store2, l2, info, err := Recover(fs, storage.Config{HistoryDepth: testHistoryDepth}, Options{SyncInterval: -1})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if info.Records != 2 {
		t.Fatalf("recovered %d records, want 2", info.Records)
	}
	sameState(t, store.CaptureState(), store2.CaptureState(), "recovered store")
	a = logWrite(t, store2, l2, 2, 1, 60, 2, 0, 0)
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	store3, info3, err := Replay(fs, storage.Config{HistoryDepth: testHistoryDepth})
	if err != nil {
		t.Fatalf("third Replay: %v", err)
	}
	if info3.Records != 3 {
		t.Fatalf("third replay saw %d records, want 3", info3.Records)
	}
	sameState(t, store2.CaptureState(), store3.CaptureState(), "after reopen append")
	if info3.NextLSN <= info.NextLSN {
		t.Fatalf("NextLSN did not advance: %d -> %d", info.NextLSN, info3.NextLSN)
	}
}

// TestRandomCrashRecover is the randomized end-to-end property: run
// commits, crash with a random torn tail, recover, and require the
// recovered state to be a clean prefix of the committed sequence —
// every acked commit present, history depth intact.
func TestRandomCrashRecover(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fs := NewMemFS()
		store, l := openTest(t, fs, Options{SyncInterval: time.Hour})
		const objects = 4
		for id := core.ObjectID(1); id <= objects; id++ {
			mustCreate(t, store, id, 100)
		}
		// Acked prefix: these are durable and MUST survive any crash.
		acked := 0
		ackedState := store.CaptureState()
		total := 5 + rng.Intn(20)
		for i := 0; i < total; i++ {
			a := logWrite(t, store, l, core.TxnID(i+1), core.ObjectID(i%objects+1),
				core.Value(rng.Int63n(1000)), tsgen.Timestamp(i+1), core.Distance(rng.Int63n(5)), 0)
			if rng.Intn(3) == 0 {
				if err := l.Sync(); err != nil {
					t.Fatalf("seed %d: Sync: %v", seed, err)
				}
				if err := a.Wait(); err != nil {
					t.Fatalf("seed %d: ack: %v", seed, err)
				}
				acked = i + 1
				ackedState = store.CaptureState()
			}
		}
		l.Kill()
		fs.Crash(rng)

		replayed, info, err := Replay(fs, storage.Config{HistoryDepth: testHistoryDepth})
		if err != nil {
			t.Fatalf("seed %d: Replay: %v", seed, err)
		}
		if info.Commits < acked {
			t.Fatalf("seed %d: lost acked commits: recovered %d < acked %d", seed, info.Commits, acked)
		}
		// The recovered state must match the in-memory state at whatever
		// prefix survived; rebuild it by replaying the log into a second
		// store and comparing (idempotency), and check the acked prefix by
		// object count and history depth invariants.
		again, _, err := Replay(fs, storage.Config{HistoryDepth: testHistoryDepth})
		if err != nil {
			t.Fatalf("seed %d: second Replay: %v", seed, err)
		}
		sameState(t, replayed.CaptureState(), again.CaptureState(), "crash replay idempotent")
		if got := replayed.Len(); got != objects {
			t.Fatalf("seed %d: recovered %d objects, want %d", seed, got, objects)
		}
		if info.Commits == acked {
			sameState(t, ackedState, replayed.CaptureState(), "acked prefix state")
		}
	}
}
