package wal

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

const testHistoryDepth = 4

// openTest builds a store wired to a fresh log over fs.
func openTest(t *testing.T, fs FS, opts Options) (*storage.Store, *Log) {
	t.Helper()
	store := storage.NewStore(storage.Config{HistoryDepth: testHistoryDepth})
	l, err := Open(fs, store, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	store.SetDurability(l)
	return store, l
}

// logWrite appends one single-write commit record without waiting for
// durability; the publish callback applies it to the store.
func logWrite(t *testing.T, store *storage.Store, l *Log, txn core.TxnID, obj core.ObjectID, v core.Value, ts tsgen.Timestamp, imported, exported core.Distance) storage.Ack {
	t.Helper()
	rec := &storage.TxnCommit{
		Txn: txn, Kind: core.Update, TS: ts,
		Imported: imported, Exported: exported,
		Writes: []storage.CommittedWrite{{Object: obj, Value: v, TS: ts}},
	}
	a, err := l.LogCommit(rec, func() {
		for _, w := range rec.Writes {
			if err := store.ApplyCommitted(w.Object, w.Value, w.TS); err != nil {
				t.Errorf("ApplyCommitted(%d): %v", w.Object, err)
			}
		}
		store.AddCommittedInconsistency(rec.Imported, rec.Exported)
	})
	if err != nil {
		t.Fatalf("LogCommit: %v", err)
	}
	return a
}

func mustCreate(t *testing.T, store *storage.Store, id core.ObjectID, v core.Value) {
	t.Helper()
	if _, err := store.CreateWithLimits(id, v, core.NoLimit, core.NoLimit); err != nil {
		t.Fatalf("CreateWithLimits(%d): %v", id, err)
	}
}

func sameState(t *testing.T, want, got *storage.StoreState, label string) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: states differ\nwant: %+v\ngot:  %+v", label, want, got)
	}
}

// TestGroupCommitSingleFsync checks the core group-commit property: N
// commits enqueued while the committer is idle are made durable by ONE
// flush and one fsync, observed via the batch-size histogram.
func TestGroupCommitSingleFsync(t *testing.T) {
	fs := NewMemFS()
	col := &metrics.Collector{}
	// Hour-long interval and huge batch: nothing flushes until the Sync
	// barrier nudges the committer.
	store, l := openTest(t, fs, Options{SyncInterval: time.Hour, Collector: col})
	mustCreate(t, store, 1, 100)
	before := col.WALBatchSnapshot()

	const n = 32
	acks := make([]storage.Ack, n)
	for i := 0; i < n; i++ {
		acks[i] = logWrite(t, store, l, core.TxnID(i+1), 1, core.Value(100+i), tsgen.Timestamp(i+1), 0, 1)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	for i, a := range acks {
		if err := a.Wait(); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	batches := col.WALBatchSnapshot().Sub(before)
	if batches.Count != 1 {
		t.Fatalf("expected one batch flush, got %d", batches.Count)
	}
	if batches.Sum < n {
		t.Fatalf("batch covered %d acks, want >= %d", batches.Sum, n)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestPerAppendFsync checks the negative-interval baseline: every commit
// is its own flush.
func TestPerAppendFsync(t *testing.T) {
	fs := NewMemFS()
	col := &metrics.Collector{}
	store, l := openTest(t, fs, Options{SyncInterval: -1, Collector: col})
	mustCreate(t, store, 1, 100)
	before := col.WALBatchSnapshot()

	const n = 8
	for i := 0; i < n; i++ {
		a := logWrite(t, store, l, core.TxnID(i+1), 1, core.Value(200+i), tsgen.Timestamp(i+1), 0, 0)
		if err := a.Wait(); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	batches := col.WALBatchSnapshot().Sub(before)
	if batches.Count != n {
		t.Fatalf("expected %d single-record flushes, got %d", n, batches.Count)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestConcurrentCommitsReplay hammers the log from many goroutines and
// checks replay reproduces the final store exactly.
func TestConcurrentCommitsReplay(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: 200 * time.Microsecond})
	const objects = 8
	for id := core.ObjectID(1); id <= objects; id++ {
		mustCreate(t, store, id, core.Value(1000*int64(id)))
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	nextTS := tsgen.Timestamp(0)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Object timestamps must be monotone per object for the
				// history to be well-formed; serialize issuance.
				mu.Lock()
				nextTS++
				ts := nextTS
				mu.Unlock()
				obj := core.ObjectID(uint64(ts)%objects + 1)
				rec := &storage.TxnCommit{
					Txn: core.TxnID(ts), Kind: core.Update, TS: ts,
					Exported: 2,
					Writes:   []storage.CommittedWrite{{Object: obj, Value: core.Value(ts), TS: ts}},
				}
				a, err := l.LogCommit(rec, func() {
					mu.Lock()
					defer mu.Unlock()
					_ = store.ApplyCommitted(obj, core.Value(ts), ts)
					store.AddCommittedInconsistency(0, 2)
				})
				if err != nil {
					t.Errorf("LogCommit: %v", err)
					return
				}
				if err := a.Wait(); err != nil {
					t.Errorf("ack: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	replayed, info, err := Replay(fs, storage.Config{HistoryDepth: testHistoryDepth})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if info.Commits != 200 || info.Creates != objects {
		t.Fatalf("replayed %d commits / %d creates, want 200 / %d", info.Commits, info.Creates, objects)
	}
	sameState(t, store.CaptureState(), replayed.CaptureState(), "after concurrent commits")
}

// TestSegmentRoll forces tiny segments and checks the log spreads over
// several files and still replays.
func TestSegmentRoll(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: -1, SegmentBytes: 128})
	mustCreate(t, store, 1, 10)
	for i := 0; i < 20; i++ {
		a := logWrite(t, store, l, core.TxnID(i+1), 1, core.Value(i), tsgen.Timestamp(i+1), 0, 0)
		if err := a.Wait(); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, _ := fs.List()
	segs := 0
	for _, n := range names {
		if strings.HasSuffix(n, ".seg") {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("expected multiple segments, got %d (%v)", segs, names)
	}
	replayed, _, err := Replay(fs, storage.Config{HistoryDepth: testHistoryDepth})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	sameState(t, store.CaptureState(), replayed.CaptureState(), "after segment rolls")
}

// TestSnapshotTruncates checks Snapshot writes a durable snapshot,
// removes covered segments, and the directory still replays exactly —
// including records appended after the snapshot.
func TestSnapshotTruncates(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: -1})
	mustCreate(t, store, 1, 10)
	mustCreate(t, store, 2, 20)
	for i := 0; i < 5; i++ {
		a := logWrite(t, store, l, core.TxnID(i+1), 1, core.Value(100+i), tsgen.Timestamp(i+1), 3, 0)
		if err := a.Wait(); err != nil {
			t.Fatalf("pre-snapshot ack %d: %v", i, err)
		}
	}
	if err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	names, _ := fs.List()
	var segs, snaps int
	for _, n := range names {
		if strings.HasSuffix(n, ".seg") {
			segs++
		}
		if strings.HasSuffix(n, ".snap") {
			snaps++
		}
	}
	if segs != 1 || snaps != 1 {
		t.Fatalf("after snapshot want 1 segment + 1 snapshot, got %d + %d (%v)", segs, snaps, names)
	}
	// Post-snapshot tail.
	for i := 5; i < 9; i++ {
		a := logWrite(t, store, l, core.TxnID(i+1), 2, core.Value(200+i), tsgen.Timestamp(i+1), 0, 4)
		if err := a.Wait(); err != nil {
			t.Fatalf("post-snapshot ack %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	replayed, info, err := Replay(fs, storage.Config{HistoryDepth: testHistoryDepth})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if info.SnapshotLSN == 0 {
		t.Fatalf("replay did not use the snapshot: %+v", info)
	}
	if info.Commits != 4 {
		t.Fatalf("replayed %d tail commits, want 4", info.Commits)
	}
	sameState(t, store.CaptureState(), replayed.CaptureState(), "snapshot + tail")
}

// TestAutoSnapshot checks SnapshotEvery triggers truncation on its own.
func TestAutoSnapshot(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: -1, SnapshotEvery: 4})
	mustCreate(t, store, 1, 10)
	for i := 0; i < 16; i++ {
		a := logWrite(t, store, l, core.TxnID(i+1), 1, core.Value(i), tsgen.Timestamp(i+1), 0, 0)
		if err := a.Wait(); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		names, _ := fs.List()
		snaps := 0
		for _, n := range names {
			if strings.HasSuffix(n, ".snap") {
				snaps++
			}
		}
		if snaps >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic snapshot appeared: %v", names)
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	replayed, _, err := Replay(fs, storage.Config{HistoryDepth: testHistoryDepth})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	sameState(t, store.CaptureState(), replayed.CaptureState(), "auto snapshot")
}

// TestLimitsRecordReplays checks a SetAllLimits sweep routed through the
// store's durability hook is replayed.
func TestLimitsRecordReplays(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: -1})
	mustCreate(t, store, 1, 10)
	mustCreate(t, store, 2, 20)
	store.SetAllLimits(500, 700)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	replayed, _, err := Replay(fs, storage.Config{HistoryDepth: testHistoryDepth})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	sameState(t, store.CaptureState(), replayed.CaptureState(), "limits sweep")
	o, err := replayed.Get(1)
	if err != nil {
		t.Fatalf("Get(1): %v", err)
	}
	o.Lock()
	oil, oel := o.OIL(), o.OEL()
	o.Unlock()
	if oil != 500 || oel != 700 {
		t.Fatalf("replayed limits = %d/%d, want 500/700", oil, oel)
	}
}

// TestClosedLogRejectsAppends checks the post-Close error surface.
func TestClosedLogRejectsAppends(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: -1})
	mustCreate(t, store, 1, 10)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, err := l.LogCommit(&storage.TxnCommit{Txn: 1, Kind: core.Update}, nil)
	if err != ErrLogClosed {
		t.Fatalf("LogCommit after Close = %v, want ErrLogClosed", err)
	}
	if _, err := store.CreateWithLimits(9, 1, core.NoLimit, core.NoLimit); err == nil {
		t.Fatal("CreateWithLimits after Close should fail")
	}
	if err := l.Sync(); err != ErrLogClosed {
		t.Fatalf("Sync after Close = %v, want ErrLogClosed", err)
	}
}

// TestKillFailsPendingAcks checks Kill resolves in-flight acks with
// ErrLogKilled without flushing.
func TestKillFailsPendingAcks(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: time.Hour})
	mustCreate(t, store, 1, 10)
	if err := l.Sync(); err != nil { // flush the create
		t.Fatalf("Sync: %v", err)
	}
	a := logWrite(t, store, l, 1, 1, 99, 1, 0, 0)
	l.Kill()
	if err := a.Wait(); err != ErrLogKilled {
		t.Fatalf("pending ack after Kill = %v, want ErrLogKilled", err)
	}
	// The unflushed write must not be in the durable image.
	fs.Crash(nil)
	replayed, info, err := Replay(fs, storage.Config{HistoryDepth: testHistoryDepth})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if info.Commits != 0 {
		t.Fatalf("killed batch leaked %d commits into the log", info.Commits)
	}
	o, err := replayed.Get(1)
	if err != nil {
		t.Fatalf("Get(1): %v", err)
	}
	o.Lock()
	v := o.CommittedValue()
	o.Unlock()
	if v != 10 {
		t.Fatalf("replayed value %d, want pre-kill 10", v)
	}
}
