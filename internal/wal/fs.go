package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the small filesystem surface the log needs: flat namespace (one
// directory), append-only files. DirFS is the real implementation;
// MemFS simulates crashes by discarding unsynced bytes, the torn-write
// counterpart of the faultnet package's network faults.
type FS interface {
	// Create opens name for appending, truncating any existing content.
	Create(name string) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// List returns the names in the directory, sorted.
	List() ([]string, error)
	// Rename atomically replaces newName with oldName's content.
	Rename(oldName, newName string) error
	// Remove deletes name; missing files are not an error.
	Remove(name string) error
	// SyncDir makes completed creates/renames/removes durable.
	SyncDir() error
}

// File is an append-only log file handle.
type File interface {
	Write(p []byte) (int, error)
	// Sync makes all written bytes durable.
	Sync() error
	Close() error
}

// DirFS is the production FS over one real directory.
type DirFS struct {
	dir string
}

// NewDirFS returns an FS rooted at dir, creating it if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	return &DirFS{dir: dir}, nil
}

// Create implements FS.
func (d *DirFS) Create(name string) (File, error) {
	return os.OpenFile(filepath.Join(d.dir, name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

// ReadFile implements FS.
func (d *DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.dir, name))
}

// List implements FS.
func (d *DirFS) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (d *DirFS) Rename(oldName, newName string) error {
	return os.Rename(filepath.Join(d.dir, oldName), filepath.Join(d.dir, newName))
}

// Remove implements FS.
func (d *DirFS) Remove(name string) error {
	err := os.Remove(filepath.Join(d.dir, name))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// SyncDir implements FS by fsyncing the directory fd, the POSIX way to
// make renames and removals durable.
func (d *DirFS) SyncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// MemFS is an in-memory FS that tracks which bytes have been synced, so
// tests can crash the "machine" at any point and observe exactly what a
// real disk would have retained: synced prefixes survive, unsynced tails
// are lost or torn.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

type memFile struct {
	fs     *MemFS
	name   string
	data   []byte
	synced int
}

// Create implements FS. Directory metadata (the file's existence) is
// modeled as immediately durable; torn-tail coverage comes from data
// bytes, which is where the interesting failure modes live.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{fs: m, name: name}
	m.files[name] = f
	return f, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: memfs: %s: %w", name, os.ErrNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldName, newName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldName]
	if !ok {
		return fmt.Errorf("wal: memfs: rename %s: %w", oldName, os.ErrNotExist)
	}
	delete(m.files, oldName)
	f.name = newName
	m.files[newName] = f
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

// SyncDir implements FS; MemFS directory metadata is always durable.
func (m *MemFS) SyncDir() error { return nil }

// Crash simulates a machine crash: for every file, bytes beyond the last
// Sync are discarded, except that a random prefix of the unsynced tail
// may survive (a torn write — disks flush partial blocks). A nil rng
// drops every unsynced byte. Callers must stop all writers (Log.Kill)
// first.
func (m *MemFS) Crash(rng *rand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		if unsynced := len(f.data) - f.synced; unsynced > 0 {
			keep := f.synced
			if rng != nil {
				keep += rng.Intn(unsynced + 1)
			}
			f.data = f.data[:keep]
			f.synced = keep
		}
	}
}

// CrashAt truncates the named file to exactly n bytes regardless of sync
// state, for tests that probe every record boundary deterministically.
func (m *MemFS) CrashAt(name string, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("wal: memfs: %s: %w", name, os.ErrNotExist)
	}
	if n > len(f.data) {
		n = len(f.data)
	}
	f.data = f.data[:n]
	if f.synced > n {
		f.synced = n
	}
	return nil
}

// Size returns the current length of the named file, 0 if absent.
func (m *MemFS) Size(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return 0
	}
	return len(f.data)
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.data = append(f.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.synced = len(f.data)
	return nil
}

func (f *memFile) Close() error { return nil }
