package wal

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// Snapshot files: `snap-%016x.snap` where the hex field is the LSN the
// snapshot covers — replay applies only records with a greater LSN. The
// file is [magic][u32 len][u32 crc][payload] (one frame, reusing the
// record framing), written to a temp name, fsynced, renamed into place,
// and the directory synced, so a named snapshot is always complete.

// snapMagic identifies a snapshot file and its format version.
var snapMagic = []byte("ESRSNP1\n")

const snapTmpName = "snap.tmp"

// segName formats a segment filename; lexicographic order equals
// sequence order.
func segName(seq uint64) string { return fmt.Sprintf("wal-%016x.seg", seq) }

// snapName formats a snapshot filename for the covered LSN.
func snapName(lsn uint64) string { return fmt.Sprintf("snap-%016x.snap", lsn) }

// fileInfo is one classified directory entry.
type fileInfo struct {
	name string
	seq  uint64 // segment sequence or snapshot LSN
}

// classify splits a directory listing into segments (ascending sequence)
// and snapshots (ascending LSN), ignoring everything else.
func classify(names []string) (segs, snaps []fileInfo, err error) {
	for _, name := range names {
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			seq, serr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
			if serr != nil {
				return nil, nil, fmt.Errorf("wal: unparseable segment name %q", name)
			}
			segs = append(segs, fileInfo{name: name, seq: seq})
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			lsn, serr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
			if serr != nil {
				return nil, nil, fmt.Errorf("wal: unparseable snapshot name %q", name)
			}
			snaps = append(snaps, fileInfo{name: name, seq: lsn})
		}
	}
	// fs.List returns sorted names and the fixed-width hex encodes order,
	// but sort defensively against FS implementations that do not.
	sortBySeq(segs)
	sortBySeq(snaps)
	return segs, snaps, nil
}

func sortBySeq(fis []fileInfo) {
	for i := 1; i < len(fis); i++ {
		for j := i; j > 0 && fis[j].seq < fis[j-1].seq; j-- {
			fis[j], fis[j-1] = fis[j-1], fis[j]
		}
	}
}

// appendSnapshot encodes a full snapshot file image.
func appendSnapshot(dst []byte, lsn uint64, st *storage.StoreState) []byte {
	payload := appendU64(nil, lsn)
	payload = appendI64(payload, int64(st.Imported))
	payload = appendI64(payload, int64(st.Exported))
	payload = appendU32(payload, uint32(len(st.Objects)))
	for _, o := range st.Objects {
		payload = appendU32(payload, uint32(o.ID))
		payload = appendI64(payload, int64(o.Value))
		payload = appendU64(payload, uint64(o.WriteTS))
		payload = appendI64(payload, int64(o.OIL))
		payload = appendI64(payload, int64(o.OEL))
		payload = appendU32(payload, uint32(len(o.History)))
		for _, h := range o.History {
			payload = appendU64(payload, uint64(h.TS))
			payload = appendI64(payload, int64(h.Value))
		}
	}
	dst = append(dst, snapMagic...)
	return appendFrame(dst, payload)
}

// decodeSnapshot parses a snapshot file image.
func decodeSnapshot(data []byte) (*storage.StoreState, uint64, error) {
	if len(data) < len(snapMagic) || !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return nil, 0, fmt.Errorf("wal: bad snapshot magic")
	}
	payload, next, ok, torn := nextFrame(data, len(snapMagic))
	if !ok || torn {
		return nil, 0, fmt.Errorf("wal: snapshot frame torn or missing")
	}
	if next != len(data) {
		return nil, 0, fmt.Errorf("wal: snapshot has %d trailing bytes", len(data)-next)
	}
	c := &cursor{b: payload}
	lsn := c.u64()
	st := &storage.StoreState{
		Imported: core.Distance(c.i64()),
		Exported: core.Distance(c.i64()),
	}
	n := c.u32()
	if c.err == nil && int(n) > len(payload)/36 {
		return nil, 0, fmt.Errorf("wal: snapshot claims %d objects in %d bytes", n, len(payload))
	}
	st.Objects = make([]storage.ObjectState, 0, n)
	for i := uint32(0); i < n && c.err == nil; i++ {
		o := storage.ObjectState{
			ID:      core.ObjectID(c.u32()),
			Value:   core.Value(c.i64()),
			WriteTS: tsgen.Timestamp(c.u64()),
			OIL:     core.Distance(c.i64()),
			OEL:     core.Distance(c.i64()),
		}
		hn := c.u32()
		if c.err == nil && int(hn) > (len(payload)-c.off)/16 {
			return nil, 0, fmt.Errorf("wal: snapshot object %d claims %d history entries", o.ID, hn)
		}
		o.History = make([]storage.HistEntry, 0, hn)
		for j := uint32(0); j < hn; j++ {
			o.History = append(o.History, storage.HistEntry{
				TS:    tsgen.Timestamp(c.u64()),
				Value: core.Value(c.i64()),
			})
		}
		st.Objects = append(st.Objects, o)
	}
	if c.err != nil {
		return nil, 0, c.err
	}
	if c.off != len(payload) {
		return nil, 0, fmt.Errorf("wal: snapshot has %d undecoded payload bytes", len(payload)-c.off)
	}
	return st, lsn, nil
}

// writeSnapshot captures the store under the log mutex — so the capture
// corresponds exactly to the log prefix ending at the captured LSN —
// rolls the active segment, writes the snapshot durably, and only then
// truncates the now-covered segments and older snapshots. Committer
// goroutine only.
func (l *Log) writeSnapshot() error {
	if l.source == nil {
		return nil
	}
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	state := l.source.CaptureState()
	lsn := l.nextLSN - 1
	l.sinceSnap = 0
	// Everything at or below lsn that is already flushed lives in the
	// segments listed so far; post-capture records are still buffered
	// (only this goroutine flushes) and will land in the new segment.
	covered := append([]string(nil), l.segNames...)
	l.mu.Unlock()

	if err := l.rollSegment(); err != nil {
		l.poison(err)
		return err
	}
	l.mu.Lock()
	// Only the segment the roll just opened remains live; snapLSN moves
	// with the trim so a SubscribeFrom below it bootstraps from the store
	// instead of pinning segments that are about to disappear.
	l.segNames = l.segNames[len(l.segNames)-1:]
	l.snapLSN = lsn
	l.mu.Unlock()

	data := appendSnapshot(nil, lsn, state)
	f, err := l.fs.Create(snapTmpName)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := l.fs.Rename(snapTmpName, snapName(lsn)); err != nil {
		return err
	}
	if err := l.fs.SyncDir(); err != nil {
		return err
	}

	// The snapshot is durable: covered segments and superseded snapshots
	// are dead weight now. Segments a catch-up reader still pins are
	// doomed rather than removed (the last unpin removes them), which is
	// what keeps a mid-segment reader from hitting ENOENT. Removal
	// failures are logged, not fatal — the files are ignored by recovery
	// anyway.
	l.releaseSegments(covered)
	names, err := l.fs.List()
	if err == nil {
		_, snaps, cerr := classify(names)
		if cerr == nil {
			for _, sn := range snaps {
				if sn.seq < lsn {
					if err := l.fs.Remove(sn.name); err != nil && l.opts.Logf != nil {
						l.opts.Logf("wal: remove old snapshot %s: %v", sn.name, err)
					}
				}
			}
		}
	}
	return nil
}
