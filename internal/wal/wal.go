// Package wal is the durability layer (DESIGN.md §10): an append-only,
// segmented, CRC-framed write-ahead log with batched-fsync group commit,
// periodic full-store snapshots with log truncation, and crash recovery
// that rebuilds the store, the bounded per-object history, and the
// accumulated epsilon accounting exactly.
//
// Group commit: appenders encode their record into the pending batch
// under the log mutex and receive an Ack; a single committer goroutine
// flushes the batch to the active segment on a size or time trigger —
// one write, one fsync — and releases every waiting Ack at once. At the
// default 1ms sync interval this amortizes the fsync across all commits
// that arrived in the window, which is what keeps durable throughput
// within sight of the in-memory engine instead of collapsing to the
// disk's sync rate (the ≥10× criterion tracked in BENCH_hotpath.json).
//
// Atomicity contract: LogCommit appends the record and runs the
// caller's publish callback (which makes the writes visible) under one
// mutex. Log order therefore respects inter-transaction dependency
// order — a transaction that read another's committed write always
// appears later in the log — and a snapshot captured under the same
// mutex corresponds exactly to a log prefix [.., LSN].
package wal

import (
	"errors"
	"sync"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
)

// Defaults for Options zero values.
const (
	DefaultSyncInterval = time.Millisecond
	DefaultBatchBytes   = 256 << 10
	DefaultSegmentBytes = 4 << 20
)

// ErrLogClosed is returned for appends after Close.
var ErrLogClosed = errors.New("wal: log closed")

// ErrLogKilled resolves in-flight acks when the log is killed mid-run
// (crash simulation): the commit may or may not be durable.
var ErrLogKilled = errors.New("wal: log killed before batch was synced")

// Options configures a Log.
type Options struct {
	// SyncInterval is the group-commit window: the committer flushes the
	// pending batch at least this often. Zero means DefaultSyncInterval;
	// negative disables batching and fsyncs after every append (the
	// per-transaction baseline the benchmarks compare against).
	SyncInterval time.Duration
	// BatchBytes flushes the batch early once this many encoded bytes
	// are pending. Zero means DefaultBatchBytes.
	BatchBytes int
	// SegmentBytes rolls to a new segment file once the active one
	// reaches this size. Zero means DefaultSegmentBytes.
	SegmentBytes int
	// SnapshotEvery takes a store snapshot (and truncates the log) after
	// this many records. Zero disables automatic snapshots; Snapshot can
	// still be called explicitly.
	SnapshotEvery int
	// Collector receives fsync latency and batch-size histograms.
	Collector *metrics.Collector
	// Logf receives diagnostics (snapshot failures); nil discards them.
	Logf func(format string, args ...any)
}

// ack is the durability ticket: closed by the committer once the
// record's batch is synced (or failed).
type ack struct {
	ch  chan struct{}
	err error
}

// Wait implements storage.Ack.
func (a *ack) Wait() error {
	<-a.ch
	return a.err
}

// Log is a write-ahead log over one FS directory. It implements
// storage.Durability. All appends are safe for concurrent use; the
// committer goroutine owns the segment files.
type Log struct {
	fs   FS
	opts Options
	// source is the store snapshots capture; set by Open/Recover.
	source *storage.Store

	// mu guards the pending batch and LSN state. Lock order: mu before
	// store/object locks (the publish callbacks), never the reverse.
	mu        sync.Mutex
	buf       []byte // encoded frames awaiting flush
	spare     []byte // previous batch's buffer, reused
	scratch   []byte // payload staging, reused per append
	pending   []*ack // acks awaiting the next flush
	pendSpare []*ack
	nextLSN   uint64
	sinceSnap int
	closed    bool
	err       error // sticky: first sync failure poisons the log

	// Committer-owned segment state. seg/segSeq/segBytes need no mu
	// (single goroutine after startup); segNames and snapLSN are also
	// read by SubscribeFrom, so their mutations happen under mu.
	seg      File
	segSeq   uint64
	segBytes int
	segNames []string
	snapLSN  uint64

	// Subscriber state (mu): live tails, per-segment pin counts held by
	// catch-up readers, and segments a snapshot wanted to remove while
	// pinned (removed at last unpin instead).
	tails  []*Tail
	pins   map[string]int
	doomed map[string]bool

	flushCh chan struct{}
	snapCh  chan chan error
	quit    chan struct{}
	killCh  chan struct{}
	done    chan struct{}
}

// Open creates or resumes a log over fs without replaying (use Recover
// for the full open-with-replay path). source is the store snapshots
// capture; it may be nil for logs that never snapshot (tests).
func Open(fs FS, source *storage.Store, opts Options) (*Log, error) {
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	segs, _, err := classify(names)
	if err != nil {
		return nil, err
	}
	info := RecoveryInfo{NextLSN: 1}
	for _, s := range segs {
		info.segments = append(info.segments, s.name)
		info.lastSegSeq = s.seq
	}
	return newLog(fs, source, info, opts)
}

// newLog builds the Log and starts its committer.
func newLog(fs FS, source *storage.Store, info RecoveryInfo, opts Options) (*Log, error) {
	if opts.BatchBytes <= 0 {
		opts.BatchBytes = DefaultBatchBytes
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncInterval == 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	nextLSN := info.NextLSN
	if nextLSN == 0 {
		nextLSN = 1
	}
	l := &Log{
		fs:       fs,
		opts:     opts,
		source:   source,
		nextLSN:  nextLSN,
		segSeq:   info.lastSegSeq,
		segNames: append([]string(nil), info.segments...),
		snapLSN:  info.SnapshotLSN,
		pins:     make(map[string]int),
		doomed:   make(map[string]bool),
		flushCh:  make(chan struct{}, 1),
		snapCh:   make(chan chan error),
		quit:     make(chan struct{}),
		killCh:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	// The committer is not running yet, so rolling here is single-
	// threaded; every pre-existing segment stays listed for truncation
	// by the next snapshot.
	if err := l.rollSegment(); err != nil {
		return nil, err
	}
	go l.run()
	return l, nil
}

// LogCommit implements storage.Durability: the record is framed into the
// pending batch and publish runs, atomically with respect to other
// appends and snapshot captures. The returned Ack resolves when the
// batch is synced. On error (closed or poisoned log) publish has NOT
// run; the caller decides whether to publish anyway.
func (l *Log) LogCommit(rec *storage.TxnCommit, publish func()) (storage.Ack, error) {
	l.mu.Lock()
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		return nil, err
	}
	lsn := l.nextLSN
	l.nextLSN++
	l.scratch = appendCommitPayload(l.scratch[:0], lsn, rec)
	l.buf = appendFrame(l.buf, l.scratch)
	if publish != nil {
		publish()
	}
	a := l.enqueueAckLocked()
	big := len(l.buf) >= l.opts.BatchBytes
	l.mu.Unlock()
	if big || l.opts.SyncInterval < 0 {
		l.nudge()
	}
	return a, nil
}

// LogCreate implements storage.Durability: apply runs under the log
// mutex first; only if it succeeds is the create record appended. The
// call returns once the record is durable.
func (l *Log) LogCreate(id core.ObjectID, initial core.Value, oil, oel core.Distance, apply func() error) error {
	l.mu.Lock()
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if apply != nil {
		if err := apply(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	lsn := l.nextLSN
	l.nextLSN++
	l.scratch = appendCreatePayload(l.scratch[:0], lsn, id, initial, oil, oel)
	l.buf = appendFrame(l.buf, l.scratch)
	a := l.enqueueAckLocked()
	l.mu.Unlock()
	l.nudge()
	return a.Wait()
}

// LogSetAllLimits implements storage.Durability.
func (l *Log) LogSetAllLimits(oil, oel core.Distance, apply func()) error {
	l.mu.Lock()
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		if apply != nil {
			// The in-memory sweep must happen even when it cannot be
			// made durable.
			apply()
		}
		return err
	}
	if apply != nil {
		apply()
	}
	lsn := l.nextLSN
	l.nextLSN++
	l.scratch = appendLimitsPayload(l.scratch[:0], lsn, oil, oel)
	l.buf = appendFrame(l.buf, l.scratch)
	a := l.enqueueAckLocked()
	l.mu.Unlock()
	l.nudge()
	return a.Wait()
}

// Sync is a durability barrier: it returns once everything appended
// before the call is synced.
func (l *Log) Sync() error {
	l.mu.Lock()
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	a := l.enqueueAckLocked()
	l.mu.Unlock()
	l.nudge()
	return a.Wait()
}

// Snapshot captures the store and truncates the log, synchronously.
func (l *Log) Snapshot() error {
	done := make(chan error, 1)
	select {
	case l.snapCh <- done:
	case <-l.done:
		return ErrLogClosed
	}
	select {
	case err := <-done:
		return err
	case <-l.done:
		return ErrLogClosed
	}
}

// Close flushes the pending batch, stops the committer and closes the
// active segment. Further appends fail with ErrLogClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.done
	l.closeTails(ErrLogClosed)
	var err error
	if l.seg != nil {
		err = l.seg.Close()
	}
	l.mu.Lock()
	if l.err != nil {
		err = l.err
	}
	l.mu.Unlock()
	return err
}

// Kill stops the committer WITHOUT flushing the pending batch —
// simulating the process dying mid-run. In-flight acks resolve with
// ErrLogKilled; the segment file is left exactly as the last completed
// flush left it, ready for MemFS.Crash to shear the unsynced tail.
func (l *Log) Kill() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return
	}
	l.closed = true
	if l.err == nil {
		l.err = ErrLogKilled
	}
	l.mu.Unlock()
	close(l.killCh)
	<-l.done
	l.closeTails(ErrLogKilled)
}

// Err returns the sticky log error (nil while healthy).
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// usableLocked gates appends; requires mu.
func (l *Log) usableLocked() error {
	if l.closed {
		return ErrLogClosed
	}
	return l.err
}

// enqueueAckLocked registers an ack on the pending batch; requires mu.
func (l *Log) enqueueAckLocked() *ack {
	a := &ack{ch: make(chan struct{})}
	l.pending = append(l.pending, a)
	l.sinceSnap++
	return a
}

// nudge asks the committer to flush now.
func (l *Log) nudge() {
	select {
	case l.flushCh <- struct{}{}:
	default:
	}
}

// poison records the first fatal I/O error; every later append and ack
// fails with it.
func (l *Log) poison(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
	l.closeTails(err)
}

// run is the committer goroutine: the only place segment writes, fsyncs,
// rolls and snapshots happen (the locksafe analyzer enforces this).
func (l *Log) run() {
	defer close(l.done)
	var tickC <-chan time.Time
	if l.opts.SyncInterval > 0 {
		t := time.NewTicker(l.opts.SyncInterval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-l.killCh:
			l.failPending(ErrLogKilled)
			return
		case <-l.quit:
			l.flushOnce()
			return
		case <-l.flushCh:
			l.flushOnce()
		case <-tickC:
			l.flushOnce()
		case done := <-l.snapCh:
			l.flushOnce()
			done <- l.writeSnapshot()
			continue
		}
		if l.opts.SnapshotEvery > 0 {
			l.mu.Lock()
			due := l.sinceSnap >= l.opts.SnapshotEvery
			l.mu.Unlock()
			if due {
				if err := l.writeSnapshot(); err != nil && l.opts.Logf != nil {
					l.opts.Logf("wal: snapshot failed: %v", err)
				}
			}
		}
	}
}

// flushOnce swaps the pending batch out under the mutex, writes and
// fsyncs it outside, then releases every waiting ack — one fsync for
// the whole batch.
func (l *Log) flushOnce() {
	l.mu.Lock()
	buf := l.buf
	l.buf = l.spare[:0]
	l.spare = buf
	pending := l.pending
	l.pending = l.pendSpare[:0]
	l.pendSpare = pending
	err := l.err
	l.mu.Unlock()
	if len(buf) == 0 && len(pending) == 0 {
		return
	}
	if err == nil {
		if l.opts.SyncInterval < 0 {
			err = l.writeEachSynced(buf)
		} else {
			err = l.writeBatchSynced(buf, len(pending))
		}
	}
	if err != nil {
		l.poison(err)
	} else {
		// The batch is durable: hand it to subscribers before releasing
		// the acks, under mu so registration in SubscribeFrom is ordered
		// against delivery (a new subscriber either receives this batch
		// on its queue or reads it from the segment file).
		l.mu.Lock()
		l.deliverLocked(buf)
		l.mu.Unlock()
	}
	for i, a := range pending {
		a.err = err
		close(a.ch)
		pending[i] = nil
	}
	if err == nil && l.segBytes >= l.opts.SegmentBytes {
		if rerr := l.rollSegment(); rerr != nil {
			l.poison(rerr)
		}
	}
}

// writeBatchSynced writes the whole batch and fsyncs once — the group
// commit path: one disk flush covers every record in the batch.
func (l *Log) writeBatchSynced(buf []byte, records int) error {
	start := time.Now()
	if len(buf) > 0 {
		if _, err := l.seg.Write(buf); err != nil {
			return err
		}
	}
	if err := l.seg.Sync(); err != nil {
		return err
	}
	l.opts.Collector.ObserveLatency(metrics.LatFsync, time.Since(start))
	l.opts.Collector.ObserveWALBatch(int64(records))
	l.segBytes += len(buf)
	return nil
}

// writeEachSynced writes and fsyncs frame by frame: the per-transaction
// baseline pays one fsync per record even when appends arrive
// concurrently, so the group-commit comparison measures batching rather
// than accidental nudge coalescing.
func (l *Log) writeEachSynced(buf []byte) error {
	for off := 0; off < len(buf); {
		_, next, ok, _ := nextFrame(buf, off)
		if !ok {
			// Impossible for frames we encoded ourselves; flush the rest
			// in one piece rather than lose bytes.
			next = len(buf)
		}
		start := time.Now()
		if _, err := l.seg.Write(buf[off:next]); err != nil {
			return err
		}
		if err := l.seg.Sync(); err != nil {
			return err
		}
		l.opts.Collector.ObserveLatency(metrics.LatFsync, time.Since(start))
		l.opts.Collector.ObserveWALBatch(1)
		l.segBytes += next - off
		off = next
	}
	return nil
}

// failPending resolves every waiting ack with err (Kill path: the batch
// is abandoned, not flushed).
func (l *Log) failPending(err error) {
	l.mu.Lock()
	pending := l.pending
	l.pending = nil
	l.mu.Unlock()
	for _, a := range pending {
		a.err = err
		close(a.ch)
	}
}

// rollSegment closes the active segment and opens the next one.
func (l *Log) rollSegment() error {
	if l.seg != nil {
		if err := l.seg.Close(); err != nil {
			return err
		}
	}
	l.segSeq++
	return l.openSegment(l.segSeq)
}

// openSegment creates and syncs a fresh segment file with its header.
func (l *Log) openSegment(seq uint64) error {
	name := segName(seq)
	f, err := l.fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := l.fs.SyncDir(); err != nil {
		f.Close()
		return err
	}
	l.seg = f
	l.segBytes = len(segMagic)
	l.mu.Lock()
	l.segNames = append(l.segNames, name)
	l.mu.Unlock()
	return nil
}
