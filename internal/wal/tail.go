package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"github.com/epsilondb/epsilondb/internal/storage"
)

// Replication feed (DESIGN.md §13): a Tail is a live subscription to the
// log's record stream. A follower subscribes with the last LSN it has
// applied; the log answers with an optional bootstrap image (when the
// requested position has already been truncated by a snapshot) and then
// delivers every later record exactly once, in LSN order, as raw frame
// bytes that re-use the segment encoding — DecodeFrames on the other
// side yields the same Record values Replay would have produced.
//
// Delivery has two phases. Catch-up reads the segment files that existed
// at subscribe time; those segments are pinned against snapshot
// truncation (Snapshot marks covered-but-pinned segments doomed instead
// of removing them, and the last unpin removes them), which is also the
// fix for the pre-existing Snapshot-vs-Recover race. The live phase
// drains batches the committer enqueues under the log mutex immediately
// after each successful fsync. Registration happens under the same
// mutex, so every synced batch is observed exactly once: a batch whose
// delivery preceded registration is fully on disk and seen by catch-up,
// a batch whose delivery followed registration is queued, and the
// per-record LSN cursor deduplicates the overlap.

// ErrTailLagging reports that a subscriber fell too far behind the
// committer and its queue was dropped; the follower should resubscribe
// from its last applied LSN (and may receive a bootstrap image).
var ErrTailLagging = errors.New("wal: tail lagging behind committer; resubscribe")

// ErrTailClosed is returned by Next after the consumer closed the tail.
var ErrTailClosed = errors.New("wal: tail closed")

const (
	// tailChunk caps the frame bytes one Next call returns, keeping feed
	// messages comfortably under the wire layer's MaxPayload.
	tailChunk = 512 << 10
	// tailMaxQueued caps the bytes buffered for a slow subscriber before
	// the log declares it lagging and drops it.
	tailMaxQueued = 16 << 20
)

// Tail is one subscriber's position in the log. Next is not safe for
// concurrent use; everything else is.
type Tail struct {
	l *Log

	mu     sync.Mutex
	cursor uint64 // last delivered LSN
	// pinned are the segments to catch up from, in order; pinIdx/segOff
	// track progress. Each finished segment is unpinned immediately.
	pinned []string
	pinIdx int
	segOff int
	queue  [][]byte // live batches, shared (read-only) across tails
	queued int      // bytes in queue
	closed bool
	err    error

	wake chan struct{}
}

// SubscribeFrom registers a subscriber that wants every record with LSN
// greater than afterLSN. When that position has been truncated away by a
// snapshot, the returned bootstrap image (a snapshot-file image,
// decodable with DecodeSnapshotImage) carries the full store state as of
// the log head and the tail resumes after it; otherwise the image is nil
// and the tail replays from the retained segments. The decision, the
// capture and the registration are atomic with respect to appends and
// truncation.
func (l *Log) SubscribeFrom(afterLSN uint64) (*Tail, []byte, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, nil, ErrLogClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return nil, nil, err
	}
	head := l.nextLSN - 1
	if afterLSN > head {
		l.mu.Unlock()
		return nil, nil, fmt.Errorf("wal: subscribe after lsn %d beyond head %d", afterLSN, head)
	}
	t := &Tail{l: l, cursor: afterLSN, segOff: len(segMagic), wake: make(chan struct{}, 1)}
	var image []byte
	if afterLSN < l.snapLSN {
		if l.source == nil {
			l.mu.Unlock()
			return nil, nil, fmt.Errorf("wal: lsn %d truncated and log has no source store for bootstrap", afterLSN)
		}
		// The capture runs under the log mutex, so it corresponds exactly
		// to the log prefix [..head] (the LogCommit publish contract) and
		// the cursor can skip everything at or below head. No segments
		// need pinning: every retained frame is ≤ head.
		image = appendSnapshot(nil, head, l.source.CaptureState())
		t.cursor = head
	} else {
		t.pinned = append([]string(nil), l.segNames...)
		for _, name := range t.pinned {
			l.pins[name]++
		}
	}
	l.tails = append(l.tails, t)
	l.mu.Unlock()
	return t, image, nil
}

// Head returns the highest LSN the log has assigned.
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// deliver hands one synced batch to every subscriber. Called by the
// committer with l.mu held, immediately after the fsync succeeded.
func (l *Log) deliverLocked(buf []byte) {
	if len(l.tails) == 0 || len(buf) == 0 {
		return
	}
	// One immutable copy is shared by every tail; the committer reuses
	// buf as the next batch buffer the moment flushOnce returns.
	shared := append([]byte(nil), buf...)
	for _, t := range l.tails {
		t.enqueue(shared)
	}
}

// closeTails fails every subscriber (log closed, killed or poisoned).
func (l *Log) closeTails(err error) {
	l.mu.Lock()
	tails := l.tails
	l.tails = nil
	l.mu.Unlock()
	for _, t := range tails {
		t.fail(err)
	}
}

// deregister removes t from the subscriber list.
func (l *Log) deregister(t *Tail) {
	l.mu.Lock()
	for i, o := range l.tails {
		if o == t {
			l.tails = append(l.tails[:i], l.tails[i+1:]...)
			break
		}
	}
	l.mu.Unlock()
}

// unpin releases one subscriber's hold on a segment, removing the file
// if a snapshot doomed it and this was the last pin.
func (l *Log) unpin(name string) {
	l.mu.Lock()
	l.pins[name]--
	remove := l.pins[name] <= 0 && l.doomed[name]
	if l.pins[name] <= 0 {
		delete(l.pins, name)
	}
	if remove {
		delete(l.doomed, name)
	}
	l.mu.Unlock()
	if remove {
		if err := l.fs.Remove(name); err != nil && l.opts.Logf != nil {
			l.opts.Logf("wal: remove doomed segment %s: %v", name, err)
		}
	}
}

// releaseSegments is the snapshot's truncation path: segments still
// pinned by a catch-up reader are doomed (removed at last unpin), the
// rest are removed now.
func (l *Log) releaseSegments(names []string) {
	var removable []string
	l.mu.Lock()
	for _, name := range names {
		if l.pins[name] > 0 {
			l.doomed[name] = true
		} else {
			delete(l.doomed, name)
			removable = append(removable, name)
		}
	}
	l.mu.Unlock()
	for _, name := range removable {
		if err := l.fs.Remove(name); err != nil && l.opts.Logf != nil {
			l.opts.Logf("wal: truncate %s: %v", name, err)
		}
	}
}

// enqueue appends one shared batch to the tail's live queue.
func (t *Tail) enqueue(shared []byte) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	if t.queued+len(shared) > tailMaxQueued {
		t.closed = true
		t.err = ErrTailLagging
		t.queue = nil
		t.queued = 0
		pins := t.pinned[t.pinIdx:]
		t.pinIdx = len(t.pinned)
		t.mu.Unlock()
		// Not holding l.mu here would deadlock-order-violate: enqueue IS
		// called under l.mu, so release pins without re-locking.
		t.l.unpinLocked(pins)
		t.signal()
		return
	}
	t.queue = append(t.queue, shared)
	t.queued += len(shared)
	t.mu.Unlock()
	t.signal()
}

// unpinLocked releases pins while l.mu is already held by the caller
// (the committer's delivery path). Doomed segments are left for the
// snapshot's next releaseSegments pass or the log's Close.
func (l *Log) unpinLocked(names []string) {
	for _, name := range names {
		l.pins[name]--
		if l.pins[name] <= 0 {
			delete(l.pins, name)
		}
	}
}

// fail closes the tail with err and releases its remaining pins.
func (t *Tail) fail(err error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.err = err
	t.queue = nil
	t.queued = 0
	pins := t.pinned[t.pinIdx:]
	t.pinIdx = len(t.pinned)
	t.mu.Unlock()
	for _, name := range pins {
		t.l.unpin(name)
	}
	t.signal()
}

// Close ends the subscription; a blocked Next returns ErrTailClosed.
func (t *Tail) Close() {
	t.l.deregister(t)
	t.fail(ErrTailClosed)
}

func (t *Tail) signal() {
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// Next blocks until record frames past the subscription cursor are
// available and returns them as raw frame bytes (decode with
// DecodeFrames), together with the log head at return time — the
// follower's staleness is head minus the last LSN in frames. Frames are
// in strict LSN order across calls with no gaps and no duplicates. The
// error is ErrTailClosed after Close, ErrTailLagging when the
// subscriber fell behind, or the log's fatal error.
func (t *Tail) Next() ([]byte, uint64, error) {
	for {
		t.mu.Lock()
		if t.closed {
			err := t.err
			t.mu.Unlock()
			return nil, 0, err
		}
		if t.pinIdx < len(t.pinned) {
			name := t.pinned[t.pinIdx]
			off := t.segOff
			cursor := t.cursor
			t.mu.Unlock()
			out, newOff, newCursor, done, err := t.readSegment(name, off, cursor)
			if err != nil {
				t.fail(err)
				return nil, 0, err
			}
			t.mu.Lock()
			if t.closed {
				err := t.err
				t.mu.Unlock()
				return nil, 0, err
			}
			t.cursor = newCursor
			if done {
				t.pinIdx++
				t.segOff = len(segMagic)
			} else {
				t.segOff = newOff
			}
			t.mu.Unlock()
			if done {
				t.l.unpin(name)
			}
			if len(out) > 0 {
				return out, t.l.Head(), nil
			}
			continue
		}
		if len(t.queue) > 0 {
			var out []byte
			cursor := t.cursor
			for len(t.queue) > 0 && len(out) < tailChunk {
				b := t.queue[0]
				t.queue[0] = nil
				t.queue = t.queue[1:]
				t.queued -= len(b)
				var ferr error
				out, cursor, ferr = filterFrames(out, b, cursor)
				if ferr != nil {
					t.mu.Unlock()
					t.fail(ferr)
					return nil, 0, ferr
				}
			}
			t.cursor = cursor
			t.mu.Unlock()
			if len(out) > 0 {
				return out, t.l.Head(), nil
			}
			continue
		}
		t.mu.Unlock()
		<-t.wake
	}
}

// readSegment catches up from one pinned segment file: it returns the
// raw frames past cursor starting at byte offset off, capped near
// tailChunk. done reports the segment is exhausted — a clean end or a
// torn tail. A torn tail is legal here: in the active segment it is a
// read racing the committer's in-progress write (that batch's delivery
// is queued and arrives in the live phase), and in an older segment it
// is the legal torn tail a previous crash left behind; in both cases
// nothing beyond it exists to read.
func (t *Tail) readSegment(name string, off int, cursor uint64) (out []byte, newOff int, newCursor uint64, done bool, err error) {
	data, rerr := t.l.fs.ReadFile(name)
	if rerr != nil {
		return nil, off, cursor, false, fmt.Errorf("wal: tail read %s: %w", name, rerr)
	}
	if off == len(segMagic) {
		if len(data) < len(segMagic) || !bytes.Equal(data[:len(segMagic)], segMagic) {
			// Header sheared by a prior crash: an empty torn segment.
			return nil, off, cursor, true, nil
		}
	}
	for {
		payload, next, ok, torn := nextFrame(data, off)
		if torn {
			return out, off, cursor, true, nil
		}
		if !ok {
			return out, off, cursor, true, nil
		}
		lsn, lerr := frameLSN(payload)
		if lerr != nil {
			return nil, off, cursor, false, fmt.Errorf("wal: tail %s: %w", name, lerr)
		}
		if lsn > cursor {
			out = append(out, data[off:next]...)
			cursor = lsn
		}
		off = next
		if len(out) >= tailChunk {
			return out, off, cursor, false, nil
		}
	}
}

// filterFrames appends to dst the frames in data whose LSN is beyond
// cursor, advancing it. data is committer-encoded, so a torn or
// malformed frame is an internal error, never a legal tail.
func filterFrames(dst, data []byte, cursor uint64) ([]byte, uint64, error) {
	for off := 0; off < len(data); {
		payload, next, ok, torn := nextFrame(data, off)
		if torn || !ok {
			return dst, cursor, fmt.Errorf("wal: malformed frame in live batch at %d", off)
		}
		lsn, err := frameLSN(payload)
		if err != nil {
			return dst, cursor, err
		}
		if lsn > cursor {
			dst = append(dst, data[off:next]...)
			cursor = lsn
		}
		off = next
	}
	return dst, cursor, nil
}

// frameLSN extracts the LSN every record payload carries after its type
// byte.
func frameLSN(payload []byte) (uint64, error) {
	if len(payload) < 9 {
		return 0, fmt.Errorf("wal: record payload too short for lsn (%d bytes)", len(payload))
	}
	return binary.LittleEndian.Uint64(payload[1:9]), nil
}

// DecodeFrames decodes a Tail/feed byte stream (concatenated record
// frames, no segment magic) and calls fn for each record in order. The
// stream traveled over a checksummed transport, so any framing defect is
// an error — there is no legal torn tail here.
func DecodeFrames(data []byte, fn func(Record) error) error {
	for off := 0; off < len(data); {
		payload, next, ok, torn := nextFrame(data, off)
		if torn || !ok {
			return fmt.Errorf("wal: malformed feed frame at byte %d", off)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
		off = next
	}
	return nil
}

// ApplyRecord installs one decoded record into a store, exactly as
// recovery replay would: commits apply write-by-write plus the epsilon
// accounting, creates are idempotent, limit sweeps apply store-wide.
// Followers use it to mirror the primary in LSN order.
func ApplyRecord(store *storage.Store, rec Record) error { return applyRecord(store, rec) }

// DecodeSnapshotImage parses a bootstrap image (or snapshot file) into
// the store state it carries and the LSN it covers.
func DecodeSnapshotImage(data []byte) (*storage.StoreState, uint64, error) {
	return decodeSnapshot(data)
}

// SnapshotImageLSN extracts just the covered LSN from a bootstrap image
// without decoding the store state (the feed sender stamps it on every
// chunk).
func SnapshotImageLSN(data []byte) (uint64, error) {
	if len(data) < len(snapMagic) || !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return 0, fmt.Errorf("wal: bad snapshot magic")
	}
	payload, _, ok, torn := nextFrame(data, len(snapMagic))
	if !ok || torn || len(payload) < 8 {
		return 0, fmt.Errorf("wal: snapshot frame torn or missing")
	}
	return binary.LittleEndian.Uint64(payload[:8]), nil
}

// EncodeSnapshotImage builds a bootstrap image for st as of lsn — the
// inverse of DecodeSnapshotImage, exposed for follower tests.
func EncodeSnapshotImage(lsn uint64, st *storage.StoreState) []byte {
	return appendSnapshot(nil, lsn, st)
}
