package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// On-disk format. Every segment starts with an 8-byte magic; records
// follow back to back, each framed as
//
//	[u32 payload length][u32 CRC32-C of payload][payload]
//
// all little-endian. A payload is
//
//	[u8 record type][u64 LSN][type-specific fields]
//
// The LSN lives inside the checksummed payload so replay can filter
// records already covered by a snapshot and detect ordering corruption.
// A frame whose length field, payload bytes, or CRC are incomplete or
// wrong is a torn tail: recovery discards it and everything after it.

// segMagic identifies a segment file and its format version.
var segMagic = []byte("ESRWAL1\n")

// castagnoli is the CRC32-C table (the polynomial used by modern storage
// systems; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RecordType distinguishes the durable events.
type RecordType uint8

const (
	// RecordCommit is one committed transaction: write set + final
	// import/export inconsistency.
	RecordCommit RecordType = 1
	// RecordCreate is one object creation with initial value and limits.
	RecordCreate RecordType = 2
	// RecordLimits is a store-wide OIL/OEL rewrite (SetAllLimits).
	RecordLimits RecordType = 3
)

// Record is one decoded log record, as surfaced by Scan and replay.
type Record struct {
	LSN  uint64
	Type RecordType

	// Commit is set for RecordCommit.
	Commit *storage.TxnCommit

	// Object and Value are set for RecordCreate.
	Object core.ObjectID
	Value  core.Value
	// OIL and OEL are set for RecordCreate and RecordLimits.
	OIL core.Distance
	OEL core.Distance
}

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }

// appendCommitPayload encodes a commit record payload.
func appendCommitPayload(b []byte, lsn uint64, rec *storage.TxnCommit) []byte {
	b = appendU8(b, uint8(RecordCommit))
	b = appendU64(b, lsn)
	b = appendU64(b, uint64(rec.Txn))
	b = appendU8(b, uint8(rec.Kind))
	b = appendU64(b, uint64(rec.TS))
	b = appendI64(b, int64(rec.Imported))
	b = appendI64(b, int64(rec.Exported))
	b = appendU32(b, uint32(len(rec.Writes)))
	for _, w := range rec.Writes {
		b = appendU32(b, uint32(w.Object))
		b = appendI64(b, int64(w.Value))
		b = appendU64(b, uint64(w.TS))
	}
	return b
}

// appendCreatePayload encodes an object-create record payload.
func appendCreatePayload(b []byte, lsn uint64, id core.ObjectID, initial core.Value, oil, oel core.Distance) []byte {
	b = appendU8(b, uint8(RecordCreate))
	b = appendU64(b, lsn)
	b = appendU32(b, uint32(id))
	b = appendI64(b, int64(initial))
	b = appendI64(b, int64(oil))
	b = appendI64(b, int64(oel))
	return b
}

// appendLimitsPayload encodes a set-all-limits record payload.
func appendLimitsPayload(b []byte, lsn uint64, oil, oel core.Distance) []byte {
	b = appendU8(b, uint8(RecordLimits))
	b = appendU64(b, lsn)
	b = appendI64(b, int64(oil))
	b = appendI64(b, int64(oel))
	return b
}

// appendFrame wraps a payload in the length+CRC frame.
func appendFrame(dst, payload []byte) []byte {
	dst = appendU32(dst, uint32(len(payload)))
	dst = appendU32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// frameOverhead is the per-record framing cost in bytes.
const frameOverhead = 8

// cursor is a bounds-checked little-endian reader over one payload.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) u8() uint8 {
	if c.err != nil || c.off+1 > len(c.b) {
		c.fail()
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil || c.off+4 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || c.off+8 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) i64() int64 { return int64(c.u64()) }

func (c *cursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("wal: truncated record payload (%d bytes)", len(c.b))
	}
}

// decodeRecord parses one checksummed payload. CRC validation happened
// at the frame layer, so a malformed payload here is corruption the
// checksum could not have produced — it is an error, not a torn tail.
func decodeRecord(payload []byte) (Record, error) {
	c := &cursor{b: payload}
	rec := Record{Type: RecordType(c.u8()), LSN: c.u64()}
	switch rec.Type {
	case RecordCommit:
		tc := &storage.TxnCommit{
			Txn:      core.TxnID(c.u64()),
			Kind:     core.Kind(c.u8()),
			TS:       tsgen.Timestamp(c.u64()),
			Imported: core.Distance(c.i64()),
			Exported: core.Distance(c.i64()),
		}
		n := c.u32()
		if c.err == nil && int(n) > (len(payload)-c.off)/20 {
			return rec, fmt.Errorf("wal: commit record claims %d writes in %d bytes", n, len(payload)-c.off)
		}
		if n > 0 {
			tc.Writes = make([]storage.CommittedWrite, 0, n)
			for i := uint32(0); i < n; i++ {
				tc.Writes = append(tc.Writes, storage.CommittedWrite{
					Object: core.ObjectID(c.u32()),
					Value:  core.Value(c.i64()),
					TS:     tsgen.Timestamp(c.u64()),
				})
			}
		}
		rec.Commit = tc
	case RecordCreate:
		rec.Object = core.ObjectID(c.u32())
		rec.Value = core.Value(c.i64())
		rec.OIL = core.Distance(c.i64())
		rec.OEL = core.Distance(c.i64())
	case RecordLimits:
		rec.OIL = core.Distance(c.i64())
		rec.OEL = core.Distance(c.i64())
	default:
		return rec, fmt.Errorf("wal: unknown record type %d", rec.Type)
	}
	if c.err != nil {
		return rec, c.err
	}
	if c.off != len(payload) {
		return rec, fmt.Errorf("wal: record has %d trailing bytes", len(payload)-c.off)
	}
	return rec, nil
}

// nextFrame extracts the frame starting at off. ok=false with err=nil
// means a clean end (off == len(data)) or a torn tail (anything
// incomplete or checksum-mismatched); torn distinguishes the two.
func nextFrame(data []byte, off int) (payload []byte, next int, ok, torn bool) {
	if off == len(data) {
		return nil, off, false, false
	}
	if off+frameOverhead > len(data) {
		return nil, off, false, true
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	start := off + frameOverhead
	if n < 0 || start+n > len(data) {
		return nil, off, false, true
	}
	payload = data[start : start+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, off, false, true
	}
	return payload, start + n, true, false
}
