package wal

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"github.com/epsilondb/epsilondb/internal/storage"
)

// Recovery: load the newest decodable snapshot, then replay every
// record with LSN greater than the snapshot's from the segments in
// order. A torn tail (incomplete or checksum-mismatched frame) is legal
// only at the very end of the log — the last flush the crash
// interrupted; anywhere else it is corruption and recovery fails loudly
// rather than silently dropping committed transactions. Replay is
// deterministic and idempotent: two independent replays of the same
// directory produce identical stores.

// RecoveryInfo reports what recovery found and did.
type RecoveryInfo struct {
	// SnapshotLSN is the LSN covered by the snapshot that seeded the
	// store; zero when recovery started from empty.
	SnapshotLSN uint64
	// NextLSN is the first LSN the reopened log will assign.
	NextLSN uint64
	// Records is the number of log records applied (after the snapshot
	// filter); Commits and Creates break it down.
	Records int
	Commits int
	Creates int
	// TornTail reports that the log ended in a torn record, which was
	// discarded.
	TornTail bool

	// segments and lastSegSeq seed the reopened log's truncation list.
	segments   []string
	lastSegSeq uint64
}

// Recover rebuilds a store from the log directory and reopens the log
// on top of it, wiring the store's durability to the log. This is the
// boot path of a durable server.
func Recover(fs FS, cfg storage.Config, opts Options) (*storage.Store, *Log, RecoveryInfo, error) {
	store, info, err := Replay(fs, cfg)
	if err != nil {
		return nil, nil, info, err
	}
	l, err := newLog(fs, store, info, opts)
	if err != nil {
		return nil, nil, info, err
	}
	store.SetDurability(l)
	return store, l, info, nil
}

// Replay rebuilds a fresh store from the directory without opening a
// log: newest valid snapshot first, then the record tail. Tests use it
// directly to compare independent replays for idempotency.
func Replay(fs FS, cfg storage.Config) (*storage.Store, RecoveryInfo, error) {
	var info RecoveryInfo
	names, err := fs.List()
	if err != nil {
		return nil, info, err
	}
	segs, snaps, err := classify(names)
	if err != nil {
		return nil, info, err
	}
	for _, s := range segs {
		info.segments = append(info.segments, s.name)
		info.lastSegSeq = s.seq
	}

	store := storage.NewStore(cfg)
	// Newest decodable snapshot wins; an undecodable one (corrupt disk)
	// falls back to the previous, whose covering segments may already be
	// truncated — in that case replay fails on the LSN gap below rather
	// than returning silently stale data.
	for i := len(snaps) - 1; i >= 0; i-- {
		data, rerr := fs.ReadFile(snaps[i].name)
		if rerr != nil {
			continue
		}
		st, lsn, derr := decodeSnapshot(data)
		if derr != nil {
			continue
		}
		for _, os := range st.Objects {
			if err := store.RestoreObject(os); err != nil {
				return nil, info, err
			}
		}
		store.RestoreCommittedInconsistency(st.Imported, st.Exported)
		info.SnapshotLSN = lsn
		break
	}

	maxLSN := info.SnapshotLSN
	for i, seg := range segs {
		data, rerr := fs.ReadFile(seg.name)
		if rerr != nil {
			return nil, info, rerr
		}
		torn, terr := replaySegment(store, data, seg.name, info.SnapshotLSN, &maxLSN, &info)
		if terr != nil {
			return nil, info, terr
		}
		if torn {
			info.TornTail = true
			if i != len(segs)-1 {
				return nil, info, fmt.Errorf("wal: torn record in %s but later segments exist — log corrupted mid-stream", seg.name)
			}
		}
	}
	info.NextLSN = maxLSN + 1
	return store, info, nil
}

// replaySegment applies one segment's records, returning whether it
// ended in a torn tail.
func replaySegment(store *storage.Store, data []byte, name string, snapLSN uint64, maxLSN *uint64, info *RecoveryInfo) (torn bool, err error) {
	if len(data) < len(segMagic) || !bytes.Equal(data[:len(segMagic)], segMagic) {
		// The header itself was sheared by the crash (a roll's SyncDir
		// raced the power cut): an empty-of-records torn segment.
		return true, nil
	}
	off := len(segMagic)
	for {
		payload, next, ok, isTorn := nextFrame(data, off)
		if isTorn {
			return true, nil
		}
		if !ok {
			return false, nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return false, fmt.Errorf("wal: %s: %w", name, derr)
		}
		off = next
		if rec.LSN > *maxLSN {
			*maxLSN = rec.LSN
		}
		if rec.LSN <= snapLSN {
			continue
		}
		if err := applyRecord(store, rec); err != nil {
			return false, fmt.Errorf("wal: %s: replay lsn %d: %w", name, rec.LSN, err)
		}
		info.Records++
		switch rec.Type {
		case RecordCommit:
			info.Commits++
		case RecordCreate:
			info.Creates++
		}
	}
}

// applyRecord installs one record into a recovering store. Records are
// applied unconditionally in log order: the log was written in publish
// order under one mutex, so replaying it in order reproduces the same
// final state for every engine.
func applyRecord(store *storage.Store, rec Record) error {
	switch rec.Type {
	case RecordCommit:
		for _, w := range rec.Commit.Writes {
			if err := store.ApplyCommitted(w.Object, w.Value, w.TS); err != nil {
				return err
			}
		}
		store.AddCommittedInconsistency(rec.Commit.Imported, rec.Commit.Exported)
		return nil
	case RecordCreate:
		_, err := store.CreateWithLimits(rec.Object, rec.Value, rec.OIL, rec.OEL)
		if err != nil && isDuplicateCreate(err) {
			// Idempotency: a create that also survived in a snapshot (or
			// a double replay) is a no-op.
			return nil
		}
		return err
	case RecordLimits:
		store.SetAllLimits(rec.OIL, rec.OEL)
		return nil
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
}

// isDuplicateCreate matches the store's duplicate-id error without
// threading a sentinel through the storage API.
func isDuplicateCreate(err error) bool {
	return err != nil && strings.Contains(err.Error(), "already exists")
}

// ErrNoLog reports a Scan over a directory with no segments.
var ErrNoLog = errors.New("wal: no log segments")

// Scan iterates every decodable record in every segment in order —
// including records a snapshot already covers — stopping cleanly at a
// torn tail. The soak's invariant checks use it to audit per-record
// epsilon bounds offline.
func Scan(fs FS, fn func(Record) error) (RecoveryInfo, error) {
	var info RecoveryInfo
	names, err := fs.List()
	if err != nil {
		return info, err
	}
	segs, snaps, err := classify(names)
	if err != nil {
		return info, err
	}
	if len(segs) == 0 && len(snaps) == 0 {
		return info, ErrNoLog
	}
	if len(snaps) > 0 {
		info.SnapshotLSN = snaps[len(snaps)-1].seq
	}
	for i, seg := range segs {
		data, rerr := fs.ReadFile(seg.name)
		if rerr != nil {
			return info, rerr
		}
		if len(data) < len(segMagic) || !bytes.Equal(data[:len(segMagic)], segMagic) {
			info.TornTail = true
			break
		}
		off := len(segMagic)
		for {
			payload, next, ok, torn := nextFrame(data, off)
			if torn {
				info.TornTail = true
				if i != len(segs)-1 {
					return info, fmt.Errorf("wal: torn record in %s but later segments exist", seg.name)
				}
				break
			}
			if !ok {
				break
			}
			rec, derr := decodeRecord(payload)
			if derr != nil {
				return info, fmt.Errorf("wal: %s: %w", seg.name, derr)
			}
			off = next
			info.Records++
			if fn != nil {
				if err := fn(rec); err != nil {
					return info, err
				}
			}
		}
		if info.TornTail {
			break
		}
	}
	return info, nil
}
