package wal

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// followerStore builds the empty store a follower applies the feed into.
func followerStore() *storage.Store {
	return storage.NewStore(storage.Config{HistoryDepth: testHistoryDepth})
}

// drainTo pulls the tail until every record up to target is applied,
// asserting strict LSN order with no gaps past from and no duplicates.
func drainTo(t *testing.T, tail *Tail, follower *storage.Store, from, target uint64) uint64 {
	t.Helper()
	last := from
	for last < target {
		frames, _, err := tail.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if err := DecodeFrames(frames, func(rec Record) error {
			if rec.LSN != last+1 {
				t.Fatalf("feed order: got lsn %d after %d", rec.LSN, last)
			}
			last = rec.LSN
			return ApplyRecord(follower, rec)
		}); err != nil {
			t.Fatalf("DecodeFrames: %v", err)
		}
	}
	return last
}

// TestTailFollowsLive subscribes from zero on a fresh log and checks the
// follower reconstructs the primary exactly from the streamed frames.
func TestTailFollowsLive(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: time.Millisecond})
	defer l.Close()

	tail, image, err := l.SubscribeFrom(0)
	if err != nil {
		t.Fatalf("SubscribeFrom: %v", err)
	}
	if image != nil {
		t.Fatalf("fresh log returned a bootstrap image")
	}
	defer tail.Close()

	mustCreate(t, store, 1, 100)
	mustCreate(t, store, 2, 200)
	var last storage.Ack
	for i := 0; i < 40; i++ {
		last = logWrite(t, store, l, core.TxnID(i+1), core.ObjectID(1+i%2), core.Value(100+i), tsgen.Timestamp(i+1), core.Distance(i%3), 0)
	}
	if err := last.Wait(); err != nil {
		t.Fatalf("ack: %v", err)
	}

	follower := followerStore()
	drainTo(t, tail, follower, 0, l.Head())
	sameState(t, store.CaptureState(), follower.CaptureState(), "follower after live drain")
}

// TestSnapshotPinsSegmentsForTail is the truncation-race regression: a
// snapshot taken while a subscriber is still catching up must not remove
// the segments the reader holds — they are doomed instead and vanish
// only when the reader finishes them.
func TestSnapshotPinsSegmentsForTail(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: time.Millisecond})
	defer l.Close()

	mustCreate(t, store, 1, 100)
	var last storage.Ack
	for i := 0; i < 25; i++ {
		last = logWrite(t, store, l, core.TxnID(i+1), 1, core.Value(100+i), tsgen.Timestamp(i+1), 0, 0)
	}
	if err := last.Wait(); err != nil {
		t.Fatalf("ack: %v", err)
	}

	// Subscribe at the resume position (not bootstrap): pins the current
	// segments but reads nothing yet — a reader "mid-segment".
	tail, image, err := l.SubscribeFrom(0)
	if err != nil {
		t.Fatalf("SubscribeFrom: %v", err)
	}
	if image != nil {
		t.Fatalf("unexpected bootstrap image before any snapshot")
	}
	pinned := append([]string(nil), tail.pinned...)
	if len(pinned) == 0 {
		t.Fatalf("subscriber pinned no segments")
	}

	if err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	// The covered segments must survive the truncation while pinned.
	names, err := fs.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	have := strings.Join(names, " ")
	for _, name := range pinned {
		if !strings.Contains(have, name) {
			t.Fatalf("snapshot removed pinned segment %s (dir: %s)", name, have)
		}
	}

	// The reader drains without ENOENT or short reads and reconstructs
	// the primary.
	follower := followerStore()
	drainTo(t, tail, follower, 0, l.Head())
	sameState(t, store.CaptureState(), follower.CaptureState(), "follower across snapshot truncation")

	// Finished segments were unpinned and the doomed files removed.
	names, err = fs.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	have = strings.Join(names, " ")
	for _, name := range pinned {
		if strings.Contains(have, name) {
			t.Fatalf("doomed segment %s still present after drain (dir: %s)", name, have)
		}
	}
}

// TestTailBootstrapAfterTruncation subscribes below the snapshot LSN and
// checks the bootstrap image plus the live stream reconstruct the store.
func TestTailBootstrapAfterTruncation(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: time.Millisecond})
	defer l.Close()

	mustCreate(t, store, 1, 100)
	for i := 0; i < 10; i++ {
		a := logWrite(t, store, l, core.TxnID(i+1), 1, core.Value(100+i), tsgen.Timestamp(i+1), 1, 0)
		if err := a.Wait(); err != nil {
			t.Fatalf("ack: %v", err)
		}
	}
	if err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	tail, image, err := l.SubscribeFrom(0)
	if err != nil {
		t.Fatalf("SubscribeFrom: %v", err)
	}
	defer tail.Close()
	if image == nil {
		t.Fatalf("expected a bootstrap image below the snapshot LSN")
	}
	st, lsn, err := DecodeSnapshotImage(image)
	if err != nil {
		t.Fatalf("DecodeSnapshotImage: %v", err)
	}
	if lsn != l.Head() {
		t.Fatalf("bootstrap image covers lsn %d, head is %d", lsn, l.Head())
	}
	follower := followerStore()
	for _, os := range st.Objects {
		if err := follower.RestoreObject(os); err != nil {
			t.Fatalf("RestoreObject: %v", err)
		}
	}
	follower.RestoreCommittedInconsistency(st.Imported, st.Exported)
	sameState(t, store.CaptureState(), follower.CaptureState(), "follower after bootstrap")

	// Post-bootstrap traffic streams live.
	var last storage.Ack
	for i := 10; i < 20; i++ {
		last = logWrite(t, store, l, core.TxnID(i+1), 1, core.Value(100+i), tsgen.Timestamp(i+1), 0, 1)
	}
	if err := last.Wait(); err != nil {
		t.Fatalf("ack: %v", err)
	}
	drainTo(t, tail, follower, lsn, l.Head())
	sameState(t, store.CaptureState(), follower.CaptureState(), "follower after live resume")
}

// TestTailResumeFromLSN checks a reconnect-style subscription: only
// records past afterLSN are delivered.
func TestTailResumeFromLSN(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: time.Millisecond})
	defer l.Close()

	mustCreate(t, store, 1, 100)
	for i := 0; i < 12; i++ {
		a := logWrite(t, store, l, core.TxnID(i+1), 1, core.Value(100+i), tsgen.Timestamp(i+1), 0, 0)
		if err := a.Wait(); err != nil {
			t.Fatalf("ack: %v", err)
		}
	}
	resume := uint64(5)
	tail, image, err := l.SubscribeFrom(resume)
	if err != nil {
		t.Fatalf("SubscribeFrom: %v", err)
	}
	defer tail.Close()
	if image != nil {
		t.Fatalf("resume within retained log returned a bootstrap image")
	}
	first := uint64(0)
	frames, _, err := tail.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if err := DecodeFrames(frames, func(rec Record) error {
		if first == 0 {
			first = rec.LSN
		}
		return nil
	}); err != nil {
		t.Fatalf("DecodeFrames: %v", err)
	}
	if first != resume+1 {
		t.Fatalf("resume delivered first lsn %d, want %d", first, resume+1)
	}

	if _, _, err := l.SubscribeFrom(l.Head() + 10); err == nil {
		t.Fatalf("subscribe beyond head succeeded")
	}
}

// TestTailCloseUnblocksNext checks consumer Close and log Close both
// resolve a blocked Next with a typed error.
func TestTailCloseUnblocksNext(t *testing.T) {
	fs := NewMemFS()
	_, l := openTest(t, fs, Options{SyncInterval: time.Millisecond})

	tail, _, err := l.SubscribeFrom(0)
	if err != nil {
		t.Fatalf("SubscribeFrom: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		_, _, err := tail.Next()
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	tail.Close()
	select {
	case err := <-got:
		if !errors.Is(err, ErrTailClosed) {
			t.Fatalf("Next after Close: %v, want ErrTailClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("Next did not unblock on Close")
	}

	tail2, _, err := l.SubscribeFrom(0)
	if err != nil {
		t.Fatalf("SubscribeFrom: %v", err)
	}
	go func() {
		_, _, err := tail2.Next()
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-got:
		if !errors.Is(err, ErrLogClosed) {
			t.Fatalf("Next after log Close: %v, want ErrLogClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("Next did not unblock on log Close")
	}
}

// TestTailConcurrentSnapshots races a writer, periodic snapshots and a
// draining subscriber; the follower must still reconstruct the primary
// exactly (run with -race).
func TestTailConcurrentSnapshots(t *testing.T) {
	fs := NewMemFS()
	store, l := openTest(t, fs, Options{SyncInterval: 100 * time.Microsecond, SegmentBytes: 2 << 10})
	defer l.Close()

	mustCreate(t, store, 1, 0)
	mustCreate(t, store, 2, 0)

	tail, image, err := l.SubscribeFrom(0)
	if err != nil {
		t.Fatalf("SubscribeFrom: %v", err)
	}
	if image != nil {
		t.Fatalf("unexpected bootstrap image")
	}

	const writes = 400
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			a := logWrite(t, store, l, core.TxnID(i+1), core.ObjectID(1+i%2), core.Value(i), tsgen.Timestamp(i+1), 0, 0)
			if i%50 == 49 {
				if err := a.Wait(); err != nil {
					t.Errorf("ack: %v", err)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := l.Snapshot(); err != nil {
				t.Errorf("Snapshot: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	follower := followerStore()
	wg.Wait()
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	drainTo(t, tail, follower, 0, l.Head())
	tail.Close()
	sameState(t, store.CaptureState(), follower.CaptureState(), "follower under concurrent snapshots")
}
