package faultnet

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"net"
	"testing"
	"time"
)

// pipe returns both ends of an in-memory duplex conn, the a-side wrapped
// with cfg.
func pipe(t *testing.T, cfg Config) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return Wrap(a, cfg, nil), b
}

func TestZeroConfigIsTransparent(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero Config reports Enabled")
	}
	fc, peer := pipe(t, Config{})
	go func() {
		fc.Write([]byte("hello"))
	}()
	buf := make([]byte, 16)
	n, err := peer.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	if fc.Stats().Total() != 0 {
		t.Errorf("faults injected by zero config: %+v", fc.Stats())
	}
}

func TestDropEveryWriteIsSilent(t *testing.T) {
	fc, peer := pipe(t, Config{DropEveryWrite: 2})
	got := make(chan string, 4)
	go func() {
		buf := make([]byte, 16)
		for {
			n, err := peer.Read(buf)
			if err != nil {
				close(got)
				return
			}
			got <- string(buf[:n])
		}
	}()
	for _, msg := range []string{"one", "two", "three", "four"} {
		n, err := fc.Write([]byte(msg))
		if err != nil || n != len(msg) {
			t.Fatalf("Write(%q) = %d, %v — drops must look like success", msg, n, err)
		}
	}
	fc.Close()
	var delivered []string
	for s := range got {
		delivered = append(delivered, s)
	}
	if len(delivered) != 2 || delivered[0] != "one" || delivered[1] != "three" {
		t.Errorf("delivered = %v, want [one three]", delivered)
	}
	if d := fc.Stats().Drops.Load(); d != 2 {
		t.Errorf("Drops = %d, want 2", d)
	}
}

func TestPartialReadsFragmentButDeliver(t *testing.T) {
	fc, peer := pipe(t, Config{PartialReadMax: 3})
	payload := []byte("abcdefghij")
	go func() {
		peer.Write(payload)
		peer.Close()
	}()
	var gotBuf bytes.Buffer
	buf := make([]byte, 64)
	reads := 0
	for {
		n, err := fc.Read(buf)
		gotBuf.Write(buf[:n])
		if err != nil {
			break
		}
		reads++
		if n > 3 {
			t.Fatalf("single read returned %d bytes, cap is 3", n)
		}
	}
	if !bytes.Equal(gotBuf.Bytes(), payload) {
		t.Errorf("reassembled %q, want %q", gotBuf.Bytes(), payload)
	}
	if reads < 4 {
		t.Errorf("payload of 10 arrived in %d reads, want ≥4 fragments", reads)
	}
}

func TestPartialWritesChunkButDeliver(t *testing.T) {
	fc, peer := pipe(t, Config{PartialWriteMax: 4})
	payload := []byte("0123456789abcdef")
	go func() {
		n, err := fc.Write(payload)
		if err != nil || n != len(payload) {
			t.Errorf("Write = %d, %v", n, err)
		}
		fc.Close()
	}()
	got, err := io.ReadAll(peer)
	if err != nil && err != io.EOF && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("peer saw %q, want %q", got, payload)
	}
	if p := fc.Stats().Partials.Load(); p == 0 {
		t.Error("no partial faults counted")
	}
}

func TestResetAfterWritesTearsMidFrame(t *testing.T) {
	fc, peer := pipe(t, Config{ResetAfterWrites: 2})
	got := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(peer)
		got <- b
	}()
	if _, err := fc.Write([]byte("intact")); err != nil {
		t.Fatal(err)
	}
	n, err := fc.Write([]byte("torn-apart"))
	if err == nil {
		t.Fatal("reset write succeeded")
	}
	if !errors.Is(err, ErrInjectedReset) {
		t.Errorf("err = %v, want ErrInjectedReset", err)
	}
	if n != 0 {
		t.Errorf("reset write reported %d bytes", n)
	}
	// The peer saw the first message plus a strict prefix of the second.
	b := <-got
	if !bytes.HasPrefix(b, []byte("intact")) {
		t.Errorf("peer saw %q, want prefix \"intact\"", b)
	}
	if rest := b[len("intact"):]; len(rest) == 0 || len(rest) >= len("torn-apart") {
		t.Errorf("torn frame delivered %q (%d bytes), want non-empty strict prefix", rest, len(rest))
	}
	// The conn is dead: further writes fail.
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Error("write after reset succeeded")
	}
}

func TestResetAfterReads(t *testing.T) {
	fc, peer := pipe(t, Config{ResetAfterReads: 1})
	go peer.Write([]byte("never seen"))
	_, err := fc.Read(make([]byte, 16))
	if !errors.Is(err, ErrInjectedReset) {
		t.Errorf("Read err = %v, want ErrInjectedReset", err)
	}
	if r := fc.Stats().Resets.Load(); r != 1 {
		t.Errorf("Resets = %d, want 1", r)
	}
}

func TestLatencyDelaysAndCounts(t *testing.T) {
	fc, peer := pipe(t, Config{WriteLatency: 20 * time.Millisecond})
	done := make(chan struct{})
	go func() {
		io.ReadAll(peer)
		close(done)
	}()
	start := time.Now()
	if _, err := fc.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("write took %v, want ≥20ms injected latency", elapsed)
	}
	fc.Close()
	<-done
	if d := fc.Stats().Delays.Load(); d != 1 {
		t.Errorf("Delays = %d, want 1", d)
	}
}

// TestSeededDeterminism pins that two conns with the same seed make the
// same probabilistic drop decisions over the same traffic.
func TestSeededDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		a, b := net.Pipe()
		defer a.Close()
		go io.Copy(io.Discard, b) //nolint:errcheck
		fc := Wrap(a, Config{Seed: seed, DropProb: 0.5}, nil)
		pattern := make([]bool, 0, 64)
		for i := 0; i < 64; i++ {
			before := fc.Stats().Drops.Load()
			fc.Write([]byte("m"))
			pattern = append(pattern, fc.Stats().Drops.Load() > before)
		}
		return pattern
	}
	p1, p2 := run(7), run(7)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed diverged at write %d", i)
		}
	}
	diff := run(8)
	same := true
	for i := range p1 {
		if p1[i] != diff[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-write drop patterns")
	}
}

func TestListenerDerivesPerConnSeeds(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := WrapListener(base, Config{Seed: 1, DropProb: 0.3}, nil)
	defer l.Close()
	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	for i := 0; i < 2; i++ {
		nc, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
	}
	c1 := (<-accepted).(*Conn)
	c2 := (<-accepted).(*Conn)
	defer c1.Close()
	defer c2.Close()
	if c1.cfg.Seed == c2.cfg.Seed {
		t.Errorf("both accepted conns share seed %d", c1.cfg.Seed)
	}
	if c1.Stats() != c2.Stats() {
		t.Error("accepted conns do not share the listener's stats")
	}
}

// TestDerivedConnsStaggerCountTriggers pins the anti-livelock property:
// consecutive connections from one endpoint hit their count-based reset
// at different points, so a client that reconnects and replays the same
// frames cannot die at the same frame on every attempt.
func TestDerivedConnsStaggerCountTriggers(t *testing.T) {
	cfg := Config{Seed: 1, ResetAfterWrites: 8}
	d0, d1 := cfg.derive(0), cfg.derive(1)
	if d0.CountOffset == d1.CountOffset {
		t.Fatalf("consecutive derived conns share count offset %d", d0.CountOffset)
	}
	resetAt := func(c Config) int {
		a, b := net.Pipe()
		defer a.Close()
		go io.Copy(io.Discard, b) //nolint:errcheck
		fc := Wrap(a, c, nil)
		for i := 1; i <= c.ResetAfterWrites; i++ {
			if _, err := fc.Write([]byte("m")); err != nil {
				return i
			}
		}
		t.Fatalf("offset %d: no reset within %d writes", c.CountOffset, c.ResetAfterWrites)
		return 0
	}
	if r0, r1 := resetAt(d0), resetAt(d1); r0 == r1 {
		t.Errorf("derived conns both reset on write %d", r0)
	}
	// The offset never reaches the trigger, so every conn still resets.
	if d7 := cfg.derive(7); d7.CountOffset >= cfg.ResetAfterWrites {
		t.Errorf("derive(7) offset %d ≥ trigger %d — reset would never fire", d7.CountOffset, cfg.ResetAfterWrites)
	}
}

func TestRegisterFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := RegisterFlags(fs, "fault")
	err := fs.Parse([]string{
		"-fault-seed", "9",
		"-fault-read-latency", "5ms",
		"-fault-drop-every", "3",
		"-fault-reset-after-writes", "11",
		"-fault-jitter", "0.25",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 9 || cfg.ReadLatency != 5*time.Millisecond ||
		cfg.DropEveryWrite != 3 || cfg.ResetAfterWrites != 11 || cfg.LatencyJitter != 0.25 {
		t.Errorf("parsed config = %+v", cfg)
	}
	if !cfg.Enabled() {
		t.Error("parsed config reports disabled")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := (Config{DropProb: 1.5}).Validate(); err == nil {
		t.Error("Validate accepted DropProb 1.5")
	}
}
