// Package faultnet injects network faults into a net.Conn: added
// latency, partial reads and writes, silently dropped frames, and
// mid-frame connection resets. The paper's prototype (and the seed of
// this reproduction) assumes a well-behaved client–server network; the
// robustness layer earns its guarantees only under adversarial
// schedules, so this package makes the failure modes reproducible.
//
// All randomness comes from a seeded generator: the same Config (same
// Seed) over the same traffic injects the same fault sequence, which is
// what lets the soak tests assert exact outcomes and lets a flaky run be
// replayed. Wrappers derive one sub-generator per connection (seed +
// connection index), so per-connection schedules stay deterministic even
// when connections are accepted or dialed concurrently.
//
// Faults are configured per direction — a read-side stall and a
// write-side drop are different failures — and per call count, which for
// this repo's wire protocol is per message: one WriteMessage is one
// buffered flush, i.e. one Write on the wrapped conn, and frames are
// small enough that the bufio layers never split them.
package faultnet

import (
	"flag"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"
)

// Config describes the fault schedule for one connection (or, via
// WrapListener/Dialer, for every connection of an endpoint).
// The zero value injects nothing.
type Config struct {
	// Seed feeds the deterministic fault generator. Connections wrapped
	// through WrapListener or Dialer use Seed+i for the i-th connection.
	Seed int64

	// ReadLatency and WriteLatency are added before each read or write
	// on the wrapped conn. Latency simulates a slow or congested path;
	// it is the fault that read/write deadlines exist to bound.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// LatencyJitter randomizes each injected delay uniformly within
	// ±(jitter × latency); 0 means fixed delays, 1 means anywhere in
	// [0, 2×latency].
	LatencyJitter float64

	// DropEveryWrite silently discards every Nth write: the caller sees
	// success, the peer sees nothing. With a synchronous RPC protocol a
	// dropped request (or response) strands the peer mid-call — the
	// fault client call deadlines exist to bound. Zero disables.
	DropEveryWrite int
	// DropProb drops each write independently with this probability.
	DropProb float64

	// PartialReadMax caps the bytes returned by one read; the peer's
	// frames arrive fragmented, exercising every io.ReadFull resume
	// path. Zero disables.
	PartialReadMax int
	// PartialWriteMax splits writes into chunks of at most this many
	// bytes (each chunk its own write on the wrapped conn, so chunks
	// interleave with injected latency). Zero disables.
	PartialWriteMax int

	// ResetAfterWrites hard-closes the connection in the middle of the
	// Nth write: half the buffer is written, then the conn is torn down
	// and the write fails. The peer sees a truncated frame — the
	// "mid-frame reset" the wire layer must survive. Zero disables.
	ResetAfterWrites int
	// ResetAfterReads hard-closes the connection on the Nth read before
	// any bytes are returned. Zero disables.
	ResetAfterReads int
	// ResetProb resets each write independently with this probability.
	ResetProb float64

	// CountOffset advances the connection's read/write counters before
	// the first call, shifting the phase of every count-based trigger.
	// WrapListener and Dialer derive it per connection (connection
	// index modulo the smallest configured count): without the stagger,
	// a client that reconnects and replays the same frames hits the
	// same deterministic reset at the same frame every time — a
	// livelock no retry policy can escape.
	CountOffset int
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.ReadLatency > 0 || c.WriteLatency > 0 ||
		c.DropEveryWrite > 0 || c.DropProb > 0 ||
		c.PartialReadMax > 0 || c.PartialWriteMax > 0 ||
		c.ResetAfterWrites > 0 || c.ResetAfterReads > 0 || c.ResetProb > 0
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.LatencyJitter < 0 || c.LatencyJitter > 1:
		return fmt.Errorf("faultnet: LatencyJitter %g outside [0, 1]", c.LatencyJitter)
	case c.DropProb < 0 || c.DropProb > 1:
		return fmt.Errorf("faultnet: DropProb %g outside [0, 1]", c.DropProb)
	case c.ResetProb < 0 || c.ResetProb > 1:
		return fmt.Errorf("faultnet: ResetProb %g outside [0, 1]", c.ResetProb)
	case c.ReadLatency < 0 || c.WriteLatency < 0:
		return fmt.Errorf("faultnet: negative latency")
	case c.DropEveryWrite < 0 || c.PartialReadMax < 0 || c.PartialWriteMax < 0 ||
		c.ResetAfterWrites < 0 || c.ResetAfterReads < 0:
		return fmt.Errorf("faultnet: negative fault count")
	}
	return nil
}

// Stats counts the faults a wrapper (or a family of wrappers sharing it)
// actually injected. Tests use it to prove the schedule fired.
type Stats struct {
	Delays   atomic.Int64 // latency injections
	Drops    atomic.Int64 // silently discarded writes
	Partials atomic.Int64 // reads/writes split or truncated
	Resets   atomic.Int64 // connections torn down mid-frame
}

// Total returns the number of injected faults of every kind.
func (s *Stats) Total() int64 {
	return s.Delays.Load() + s.Drops.Load() + s.Partials.Load() + s.Resets.Load()
}

// ErrInjectedReset is returned from reads and writes that failed because
// the fault schedule reset the connection.
var ErrInjectedReset = &net.OpError{Op: "faultnet", Err: errReset{}}

type errReset struct{}

func (errReset) Error() string   { return "injected connection reset" }
func (errReset) Timeout() bool   { return false }
func (errReset) Temporary() bool { return false }

// Conn wraps a net.Conn with a fault schedule. It forwards deadlines and
// addresses, so the wrapped conn is a drop-in net.Conn for the server's
// and client's timeout machinery. Reads and writes may be concurrent
// with each other (as on any net.Conn); the fault generator is locked.
type Conn struct {
	nc    net.Conn
	cfg   Config
	stats *Stats

	mu     sync.Mutex
	rng    *rand.Rand
	reads  int
	writes int
}

// Wrap returns nc with the fault schedule applied. stats may be nil.
func Wrap(nc net.Conn, cfg Config, stats *Stats) *Conn {
	if stats == nil {
		stats = &Stats{}
	}
	return &Conn{
		nc:     nc,
		cfg:    cfg,
		stats:  stats,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		reads:  cfg.CountOffset,
		writes: cfg.CountOffset,
	}
}

// minCount returns the smallest positive count-based trigger — the
// stagger modulus. Offsets stay below every configured trigger so a
// staggered connection can never start past one and skip it.
func (c Config) minCount() int {
	m := 0
	for _, v := range [...]int{c.DropEveryWrite, c.ResetAfterWrites, c.ResetAfterReads} {
		if v > 0 && (m == 0 || v < m) {
			m = v
		}
	}
	return m
}

// derive specializes the endpoint config for its i-th connection: a
// distinct generator seed and a staggered counter phase.
func (c Config) derive(i int64) Config {
	c.Seed += i
	if m := c.minCount(); m > 0 {
		c.CountOffset += int(i % int64(m))
	}
	return c
}

// Stats returns the fault counters this conn reports into.
func (c *Conn) Stats() *Stats { return c.stats }

// delay sleeps for the configured injected latency, jittered by the
// seeded generator. Generator draws happen under the lock so concurrent
// reads and writes cannot interleave them mid-decision.
func (c *Conn) delay(d time.Duration) {
	if d <= 0 {
		return
	}
	if c.cfg.LatencyJitter > 0 {
		c.mu.Lock()
		f := 1 + c.cfg.LatencyJitter*(2*c.rng.Float64()-1)
		c.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	c.stats.Delays.Add(1)
	time.Sleep(d)
}

// Read implements net.Conn with read-side faults: latency, mid-frame
// resets, and partial reads.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	c.reads++
	reset := c.cfg.ResetAfterReads > 0 && c.reads == c.cfg.ResetAfterReads
	c.mu.Unlock()
	c.delay(c.cfg.ReadLatency)
	if reset {
		c.stats.Resets.Add(1)
		c.nc.Close()
		return 0, ErrInjectedReset
	}
	if max := c.cfg.PartialReadMax; max > 0 && len(p) > max {
		c.stats.Partials.Add(1)
		p = p[:max]
	}
	return c.nc.Read(p)
}

// Write implements net.Conn with write-side faults: latency, silent
// drops, mid-frame resets, and chunked writes.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	drop := c.cfg.DropEveryWrite > 0 && c.writes%c.cfg.DropEveryWrite == 0
	if !drop && c.cfg.DropProb > 0 {
		drop = c.rng.Float64() < c.cfg.DropProb
	}
	reset := c.cfg.ResetAfterWrites > 0 && c.writes == c.cfg.ResetAfterWrites
	if !reset && c.cfg.ResetProb > 0 {
		reset = c.rng.Float64() < c.cfg.ResetProb
	}
	c.mu.Unlock()

	c.delay(c.cfg.WriteLatency)
	switch {
	case drop:
		// The caller believes the bytes left; the peer never sees them.
		c.stats.Drops.Add(1)
		return len(p), nil
	case reset:
		// Tear the frame: half the payload reaches the peer, then the
		// conn dies under the writer.
		c.stats.Resets.Add(1)
		if n := len(p) / 2; n > 0 {
			c.nc.Write(p[:n]) //nolint:errcheck // best-effort torn prefix
		}
		c.nc.Close()
		return 0, ErrInjectedReset
	}
	if max := c.cfg.PartialWriteMax; max > 0 && len(p) > max {
		c.stats.Partials.Add(1)
		var total int
		for len(p) > 0 {
			chunk := p
			if len(chunk) > max {
				chunk = chunk[:max]
			}
			n, err := c.nc.Write(chunk)
			total += n
			if err != nil {
				return total, err
			}
			p = p[n:]
		}
		return total, nil
	}
	return c.nc.Write(p)
}

// Close closes the wrapped conn.
func (c *Conn) Close() error { return c.nc.Close() }

// LocalAddr returns the wrapped conn's local address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// RemoteAddr returns the wrapped conn's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// SetDeadline forwards to the wrapped conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// SetReadDeadline forwards to the wrapped conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// SetWriteDeadline forwards to the wrapped conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// Listener wraps every accepted connection with the fault schedule,
// deriving per-connection seeds so accept order does not perturb any
// one connection's schedule.
type Listener struct {
	net.Listener
	cfg   Config
	stats *Stats
	n     atomic.Int64
}

// WrapListener returns l with every accepted conn fault-wrapped. A nil
// stats allocates a fresh counter set shared by all accepted conns.
func WrapListener(l net.Listener, cfg Config, stats *Stats) *Listener {
	if stats == nil {
		stats = &Stats{}
	}
	return &Listener{Listener: l, cfg: cfg, stats: stats}
}

// Stats returns the shared fault counters of all accepted conns.
func (l *Listener) Stats() *Stats { return l.stats }

// Accept wraps the next accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(nc, l.cfg.derive(l.n.Add(1)-1), l.stats), nil
}

// Dialer returns a dial function that fault-wraps every connection it
// opens, deriving per-connection seeds. It matches the client package's
// Options.Dialer signature. A nil stats allocates a fresh shared set.
func Dialer(cfg Config, stats *Stats) func(addr string) (net.Conn, error) {
	if stats == nil {
		stats = &Stats{}
	}
	var n atomic.Int64
	return func(addr string) (net.Conn, error) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return Wrap(nc, cfg.derive(n.Add(1)-1), stats), nil
	}
}

// RegisterFlags registers the -<prefix>-* fault-injection flags on fs
// and returns the Config they populate. The esr-server and esr-bench
// binaries share this set so a schedule reproduced in one is expressible
// in the other.
func RegisterFlags(fs *flag.FlagSet, prefix string) *Config {
	cfg := &Config{}
	fs.Int64Var(&cfg.Seed, prefix+"-seed", 1, "fault schedule seed")
	fs.DurationVar(&cfg.ReadLatency, prefix+"-read-latency", 0, "injected latency before each read")
	fs.DurationVar(&cfg.WriteLatency, prefix+"-write-latency", 0, "injected latency before each write")
	fs.Float64Var(&cfg.LatencyJitter, prefix+"-jitter", 0, "latency jitter fraction in [0,1]")
	fs.IntVar(&cfg.DropEveryWrite, prefix+"-drop-every", 0, "silently drop every Nth write (0 disables)")
	fs.Float64Var(&cfg.DropProb, prefix+"-drop-prob", 0, "probability of silently dropping each write")
	fs.IntVar(&cfg.PartialReadMax, prefix+"-partial-read", 0, "max bytes returned per read (0 disables)")
	fs.IntVar(&cfg.PartialWriteMax, prefix+"-partial-write", 0, "max bytes written per chunk (0 disables)")
	fs.IntVar(&cfg.ResetAfterWrites, prefix+"-reset-after-writes", 0, "reset the conn mid-frame on the Nth write (0 disables)")
	fs.IntVar(&cfg.ResetAfterReads, prefix+"-reset-after-reads", 0, "reset the conn on the Nth read (0 disables)")
	fs.Float64Var(&cfg.ResetProb, prefix+"-reset-prob", 0, "probability of resetting the conn on each write")
	return cfg
}
