package txnlang

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/epsilondb/epsilondb/internal/core"
)

// Parse compiles a script source into its AST. The grammar, with newlines
// terminating statements and keywords case-insensitive:
//
//	script    = begin { limit | newline } { stmt } terminator
//	begin     = "BEGIN" ("Query" "TIL" | "Update" "TEL") ["="] number
//	limit     = "LIMIT" (group | number) number
//	stmt      = ident "=" "Read" number
//	          | "Write" number "," expr
//	          | "output" "(" arg { "," arg } ")"
//	arg       = string | expr
//	expr      = term { ("+"|"-") term }
//	term      = factor { ("*"|"/") factor }
//	factor    = number | ident | "(" expr ")" | "-" factor
//	terminator= "COMMIT" | "ABORT" | "END"
func Parse(src string) (*Script, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	s, err := p.parseOne()
	if err != nil {
		return nil, err
	}
	if err := p.skipNewlines(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("txnlang: line %d: statements after %s", p.tok.line, strings.ToUpper(s.Terminator))
	}
	return s, nil
}

// ParseAll compiles a load file holding any number of scripts back to
// back — the "data files consisting of a number of transactions" the
// prototype's clients replayed (§6). Each script runs from its BEGIN to
// its terminator.
func ParseAll(src string) ([]*Script, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var scripts []*Script
	for {
		if err := p.skipNewlines(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokEOF {
			if len(scripts) == 0 {
				return nil, fmt.Errorf("txnlang: empty load file")
			}
			return scripts, nil
		}
		s, err := p.parseOne()
		if err != nil {
			return nil, err
		}
		scripts = append(scripts, s)
	}
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// skipNewlines consumes blank lines.
func (p *parser) skipNewlines() error {
	for p.tok.kind == tokNewline {
		if err := p.advance(); err != nil {
			return err
		}
	}
	return nil
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(k tokenKind, context string) (token, error) {
	if p.tok.kind != k {
		return token{}, fmt.Errorf("txnlang: line %d: expected %v in %s, got %v %q",
			p.tok.line, k, context, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

// keyword reports whether the current token is the given case-insensitive
// keyword.
func (p *parser) keyword(w string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, w)
}

// parseOne parses a single script, leaving the cursor just after its
// terminator.
func (p *parser) parseOne() (*Script, error) {
	if err := p.skipNewlines(); err != nil {
		return nil, err
	}
	s := &Script{}
	if err := p.parseBegin(s); err != nil {
		return nil, err
	}
	// LIMIT statements directly after BEGIN (§3.1: "each transaction
	// could have an inconsistency specification part at the beginning").
	for {
		if err := p.skipNewlines(); err != nil {
			return nil, err
		}
		if !p.keyword("LIMIT") {
			break
		}
		if err := p.parseLimit(s); err != nil {
			return nil, err
		}
	}
	// Body statements.
	for {
		if err := p.skipNewlines(); err != nil {
			return nil, err
		}
		switch {
		case p.tok.kind == tokEOF:
			return nil, fmt.Errorf("txnlang: line %d: missing COMMIT, ABORT or END", p.tok.line)
		case p.keyword("COMMIT"), p.keyword("ABORT"), p.keyword("END"):
			s.Terminator = strings.ToLower(p.tok.text)
			if s.Terminator == "end" {
				s.Terminator = "commit"
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			return s, nil
		case p.keyword("Write"):
			st, err := p.parseWrite()
			if err != nil {
				return nil, err
			}
			if s.Kind == core.Query {
				return nil, fmt.Errorf("txnlang: Write inside a Query transaction")
			}
			s.Stmts = append(s.Stmts, st)
		case p.keyword("output"):
			st, err := p.parseOutput()
			if err != nil {
				return nil, err
			}
			s.Stmts = append(s.Stmts, st)
		case p.tok.kind == tokIdent:
			st, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			s.Stmts = append(s.Stmts, st)
		default:
			return nil, fmt.Errorf("txnlang: line %d: unexpected %v %q", p.tok.line, p.tok.kind, p.tok.text)
		}
	}
}

func (p *parser) parseBegin(s *Script) error {
	if !p.keyword("BEGIN") {
		return fmt.Errorf("txnlang: line %d: script must start with BEGIN", p.tok.line)
	}
	if err := p.advance(); err != nil {
		return err
	}
	var limitKeyword string
	switch {
	case p.keyword("Query"):
		s.Kind = core.Query
		limitKeyword = "TIL"
	case p.keyword("Update"):
		s.Kind = core.Update
		limitKeyword = "TEL"
	default:
		return fmt.Errorf("txnlang: line %d: BEGIN must name Query or Update, got %q", p.tok.line, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return err
	}
	if !p.keyword(limitKeyword) {
		return fmt.Errorf("txnlang: line %d: expected %s after BEGIN %s", p.tok.line, limitKeyword, s.Kind)
	}
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind == tokAssign { // the optional '=' of "TEL = 10000"
		if err := p.advance(); err != nil {
			return err
		}
	}
	n, err := p.parseNumber("transaction limit")
	if err != nil {
		return err
	}
	s.Spec.Transaction = n
	return nil
}

func (p *parser) parseLimit(s *Script) error {
	if err := p.advance(); err != nil { // consume LIMIT
		return err
	}
	switch p.tok.kind {
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		n, err := p.parseNumber("group limit")
		if err != nil {
			return err
		}
		s.Spec = s.Spec.WithGroup(name, n)
	case tokNumber:
		obj, err := p.parseNumber("object id")
		if err != nil {
			return err
		}
		n, err := p.parseNumber("object limit")
		if err != nil {
			return err
		}
		s.Spec = s.Spec.WithObject(core.ObjectID(obj), n)
	default:
		return fmt.Errorf("txnlang: line %d: LIMIT needs a group name or object id", p.tok.line)
	}
	return nil
}

func (p *parser) parseAssign() (Stmt, error) {
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign, "assignment"); err != nil {
		return nil, err
	}
	if !p.keyword("Read") {
		return nil, fmt.Errorf("txnlang: line %d: only Read may be assigned, got %q", p.tok.line, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	obj, err := p.parseNumber("object id")
	if err != nil {
		return nil, err
	}
	return &ReadStmt{Var: name, Object: core.ObjectID(obj)}, nil
}

func (p *parser) parseWrite() (Stmt, error) {
	if err := p.advance(); err != nil { // consume Write
		return nil, err
	}
	obj, err := p.parseNumber("object id")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, "Write"); err != nil {
		return nil, err
	}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &WriteStmt{Object: core.ObjectID(obj), Expr: expr}, nil
}

func (p *parser) parseOutput() (Stmt, error) {
	if err := p.advance(); err != nil { // consume output
		return nil, err
	}
	if _, err := p.expect(tokLParen, "output"); err != nil {
		return nil, err
	}
	st := &OutputStmt{}
	for {
		if p.tok.kind == tokString {
			lit := p.tok.text
			st.Args = append(st.Args, OutputArg{Literal: &lit})
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else {
			expr, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Args = append(st.Args, OutputArg{Expr: expr})
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "output"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseNumber(context string) (int64, error) {
	t, err := p.expect(tokNumber, context)
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("txnlang: line %d: invalid %s %q", t.line, context, t.text)
	}
	return n, nil
}

func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op := byte('+')
		if p.tok.kind == tokMinus {
			op = '-'
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokStar || p.tok.kind == tokSlash {
		op := byte('*')
		if p.tok.kind == tokSlash {
			op = '/'
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (Expr, error) {
	switch p.tok.kind {
	case tokNumber:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("txnlang: line %d: invalid number %q", p.tok.line, p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &NumLit{Value: n}, nil
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &VarRef{Name: name}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "expression"); err != nil {
			return nil, err
		}
		return e, nil
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: '-', L: &NumLit{Value: 0}, R: f}, nil
	default:
		return nil, fmt.Errorf("txnlang: line %d: expected expression, got %v %q", p.tok.line, p.tok.kind, p.tok.text)
	}
}
