package txnlang

import (
	"fmt"
	"io"
	"strings"

	"github.com/epsilondb/epsilondb/internal/core"
)

// Executor is one in-progress transaction attempt that a script can drive.
// Both the embedded engine (tso.Engine via an adapter) and the network
// client (client.Txn) satisfy it.
type Executor interface {
	// Read returns the value of an object.
	Read(obj core.ObjectID) (core.Value, error)
	// Write installs an absolute value.
	Write(obj core.ObjectID, value core.Value) error
	// Commit finishes the attempt successfully.
	Commit() error
	// Abort abandons the attempt.
	Abort() error
}

// Beginner starts transaction attempts; it abstracts over the embedded
// engine and the network client so RunRetry can resubmit aborted scripts.
type Beginner interface {
	// BeginScript starts an attempt for the script's kind and bounds.
	BeginScript(kind core.Kind, spec core.BoundSpec) (Executor, error)
	// IsAbort classifies an execution error: aborts are retried.
	IsAbort(err error) bool
}

// Output is one value produced by an output(...) statement.
type Output struct {
	Text string
}

// RunResult is the outcome of one successful script execution.
type RunResult struct {
	// Env holds the final variable bindings.
	Env map[string]core.Value
	// Outputs are the rendered output(...) lines in order.
	Outputs []Output
}

// Run executes a parsed script against one transaction attempt. On
// error the attempt is aborted (if the executor still accepts it) and
// the error returned. out may be nil; when set, output lines are also
// written to it.
func Run(s *Script, exec Executor, out io.Writer) (*RunResult, error) {
	res := &RunResult{Env: make(map[string]core.Value)}
	for _, st := range s.Stmts {
		switch st := st.(type) {
		case *ReadStmt:
			v, err := exec.Read(st.Object)
			if err != nil {
				return nil, err
			}
			res.Env[st.Var] = v
		case *WriteStmt:
			v, err := st.Expr.Eval(res.Env)
			if err != nil {
				_ = exec.Abort()
				return nil, err
			}
			if err := exec.Write(st.Object, v); err != nil {
				return nil, err
			}
		case *OutputStmt:
			line, err := renderOutput(st, res.Env)
			if err != nil {
				_ = exec.Abort()
				return nil, err
			}
			res.Outputs = append(res.Outputs, Output{Text: line})
			if out != nil {
				fmt.Fprintln(out, line)
			}
		default:
			_ = exec.Abort()
			return nil, fmt.Errorf("txnlang: unknown statement %T", st)
		}
	}
	if s.Terminator == "abort" {
		if err := exec.Abort(); err != nil {
			return nil, err
		}
		return res, nil
	}
	if err := exec.Commit(); err != nil {
		return nil, err
	}
	return res, nil
}

// RunRetry executes a script to completion against a Beginner,
// resubmitting after engine aborts with fresh attempts, up to
// maxAttempts (zero means unlimited). It returns the result and the
// number of attempts.
func RunRetry(s *Script, b Beginner, out io.Writer, maxAttempts int) (*RunResult, int, error) {
	attempts := 0
	for {
		attempts++
		exec, err := b.BeginScript(s.Kind, s.Spec)
		if err != nil {
			return nil, attempts, err
		}
		res, err := Run(s, exec, out)
		if err == nil {
			return res, attempts, nil
		}
		if !b.IsAbort(err) {
			return nil, attempts, err
		}
		if maxAttempts > 0 && attempts >= maxAttempts {
			return nil, attempts, err
		}
	}
}

// renderOutput formats an output(...) line: string literals verbatim,
// expressions as decimal integers, space-free concatenation matching the
// paper's output("Sum is: ", t1+t2) style.
func renderOutput(st *OutputStmt, env map[string]core.Value) (string, error) {
	var sb strings.Builder
	for _, a := range st.Args {
		if a.Literal != nil {
			sb.WriteString(*a.Literal)
			continue
		}
		v, err := a.Expr.Eval(env)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	return sb.String(), nil
}
