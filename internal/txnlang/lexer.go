// Package txnlang implements the transaction script language used
// throughout the paper's examples (§3):
//
//	BEGIN Query TIL 100000
//	LIMIT company 4000
//	LIMIT com1 200
//	t1 = Read 1863
//	t2 = Read 1427
//	output("Sum is: ", t1+t2)
//	COMMIT
//
//	BEGIN Update TEL = 10000
//	t1 = Read 1923
//	Write 1078 , t1+3000
//	COMMIT
//
// Scripts are parsed into an AST and executed against any Executor (the
// embedded engine, or a network client), with write expressions evaluated
// over the values bound by earlier reads — exactly the dependence the
// paper's update example exhibits.
package txnlang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokNewline
	tokIdent  // identifiers and keywords
	tokNumber // integer literal
	tokString // double-quoted string
	tokAssign // =
	tokComma  // ,
	tokLParen // (
	tokRParen // )
	tokPlus   // +
	tokMinus  // -
	tokStar   // *
	tokSlash  // /
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of script"
	case tokNewline:
		return "end of line"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokAssign:
		return "'='"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	default:
		return fmt.Sprintf("token(%d)", k)
	}
}

// token is one lexical token with its source line for error reporting.
type token struct {
	kind tokenKind
	text string
	line int
}

// lexer scans a script into tokens. Comments run from '#' or "--" to end
// of line. Newlines are significant: they terminate statements.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.pos++
			t := token{kind: tokNewline, line: l.line}
			l.line++
			return t, nil
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.skipLineComment()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			l.skipLineComment()
		case c == '=':
			l.pos++
			return token{kind: tokAssign, text: "=", line: l.line}, nil
		case c == ',':
			l.pos++
			return token{kind: tokComma, text: ",", line: l.line}, nil
		case c == '(':
			l.pos++
			return token{kind: tokLParen, text: "(", line: l.line}, nil
		case c == ')':
			l.pos++
			return token{kind: tokRParen, text: ")", line: l.line}, nil
		case c == '+':
			l.pos++
			return token{kind: tokPlus, text: "+", line: l.line}, nil
		case c == '-':
			l.pos++
			return token{kind: tokMinus, text: "-", line: l.line}, nil
		case c == '*':
			l.pos++
			return token{kind: tokStar, text: "*", line: l.line}, nil
		case c == '/':
			l.pos++
			return token{kind: tokSlash, text: "/", line: l.line}, nil
		case c == '"':
			return l.scanString()
		case c >= '0' && c <= '9':
			return l.scanNumber()
		case isIdentStart(rune(c)):
			return l.scanIdent()
		default:
			return token{}, fmt.Errorf("txnlang: line %d: unexpected character %q", l.line, c)
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

// skipLineComment consumes everything up to (not including) the newline.
func (l *lexer) skipLineComment() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) scanString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return token{kind: tokString, text: sb.String(), line: l.line}, nil
		}
		if c == '\n' {
			break
		}
		sb.WriteByte(c)
		l.pos++
	}
	l.pos = start
	return token{}, fmt.Errorf("txnlang: line %d: unterminated string", l.line)
}

func (l *lexer) scanNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
}

func (l *lexer) scanIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
