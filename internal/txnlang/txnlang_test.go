package txnlang

import (
	"strings"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

// paperQuery is (a shortened form of) the query ET from §3.2.1.
const paperQuery = `
BEGIN Query TIL = 100000
t1 = Read 1863
t2 = Read 1427
t3 = Read 1912
output("Sum is: ", t1+t2+t3)
COMMIT
`

// paperUpdate is the update ET from §3.2.1.
const paperUpdate = `
BEGIN Update TEL = 10000
t1 = Read 1923
t2 = Read 1644
Write 1078 , t2+3000
t3 = Read 1066
t4 = Read 1213
Write 1727 , t3-t4+4230
Write 1501 , t1+t4+7935
COMMIT
`

// hierarchical mirrors the §3.1 example header.
const hierarchical = `
BEGIN Query TIL 10000
LIMIT company 4000
LIMIT preferred 3000
LIMIT personal 3000
LIMIT com1 200
t1 = Read 2745
END
`

func TestParsePaperQuery(t *testing.T) {
	s, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != core.Query || s.Spec.Transaction != 100_000 {
		t.Errorf("header = %v TIL %d", s.Kind, s.Spec.Transaction)
	}
	if len(s.Stmts) != 4 {
		t.Fatalf("stmts = %d, want 4", len(s.Stmts))
	}
	r, ok := s.Stmts[0].(*ReadStmt)
	if !ok || r.Var != "t1" || r.Object != 1863 {
		t.Errorf("first stmt = %v", s.Stmts[0])
	}
	if _, ok := s.Stmts[3].(*OutputStmt); !ok {
		t.Errorf("last stmt = %v", s.Stmts[3])
	}
	if s.Terminator != "commit" {
		t.Errorf("terminator = %q", s.Terminator)
	}
}

func TestParsePaperUpdate(t *testing.T) {
	s, err := Parse(paperUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != core.Update || s.Spec.Transaction != 10_000 {
		t.Errorf("header = %v TEL %d", s.Kind, s.Spec.Transaction)
	}
	w, ok := s.Stmts[2].(*WriteStmt)
	if !ok || w.Object != 1078 {
		t.Fatalf("third stmt = %v", s.Stmts[2])
	}
	if w.String() != "Write 1078 , (t2 + 3000)" {
		t.Errorf("write = %q", w.String())
	}
	// Write 1727 , t3-t4+4230 parses left-associatively.
	w2 := s.Stmts[5].(*WriteStmt)
	if w2.String() != "Write 1727 , ((t3 - t4) + 4230)" {
		t.Errorf("write = %q", w2.String())
	}
}

func TestParseHierarchicalLimits(t *testing.T) {
	s, err := Parse(hierarchical)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]core.Distance{"company": 4000, "preferred": 3000, "personal": 3000, "com1": 200}
	for name, limit := range want {
		if got := s.Spec.Groups[name]; got != limit {
			t.Errorf("LIMIT %s = %d, want %d", name, got, limit)
		}
	}
	if s.Terminator != "commit" { // END is an alias
		t.Errorf("terminator = %q", s.Terminator)
	}
}

func TestParseObjectLevelLimit(t *testing.T) {
	s, err := Parse("BEGIN Query TIL 10\nLIMIT 42 7\nt = Read 42\nCOMMIT\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Spec.Objects[42]; got != 7 {
		t.Errorf("object override = %d, want 7", got)
	}
}

func TestParseComments(t *testing.T) {
	src := `
# leading comment
BEGIN Query TIL 5 -- trailing comment
t = Read 1   # another
COMMIT
`
	if _, err := Parse(src); err != nil {
		t.Errorf("comments broke parsing: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, frag string }{
		{"empty", "", "must start with BEGIN"},
		{"no kind", "BEGIN Foo TIL 1\nCOMMIT\n", "Query or Update"},
		{"wrong limit keyword", "BEGIN Query TEL 1\nCOMMIT\n", "expected TIL"},
		{"write in query", "BEGIN Query TIL 1\nWrite 1 , 2\nCOMMIT\n", "Write inside a Query"},
		{"missing terminator", "BEGIN Query TIL 1\nt = Read 1\n", "missing COMMIT"},
		{"junk after commit", "BEGIN Query TIL 1\nCOMMIT\nt = Read 1\n", "statements after COMMIT"},
		{"bad assignment", "BEGIN Query TIL 1\nt = Write 1\nCOMMIT\n", "only Read"},
		{"unterminated string", "BEGIN Query TIL 1\noutput(\"oops\nCOMMIT\n", "unterminated string"},
		{"bad char", "BEGIN Query TIL 1\nt = Read 1 @\nCOMMIT\n", "unexpected character"},
		{"limit needs target", "BEGIN Query TIL 1\nLIMIT = 4\nCOMMIT\n", "group name or object id"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: parse succeeded", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestExprEvaluation(t *testing.T) {
	s, err := Parse("BEGIN Update TEL 0\nWrite 1 , 2+3*4-10/2\nCOMMIT\n")
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Stmts[0].(*WriteStmt).Expr.Eval(nil)
	if err != nil || v != 9 {
		t.Errorf("2+3*4-10/2 = %d,%v, want 9", v, err)
	}
}

func TestExprUnaryMinusAndParens(t *testing.T) {
	s, err := Parse("BEGIN Update TEL 0\nWrite 1 , -(2+3)*2\nCOMMIT\n")
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Stmts[0].(*WriteStmt).Expr.Eval(nil)
	if err != nil || v != -10 {
		t.Errorf("-(2+3)*2 = %d,%v, want -10", v, err)
	}
}

func TestExprErrors(t *testing.T) {
	if _, err := (&VarRef{Name: "ghost"}).Eval(map[string]core.Value{}); err == nil {
		t.Error("undefined variable evaluated")
	}
	div := &BinOp{Op: '/', L: &NumLit{Value: 1}, R: &NumLit{Value: 0}}
	if _, err := div.Eval(nil); err == nil {
		t.Error("division by zero evaluated")
	}
}

// newScriptEngine returns an engine whose objects carry the ids used in
// the paper snippets.
func newScriptEngine(t *testing.T) (*tso.Engine, EngineRunner) {
	t.Helper()
	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for _, id := range []core.ObjectID{1863, 1427, 1912, 1923, 1644, 1078, 1066, 1213, 1727, 1501, 2745, 1, 42} {
		if _, err := st.Create(id, core.Value(id)); err != nil {
			t.Fatal(err)
		}
	}
	e := tso.NewEngine(st, tso.Options{})
	return e, EngineRunner{Engine: e, Gen: tsgen.NewGenerator(0, &tsgen.LogicalClock{})}
}

func TestRunPaperQueryAgainstEngine(t *testing.T) {
	_, runner := newScriptEngine(t)
	s, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	res, attempts, err := RunRetry(s, runner, &out, 0)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d", attempts)
	}
	wantSum := core.Value(1863 + 1427 + 1912)
	if res.Env["t1"] != 1863 || res.Env["t3"] != 1912 {
		t.Errorf("env = %v", res.Env)
	}
	if len(res.Outputs) != 1 || !strings.Contains(res.Outputs[0].Text, "Sum is: ") {
		t.Errorf("outputs = %v", res.Outputs)
	}
	if !strings.Contains(out.String(), "Sum is: 5202") {
		t.Errorf("out = %q, want sum %d", out.String(), wantSum)
	}
}

func TestRunPaperUpdateAgainstEngine(t *testing.T) {
	e, runner := newScriptEngine(t)
	s, err := Parse(paperUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunRetry(s, runner, nil, 0); err != nil {
		t.Fatal(err)
	}
	// Write 1078 , t2+3000 with t2 = 1644 → 4644.
	q, err := e.RunProgram(core.NewQuery(0, 1078, 1727, 1501), tsgen.Make(1_000_000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if q.Values[0] != 4644 {
		t.Errorf("object 1078 = %d, want 4644", q.Values[0])
	}
	if q.Values[1] != 1066-1213+4230 {
		t.Errorf("object 1727 = %d, want %d", q.Values[1], 1066-1213+4230)
	}
	if q.Values[2] != 1923+1213+7935 {
		t.Errorf("object 1501 = %d, want %d", q.Values[2], 1923+1213+7935)
	}
}

func TestRunAbortTerminatorLeavesNoTrace(t *testing.T) {
	e, runner := newScriptEngine(t)
	s, err := Parse("BEGIN Update TEL 0\nWrite 1 , 999\nABORT\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunRetry(s, runner, nil, 0); err != nil {
		t.Fatal(err)
	}
	q, err := e.RunProgram(core.NewQuery(0, 1), tsgen.Make(1_000_000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if q.Sum != 1 {
		t.Errorf("object 1 = %d after ABORT, want 1", q.Sum)
	}
}

func TestRunRetryResubmitsOnEngineAbort(t *testing.T) {
	e, runner := newScriptEngine(t)
	// Commit a younger write first so the script's first attempt (older
	// logical timestamp would be fresh...) — instead use an explicit old
	// generator: pre-advance the engine with a write at a huge timestamp.
	u, err := e.Begin(core.Update, tsgen.Make(5, 9), core.SRSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write(u, 42, 4242); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	s, err := Parse("BEGIN Query TIL 0\nt = Read 42\noutput(t)\nCOMMIT\n")
	if err != nil {
		t.Fatal(err)
	}
	res, attempts, err := RunRetry(s, runner, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Errorf("attempts = %d, want ≥ 2 (first is late)", attempts)
	}
	if res.Env["t"] != 4242 {
		t.Errorf("t = %d", res.Env["t"])
	}
}

func TestRunUndefinedVariableAbortsAttempt(t *testing.T) {
	_, runner := newScriptEngine(t)
	s, err := Parse("BEGIN Update TEL 0\nWrite 1 , ghost+1\nCOMMIT\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunRetry(s, runner, nil, 3); err == nil {
		t.Error("undefined variable committed")
	}
}

func TestStmtStrings(t *testing.T) {
	s, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stmts[0].String(); got != "t1 = Read 1863" {
		t.Errorf("ReadStmt.String = %q", got)
	}
	if got := s.Stmts[3].String(); !strings.Contains(got, `output("Sum is: ", `) {
		t.Errorf("OutputStmt.String = %q", got)
	}
}

func TestParseAllMultipleScripts(t *testing.T) {
	src := "BEGIN Query TIL 5\nt = Read 1\nCOMMIT\n\nBEGIN Update TEL 0\nWrite 2 , 7\nABORT\n"
	scripts, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) != 2 {
		t.Fatalf("parsed %d scripts, want 2", len(scripts))
	}
	if scripts[0].Kind != core.Query || scripts[0].Terminator != "commit" {
		t.Errorf("first script: %v %q", scripts[0].Kind, scripts[0].Terminator)
	}
	if scripts[1].Kind != core.Update || scripts[1].Terminator != "abort" {
		t.Errorf("second script: %v %q", scripts[1].Kind, scripts[1].Terminator)
	}
}

func TestParseAllEmptyAndMalformed(t *testing.T) {
	if _, err := ParseAll("\n\n"); err == nil {
		t.Error("empty load file accepted")
	}
	if _, err := ParseAll("BEGIN Query TIL 5\nCOMMIT\nBEGIN Bogus\n"); err == nil {
		t.Error("malformed second script accepted")
	}
}

func TestParseStillRejectsTrailingScript(t *testing.T) {
	src := "BEGIN Query TIL 5\nCOMMIT\nBEGIN Query TIL 5\nCOMMIT\n"
	if _, err := Parse(src); err == nil {
		t.Error("Parse accepted two scripts; ParseAll is for load files")
	}
	if scripts, err := ParseAll(src); err != nil || len(scripts) != 2 {
		t.Errorf("ParseAll = %d scripts, %v", len(scripts), err)
	}
}
