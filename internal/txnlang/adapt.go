package txnlang

import (
	"github.com/epsilondb/epsilondb/internal/client"
	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

// EngineRunner adapts an embedded tso.Engine (plus a timestamp generator)
// to the Beginner interface, so scripts can run in-process.
type EngineRunner struct {
	Engine *tso.Engine
	Gen    *tsgen.Generator
}

// engineTxn is one engine attempt as an Executor.
type engineTxn struct {
	e  *tso.Engine
	id core.TxnID
}

// BeginScript implements Beginner.
func (r EngineRunner) BeginScript(kind core.Kind, spec core.BoundSpec) (Executor, error) {
	id, err := r.Engine.Begin(kind, r.Gen.Next(), spec)
	if err != nil {
		return nil, err
	}
	return &engineTxn{e: r.Engine, id: id}, nil
}

// IsAbort implements Beginner.
func (EngineRunner) IsAbort(err error) bool {
	_, ok := tso.IsAbort(err)
	return ok
}

func (t *engineTxn) Read(obj core.ObjectID) (core.Value, error) { return t.e.Read(t.id, obj) }
func (t *engineTxn) Write(obj core.ObjectID, v core.Value) error {
	return t.e.Write(t.id, obj, v)
}
func (t *engineTxn) Commit() error { return t.e.Commit(t.id) }
func (t *engineTxn) Abort() error {
	err := t.e.Abort(t.id)
	if err == tso.ErrUnknownTxn {
		// The engine already aborted the attempt internally.
		return nil
	}
	return err
}

// ClientRunner adapts a network client to the Beginner interface, so
// scripts drive a remote server the way the paper's clients replayed
// their transaction load files (§6).
type ClientRunner struct {
	Client *client.Client
}

// BeginScript implements Beginner.
func (r ClientRunner) BeginScript(kind core.Kind, spec core.BoundSpec) (Executor, error) {
	return r.Client.Begin(kind, spec)
}

// IsAbort implements Beginner.
func (ClientRunner) IsAbort(err error) bool {
	_, ok := client.IsAbort(err)
	return ok
}
