package txnlang

import (
	"fmt"

	"github.com/epsilondb/epsilondb/internal/core"
)

// Script is a parsed transaction program: the specification header
// followed by the statements.
type Script struct {
	// Kind is Query or Update, from the BEGIN line.
	Kind core.Kind
	// Spec holds the TIL/TEL and the LIMIT statements (group limits, and
	// per-object overrides when the LIMIT target is numeric).
	Spec core.BoundSpec
	// Stmts are the body statements in order. COMMIT/ABORT terminate the
	// script and are represented by Terminator.
	Stmts []Stmt
	// Terminator is "commit" or "abort".
	Terminator string
}

// Stmt is one statement of a script body.
type Stmt interface {
	stmt()
	fmt.Stringer
}

// ReadStmt is `var = Read <object>`.
type ReadStmt struct {
	Var    string
	Object core.ObjectID
}

func (*ReadStmt) stmt() {}

// String implements fmt.Stringer.
func (s *ReadStmt) String() string { return fmt.Sprintf("%s = Read %d", s.Var, s.Object) }

// WriteStmt is `Write <object> , <expr>`.
type WriteStmt struct {
	Object core.ObjectID
	Expr   Expr
}

func (*WriteStmt) stmt() {}

// String implements fmt.Stringer.
func (s *WriteStmt) String() string { return fmt.Sprintf("Write %d , %s", s.Object, s.Expr) }

// OutputStmt is `output(<arg>, <arg>, ...)` where each argument is a
// string literal or an expression.
type OutputStmt struct {
	Args []OutputArg
}

func (*OutputStmt) stmt() {}

// String implements fmt.Stringer.
func (s *OutputStmt) String() string {
	out := "output("
	for i, a := range s.Args {
		if i > 0 {
			out += ", "
		}
		if a.Literal != nil {
			out += fmt.Sprintf("%q", *a.Literal)
		} else {
			out += a.Expr.String()
		}
	}
	return out + ")"
}

// OutputArg is one argument of output: either a string literal or an
// expression.
type OutputArg struct {
	Literal *string
	Expr    Expr
}

// Expr is an integer expression over read variables.
type Expr interface {
	// Eval computes the expression over the variable bindings.
	Eval(env map[string]core.Value) (core.Value, error)
	fmt.Stringer
}

// NumLit is an integer literal.
type NumLit struct{ Value core.Value }

// Eval implements Expr.
func (n *NumLit) Eval(map[string]core.Value) (core.Value, error) { return n.Value, nil }

// String implements fmt.Stringer.
func (n *NumLit) String() string { return fmt.Sprintf("%d", n.Value) }

// VarRef references a variable bound by an earlier Read.
type VarRef struct{ Name string }

// Eval implements Expr.
func (v *VarRef) Eval(env map[string]core.Value) (core.Value, error) {
	val, ok := env[v.Name]
	if !ok {
		return 0, fmt.Errorf("txnlang: undefined variable %q", v.Name)
	}
	return val, nil
}

// String implements fmt.Stringer.
func (v *VarRef) String() string { return v.Name }

// BinOp is a binary arithmetic operation.
type BinOp struct {
	Op   byte // '+', '-', '*', '/'
	L, R Expr
}

// Eval implements Expr.
func (b *BinOp) Eval(env map[string]core.Value) (core.Value, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("txnlang: division by zero")
		}
		return l / r, nil
	default:
		return 0, fmt.Errorf("txnlang: unknown operator %q", b.Op)
	}
}

// String implements fmt.Stringer.
func (b *BinOp) String() string {
	return fmt.Sprintf("(%s %c %s)", b.L, b.Op, b.R)
}
