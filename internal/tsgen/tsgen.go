// Package tsgen generates the transaction timestamps that drive the
// timestamp-ordering concurrency control.
//
// The paper's prototype ran clients on separate workstations whose local
// clocks disagreed by up to two minutes; a correction factor was applied
// to each site's local time to achieve virtual clock synchronization, and
// the site id was appended to the timestamp to guarantee uniqueness
// (Kamath & Ramamritham 1993, §6). This package reproduces that design:
//
//   - Timestamp packs a tick count and a site id into one comparable value.
//   - Clock abstracts the time source; SkewedClock simulates a drifting
//     workstation clock and LogicalClock gives deterministic tests.
//   - Synchronizer estimates a per-site correction factor against a
//     reference clock, exactly the virtual-sync technique of the paper.
//   - Generator issues strictly increasing timestamps for one site.
package tsgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// siteBits is the number of low-order bits reserved for the site id.
// 16 bits allow 65,536 client sites; the paper used 10.
const siteBits = 16

// MaxSite is the largest site id a Timestamp can carry.
const MaxSite = 1<<siteBits - 1

// Timestamp orders every operation in the system. The high 48 bits hold a
// (corrected) tick count and the low 16 bits the originating site id, so
// timestamps from different sites are unique and totally ordered, with
// ties on the tick broken deterministically by site.
//
// The zero Timestamp is reserved to mean "no timestamp" (for example, an
// object that has never been written).
type Timestamp uint64

// None is the zero timestamp, older than every real timestamp.
const None Timestamp = 0

// Make builds a timestamp from a tick count and site id.
func Make(ticks int64, site int) Timestamp {
	if ticks < 0 {
		ticks = 0
	}
	return Timestamp(uint64(ticks)<<siteBits | uint64(site&MaxSite))
}

// Ticks returns the tick component of the timestamp.
func (t Timestamp) Ticks() int64 { return int64(t >> siteBits) }

// Site returns the id of the site that issued the timestamp.
func (t Timestamp) Site() int { return int(t & MaxSite) }

// Before reports whether t is strictly older than u.
func (t Timestamp) Before(u Timestamp) bool { return t < u }

// After reports whether t is strictly younger than u.
func (t Timestamp) After(u Timestamp) bool { return t > u }

// IsNone reports whether t is the reserved "no timestamp" value.
func (t Timestamp) IsNone() bool { return t == None }

// String renders the timestamp as ticks.site for logs and test failures.
func (t Timestamp) String() string {
	if t.IsNone() {
		return "ts(none)"
	}
	return fmt.Sprintf("ts(%d.%d)", t.Ticks(), t.Site())
}

// Clock is a source of tick counts. Ticks are microseconds for wall
// clocks, but any strictly meaningful monotone unit works: the engine
// only compares timestamps.
type Clock interface {
	// Now returns the current tick count.
	Now() int64
}

// WallClock reads the operating-system clock in microseconds.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() int64 { return time.Now().UnixMicro() }

// SkewedClock offsets another clock by a fixed skew, simulating the
// unsynchronized workstation clocks of the paper's LAN (the observed
// spread there was about two minutes).
type SkewedClock struct {
	// Base is the underlying clock; nil means WallClock.
	Base Clock
	// Skew is added to every reading; it may be negative.
	Skew int64
}

// Now implements Clock.
func (c SkewedClock) Now() int64 {
	base := c.Base
	if base == nil {
		base = WallClock{}
	}
	return base.Now() + c.Skew
}

// LogicalClock is a deterministic clock that advances by one tick per
// reading. It makes concurrency-control tests and experiments
// reproducible: the order of Now calls fully determines the timestamps.
type LogicalClock struct {
	ticks atomic.Int64
}

// Now implements Clock, returning a strictly increasing tick count.
func (c *LogicalClock) Now() int64 { return c.ticks.Add(1) }

// Set advances the clock to at least the given tick count.
func (c *LogicalClock) Set(ticks int64) {
	for {
		cur := c.ticks.Load()
		if cur >= ticks || c.ticks.CompareAndSwap(cur, ticks) {
			return
		}
	}
}

// Synchronizer computes the correction factor that maps a site's local
// clock onto a reference clock — the virtual clock synchronization of §6.
// Sampling several round trips and averaging mirrors what the prototype's
// startup handshake did.
type Synchronizer struct {
	// Samples is the number of offset measurements to average.
	// Zero means a single sample.
	Samples int
}

// Correction estimates reference − local. Adding the result to local
// readings yields virtually synchronized time.
func (s Synchronizer) Correction(local, reference Clock) int64 {
	n := s.Samples
	if n <= 0 {
		n = 1
	}
	var total int64
	for i := 0; i < n; i++ {
		total += reference.Now() - local.Now()
	}
	return total / int64(n)
}

// Generator issues strictly increasing timestamps for one site. It is
// safe for concurrent use: the paper's clients were single-threaded, but
// our experiment harness shares a generator between goroutines.
type Generator struct {
	mu         sync.Mutex
	clock      Clock
	site       int
	correction int64
	lastTicks  int64
}

// NewGenerator returns a Generator for the given site. A nil clock means
// WallClock. Site ids outside [0, MaxSite] are truncated to the low 16
// bits, matching the packing used by Make.
func NewGenerator(site int, clock Clock) *Generator {
	if clock == nil {
		clock = WallClock{}
	}
	return &Generator{clock: clock, site: site & MaxSite}
}

// SetCorrection installs the virtual-sync correction factor, normally
// obtained from Synchronizer.Correction.
func (g *Generator) SetCorrection(c int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.correction = c
}

// Correction returns the currently installed correction factor.
func (g *Generator) Correction() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.correction
}

// Site returns the site id embedded in every timestamp this generator
// issues.
func (g *Generator) Site() int { return g.site }

// Advance raises the generator's monotonicity floor: every later Next
// returns ticks strictly greater than floorTicks. Reconnecting clients
// use it to carry per-site uniqueness across generator instances — a
// fresh generator with a re-estimated clock correction must never
// reissue a (tick, site) pair a predecessor for the same site already
// used, because two committed writes sharing a timestamp would leave
// the engine's version order undefined.
func (g *Generator) Advance(floorTicks int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if floorTicks > g.lastTicks {
		g.lastTicks = floorTicks
	}
}

// LastTicks returns the tick component of the most recently issued
// timestamp (zero before the first Next), the value a successor
// generator should Advance past.
func (g *Generator) LastTicks() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lastTicks
}

// Next returns a timestamp strictly greater than any previous timestamp
// from this generator. If the corrected clock stalls or runs backwards the
// tick component is bumped past the last issued value, preserving
// monotonicity per site (uniqueness across sites comes from the site id).
func (g *Generator) Next() Timestamp {
	g.mu.Lock()
	defer g.mu.Unlock()
	ticks := g.clock.Now() + g.correction
	if ticks <= g.lastTicks {
		ticks = g.lastTicks + 1
	}
	g.lastTicks = ticks
	return Make(ticks, g.site)
}
