package tsgen

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMakeRoundTrip(t *testing.T) {
	ts := Make(12345, 7)
	if ts.Ticks() != 12345 {
		t.Errorf("Ticks() = %d, want 12345", ts.Ticks())
	}
	if ts.Site() != 7 {
		t.Errorf("Site() = %d, want 7", ts.Site())
	}
}

func TestMakeNegativeTicksClampToZero(t *testing.T) {
	ts := Make(-5, 3)
	if ts.Ticks() != 0 {
		t.Errorf("Ticks() = %d, want 0", ts.Ticks())
	}
}

func TestTimestampOrdering(t *testing.T) {
	a := Make(10, 1)
	b := Make(10, 2)
	c := Make(11, 0)
	if !a.Before(b) {
		t.Error("same tick: lower site must order first")
	}
	if !b.Before(c) {
		t.Error("higher tick must dominate site id")
	}
	if !c.After(a) {
		t.Error("After is inverted")
	}
}

func TestNoneIsOlderThanEverything(t *testing.T) {
	if !None.IsNone() {
		t.Error("None.IsNone() = false")
	}
	if !None.Before(Make(0, 1)) {
		t.Error("None must be older than every real timestamp")
	}
	if None.String() != "ts(none)" {
		t.Errorf("None.String() = %q", None.String())
	}
}

func TestTimestampString(t *testing.T) {
	if got := Make(42, 3).String(); got != "ts(42.3)" {
		t.Errorf("String() = %q, want ts(42.3)", got)
	}
}

func TestMakeRoundTripProperty(t *testing.T) {
	prop := func(ticks int64, site uint16) bool {
		if ticks < 0 {
			ticks = -ticks
		}
		ticks &= (1 << 47) - 1 // keep within the 48-bit tick field
		ts := Make(ticks, int(site))
		return ts.Ticks() == ticks && ts.Site() == int(site)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderingMatchesTickSitePairProperty(t *testing.T) {
	prop := func(t1, t2 int64, s1, s2 uint16) bool {
		t1 &= (1 << 40) - 1
		t2 &= (1 << 40) - 1
		if t1 < 0 {
			t1 = -t1
		}
		if t2 < 0 {
			t2 = -t2
		}
		a, b := Make(t1, int(s1)), Make(t2, int(s2))
		wantBefore := t1 < t2 || (t1 == t2 && s1 < s2)
		return a.Before(b) == wantBefore
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLogicalClockIsStrictlyIncreasing(t *testing.T) {
	var c LogicalClock
	prev := c.Now()
	for i := 0; i < 100; i++ {
		cur := c.Now()
		if cur <= prev {
			t.Fatalf("LogicalClock went backwards: %d after %d", cur, prev)
		}
		prev = cur
	}
}

func TestLogicalClockSet(t *testing.T) {
	var c LogicalClock
	c.Set(500)
	if got := c.Now(); got != 501 {
		t.Errorf("Now() after Set(500) = %d, want 501", got)
	}
	c.Set(100) // must not rewind
	if got := c.Now(); got != 502 {
		t.Errorf("Now() after backwards Set = %d, want 502", got)
	}
}

func TestSkewedClock(t *testing.T) {
	var base LogicalClock
	skewed := SkewedClock{Base: &base, Skew: 120_000_000} // two minutes in µs
	if got := skewed.Now(); got != 120_000_001 {
		t.Errorf("skewed Now() = %d, want 120000001", got)
	}
}

func TestSkewedClockDefaultsToWallClock(t *testing.T) {
	c := SkewedClock{Skew: 0}
	if c.Now() <= 0 {
		t.Error("SkewedClock with nil base should read the wall clock")
	}
}

func TestSynchronizerRecoversSkew(t *testing.T) {
	var ref LogicalClock
	ref.Set(1_000_000)
	local := SkewedClock{Base: &ref, Skew: -120_000_000}
	corr := Synchronizer{Samples: 4}.Correction(local, &ref)
	// The local clock lags the reference by two minutes; the correction
	// must recover roughly that offset (sampling consumes a few ticks).
	if corr < 119_999_990 || corr > 120_000_010 {
		t.Errorf("Correction = %d, want ~120000000", corr)
	}
}

func TestSynchronizerZeroSamplesMeansOne(t *testing.T) {
	var ref LogicalClock
	ref.Set(1000)
	local := SkewedClock{Base: &ref, Skew: -100}
	corr := Synchronizer{}.Correction(local, &ref)
	if corr < 99 || corr > 101 {
		t.Errorf("Correction = %d, want ~100", corr)
	}
}

func TestGeneratorMonotonic(t *testing.T) {
	g := NewGenerator(3, &LogicalClock{})
	prev := g.Next()
	for i := 0; i < 1000; i++ {
		cur := g.Next()
		if !prev.Before(cur) {
			t.Fatalf("generator not monotonic: %v then %v", prev, cur)
		}
		if cur.Site() != 3 {
			t.Fatalf("wrong site id: %v", cur)
		}
		prev = cur
	}
}

func TestGeneratorMonotonicWithStalledClock(t *testing.T) {
	g := NewGenerator(1, stalledClock{})
	prev := g.Next()
	for i := 0; i < 100; i++ {
		cur := g.Next()
		if !prev.Before(cur) {
			t.Fatalf("stalled clock broke monotonicity: %v then %v", prev, cur)
		}
		prev = cur
	}
}

func TestGeneratorAdvanceFloorsSuccessor(t *testing.T) {
	// A reconnecting client hands its last issued ticks to its successor
	// generator; even with a correction that would run the clock
	// backwards, the successor must never reissue a (tick, site) pair.
	var c LogicalClock
	old := NewGenerator(3, &c)
	var last Timestamp
	for i := 0; i < 50; i++ {
		last = old.Next()
	}
	succ := NewGenerator(3, &c)
	succ.SetCorrection(-1000) // a bad re-estimate: corrected clock far behind
	succ.Advance(old.LastTicks())
	if got := succ.Next(); !got.After(last) {
		t.Errorf("successor issued %v, not after predecessor's last %v", got, last)
	}
	if got := old.LastTicks(); got != last.Ticks() {
		t.Errorf("LastTicks() = %d, want %d", got, last.Ticks())
	}
	// Advance never lowers the floor.
	succ.Advance(0)
	if got := succ.Next(); !got.After(last) {
		t.Errorf("Advance(0) lowered the floor: issued %v", got)
	}
}

func TestGeneratorCorrectionShiftsTicks(t *testing.T) {
	var c LogicalClock
	g := NewGenerator(0, &c)
	g.SetCorrection(1000)
	if got := g.Correction(); got != 1000 {
		t.Fatalf("Correction() = %d, want 1000", got)
	}
	ts := g.Next()
	if ts.Ticks() <= 1000 {
		t.Errorf("corrected ticks = %d, want > 1000", ts.Ticks())
	}
}

func TestGeneratorConcurrentUniqueness(t *testing.T) {
	g := NewGenerator(2, &LogicalClock{})
	const workers, perWorker = 8, 200
	out := make(chan Timestamp, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				out <- g.Next()
			}
		}()
	}
	wg.Wait()
	close(out)
	seen := make(map[Timestamp]bool, workers*perWorker)
	for ts := range out {
		if seen[ts] {
			t.Fatalf("duplicate timestamp %v", ts)
		}
		seen[ts] = true
	}
	if len(seen) != workers*perWorker {
		t.Errorf("got %d unique timestamps, want %d", len(seen), workers*perWorker)
	}
}

func TestGeneratorsOnDifferentSitesNeverCollide(t *testing.T) {
	var c LogicalClock
	g1 := NewGenerator(1, &c)
	g2 := NewGenerator(2, &c)
	seen := make(map[Timestamp]bool)
	for i := 0; i < 500; i++ {
		for _, ts := range []Timestamp{g1.Next(), g2.Next()} {
			if seen[ts] {
				t.Fatalf("cross-site duplicate %v", ts)
			}
			seen[ts] = true
		}
	}
}

func TestNewGeneratorNilClockUsesWallClock(t *testing.T) {
	g := NewGenerator(0, nil)
	if ts := g.Next(); ts.Ticks() <= 0 {
		t.Error("nil clock should fall back to the wall clock")
	}
}

func TestGeneratorSiteTruncation(t *testing.T) {
	g := NewGenerator(MaxSite+5, &LogicalClock{})
	if g.Site() != 4 {
		t.Errorf("Site() = %d, want 4 (truncated)", g.Site())
	}
}

// stalledClock always returns the same tick, forcing the generator's
// monotonicity bump to engage.
type stalledClock struct{}

func (stalledClock) Now() int64 { return 42 }
