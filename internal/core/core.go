// Package core defines the epsilon-serializability (ESR) model of the
// system: epsilon transactions and their kinds, inconsistency limits,
// the hierarchical inconsistency-bounds tree with its bottom-up control
// discipline, and the aggregate-query inconsistency tracking of §5.3.2.
//
// The package is the paper's primary contribution in code form. The
// concurrency-control engine (internal/tso) consults this package to
// decide whether an operation that would be rejected under classic
// serializability may proceed under ESR, and the client-visible
// transaction language (internal/txnlang) compiles down to the Program
// type defined here.
//
// Terminology follows Kamath & Ramamritham 1993:
//
//	TIL — transaction import limit, bound on inconsistency a query views.
//	TEL — transaction export limit, bound on inconsistency an update emits.
//	OIL — object import limit, per-object bound on a single read.
//	OEL — object export limit, per-object bound on a single write.
//	GIL — group inconsistency limit, bound on a subtree of the hierarchy.
package core

import (
	"fmt"
	"math"

	"github.com/epsilondb/epsilondb/internal/metricspace"
)

// ObjectID names a database object. The prototype's objects are numbered
// (the paper's examples read objects such as 1863 or com2745 mapped to
// numeric ids).
type ObjectID uint32

// Value is the state of a single object; see metricspace.Value.
type Value = metricspace.Value

// Distance is a magnitude of inconsistency; see metricspace.Distance.
type Distance = metricspace.Distance

// NoLimit is the sentinel for an unbounded inconsistency limit. Setting
// every limit to NoLimit admits any epsilon behaviour; setting every
// limit to zero reduces ESR to classic serializability.
const NoLimit Distance = math.MaxInt64

// Kind classifies an epsilon transaction. The paper restricts attention
// to query ETs (read-only, may import inconsistency) running against
// consistent update ETs (read-write, may export inconsistency).
type Kind uint8

const (
	// Query is a read-only epsilon transaction with an import limit.
	Query Kind = iota
	// Update is a read-write epsilon transaction with an export limit.
	// Its reads are kept consistent because its writes depend on them.
	Update
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Query:
		return "query"
	case Update:
		return "update"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// OpKind distinguishes the two data operations of the prototype. Begin,
// Commit and Abort are transaction-control messages, not data operations.
type OpKind uint8

const (
	// OpRead reads the value of an object.
	OpRead OpKind = iota
	// OpWrite replaces the value of an object.
	OpWrite
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Op is one data operation of a transaction program. Writes carry the
// value to install; for programs whose write values depend on earlier
// reads (the paper's update example computes t2+3000), the txnlang
// evaluator resolves the expression before the operation is submitted.
type Op struct {
	Kind   OpKind
	Object ObjectID
	// Value is the value to write; ignored for reads.
	Value Value
	// Delta, when non-zero on a write, asks the engine to write
	// current+Delta instead of Value. The workload generator uses deltas
	// so that restarted transactions remain meaningful after other
	// updates have changed the object.
	Delta Value
	// UseDelta selects Delta-mode for a write (a zero Delta is a valid
	// increment, so the mode needs an explicit flag).
	UseDelta bool
}

// Level identifies where in the hierarchy an inconsistency bound was
// violated, for diagnostics and metrics.
type Level uint8

const (
	// LevelObject is the leaf level: a single object's OIL or OEL.
	LevelObject Level = iota
	// LevelGroup is an interior node of the bounds hierarchy.
	LevelGroup
	// LevelTransaction is the root: the transaction's TIL or TEL.
	LevelTransaction
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelObject:
		return "object"
	case LevelGroup:
		return "group"
	case LevelTransaction:
		return "transaction"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// LimitError reports a violated inconsistency bound. The engine aborts
// the transaction that triggered it (§5.3.1: "if the bounds are violated
// at any stage, the operation is unsuccessful and the transaction has to
// be aborted").
type LimitError struct {
	// Level says whether the object, a group, or the transaction bound
	// was violated.
	Level Level
	// Node is the group name for LevelGroup violations, empty otherwise.
	Node string
	// Object is the object whose operation triggered the violation.
	Object ObjectID
	// Distance is the inconsistency the operation would have contributed.
	Distance Distance
	// Accumulated is the inconsistency already charged to the node.
	Accumulated Distance
	// Limit is the violated bound.
	Limit Distance
	// Import is true for import (read-side) violations, false for export.
	Import bool
}

// Error implements error.
func (e *LimitError) Error() string {
	side := "export"
	if e.Import {
		side = "import"
	}
	where := e.Level.String()
	if e.Level == LevelGroup {
		where = fmt.Sprintf("group %q", e.Node)
	}
	return fmt.Sprintf("esr: %s limit exceeded at %s: object %d contributes %d, accumulated %d, limit %d",
		side, where, e.Object, e.Distance, e.Accumulated, e.Limit)
}

// addSat adds two non-negative distances without overflowing past
// NoLimit.
func addSat(a, b Distance) Distance {
	if a > NoLimit-b {
		return NoLimit
	}
	return a + b
}
