package core

import "fmt"

// BoundSpec is the inconsistency-specification part of an epsilon
// transaction — the block of limits the application states before the
// first data operation (§3.1):
//
//	BEGIN Query TIL 10000
//	LIMIT company 4000
//	LIMIT com1 200
//	...
//
// The transaction limit sits at the root of the hierarchy, group limits
// in the middle, and per-object overrides at the leaves. Any node without
// an explicit limit is unbounded at that node (the paper's two-level runs
// specify only the transaction limit and rely on server-side OIL/OEL for
// the leaves).
type BoundSpec struct {
	// Transaction is the root limit: TIL for queries, TEL for updates.
	Transaction Distance
	// Groups maps group names to their limits (the LIMIT statements).
	Groups map[string]Distance
	// Objects maps object ids to per-transaction leaf overrides. When an
	// object has no override the engine falls back to the server-side
	// object limit (OIL or OEL stored with the object).
	Objects map[ObjectID]Distance
}

// SRSpec is the specification that reduces ESR to classic
// serializability: a zero transaction limit admits no inconsistency.
func SRSpec() BoundSpec { return BoundSpec{Transaction: 0} }

// UnboundedSpec admits any inconsistency at the transaction level.
func UnboundedSpec() BoundSpec { return BoundSpec{Transaction: NoLimit} }

// WithGroup returns a copy of the spec with one more group limit set.
func (b BoundSpec) WithGroup(name string, limit Distance) BoundSpec {
	groups := make(map[string]Distance, len(b.Groups)+1)
	for k, v := range b.Groups {
		groups[k] = v
	}
	groups[name] = limit
	b.Groups = groups
	return b
}

// WithObject returns a copy of the spec with one more object override.
func (b BoundSpec) WithObject(obj ObjectID, limit Distance) BoundSpec {
	objects := make(map[ObjectID]Distance, len(b.Objects)+1)
	for k, v := range b.Objects {
		objects[k] = v
	}
	objects[obj] = limit
	b.Objects = objects
	return b
}

// Accumulator enforces a BoundSpec over a Schema for one execution of one
// transaction. It maintains the inconsistency accumulated at every node
// of the hierarchy and implements the bottom-up control discipline of
// §5.3.1: an operation contributing inconsistency d to object x is
// admitted only if d fits at the leaf and at every ancestor group and at
// the root; on admission every node on the path is charged d.
//
// Accumulators are per-transaction state and are not safe for concurrent
// use; the transaction manager serializes a transaction's operations.
type Accumulator struct {
	schema *Schema
	// limits[g] and used[g] are the bound and accumulated inconsistency
	// of group g (index 0 is the root / transaction level). On schemas
	// with at most accInlineGroups groups they alias the inline arrays
	// below, so compiling a spec against the paper's flat schema costs no
	// heap allocations beyond the Accumulator itself.
	limits []Distance
	used   []Distance
	// objects holds per-object overrides from the spec.
	objects map[ObjectID]Distance
	// imports is true for import accounting (query), false for export.
	imports bool
	// path is a reusable scratch buffer for PathToRoot.
	path []GroupID
	// inline backing stores for limits, used and path on small schemas.
	inlineLimits [accInlineGroups]Distance
	inlineUsed   [accInlineGroups]Distance
	inlinePath   [accInlineGroups]GroupID
}

// accInlineGroups is the schema size up to which the per-group arrays
// live inside the Accumulator. The flat two-level schema of the paper's
// performance runs has one group; four covers modest hierarchies too.
const accInlineGroups = 4

// sharedFlatSchema backs every nil-schema Accumulator. Building a fresh
// flat schema per transaction cost half the Begin path's allocations;
// one shared instance is safe because all Accumulator accesses to a
// Schema are reads, and this instance never escapes to code that could
// extend it (FlatSchema still returns a fresh mutable schema).
var sharedFlatSchema = FlatSchema()

// NewAccumulator compiles a BoundSpec against a Schema. Group names in
// the spec that do not exist in the schema are reported as an error —
// a silently dropped limit would violate the application's intent.
func NewAccumulator(schema *Schema, spec BoundSpec, imports bool) (*Accumulator, error) {
	a := &Accumulator{}
	if err := a.Init(schema, spec, imports); err != nil {
		return nil, err
	}
	return a, nil
}

// Init compiles a BoundSpec into a (possibly embedded or reused)
// Accumulator in place, the allocation-free form of NewAccumulator: the
// transaction manager embeds the Accumulator in its per-attempt state,
// so beginning a transaction does not heap-allocate the bounds machinery
// separately. Any previously accumulated state is discarded. An
// Accumulator must not be copied by value after Init: the group slices
// may alias the inline arrays of the receiver.
func (a *Accumulator) Init(schema *Schema, spec BoundSpec, imports bool) error {
	if schema == nil {
		schema = sharedFlatSchema
	}
	n := schema.NumGroups()
	a.schema = schema
	a.objects = spec.Objects
	a.imports = imports
	if n <= accInlineGroups {
		a.limits = a.inlineLimits[:n]
		a.used = a.inlineUsed[:n]
	} else {
		a.limits = make([]Distance, n)
		a.used = make([]Distance, n)
	}
	if a.path == nil {
		a.path = a.inlinePath[:0]
	}
	for i := range a.limits {
		a.limits[i] = NoLimit
		a.used[i] = 0
	}
	a.limits[RootGroup] = spec.Transaction
	for name, limit := range spec.Groups {
		g, ok := schema.Group(name)
		if !ok {
			return fmt.Errorf("esr: LIMIT names unknown group %q", name)
		}
		a.limits[g] = limit
	}
	return nil
}

// Admit checks, bottom-up, whether inconsistency d from object obj fits
// under every bound on the object's path to the root; if it does, every
// node on the path is charged and Admit returns nil. Otherwise no state
// changes and the returned *LimitError identifies the violated node.
//
// objectLimit is the leaf-level bound supplied by the caller — the
// server-side OIL or OEL of the object — which a per-transaction object
// override in the BoundSpec replaces.
func (a *Accumulator) Admit(obj ObjectID, d Distance, objectLimit Distance) error {
	if d < 0 {
		return fmt.Errorf("esr: negative inconsistency %d for object %d", d, obj)
	}
	// Leaf level first (§5: "the system checks for possible violation of
	// inconsistency bounds bottom up, starting with the object level").
	leaf := objectLimit
	if override, ok := a.objects[obj]; ok {
		leaf = override
	}
	if d > leaf {
		return &LimitError{
			Level: LevelObject, Object: obj,
			Distance: d, Accumulated: 0, Limit: leaf, Import: a.imports,
		}
	}
	// Then every group on the path, ending at the root.
	a.path = a.schema.PathToRoot(obj, a.path[:0])
	for _, g := range a.path {
		if addSat(a.used[g], d) > a.limits[g] {
			level := LevelGroup
			if g == RootGroup {
				level = LevelTransaction
			}
			return &LimitError{
				Level: level, Node: a.schema.GroupName(g), Object: obj,
				Distance: d, Accumulated: a.used[g], Limit: a.limits[g], Import: a.imports,
			}
		}
	}
	// All checks passed: charge the whole path.
	for _, g := range a.path {
		a.used[g] = addSat(a.used[g], d)
	}
	return nil
}

// Total returns the inconsistency accumulated at the transaction level —
// the I (import) or E (export) counter of §5.
func (a *Accumulator) Total() Distance { return a.used[RootGroup] }

// Used returns the inconsistency accumulated at a group.
func (a *Accumulator) Used(g GroupID) Distance {
	if g < 0 || int(g) >= len(a.used) {
		return 0
	}
	return a.used[g]
}

// Limit returns the bound installed at a group.
func (a *Accumulator) Limit(g GroupID) Distance {
	if g < 0 || int(g) >= len(a.limits) {
		return NoLimit
	}
	return a.limits[g]
}

// Remaining returns how much inconsistency the transaction level can
// still absorb.
func (a *Accumulator) Remaining() Distance {
	if a.limits[RootGroup] == NoLimit {
		return NoLimit
	}
	return a.limits[RootGroup] - a.used[RootGroup]
}

// Reset clears the accumulated inconsistency at every node, for reuse
// when a transaction restarts with a fresh timestamp.
func (a *Accumulator) Reset() {
	for i := range a.used {
		a.used[i] = 0
	}
}
