package core

import (
	"reflect"
	"testing"
)

// bankSchema builds the paper's Figure 1 hierarchy:
// overall → {company, preferred, personal}, company → {com1, com2},
// com1 → {div1, div2}.
func bankSchema(t *testing.T) (*Schema, map[string]GroupID) {
	t.Helper()
	s := NewSchema()
	ids := map[string]GroupID{"": RootGroup}
	for _, g := range []struct{ name, parent string }{
		{"company", ""}, {"preferred", ""}, {"personal", ""},
		{"com1", "company"}, {"com2", "company"},
		{"div1", "com1"}, {"div2", "com1"},
	} {
		id, err := s.AddGroup(g.name, ids[g.parent])
		if err != nil {
			t.Fatalf("AddGroup(%s): %v", g.name, err)
		}
		ids[g.name] = id
	}
	return s, ids
}

func TestSchemaBasicLookups(t *testing.T) {
	s, ids := bankSchema(t)
	if s.NumGroups() != 8 {
		t.Errorf("NumGroups = %d, want 8", s.NumGroups())
	}
	if g, ok := s.Group("com1"); !ok || g != ids["com1"] {
		t.Errorf("Group(com1) = %d,%v", g, ok)
	}
	if _, ok := s.Group("nonexistent"); ok {
		t.Error("Group(nonexistent) should not resolve")
	}
	if s.GroupName(ids["div2"]) != "div2" {
		t.Errorf("GroupName = %q", s.GroupName(ids["div2"]))
	}
	if s.Parent(ids["div1"]) != ids["com1"] {
		t.Error("Parent(div1) != com1")
	}
	if s.Parent(RootGroup) != RootGroup {
		t.Error("root must be its own parent")
	}
	if s.Depth(ids["div1"]) != 3 {
		t.Errorf("Depth(div1) = %d, want 3", s.Depth(ids["div1"]))
	}
}

func TestSchemaDuplicateGroupName(t *testing.T) {
	s := NewSchema()
	s.MustAddGroup("a", RootGroup)
	if _, err := s.AddGroup("a", RootGroup); err == nil {
		t.Error("duplicate group name accepted")
	}
}

func TestSchemaEmptyGroupName(t *testing.T) {
	s := NewSchema()
	if _, err := s.AddGroup("", RootGroup); err == nil {
		t.Error("empty group name accepted")
	}
}

func TestSchemaBadParent(t *testing.T) {
	s := NewSchema()
	if _, err := s.AddGroup("x", GroupID(99)); err == nil {
		t.Error("nonexistent parent accepted")
	}
	if err := s.Assign(1, GroupID(99)); err == nil {
		t.Error("Assign to nonexistent group accepted")
	}
}

func TestSchemaMustAddGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAddGroup did not panic on error")
		}
	}()
	s := NewSchema()
	s.MustAddGroup("", RootGroup)
}

func TestSchemaObjectAssignment(t *testing.T) {
	s, ids := bankSchema(t)
	if err := s.Assign(100, ids["div1"]); err != nil {
		t.Fatal(err)
	}
	if g := s.GroupOf(100); g != ids["div1"] {
		t.Errorf("GroupOf(100) = %d, want div1", g)
	}
	if g := s.GroupOf(999); g != RootGroup {
		t.Errorf("unassigned object GroupOf = %d, want root", g)
	}
}

func TestSchemaPathToRoot(t *testing.T) {
	s, ids := bankSchema(t)
	if err := s.Assign(100, ids["div1"]); err != nil {
		t.Fatal(err)
	}
	got := s.PathToRoot(100, nil)
	want := []GroupID{ids["div1"], ids["com1"], ids["company"], RootGroup}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PathToRoot = %v, want %v", got, want)
	}
	// Independent object: path is just the root.
	got = s.PathToRoot(999, got[:0])
	if !reflect.DeepEqual(got, []GroupID{RootGroup}) {
		t.Errorf("independent PathToRoot = %v, want [root]", got)
	}
}

func TestSchemaGroupNamesSorted(t *testing.T) {
	s, _ := bankSchema(t)
	names := s.GroupNames()
	want := []string{"com1", "com2", "company", "div1", "div2", "personal", "preferred"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("GroupNames = %v, want %v", names, want)
	}
}

func TestSchemaOutOfRangeAccessors(t *testing.T) {
	s := NewSchema()
	if s.GroupName(GroupID(5)) != "group(5)" {
		t.Errorf("GroupName(5) = %q", s.GroupName(GroupID(5)))
	}
	if s.Depth(GroupID(-1)) != 0 {
		t.Error("Depth(-1) != 0")
	}
	if s.Parent(GroupID(42)) != RootGroup {
		t.Error("Parent(42) != root")
	}
}
