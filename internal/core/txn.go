package core

import "fmt"

// TxnID identifies one execution attempt of a transaction inside the
// server. A restarted transaction receives a fresh TxnID along with its
// fresh timestamp.
type TxnID uint64

// Program is a complete epsilon-transaction as submitted by a client: the
// inconsistency specification followed by the data operations. It is the
// compiled form of the transaction language (internal/txnlang) and the
// output of the workload generator (internal/workload).
type Program struct {
	// Kind says whether this is a query or an update ET.
	Kind Kind
	// Bounds is the inconsistency specification block.
	Bounds BoundSpec
	// Ops are the data operations in program order.
	Ops []Op
	// Label is an optional human-readable name used in logs and traces.
	Label string
}

// NewQuery returns a query program with the given import limit and reads.
func NewQuery(til Distance, objects ...ObjectID) *Program {
	ops := make([]Op, len(objects))
	for i, obj := range objects {
		ops[i] = Op{Kind: OpRead, Object: obj}
	}
	return &Program{Kind: Query, Bounds: BoundSpec{Transaction: til}, Ops: ops}
}

// NewUpdate returns an empty update program with the given export limit;
// use Read/WriteValue/WriteDelta to append operations.
func NewUpdate(tel Distance) *Program {
	return &Program{Kind: Update, Bounds: BoundSpec{Transaction: tel}}
}

// Read appends a read operation and returns the program for chaining.
func (p *Program) Read(obj ObjectID) *Program {
	p.Ops = append(p.Ops, Op{Kind: OpRead, Object: obj})
	return p
}

// WriteValue appends a write of an absolute value.
func (p *Program) WriteValue(obj ObjectID, v Value) *Program {
	p.Ops = append(p.Ops, Op{Kind: OpWrite, Object: obj, Value: v})
	return p
}

// WriteDelta appends a write that adds delta to the object's current
// value at execution time.
func (p *Program) WriteDelta(obj ObjectID, delta Value) *Program {
	p.Ops = append(p.Ops, Op{Kind: OpWrite, Object: obj, Delta: delta, UseDelta: true})
	return p
}

// Validate checks the static well-formedness rules the server enforces at
// BEGIN time: queries must not write, and the prototype's simplifying
// assumption (§3.2.1) that an object is read or written at most once per
// transaction must hold. The multi-read extension (AggregateTracker)
// lifts the latter restriction for clients that opt into it.
func (p *Program) Validate() error {
	if p.Kind != Query && p.Kind != Update {
		return fmt.Errorf("txn: invalid kind %d", p.Kind)
	}
	seenRead := make(map[ObjectID]bool, len(p.Ops))
	seenWrite := make(map[ObjectID]bool, len(p.Ops))
	for i, op := range p.Ops {
		switch op.Kind {
		case OpRead:
			if seenRead[op.Object] {
				return fmt.Errorf("txn: op %d reads object %d twice (enable multi-read tracking to allow this)", i, op.Object)
			}
			seenRead[op.Object] = true
		case OpWrite:
			if p.Kind == Query {
				return fmt.Errorf("txn: op %d writes object %d inside a query ET", i, op.Object)
			}
			if seenWrite[op.Object] {
				return fmt.Errorf("txn: op %d writes object %d twice", i, op.Object)
			}
			seenWrite[op.Object] = true
		default:
			return fmt.Errorf("txn: op %d has invalid kind %d", i, op.Kind)
		}
	}
	return nil
}

// NumReads returns the number of read operations in the program.
func (p *Program) NumReads() int {
	n := 0
	for _, op := range p.Ops {
		if op.Kind == OpRead {
			n++
		}
	}
	return n
}

// NumWrites returns the number of write operations in the program.
func (p *Program) NumWrites() int {
	n := 0
	for _, op := range p.Ops {
		if op.Kind == OpWrite {
			n++
		}
	}
	return n
}

// Objects returns the distinct objects the program touches, in first-use
// order.
func (p *Program) Objects() []ObjectID {
	seen := make(map[ObjectID]bool, len(p.Ops))
	var out []ObjectID
	for _, op := range p.Ops {
		if !seen[op.Object] {
			seen[op.Object] = true
			out = append(out, op.Object)
		}
	}
	return out
}

// String summarizes the program for logs.
func (p *Program) String() string {
	label := p.Label
	if label == "" {
		label = "txn"
	}
	return fmt.Sprintf("%s(%s, %d reads, %d writes, limit %d)",
		label, p.Kind, p.NumReads(), p.NumWrites(), p.Bounds.Transaction)
}
