package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAggregateSumWithConsistentReads(t *testing.T) {
	tr := NewAggregateTracker()
	tr.Observe(1, 100)
	tr.Observe(2, 250)
	v, inc, err := tr.Result(AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if v != 350 || inc != 0 {
		t.Errorf("sum = %d±%d, want 350±0", v, inc)
	}
}

func TestAggregateEnvelopeWidensOnRepeatedReads(t *testing.T) {
	tr := NewAggregateTracker()
	tr.Observe(1, 100)
	tr.Observe(1, 140) // second read saw a concurrent update
	tr.Observe(1, 90)
	min, max, ok := tr.Envelope(1)
	if !ok || min != 90 || max != 140 {
		t.Errorf("Envelope = [%d,%d],%v; want [90,140]", min, max, ok)
	}
	if tr.NumObjects() != 1 {
		t.Errorf("NumObjects = %d, want 1", tr.NumObjects())
	}
	v, inc, err := tr.Result(AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if v != 115 || inc != 25 {
		t.Errorf("sum = %d±%d, want 115±25", v, inc)
	}
}

func TestAggregateAvgResultInconsistency(t *testing.T) {
	// §5.3.2: min_result = Σmin/n, max_result = Σmax/n,
	// result inconsistency = (max_result − min_result)/2.
	tr := NewAggregateTracker()
	tr.Observe(1, 100)
	tr.Observe(1, 200)
	tr.Observe(2, 300)
	tr.Observe(2, 340)
	v, inc, err := tr.Result(AggAvg)
	if err != nil {
		t.Fatal(err)
	}
	// minSum=400 maxSum=540, n=2 → min_result=200, max_result=270.
	if v != 235 || inc != 35 {
		t.Errorf("avg = %d±%d, want 235±35", v, inc)
	}
}

func TestAggregateAdmitAgainstTIL(t *testing.T) {
	tr := NewAggregateTracker()
	tr.Observe(1, 100)
	tr.Observe(1, 180)
	if _, err := tr.Admit(AggSum, 40); err != nil {
		t.Errorf("Admit within TIL failed: %v", err)
	}
	_, err := tr.Admit(AggSum, 39)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want LimitError, got %v", err)
	}
	if le.Level != LevelTransaction || !le.Import {
		t.Errorf("violation = %+v", le)
	}
}

func TestAggregateEmptyAndUnknownKind(t *testing.T) {
	tr := NewAggregateTracker()
	if _, _, err := tr.Result(AggSum); err == nil {
		t.Error("empty aggregate succeeded")
	}
	tr.Observe(1, 5)
	if _, _, err := tr.Result(AggKind(9)); err == nil {
		t.Error("unknown aggregate kind succeeded")
	}
	if _, _, ok := tr.Envelope(99); ok {
		t.Error("Envelope of unobserved object reported ok")
	}
}

func TestAggregateReset(t *testing.T) {
	tr := NewAggregateTracker()
	tr.Observe(1, 5)
	tr.Reset()
	if tr.NumObjects() != 0 {
		t.Errorf("NumObjects after Reset = %d", tr.NumObjects())
	}
	if _, _, err := tr.Result(AggSum); err == nil {
		t.Error("Result after Reset should fail (no observations)")
	}
}

func TestAggKindString(t *testing.T) {
	if AggSum.String() != "sum" || AggAvg.String() != "avg" || AggKind(5).String() != "agg(5)" {
		t.Error("AggKind strings wrong")
	}
}

// TestAggregateSoundnessProperty: the true sum over any single-version
// choice of the observed values always lies within the reported
// inconsistency of the reported result.
func TestAggregateSoundnessProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewAggregateTracker()
		numObj := 1 + rng.Intn(6)
		observed := make(map[ObjectID][]Value)
		for o := 0; o < numObj; o++ {
			reads := 1 + rng.Intn(4)
			for r := 0; r < reads; r++ {
				v := Value(rng.Intn(10_000))
				tr.Observe(ObjectID(o), v)
				observed[ObjectID(o)] = append(observed[ObjectID(o)], v)
			}
		}
		result, inc, err := tr.Result(AggSum)
		if err != nil {
			return false
		}
		// Pick each object's value arbitrarily among what was observed;
		// every such sum must be within inc of result.
		for trial := 0; trial < 10; trial++ {
			var sum Value
			for o := 0; o < numObj; o++ {
				vals := observed[ObjectID(o)]
				sum += vals[rng.Intn(len(vals))]
			}
			diff := sum - result
			if diff < 0 {
				diff = -diff
			}
			if diff > inc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
