package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorFlatSchemaTransactionLimit(t *testing.T) {
	a, err := NewAccumulator(nil, BoundSpec{Transaction: 100}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Admit(1, 60, NoLimit); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if err := a.Admit(2, 40, NoLimit); err != nil {
		t.Fatalf("second admit: %v", err)
	}
	if a.Total() != 100 {
		t.Errorf("Total = %d, want 100", a.Total())
	}
	err = a.Admit(3, 1, NoLimit)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("expected LimitError, got %v", err)
	}
	if le.Level != LevelTransaction || !le.Import {
		t.Errorf("violation = %+v, want transaction-level import", le)
	}
	// A rejected admit must not change any accumulated state.
	if a.Total() != 100 {
		t.Errorf("rejected admit charged the accumulator: %d", a.Total())
	}
}

func TestAccumulatorObjectLevelCheckedFirst(t *testing.T) {
	a, err := NewAccumulator(nil, BoundSpec{Transaction: 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	// d=10 violates both the object limit (8) and the TIL (5); the
	// bottom-up discipline must report the object level.
	err = a.Admit(7, 10, 8)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("expected LimitError, got %v", err)
	}
	if le.Level != LevelObject {
		t.Errorf("Level = %v, want object (bottom-up order)", le.Level)
	}
	if le.Limit != 8 || le.Distance != 10 {
		t.Errorf("violation = %+v", le)
	}
}

func TestAccumulatorPerObjectOverride(t *testing.T) {
	spec := BoundSpec{Transaction: NoLimit}.WithObject(7, 3)
	a, err := NewAccumulator(nil, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	// Server-side OIL would admit d=5, but the per-transaction override
	// of 3 must win.
	if err := a.Admit(7, 5, 100); err == nil {
		t.Error("override limit not applied")
	}
	if err := a.Admit(7, 3, 100); err != nil {
		t.Errorf("admit at override limit: %v", err)
	}
}

func TestAccumulatorHierarchicalCharges(t *testing.T) {
	s := NewSchema()
	company := s.MustAddGroup("company", RootGroup)
	com1 := s.MustAddGroup("com1", company)
	com2 := s.MustAddGroup("com2", company)
	if err := s.Assign(1, com1); err != nil {
		t.Fatal(err)
	}
	if err := s.Assign(2, com2); err != nil {
		t.Fatal(err)
	}

	spec := BoundSpec{Transaction: 100}.
		WithGroup("company", 50).
		WithGroup("com1", 20).
		WithGroup("com2", 40)
	a, err := NewAccumulator(s, spec, true)
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Admit(1, 15, NoLimit); err != nil {
		t.Fatalf("admit obj1: %v", err)
	}
	if got := a.Used(com1); got != 15 {
		t.Errorf("Used(com1) = %d, want 15", got)
	}
	if got := a.Used(company); got != 15 {
		t.Errorf("Used(company) = %d, want 15", got)
	}
	if got := a.Total(); got != 15 {
		t.Errorf("Total = %d, want 15", got)
	}

	// com1 has only 5 left: d=10 must be rejected at group com1.
	err = a.Admit(1, 10, NoLimit)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want LimitError, got %v", err)
	}
	if le.Level != LevelGroup || le.Node != "com1" {
		t.Errorf("violation at %v %q, want group com1", le.Level, le.Node)
	}

	// Sibling com2 is unaffected and has its own budget.
	if err := a.Admit(2, 35, NoLimit); err != nil {
		t.Fatalf("admit obj2: %v", err)
	}
	if got := a.Used(company); got != 50 {
		t.Errorf("Used(company) = %d, want 50", got)
	}
	// company is now exhausted: any further d>0 in the subtree fails at
	// the company node even though com2 has room.
	err = a.Admit(2, 5, NoLimit)
	if !errors.As(err, &le) || le.Node != "company" {
		t.Errorf("want company-level violation, got %v", err)
	}
}

func TestAccumulatorUnknownGroupInSpec(t *testing.T) {
	if _, err := NewAccumulator(NewSchema(), BoundSpec{Transaction: 1}.WithGroup("ghost", 5), true); err == nil {
		t.Error("unknown group in spec accepted")
	}
}

func TestAccumulatorNegativeDistanceRejected(t *testing.T) {
	a, _ := NewAccumulator(nil, UnboundedSpec(), true)
	if err := a.Admit(1, -1, NoLimit); err == nil {
		t.Error("negative inconsistency accepted")
	}
}

func TestAccumulatorZeroLimitIsSR(t *testing.T) {
	a, _ := NewAccumulator(nil, SRSpec(), true)
	if err := a.Admit(1, 1, NoLimit); err == nil {
		t.Error("SR spec admitted nonzero inconsistency")
	}
	// d=0 is always admissible: a consistent read adds nothing.
	if err := a.Admit(1, 0, 0); err != nil {
		t.Errorf("SR spec rejected zero inconsistency: %v", err)
	}
}

func TestAccumulatorResetAndRemaining(t *testing.T) {
	a, _ := NewAccumulator(nil, BoundSpec{Transaction: 10}, false)
	if a.Remaining() != 10 {
		t.Errorf("Remaining = %d, want 10", a.Remaining())
	}
	if err := a.Admit(1, 4, NoLimit); err != nil {
		t.Fatal(err)
	}
	if a.Remaining() != 6 {
		t.Errorf("Remaining = %d, want 6", a.Remaining())
	}
	a.Reset()
	if a.Total() != 0 || a.Remaining() != 10 {
		t.Errorf("after Reset: Total=%d Remaining=%d", a.Total(), a.Remaining())
	}
}

func TestAccumulatorUnboundedRemaining(t *testing.T) {
	a, _ := NewAccumulator(nil, UnboundedSpec(), true)
	if a.Remaining() != NoLimit {
		t.Errorf("Remaining = %d, want NoLimit", a.Remaining())
	}
	if err := a.Admit(1, NoLimit/2, NoLimit); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit(2, NoLimit/2, NoLimit); err != nil {
		t.Fatalf("saturating accumulation must not overflow: %v", err)
	}
}

func TestAccumulatorOutOfRangeAccessors(t *testing.T) {
	a, _ := NewAccumulator(nil, SRSpec(), true)
	if a.Used(GroupID(42)) != 0 {
		t.Error("Used out of range != 0")
	}
	if a.Limit(GroupID(-1)) != NoLimit {
		t.Error("Limit out of range != NoLimit")
	}
}

func TestLimitErrorMessages(t *testing.T) {
	e := &LimitError{Level: LevelGroup, Node: "company", Object: 7, Distance: 5, Accumulated: 48, Limit: 50, Import: true}
	want := `esr: import limit exceeded at group "company": object 7 contributes 5, accumulated 48, limit 50`
	if e.Error() != want {
		t.Errorf("Error() = %q\nwant      %q", e.Error(), want)
	}
	e2 := &LimitError{Level: LevelTransaction, Object: 1, Distance: 2, Limit: 1}
	if e2.Error() == "" {
		t.Error("empty export message")
	}
}

// TestAccumulatorInvariantProperty drives a random sequence of admits
// through a random three-level hierarchy and checks the structural
// invariant of §3.1 after every step: the inconsistency accumulated at a
// node never exceeds its limit, and a parent's accumulation always equals
// the sum of its children's contributions that flow through it.
func TestAccumulatorInvariantProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSchema()
		var groups []GroupID
		numTop := 1 + rng.Intn(3)
		for i := 0; i < numTop; i++ {
			g := s.MustAddGroup(groupName("top", i), RootGroup)
			groups = append(groups, g)
			for j := 0; j < rng.Intn(3); j++ {
				groups = append(groups, s.MustAddGroup(groupName("sub", i*10+j), g))
			}
		}
		numObj := 1 + rng.Intn(8)
		for o := 0; o < numObj; o++ {
			if len(groups) > 0 && rng.Intn(4) > 0 {
				if err := s.Assign(ObjectID(o), groups[rng.Intn(len(groups))]); err != nil {
					return false
				}
			}
		}
		spec := BoundSpec{Transaction: Distance(rng.Intn(500))}
		for _, g := range groups {
			if rng.Intn(2) == 0 {
				spec = spec.WithGroup(s.GroupName(g), Distance(rng.Intn(200)))
			}
		}
		a, err := NewAccumulator(s, spec, rng.Intn(2) == 0)
		if err != nil {
			return false
		}
		for step := 0; step < 50; step++ {
			obj := ObjectID(rng.Intn(numObj))
			d := Distance(rng.Intn(60))
			oil := Distance(rng.Intn(80))
			before := a.Total()
			err := a.Admit(obj, d, oil)
			// Invariant: every node's usage within its limit.
			for g := 0; g < s.NumGroups(); g++ {
				if a.Used(GroupID(g)) > a.Limit(GroupID(g)) {
					return false
				}
			}
			if err != nil {
				// Rejected: nothing charged anywhere.
				if a.Total() != before {
					return false
				}
			} else if a.Total() != before+d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func groupName(prefix string, n int) string {
	return prefix + string(rune('a'+n%26)) + string(rune('0'+(n/26)%10))
}
