package core

import (
	"reflect"
	"strings"
	"testing"
)

func TestNewQueryBuildsReads(t *testing.T) {
	p := NewQuery(100_000, 1863, 1427, 1912)
	if p.Kind != Query {
		t.Errorf("Kind = %v", p.Kind)
	}
	if p.Bounds.Transaction != 100_000 {
		t.Errorf("TIL = %d", p.Bounds.Transaction)
	}
	if p.NumReads() != 3 || p.NumWrites() != 0 {
		t.Errorf("reads=%d writes=%d", p.NumReads(), p.NumWrites())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestUpdateProgramBuilder(t *testing.T) {
	p := NewUpdate(10_000).
		Read(1923).Read(1644).
		WriteValue(1078, 5000).
		WriteDelta(1727, -230)
	if p.Kind != Update {
		t.Errorf("Kind = %v", p.Kind)
	}
	if p.NumReads() != 2 || p.NumWrites() != 2 {
		t.Errorf("reads=%d writes=%d", p.NumReads(), p.NumWrites())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	w := p.Ops[3]
	if !w.UseDelta || w.Delta != -230 {
		t.Errorf("delta write = %+v", w)
	}
}

func TestValidateRejectsWriteInQuery(t *testing.T) {
	p := NewQuery(10, 1)
	p.Ops = append(p.Ops, Op{Kind: OpWrite, Object: 2, Value: 5})
	if err := p.Validate(); err == nil {
		t.Error("query with a write validated")
	}
}

func TestValidateRejectsDoubleRead(t *testing.T) {
	p := NewQuery(10, 1, 1)
	err := p.Validate()
	if err == nil {
		t.Fatal("double read validated")
	}
	if !strings.Contains(err.Error(), "reads object 1 twice") {
		t.Errorf("unexpected message: %v", err)
	}
}

func TestValidateRejectsDoubleWrite(t *testing.T) {
	p := NewUpdate(10).WriteValue(3, 1).WriteValue(3, 2)
	if err := p.Validate(); err == nil {
		t.Error("double write validated")
	}
}

func TestValidateAllowsReadThenWrite(t *testing.T) {
	p := NewUpdate(10).Read(5).WriteValue(5, 9)
	if err := p.Validate(); err != nil {
		t.Errorf("read-then-write of same object rejected: %v", err)
	}
}

func TestValidateRejectsBadKinds(t *testing.T) {
	p := &Program{Kind: Kind(9)}
	if err := p.Validate(); err == nil {
		t.Error("invalid txn kind validated")
	}
	p2 := NewQuery(1, 1)
	p2.Ops[0].Kind = OpKind(7)
	if err := p2.Validate(); err == nil {
		t.Error("invalid op kind validated")
	}
}

func TestObjectsFirstUseOrder(t *testing.T) {
	p := NewUpdate(1).Read(5).Read(2).WriteValue(5, 0).WriteValue(9, 0)
	got := p.Objects()
	want := []ObjectID{5, 2, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Objects = %v, want %v", got, want)
	}
}

func TestProgramString(t *testing.T) {
	p := NewQuery(42, 1, 2)
	p.Label = "audit"
	s := p.String()
	for _, frag := range []string{"audit", "query", "2 reads", "limit 42"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	if !strings.Contains(NewUpdate(1).String(), "txn(") {
		t.Error("unlabelled program should use default label")
	}
}

func TestKindAndOpKindStrings(t *testing.T) {
	if Query.String() != "query" || Update.String() != "update" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Error("unknown Kind string wrong")
	}
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Error("OpKind strings wrong")
	}
	if OpKind(7).String() != "opkind(7)" {
		t.Error("unknown OpKind string wrong")
	}
	if LevelObject.String() != "object" || LevelGroup.String() != "group" || LevelTransaction.String() != "transaction" {
		t.Error("Level strings wrong")
	}
	if Level(9).String() != "level(9)" {
		t.Error("unknown Level string wrong")
	}
}
