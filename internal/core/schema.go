package core

import (
	"fmt"
	"sort"
)

// GroupID indexes a node of a Schema. The root group is always RootGroup.
type GroupID int

// RootGroup is the id of the schema's root node. The root carries the
// transaction-level limit (TIL or TEL); objects assigned directly to it
// are the "independent objects" of the paper's Figure 2.
const RootGroup GroupID = 0

// Schema is the hierarchical organization of the database: a tree of
// named groups with objects at the leaves (§3.1). The banking example
// groups accounts as overall → {company, preferred, personal} →
// {com1, com2, …} → divisions; an airline schema might group seats by
// route and flight.
//
// A Schema is built once (AddGroup/Assign) and then shared read-only by
// every transaction, so the building methods are not safe for concurrent
// use but every lookup method is.
type Schema struct {
	names   []string             // names[g] is the name of group g
	parents []GroupID            // parents[g] is g's parent; root's parent is itself
	depths  []int                // depths[g] is the distance from the root
	byName  map[string]GroupID   // group name → id
	objects map[ObjectID]GroupID // object → the group it belongs to
}

// NewSchema returns a schema containing only the root group. The root's
// name is the empty string.
func NewSchema() *Schema {
	return &Schema{
		names:   []string{""},
		parents: []GroupID{RootGroup},
		depths:  []int{0},
		byName:  map[string]GroupID{},
		objects: map[ObjectID]GroupID{},
	}
}

// AddGroup creates a named group under the given parent and returns its
// id. Group names must be unique across the whole schema because the
// transaction language's LIMIT statement refers to groups by bare name.
func (s *Schema) AddGroup(name string, parent GroupID) (GroupID, error) {
	if name == "" {
		return 0, fmt.Errorf("schema: group name must be non-empty")
	}
	if _, dup := s.byName[name]; dup {
		return 0, fmt.Errorf("schema: duplicate group name %q", name)
	}
	if parent < 0 || int(parent) >= len(s.names) {
		return 0, fmt.Errorf("schema: parent group %d does not exist", parent)
	}
	id := GroupID(len(s.names))
	s.names = append(s.names, name)
	s.parents = append(s.parents, parent)
	s.depths = append(s.depths, s.depths[parent]+1)
	s.byName[name] = id
	return id, nil
}

// MustAddGroup is AddGroup for statically known schemas; it panics on
// error and is intended for tests and examples.
func (s *Schema) MustAddGroup(name string, parent GroupID) GroupID {
	id, err := s.AddGroup(name, parent)
	if err != nil {
		panic(err)
	}
	return id
}

// Assign places an object in a group. Objects never assigned belong to
// the root (they are independent objects). Re-assigning moves the object.
func (s *Schema) Assign(obj ObjectID, group GroupID) error {
	if group < 0 || int(group) >= len(s.names) {
		return fmt.Errorf("schema: group %d does not exist", group)
	}
	s.objects[obj] = group
	return nil
}

// Group returns the id of the named group.
func (s *Schema) Group(name string) (GroupID, bool) {
	id, ok := s.byName[name]
	return id, ok
}

// GroupName returns the name of a group; the root's name is "".
func (s *Schema) GroupName(g GroupID) string {
	if g < 0 || int(g) >= len(s.names) {
		return fmt.Sprintf("group(%d)", g)
	}
	return s.names[g]
}

// GroupOf returns the group an object is assigned to (RootGroup if it was
// never assigned).
func (s *Schema) GroupOf(obj ObjectID) GroupID {
	if g, ok := s.objects[obj]; ok {
		return g
	}
	return RootGroup
}

// Parent returns a group's parent; the root is its own parent.
func (s *Schema) Parent(g GroupID) GroupID {
	if g <= 0 || int(g) >= len(s.parents) {
		return RootGroup
	}
	return s.parents[g]
}

// Depth returns the number of edges between a group and the root.
func (s *Schema) Depth(g GroupID) int {
	if g < 0 || int(g) >= len(s.depths) {
		return 0
	}
	return s.depths[g]
}

// NumGroups returns the number of groups including the root.
func (s *Schema) NumGroups() int { return len(s.names) }

// PathToRoot appends to dst the chain of groups from the object's group
// up to and including the root, in bottom-up order. This is the path the
// control stage walks when an operation's inconsistency percolates from
// the leaf to the root (§5.3.1).
func (s *Schema) PathToRoot(obj ObjectID, dst []GroupID) []GroupID {
	g := s.GroupOf(obj)
	for {
		dst = append(dst, g)
		if g == RootGroup {
			return dst
		}
		g = s.parents[g]
	}
}

// GroupNames returns all group names in sorted order (excluding the
// root), for diagnostics and deterministic output.
func (s *Schema) GroupNames() []string {
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FlatSchema returns the trivial two-level schema used by the prototype's
// performance tests: every object is independent, so the only levels are
// the transaction (root) and the objects (leaves).
func FlatSchema() *Schema { return NewSchema() }
