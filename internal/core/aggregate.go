package core

import "fmt"

// AggKind selects the aggregate a query computes over the values it read.
type AggKind uint8

const (
	// AggSum is the paper's primary query shape: the sum of the values.
	AggSum AggKind = iota
	// AggAvg is the §5.3.2 extension: the average of the values.
	AggAvg
)

// String implements fmt.Stringer.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("agg(%d)", uint8(k))
	}
}

// AggregateTracker implements the inconsistency control for queries that
// compute aggregates other than sum, and for transactions that read the
// same object more than once (§3.2.1 and §5.3.2).
//
// For every object the tracker records the minimum and maximum values the
// transaction's reads observed. When the aggregate is requested, the
// result inconsistency is derived from those extremes — for avg(o1..on)
// the min_result sums the minimums and divides by n, the max_result does
// the same with the maximums, and the result inconsistency is half their
// difference. The decision to admit or reject the query is then made once
// at aggregate time against the transaction import limit, instead of
// incrementally at each read (predeclaring the read set is impractical,
// as the paper notes).
type AggregateTracker struct {
	minmax map[ObjectID][2]Value
	order  []ObjectID
}

// NewAggregateTracker returns an empty tracker.
func NewAggregateTracker() *AggregateTracker {
	return &AggregateTracker{minmax: make(map[ObjectID][2]Value)}
}

// Observe records one read of an object. Multiple observations of the
// same object tighten nothing — they widen the [min, max] envelope, which
// captures the worst case where two reads see the opposite extremes of
// the bound.
func (t *AggregateTracker) Observe(obj ObjectID, v Value) {
	mm, ok := t.minmax[obj]
	if !ok {
		t.minmax[obj] = [2]Value{v, v}
		t.order = append(t.order, obj)
		return
	}
	if v < mm[0] {
		mm[0] = v
	}
	if v > mm[1] {
		mm[1] = v
	}
	t.minmax[obj] = mm
}

// NumObjects returns how many distinct objects have been observed.
func (t *AggregateTracker) NumObjects() int { return len(t.order) }

// Envelope returns the [min, max] observed for an object and whether the
// object was observed at all.
func (t *AggregateTracker) Envelope(obj ObjectID) (min, max Value, ok bool) {
	mm, ok := t.minmax[obj]
	return mm[0], mm[1], ok
}

// Result computes the aggregate over the midpoint of each object's
// envelope together with the result inconsistency — half the spread
// between the aggregate of the minimums and the aggregate of the
// maximums. The caller compares the inconsistency against the TIL and
// aborts the query if it does not fit.
func (t *AggregateTracker) Result(kind AggKind) (value Value, inconsistency Distance, err error) {
	n := int64(len(t.order))
	if n == 0 {
		return 0, 0, fmt.Errorf("esr: aggregate over zero observations")
	}
	var minSum, maxSum Value
	for _, obj := range t.order {
		mm := t.minmax[obj]
		minSum += mm[0]
		maxSum += mm[1]
	}
	// The half-width rounds up so that integer truncation never
	// under-reports the inconsistency of an odd spread.
	switch kind {
	case AggSum:
		return (minSum + maxSum) / 2, (maxSum - minSum + 1) / 2, nil
	case AggAvg:
		minResult := minSum / n
		maxResult := maxSum / n
		return (minResult + maxResult) / 2, (maxResult - minResult + 1) / 2, nil
	default:
		return 0, 0, fmt.Errorf("esr: unknown aggregate kind %d", kind)
	}
}

// Admit runs Result and checks the inconsistency against the transaction
// import limit, returning the aggregate value on success and a
// *LimitError (transaction level) if the bound is violated.
func (t *AggregateTracker) Admit(kind AggKind, til Distance) (Value, error) {
	value, inc, err := t.Result(kind)
	if err != nil {
		return 0, err
	}
	if inc > til {
		return 0, &LimitError{
			Level:    LevelTransaction,
			Distance: inc,
			Limit:    til,
			Import:   true,
		}
	}
	return value, nil
}

// Reset clears all observations for transaction restart.
func (t *AggregateTracker) Reset() {
	t.order = t.order[:0]
	for k := range t.minmax {
		delete(t.minmax, k)
	}
}
