package tso

import (
	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// Result is the outcome of executing a whole transaction program.
type Result struct {
	// Txn is the attempt that committed.
	Txn core.TxnID
	// Values holds, per operation in program order, the value read (for
	// reads) or written (for writes).
	Values []core.Value
	// Sum is the sum of the values read — the paper's canonical query
	// result (§3.2.1).
	Sum core.Value
	// Imported and Exported are the total inconsistencies accumulated at
	// the transaction level.
	Imported core.Distance
	Exported core.Distance
}

// RunProgram executes one attempt of a program under the given timestamp:
// Begin, the operations in order, then Commit. On the first failed
// operation the attempt is already aborted by the engine and the error
// (usually an *AbortError) is returned; the caller retries with a fresh
// timestamp. The program must be validated beforehand.
func (e *Engine) RunProgram(p *core.Program, ts tsgen.Timestamp) (*Result, error) {
	txn, err := e.Begin(p.Kind, ts, p.Bounds)
	if err != nil {
		return nil, err
	}
	res := &Result{Txn: txn, Values: make([]core.Value, 0, len(p.Ops))}
	for _, op := range p.Ops {
		switch op.Kind {
		case core.OpRead:
			v, err := e.Read(txn, op.Object)
			if err != nil {
				return nil, err
			}
			res.Values = append(res.Values, v)
			res.Sum += v
		case core.OpWrite:
			var v core.Value
			var err error
			if op.UseDelta {
				v, err = e.WriteDelta(txn, op.Object, op.Delta)
			} else {
				v, err = op.Value, e.Write(txn, op.Object, op.Value)
			}
			if err != nil {
				return nil, err
			}
			res.Values = append(res.Values, v)
		}
	}
	st, err := e.lookup(txn)
	if err != nil {
		return nil, err
	}
	if p.Kind == core.Query {
		res.Imported = st.acc.Total()
	} else {
		res.Exported = st.acc.Total()
	}
	if err := e.Commit(txn); err != nil {
		return nil, err
	}
	return res, nil
}

// RunRetry executes a program to completion, resubmitting with a fresh
// timestamp from the generator after every abort — the client discipline
// of §6 ("if a transaction is aborted the client resubmits it with a new
// timestamp, and does so, until it is successfully completed"). The
// number of attempts made is returned alongside the result. maxAttempts
// caps runaway retries; zero means unlimited.
func (e *Engine) RunRetry(p *core.Program, gen *tsgen.Generator, maxAttempts int) (*Result, int, error) {
	attempts := 0
	for {
		attempts++
		res, err := e.RunProgram(p, gen.Next())
		if err == nil {
			return res, attempts, nil
		}
		if _, isAbort := IsAbort(err); !isAbort {
			return nil, attempts, err
		}
		if maxAttempts > 0 && attempts >= maxAttempts {
			return nil, attempts, err
		}
	}
}
