package tso

import (
	"errors"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// newTestEngine builds an engine over a store with objects 1..n at value
// 100*(id), unbounded object limits, and the given options.
func newTestEngine(t *testing.T, n int, opts Options) *Engine {
	t.Helper()
	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for i := 1; i <= n; i++ {
		if _, err := st.Create(core.ObjectID(i), core.Value(100*i)); err != nil {
			t.Fatal(err)
		}
	}
	return NewEngine(st, opts)
}

func mustBegin(t *testing.T, e *Engine, kind core.Kind, ts int64, limit core.Distance) core.TxnID {
	t.Helper()
	txn, err := e.Begin(kind, tsgen.Make(ts, 0), core.BoundSpec{Transaction: limit})
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	return txn
}

func wantAbort(t *testing.T, err error, reason metrics.AbortReason) *AbortError {
	t.Helper()
	ae, ok := IsAbort(err)
	if !ok {
		t.Fatalf("want AbortError(%v), got %v", reason, err)
	}
	if ae.Reason != reason {
		t.Fatalf("abort reason = %v, want %v (err: %v)", ae.Reason, reason, ae)
	}
	return ae
}

func TestBeginValidation(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	if _, err := e.Begin(core.Kind(9), tsgen.Make(1, 0), core.SRSpec()); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := e.Begin(core.Query, tsgen.None, core.SRSpec()); err == nil {
		t.Error("zero timestamp accepted")
	}
	if _, err := e.Begin(core.Query, tsgen.Make(1, 0), core.BoundSpec{Transaction: 1}.WithGroup("ghost", 1)); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestSimpleUpdateThenQuery(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	u := mustBegin(t, e, core.Update, 10, 0)
	v, err := e.Read(u, 1)
	if err != nil || v != 100 {
		t.Fatalf("update read = %d,%v", v, err)
	}
	if err := e.Write(u, 2, v+50); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	q := mustBegin(t, e, core.Query, 20, 0)
	v, err = e.Read(q, 2)
	if err != nil || v != 150 {
		t.Fatalf("query read = %d,%v, want 150", v, err)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
}

func TestReadOwnPendingWrite(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	u := mustBegin(t, e, core.Update, 10, 0)
	if err := e.Write(u, 1, 777); err != nil {
		t.Fatal(err)
	}
	v, err := e.Read(u, 1)
	if err != nil || v != 777 {
		t.Fatalf("read own write = %d,%v", v, err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownAndFinishedTxn(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	if _, err := e.Read(core.TxnID(99), 1); !errors.Is(err, ErrUnknownTxn) {
		t.Errorf("Read unknown txn: %v", err)
	}
	u := mustBegin(t, e, core.Update, 10, 0)
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); !errors.Is(err, ErrUnknownTxn) {
		t.Errorf("double Commit: %v", err)
	}
	if err := e.Abort(u); !errors.Is(err, ErrUnknownTxn) {
		t.Errorf("Abort after Commit: %v", err)
	}
}

func TestMissingObjectAborts(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	q := mustBegin(t, e, core.Query, 10, 0)
	_, err := e.Read(q, 42)
	wantAbort(t, err, metrics.AbortMissingObject)
	// The attempt is gone after the internal abort.
	if _, err := e.Read(q, 1); !errors.Is(err, ErrUnknownTxn) {
		t.Errorf("op after abort: %v", err)
	}
}

func TestWriteFromQueryAborts(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	q := mustBegin(t, e, core.Query, 10, 100)
	err := e.Write(q, 1, 5)
	wantAbort(t, err, metrics.AbortOther)
}

func TestExplicitAbortRestoresWrites(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	u := mustBegin(t, e, core.Update, 10, 0)
	if err := e.Write(u, 1, 999); err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(u); err != nil {
		t.Fatal(err)
	}
	q := mustBegin(t, e, core.Query, 20, 0)
	v, err := e.Read(q, 1)
	if err != nil || v != 100 {
		t.Fatalf("value after abort = %d,%v, want 100", v, err)
	}
}

// --- SR baseline (zero epsilon): textbook strict timestamp ordering ---

func TestSRLateQueryReadAborts(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	q := mustBegin(t, e, core.Query, 10, 0) // TIL = 0: SR
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	_, err := e.Read(q, 1)
	wantAbort(t, err, metrics.AbortLateRead)
}

func TestSRLateReadAbortsEvenIfValueUnchanged(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	q := mustBegin(t, e, core.Query, 10, 0)
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 100); err != nil { // same value as before
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	_, err := e.Read(q, 1)
	// d would be 0, but zero-epsilon attempts must follow textbook TO.
	wantAbort(t, err, metrics.AbortLateRead)
}

func TestSRLateUpdateReadAborts(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	u1 := mustBegin(t, e, core.Update, 10, 0)
	u2 := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u2, 1, 150); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u2); err != nil {
		t.Fatal(err)
	}
	_, err := e.Read(u1, 1)
	wantAbort(t, err, metrics.AbortLateRead)
}

func TestSRLateWriteVsUpdateReadAborts(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	u2 := mustBegin(t, e, core.Update, 20, 0)
	if _, err := e.Read(u2, 1); err != nil {
		t.Fatal(err)
	}
	u1 := mustBegin(t, e, core.Update, 10, core.NoLimit) // even with TEL: update reads are consistent
	err := e.Write(u1, 1, 5)
	wantAbort(t, err, metrics.AbortLateWrite)
}

func TestSRLateWriteVsCommittedWriteAborts(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	u2 := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u2, 1, 150); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u2); err != nil {
		t.Fatal(err)
	}
	u1 := mustBegin(t, e, core.Update, 10, core.NoLimit)
	err := e.Write(u1, 1, 5)
	wantAbort(t, err, metrics.AbortLateWrite)
}

func TestEqualTimestampWriteVsCommittedWriteAborts(t *testing.T) {
	// Two transactions can present the same timestamp when a
	// reconnecting client re-estimates its clock correction and reissues
	// a (tick, site) pair. Committed versions must have strictly
	// increasing timestamps (the oracle's unknown-version check assumes
	// it), so the second write must abort, not create an order-less
	// duplicate version.
	e := newTestEngine(t, 1, Options{})
	u1 := mustBegin(t, e, core.Update, 20, core.NoLimit)
	if err := e.Write(u1, 1, 150); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u1); err != nil {
		t.Fatal(err)
	}
	u2 := mustBegin(t, e, core.Update, 20, core.NoLimit) // same ts, distinct txn
	err := e.Write(u2, 1, 160)
	wantAbort(t, err, metrics.AbortLateWrite)
}

func TestSRLateWriteVsQueryReadAborts(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	q := mustBegin(t, e, core.Query, 20, 0)
	if _, err := e.Read(q, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
	u := mustBegin(t, e, core.Update, 10, 0) // TEL = 0: SR
	err := e.Write(u, 1, 100)                // value-identical, still late
	wantAbort(t, err, metrics.AbortLateWrite)
}

func TestSRWriteOlderThanPendingWriteAborts(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	u2 := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u2, 1, 150); err != nil {
		t.Fatal(err)
	}
	u1 := mustBegin(t, e, core.Update, 10, 0)
	err := e.Write(u1, 1, 5)
	wantAbort(t, err, metrics.AbortLateWrite)
	if err := e.Commit(u2); err != nil {
		t.Fatal(err)
	}
}

func TestSRUpdateReadOlderThanPendingWriteReadsCommitted(t *testing.T) {
	// A reader older than a pending write must not block on the younger
	// writer: it reads the committed version (its serial position is
	// before the pending write).
	e := newTestEngine(t, 1, Options{})
	u2 := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u2, 1, 150); err != nil {
		t.Fatal(err)
	}
	u1 := mustBegin(t, e, core.Update, 10, 0)
	v, err := e.Read(u1, 1)
	if err != nil || v != 100 {
		t.Fatalf("read = %d,%v, want committed 100", v, err)
	}
	if err := e.Commit(u1); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u2); err != nil {
		t.Fatal(err)
	}
}

func TestSRYoungerReadWaitsForPendingWrite(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	u1 := mustBegin(t, e, core.Update, 10, 0)
	if err := e.Write(u1, 1, 150); err != nil {
		t.Fatal(err)
	}
	u2 := mustBegin(t, e, core.Update, 20, 0)
	done := make(chan core.Value, 1)
	errs := make(chan error, 1)
	go func() {
		v, err := e.Read(u2, 1)
		if err != nil {
			errs <- err
			return
		}
		done <- v
	}()
	// The read must block while u1's write is pending.
	select {
	case v := <-done:
		t.Fatalf("read returned %d while write pending", v)
	case err := <-errs:
		t.Fatalf("read errored while write pending: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	if err := e.Commit(u1); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != 150 {
			t.Fatalf("read after commit = %d, want 150", v)
		}
	case err := <-errs:
		t.Fatalf("read after commit errored: %v", err)
	case <-time.After(time.Second):
		t.Fatal("read did not wake after commit")
	}
	if err := e.Commit(u2); err != nil {
		t.Fatal(err)
	}
}

func TestSRYoungerReadWaitsThroughAbort(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	u1 := mustBegin(t, e, core.Update, 10, 0)
	if err := e.Write(u1, 1, 150); err != nil {
		t.Fatal(err)
	}
	u2 := mustBegin(t, e, core.Update, 20, 0)
	done := make(chan core.Value, 1)
	go func() {
		v, err := e.Read(u2, 1)
		if err != nil {
			done <- -1
			return
		}
		done <- v
	}()
	time.Sleep(10 * time.Millisecond)
	if err := e.Abort(u1); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != 100 {
			t.Fatalf("read after abort = %d, want restored 100", v)
		}
	case <-time.After(time.Second):
		t.Fatal("read did not wake after abort")
	}
}

func TestWaitTimeoutAborts(t *testing.T) {
	e := newTestEngine(t, 1, Options{WaitTimeout: 20 * time.Millisecond})
	u1 := mustBegin(t, e, core.Update, 10, 0)
	if err := e.Write(u1, 1, 150); err != nil {
		t.Fatal(err)
	}
	u2 := mustBegin(t, e, core.Update, 20, 0)
	_, err := e.Read(u2, 1)
	wantAbort(t, err, metrics.AbortWaitTimeout)
	if err := e.Commit(u1); err != nil {
		t.Fatal(err)
	}
}
