package tso

import (
	"errors"
	"fmt"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
)

// AbortError reports that the engine aborted a transaction attempt. The
// attempt is fully cleaned up (pending writes restored, reader entries
// removed) by the time the error is returned; the client's retry loop
// resubmits the transaction with a fresh timestamp (§6).
type AbortError struct {
	// Txn is the aborted attempt.
	Txn core.TxnID
	// Reason classifies the abort for the retry metrics.
	Reason metrics.AbortReason
	// Err is the underlying cause, e.g. a *core.LimitError.
	Err error
}

// Error implements error.
func (e *AbortError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("tso: txn %d aborted (%s): %v", e.Txn, e.Reason, e.Err)
	}
	return fmt.Sprintf("tso: txn %d aborted (%s)", e.Txn, e.Reason)
}

// Unwrap exposes the underlying cause to errors.As / errors.Is.
func (e *AbortError) Unwrap() error { return e.Err }

// IsAbort reports whether err is an engine abort and returns it.
func IsAbort(err error) (*AbortError, bool) {
	var ae *AbortError
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}

// DurabilityError reports that a transaction committed in memory but
// its log record could not be made durable (the log is closed, killed,
// or poisoned by an I/O failure). The writes ARE visible to later
// transactions; after a crash they may or may not be recovered. Clients
// treat it like a lost commit response: outcome unknown.
type DurabilityError struct {
	// Txn is the committed attempt.
	Txn core.TxnID
	// Err is the log's failure.
	Err error
}

// Error implements error.
func (e *DurabilityError) Error() string {
	return fmt.Sprintf("tso: txn %d committed but not durable: %v", e.Txn, e.Err)
}

// Unwrap exposes the log failure to errors.As / errors.Is.
func (e *DurabilityError) Unwrap() error { return e.Err }

// ErrUnknownTxn is returned for operations on transactions the engine
// does not know (never begun, or already committed/aborted).
var ErrUnknownTxn = errors.New("tso: unknown or finished transaction")

// errWaitTimeout marks a strict-ordering wait that exceeded the engine's
// safety-valve timeout; it is converted into an AbortWaitTimeout abort.
var errWaitTimeout = errors.New("tso: strict-ordering wait timed out")
