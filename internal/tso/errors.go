package tso

import (
	"errors"
	"fmt"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
)

// AbortError reports that the engine aborted a transaction attempt. The
// attempt is fully cleaned up (pending writes restored, reader entries
// removed) by the time the error is returned; the client's retry loop
// resubmits the transaction with a fresh timestamp (§6).
type AbortError struct {
	// Txn is the aborted attempt.
	Txn core.TxnID
	// Reason classifies the abort for the retry metrics.
	Reason metrics.AbortReason
	// Err is the underlying cause, e.g. a *core.LimitError.
	Err error
}

// Error implements error.
func (e *AbortError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("tso: txn %d aborted (%s): %v", e.Txn, e.Reason, e.Err)
	}
	return fmt.Sprintf("tso: txn %d aborted (%s)", e.Txn, e.Reason)
}

// Unwrap exposes the underlying cause to errors.As / errors.Is.
func (e *AbortError) Unwrap() error { return e.Err }

// IsAbort reports whether err is an engine abort and returns it.
func IsAbort(err error) (*AbortError, bool) {
	var ae *AbortError
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}

// ErrUnknownTxn is returned for operations on transactions the engine
// does not know (never begun, or already committed/aborted).
var ErrUnknownTxn = errors.New("tso: unknown or finished transaction")

// errWaitTimeout marks a strict-ordering wait that exceeded the engine's
// safety-valve timeout; it is converted into an AbortWaitTimeout abort.
var errWaitTimeout = errors.New("tso: strict-ordering wait timed out")
