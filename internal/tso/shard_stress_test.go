package tso

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// TestShardedTxnTableChurn hammers the sharded transaction table from
// many sites at once: concurrent Begin/Read/WriteDelta traffic, racing
// Commit-vs-Abort finishes for every transaction, and Live() polling the
// shards throughout. Under -race it is the table's integration canary;
// the exactly-one-finisher count is the correctness assertion.
func TestShardedTxnTableChurn(t *testing.T) {
	col := &metrics.Collector{}
	e := newTestEngine(t, 64, Options{Collector: col})
	clock := &tsgen.LogicalClock{}
	const sites = 8
	const perSite = 200

	var finished atomic.Int64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Live()
			}
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < sites; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			gen := tsgen.NewGenerator(s, clock)
			// Disjoint objects: the test targets the transaction table,
			// not data conflicts.
			obj := core.ObjectID(s*8 + 1)
			for i := 0; i < perSite; i++ {
				txn, err := e.Begin(core.Update, gen.Next(), core.UnboundedSpec())
				if err != nil {
					t.Errorf("site %d: Begin: %v", s, err)
					return
				}
				if _, err := e.Read(txn, obj); err != nil {
					continue // aborted by the engine: already finished
				}
				if _, err := e.WriteDelta(txn, obj, 1); err != nil {
					continue
				}
				// Race two finishers for the same transaction; the shard's
				// atomic check-and-delete must let exactly one through.
				var inner sync.WaitGroup
				inner.Add(2)
				go func() {
					defer inner.Done()
					if e.Commit(txn) == nil {
						finished.Add(1)
					}
				}()
				go func() {
					defer inner.Done()
					if e.Abort(txn) == nil {
						finished.Add(1)
					}
				}()
				inner.Wait()
			}
		}(s)
	}
	wg.Wait()
	close(stop)

	s := col.Snapshot()
	if got := s.Commits + s.AbortExplicit; got != finished.Load() {
		t.Errorf("commits+explicit aborts = %d, want %d (exactly one finisher per txn)",
			got, finished.Load())
	}
	if e.Live() != 0 {
		t.Errorf("Live = %d after churn, want 0", e.Live())
	}
}

// TestEngineHotPathAllocBudget pins the Begin/Read/WriteDelta/Commit
// allocation budget the PR's hot-path work established: one transaction
// state (with the bounds accumulator embedded in it) plus one write
// record. Regressing this silently re-taxes every transaction.
func TestEngineHotPathAllocBudget(t *testing.T) {
	e := newTestEngine(t, 8, Options{})
	gen := tsgen.NewGenerator(0, &tsgen.LogicalClock{})
	spec := core.UnboundedSpec()
	run := func() {
		txn, err := e.Begin(core.Update, gen.Next(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Read(txn, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := e.WriteDelta(txn, 1, 1); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm up maps and history
	if allocs := testing.AllocsPerRun(100, run); allocs > 3 {
		t.Errorf("hot-path cycle allocates %.1f objects, want <= 3", allocs)
	}
}
