// Package tso implements the paper's concurrency control: timestamp
// ordering extended with the three epsilon-serializability relaxations of
// Figure 3, strict ordering via a wait-based protocol, and abort with
// immediate restart for late operations.
//
// Under classic timestamp ordering an operation is rejected when it
// arrives out of timestamp order. The ESR enhancements give three such
// operations a second chance, provided the inconsistency they would view
// or export fits within the object-level and hierarchical/transaction-
// level bounds:
//
//  1. a query read that views committed data written after the query's
//     timestamp (late read of committed data),
//  2. a query read that views uncommitted data of a concurrent update,
//  3. an update write arriving older than the object's last query read.
//
// Reads from update ETs are never relaxed: their writes depend on them,
// so they must stay consistent (§3.2.1). Setting every bound to zero
// makes the engine behave exactly like strict timestamp ordering — that
// configuration is the paper's SR baseline.
//
// Deadlock freedom: an operation only ever waits for the resolution of an
// uncommitted write with an older timestamp (younger waits for older), so
// the waits-for relation follows timestamp order and cannot form a cycle.
// A configurable timeout remains as a safety valve.
package tso

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/txnshard"
)

// DefaultWaitTimeout bounds strict-ordering waits. Timestamp ordering
// cannot deadlock, so the timeout only guards against lost wakeups from
// bugs or stalled clients holding uncommitted writes.
const DefaultWaitTimeout = 5 * time.Second

// Options configures an Engine.
type Options struct {
	// Schema is the hierarchical grouping of objects; nil means the flat
	// two-level schema of the paper's performance tests.
	Schema *core.Schema
	// Collector receives performance counters; nil drops them.
	Collector *metrics.Collector
	// Tracer receives execution events; nil disables tracing.
	Tracer Tracer
	// WaitTimeout bounds strict-ordering waits; zero means
	// DefaultWaitTimeout, negative means wait forever.
	WaitTimeout time.Duration
	// AbortOnProperMiss aborts query reads whose proper value has been
	// evicted from the bounded write history. The default (false)
	// follows the prototype: use the oldest retained value and count the
	// miss in the store.
	AbortOnProperMiss bool
	// Parker integrates strict-ordering waits with a simulated timeline
	// (vclock): the waiter suspends the timeline while blocked and the
	// committing transaction's broadcast credits it back before waking
	// it. When set, waits have no timeout — timestamp ordering cannot
	// deadlock, and a virtual timeline must never be held back by a
	// wall-clock timer.
	Parker Parker
	// Now drives the per-operation latency histograms and trace event
	// timestamps: it returns elapsed time on whatever timeline the
	// engine runs on. Nil means the wall clock since engine creation;
	// deterministic harnesses pass the vclock timeline's Now so virtual
	// runs still yield real latency distributions.
	Now func() time.Duration
	// Durability, when set, logs every commit (write set + final
	// inconsistency) through the write-ahead log before Commit returns;
	// the record append and the publication of the writes happen
	// atomically so log order matches dependency order. Nil keeps the
	// purely in-memory, allocation-free commit path.
	Durability storage.Durability
}

// Parker marks a goroutine as blocked/runnable on an external timeline;
// vclock.Timeline satisfies it.
type Parker interface {
	Suspend()
	Resume()
}

// Engine executes epsilon transactions against a storage.Store under
// timestamp-ordered ESR. All methods are safe for concurrent use; each
// transaction's operations must be submitted sequentially (the prototype
// clients are synchronous, §6).
type Engine struct {
	store *storage.Store
	opts  Options

	nextTxn atomic.Uint64

	// txns is the live-transaction table, sharded by transaction id so
	// Begin/lookup/remove from concurrent connections do not serialize
	// on one engine-wide lock (DESIGN.md §8).
	txns *txnshard.Map[*txnState]
	// dirtyReaders maps an update attempt to the number of query
	// attempts that read its uncommitted data, to count the §5.1 corner
	// where such an update later aborts. Sharded alongside txns: the
	// increment on every dirty read is hot-path work.
	dirtyReaders *txnshard.Map[int]
}

// txnState is the transaction manager's record of one attempt. Fields are
// owned by the submitting goroutine except where noted.
type txnState struct {
	id   core.TxnID
	kind core.Kind
	ts   tsgen.Timestamp
	// rootLimit is the spec's transaction-level bound (TIL for queries,
	// TEL for updates), kept for trace events so the offline checker can
	// certify the committed total against it.
	rootLimit core.Distance
	// acc is embedded by value (and initialized in place) so one
	// allocation covers the attempt record and its bounds machinery.
	acc core.Accumulator
	// esr is true when the attempt may take ESR relaxation paths: a
	// query with a nonzero import limit or an update with a nonzero
	// export limit. Zero-limit attempts run the textbook strict-TO rules
	// even for operations whose metered inconsistency happens to be
	// zero, so the paper's zero-epsilon baseline is exactly SR.
	esr bool
	// reads are the objects carrying this attempt's reader entries.
	reads []*storage.Object
	// writes are the objects carrying this attempt's pending writes.
	writes []*storage.Object
	// opsExecuted counts successfully executed operations, which become
	// wasted work if the attempt aborts.
	opsExecuted int64
}

// NewEngine returns an engine over the given store.
func NewEngine(store *storage.Store, opts Options) *Engine {
	if opts.WaitTimeout == 0 {
		opts.WaitTimeout = DefaultWaitTimeout
	}
	if opts.Now == nil {
		start := time.Now()
		opts.Now = func() time.Duration { return time.Since(start) }
	}
	return &Engine{
		store:        store,
		opts:         opts,
		txns:         txnshard.New[*txnState](),
		dirtyReaders: txnshard.New[int](),
	}
}

// Store returns the engine's object store.
func (e *Engine) Store() *storage.Store { return e.store }

// MetricsSnapshot reads the engine's collector; without a collector it
// returns zeros.
func (e *Engine) MetricsSnapshot() metrics.Snapshot { return e.opts.Collector.Snapshot() }

// LatencySnapshot reads the engine's per-path latency histograms;
// without a collector it returns empties.
func (e *Engine) LatencySnapshot() metrics.LatencySet {
	return e.opts.Collector.LatencySnapshot()
}

// Schema returns the engine's schema (the flat schema if none was set).
func (e *Engine) Schema() *core.Schema { return e.opts.Schema }

// Live returns the number of transaction attempts currently in the live
// table — begun but neither committed nor aborted. A nonzero value at
// quiescence indicates leaked transactions.
func (e *Engine) Live() int { return e.txns.Len() }

// Begin starts a transaction attempt with the given kind, timestamp and
// inconsistency specification, returning its id. Timestamps must be
// unique across attempts (tsgen guarantees this); the specification is
// compiled against the engine's schema, so unknown group names fail here.
func (e *Engine) Begin(kind core.Kind, ts tsgen.Timestamp, spec core.BoundSpec) (core.TxnID, error) {
	if kind != core.Query && kind != core.Update {
		return 0, fmt.Errorf("tso: invalid transaction kind %d", kind)
	}
	if ts.IsNone() {
		return 0, fmt.Errorf("tso: transaction timestamp must be non-zero")
	}
	st := &txnState{
		id:        core.TxnID(e.nextTxn.Add(1)),
		kind:      kind,
		ts:        ts,
		rootLimit: spec.Transaction,
		esr:       spec.Transaction > 0,
	}
	if err := st.acc.Init(e.opts.Schema, spec, kind == core.Query); err != nil {
		return 0, err
	}
	e.txns.Store(st.id, st)
	e.opts.Collector.Begin()
	e.trace(Event{Kind: EvBegin, Txn: st.id, TxnKind: kind, TS: ts, Limit: spec.Transaction})
	return st.id, nil
}

// lookup returns the live state for a transaction id.
func (e *Engine) lookup(txn core.TxnID) (*txnState, error) {
	st, ok := e.txns.Load(txn)
	if !ok {
		return nil, ErrUnknownTxn
	}
	return st, nil
}

// remove deletes the attempt from the live table; it returns false if the
// attempt was already finished (double commit/abort). The shard's
// atomic check-and-delete is the double-finish guard.
func (e *Engine) remove(txn core.TxnID) (*txnState, bool) {
	return e.txns.Delete(txn)
}

// Commit finishes an attempt successfully: pending writes are published
// into the committed history, reader entries are withdrawn, and waiters
// are woken.
//
// With durability enabled the commit record (write set + the attempt's
// final imported/exported inconsistency) is appended to the log and the
// writes published under the log's mutex, then Commit waits for the
// group-commit fsync after all object locks are released. A log append
// failure still publishes — in-memory waiters must not strand — but the
// caller gets a *DurabilityError: committed, not durable.
func (e *Engine) Commit(txn core.TxnID) error {
	start := e.opts.Now()
	st, ok := e.remove(txn)
	if !ok {
		return ErrUnknownTxn
	}
	var imported, exported core.Distance
	total := st.acc.Total()
	if total != 0 {
		if st.kind == core.Query {
			imported = total
		} else {
			exported = total
		}
	}
	var durAck storage.Ack
	var durErr error
	if d := e.opts.Durability; d != nil {
		rec := &storage.TxnCommit{Txn: st.id, Kind: st.kind, TS: st.ts, Imported: imported, Exported: exported}
		if len(st.writes) > 0 {
			rec.Writes = make([]storage.CommittedWrite, 0, len(st.writes))
			for _, o := range st.writes {
				o.Lock()
				if owner, dirty := o.Dirty(); dirty && owner == st.id {
					rec.Writes = append(rec.Writes, storage.CommittedWrite{
						Object: o.ID(), Value: o.Value(), TS: o.WriteTS(),
					})
				}
				o.Unlock()
			}
		}
		durAck, durErr = d.LogCommit(rec, func() { e.publishCommit(st, imported, exported) })
		if durErr != nil {
			e.publishCommit(st, imported, exported)
		}
	} else {
		e.publishCommit(st, imported, exported)
	}
	for _, o := range st.reads {
		o.Lock()
		o.RemoveReader(st.id)
		o.Unlock()
	}
	e.clearDirtyNote(st.id, false)
	e.opts.Collector.Commit()
	e.opts.Collector.ObserveLatency(metrics.LatCommit, e.opts.Now()-start)
	e.trace(Event{Kind: EvCommit, Txn: st.id, TxnKind: st.kind, TS: st.ts,
		Inconsistency: total, Limit: st.rootLimit})
	if durErr == nil && durAck != nil {
		durErr = durAck.Wait()
	}
	if durErr != nil {
		return &DurabilityError{Txn: st.id, Err: durErr}
	}
	return nil
}

// publishCommit makes the attempt's writes visible and folds its final
// inconsistency into the store's accumulated totals. With durability on
// it runs inside the log's append mutex (see Durability), so snapshots
// capture totals prefix-consistent with the log.
func (e *Engine) publishCommit(st *txnState, imported, exported core.Distance) {
	for _, o := range st.writes {
		o.Lock()
		o.CommitWrite(st.id)
		o.Unlock()
	}
	e.store.AddCommittedInconsistency(imported, exported)
}

// Abort finishes an attempt unsuccessfully at the client's request:
// pending writes are restored from their shadow values and reader entries
// withdrawn. Engine-initiated aborts (late operations, violated bounds)
// happen internally and are reported through AbortError instead.
func (e *Engine) Abort(txn core.TxnID) error {
	st, ok := e.remove(txn)
	if !ok {
		return ErrUnknownTxn
	}
	e.finishAbort(st, metrics.AbortExplicit, nil)
	return nil
}

// abortNow aborts the attempt internally and builds the AbortError the
// failed operation returns. No object locks may be held by the caller.
//
// When remove reports the attempt already finished — a concurrent
// client-requested Abort raced with this operation and released the
// footprint first — only the error is built: re-running finishAbort on
// the stale state would re-release objects another attempt may already
// own and double-count the abort.
func (e *Engine) abortNow(st *txnState, reason metrics.AbortReason, cause error) *AbortError {
	if removed, ok := e.remove(st.id); ok {
		e.finishAbort(removed, reason, cause)
	}
	return &AbortError{Txn: st.id, Reason: reason, Err: cause}
}

// finishAbort releases an attempt's footprint and records metrics.
func (e *Engine) finishAbort(st *txnState, reason metrics.AbortReason, cause error) {
	for _, o := range st.writes {
		o.Lock()
		o.AbortWrite(st.id)
		o.Unlock()
	}
	for _, o := range st.reads {
		o.Lock()
		o.RemoveReader(st.id)
		o.Unlock()
	}
	e.clearDirtyNote(st.id, true)
	e.opts.Collector.Abort(reason, st.opsExecuted)
	_ = cause
	e.trace(Event{Kind: EvAbort, Txn: st.id, TxnKind: st.kind, TS: st.ts})
}

// noteDirtyRead records that reader consumed writer's uncommitted data.
func (e *Engine) noteDirtyRead(writer core.TxnID) {
	e.dirtyReaders.Mutate(writer, func(n int, _ bool) (int, bool) { return n + 1, true })
}

// clearDirtyNote drops the dirty-read bookkeeping for a finished writer;
// if the writer aborted while queries had read its uncommitted data, the
// occurrences are counted (§5.1: the paper accepts this risk).
func (e *Engine) clearDirtyNote(writer core.TxnID, aborted bool) {
	n, _ := e.dirtyReaders.Delete(writer)
	if aborted {
		e.opts.Collector.AddDirtySourceAborted(int64(n))
	}
}

// trace emits an event if a tracer is installed, stamping it with the
// engine's timeline.
func (e *Engine) trace(ev Event) {
	if e.opts.Tracer != nil {
		ev.At = e.opts.Now()
		e.opts.Tracer.Trace(ev)
	}
}

// waitForResolve blocks until the object's pending write resolves or the
// timeout fires. The caller must hold the object's lock; the lock is
// released while waiting and re-acquired before returning.
func (e *Engine) waitForResolve(o *storage.Object) error {
	ch := o.Changed()
	start := e.opts.Now()
	if p := e.opts.Parker; p != nil {
		// Timeline-integrated wait: suspend while blocked; the
		// broadcast credits us back before closing the channel.
		o.SetWaker(e.wakeCredit)
		o.IncParked()
		o.Unlock()
		e.opts.Collector.Waited()
		p.Suspend()
		<-ch
		e.opts.Collector.ObserveLatency(metrics.LatWait, e.opts.Now()-start)
		o.Lock()
		return nil
	}
	o.Unlock()
	e.opts.Collector.Waited()
	defer func() {
		e.opts.Collector.ObserveLatency(metrics.LatWait, e.opts.Now()-start)
		o.Lock()
	}()
	if e.opts.WaitTimeout < 0 {
		<-ch
		return nil
	}
	timer := time.NewTimer(e.opts.WaitTimeout)
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-timer.C:
		return errWaitTimeout
	}
}

// wakeCredit re-credits n parked waiters on the timeline.
func (e *Engine) wakeCredit(n int) {
	for i := 0; i < n; i++ {
		e.opts.Parker.Resume()
	}
}

// absDist is the Absolute metric inline: |u − v| as a distance.
func absDist(u, v core.Value) core.Distance {
	if u >= v {
		return u - v
	}
	return v - u
}
