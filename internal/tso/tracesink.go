// Trace sinks: consumers for the engine's Tracer hook. The JSONL sink
// streams every event as one JSON object per line — the structured
// execution traces that consistency checkers over observed histories
// (Biswas & Enea; Nagar & Jagannathan) take as input. The flight
// recorder keeps the last N events in a ring buffer and dumps them when
// an abort storm hits, so the window into a misbehaving engine is the
// moments *before* the storm, not just its aftermath.
package tso

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"time"
)

// MultiTracer fans one event stream out to several tracers, in order.
type MultiTracer []Tracer

// Trace implements Tracer.
func (m MultiTracer) Trace(ev Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// JSONLSink writes every event as one JSON line to a buffered writer.
// Encoding is hand-rolled appends into a reused buffer: the tracer hook
// runs with object locks held, so the sink must not allocate per event
// beyond the occasional buffer growth.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	buf []byte
	err error
}

// NewJSONLSink returns a sink over w and writes the versioned schema
// header as the first line, so every trace file starts with its schema
// identity. Call Flush before reading what was written; the sink
// buffers aggressively.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriterSize(w, 64<<10)}
	s.buf = AppendTraceHeaderJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	_, s.err = s.bw.Write(s.buf)
	return s
}

// AppendTraceHeaderJSON appends the schema header line (without the
// trailing newline) to dst. The header is a JSON object whose "schema"
// field is "<TraceSchemaName>/<TraceSchemaVersion>".
func AppendTraceHeaderJSON(dst []byte) []byte {
	dst = append(dst, `{"schema":"`...)
	dst = append(dst, TraceSchemaName...)
	dst = append(dst, '/')
	dst = strconv.AppendInt(dst, TraceSchemaVersion, 10)
	return append(dst, `"}`...)
}

// Trace implements Tracer. Write errors are sticky and reported by Flush.
func (s *JSONLSink) Trace(ev Event) {
	s.mu.Lock()
	if s.err == nil {
		s.buf = AppendEventJSON(s.buf[:0], ev)
		s.buf = append(s.buf, '\n')
		_, s.err = s.bw.Write(s.buf)
	}
	s.mu.Unlock()
}

// Flush drains the buffer to the underlying writer and returns the first
// error encountered since the last Flush.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = s.bw.Flush()
	}
	err := s.err
	s.err = nil
	return err
}

// AppendEventJSON appends ev as a single JSON object to dst. Zero-valued
// optional fields (object, value, inconsistency, limit, dirty flag) are
// omitted to keep traces compact; decoders treat a missing "lim" as a
// zero bound and a missing "inc" as a consistent operation. Commit
// events carry the attempt's final accumulated inconsistency in "inc"
// so checkers can cross-check the per-op charges against the committed
// total (schema esr-trace/1).
func AppendEventJSON(dst []byte, ev Event) []byte {
	dst = append(dst, `{"ev":"`...)
	dst = append(dst, ev.Kind.String()...)
	dst = append(dst, `","txn":`...)
	dst = strconv.AppendUint(dst, uint64(ev.Txn), 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, ev.TxnKind.String()...)
	dst = append(dst, `","at_ns":`...)
	dst = strconv.AppendInt(dst, int64(ev.At), 10)
	dst = append(dst, `,"ts":`...)
	dst = strconv.AppendUint(dst, uint64(ev.TS), 10)
	if ev.Kind == EvRead || ev.Kind == EvWrite {
		dst = append(dst, `,"obj":`...)
		dst = strconv.AppendUint(dst, uint64(ev.Object), 10)
		dst = append(dst, `,"val":`...)
		dst = strconv.AppendInt(dst, int64(ev.Value), 10)
		dst = append(dst, `,"ver":`...)
		dst = strconv.AppendUint(dst, uint64(ev.Version), 10)
	}
	if ev.Inconsistency != 0 {
		dst = append(dst, `,"inc":`...)
		dst = strconv.AppendInt(dst, int64(ev.Inconsistency), 10)
	}
	if ev.Limit != 0 {
		dst = append(dst, `,"lim":`...)
		dst = strconv.AppendInt(dst, int64(ev.Limit), 10)
	}
	if ev.DirtyRead {
		dst = append(dst, `,"dirty":true`...)
	}
	if ev.Replica {
		dst = append(dst, `,"replica":true`...)
	}
	return append(dst, '}')
}

// FlightRecorder keeps the most recent events in a fixed ring buffer and,
// when aborts cluster, hands the buffered history to a storm handler.
// Storm detection is sliding-window: a dump fires when at least
// `threshold` aborts land within `window` of engine time, and re-arms one
// full window after firing so a sustained storm produces one dump per
// window rather than one per abort.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []Event
	next int
	full bool

	abortTimes []time.Duration // recent abort stamps, oldest first
	threshold  int
	window     time.Duration
	lastDump   time.Duration
	dumped     bool
	onStorm    func([]Event)
}

// NewFlightRecorder returns a recorder holding the last n events
// (minimum 1).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{ring: make([]Event, n)}
}

// OnAbortStorm installs the storm trigger: fn receives a copy of the ring
// (oldest first) when threshold aborts occur within window. fn runs on
// the engine goroutine that traced the triggering abort, so it should
// hand off heavy work.
func (f *FlightRecorder) OnAbortStorm(threshold int, window time.Duration, fn func([]Event)) {
	f.mu.Lock()
	f.threshold = threshold
	f.window = window
	f.onStorm = fn
	f.mu.Unlock()
}

// Trace implements Tracer.
func (f *FlightRecorder) Trace(ev Event) {
	f.mu.Lock()
	f.ring[f.next] = ev
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.full = true
	}
	var fire func([]Event)
	var events []Event
	if ev.Kind == EvAbort && f.onStorm != nil {
		f.abortTimes = append(f.abortTimes, ev.At)
		cutoff := ev.At - f.window
		i := 0
		for i < len(f.abortTimes) && f.abortTimes[i] < cutoff {
			i++
		}
		f.abortTimes = f.abortTimes[i:]
		if len(f.abortTimes) >= f.threshold && (!f.dumped || ev.At-f.lastDump >= f.window) {
			f.lastDump = ev.At
			f.dumped = true
			fire = f.onStorm
			events = f.snapshotLocked()
		}
	}
	f.mu.Unlock()
	if fire != nil {
		fire(events)
	}
}

// Snapshot copies the buffered events, oldest first.
func (f *FlightRecorder) Snapshot() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snapshotLocked()
}

func (f *FlightRecorder) snapshotLocked() []Event {
	if !f.full {
		return append([]Event(nil), f.ring[:f.next]...)
	}
	out := make([]Event, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	return append(out, f.ring[:f.next]...)
}

// WriteJSONL dumps the buffered events to w in JSONL form, oldest first.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	var buf []byte
	for _, ev := range f.Snapshot() {
		buf = AppendEventJSON(buf[:0], ev)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// The compiler enforces the Tracer contracts.
var (
	_ Tracer = (*JSONLSink)(nil)
	_ Tracer = (*FlightRecorder)(nil)
	_ Tracer = MultiTracer(nil)
)
