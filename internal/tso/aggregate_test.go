package tso

import (
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

func TestAggregateSumConsistent(t *testing.T) {
	e := newTestEngine(t, 3, Options{})
	q, err := e.BeginAggregate(tsgen.Make(10, 0), 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := q.Read(core.ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, inc, err := q.Result(core.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if v != 600 || inc != 0 {
		t.Errorf("sum = %d±%d, want 600±0", v, inc)
	}
}

func TestAggregateAvgWithRepeatedReadsAcrossUpdates(t *testing.T) {
	// The §5.3.2 scenario: the same object is read twice, with a
	// concurrent update committing in between; the envelope widens and
	// the result inconsistency reflects it.
	e := newTestEngine(t, 2, Options{})
	q, err := e.BeginAggregate(tsgen.Make(10, 0), 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Read(1); err != nil { // sees 100
		t.Fatal(err)
	}
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 180); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Read(1); err != nil { // case 1: sees 180
		t.Fatal(err)
	}
	if _, err := q.Read(2); err != nil { // sees 200
		t.Fatal(err)
	}
	v, inc, err := q.Result(core.AggAvg)
	if err != nil {
		t.Fatal(err)
	}
	// Object 1 envelope [100,180], object 2 [200,200]:
	// min_result = 150, max_result = 190 → value 170, inconsistency 20.
	if v != 170 || inc != 20 {
		t.Errorf("avg = %d±%d, want 170±20", v, inc)
	}
}

func TestAggregateRejectedAtAggregateTime(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	col := &metrics.Collector{}
	e.opts.Collector = col
	q, err := e.BeginAggregate(tsgen.Make(10, 0), 39) // spread will be 80 → inc 40
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Read(1); err != nil {
		t.Fatal(err)
	}
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 180); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Read(1); err != nil {
		t.Fatal(err)
	}
	_, _, err = q.Result(core.AggSum)
	ae := wantAbort(t, err, metrics.AbortImportLimit)
	var le *core.LimitError
	if !asLimitError(ae, &le) || le.Level != core.LevelTransaction || le.Distance != 40 {
		t.Errorf("cause = %v", ae.Err)
	}
	// The attempt is gone; further use fails cleanly.
	if _, err := q.Read(1); err != ErrUnknownTxn {
		t.Errorf("read after result: %v", err)
	}
}

func TestAggregateObjectLimitStillCheckedPerRead(t *testing.T) {
	// §5.3.2: "the criterion for object inconsistency is going to remain
	// unchanged" — a read violating the OIL aborts immediately.
	e := newTestEngine(t, 1, Options{})
	o, err := e.Store().Get(1)
	if err != nil {
		t.Fatal(err)
	}
	o.Lock()
	o.SetLimits(10, core.NoLimit)
	o.Unlock()

	q, err := e.BeginAggregate(tsgen.Make(10, 0), core.NoLimit)
	if err != nil {
		t.Fatal(err)
	}
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 180); err != nil { // d will be 80 > OIL 10
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	_, err = q.Read(1)
	wantAbort(t, err, metrics.AbortImportLimit)
}

func TestAggregateZeroTILIsSerializable(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	q, err := e.BeginAggregate(tsgen.Make(10, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 100); err != nil { // value-identical write
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	// SR semantics: the late read aborts even though d would be zero.
	_, err = q.Read(1)
	wantAbort(t, err, metrics.AbortLateRead)
}

func TestAggregateValidationAndAbort(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	if _, err := e.BeginAggregate(tsgen.Make(10, 0), -1); err == nil {
		t.Error("negative TIL accepted")
	}
	q, err := e.BeginAggregate(tsgen.Make(10, 0), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Result(core.AggSum); err == nil {
		t.Error("empty aggregate succeeded")
	}
	// After the failed Result the query is finished.
	if err := q.Abort(); err != nil {
		t.Errorf("Abort after finish: %v", err)
	}

	q2, err := e.BeginAggregate(tsgen.Make(20, 0), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.Read(1); err != nil {
		t.Fatal(err)
	}
	if err := q2.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q2.Result(core.AggSum); err != ErrUnknownTxn {
		t.Errorf("Result after Abort: %v", err)
	}
}
