package tso

import (
	"fmt"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
)

// Write executes a write of an absolute value for the given attempt. On
// rejection the attempt is aborted internally and an *AbortError is
// returned.
func (e *Engine) Write(txn core.TxnID, obj core.ObjectID, value core.Value) error {
	_, err := e.write(txn, obj, value, 0, false)
	return err
}

// WriteDelta executes a write of current+delta, returning the value
// actually written. Delta writes keep restarted transactions meaningful:
// the increment is re-applied to whatever the object holds at retry time.
func (e *Engine) WriteDelta(txn core.TxnID, obj core.ObjectID, delta core.Value) (core.Value, error) {
	return e.write(txn, obj, 0, delta, true)
}

// write is the shared write path implementing strict timestamp ordering
// with ESR case 3. The rules, evaluated with the object locked:
//
//   - An uncommitted write by an older attempt blocks us (strict
//     ordering: younger waits for older). An uncommitted write by a
//     younger attempt means our write is already out of order — abort.
//   - A write older than the object's last update-ET read aborts: reads
//     from update ETs must stay consistent, so the conflict is real.
//   - A write older than the committed write timestamp aborts (the
//     prototype does not apply the Thomas write rule).
//   - A write older than the object's last query-ET read is ESR case 3:
//     it may proceed if the inconsistency it exports — the maximum
//     distance between the new value and the proper values of the
//     uncommitted query readers (§5.2) — fits the object export limit
//     and the hierarchy/transaction export bounds.
func (e *Engine) write(txn core.TxnID, obj core.ObjectID, value, delta core.Value, useDelta bool) (core.Value, error) {
	start := e.opts.Now()
	st, err := e.lookup(txn)
	if err != nil {
		return 0, err
	}
	if st.kind != core.Update {
		return 0, e.abortNow(st, metrics.AbortOther,
			fmt.Errorf("write on object %d from a %s ET", obj, st.kind))
	}
	o, err := e.store.Get(obj)
	if err != nil {
		return 0, e.abortNow(st, metrics.AbortMissingObject, err)
	}

	o.Lock()
	for {
		owner, dirty := o.Dirty()
		if !dirty {
			break
		}
		if owner == st.id {
			// The one-write-per-object rule (§3.2.1) is validated at
			// submission; hitting this means a malformed program.
			o.Unlock()
			return 0, e.abortNow(st, metrics.AbortOther,
				fmt.Errorf("object %d already written by this transaction", obj))
		}
		if st.ts.After(o.WriteTS()) {
			//lint:ignore lockorder waitForResolve releases o's lock before blocking and re-acquires it before returning
			if err := e.waitForResolve(o); err != nil {
				o.Unlock()
				return 0, e.abortNow(st, metrics.AbortWaitTimeout, err)
			}
			continue
		}
		// Our timestamp is older than a pending write: out of order.
		o.Unlock()
		return 0, e.abortNow(st, metrics.AbortLateWrite,
			fmt.Errorf("write ts %v older than pending write %v on object %d", st.ts, o.WriteTS(), obj))
	}

	newValue := value
	if useDelta {
		newValue = o.Value() + delta
	}

	if st.ts.Before(o.MaxUpdateReadTS()) {
		o.Unlock()
		return 0, e.abortNow(st, metrics.AbortLateWrite,
			fmt.Errorf("write ts %v older than update-ET read %v on object %d", st.ts, o.MaxUpdateReadTS(), obj))
	}
	// Not-strictly-newer than the committed version aborts. Equality is
	// a real case, not paranoia: a reconnecting client that re-estimates
	// its clock correction can reissue a (tick, site) pair, and two
	// committed versions sharing a timestamp have no order — the oracle
	// rightly refutes such a history, so the engine must refuse to
	// create it. (The prototype does not apply the Thomas write rule.)
	if !st.ts.After(o.CommittedTS()) {
		o.Unlock()
		return 0, e.abortNow(st, metrics.AbortLateWrite,
			fmt.Errorf("write ts %v not newer than committed write %v on object %d", st.ts, o.CommittedTS(), obj))
	}

	// ESR case 3: late with respect to a query read only.
	var exported core.Distance
	caseThree := st.ts.Before(o.MaxQueryReadTS())
	if caseThree {
		if !st.esr {
			// Zero export limit: the attempt runs textbook TO, where a
			// write older than any read aborts even if no uncommitted
			// reader would observe a value difference.
			o.Unlock()
			return 0, e.abortNow(st, metrics.AbortLateWrite,
				fmt.Errorf("write ts %v older than query read %v on object %d", st.ts, o.MaxQueryReadTS(), obj))
		}
		d, _ := o.ExportDistance(newValue)
		if err := st.acc.Admit(o.ID(), d, o.OEL()); err != nil {
			o.Unlock()
			return 0, e.abortNow(st, metrics.AbortExportLimit, err)
		}
		exported = d
	}

	if err := o.BeginWrite(st.id, st.ts, newValue); err != nil {
		o.Unlock()
		return 0, e.abortNow(st, metrics.AbortOther, err)
	}
	st.writes = append(st.writes, o)
	e.trace(Event{Kind: EvWrite, Txn: st.id, TxnKind: st.kind, TS: st.ts,
		Object: o.ID(), Value: newValue, Version: st.ts, Inconsistency: exported,
		Limit: o.OEL()})
	o.Unlock()

	st.opsExecuted++
	e.opts.Collector.WriteExecuted(caseThree && exported > 0)
	e.opts.Collector.ObserveLatency(metrics.LatWrite, e.opts.Now()-start)
	return newValue, nil
}
