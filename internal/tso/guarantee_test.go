package tso

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// TestImportBoundGuaranteeProperty checks the paper's §3.2.1 guarantee
// end to end under randomized concurrency: when updates are zero-sum
// (every consistent snapshot has the same total) and export no
// inconsistency (TEL = 0), a sum query with import limit TIL always
// returns within TIL of the consistent total, for random TILs, object
// counts, update intensities, and interleavings.
func TestImportBoundGuaranteeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numObjects := 3 + rng.Intn(6)
		til := core.Distance(rng.Intn(500))
		updaters := 1 + rng.Intn(3)

		st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
		var trueTotal core.Value
		for i := 0; i < numObjects; i++ {
			v := core.Value(1000 + rng.Intn(9000))
			if _, err := st.Create(core.ObjectID(i), v); err != nil {
				return false
			}
			trueTotal += v
		}
		e := NewEngine(st, Options{})
		clock := &tsgen.LogicalClock{}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < updaters; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed ^ int64(w)*7919))
				gen := tsgen.NewGenerator(w+1, clock)
				for {
					select {
					case <-stop:
						return
					default:
					}
					a := core.ObjectID(r.Intn(numObjects))
					b := core.ObjectID((int(a) + 1 + r.Intn(numObjects-1)) % numObjects)
					amt := core.Value(1 + r.Intn(200))
					p := core.NewUpdate(0).WriteDelta(a, amt).WriteDelta(b, -amt)
					_, _, _ = e.RunRetry(p, gen, 50)
				}
			}()
		}

		qgen := tsgen.NewGenerator(9, clock)
		ok := true
		for q := 0; q < 5 && ok; q++ {
			p := core.NewQuery(til)
			for i := 0; i < numObjects; i++ {
				p.Read(core.ObjectID(i))
			}
			res, _, err := e.RunRetry(p, qgen, 0)
			if err != nil {
				ok = false
				break
			}
			diff := res.Sum - trueTotal
			if diff < 0 {
				diff = -diff
			}
			if diff > til {
				t.Logf("seed %d: query sum %d deviates by %d > TIL %d", seed, res.Sum, diff, til)
				ok = false
			}
		}
		close(stop)
		wg.Wait()
		return ok && st.TotalValue() == trueTotal
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestExportBoundLimitsStaleness checks the export side in isolation:
// with an uncommitted query holding a reader entry, updates of TEL = E
// can move the object at most E away from the query's proper value via
// case-3 writes.
func TestExportBoundLimitsStaleness(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	q := mustBegin(t, e, core.Query, 1000, core.NoLimit)
	if _, err := e.Read(q, 1); err != nil { // proper value 100 registered
		t.Fatal(err)
	}
	const tel = 75
	moved := core.Value(0)
	for i := 0; i < 20; i++ {
		u := mustBegin(t, e, core.Update, int64(10+i), tel) // older than q
		_, err := e.WriteDelta(u, 1, 10)
		if err != nil {
			// The accumulated export would exceed the reader's envelope.
			break
		}
		if err := e.Commit(u); err != nil {
			t.Fatal(err)
		}
		moved += 10
	}
	if moved > tel {
		t.Errorf("case-3 writes moved the object %d past the TEL %d while a reader was live", moved, tel)
	}
	if moved == 0 {
		t.Error("no case-3 write was admitted at all")
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
}
