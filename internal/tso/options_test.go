package tso

import (
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
)

func TestAbortOnProperMissPolicy(t *testing.T) {
	// A 2-deep history with 3 committed writes during the query's
	// lifetime evicts the proper value; the strict policy aborts, the
	// default uses the oldest retained value and counts the miss.
	build := func(abortOnMiss bool) (*Engine, core.TxnID) {
		st := storage.NewStore(storage.Config{
			HistoryDepth: 2, DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit,
		})
		if _, err := st.Create(1, 100); err != nil {
			t.Fatal(err)
		}
		e := NewEngine(st, Options{AbortOnProperMiss: abortOnMiss})
		q := mustBegin(t, e, core.Query, 10, core.NoLimit)
		for i := 0; i < 3; i++ {
			u := mustBegin(t, e, core.Update, int64(20+10*i), 0)
			if err := e.Write(u, 1, core.Value(110+10*i)); err != nil {
				t.Fatal(err)
			}
			if err := e.Commit(u); err != nil {
				t.Fatal(err)
			}
		}
		return e, q
	}

	e, q := build(false)
	if _, err := e.Read(q, 1); err != nil {
		t.Errorf("default policy aborted on proper miss: %v", err)
	}
	if got := e.Store().ProperMisses(); got != 1 {
		t.Errorf("ProperMisses = %d, want 1", got)
	}

	e2, q2 := build(true)
	_, err := e2.Read(q2, 1)
	wantAbort(t, err, metrics.AbortImportLimit)
}

func TestWaitForeverOption(t *testing.T) {
	e := newTestEngine(t, 1, Options{WaitTimeout: -1})
	u := mustBegin(t, e, core.Update, 10, 0)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	u2 := mustBegin(t, e, core.Update, 20, 0)
	done := make(chan core.Value, 1)
	go func() {
		v, err := e.Read(u2, 1)
		if err != nil {
			done <- -1
			return
		}
		done <- v
	}()
	// Well past the default timeout window at test scale.
	select {
	case v := <-done:
		t.Fatalf("wait-forever read returned %d early", v)
	case <-time.After(50 * time.Millisecond):
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != 150 {
			t.Errorf("read = %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("reader never woke")
	}
}

func TestEngineAccessors(t *testing.T) {
	schema := core.NewSchema()
	st := storage.NewStore(storage.Config{})
	e := NewEngine(st, Options{Schema: schema})
	if e.Store() != st {
		t.Error("Store() mismatch")
	}
	if e.Schema() != schema {
		t.Error("Schema() mismatch")
	}
	if s := e.MetricsSnapshot(); s != (metrics.Snapshot{}) {
		t.Errorf("nil-collector snapshot = %+v", s)
	}
}

func TestWriteDeltaOnMissingObjectAborts(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	u := mustBegin(t, e, core.Update, 10, 0)
	_, err := e.WriteDelta(u, 42, 5)
	wantAbort(t, err, metrics.AbortMissingObject)
}

func TestEventKindStrings(t *testing.T) {
	for kind, want := range map[EventKind]string{
		EvBegin: "begin", EvRead: "read", EvWrite: "write",
		EvCommit: "commit", EvAbort: "abort", EventKind(99): "event",
	} {
		if got := kind.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", kind, got, want)
		}
	}
}

func TestAbortErrorFormatting(t *testing.T) {
	plain := &AbortError{Txn: 7, Reason: metrics.AbortLateRead}
	if plain.Error() == "" || plain.Unwrap() != nil {
		t.Errorf("plain abort error: %q", plain.Error())
	}
	if _, ok := IsAbort(ErrUnknownTxn); ok {
		t.Error("IsAbort matched ErrUnknownTxn")
	}
}
