package tso

import (
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// --- ESR case 1: query read views committed data newer than the query ---

func TestCase1LateQueryReadWithinBounds(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	q := mustBegin(t, e, core.Query, 10, 60) // TIL = 60
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 150); err != nil { // 100 → 150, d = 50
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	v, err := e.Read(q, 1)
	if err != nil {
		t.Fatalf("case-1 read within bounds aborted: %v", err)
	}
	if v != 150 {
		t.Errorf("case-1 read = %d, want present value 150", v)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
}

func TestCase1LateQueryReadExceedingTILAborts(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	q := mustBegin(t, e, core.Query, 10, 49) // d will be 50 > 49
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	_, err := e.Read(q, 1)
	ae := wantAbort(t, err, metrics.AbortImportLimit)
	var le *core.LimitError
	if !asLimitError(ae, &le) {
		t.Fatalf("cause is not a LimitError: %v", ae)
	}
	if le.Level != core.LevelTransaction || le.Distance != 50 {
		t.Errorf("violation = %+v", le)
	}
}

func TestCase1AccumulatesAcrossReads(t *testing.T) {
	// Two late reads of d=50 each: TIL 100 admits both, TIL 99 only one.
	run := func(til core.Distance) (int, error) {
		e := newTestEngine(t, 2, Options{})
		q := mustBegin(t, e, core.Query, 10, til)
		u := mustBegin(t, e, core.Update, 20, 0)
		if err := e.Write(u, 1, 150); err != nil {
			return 0, err
		}
		if err := e.Write(u, 2, 250); err != nil {
			return 0, err
		}
		if err := e.Commit(u); err != nil {
			return 0, err
		}
		reads := 0
		if _, err := e.Read(q, 1); err != nil {
			return reads, err
		}
		reads++
		if _, err := e.Read(q, 2); err != nil {
			return reads, err
		}
		reads++
		return reads, e.Commit(q)
	}
	if n, err := run(100); err != nil || n != 2 {
		t.Errorf("TIL 100: reads=%d err=%v, want 2,nil", n, err)
	}
	n, err := run(99)
	if n != 1 {
		t.Errorf("TIL 99: reads=%d, want 1", n)
	}
	wantAbort(t, err, metrics.AbortImportLimit)
}

func TestCase1OILCheckedBeforeTIL(t *testing.T) {
	st := storage.NewStore(storage.Config{DefaultOIL: 30, DefaultOEL: core.NoLimit})
	if _, err := st.Create(1, 100); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(st, Options{})
	q := mustBegin(t, e, core.Query, 10, core.NoLimit) // huge TIL, small OIL
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	_, err := e.Read(q, 1)
	ae := wantAbort(t, err, metrics.AbortImportLimit)
	var le *core.LimitError
	if !asLimitError(ae, &le) || le.Level != core.LevelObject {
		t.Errorf("want object-level violation, got %v", ae)
	}
}

// --- ESR case 2: query read views uncommitted data ---

func TestCase2DirtyReadWithinBounds(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	u := mustBegin(t, e, core.Update, 10, 0)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	// Query younger than the pending write reads the dirty value without
	// blocking, charging d = 50.
	q := mustBegin(t, e, core.Query, 20, 60)
	v, err := e.Read(q, 1)
	if err != nil {
		t.Fatalf("case-2 read aborted: %v", err)
	}
	if v != 150 {
		t.Errorf("case-2 read = %d, want dirty 150", v)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
}

func TestCase2QueryOlderThanPendingWriteWithinBounds(t *testing.T) {
	// The paper reads the present value whenever the bounds allow it,
	// even when the query's timestamp precedes the pending write.
	e := newTestEngine(t, 1, Options{})
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	q := mustBegin(t, e, core.Query, 10, 60)
	v, err := e.Read(q, 1)
	if err != nil || v != 150 {
		t.Fatalf("read = %d,%v, want dirty 150", v, err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
}

func TestCase2BoundsRefusedOlderQueryFallsBackToCommitted(t *testing.T) {
	// d = 50 exceeds TIL 10, but the query is older than the pending
	// write, so it reads the committed value consistently instead of
	// blocking or aborting.
	e := newTestEngine(t, 1, Options{})
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	q := mustBegin(t, e, core.Query, 10, 10)
	v, err := e.Read(q, 1)
	if err != nil || v != 100 {
		t.Fatalf("read = %d,%v, want committed 100", v, err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
}

func TestCase2BoundsRefusedYoungerQueryWaits(t *testing.T) {
	// d = 50 exceeds TIL 10 and the query is younger than the pending
	// write: it must wait for the writer, then read consistently.
	e := newTestEngine(t, 1, Options{})
	u := mustBegin(t, e, core.Update, 10, 0)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	q := mustBegin(t, e, core.Query, 20, 10)
	done := make(chan core.Value, 1)
	go func() {
		v, err := e.Read(q, 1)
		if err != nil {
			done <- -1
			return
		}
		done <- v
	}()
	select {
	case v := <-done:
		t.Fatalf("query returned %d without waiting", v)
	case <-time.After(30 * time.Millisecond):
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		// After the commit the query (ts 20) is younger than the write
		// (ts 10): a consistent read of 150.
		if v != 150 {
			t.Fatalf("read after wait = %d, want 150", v)
		}
	case <-time.After(time.Second):
		t.Fatal("query read never woke")
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
}

// --- ESR case 3: update write older than a query read ---

func TestCase3LateWriteWithinBounds(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	q := mustBegin(t, e, core.Query, 20, core.NoLimit)
	if v, err := e.Read(q, 1); err != nil || v != 100 {
		t.Fatalf("query read = %d,%v", v, err)
	}
	// The update's timestamp precedes the query's read: case 3. It
	// exports |130 − 100| = 30 to the uncommitted query.
	u := mustBegin(t, e, core.Update, 10, 30) // TEL = 30
	if err := e.Write(u, 1, 130); err != nil {
		t.Fatalf("case-3 write within bounds aborted: %v", err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
}

func TestCase3LateWriteExceedingTELAborts(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	q := mustBegin(t, e, core.Query, 20, core.NoLimit)
	if _, err := e.Read(q, 1); err != nil {
		t.Fatal(err)
	}
	u := mustBegin(t, e, core.Update, 10, 29) // d = 30 > TEL 29
	err := e.Write(u, 1, 130)
	ae := wantAbort(t, err, metrics.AbortExportLimit)
	var le *core.LimitError
	if !asLimitError(ae, &le) || le.Import {
		t.Errorf("want export LimitError, got %v", ae)
	}
}

func TestCase3OELEnforced(t *testing.T) {
	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: 10})
	if _, err := st.Create(1, 100); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(st, Options{})
	q := mustBegin(t, e, core.Query, 20, core.NoLimit)
	if _, err := e.Read(q, 1); err != nil {
		t.Fatal(err)
	}
	u := mustBegin(t, e, core.Update, 10, core.NoLimit) // huge TEL, small OEL
	err := e.Write(u, 1, 130)
	ae := wantAbort(t, err, metrics.AbortExportLimit)
	var le *core.LimitError
	if !asLimitError(ae, &le) || le.Level != core.LevelObject {
		t.Errorf("want object-level export violation, got %v", ae)
	}
}

func TestCase3ExportIsMaxOverReaders(t *testing.T) {
	// §5.2: d is the maximum over the concurrent query readers, not the
	// sum. Two readers with proper values 100; write of 130 exports 30,
	// so TEL 30 admits it even with two readers.
	e := newTestEngine(t, 1, Options{})
	q1 := mustBegin(t, e, core.Query, 20, core.NoLimit)
	q2 := mustBegin(t, e, core.Query, 30, core.NoLimit)
	if _, err := e.Read(q1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(q2, 1); err != nil {
		t.Fatal(err)
	}
	u := mustBegin(t, e, core.Update, 10, 30)
	if err := e.Write(u, 1, 130); err != nil {
		t.Fatalf("max-based export rejected: %v", err)
	}
	for _, txn := range []core.TxnID{u, q1, q2} {
		if err := e.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCase3CommittedReaderExportsNothing(t *testing.T) {
	// Once the query commits its reader entry is withdrawn; a late write
	// under ESR then exports d = 0 and proceeds (the paper tracks only
	// uncommitted query ETs, §5.2).
	e := newTestEngine(t, 1, Options{})
	q := mustBegin(t, e, core.Query, 20, core.NoLimit)
	if _, err := e.Read(q, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
	u := mustBegin(t, e, core.Update, 10, 1) // tiny TEL still admits d=0
	if err := e.Write(u, 1, 130); err != nil {
		t.Fatalf("write after reader committed: %v", err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
}

// --- Figure 5 composite: proper value via write history ---

func TestFigure5ProperValueAcrossManyUpdates(t *testing.T) {
	// Q1 begins; U2, U3, U4 write x and commit; Q1 then reads x. The
	// proper value is the one before Q1 began (written by "U1" — the
	// initial load); the present value is U4's. d = |N4 − P1|.
	e := newTestEngine(t, 1, Options{})
	q := mustBegin(t, e, core.Query, 10, core.NoLimit)
	vals := []core.Value{110, 125, 140}
	for i, v := range vals {
		u := mustBegin(t, e, core.Update, int64(20+10*i), 0)
		if err := e.Write(u, 1, v); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(u); err != nil {
			t.Fatal(err)
		}
	}
	v, err := e.Read(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 140 {
		t.Errorf("present value = %d, want 140", v)
	}
	st, err := e.lookup(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.acc.Total(); got != 40 {
		t.Errorf("imported inconsistency = %d, want |140−100| = 40", got)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
}

// --- Hierarchical bounds through the engine ---

func TestHierarchicalGroupLimitEnforcedByEngine(t *testing.T) {
	schema := core.NewSchema()
	company := schema.MustAddGroup("company", core.RootGroup)
	personal := schema.MustAddGroup("personal", core.RootGroup)
	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for i, grp := range []core.GroupID{company, company, personal} {
		id := core.ObjectID(i + 1)
		if _, err := st.Create(id, 100); err != nil {
			t.Fatal(err)
		}
		if err := schema.Assign(id, grp); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(st, Options{Schema: schema})

	// Updates push every object from 100 to 150 (d = 50 per object).
	u := mustBegin(t, e, core.Update, 20, 0)
	for i := 1; i <= 3; i++ {
		if err := e.Write(u, core.ObjectID(i), 150); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}

	// TIL 200 would admit all three, but LIMIT company 80 only admits
	// one company object (50), not two (100).
	spec := core.BoundSpec{Transaction: 200}.WithGroup("company", 80)
	q, err := e.Begin(core.Query, tsgen.Make(10, 0), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(q, 1); err != nil {
		t.Fatalf("first company read: %v", err)
	}
	_, err = e.Read(q, 2)
	ae := wantAbort(t, err, metrics.AbortImportLimit)
	var le *core.LimitError
	if !asLimitError(ae, &le) || le.Level != core.LevelGroup || le.Node != "company" {
		t.Errorf("want company group violation, got %v", ae)
	}
}

// --- Metrics ---

func TestMetricsCountersTrackOutcomes(t *testing.T) {
	col := &metrics.Collector{}
	e := newTestEngine(t, 2, Options{Collector: col})

	q := mustBegin(t, e, core.Query, 10, 60)
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(q, 1); err != nil { // case 1, inconsistent
		t.Fatal(err)
	}
	if _, err := e.Read(q, 2); err != nil { // consistent
		t.Fatal(err)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}

	q2 := mustBegin(t, e, core.Query, 15, 0) // SR query, will abort late
	if _, err := e.Read(q2, 1); err == nil {
		t.Fatal("expected late-read abort")
	}

	s := col.Snapshot()
	if s.Begins != 3 || s.Commits != 2 {
		t.Errorf("begins=%d commits=%d, want 3,2", s.Begins, s.Commits)
	}
	if s.Aborts() != 1 || s.AbortLateRead != 1 {
		t.Errorf("aborts=%d lateRead=%d, want 1,1", s.Aborts(), s.AbortLateRead)
	}
	if s.ReadsExecuted != 2 || s.WritesExecuted != 1 {
		t.Errorf("reads=%d writes=%d, want 2,1", s.ReadsExecuted, s.WritesExecuted)
	}
	if s.InconsistentReads != 1 || s.InconsistentWrites != 0 {
		t.Errorf("inconsistent reads=%d writes=%d, want 1,0", s.InconsistentReads, s.InconsistentWrites)
	}
	if s.TotalOps() != 3 {
		t.Errorf("TotalOps = %d, want 3", s.TotalOps())
	}
}

func TestMetricsWastedOpsOnAbort(t *testing.T) {
	col := &metrics.Collector{}
	e := newTestEngine(t, 3, Options{Collector: col})
	q := mustBegin(t, e, core.Query, 10, 0)
	if _, err := e.Read(q, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(q, 2); err != nil {
		t.Fatal(err)
	}
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(q, 3); err == nil { // late → abort after 2 good ops
		t.Fatal("expected abort")
	}
	s := col.Snapshot()
	if s.WastedOps != 2 {
		t.Errorf("WastedOps = %d, want 2", s.WastedOps)
	}
}

func TestDirtySourceAbortedCounter(t *testing.T) {
	col := &metrics.Collector{}
	e := newTestEngine(t, 1, Options{Collector: col})
	u := mustBegin(t, e, core.Update, 10, 0)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	q := mustBegin(t, e, core.Query, 20, core.NoLimit)
	if v, err := e.Read(q, 1); err != nil || v != 150 {
		t.Fatalf("dirty read = %d,%v", v, err)
	}
	if err := e.Abort(u); err != nil { // the §5.1 corner: writer aborts
		t.Fatal(err)
	}
	if got := col.Snapshot().DirtySourceAborted; got != 1 {
		t.Errorf("DirtySourceAborted = %d, want 1", got)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
}

// asLimitError unwraps an AbortError's cause into a LimitError.
func asLimitError(ae *AbortError, le **core.LimitError) bool {
	l, ok := ae.Err.(*core.LimitError)
	if !ok {
		return false
	}
	*le = l
	return true
}
