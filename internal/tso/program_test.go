package tso

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

func TestRunProgramQuerySum(t *testing.T) {
	e := newTestEngine(t, 3, Options{})
	p := core.NewQuery(0, 1, 2, 3)
	res, err := e.RunProgram(p, tsgen.Make(10, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 600 {
		t.Errorf("Sum = %d, want 600", res.Sum)
	}
	if len(res.Values) != 3 || res.Values[1] != 200 {
		t.Errorf("Values = %v", res.Values)
	}
	if res.Imported != 0 {
		t.Errorf("Imported = %d, want 0", res.Imported)
	}
}

func TestRunProgramUpdateDeltas(t *testing.T) {
	e := newTestEngine(t, 2, Options{})
	p := core.NewUpdate(0).Read(1).WriteDelta(2, 25)
	res, err := e.RunProgram(p, tsgen.Make(10, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[1] != 225 {
		t.Errorf("delta write result = %d, want 225", res.Values[1])
	}
	q, err := e.RunProgram(core.NewQuery(0, 2), tsgen.Make(20, 0))
	if err != nil {
		t.Fatal(err)
	}
	if q.Sum != 225 {
		t.Errorf("value after delta = %d, want 225", q.Sum)
	}
}

func TestRunProgramReportsImportedInconsistency(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 180); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	res, err := e.RunProgram(core.NewQuery(100, 1), tsgen.Make(10, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Imported != 80 {
		t.Errorf("Imported = %d, want 80", res.Imported)
	}
}

func TestRunProgramAbortPropagates(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	u := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(u, 1, 180); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	_, err := e.RunProgram(core.NewQuery(0, 1), tsgen.Make(10, 0))
	wantAbort(t, err, metrics.AbortLateRead)
}

func TestRunRetryEventuallyCommits(t *testing.T) {
	col := &metrics.Collector{}
	e := newTestEngine(t, 1, Options{Collector: col})
	gen := tsgen.NewGenerator(0, &tsgen.LogicalClock{})

	// Force one abort: pre-commit a write younger than the first attempt.
	u := mustBegin(t, e, core.Update, 1000, 0)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	res, attempts, err := e.RunRetry(core.NewQuery(0, 1), gen, 0)
	if err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Errorf("attempts = %d, want ≥ 2 (first must be late)", attempts)
	}
	if res.Sum != 150 {
		t.Errorf("Sum = %d, want 150", res.Sum)
	}
	if col.Snapshot().Aborts() != int64(attempts-1) {
		t.Errorf("aborts = %d, attempts = %d", col.Snapshot().Aborts(), attempts)
	}
}

func TestRunRetryMaxAttempts(t *testing.T) {
	e := newTestEngine(t, 1, Options{})
	gen := tsgen.NewGenerator(0, &tsgen.LogicalClock{})
	// A query whose read always arrives late: a fresh younger write is
	// committed before every attempt.
	p := core.NewQuery(0, 1)
	blocker := func() {
		u, err := e.Begin(core.Update, gen.Next(), core.SRSpec())
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Write(u, 1, 150); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(u); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave manually: attempt with an old timestamp, then block.
	old := gen.Next()
	blocker()
	if _, err := e.RunProgram(p, old); err == nil {
		t.Fatal("stale attempt should abort")
	}
	_, attempts, err := func() (*Result, int, error) {
		// maxAttempts=1 with a guaranteed-late timestamp source.
		stale := tsgen.NewGenerator(1, stalled{})
		return e.RunRetry(p, stale, 1)
	}()
	if err == nil {
		t.Fatal("RunRetry with stale generator should fail")
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1", attempts)
	}
}

type stalled struct{}

func (stalled) Now() int64 { return 1 } // always older than committed writes

// TestConcurrentTransferConservation runs many concurrent update ETs that
// move value between objects (zero-sum deltas) alongside query ETs, at
// several epsilon settings, and checks that the committed total is
// conserved and that every committed query's result deviates from the
// consistent total by at most its TIL plus the concurrent updates'
// export allowance.
func TestConcurrentTransferConservation(t *testing.T) {
	for _, til := range []core.Distance{0, 1_000, core.NoLimit} {
		til := til
		t.Run("til="+distName(til), func(t *testing.T) {
			const numObjects = 8
			st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
			var initial core.Value
			for i := 0; i < numObjects; i++ {
				if _, err := st.Create(core.ObjectID(i), 1000); err != nil {
					t.Fatal(err)
				}
				initial += 1000
			}
			e := NewEngine(st, Options{})

			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					gen := tsgen.NewGenerator(w, &tsgen.LogicalClock{})
					for i := 0; i < 60; i++ {
						if rng.Intn(2) == 0 {
							a := core.ObjectID(rng.Intn(numObjects))
							b := core.ObjectID((int(a) + 1 + rng.Intn(numObjects-1)) % numObjects)
							amt := core.Value(1 + rng.Intn(50))
							p := core.NewUpdate(til).WriteDelta(a, amt).WriteDelta(b, -amt)
							if _, _, err := e.RunRetry(p, gen, 200); err != nil {
								t.Errorf("update failed: %v", err)
								return
							}
						} else {
							p := core.NewQuery(til)
							for o := 0; o < numObjects; o++ {
								p.Read(core.ObjectID(o))
							}
							res, _, err := e.RunRetry(p, gen, 200)
							if err != nil {
								t.Errorf("query failed: %v", err)
								return
							}
							if til == 0 {
								// SR: the sum must be exactly consistent.
								if res.Sum != initial {
									t.Errorf("SR query sum = %d, want %d", res.Sum, initial)
								}
							}
						}
					}
				}()
			}
			wg.Wait()
			if got := st.TotalValue(); got != initial {
				t.Errorf("committed total = %d, want %d (conservation violated)", got, initial)
			}
		})
	}
}

func distName(d core.Distance) string {
	switch d {
	case 0:
		return "zero"
	case core.NoLimit:
		return "unbounded"
	default:
		return "bounded"
	}
}
