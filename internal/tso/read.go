package tso

import (
	"fmt"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
)

// Read executes a read operation for the given attempt and returns the
// value read. On any rejection the attempt is aborted internally and an
// *AbortError is returned; the client resubmits with a fresh timestamp.
func (e *Engine) Read(txn core.TxnID, obj core.ObjectID) (core.Value, error) {
	start := e.opts.Now()
	st, err := e.lookup(txn)
	if err != nil {
		return 0, err
	}
	o, err := e.store.Get(obj)
	if err != nil {
		return 0, e.abortNow(st, metrics.AbortMissingObject, err)
	}
	var v core.Value
	if st.kind == core.Update {
		v, err = e.readUpdate(st, o)
	} else {
		v, err = e.readQuery(st, o)
	}
	if err == nil {
		e.opts.Collector.ObserveLatency(metrics.LatRead, e.opts.Now()-start)
	}
	return v, err
}

// readUpdate is the consistent read path for update ETs. Their writes
// depend on their reads, so no ESR relaxation applies (§3.2.1): the rules
// are exactly strict timestamp ordering.
func (e *Engine) readUpdate(st *txnState, o *storage.Object) (core.Value, error) {
	o.Lock()
	for {
		owner, dirty := o.Dirty()
		switch {
		case dirty && owner == st.id:
			// Reading our own pending write.
			v := o.Value()
			o.RecordRead(st.ts, false)
			e.trace(Event{Kind: EvRead, Txn: st.id, TxnKind: st.kind, TS: st.ts,
				Object: o.ID(), Value: v, Version: o.WriteTS(), Limit: o.OIL()})
			o.Unlock()
			st.opsExecuted++
			e.opts.Collector.ReadExecuted(false)
			return v, nil

		case dirty && st.ts.After(o.WriteTS()):
			// A younger read must see the older pending write's outcome:
			// wait (strict ordering; younger waits for older, so no
			// deadlock is possible).
			//lint:ignore lockorder waitForResolve releases o's lock before blocking and re-acquires it before returning
			if err := e.waitForResolve(o); err != nil {
				o.Unlock()
				return 0, e.abortNow(st, metrics.AbortWaitTimeout, err)
			}
			continue

		default:
			// Either clean, or dirty with a pending write younger than
			// us — in the latter case the committed version is the one
			// our timestamp orders against, so we never block on a
			// younger writer.
			cts := o.CommittedTS()
			if st.ts.Before(cts) {
				o.Unlock()
				return 0, e.abortNow(st, metrics.AbortLateRead,
					fmt.Errorf("read ts %v older than committed write %v on object %d", st.ts, cts, o.ID()))
			}
			v := o.CommittedValue()
			o.RecordRead(st.ts, false)
			e.trace(Event{Kind: EvRead, Txn: st.id, TxnKind: st.kind, TS: st.ts,
				Object: o.ID(), Value: v, Version: cts, Limit: o.OIL()})
			o.Unlock()
			st.opsExecuted++
			e.opts.Collector.ReadExecuted(false)
			return v, nil
		}
	}
}

// readQuery is the query-ET read path with the ESR relaxations. The
// decision ladder, evaluated with the object locked:
//
//  1. Locate the proper value (last committed write older than the query,
//     §5.1) and compute d = |present − proper|.
//  2. If the object carries an uncommitted write by another attempt and
//     the query is epsilon-enabled, try case 2: read the present (dirty)
//     value if d fits the object limit and the hierarchy (import check).
//  3. Otherwise fall back to the committed version: a query older than
//     the pending write orders before it and reads committed data; a
//     query younger than the pending write waits for its resolution.
//  4. On committed data, a read younger than the committed write is
//     consistent (d = 0); an older read is case 1 and must pass the
//     import check on the committed value.
//
// Every successful read registers the query in the object's reader list
// with its proper value, feeding later export checks (§5.2).
func (e *Engine) readQuery(st *txnState, o *storage.Object) (core.Value, error) {
	o.Lock()
	for {
		proper, exact := o.FindProper(st.ts)
		if !exact && st.esr {
			e.store.NotedProperMiss()
			if e.opts.AbortOnProperMiss {
				o.Unlock()
				return 0, e.abortNow(st, metrics.AbortImportLimit,
					fmt.Errorf("proper value of object %d evicted from write history", o.ID()))
			}
		}

		owner, dirty := o.Dirty()
		if dirty && owner != st.id {
			if st.esr {
				// ESR case 2: view uncommitted data within bounds.
				present := o.Value()
				d := absDist(present, proper)
				if err := st.acc.Admit(o.ID(), d, o.OIL()); err == nil {
					return e.finishQueryRead(st, o, present, proper, d, true), nil
				}
				// The bounds refused the dirty value; fall through to the
				// committed-version path below.
			}
			if st.ts.After(o.WriteTS()) {
				// Younger than the pending write: its outcome determines
				// what we may read — wait (younger waits for older).
				//lint:ignore lockorder waitForResolve releases o's lock before blocking and re-acquires it before returning
				if err := e.waitForResolve(o); err != nil {
					o.Unlock()
					return 0, e.abortNow(st, metrics.AbortWaitTimeout, err)
				}
				continue
			}
			// Older than the pending write: read committed data.
		}

		// Committed-version path (object clean, or pending write ignored
		// because it is younger than us / refused by bounds).
		cv := o.CommittedValue()
		cts := o.CommittedTS()
		if st.ts.After(cts) {
			// Consistent read: the committed version is exactly the
			// proper value.
			return e.finishQueryRead(st, o, cv, cv, 0, false), nil
		}
		// ESR case 1: committed data written after the query began.
		if !st.esr {
			// Zero import limit: textbook TO aborts a late read even if
			// the committed value happens to equal the proper value.
			o.Unlock()
			return 0, e.abortNow(st, metrics.AbortLateRead,
				fmt.Errorf("read ts %v older than committed write %v on object %d", st.ts, cts, o.ID()))
		}
		d := absDist(cv, proper)
		if err := st.acc.Admit(o.ID(), d, o.OIL()); err != nil {
			o.Unlock()
			return 0, e.abortNow(st, metrics.AbortImportLimit, err)
		}
		return e.finishQueryRead(st, o, cv, proper, d, false), nil
	}
}

// finishQueryRead records a successful query read: reader registration,
// read-timestamp bookkeeping, tracing, and metrics. The object lock is
// held on entry and released before returning.
func (e *Engine) finishQueryRead(st *txnState, o *storage.Object, value, proper core.Value, d core.Distance, dirtyRead bool) core.Value {
	o.RecordRead(st.ts, true)
	o.AddReader(st.id, proper)
	st.reads = append(st.reads, o)
	var version = o.CommittedTS()
	if dirtyRead {
		version = o.WriteTS()
	}
	e.trace(Event{Kind: EvRead, Txn: st.id, TxnKind: st.kind, TS: st.ts,
		Object: o.ID(), Value: value, Version: version, Inconsistency: d,
		Limit: o.OIL(), DirtyRead: dirtyRead})
	var dirtyOwner core.TxnID
	if dirtyRead {
		dirtyOwner, _ = o.Dirty()
	}
	o.Unlock()
	if dirtyRead {
		e.noteDirtyRead(dirtyOwner)
	}
	st.opsExecuted++
	e.opts.Collector.ReadExecuted(d > 0 || dirtyRead)
	return value
}
