package tso

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
)

// TestAbortNowAfterFinishDoesNotDoubleRelease is the surgical regression
// test for the abortNow double-release: once an attempt has finished, a
// racing internal abort must only build the error, not re-run
// finishAbort on the stale state.
func TestAbortNowAfterFinishDoesNotDoubleRelease(t *testing.T) {
	col := &metrics.Collector{}
	rec := NewFlightRecorder(64)
	e := newTestEngine(t, 1, Options{Collector: col, Tracer: rec})

	txn := mustBegin(t, e, core.Update, 10, 0)
	if err := e.Write(txn, 1, 500); err != nil {
		t.Fatalf("Write: %v", err)
	}
	st, err := e.lookup(txn)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if err := e.Abort(txn); err != nil {
		t.Fatalf("Abort: %v", err)
	}

	// The stale-state internal abort: must return the error without
	// touching objects or counters again.
	ae := e.abortNow(st, metrics.AbortWaitTimeout, fmt.Errorf("stale"))
	if ae == nil || ae.Reason != metrics.AbortWaitTimeout {
		t.Fatalf("abortNow = %v", ae)
	}

	s := col.Snapshot()
	if s.Aborts() != 1 || s.AbortExplicit != 1 || s.AbortWaitTimeout != 0 {
		t.Errorf("aborts double-counted: total=%d explicit=%d timeout=%d",
			s.Aborts(), s.AbortExplicit, s.AbortWaitTimeout)
	}
	if s.WastedOps != 1 {
		t.Errorf("WastedOps = %d, want 1 (one write, counted once)", s.WastedOps)
	}
	abortEvents := 0
	for _, ev := range rec.Snapshot() {
		if ev.Kind == EvAbort {
			abortEvents++
		}
	}
	if abortEvents != 1 {
		t.Errorf("traced %d abort events, want 1", abortEvents)
	}

	// The object must be clean and writable by a new attempt.
	next := mustBegin(t, e, core.Update, 20, 0)
	if err := e.Write(next, 1, 600); err != nil {
		t.Fatalf("Write after double abort: %v", err)
	}
	if err := e.Commit(next); err != nil {
		t.Fatalf("Commit after double abort: %v", err)
	}
	if n := e.Live(); n != 0 {
		t.Errorf("Live() = %d, want 0", n)
	}
}

// TestConcurrentAbortVsBlockedOperation drives the full race: an
// operation blocked in a strict-ordering wait while the client aborts the
// same attempt. The wait times out into abortNow, whose remove must fail
// and release nothing a second time.
func TestConcurrentAbortVsBlockedOperation(t *testing.T) {
	col := &metrics.Collector{}
	e := newTestEngine(t, 1, Options{Collector: col, WaitTimeout: 50 * time.Millisecond})

	writer := mustBegin(t, e, core.Update, 10, 0)
	if err := e.Write(writer, 1, 500); err != nil {
		t.Fatalf("Write: %v", err)
	}
	reader := mustBegin(t, e, core.Update, 20, 0)
	done := make(chan error, 1)
	go func() {
		_, err := e.Read(reader, 1)
		done <- err
	}()

	// Wait until the read blocks on the pending write, then abort the
	// reading attempt out from under it.
	deadline := time.Now().Add(5 * time.Second)
	for col.Snapshot().Waits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("read never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.Abort(reader); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	err := <-done
	if _, ok := IsAbort(err); !ok {
		t.Fatalf("blocked read returned %v, want AbortError", err)
	}

	s := col.Snapshot()
	if got := s.Aborts(); got != 1 {
		t.Errorf("aborts = %d, want exactly 1 (no double count)", got)
	}
	// The writer's pending write must have survived both abort paths.
	if err := e.Commit(writer); err != nil {
		t.Fatalf("writer commit after race: %v", err)
	}
	if n := e.Live(); n != 0 {
		t.Errorf("Live() = %d, want 0", n)
	}
}

func TestEngineLatencyHistograms(t *testing.T) {
	col := &metrics.Collector{}
	e := newTestEngine(t, 2, Options{Collector: col})

	u := mustBegin(t, e, core.Update, 10, 0)
	if _, err := e.Read(u, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(u, 1, 500); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}

	lat := e.LatencySnapshot()
	if lat[metrics.LatRead].Count != 1 {
		t.Errorf("read latencies = %d, want 1", lat[metrics.LatRead].Count)
	}
	if lat[metrics.LatWrite].Count != 1 {
		t.Errorf("write latencies = %d, want 1", lat[metrics.LatWrite].Count)
	}
	if lat[metrics.LatCommit].Count != 1 {
		t.Errorf("commit latencies = %d, want 1", lat[metrics.LatCommit].Count)
	}
	if ops := lat.Ops(); ops.Count != 2 {
		t.Errorf("ops = %d, want 2", ops.Count)
	}
}

// TestVirtualNowDrivesLatencies checks that a custom Now source (the
// vclock integration point) is what the histograms and trace stamps see.
func TestVirtualNowDrivesLatencies(t *testing.T) {
	var vnow time.Duration
	col := &metrics.Collector{}
	var events []Event
	e := newTestEngine(t, 1, Options{
		Collector: col,
		Tracer:    tracerFunc(func(ev Event) { events = append(events, ev) }),
		Now:       func() time.Duration { vnow += time.Millisecond; return vnow },
	})
	u := mustBegin(t, e, core.Update, 10, 0)
	if _, err := e.Read(u, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	lat := e.LatencySnapshot()
	// Every Now() call advances 1ms, so recorded durations are positive
	// multiples of a millisecond.
	if p := lat[metrics.LatRead].Quantile(1); p < int64(time.Millisecond) {
		t.Errorf("read p100 = %d, want >= 1ms from virtual clock", p)
	}
	for _, ev := range events {
		if ev.At == 0 {
			t.Errorf("event %v not stamped with virtual time", ev.Kind)
		}
	}
}

type tracerFunc func(Event)

func (f tracerFunc) Trace(ev Event) { f(ev) }

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	col := &metrics.Collector{}
	e := newTestEngine(t, 2, Options{Collector: col, Tracer: sink})

	u := mustBegin(t, e, core.Update, 10, 0)
	if _, err := e.Read(u, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(u, 2, 750); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // schema header, begin, read, write, commit
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	// The first line is the versioned schema header.
	var hdr map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header %q is not valid JSON: %v", lines[0], err)
	}
	if got, want := hdr["schema"], "esr-trace/2"; got != want {
		t.Errorf("header schema = %v, want %q", got, want)
	}
	kinds := make([]string, 0, 4)
	for _, line := range lines[1:] {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		kinds = append(kinds, obj["ev"].(string))
	}
	want := []string{"begin", "read", "write", "commit"}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("line %d event = %q, want %q", i, kinds[i], want[i])
		}
	}
	// The write line carries object, value and the object's export limit.
	var wr map[string]any
	if err := json.Unmarshal([]byte(lines[3]), &wr); err != nil {
		t.Fatal(err)
	}
	if wr["obj"].(float64) != 2 || wr["val"].(float64) != 750 {
		t.Errorf("write line = %v", wr)
	}
	if _, ok := wr["lim"]; !ok {
		t.Errorf("write line missing limit field: %v", wr)
	}
}

func TestFlightRecorderRingAndStorm(t *testing.T) {
	rec := NewFlightRecorder(4)
	var storms [][]Event
	rec.OnAbortStorm(3, 100*time.Millisecond, func(evs []Event) {
		storms = append(storms, evs)
	})

	// Fill past capacity: the ring keeps the newest 4.
	for i := 1; i <= 6; i++ {
		rec.Trace(Event{Kind: EvRead, Txn: core.TxnID(i), At: time.Duration(i) * time.Millisecond})
	}
	snap := rec.Snapshot()
	if len(snap) != 4 || snap[0].Txn != 3 || snap[3].Txn != 6 {
		t.Fatalf("ring snapshot = %+v", snap)
	}

	// Two aborts inside the window: below threshold, no storm.
	rec.Trace(Event{Kind: EvAbort, Txn: 7, At: 10 * time.Millisecond})
	rec.Trace(Event{Kind: EvAbort, Txn: 8, At: 20 * time.Millisecond})
	if len(storms) != 0 {
		t.Fatalf("storm fired below threshold")
	}
	// Third abort within the window trips the recorder once.
	rec.Trace(Event{Kind: EvAbort, Txn: 9, At: 30 * time.Millisecond})
	if len(storms) != 1 {
		t.Fatalf("storms = %d, want 1", len(storms))
	}
	if len(storms[0]) != 4 || storms[0][3].Txn != 9 {
		t.Errorf("storm dump = %+v", storms[0])
	}
	// A fourth abort in the same window must not re-fire (rate limit)...
	rec.Trace(Event{Kind: EvAbort, Txn: 10, At: 40 * time.Millisecond})
	if len(storms) != 1 {
		t.Fatalf("storm re-fired within its window")
	}
	// ...but a sustained storm one window later does.
	rec.Trace(Event{Kind: EvAbort, Txn: 11, At: 131 * time.Millisecond})
	rec.Trace(Event{Kind: EvAbort, Txn: 12, At: 132 * time.Millisecond})
	rec.Trace(Event{Kind: EvAbort, Txn: 13, At: 133 * time.Millisecond})
	if len(storms) != 2 {
		t.Fatalf("storms = %d, want 2 after window elapsed", len(storms))
	}

	// WriteJSONL emits one valid line per buffered event.
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("dump lines = %d, want 4", len(lines))
	}
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("dump line %q invalid: %v", line, err)
		}
	}
}

func TestMultiTracerFansOut(t *testing.T) {
	var a, b []Event
	m := MultiTracer{
		tracerFunc(func(ev Event) { a = append(a, ev) }),
		tracerFunc(func(ev Event) { b = append(b, ev) }),
	}
	m.Trace(Event{Kind: EvBegin, Txn: 1})
	if len(a) != 1 || len(b) != 1 {
		t.Errorf("fan out: a=%d b=%d", len(a), len(b))
	}
}
