package tso

import (
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// TraceSchemaVersion is the version of the on-disk JSONL trace schema.
// Version 1 adds a header line (`{"schema":"esr-trace/1",...}`) and the
// per-event "lim" field carrying the applicable inconsistency limit —
// the transaction's root bound on begin/commit events, the object's
// OIL/OEL on read/write events — so an offline checker (internal/
// esrcheck, cmd/esr-check) can certify a trace against the bounds
// without access to the live store. Version 2 adds the "replica" flag
// on read events: the read was served by a bounded-stale follower and
// its "inc" is the replication-lag distance charged against the TIL.
// The schema is append-only: new versions may add fields but never
// change the meaning of existing ones, so a version-1 reader that
// ignores unknown fields still decodes version-2 traces.
const TraceSchemaVersion = 2

// TraceSchemaName is the schema identifier written in the header line.
const TraceSchemaName = "esr-trace"

// EventKind classifies a trace event.
type EventKind uint8

const (
	// EvBegin is emitted when a transaction attempt starts.
	EvBegin EventKind = iota
	// EvRead is emitted after a successful read.
	EvRead
	// EvWrite is emitted after a successful (pending) write.
	EvWrite
	// EvCommit is emitted when an attempt commits.
	EvCommit
	// EvAbort is emitted when an attempt aborts.
	EvAbort
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvRead:
		return "read"
	case EvWrite:
		return "write"
	case EvCommit:
		return "commit"
	case EvAbort:
		return "abort"
	default:
		return "event"
	}
}

// ParseEventKind is the inverse of String, for trace decoders. The
// second result reports whether the name was recognized.
func ParseEventKind(s string) (EventKind, bool) {
	switch s {
	case "begin":
		return EvBegin, true
	case "read":
		return EvRead, true
	case "write":
		return EvWrite, true
	case "commit":
		return EvCommit, true
	case "abort":
		return EvAbort, true
	default:
		return 0, false
	}
}

// Event is one step of an execution history, emitted by the engine when a
// Tracer is installed. The recorder in internal/history turns event
// streams into conflict graphs so tests can verify that zero-epsilon
// executions are conflict serializable and that epsilon executions stay
// within their bounds.
type Event struct {
	Kind    EventKind
	Txn     core.TxnID
	TxnKind core.Kind
	// At is the event time on the engine's timeline (Options.Now):
	// elapsed wall time by default, virtual time under the vclock
	// harness. Stamped by the engine when the event is emitted.
	At time.Duration
	// TS is the attempt's timestamp.
	TS tsgen.Timestamp
	// Object, for reads and writes.
	Object core.ObjectID
	// Value is the value read or written.
	Value core.Value
	// Version identifies the object version involved: for reads, the
	// timestamp of the write that produced the value read; for writes,
	// the attempt's own timestamp. Committed versions of one object have
	// strictly increasing timestamps under timestamp ordering, so the
	// version timestamp doubles as the version order.
	Version tsgen.Timestamp
	// Inconsistency is the distance charged for the operation (zero for
	// consistent operations). On commit events it carries the attempt's
	// final accumulated inconsistency (imported for queries, exported for
	// updates), so a checker can cross-check the per-op charges against
	// the committed total.
	Inconsistency core.Distance
	// Limit is the inconsistency bound that applied: the transaction's
	// root limit (TIL or TEL) on begin and commit events, the object's
	// import limit (OIL) on reads, and its export limit (OEL) on writes.
	// Engines that ignore bounds (the serializable baselines) emit zero.
	Limit core.Distance
	// DirtyRead marks a read of uncommitted data (ESR case 2).
	DirtyRead bool
	// Replica marks a read served by a bounded-stale follower; its
	// Inconsistency is the replication-lag distance charged against the
	// transaction's import limit.
	Replica bool
}

// Tracer observes engine events. Read/write events are emitted while the
// object's lock is held, so per-object event order matches execution
// order; implementations must therefore be fast and must not call back
// into the engine.
type Tracer interface {
	Trace(Event)
}
