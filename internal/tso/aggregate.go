package tso

import (
	"fmt"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/tsgen"
)

// AggregateQuery implements the §5.3.2 extension the paper describes but
// did not build: queries computing aggregates other than sum, with
// objects readable any number of times. Instead of charging the
// transaction import limit incrementally at each read — impossible when
// the result's sensitivity to each read is unknown until the aggregate
// is computed — every read is admitted under the object-level bound
// only, the [min, max] envelope of the values seen per object is
// tracked, and the decision to accept or reject is made once at
// aggregate time: the result inconsistency derived from the envelopes
// must fit the TIL.
//
// This is "a viable solution... as predeclaration of objects to be
// accessed or number of operations in a query is not practicable" (§5.3.2).
type AggregateQuery struct {
	e       *Engine
	txn     core.TxnID
	til     core.Distance
	tracker *core.AggregateTracker
	done    bool
}

// BeginAggregate starts an aggregate query ET. Reads are checked against
// the object import limits (the object criterion "is going to remain
// unchanged", §5.3.2); the transaction import limit til is enforced by
// Result.
func (e *Engine) BeginAggregate(ts tsgen.Timestamp, til core.Distance) (*AggregateQuery, error) {
	if til < 0 {
		return nil, fmt.Errorf("tso: negative aggregate import limit %d", til)
	}
	// The transaction level of the incremental accumulator is unbounded;
	// the object level still applies per read. A zero TIL must still
	// disable the ESR relaxations (SR semantics), which Begin infers
	// from the spec's transaction limit.
	spec := core.UnboundedSpec()
	if til == 0 {
		spec = core.SRSpec()
	}
	txn, err := e.Begin(core.Query, ts, spec)
	if err != nil {
		return nil, err
	}
	return &AggregateQuery{
		e:       e,
		txn:     txn,
		til:     til,
		tracker: core.NewAggregateTracker(),
	}, nil
}

// Read reads an object — possibly repeatedly; each observation widens
// the object's [min, max] envelope, capturing the worst case where two
// reads see opposite extremes (§3.2.1).
func (q *AggregateQuery) Read(obj core.ObjectID) (core.Value, error) {
	if q.done {
		return 0, ErrUnknownTxn
	}
	v, err := q.e.Read(q.txn, obj)
	if err != nil {
		q.done = true
		return 0, err
	}
	q.tracker.Observe(obj, v)
	return v, nil
}

// Result computes the aggregate and makes the §5.3.2 admission decision:
// if the result inconsistency — half the spread between the aggregate of
// the per-object minima and maxima — exceeds the TIL, the query is
// aborted and an *AbortError returned; otherwise the query commits and
// the aggregate value is returned along with its inconsistency.
func (q *AggregateQuery) Result(kind core.AggKind) (core.Value, core.Distance, error) {
	if q.done {
		return 0, 0, ErrUnknownTxn
	}
	q.done = true
	value, inc, err := q.tracker.Result(kind)
	if err != nil {
		_ = q.e.Abort(q.txn)
		return 0, 0, err
	}
	if inc > q.til {
		cause := &core.LimitError{
			Level:    core.LevelTransaction,
			Distance: inc,
			Limit:    q.til,
			Import:   true,
		}
		// The engine-side state still exists; route through the normal
		// internal-abort path so metrics and cleanup match other aborts.
		st, lookupErr := q.e.lookup(q.txn)
		if lookupErr != nil {
			return 0, 0, lookupErr
		}
		return 0, 0, q.e.abortNow(st, metrics.AbortImportLimit, cause)
	}
	if err := q.e.Commit(q.txn); err != nil {
		return 0, 0, err
	}
	return value, inc, nil
}

// Abort abandons the aggregate query.
func (q *AggregateQuery) Abort() error {
	if q.done {
		return nil
	}
	q.done = true
	return q.e.Abort(q.txn)
}
