package replica

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/epsilondb/epsilondb/internal/wal"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// FeedOptions configures the follower's replication client.
type FeedOptions struct {
	// Dial opens a connection to the primary. Required; fault-injection
	// harnesses interpose faultnet wrappers here.
	Dial func() (net.Conn, error)
	// Logf receives connection lifecycle messages; nil drops them.
	Logf func(format string, args ...any)
	// Backoff is the first reconnect delay (default 10ms); MaxBackoff
	// caps the doubling (default 1s).
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// Feed is a running replication client: it dials the primary, subscribes
// from the follower's applied frontier, ingests snapshot and record
// frames, and reconnects with backoff on any failure. Resumption is by
// LSN, so drops and resets lose no records.
type Feed struct {
	f    *Follower
	opts FeedOptions

	mu   sync.Mutex
	conn net.Conn
	stop bool

	quit chan struct{}
	done chan struct{}
}

// StartFeed launches the replication client for f.
func StartFeed(f *Follower, opts FeedOptions) (*Feed, error) {
	if opts.Dial == nil {
		return nil, errors.New("replica: FeedOptions.Dial is required")
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 10 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = time.Second
	}
	fd := &Feed{f: f, opts: opts, quit: make(chan struct{}), done: make(chan struct{})}
	go fd.run()
	return fd, nil
}

// Stop tears the feed down: the current connection is closed, the retry
// loop exits, and Stop returns once the feed goroutine is gone.
func (fd *Feed) Stop() {
	fd.mu.Lock()
	if !fd.stop {
		fd.stop = true
		close(fd.quit)
	}
	if fd.conn != nil {
		fd.conn.Close()
	}
	fd.mu.Unlock()
	<-fd.done
}

// stopped reports whether Stop was requested.
func (fd *Feed) stopped() bool {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.stop
}

// setConn tracks the live connection so Stop can sever it; it refuses
// (and closes) new connections after Stop.
func (fd *Feed) setConn(c net.Conn) bool {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if fd.stop {
		if c != nil {
			c.Close()
		}
		return false
	}
	fd.conn = c
	return true
}

// run is the reconnect loop.
func (fd *Feed) run() {
	defer close(fd.done)
	backoff := fd.opts.Backoff
	for !fd.stopped() {
		nc, err := fd.opts.Dial()
		if err != nil {
			fd.opts.Logf("replica: feed dial: %v", err)
			if !fd.sleep(backoff) {
				return
			}
			backoff = fd.nextBackoff(backoff)
			continue
		}
		if !fd.setConn(nc) {
			return
		}
		err = fd.stream(nc)
		fd.setConn(nil)
		nc.Close()
		if fd.stopped() {
			return
		}
		fd.opts.Logf("replica: feed stream from lsn %d: %v", fd.f.AppliedLSN(), err)
		if !fd.sleep(backoff) {
			return
		}
		backoff = fd.nextBackoff(backoff)
	}
}

// nextBackoff doubles the delay up to the cap.
func (fd *Feed) nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > fd.opts.MaxBackoff {
		d = fd.opts.MaxBackoff
	}
	return d
}

// sleep waits d, returning false when Stop was requested meanwhile.
func (fd *Feed) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-fd.quit:
		return false
	}
}

// stream runs one subscription on an established connection: hello with
// the resume LSN, then snapshot chunks and record batches until the
// connection dies. A successful ingest never loses ground — on any error
// the caller reconnects and resumes from the follower's frontier.
func (fd *Feed) stream(nc net.Conn) error {
	conn := wire.NewConn(nc)
	if err := conn.WriteMessage(&wire.ReplicaHello{AfterLSN: fd.f.AppliedLSN()}); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	var image []byte
	var imageLSN uint64
	for {
		msg, err := conn.ReadMessage()
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case *wire.ReplicaSnap:
			// Chunked bootstrap image; the last chunk carries Done.
			if image == nil {
				imageLSN = m.LSN
			} else if m.LSN != imageLSN {
				wire.Recycle(msg)
				return fmt.Errorf("snapshot chunk lsn changed %d -> %d", imageLSN, m.LSN)
			}
			image = append(image, m.Chunk...)
			done := m.Done
			wire.Recycle(msg)
			if done {
				st, lsn, derr := wal.DecodeSnapshotImage(image)
				if derr != nil {
					return fmt.Errorf("snapshot image: %w", derr)
				}
				if berr := fd.f.Bootstrap(st, lsn); berr != nil {
					return berr
				}
				image = nil
			}
		case *wire.ReplicaRecords:
			err := fd.f.Ingest(m.Frames, m.HeadLSN)
			wire.Recycle(msg)
			if err != nil {
				return err
			}
		case *wire.Error:
			e := *m
			wire.Recycle(msg)
			return fmt.Errorf("feed rejected: %s", e.Message)
		default:
			mt := msg.MsgType()
			wire.Recycle(msg)
			return fmt.Errorf("unexpected feed frame %v", mt)
		}
	}
}
