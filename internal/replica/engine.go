package replica

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/txnshard"
)

// RedirectError reports a request the replica must not serve — an update
// ET, or a zero-epsilon query that admits no staleness at all. The
// server maps it to wire.CodeRedirect and the client router retries the
// transaction against the primary.
type RedirectError struct {
	// Reason says what about the request requires the primary.
	Reason string
}

// Error implements error.
func (e *RedirectError) Error() string {
	return fmt.Sprintf("replica: redirect to primary: %s", e.Reason)
}

// ReplicaRedirect marks the error for the server's wire mapping.
func (e *RedirectError) ReplicaRedirect() bool { return true }

// Options configures a replica engine.
type Options struct {
	// Schema is the hierarchical grouping for the import accumulator;
	// nil means the flat two-level schema.
	Schema *core.Schema
	// Collector receives performance counters; nil drops them.
	Collector *metrics.Collector
	// Tracer receives execution events (reads flagged Replica); nil
	// disables tracing.
	Tracer tso.Tracer
	// Now drives latency histograms and trace timestamps; nil means the
	// wall clock since engine creation.
	Now func() time.Duration
	// Index is this replica's ordinal among the primary's followers. It
	// namespaces transaction ids ((Index+1)<<32 | seq) so merged
	// primary+replica traces never collide on a txn id.
	Index int
}

// Engine serves query ETs from a Follower, charging replication lag
// against the query's import hierarchy. It implements server.Backend;
// everything an update would need returns a RedirectError.
type Engine struct {
	f    *Follower
	opts Options
	base uint64

	nextTxn     atomic.Uint64
	txns        *txnshard.Map[*txnState]
	readsServed atomic.Int64
	imported    atomic.Int64
}

// txnState is one live query attempt on the replica.
type txnState struct {
	id          core.TxnID
	ts          tsgen.Timestamp
	rootLimit   core.Distance
	acc         core.Accumulator
	opsExecuted int64
}

// NewEngine returns a query engine over the follower.
func NewEngine(f *Follower, opts Options) *Engine {
	if opts.Now == nil {
		start := time.Now()
		opts.Now = func() time.Duration { return time.Since(start) }
	}
	return &Engine{
		f:    f,
		opts: opts,
		base: uint64(opts.Index+1) << 32,
		txns: txnshard.New[*txnState](),
	}
}

// Follower returns the engine's data plane.
func (e *Engine) Follower() *Follower { return e.f }

// ReadsServed returns the number of reads this replica has answered.
func (e *Engine) ReadsServed() int64 { return e.readsServed.Load() }

// ImportedTotal returns the lag inconsistency committed queries imported
// through this replica. It is tracked on the engine, not the follower's
// store: the store's accumulated totals mirror the primary's.
func (e *Engine) ImportedTotal() core.Distance {
	return core.Distance(e.imported.Load())
}

// Begin starts a query attempt. Update ETs and zero-epsilon queries are
// redirected: updates mutate and TIL-0 queries tolerate no staleness, so
// both belong on the primary.
func (e *Engine) Begin(kind core.Kind, ts tsgen.Timestamp, spec core.BoundSpec) (core.TxnID, error) {
	if kind != core.Query {
		return 0, &RedirectError{Reason: "update transactions run on the primary"}
	}
	if spec.Transaction == 0 {
		return 0, &RedirectError{Reason: "zero-epsilon queries tolerate no replication lag"}
	}
	if ts.IsNone() {
		return 0, fmt.Errorf("replica: transaction timestamp must be non-zero")
	}
	st := &txnState{
		id:        core.TxnID(e.base + e.nextTxn.Add(1)),
		ts:        ts,
		rootLimit: spec.Transaction,
	}
	if err := st.acc.Init(e.opts.Schema, spec, true); err != nil {
		return 0, err
	}
	e.txns.Store(st.id, st)
	e.opts.Collector.Begin()
	e.trace(tso.Event{Kind: tso.EvBegin, Txn: st.id, TxnKind: core.Query, TS: ts, Limit: spec.Transaction})
	return st.id, nil
}

// Read serves one read from the follower, charging its staleness against
// the query's import hierarchy. A charge the bounds cannot absorb aborts
// the attempt, exactly like a primary import-limit violation.
func (e *Engine) Read(txn core.TxnID, obj core.ObjectID) (core.Value, error) {
	start := e.opts.Now()
	st, ok := e.txns.Load(txn)
	if !ok {
		return 0, tso.ErrUnknownTxn
	}
	v, err := e.f.ReadView(obj, st.ts)
	if err != nil {
		return 0, e.abortNow(st, metrics.AbortMissingObject, err)
	}
	if v.Charge > 0 {
		if err := st.acc.Admit(obj, v.Charge, v.OIL); err != nil {
			return 0, e.abortNow(st, metrics.AbortImportLimit, err)
		}
	}
	st.opsExecuted++
	e.readsServed.Add(1)
	e.opts.Collector.ReadExecuted(v.Charge > 0)
	e.opts.Collector.ObserveLatency(metrics.LatRead, e.opts.Now()-start)
	e.trace(tso.Event{Kind: tso.EvRead, Txn: st.id, TxnKind: core.Query, TS: st.ts,
		Object: obj, Value: v.Value, Version: v.TS,
		Inconsistency: v.Charge, Limit: v.OIL, Replica: true})
	return v.Value, nil
}

// Write is never served by a replica.
func (e *Engine) Write(txn core.TxnID, obj core.ObjectID, v core.Value) error {
	return &RedirectError{Reason: "writes run on the primary"}
}

// WriteDelta is never served by a replica.
func (e *Engine) WriteDelta(txn core.TxnID, obj core.ObjectID, delta core.Value) (core.Value, error) {
	return 0, &RedirectError{Reason: "writes run on the primary"}
}

// Commit finishes a query attempt. The replica publishes nothing; the
// commit just seals the import accounting for the trace.
func (e *Engine) Commit(txn core.TxnID) error {
	start := e.opts.Now()
	st, ok := e.txns.Delete(txn)
	if !ok {
		return tso.ErrUnknownTxn
	}
	total := st.acc.Total()
	e.imported.Add(int64(total))
	e.opts.Collector.Commit()
	e.opts.Collector.ObserveLatency(metrics.LatCommit, e.opts.Now()-start)
	e.trace(tso.Event{Kind: tso.EvCommit, Txn: st.id, TxnKind: core.Query, TS: st.ts,
		Inconsistency: total, Limit: st.rootLimit})
	return nil
}

// Abort abandons a query attempt at the client's request.
func (e *Engine) Abort(txn core.TxnID) error {
	st, ok := e.txns.Delete(txn)
	if !ok {
		return tso.ErrUnknownTxn
	}
	e.finishAbort(st, metrics.AbortExplicit)
	return nil
}

// abortNow aborts the attempt internally and builds the abort error the
// failed operation returns, mirroring the primary engine's contract.
func (e *Engine) abortNow(st *txnState, reason metrics.AbortReason, cause error) error {
	if removed, ok := e.txns.Delete(st.id); ok {
		e.finishAbort(removed, reason)
	}
	return &tso.AbortError{Txn: st.id, Reason: reason, Err: cause}
}

// finishAbort records the abort; replicas hold no object footprint.
func (e *Engine) finishAbort(st *txnState, reason metrics.AbortReason) {
	e.opts.Collector.Abort(reason, st.opsExecuted)
	e.trace(tso.Event{Kind: tso.EvAbort, Txn: st.id, TxnKind: core.Query, TS: st.ts})
}

// MetricsSnapshot reads the engine's collector.
func (e *Engine) MetricsSnapshot() metrics.Snapshot { return e.opts.Collector.Snapshot() }

// LatencySnapshot reads the engine's latency histograms.
func (e *Engine) LatencySnapshot() metrics.LatencySet {
	return e.opts.Collector.LatencySnapshot()
}

// Live returns the number of live query attempts.
func (e *Engine) Live() int { return e.txns.Len() }

// Store returns the follower's current store.
func (e *Engine) Store() *storage.Store { return e.f.Store() }

// trace emits an event if a tracer is installed.
func (e *Engine) trace(ev tso.Event) {
	if e.opts.Tracer != nil {
		ev.At = e.opts.Now()
		e.opts.Tracer.Trace(ev)
	}
}
