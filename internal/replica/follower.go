// Package replica implements epsilon-aware read replicas: a follower
// store fed by the primary's WAL subscription stream (internal/wal.Tail
// over the wire protocol's replication frames), and a query-only engine
// that serves reads from the bounded-stale follower while charging the
// replication lag against the transaction's import limit.
//
// The correctness argument is the paper's own: a replica read is just an
// ESR case-1 relaxation — the query views committed data that is not its
// proper version — so the divergence between the value served and the
// freshest value the follower knows the primary has committed is metered
// and admitted against the OIL/TIL hierarchy exactly like a late read on
// the primary. Queries with TIL 0 admit no inconsistency and are
// rejected with a typed redirect so the router falls through to the
// primary; update ETs never run here at all.
package replica

import (
	"fmt"
	"sync"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/wal"
)

// Follower is the replica's data plane: a store rebuilt from the
// primary's WAL, the LSN frontier it has applied, and the buffer of
// records received but not yet applied (normally empty; the Hold/Release
// hooks let tests freeze application to create controlled lag).
type Follower struct {
	mu  sync.Mutex
	cfg storage.Config

	store   *storage.Store
	applied uint64 // LSN of the last record applied to store
	head    uint64 // primary's log head, from the last feed batch

	// pending holds received-but-unapplied records in LSN order. It is
	// only nonempty while held: the feed normally applies on ingest.
	pending []wal.Record
	held    bool

	// batches counts feed deliveries, for observability and tests.
	batches int64
}

// NewFollower returns an empty follower whose store uses cfg (history
// depth must match the primary's for proper-value lookups to agree).
func NewFollower(cfg storage.Config) *Follower {
	return &Follower{cfg: cfg, store: storage.NewStore(cfg)}
}

// Store returns the follower's current store. The pointer changes when a
// snapshot bootstrap replaces the store wholesale; callers that need a
// consistent view use the Follower's methods instead of caching it.
func (f *Follower) Store() *storage.Store {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.store
}

// AppliedLSN returns the LSN of the last applied record.
func (f *Follower) AppliedLSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// HeadLSN returns the primary's log head as of the last feed batch.
func (f *Follower) HeadLSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.head
}

// Lag returns how many committed records the follower has yet to apply,
// measured against the primary head it last heard of.
func (f *Follower) Lag() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.head <= f.applied {
		return 0
	}
	return f.head - f.applied
}

// Batches returns the number of feed deliveries ingested.
func (f *Follower) Batches() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.batches
}

// Hold freezes application: subsequently ingested records buffer as
// pending instead of applying. Test hook for constructing exact lag.
func (f *Follower) Hold() {
	f.mu.Lock()
	f.held = true
	f.mu.Unlock()
}

// Release applies up to n buffered records (all of them when n < 0) and,
// when the buffer drains completely, resumes normal apply-on-ingest.
func (f *Follower) Release(n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := 0; len(f.pending) > 0 && (n < 0 || i < n); i++ {
		if err := f.applyLocked(f.pending[0]); err != nil {
			return err
		}
		f.pending = f.pending[1:]
	}
	if len(f.pending) == 0 {
		f.held = false
	}
	return nil
}

// Bootstrap replaces the follower's state with a primary snapshot image
// captured at lsn: a fresh store is rebuilt from the state and the
// applied frontier jumps to lsn. Any buffered records are discarded —
// the snapshot already covers them.
func (f *Follower) Bootstrap(st *storage.StoreState, lsn uint64) error {
	store := storage.NewStore(f.cfg)
	for _, os := range st.Objects {
		if err := store.RestoreObject(os); err != nil {
			return fmt.Errorf("replica: bootstrap: %w", err)
		}
	}
	store.RestoreCommittedInconsistency(st.Imported, st.Exported)
	f.mu.Lock()
	f.store = store
	f.applied = lsn
	if lsn > f.head {
		f.head = lsn
	}
	f.pending = nil
	f.mu.Unlock()
	return nil
}

// Ingest decodes one feed batch (raw WAL frames) and applies its records
// in LSN order, buffering instead when held. head is the primary's log
// head at delivery time. Records at or below the applied frontier are
// duplicates from a reconnect overlap and are skipped; a gap above the
// frontier is a protocol error — the caller should drop the connection
// and resubscribe.
func (f *Follower) Ingest(frames []byte, head uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.batches++
	if head > f.head {
		f.head = head
	}
	next := f.frontierLocked()
	err := wal.DecodeFrames(frames, func(rec Record) error {
		if rec.LSN <= next {
			return nil // reconnect overlap
		}
		if rec.LSN != next+1 {
			return fmt.Errorf("replica: feed gap: have %d, got %d", next, rec.LSN)
		}
		next = rec.LSN
		if f.held {
			f.pending = append(f.pending, rec)
			return nil
		}
		return f.applyLocked(rec)
	})
	if err != nil {
		return err
	}
	return nil
}

// Record aliases wal.Record for the Ingest callback signature.
type Record = wal.Record

// frontierLocked is the highest LSN received (applied or buffered).
func (f *Follower) frontierLocked() uint64 {
	if n := len(f.pending); n > 0 {
		return f.pending[n-1].LSN
	}
	return f.applied
}

// applyLocked applies one record to the store and advances the frontier.
func (f *Follower) applyLocked(rec wal.Record) error {
	if err := wal.ApplyRecord(f.store, rec); err != nil {
		return fmt.Errorf("replica: apply lsn %d: %w", rec.LSN, err)
	}
	f.applied = rec.LSN
	if rec.LSN > f.head {
		f.head = rec.LSN
	}
	return nil
}

// View is the follower's answer to one query read: the committed value
// served, its version timestamp, the object's import limit, and the lag
// distance the reader must charge against its import hierarchy.
type View struct {
	Value core.Value
	TS    tsgen.Timestamp
	OIL   core.Distance
	// Charge is the metered staleness: zero when the served value is the
	// query's proper version as far as the follower can prove.
	Charge core.Distance
}

// ReadView serves one query read from the follower. The staleness charge
// is computed against the freshest evidence of divergence the follower
// holds: a buffered (received-but-unapplied) write of the object with a
// timestamp at or before the query's shows exactly what the primary
// committed that this store has not applied, so the charge is the
// distance to that value. With nothing buffered, a query older than the
// last applied write is charged like a primary case-1 late read — the
// distance to its proper version in the local history.
func (f *Follower) ReadView(obj core.ObjectID, queryTS tsgen.Timestamp) (View, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	o, err := f.store.Get(obj)
	if err != nil {
		return View{}, err
	}
	o.Lock()
	// The follower's store only ever sees committed applies, so the
	// present value is the committed value and never dirty.
	v := View{Value: o.CommittedValue(), TS: o.CommittedTS(), OIL: o.OIL()}
	switch {
	case queryTS.After(v.TS):
		if pv, ok := f.pendingWriteLocked(obj, queryTS); ok {
			v.Charge = absDist(v.Value, pv)
		}
	case queryTS == v.TS:
		// The last applied write is the query's own proper version.
	default:
		proper, _ := o.FindProper(queryTS)
		v.Charge = absDist(v.Value, proper)
	}
	o.Unlock()
	return v, nil
}

// pendingWriteLocked returns the value of the latest buffered write of
// obj with a timestamp at or before queryTS, if any.
func (f *Follower) pendingWriteLocked(obj core.ObjectID, queryTS tsgen.Timestamp) (core.Value, bool) {
	var val core.Value
	var ts tsgen.Timestamp
	found := false
	for _, rec := range f.pending {
		if rec.Type != wal.RecordCommit {
			continue
		}
		for _, w := range rec.Commit.Writes {
			if w.Object != obj || w.TS.After(queryTS) {
				continue
			}
			if !found || w.TS.After(ts) {
				val, ts, found = w.Value, w.TS, true
			}
		}
	}
	return val, found
}

// absDist is the Absolute metric: |u − v| as a distance.
func absDist(u, v core.Value) core.Distance {
	if u >= v {
		return u - v
	}
	return v - u
}
