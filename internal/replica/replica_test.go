package replica

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/esrcheck"
	"github.com/epsilondb/epsilondb/internal/history"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/wal"
)

const testHistoryDepth = 8

// primary bundles a durable primary engine with its WAL, plus a manual
// timestamp counter so tests control the timeline exactly.
type primary struct {
	store *storage.Store
	log   *wal.Log
	eng   *tso.Engine
	rec   *history.Recorder
	ticks int64
}

func newPrimary(t *testing.T) *primary {
	t.Helper()
	store := storage.NewStore(storage.Config{HistoryDepth: testHistoryDepth})
	l, err := wal.Open(wal.NewMemFS(), store, wal.Options{SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	store.SetDurability(l)
	rec := history.NewRecorder()
	eng := tso.NewEngine(store, tso.Options{Durability: l, Tracer: rec})
	p := &primary{store: store, log: l, eng: eng, rec: rec}
	t.Cleanup(func() { l.Close() })
	return p
}

func (p *primary) ts() tsgen.Timestamp {
	p.ticks++
	return tsgen.Make(p.ticks, 0)
}

func (p *primary) create(t *testing.T, id core.ObjectID, v core.Value) {
	t.Helper()
	if _, err := p.store.CreateWithLimits(id, v, core.NoLimit, core.NoLimit); err != nil {
		t.Fatalf("create %d: %v", id, err)
	}
}

// update commits one single-write update ET on the primary.
func (p *primary) update(t *testing.T, obj core.ObjectID, v core.Value) tsgen.Timestamp {
	t.Helper()
	ts := p.ts()
	txn, err := p.eng.Begin(core.Update, ts, core.UnboundedSpec())
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := p.eng.Write(txn, obj, v); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := p.eng.Commit(txn); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return ts
}

// follow subscribes a tail at the follower's frontier and returns a
// drain function that pumps every record up to the primary head into the
// follower (Ingest buffers them while the follower is held).
func (p *primary) follow(t *testing.T, f *Follower) func() {
	t.Helper()
	tail, image, err := p.log.SubscribeFrom(f.AppliedLSN())
	if err != nil {
		t.Fatalf("SubscribeFrom: %v", err)
	}
	t.Cleanup(tail.Close)
	if image != nil {
		st, lsn, derr := wal.DecodeSnapshotImage(image)
		if derr != nil {
			t.Fatalf("DecodeSnapshotImage: %v", derr)
		}
		if berr := f.Bootstrap(st, lsn); berr != nil {
			t.Fatalf("Bootstrap: %v", berr)
		}
	}
	return func() {
		for f.frontier() < p.log.Head() {
			frames, head, nerr := tail.Next()
			if nerr != nil {
				t.Fatalf("tail.Next: %v", nerr)
			}
			if ierr := f.Ingest(frames, head); ierr != nil {
				t.Fatalf("Ingest: %v", ierr)
			}
		}
	}
}

// frontier exposes the received LSN frontier for test pumps.
func (f *Follower) frontier() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frontierLocked()
}

func TestEngineServesLaggedReadWithinBounds(t *testing.T) {
	p := newPrimary(t)
	p.create(t, 1, 100)
	p.create(t, 2, 200)

	f := NewFollower(storage.Config{HistoryDepth: testHistoryDepth})
	drain := p.follow(t, f)
	rec := history.NewRecorder()
	eng := NewEngine(f, Options{Collector: &metrics.Collector{}, Tracer: rec})

	p.update(t, 1, 130)
	drain()
	if got := f.Lag(); got != 0 {
		t.Fatalf("lag after drain = %d", got)
	}

	// Freeze the follower, then commit a newer write it receives but
	// cannot apply: the replica now serves 130 while it knows the
	// primary committed 160.
	f.Hold()
	wts := p.update(t, 1, 160)
	drain()

	qts := p.ts()
	txn, err := eng.Begin(core.Query, qts, core.BoundSpec{Transaction: 100})
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	v, err := eng.Read(txn, 1)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v != 130 {
		t.Fatalf("read %d, want the replica-committed 130", v)
	}
	if err := eng.Commit(txn); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := eng.ImportedTotal(); got != 30 {
		t.Errorf("imported total = %d, want the lag distance 30", got)
	}
	if got := eng.ReadsServed(); got != 1 {
		t.Errorf("reads served = %d", got)
	}

	var read *tso.Event
	for _, ev := range rec.Events() {
		if ev.Kind == tso.EvRead {
			e := ev
			read = &e
		}
	}
	if read == nil || !read.Replica || read.Inconsistency != 30 {
		t.Fatalf("replica read event = %+v, want Replica=true Inconsistency=30", read)
	}
	if read.Txn < core.TxnID(1<<32) {
		t.Errorf("replica txn id %d not namespaced above 1<<32", read.Txn)
	}

	// Releasing the buffered write catches the follower up; a fresh
	// query now reads 160 with no charge.
	if err := f.Release(-1); err != nil {
		t.Fatalf("Release: %v", err)
	}
	txn2, err := eng.Begin(core.Query, p.ts(), core.BoundSpec{Transaction: 100})
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	v2, err := eng.Read(txn2, 1)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v2 != 160 {
		t.Fatalf("post-release read %d, want 160 (committed at %v)", v2, wts)
	}
	if err := eng.Commit(txn2); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := eng.ImportedTotal(); got != 30 {
		t.Errorf("caught-up read charged: imported total = %d, want 30", got)
	}
	if eng.Live() != 0 {
		t.Errorf("live attempts leaked: %d", eng.Live())
	}
}

func TestEngineRedirectsUpdatesZeroEpsilonAndWrites(t *testing.T) {
	f := NewFollower(storage.Config{})
	eng := NewEngine(f, Options{})

	wantRedirect := func(err error, what string) {
		t.Helper()
		var re *RedirectError
		if !errors.As(err, &re) || !re.ReplicaRedirect() {
			t.Fatalf("%s: err = %v, want RedirectError", what, err)
		}
	}
	_, err := eng.Begin(core.Update, tsgen.Make(1, 0), core.UnboundedSpec())
	wantRedirect(err, "update Begin")
	_, err = eng.Begin(core.Query, tsgen.Make(2, 0), core.SRSpec())
	wantRedirect(err, "zero-epsilon Begin")

	txn, err := eng.Begin(core.Query, tsgen.Make(3, 0), core.BoundSpec{Transaction: 10})
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	wantRedirect(eng.Write(txn, 1, 5), "Write")
	_, err = eng.WriteDelta(txn, 1, 5)
	wantRedirect(err, "WriteDelta")
	if err := eng.Abort(txn); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if eng.Live() != 0 {
		t.Errorf("live attempts leaked: %d", eng.Live())
	}
}

func TestEngineAbortsWhenLagExceedsImportLimit(t *testing.T) {
	p := newPrimary(t)
	p.create(t, 1, 100)

	f := NewFollower(storage.Config{HistoryDepth: testHistoryDepth})
	drain := p.follow(t, f)
	eng := NewEngine(f, Options{Collector: &metrics.Collector{}})

	p.update(t, 1, 100) // baseline commit the follower applies
	drain()
	f.Hold()
	p.update(t, 1, 200) // lag distance 100
	drain()

	txn, err := eng.Begin(core.Query, p.ts(), core.BoundSpec{Transaction: 10})
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	_, err = eng.Read(txn, 1)
	var ae *tso.AbortError
	if !errors.As(err, &ae) || ae.Reason != metrics.AbortImportLimit {
		t.Fatalf("Read err = %v, want import-limit abort", err)
	}
	if eng.Live() != 0 {
		t.Errorf("aborted attempt still live")
	}
}

// TestReplicaLagChargeProperty is the lag-charging property test: for
// random schedules of primary updates and follower holds, a query ET's
// accumulated import from replica reads never exceeds its TIL, and the
// merged primary+replica trace passes the offline oracle — which
// re-derives every charge independently and cross-checks the commit
// totals against them.
func TestReplicaLagChargeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const objects = 6

	p := newPrimary(t)
	vals := make([]core.Value, objects)
	for i := 0; i < objects; i++ {
		vals[i] = core.Value(1000 + rng.Intn(9000))
		p.create(t, core.ObjectID(i), vals[i])
	}

	f := NewFollower(storage.Config{HistoryDepth: testHistoryDepth})
	drain := p.follow(t, f)
	rec := history.NewRecorder()
	eng := NewEngine(f, Options{Collector: &metrics.Collector{}, Tracer: rec})
	drain()

	tils := []core.Distance{20, 100, 500, 5000, core.NoLimit}
	commits, aborts, relaxed := 0, 0, 0
	for round := 0; round < 200; round++ {
		// Random lag schedule: hold, partially release, or catch up.
		switch rng.Intn(3) {
		case 0:
			f.Hold()
		case 1:
			if err := f.Release(rng.Intn(3)); err != nil {
				t.Fatalf("Release: %v", err)
			}
		case 2:
			if err := f.Release(-1); err != nil {
				t.Fatalf("Release: %v", err)
			}
		}
		for n := rng.Intn(4); n > 0; n-- {
			obj := core.ObjectID(rng.Intn(objects))
			vals[obj] += core.Value(rng.Intn(200) - 100)
			p.update(t, obj, vals[obj])
		}
		drain()

		til := tils[rng.Intn(len(tils))]
		txn, err := eng.Begin(core.Query, p.ts(), core.BoundSpec{Transaction: til})
		if err != nil {
			t.Fatalf("Begin: %v", err)
		}
		var imported core.Distance
		aborted := false
		for n := 1 + rng.Intn(4); n > 0; n-- {
			obj := core.ObjectID(rng.Intn(objects))
			_, rerr := eng.Read(txn, obj)
			if rerr != nil {
				var ae *tso.AbortError
				if !errors.As(rerr, &ae) || ae.Reason != metrics.AbortImportLimit {
					t.Fatalf("Read err = %v", rerr)
				}
				aborted = true
				break
			}
		}
		if aborted {
			aborts++
			continue
		}
		before := eng.ImportedTotal()
		if err := eng.Commit(txn); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		imported = eng.ImportedTotal() - before
		if imported > til {
			t.Fatalf("round %d: imported %d over TIL %d", round, imported, til)
		}
		if imported > 0 {
			relaxed++
		}
		commits++
	}
	if err := f.Release(-1); err != nil {
		t.Fatalf("final Release: %v", err)
	}
	if relaxed == 0 {
		t.Fatal("property test exercised no lagged reads; lag schedule is broken")
	}
	t.Logf("commits=%d aborts=%d relaxed=%d", commits, aborts, relaxed)

	// The oracle re-derives each replica read's divergence from the
	// merged trace and cross-checks the charges; any overcharge,
	// undercharge past a bound, or TIL overrun refutes certification.
	merged := append(p.rec.Events(), rec.Events()...)
	rep := esrcheck.Check(merged)
	if err := rep.Err(); err != nil {
		t.Fatalf("merged trace refuted: %v\nviolations: %+v", err, rep.Violations)
	}
	if rep.RelaxedReads == 0 {
		t.Error("oracle saw no relaxed reads in a lagging run")
	}
}
