package workload

import (
	"math"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
)

func TestLevelsMatchPaperTable(t *testing.T) {
	ls := Levels()
	if len(ls) != 4 {
		t.Fatalf("Levels() has %d entries", len(ls))
	}
	if LevelHigh.TIL != 100_000 || LevelHigh.TEL != 10_000 {
		t.Errorf("high = %+v", LevelHigh)
	}
	if LevelMedium.TIL != 50_000 || LevelMedium.TEL != 5_000 {
		t.Errorf("medium = %+v", LevelMedium)
	}
	if LevelLow.TIL != 10_000 || LevelLow.TEL != 1_000 {
		t.Errorf("low = %+v", LevelLow)
	}
	if LevelZero.TIL != 0 || LevelZero.TEL != 0 {
		t.Errorf("zero = %+v", LevelZero)
	}
}

func TestDefaultParamsMatchPaperSetup(t *testing.T) {
	p := DefaultParams(LevelHigh)
	if p.NumObjects != 1000 || p.HotSetSize != 20 || p.QueryOps != 20 || p.UpdateOps != 6 {
		t.Errorf("params = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestParamsValidation(t *testing.T) {
	base := DefaultParams(LevelZero)
	cases := []func(*Params){
		func(p *Params) { p.NumObjects = 0 },
		func(p *Params) { p.HotSetSize = 0 },
		func(p *Params) { p.HotSetSize = p.NumObjects + 1 },
		func(p *Params) { p.HotFraction = -0.1 },
		func(p *Params) { p.HotFraction = 1.1 },
		func(p *Params) { p.UpdateHotFraction = -0.5 },
		func(p *Params) { p.QueryFraction = 2 },
		func(p *Params) { p.QueryOps = 0 },
		func(p *Params) { p.UpdateOps = 1 },
		func(p *Params) { p.MeanWriteDelta = 0 },
		func(p *Params) { p.DeltaSpikeFraction = 1.5 },
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
		if _, err := NewGenerator(p, 1); err == nil {
			t.Errorf("case %d: NewGenerator accepted invalid params", i)
		}
	}
}

func TestGeneratedProgramsAreValid(t *testing.T) {
	g, err := NewGenerator(DefaultParams(LevelMedium), 42)
	if err != nil {
		t.Fatal(err)
	}
	queries, updates := 0, 0
	for i := 0; i < 500; i++ {
		p := g.Next()
		if err := p.Validate(); err != nil {
			t.Fatalf("generated program invalid: %v (%s)", err, p)
		}
		switch p.Kind {
		case core.Query:
			queries++
			if p.Bounds.Transaction != LevelMedium.TIL {
				t.Fatalf("query TIL = %d", p.Bounds.Transaction)
			}
			if p.NumWrites() != 0 {
				t.Fatal("query with writes")
			}
		case core.Update:
			updates++
			if p.Bounds.Transaction != LevelMedium.TEL {
				t.Fatalf("update TEL = %d", p.Bounds.Transaction)
			}
			if p.NumWrites() == 0 || p.NumReads() == 0 {
				t.Fatalf("update shape: %d reads %d writes", p.NumReads(), p.NumWrites())
			}
		}
		for _, op := range p.Ops {
			if int(op.Object) >= 1000 {
				t.Fatalf("object id %d out of range", op.Object)
			}
			if op.Kind == core.OpWrite && !op.UseDelta {
				t.Fatal("update write is not a delta write")
			}
		}
	}
	if queries == 0 || updates == 0 {
		t.Errorf("mix = %d queries, %d updates", queries, updates)
	}
}

func TestGeneratorDeterministicBySeed(t *testing.T) {
	g1, _ := NewGenerator(DefaultParams(LevelLow), 7)
	g2, _ := NewGenerator(DefaultParams(LevelLow), 7)
	for i := 0; i < 50; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Kind != b.Kind || len(a.Ops) != len(b.Ops) {
			t.Fatalf("iteration %d diverged", i)
		}
		for j := range a.Ops {
			if a.Ops[j] != b.Ops[j] {
				t.Fatalf("iteration %d op %d: %+v vs %+v", i, j, a.Ops[j], b.Ops[j])
			}
		}
	}
}

func TestHotFractionShapesAccessSkew(t *testing.T) {
	p := DefaultParams(LevelZero)
	p.HotFraction = 0.9
	p.UpdateHotFraction = 0.25
	g, _ := NewGenerator(p, 3)
	hotQ, totalQ, hotU, totalU := 0, 0, 0, 0
	for i := 0; i < 600; i++ {
		prog := g.Next()
		for _, op := range prog.Ops {
			if prog.Kind == core.Query {
				totalQ++
				if int(op.Object) < p.HotSetSize {
					hotQ++
				}
			} else {
				totalU++
				if int(op.Object) < p.HotSetSize {
					hotU++
				}
			}
		}
	}
	if frac := float64(hotQ) / float64(totalQ); frac < 0.80 || frac > 0.98 {
		t.Errorf("query hot fraction = %.3f, want ≈0.9", frac)
	}
	if frac := float64(hotU) / float64(totalU); frac < 0.15 || frac > 0.35 {
		t.Errorf("update hot fraction = %.3f, want ≈0.25", frac)
	}
}

func TestQueryOpsNearMean(t *testing.T) {
	g, _ := NewGenerator(DefaultParams(LevelZero), 5)
	var total, count int
	for i := 0; i < 400; i++ {
		p := g.Next()
		if p.Kind != core.Query {
			continue
		}
		n := p.NumReads()
		if n < 15 || n > 25 {
			t.Fatalf("query with %d reads outside mean±25%%", n)
		}
		total += n
		count++
	}
	mean := float64(total) / float64(count)
	if mean < 18 || mean > 22 {
		t.Errorf("mean query ops = %.1f, want ≈20", mean)
	}
}

func TestWriteDeltaDistribution(t *testing.T) {
	p := DefaultParams(LevelZero)
	p.QueryFraction = 0 // updates only
	g, _ := NewGenerator(p, 11)
	w := p.MeanWriteDelta
	var typicalSum float64
	typical, spikes := 0, 0
	for i := 0; i < 2000; i++ {
		for _, op := range g.Next().Ops {
			if op.Kind != core.OpWrite {
				continue
			}
			d := math.Abs(float64(op.Delta))
			if d == 0 {
				t.Fatal("zero delta generated")
			}
			switch {
			case d <= 1.2*float64(w):
				typical++
				typicalSum += d
			case d >= 5.5*float64(w) && d <= 6.5*float64(w):
				spikes++
			default:
				t.Fatalf("delta %.0f in the forbidden gap (w=%d)", d, w)
			}
		}
	}
	frac := float64(spikes) / float64(typical+spikes)
	if frac < 0.10 || frac > 0.20 {
		t.Errorf("spike fraction = %.3f, want ≈0.15", frac)
	}
	mean := typicalSum / float64(typical)
	if mean < 0.5*float64(w) || mean > 0.7*float64(w) {
		t.Errorf("mean typical |delta| = %.1f, want ≈0.6w = %d", mean, 6*w/10)
	}
}

func TestDenseDrawTerminates(t *testing.T) {
	// Requesting nearly all objects from a tiny database must terminate
	// via the probing fallback.
	p := DefaultParams(LevelZero)
	p.NumObjects = 10
	p.HotSetSize = 10
	p.HotFraction = 1
	p.UpdateHotFraction = 1
	p.QueryOps = 10
	p.QueryFraction = 1
	g, err := NewGenerator(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := g.Next()
	if got := len(prog.Objects()); got < 7 {
		t.Errorf("dense draw produced %d distinct objects", got)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestMoreThanDatabaseClamps(t *testing.T) {
	p := DefaultParams(LevelZero)
	p.NumObjects = 5
	p.HotSetSize = 5
	p.QueryOps = 40
	p.QueryFraction = 1
	g, err := NewGenerator(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := g.Next()
	if len(prog.Ops) > 5 {
		t.Errorf("generated %d ops from a 5-object database", len(prog.Ops))
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
}
