package workload

import (
	"fmt"
	"io"
	"strings"

	"github.com/epsilondb/epsilondb/internal/core"
)

// WriteScript renders a generated program as a transaction script in the
// paper's language (§3.2), so generated workloads can be stored as the
// load files the prototype's clients replayed (§6).
//
// Queries become the canonical sum query. Delta writes are expressed the
// way the paper's updates express them — a read feeding the write's
// expression:
//
//	tw0 = Read 7
//	Write 7 , tw0+120
func WriteScript(w io.Writer, p *core.Program) error {
	var sb strings.Builder
	switch p.Kind {
	case core.Query:
		fmt.Fprintf(&sb, "BEGIN Query TIL %d\n", p.Bounds.Transaction)
	case core.Update:
		fmt.Fprintf(&sb, "BEGIN Update TEL %d\n", p.Bounds.Transaction)
	default:
		return fmt.Errorf("workload: cannot serialize kind %d", p.Kind)
	}
	for name, limit := range p.Bounds.Groups {
		fmt.Fprintf(&sb, "LIMIT %s %d\n", name, limit)
	}
	for obj, limit := range p.Bounds.Objects {
		fmt.Fprintf(&sb, "LIMIT %d %d\n", obj, limit)
	}

	var sumVars []string
	writeVar := 0
	for _, op := range p.Ops {
		switch op.Kind {
		case core.OpRead:
			name := fmt.Sprintf("t%d", len(sumVars))
			fmt.Fprintf(&sb, "%s = Read %d\n", name, op.Object)
			sumVars = append(sumVars, name)
		case core.OpWrite:
			if op.UseDelta {
				name := fmt.Sprintf("tw%d", writeVar)
				writeVar++
				fmt.Fprintf(&sb, "%s = Read %d\n", name, op.Object)
				if op.Delta >= 0 {
					fmt.Fprintf(&sb, "Write %d , %s+%d\n", op.Object, name, op.Delta)
				} else {
					fmt.Fprintf(&sb, "Write %d , %s-%d\n", op.Object, name, -op.Delta)
				}
			} else {
				fmt.Fprintf(&sb, "Write %d , %d\n", op.Object, op.Value)
			}
		}
	}
	if p.Kind == core.Query && len(sumVars) > 0 {
		fmt.Fprintf(&sb, "output(\"Sum is: \", %s)\n", strings.Join(sumVars, "+"))
	}
	sb.WriteString("COMMIT\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteLoadFile generates n transactions and renders them as one load
// file, reproducing the prototype's pre-generated per-client data files.
func (g *Generator) WriteLoadFile(w io.Writer, n int) error {
	for i := 0; i < n; i++ {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := WriteScript(w, g.Next()); err != nil {
			return err
		}
	}
	return nil
}
