// Package workload generates the randomized transaction load of the
// paper's performance tests (§7):
//
//   - about 1000 objects with values in [1000, 9999];
//   - a high conflict ratio produced by concentrating most accesses on a
//     hot set of about 20 objects (chosen so thrashing appears within a
//     multiprogramming level of 10);
//   - query ETs with about 20 read operations computing a sum;
//   - update ETs with about 6 operations (reads plus writes whose values
//     depend on the reads — generated here as delta writes so restarted
//     transactions stay meaningful);
//   - transaction inconsistency bounds drawn from the paper's levels
//     (high/medium/low/zero).
//
// Generators are deterministic given their seed.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/epsilondb/epsilondb/internal/core"
)

// Level is a named pair of transaction bounds from the §7 table.
type Level struct {
	Name string
	TIL  core.Distance
	TEL  core.Distance
}

// The paper's bound levels (§7): TEL is an order of magnitude below TIL
// because update ETs have ~6 operations against the queries' ~20.
var (
	// LevelZero is the SR baseline: no inconsistency tolerated.
	LevelZero = Level{Name: "zero", TIL: 0, TEL: 0}
	// LevelLow tolerates little inconsistency.
	LevelLow = Level{Name: "low-epsilon", TIL: 10_000, TEL: 1_000}
	// LevelMedium is the intermediate setting.
	LevelMedium = Level{Name: "medium-epsilon", TIL: 50_000, TEL: 5_000}
	// LevelHigh is the most permissive setting.
	LevelHigh = Level{Name: "high-epsilon", TIL: 100_000, TEL: 10_000}
)

// Levels lists the four settings in the order the figures plot them.
func Levels() []Level {
	return []Level{LevelZero, LevelLow, LevelMedium, LevelHigh}
}

// Params configures a workload generator.
type Params struct {
	// NumObjects is the database size; the paper used 1000.
	NumObjects int
	// HotSetSize is the size of the contended object subset; the paper
	// used about 20.
	HotSetSize int
	// HotFraction is the probability that a query read targets the hot
	// set; the paper says "most of our transactions accessed only about
	// 20 objects", so the default is 0.9.
	HotFraction float64
	// UpdateHotFraction is the probability that an update operation
	// targets the hot set. The paper's conflict ratio is dominated by
	// query-update interference (its high-epsilon runs see almost no
	// aborts, which rules out heavy update-update conflicts), so updates
	// spread wider than query reads; default 0.8.
	UpdateHotFraction float64
	// QueryFraction is the probability a generated transaction is a
	// query ET; default 0.5.
	QueryFraction float64
	// QueryOps is the mean number of reads in a query ET; the paper's
	// typical query has about 20.
	QueryOps int
	// UpdateOps is the mean number of operations in an update ET; the
	// paper's typical update has about 6 (reads feeding delta writes).
	UpdateOps int
	// MeanWriteDelta is w, the scale of the change a typical write
	// makes; typical deltas are drawn uniformly from [1, 1.2w] with
	// random sign.
	MeanWriteDelta core.Value
	// DeltaSpikeFraction is the probability that a write's delta is a
	// spike drawn from [5.5w, 6.5w] instead of the typical range. The
	// paper's updates mix small balance changes with occasional large
	// rewrites (its examples write values like t1+4230); the spikes are
	// what make the object import limit interesting — they are the
	// operations "that cause high inconsistency" in the Figure 12
	// discussion. Default 0.15.
	DeltaSpikeFraction float64
	// TIL and TEL are the transaction bounds stamped on generated
	// programs (use a Level).
	TIL core.Distance
	TEL core.Distance
}

// DefaultParams returns the paper's §7 configuration at the given level.
func DefaultParams(l Level) Params {
	return Params{
		NumObjects:         1000,
		HotSetSize:         20,
		HotFraction:        0.9,
		UpdateHotFraction:  0.7,
		QueryFraction:      0.5,
		QueryOps:           20,
		UpdateOps:          6,
		MeanWriteDelta:     1500,
		DeltaSpikeFraction: 0.15,
		TIL:                l.TIL,
		TEL:                l.TEL,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.NumObjects <= 0:
		return fmt.Errorf("workload: NumObjects must be positive, got %d", p.NumObjects)
	case p.HotSetSize <= 0 || p.HotSetSize > p.NumObjects:
		return fmt.Errorf("workload: HotSetSize %d outside (0, %d]", p.HotSetSize, p.NumObjects)
	case p.HotFraction < 0 || p.HotFraction > 1:
		return fmt.Errorf("workload: HotFraction %f outside [0, 1]", p.HotFraction)
	case p.UpdateHotFraction < 0 || p.UpdateHotFraction > 1:
		return fmt.Errorf("workload: UpdateHotFraction %f outside [0, 1]", p.UpdateHotFraction)
	case p.QueryFraction < 0 || p.QueryFraction > 1:
		return fmt.Errorf("workload: QueryFraction %f outside [0, 1]", p.QueryFraction)
	case p.QueryOps <= 0:
		return fmt.Errorf("workload: QueryOps must be positive, got %d", p.QueryOps)
	case p.UpdateOps < 2:
		return fmt.Errorf("workload: UpdateOps must be at least 2, got %d", p.UpdateOps)
	case p.MeanWriteDelta <= 0:
		return fmt.Errorf("workload: MeanWriteDelta must be positive, got %d", p.MeanWriteDelta)
	case p.DeltaSpikeFraction < 0 || p.DeltaSpikeFraction > 1:
		return fmt.Errorf("workload: DeltaSpikeFraction %f outside [0, 1]", p.DeltaSpikeFraction)
	}
	return nil
}

// Generator produces random transaction programs. It is not safe for
// concurrent use; give each client goroutine its own (the prototype gave
// each client its own pre-generated load file).
type Generator struct {
	p   Params
	rng *rand.Rand
}

// NewGenerator returns a generator with the given parameters and seed.
func NewGenerator(p Params, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Generator{p: p, rng: rand.New(rand.NewSource(seed))}, nil
}

// Params returns the generator's configuration.
func (g *Generator) Params() Params { return g.p }

// Next generates the next transaction program.
func (g *Generator) Next() *core.Program {
	if g.rng.Float64() < g.p.QueryFraction {
		return g.nextQuery()
	}
	return g.nextUpdate()
}

// nextQuery builds a sum query over ~QueryOps distinct objects.
func (g *Generator) nextQuery() *core.Program {
	n := jitter(g.rng, g.p.QueryOps)
	objs := g.pickObjects(n, g.p.HotFraction)
	p := core.NewQuery(g.p.TIL, objs...)
	p.Label = "query"
	return p
}

// nextUpdate builds an update with reads feeding delta writes: roughly
// half the operations read, half write, matching the paper's example
// where write values depend on the values read.
func (g *Generator) nextUpdate() *core.Program {
	n := jitter(g.rng, g.p.UpdateOps)
	if n < 2 {
		n = 2
	}
	writes := n / 2
	reads := n - writes
	objs := g.pickObjects(n, g.p.UpdateHotFraction)
	p := core.NewUpdate(g.p.TEL)
	p.Label = "update"
	for i := 0; i < reads; i++ {
		p.Read(objs[i])
	}
	for i := reads; i < n; i++ {
		p.WriteDelta(objs[i], g.delta())
	}
	return p
}

// delta draws a write change with random sign: typically uniform from
// [1, 1.2w], with probability DeltaSpikeFraction a spike from [4w, 5w].
func (g *Generator) delta() core.Value {
	w := g.p.MeanWriteDelta
	var d core.Value
	if g.rng.Float64() < g.p.DeltaSpikeFraction {
		d = 11*w/2 + core.Value(g.rng.Int63n(int64(w)+1))
	} else {
		d = 1 + core.Value(g.rng.Int63n(int64(12*w/10)))
	}
	if g.rng.Intn(2) == 0 {
		d = -d
	}
	return d
}

// jitter returns mean ± 25% (at least 1).
func jitter(rng *rand.Rand, mean int) int {
	span := mean / 4
	if span == 0 {
		return mean
	}
	n := mean - span + rng.Intn(2*span+1)
	if n < 1 {
		n = 1
	}
	return n
}

// pickObjects draws n distinct object ids, each from the hot set with
// probability HotFraction. Hot objects are ids [0, HotSetSize); cold
// objects are the rest. If a pool is exhausted the other is used.
func (g *Generator) pickObjects(n int, hotFraction float64) []core.ObjectID {
	if n > g.p.NumObjects {
		n = g.p.NumObjects
	}
	chosen := make(map[core.ObjectID]bool, n)
	out := make([]core.ObjectID, 0, n)
	coldSpan := g.p.NumObjects - g.p.HotSetSize
	for len(out) < n {
		var id core.ObjectID
		hot := g.rng.Float64() < hotFraction
		if coldSpan == 0 {
			hot = true
		}
		if hot {
			id = core.ObjectID(g.rng.Intn(g.p.HotSetSize))
		} else {
			id = core.ObjectID(g.p.HotSetSize + g.rng.Intn(coldSpan))
		}
		if chosen[id] {
			// Collision: fall back to a linear probe within the same
			// pool so dense draws (n close to pool size) terminate.
			id = g.probe(id, hot, chosen)
			if chosen[id] {
				continue
			}
		}
		chosen[id] = true
		out = append(out, id)
	}
	return out
}

// probe scans forward from id within its pool for a free slot.
func (g *Generator) probe(start core.ObjectID, hot bool, chosen map[core.ObjectID]bool) core.ObjectID {
	lo, hi := 0, g.p.HotSetSize
	if !hot {
		lo, hi = g.p.HotSetSize, g.p.NumObjects
	}
	span := hi - lo
	for i := 0; i < span; i++ {
		id := core.ObjectID(lo + (int(start)-lo+i)%span)
		if !chosen[id] {
			return id
		}
	}
	return start
}
