package workload

import (
	"strings"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/txnlang"
)

func TestWriteScriptQueryRoundTrip(t *testing.T) {
	p := core.NewQuery(100_000, 17, 42, 99)
	p.Bounds = p.Bounds.WithGroup("company", 4000).WithObject(17, 200)
	var sb strings.Builder
	if err := WriteScript(&sb, p); err != nil {
		t.Fatal(err)
	}
	src := sb.String()
	for _, frag := range []string{"BEGIN Query TIL 100000", "LIMIT company 4000", "LIMIT 17 200", "t0 = Read 17", "output(\"Sum is: \", t0+t1+t2)", "COMMIT"} {
		if !strings.Contains(src, frag) {
			t.Errorf("script missing %q:\n%s", frag, src)
		}
	}
	parsed, err := txnlang.Parse(src)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, src)
	}
	if parsed.Kind != core.Query || parsed.Spec.Transaction != 100_000 {
		t.Errorf("parsed header: %v %d", parsed.Kind, parsed.Spec.Transaction)
	}
	if parsed.Spec.Groups["company"] != 4000 || parsed.Spec.Objects[17] != 200 {
		t.Errorf("parsed limits: %+v", parsed.Spec)
	}
}

func TestWriteScriptDeltaUpdateExecutes(t *testing.T) {
	p := core.NewUpdate(0).Read(1).WriteDelta(2, 120).WriteDelta(3, -30)
	var sb strings.Builder
	if err := WriteScript(&sb, p); err != nil {
		t.Fatal(err)
	}
	script, err := txnlang.Parse(sb.String())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, sb.String())
	}

	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for i := 1; i <= 3; i++ {
		if _, err := st.Create(core.ObjectID(i), core.Value(1000)); err != nil {
			t.Fatal(err)
		}
	}
	e := tso.NewEngine(st, tso.Options{})
	runner := txnlang.EngineRunner{Engine: e, Gen: tsgen.NewGenerator(0, &tsgen.LogicalClock{})}
	if _, _, err := txnlang.RunRetry(script, runner, nil, 0); err != nil {
		t.Fatal(err)
	}
	check, err := e.RunProgram(core.NewQuery(0, 2, 3), tsgen.Make(1000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if check.Values[0] != 1120 || check.Values[1] != 970 {
		t.Errorf("values after script = %v, want [1120 970]", check.Values)
	}
}

func TestWriteScriptAbsoluteWrite(t *testing.T) {
	p := core.NewUpdate(0).WriteValue(5, 777)
	var sb strings.Builder
	if err := WriteScript(&sb, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Write 5 , 777") {
		t.Errorf("script:\n%s", sb.String())
	}
	if _, err := txnlang.Parse(sb.String()); err != nil {
		t.Fatal(err)
	}
}

func TestWriteScriptRejectsBadKind(t *testing.T) {
	p := &core.Program{Kind: core.Kind(9)}
	if err := WriteScript(&strings.Builder{}, p); err == nil {
		t.Error("bad kind serialized")
	}
}

func TestWriteLoadFileParsesBack(t *testing.T) {
	g, err := NewGenerator(DefaultParams(LevelMedium), 42)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteLoadFile(&sb, 8); err != nil {
		t.Fatal(err)
	}
	scripts, err := txnlang.ParseAll(sb.String())
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	if len(scripts) != 8 {
		t.Fatalf("parsed %d scripts, want 8", len(scripts))
	}
	queries := 0
	for _, s := range scripts {
		if s.Terminator != "commit" {
			t.Errorf("terminator %q", s.Terminator)
		}
		if s.Kind == core.Query {
			queries++
			if s.Spec.Transaction != LevelMedium.TIL {
				t.Errorf("query TIL %d", s.Spec.Transaction)
			}
		} else if s.Spec.Transaction != LevelMedium.TEL {
			t.Errorf("update TEL %d", s.Spec.Transaction)
		}
	}
	if queries == 0 || queries == 8 {
		t.Errorf("mix: %d queries of 8", queries)
	}
}

func TestGeneratedLoadFileRunsToCompletion(t *testing.T) {
	params := DefaultParams(LevelHigh)
	params.NumObjects = 50
	params.HotSetSize = 10
	g, err := NewGenerator(params, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteLoadFile(&sb, 10); err != nil {
		t.Fatal(err)
	}
	scripts, err := txnlang.ParseAll(sb.String())
	if err != nil {
		t.Fatal(err)
	}

	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for i := 0; i < 50; i++ {
		if _, err := st.Create(core.ObjectID(i), 1000); err != nil {
			t.Fatal(err)
		}
	}
	e := tso.NewEngine(st, tso.Options{})
	runner := txnlang.EngineRunner{Engine: e, Gen: tsgen.NewGenerator(0, &tsgen.LogicalClock{})}
	for i, s := range scripts {
		if _, _, err := txnlang.RunRetry(s, runner, nil, 100); err != nil {
			t.Fatalf("script %d: %v", i, err)
		}
	}
}
