package analysis

// This file is the intraprocedural control-flow layer the flow-sensitive
// analyzers (lockorder, goleak, errprop, the upgraded epsiloncheck) are
// built on. A CFG is a set of basic blocks over one function body;
// statements stay whole (a block's Nodes are ast.Stmt/ast.Expr in source
// order) so transfer functions can inspect them with ast.Inspect. Branch
// conditions are exposed on the block that ends with them (Cond), with
// the true edge first, so dataflow can refine facts per edge — the
// publish-under-log-mutex rule depends on knowing which side of a
// `durErr != nil` test a path took.
//
// Function literals are NOT inlined: a FuncLit is an opaque expression in
// its enclosing CFG, and analyzers build a separate CFG for its body.
// Panic calls and calls to functions that the builder is told never
// return are treated as exits, matching locksafe's view of control flow.

import (
	"go/ast"
)

// Block is one basic block: straight-line nodes and the edges out.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0).
	Index int
	// Nodes are the statements and expressions executed in order.
	Nodes []ast.Node
	// Succs are the successor blocks. When Cond is set, Succs[0] is the
	// branch taken when Cond is true and Succs[1] when it is false.
	Succs []*Block
	// Cond is the branch condition ending this block, if any.
	Cond ast.Expr
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block control enters at.
	Entry *Block
	// Exit is the synthetic block every return, panic and fall-off-end
	// reaches; a function whose Exit is unreachable cannot terminate.
	Exit *Block
	// Blocks lists every block, entry first. Unreachable blocks (code
	// after return, bodies of dead branches) are included.
	Blocks []*Block
}

// Reachable returns the set of blocks reachable from the entry.
func (g *CFG) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool)
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return seen
}

// Terminates reports whether the function can reach its exit: some path
// returns, panics, or falls off the end. A body whose only steady state
// is an unbreakable loop does not terminate.
func (g *CFG) Terminates() bool { return g.Reachable()[g.Exit] }

// cfgBuilder accumulates blocks for one function body.
type cfgBuilder struct {
	g   *CFG
	cur *Block
	// breakTo / continueTo are the innermost targets; labels maps a label
	// name to its loop's targets for labeled break/continue and to the
	// labeled statement's entry block for goto.
	breakTo    *Block
	continueTo *Block
	labels     map[string]*labelTarget
	// gotos are forward gotos awaiting their label's block.
	gotos []pendingGoto
}

type labelTarget struct {
	entry      *Block // where goto jumps
	breakTo    *Block // labeled break target (loops/switch/select)
	continueTo *Block // labeled continue target (loops)
}

type pendingGoto struct {
	from  *Block
	label string
}

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: make(map[string]*labelTarget)}
	b.g.Entry = b.newBlock()
	b.cur = b.g.Entry
	b.g.Exit = b.newBlock()
	b.stmts(body.List)
	// Falling off the end returns.
	b.edge(b.cur, b.g.Exit)
	// Resolve forward gotos; unknown labels (malformed source) dangle.
	for _, pg := range b.gotos {
		if t := b.labels[pg.label]; t != nil && t.entry != nil {
			b.edge(pg.from, t.entry)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// startBlock begins a fresh current block with no predecessors; used
// after a terminating statement so trailing dead code still gets blocks.
func (b *cfgBuilder) startBlock() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.g.Exit)
		b.startBlock()

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(call) {
			b.edge(b.cur, b.g.Exit)
			b.startBlock()
		}

	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		condBlk := b.cur
		condBlk.Nodes = append(condBlk.Nodes, s.Cond)
		condBlk.Cond = s.Cond
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		join := b.newBlock()
		b.cur = thenBlk
		b.stmts(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		from := b.cur
		head := b.newBlock()
		b.edge(b.cur, head)
		body := b.newBlock()
		exit := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Cond = s.Cond
			b.edge(head, body)
			b.edge(head, exit)
		} else {
			// for {}: the only way out is break/return inside the body.
			b.edge(head, body)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		}
		b.loopBody(from, body, s.Body.List, exit, post)
		b.cur = exit

	case *ast.RangeStmt:
		from := b.cur
		head := b.newBlock()
		b.edge(b.cur, head)
		// The range expression is evaluated at the head; iteration both
		// continues and finishes from there.
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		b.edge(head, exit)
		b.loopBody(from, body, s.Body.List, exit, head)
		b.cur = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.branching(s)

	case *ast.LabeledStmt:
		name := s.Label.Name
		entry := b.newBlock()
		b.edge(b.cur, entry)
		b.cur = entry
		t := &labelTarget{entry: entry}
		b.labels[name] = t
		b.stmt(s.Stmt)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.GoStmt:
		// The spawned body is a separate function; the statement itself
		// does not affect this CFG's control flow.
		b.cur.Nodes = append(b.cur.Nodes, s)

	default:
		// Assign, Decl, IncDec, Send, Defer, Empty: straight-line.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// loopBody builds the body statements into the body block with
// break/continue retargeted, and registers the targets on any label
// whose statement is this loop (for labeled break/continue). from is
// the block that was current when the loop statement began — a label's
// entry block when the loop is labeled.
func (b *cfgBuilder) loopBody(from, body *Block, list []ast.Stmt, breakTo, continueTo *Block) {
	for _, t := range b.labels {
		if t.entry == from && t.breakTo == nil {
			// `L: for ...` — labeled jumps target this loop.
			t.breakTo, t.continueTo = breakTo, continueTo
		}
	}
	savedB, savedC := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = breakTo, continueTo
	b.cur = body
	b.stmts(list)
	b.edge(b.cur, continueTo)
	b.breakTo, b.continueTo = savedB, savedC
}

// branch handles break/continue/goto/fallthrough.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	b.cur.Nodes = append(b.cur.Nodes, s)
	switch s.Tok.String() {
	case "break":
		target := b.breakTo
		if s.Label != nil {
			if t := b.labels[s.Label.Name]; t != nil && t.breakTo != nil {
				target = t.breakTo
			}
		}
		if target != nil {
			b.edge(b.cur, target)
		}
		b.startBlock()
	case "continue":
		target := b.continueTo
		if s.Label != nil {
			if t := b.labels[s.Label.Name]; t != nil && t.continueTo != nil {
				target = t.continueTo
			}
		}
		if target != nil {
			b.edge(b.cur, target)
		}
		b.startBlock()
	case "goto":
		if s.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		}
		b.startBlock()
	case "fallthrough":
		// Handled structurally in branching: the clause block falls into
		// the next clause's body. Nothing extra here.
	}
}

// branching builds switch/type-switch/select. Every clause is reachable
// from the header; a switch without a default can also fall past, while
// a select without a default blocks until some clause runs.
func (b *cfgBuilder) branching(s ast.Stmt) {
	var body *ast.BlockStmt
	isSelect := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		body = s.Body
	case *ast.SelectStmt:
		// The select itself is a node so analyzers can see the blocking
		// point with the incoming fact.
		b.cur.Nodes = append(b.cur.Nodes, s)
		body = s.Body
		isSelect = true
	}
	head := b.cur
	join := b.newBlock()

	hasDefault := false
	type clauseBlocks struct {
		entry *Block
		stmts []ast.Stmt
		comm  ast.Stmt
	}
	var clauses []clauseBlocks
	for _, c := range body.List {
		switch cl := c.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			clauses = append(clauses, clauseBlocks{entry: b.newBlock(), stmts: cl.Body})
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			clauses = append(clauses, clauseBlocks{entry: b.newBlock(), stmts: cl.Body, comm: cl.Comm})
		}
	}
	for i, cl := range clauses {
		b.edge(head, cl.entry)
		b.cur = cl.entry
		if cl.comm != nil {
			// The communication op (receive/send) runs on clause entry.
			b.stmt(cl.comm)
		}
		savedB := b.breakTo
		b.breakTo = join
		// Track fallthrough: if the clause ends with one, flow into the
		// next clause's body instead of the join.
		ft := len(cl.stmts) > 0 && isFallthrough(cl.stmts[len(cl.stmts)-1])
		b.stmts(cl.stmts)
		if ft && i+1 < len(clauses) {
			b.edge(b.cur, clauses[i+1].entry)
			b.startBlock()
		}
		b.edge(b.cur, join)
		b.breakTo = savedB
	}
	if !hasDefault && !isSelect {
		// No case matched: fall past the switch.
		b.edge(head, join)
	}
	if isSelect && len(clauses) == 0 {
		// select{} blocks forever: no edge to join.
		_ = head
	}
	b.cur = join
}

func isFallthrough(s ast.Stmt) bool {
	br, ok := s.(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

// isPanicCall reports whether call looks like the builtin panic. The CFG
// builder has no type information, so a shadowed panic identifier would
// be misread; the repo does not shadow it.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
