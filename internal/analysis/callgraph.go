package analysis

// A program-level call graph over static call sites, for the
// interprocedural side of the flow-sensitive analyzers: lockorder
// propagates "may block" and "locks acquired" summaries along it, goleak
// resolves `go f()` spawns of named functions through it. Only calls the
// typechecker can resolve to a concrete *types.Func are edges — direct
// function calls and method calls through a concrete receiver. Interface
// dispatch and calls through function values are not modeled; analyzers
// that care about specific interface methods (storage.Ack.Wait) match
// them by name and receiver type at the call site instead.
//
// Calls made inside a `go`-spawned function literal are attributed to
// the spawned body, not the spawning function: spawning does not run the
// callee in the caller's context, and lock/block summaries must not leak
// across that boundary. Other function literals (deferred, immediately
// called, passed as callbacks) are attributed to their enclosing
// declaration, since they typically run within the caller's dynamic
// extent.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallSite is one resolved static call.
type CallSite struct {
	// Callee is the called function or method.
	Callee *types.Func
	// Call is the call expression.
	Call *ast.CallExpr
	// Pos is the call position.
	Pos token.Pos
}

// CallGraph is the program's static call structure.
type CallGraph struct {
	// Decls maps every function and method with a body to its
	// declaration and the package it lives in.
	Decls map[*types.Func]*FuncSource
	// Calls maps a caller to the sites it may invoke. Callers absent
	// from Decls (no body loaded) have no entry.
	Calls map[*types.Func][]CallSite
}

// FuncSource is where a function's body lives.
type FuncSource struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// BuildCallGraph indexes every loaded package's declarations and call
// sites.
func BuildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		Decls: make(map[*types.Func]*FuncSource),
		Calls: make(map[*types.Func][]CallSite),
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Decls[obj] = &FuncSource{Pkg: pkg, Decl: fn}
				g.collectCalls(pkg, obj, fn.Body)
			}
		}
	}
	return g
}

// collectCalls records the call sites in body attributed to caller,
// descending into function literals except go-spawned ones.
func (g *CallGraph) collectCalls(pkg *Package, caller *types.Func, body ast.Node) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned callee's own body is indexed when its FuncDecl
			// is visited (named spawn) or not at all (literal spawn —
			// goleak analyzes those bodies directly). Arguments to the
			// call are still evaluated by the caller.
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.CallExpr:
			if callee := ResolveCallee(pkg.Info, n); callee != nil {
				g.Calls[caller] = append(g.Calls[caller], CallSite{Callee: callee, Call: n, Pos: n.Pos()})
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// ResolveCallee returns the statically-known *types.Func a call invokes,
// or nil for interface dispatch, function values and builtins.
func ResolveCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if types.IsInterface(sel.Recv()) {
					return nil
				}
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Propagate computes the least fixed point of a backward property over
// the graph: a function has the property if seed reports it directly or
// it calls (statically) a function that has it. It returns the full set.
func (g *CallGraph) Propagate(seed func(fn *types.Func, src *FuncSource) bool) map[*types.Func]bool {
	has := make(map[*types.Func]bool)
	// Reverse edges for worklist propagation.
	callers := make(map[*types.Func][]*types.Func)
	for caller, sites := range g.Calls {
		for _, site := range sites {
			callers[site.Callee] = append(callers[site.Callee], caller)
		}
	}
	var work []*types.Func
	for fn, src := range g.Decls {
		if seed(fn, src) {
			has[fn] = true
			work = append(work, fn)
		}
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[fn] {
			if !has[caller] {
				has[caller] = true
				work = append(work, caller)
			}
		}
	}
	return has
}

// PropagateSet computes, for every function, the union of a per-function
// item set with the sets of everything it statically calls — e.g. "locks
// this function may acquire, transitively". direct supplies each
// function's own items.
func (g *CallGraph) PropagateSet(direct func(fn *types.Func, src *FuncSource) map[string]token.Pos) map[*types.Func]map[string]token.Pos {
	sets := make(map[*types.Func]map[string]token.Pos)
	for fn, src := range g.Decls {
		sets[fn] = direct(fn, src)
		if sets[fn] == nil {
			sets[fn] = map[string]token.Pos{}
		}
	}
	// Iterate to fixpoint; the sets only grow and are bounded by the
	// program's lock population, so this terminates quickly.
	changed := true
	for changed {
		changed = false
		for caller, sites := range g.Calls {
			dst, ok := sets[caller]
			if !ok {
				continue
			}
			for _, site := range sites {
				for item, pos := range sets[site.Callee] {
					if _, seen := dst[item]; !seen {
						dst[item] = pos
						changed = true
					}
				}
			}
		}
	}
	return sets
}
