// Package analysis is a self-contained re-implementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library so
// the repo's custom vet suite (cmd/esr-lint) carries no external
// dependencies. It provides:
//
//   - Analyzer / Pass / Diagnostic — the familiar vocabulary for writing
//     static checks over typed ASTs;
//   - a package loader (Load) that shells out to `go list -export` and
//     typechecks source against compiler export data, exactly the way
//     `go vet` feeds its unitchecker;
//   - a driver (Program.Run / RunDetailed) that executes analyzers per
//     package or over the whole program, for cross-package invariants
//     such as wire-protocol exhaustiveness, and applies the
//     //lint:ignore suppression grammar (ignore.go);
//   - a flow layer for flow-sensitive checks: an intraprocedural CFG
//     (cfg.go), a generic forward dataflow fixpoint (dataflow.go), and a
//     program-level call graph with property propagation (callgraph.go).
//
// The concrete analyzers live in the subpackages epsiloncheck, locksafe,
// wireexhaustive, atomicmetrics, lockorder, goleak, and errprop;
// DESIGN.md ("Static invariants") documents the invariant each one
// enforces and how to add a new one.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// ProgramLevel selects the driver mode: false runs Run once per
	// loaded package (Pass.Pkg set); true runs it once for the whole
	// program (Pass.Pkg nil), for invariants spanning packages.
	ProgramLevel bool
	// Run performs the check, reporting findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer execution's inputs.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Program is the full set of loaded packages.
	Program *Program
	// Pkg is the package under analysis; nil for program-level analyzers.
	Pkg *Package
	// Fset maps positions for every file in the program.
	Fset *token.FileSet

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic the way `go vet` does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Package is one typechecked package.
type Package struct {
	// ImportPath is the canonical import path.
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Files are the parsed non-test Go files.
	Files []*ast.File
	// Types is the typechecked package object.
	Types *types.Package
	// Info holds the typechecker's results for Files.
	Info *types.Info
}

// Program is a set of typechecked packages sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// Package returns the loaded package with the given package name
// (types.Package.Name), or nil. Used by program-level analyzers to find
// their subject packages by role (e.g. "wire", "server").
func (prog *Program) Package(name string) *Package {
	for _, pkg := range prog.Packages {
		if pkg.Types.Name() == name {
			return pkg
		}
	}
	return nil
}

// Run executes the analyzers and returns their unsuppressed findings
// sorted by position. Per-package analyzers visit every loaded package;
// program-level analyzers run once. Diagnostics covered by a
// //lint:ignore directive (ignore.go) are dropped; malformed directives
// are reported.
func (prog *Program) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := prog.RunDetailed(analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// Result is the detailed outcome of one driver run.
type Result struct {
	// Diagnostics are the reportable (unsuppressed) findings, sorted.
	Diagnostics []Diagnostic
	// Suppressed are the findings waived by //lint:ignore directives,
	// sorted; drivers surface them for audit (esr-lint -json).
	Suppressed []Diagnostic
}

// RunDetailed is Run with the suppressed findings kept for inspection.
func (prog *Program) RunDetailed(analyzers []*Analyzer) (*Result, error) {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.ProgramLevel {
			pass := &Pass{Analyzer: a, Program: prog, Fset: prog.Fset, report: collect}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range prog.Packages {
			pass := &Pass{Analyzer: a, Program: prog, Pkg: pkg, Fset: prog.Fset, report: collect}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	idx, malformed := buildIgnoreIndex(prog)
	kept, suppressed := idx.suppress(diags)
	kept = append(kept, malformed...)
	sortDiags(kept)
	sortDiags(suppressed)
	return &Result{Diagnostics: kept, Suppressed: suppressed}, nil
}

// sortDiags orders diagnostics by position then message.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
}

// NewInfo returns a types.Info with every result map allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
