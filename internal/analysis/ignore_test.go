package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// progFromSource builds a minimal Program (no type information — the
// ignore index only reads comments) from one file.
func progFromSource(t *testing.T, src string) *Program {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Program{Fset: fset, Packages: []*Package{{Files: []*ast.File{f}}}}
}

func TestIgnoreDirectives(t *testing.T) {
	src := `package p

func f() {
	//lint:ignore errprop deliberate: sweep must proceed
	a()
	b() //lint:ignore lockorder,errprop handoff releases the lock
	c()
}
`
	prog := progFromSource(t, src)
	idx, malformed := buildIgnoreIndex(prog)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", malformed)
	}

	diag := func(analyzer string, line int) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: "x.go", Line: line}}
	}
	kept, suppressed := idx.suppress([]Diagnostic{
		diag("errprop", 5),   // a(): standalone directive covers next line
		diag("lockorder", 6), // b(): trailing directive covers own line
		diag("errprop", 6),   // b(): second analyzer in the list
		diag("errprop", 7),   // c(): not covered
		diag("goleak", 5),    // a(): analyzer not named by the directive
	})
	if len(suppressed) != 3 {
		t.Errorf("suppressed %d diagnostics, want 3: %v", len(suppressed), suppressed)
	}
	if len(kept) != 2 {
		t.Errorf("kept %d diagnostics, want 2: %v", len(kept), kept)
	}
}

func TestIgnoreMalformed(t *testing.T) {
	src := `package p

//lint:ignore
func f() {}

//lint:ignore errprop
func g() {}
`
	prog := progFromSource(t, src)
	_, malformed := buildIgnoreIndex(prog)
	if len(malformed) != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2: %v", len(malformed), malformed)
	}
	for _, d := range malformed {
		if d.Analyzer != "lint" {
			t.Errorf("malformed directive attributed to %q, want \"lint\"", d.Analyzer)
		}
		if !strings.Contains(d.Message, "malformed") {
			t.Errorf("unexpected message %q", d.Message)
		}
	}
}
