// Package lockorder is the flow-sensitive lock discipline analyzer. It
// runs over the engine and storage packages (tso, twopl, mvto, storage,
// txnshard, wal) plus the pipelined client (client), infers the partial
// order in which their mutexes are acquired, and enforces three rules:
//
//  1. Ordering: every pair of locks must be acquired in one consistent
//     order program-wide. Acquisition edges are collected per path
//     (including locks acquired transitively through static calls) and a
//     cycle in the resulting graph is reported once per strongly
//     connected component.
//
//  2. No blocking under a lock: a channel receive, a select without a
//     default, a range over a channel, or a Wait() call (storage.Ack,
//     sync.WaitGroup) must not execute while any engine lock is held.
//     This is the checkable form of two commit-path contracts: the WAL
//     group-commit ack may only be awaited after twopl releases its lock
//     footprint (release-before-ack), and the lock manager hands a
//     request to `<-req.granted` only after dropping Engine.mu. The
//     analysis is per-path, so releasing before the receive satisfies it.
//
//  3. Publish under the log mutex: in the engine packages, the commit
//     publish step (a publishCommit method, or a function value handed to
//     Durability.LogCommit) may only run inside the LogCommit callback —
//     which the WAL invokes under its log mutex — or on a path where
//     durability is statically known to be off (dur == nil) or where
//     LogCommit already failed (its error != nil). Publishing anywhere
//     else would expose committed state before the decision is logged.
//
// Function literals passed to LogCommit / LogCreate / LogSetAllLimits are
// analyzed as if wal.Log.mu were already held, since the WAL runs them
// under it; that seeding is also what discovers the wal.Log.mu ->
// storage.Store.mu -> storage.Object.mu ordering edges.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/epsilondb/epsilondb/internal/analysis"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:         "lockorder",
	Doc:          "enforce lock acquisition order, no blocking under engine locks, and the publish-under-log-mutex commit contract",
	ProgramLevel: true,
	Run:          run,
}

// scopePkgs are the package names whose locks participate. The client
// package joined when it grew the demultiplexing core: client.pipe.mu
// is a leaf mutex shared by the caller, writer and reader goroutines,
// and the no-blocking-under-a-lock rule is exactly the discipline that
// keeps the demux deadlock-free — waiter completion is set-fields-then-
// close(done), never a channel receive or Wait under pipe.mu or the
// per-group callGroup.mu.
var scopePkgs = map[string]bool{
	"tso": true, "twopl": true, "mvto": true,
	"storage": true, "txnshard": true, "wal": true,
	"client": true,
}

// enginePkgs are the packages where the publish contract applies.
var enginePkgs = map[string]bool{"tso": true, "twopl": true, "mvto": true}

// logFuncs are the durability entry points whose callback arguments run
// under the WAL's log mutex.
var logFuncs = map[string]bool{"LogCommit": true, "LogCreate": true, "LogSetAllLimits": true}

// walLogMu is the canonical id of the WAL's log mutex, seeded into the
// held set of durability callbacks.
const walLogMu = "wal.Log.mu"

// fact is the per-path dataflow state.
type fact struct {
	// held maps lock id -> acquisition position (may-analysis: union).
	held map[string]token.Pos
	// durNil is true when this path established durability == nil;
	// logErr when it established a LogCommit error != nil; released when
	// releaseAll has run. All three are must-facts (join = AND).
	durNil, logErr, released bool
}

func newFact() *fact { return &fact{held: map[string]token.Pos{}} }

func (f *fact) clone() *fact {
	g := &fact{held: make(map[string]token.Pos, len(f.held)),
		durNil: f.durNil, logErr: f.logErr, released: f.released}
	for k, v := range f.held {
		g.held[k] = v
	}
	return g
}

// join merges src into f, returning whether f changed.
func (f *fact) join(src *fact) bool {
	changed := false
	for k, v := range src.held {
		if _, ok := f.held[k]; !ok {
			f.held[k] = v
			changed = true
		}
	}
	and := func(dst *bool, src bool) {
		if *dst && !src {
			*dst = false
			changed = true
		}
	}
	and(&f.durNil, src.durNil)
	and(&f.logErr, src.logErr)
	and(&f.released, src.released)
	return changed
}

// funcInfo is per-declaration context shared by the declaration body and
// the function literals inside it.
type funcInfo struct {
	// publishers are local function-typed variables passed to LogCommit.
	publishers map[types.Object]bool
	// logErrVars are variables assigned the error result of LogCommit.
	logErrVars map[types.Object]bool
	// seeded are the literals passed as callbacks to the log functions.
	seeded map[*ast.FuncLit]bool
	// callsReleaseAll scopes the release-before-ack rule: only a
	// function that manages the lock footprint itself (calls releaseAll
	// somewhere) must order the release before its ack waits. Helpers
	// handed an ack after the caller released are out of scope.
	callsReleaseAll bool
	// commRecv marks receives that are select communication clauses;
	// the select header is the blocking point reported, not the clause.
	commRecv map[ast.Node]bool
	// name labels diagnostics with the enclosing declaration.
	name string
}

type edgeKey struct{ from, to string }

type checker struct {
	pass     *analysis.Pass
	graph    *analysis.CallGraph
	acquired map[*types.Func]map[string]token.Pos
	mayBlock map[*types.Func]bool
	edges    map[edgeKey]token.Pos
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:  pass,
		graph: analysis.BuildCallGraph(pass.Program),
		edges: make(map[edgeKey]token.Pos),
	}
	c.acquired = c.graph.PropagateSet(func(fn *types.Func, src *analysis.FuncSource) map[string]token.Pos {
		if !scopePkgs[src.Pkg.Types.Name()] {
			return nil
		}
		return c.directLocks(src.Pkg, src.Decl.Body)
	})
	c.mayBlock = c.graph.Propagate(func(fn *types.Func, src *analysis.FuncSource) bool {
		return scopePkgs[src.Pkg.Types.Name()] && containsBlockingOp(src.Pkg, src.Decl.Body)
	})

	for _, pkg := range pass.Program.Packages {
		if !scopePkgs[pkg.Types.Name()] {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				fi := gatherFuncInfo(pkg, fn)
				c.analyze(pkg, fn.Body, newFact(), fi, false)
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					lit, ok := n.(*ast.FuncLit)
					if !ok {
						return true
					}
					init := newFact()
					if fi.seeded[lit] {
						init.held[walLogMu] = lit.Pos()
					}
					c.analyze(pkg, lit.Body, init, fi, fi.seeded[lit])
					return true
				})
			}
		}
	}
	c.reportCycles()
	return nil
}

// directLocks is the flow-insensitive set of lock ids a body acquires
// anywhere (including in its non-go function literals), for transitive
// edge propagation.
func (c *checker) directLocks(pkg *analysis.Package, body *ast.BlockStmt) map[string]token.Pos {
	out := map[string]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false // spawned bodies run on their own stack
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, op := lockOp(pkg, call); op == opAcquire {
				if _, seen := out[id]; !seen {
					out[id] = call.Pos()
				}
			}
		}
		return true
	})
	return out
}

// containsBlockingOp reports whether a body directly performs a blocking
// operation: channel receive, default-less select, range over a channel,
// or a Wait() call. Defers and go-spawned literals are excluded — they do
// not block the body's own locked regions.
func containsBlockingOp(pkg *analysis.Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				found = true
			}
		case *ast.RangeStmt:
			if isChanExpr(pkg, n.X) {
				found = true
			}
		case *ast.CallExpr:
			if isWaitCall(pkg, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// analyze runs the dataflow over one function body and reports.
func (c *checker) analyze(pkg *analysis.Package, body *ast.BlockStmt, init *fact, fi *funcInfo, exempt bool) {
	cfg := analysis.NewCFG(body)
	flow := &analysis.Flow[*fact]{
		CFG:   cfg,
		Init:  init,
		Clone: func(f *fact) *fact { return f.clone() },
		Join:  func(dst, src *fact) bool { return dst.join(src) },
		Transfer: func(n ast.Node, f *fact) *fact {
			c.step(pkg, n, f, fi, exempt, false)
			return f
		},
		Branch: func(cond ast.Expr, taken bool, f *fact) *fact {
			return c.refine(pkg, cond, taken, f, fi)
		},
	}
	ins := flow.Run()
	// Replay reachable blocks in index order so diagnostics and edge
	// positions come out deterministic.
	for _, b := range cfg.Blocks {
		entry, ok := ins[b]
		if !ok {
			continue
		}
		f := entry.clone()
		for _, n := range b.Nodes {
			c.step(pkg, n, f, fi, exempt, true)
		}
	}
}

const (
	opNone = iota
	opAcquire
	opRelease
)

// step applies one CFG node's effects to the fact, reporting rule
// violations when report is set. The walk mirrors evaluation order so a
// release earlier in a statement list is seen before a later receive.
func (c *checker) step(pkg *analysis.Package, node ast.Node, f *fact, fi *funcInfo, exempt, report bool) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed separately
		case *ast.DeferStmt:
			for _, a := range n.Call.Args {
				ast.Inspect(a, walk)
			}
			return false // the call itself runs at exit
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				ast.Inspect(a, walk)
			}
			return false
		case *ast.SelectStmt:
			if report && !selectHasDefault(n) {
				c.reportBlocked(pkg, f, fi, n.Pos(), "select")
			}
			return false // comm clauses are separate CFG nodes
		case *ast.RangeStmt:
			// Only the head reaches us as a node; the body has its own
			// blocks.
			ast.Inspect(n.X, walk)
			if report && isChanExpr(pkg, n.X) {
				c.reportBlocked(pkg, f, fi, n.Pos(), "range over channel")
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ast.Inspect(n.X, walk)
				if report && !fi.commRecv[n] {
					c.reportBlocked(pkg, f, fi, n.Pos(), "channel receive")
				}
				return false
			}
		case *ast.CallExpr:
			c.call(pkg, n, f, fi, exempt, report, walk)
			return false
		}
		return true
	}
	ast.Inspect(node, walk)
}

// call handles one call expression in evaluation order: receiver and
// arguments first, then the call's own effect.
func (c *checker) call(pkg *analysis.Package, call *ast.CallExpr, f *fact, fi *funcInfo, exempt, report bool, walk func(ast.Node) bool) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		ast.Inspect(sel.X, walk)
	}
	for _, a := range call.Args {
		ast.Inspect(a, walk)
	}

	if id, op := lockOp(pkg, call); op != opNone {
		if op == opRelease {
			delete(f.held, id)
			return
		}
		if report {
			for _, h := range sortedHeld(f) {
				if h != id {
					c.recordEdge(h, id, call.Pos())
				}
			}
		}
		f.held[id] = call.Pos()
		return
	}

	name := calleeName(call)
	if name == "releaseAll" {
		f.released = true
	}

	if !report {
		return
	}

	if isWaitCall(pkg, call) {
		c.reportBlocked(pkg, f, fi, call.Pos(), name+"() wait")
		if pkg.Types.Name() == "twopl" && fi.callsReleaseAll && isAckWait(pkg, call) && !f.released {
			c.pass.Reportf(call.Pos(), "in %s: durability ack awaited before releaseAll: 2PL locks must be released before waiting on the group-commit fsync", fi.name)
		}
		return
	}

	if enginePkgs[pkg.Types.Name()] && c.isPublisher(pkg, call, fi) && !exempt && !f.durNil && !f.logErr {
		c.pass.Reportf(call.Pos(), "in %s: commit publish outside the durability log callback: pass it to LogCommit (it runs under the log mutex) or guard with dur == nil / LogCommit error != nil", fi.name)
	}

	if callee := analysis.ResolveCallee(pkg.Info, call); callee != nil {
		for _, id := range sortedKeys(c.acquired[callee]) {
			for _, h := range sortedHeld(f) {
				if h != id {
					c.recordEdge(h, id, call.Pos())
				}
			}
		}
		if c.mayBlock[callee] && len(f.held) > 0 {
			c.reportBlocked(pkg, f, fi, call.Pos(), "call to "+callee.Name()+" (may block)")
		}
	}
}

func (c *checker) reportBlocked(pkg *analysis.Package, f *fact, fi *funcInfo, pos token.Pos, what string) {
	if len(f.held) == 0 {
		return
	}
	held := sortedHeld(f)
	c.pass.Reportf(pos, "in %s: %s while holding %s", fi.name, what, strings.Join(held, ", "))
}

func (c *checker) recordEdge(from, to string, pos token.Pos) {
	k := edgeKey{from, to}
	if _, ok := c.edges[k]; !ok {
		c.edges[k] = pos
	}
}

// isPublisher reports whether call invokes the commit publish step: a
// method named publishCommit, or a local function value that this
// declaration passes to LogCommit.
func (c *checker) isPublisher(pkg *analysis.Package, call *ast.CallExpr, fi *funcInfo) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "publishCommit"
	case *ast.Ident:
		if obj := pkg.Info.Uses[fun]; obj != nil {
			return fi.publishers[obj]
		}
	}
	return false
}

// refine strengthens the fact along a conditional edge: `dur == nil` and
// `logErr != nil` tests establish the corresponding must-facts on the
// side where they hold. && and ! are decomposed; everything else leaves
// the fact unchanged.
func (c *checker) refine(pkg *analysis.Package, cond ast.Expr, taken bool, f *fact, fi *funcInfo) *fact {
	out := f
	setDurNil := func() {
		if out == f {
			out = f.clone()
		}
		out.durNil = true
	}
	setLogErr := func() {
		if out == f {
			out = f.clone()
		}
		out.logErr = true
	}
	var apply func(e ast.Expr, taken bool)
	apply = func(e ast.Expr, taken bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			if e.Op == token.NOT {
				apply(e.X, !taken)
			}
		case *ast.BinaryExpr:
			switch e.Op {
			case token.LAND:
				if taken {
					apply(e.X, true)
					apply(e.Y, true)
				}
			case token.LOR:
				if !taken {
					apply(e.X, false)
					apply(e.Y, false)
				}
			case token.EQL, token.NEQ:
				x := e.X
				if isNilIdent(x) {
					x = e.Y
				} else if !isNilIdent(e.Y) {
					return
				}
				isNil := (e.Op == token.EQL) == taken
				if isNil && isDurabilityExpr(pkg, x) {
					setDurNil()
				}
				if !isNil && isLogErrVar(pkg, x, fi) {
					setLogErr()
				}
			}
		}
	}
	apply(cond, taken)
	return out
}

// gatherFuncInfo collects the declaration-scoped context: publisher
// variables, LogCommit error variables, and seeded callback literals.
func gatherFuncInfo(pkg *analysis.Package, fn *ast.FuncDecl) *funcInfo {
	fi := &funcInfo{
		publishers: map[types.Object]bool{},
		logErrVars: map[types.Object]bool{},
		seeded:     map[*ast.FuncLit]bool{},
		commRecv:   map[ast.Node]bool{},
		name:       fn.Name.Name,
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				comm, ok := cl.(*ast.CommClause)
				if !ok || comm.Comm == nil {
					continue
				}
				ast.Inspect(comm.Comm, func(m ast.Node) bool {
					if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						fi.commRecv[u] = true
					}
					return true
				})
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok || calleeName(call) != "LogCommit" || len(n.Lhs) != 2 {
				return true
			}
			if id, ok := n.Lhs[1].(*ast.Ident); ok {
				if obj := pkg.Info.Defs[id]; obj != nil {
					fi.logErrVars[obj] = true
				} else if obj := pkg.Info.Uses[id]; obj != nil {
					fi.logErrVars[obj] = true
				}
			}
		case *ast.CallExpr:
			name := calleeName(n)
			if name == "releaseAll" {
				fi.callsReleaseAll = true
			}
			if !logFuncs[name] {
				return true
			}
			for _, a := range n.Args {
				switch a := ast.Unparen(a).(type) {
				case *ast.FuncLit:
					fi.seeded[a] = true
				case *ast.Ident:
					if name != "LogCommit" {
						continue
					}
					if obj := pkg.Info.Uses[a]; obj != nil {
						if _, ok := obj.Type().Underlying().(*types.Signature); ok {
							fi.publishers[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	return fi
}

// reportCycles finds strongly connected components in the acquisition
// order graph and reports each once, at its earliest edge.
func (c *checker) reportCycles() {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for k := range c.edges {
		adj[k.from] = append(adj[k.from], k.to)
		nodes[k.from], nodes[k.to] = true, true
	}
	for _, succs := range adj {
		sort.Strings(succs)
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	// Tarjan's algorithm, iterative enough for our graph sizes via
	// recursion (lock populations are tiny).
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	for _, scc := range sccs {
		sort.Strings(scc)
		member := map[string]bool{}
		for _, v := range scc {
			member[v] = true
		}
		// Report at the earliest edge inside the component.
		var at token.Pos
		for k, pos := range c.edges {
			if member[k.from] && member[k.to] && (at == token.NoPos || pos < at) {
				at = pos
			}
		}
		c.pass.Reportf(at, "lock-order cycle: %s are acquired in conflicting orders", strings.Join(scc, ", "))
	}
}

// ---- syntactic and type helpers ----

// lockOp classifies a call as a lock acquisition or release and returns
// the lock's canonical id ("pkg.Type.field" for mutex fields,
// "pkg.Type.mu" for Lock/Unlock wrapper methods, "pkg.var" for
// package-level mutexes). Only locks owned by the scope packages count;
// TryLock is conditional and therefore ignored.
func lockOp(pkg *analysis.Package, call *ast.CallExpr) (string, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", opNone
	}
	var op int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opAcquire
	case "Unlock", "RUnlock":
		op = opRelease
	default:
		return "", opNone
	}
	recv := ast.Unparen(sel.X)
	if isMutexType(typeOf(pkg, recv)) {
		// Direct form: <owner>.<field>.Lock() or <pkgvar>.Lock().
		switch x := recv.(type) {
		case *ast.SelectorExpr:
			if name := scopedTypeName(typeOf(pkg, x.X)); name != "" {
				return name + "." + x.Sel.Name, op
			}
		case *ast.Ident:
			if v, ok := pkg.Info.Uses[x].(*types.Var); ok && v.Pkg() != nil &&
				v.Parent() == v.Pkg().Scope() && scopePkgs[v.Pkg().Name()] {
				return v.Pkg().Name() + "." + v.Name(), op
			}
		}
		return "", opNone
	}
	// Wrapper form: a Lock/Unlock method on a scoped type guards that
	// type's own mutex (storage.Object.Lock in the real repo).
	if name := scopedTypeName(typeOf(pkg, recv)); name != "" {
		return name + ".mu", op
	}
	return "", opNone
}

// scopedTypeName returns "pkg.Type" when t (after dereferencing) is a
// named type owned by a scope package, else "".
func scopedTypeName(t types.Type) string {
	named := namedOf(t)
	if named == nil {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !scopePkgs[obj.Pkg().Name()] {
		return ""
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

func typeOf(pkg *analysis.Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func isMutexType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// isWaitCall matches zero-argument methods named Wait: storage.Ack.Wait,
// the WAL's internal ack, and sync.WaitGroup.Wait all block.
func isWaitCall(pkg *analysis.Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" || len(call.Args) != 0 {
		return false
	}
	// Must be a method selection, not a package-qualified function.
	if s, ok := pkg.Info.Selections[sel]; ok {
		_, isFunc := s.Obj().(*types.Func)
		return isFunc
	}
	return false
}

// isAckWait narrows isWaitCall to the storage.Ack interface.
func isAckWait(pkg *analysis.Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok {
		return false
	}
	named := namedOf(s.Recv())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Ack" && obj.Pkg() != nil && obj.Pkg().Name() == "storage"
}

// isDurabilityExpr reports whether e has the storage.Durability interface
// type.
func isDurabilityExpr(pkg *analysis.Package, e ast.Expr) bool {
	named := namedOf(typeOf(pkg, e))
	if named == nil || !types.IsInterface(named) {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Durability" && obj.Pkg() != nil && obj.Pkg().Name() == "storage"
}

func isLogErrVar(pkg *analysis.Package, e ast.Expr, fi *funcInfo) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[id]
	return obj != nil && fi.logErrVars[obj]
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isChanExpr(pkg *analysis.Package, e ast.Expr) bool {
	t := typeOf(pkg, e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cl, ok := c.(*ast.CommClause); ok && cl.Comm == nil {
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

func sortedHeld(f *fact) []string {
	return sortedKeys(f.held)
}

func sortedKeys(m map[string]token.Pos) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
