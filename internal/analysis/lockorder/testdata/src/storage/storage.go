// Package storage is the golden model of the real internal/storage
// surface the lockorder analyzer keys on: Object with Lock/Unlock
// wrapper methods over its own mutex, Store with a directly-locked
// RWMutex, and the Durability/Ack interfaces.
package storage

import "sync"

// Object mirrors storage.Object: the mutex is wrapped by Lock/Unlock
// methods, so acquisitions from other packages resolve to
// "storage.Object.mu".
type Object struct {
	mu sync.Mutex
	v  int64
}

func (o *Object) Lock()   { o.mu.Lock() }
func (o *Object) Unlock() { o.mu.Unlock() }

// Commit publishes a committed value; callers hold the object lock.
func (o *Object) Commit(v int64) { o.v = v }

// Store mirrors storage.Store's directly-locked table mutex.
type Store struct {
	mu      sync.RWMutex
	objects map[int]*Object
}

// Insert adds an object under the table lock.
func (s *Store) Insert(id int, o *Object) {
	s.mu.Lock()
	s.objects[id] = o
	s.mu.Unlock()
}

// TxnCommit mirrors the durability commit record.
type TxnCommit struct{ Txn int }

// Ack mirrors the group-commit acknowledgement handle.
type Ack interface{ Wait() error }

// Durability mirrors the engine-facing durability interface.
type Durability interface {
	LogCommit(rec *TxnCommit, publish func()) (Ack, error)
	LogCreate(id int, apply func() error) error
}
