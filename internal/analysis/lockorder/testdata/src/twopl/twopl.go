// Package twopl is the golden model of the 2PL engine's two commit-path
// contracts: locks are released before the group-commit ack is awaited
// (release-before-ack), and the lock manager hands a request to its
// grant channel only after dropping Engine.mu. The publish step here is
// a local function value passed to LogCommit, the shape the real engine
// uses.
package twopl

import (
	"sync"

	"github.com/epsilondb/epsilondb/internal/analysis/lockorder/testdata/src/storage"
)

// Engine mirrors twopl.Engine: one lock-table mutex.
type Engine struct {
	mu  sync.Mutex
	dur storage.Durability
}

// releaseAll drops the transaction's lock footprint.
func (e *Engine) releaseAll() {
	e.mu.Lock()
	e.mu.Unlock()
}

// Commit is the contract-clean shape: publish through the callback (or
// the fallback paths), release the footprint, then await the fsync.
func (e *Engine) Commit(o *storage.Object, v int64) error {
	publish := func() {
		o.Lock()
		o.Commit(v)
		o.Unlock()
	}
	var ack storage.Ack
	var err error
	if e.dur != nil {
		ack, err = e.dur.LogCommit(&storage.TxnCommit{}, publish)
		if err != nil {
			publish()
		}
	} else {
		publish()
	}
	e.releaseAll()
	if err == nil && ack != nil {
		err = ack.Wait()
	}
	return err
}

// commitAckFirst awaits the fsync while the lock footprint is still
// held: every conflicting transaction then serializes on disk latency.
func (e *Engine) commitAckFirst(o *storage.Object, v int64) error {
	publish := func() {
		o.Lock()
		o.Commit(v)
		o.Unlock()
	}
	ack, err := e.dur.LogCommit(&storage.TxnCommit{}, publish)
	if err == nil && ack != nil {
		err = ack.Wait() // want `durability ack awaited before releaseAll`
	}
	e.releaseAll()
	return err
}

// commitPublishEarly calls the publish value before LogCommit ran.
func (e *Engine) commitPublishEarly(o *storage.Object, v int64) error {
	publish := func() {
		o.Lock()
		o.Commit(v)
		o.Unlock()
	}
	publish() // want `commit publish outside the durability log callback`
	ack, err := e.dur.LogCommit(&storage.TxnCommit{}, publish)
	e.releaseAll()
	return waitIfSet(ack, err)
}

// acquire hands the request to the grant channel only after dropping
// Engine.mu — receiving under it would deadlock against the releaser.
func (e *Engine) acquire(granted chan struct{}) {
	e.mu.Lock()
	e.mu.Unlock()
	<-granted
}

// acquireUnderLock is the flow-sensitive negative: same receive, but the
// mutex is still held on this path.
func (e *Engine) acquireUnderLock(granted chan struct{}) {
	e.mu.Lock()
	<-granted // want `channel receive while holding twopl.Engine.mu`
	e.mu.Unlock()
}

func waitIfSet(ack storage.Ack, err error) error {
	if err == nil && ack != nil {
		return ack.Wait()
	}
	return err
}
