// Package wal is the golden model of the WAL's locking: the log mutex
// that durability callbacks run under, the release-before-receive
// discipline on the committer channels, and — as negative cases — a
// receive under the log mutex and a lock-order cycle between the log and
// its index.
package wal

import (
	"sync"

	"github.com/epsilondb/epsilondb/internal/analysis/lockorder/testdata/src/storage"
)

// Log mirrors wal.Log.
type Log struct {
	mu    sync.Mutex
	idx   index
	store *storage.Store
	done  chan struct{}
}

type index struct {
	mu sync.Mutex
}

// LogCommit runs the publish callback under the log mutex — the contract
// the engines' commit paths rely on.
func (l *Log) LogCommit(rec *storage.TxnCommit, publish func()) (storage.Ack, error) {
	l.mu.Lock()
	publish()
	l.mu.Unlock()
	return nil, nil
}

// Close releases the log mutex before joining the committer: OK.
func (l *Log) Close() {
	l.mu.Lock()
	l.mu.Unlock()
	<-l.done
}

// closeUnderLock joins the committer while still holding the log mutex:
// the committer needs that mutex to make progress, so this deadlocks.
func (l *Log) closeUnderLock() {
	l.mu.Lock()
	<-l.done // want `channel receive while holding wal.Log.mu`
	l.mu.Unlock()
}

// selectUnderLock blocks in a default-less select under the log mutex.
func (l *Log) selectUnderLock() {
	select { // OK: nothing held yet
	case <-l.done:
	default:
	}
	l.mu.Lock()
	select { // want `select while holding wal.Log.mu`
	case <-l.done:
	}
	l.mu.Unlock()
}

// lockIndex nests the index mutex inside the log mutex; together with
// lockIndexReversed below this closes a cycle, reported once at the
// component's earliest edge (the acquisition on the next line).
func (l *Log) lockIndex() {
	l.mu.Lock()
	l.idx.mu.Lock() // want `lock-order cycle: wal.Log.mu, wal.index.mu are acquired in conflicting orders`
	l.idx.mu.Unlock()
	l.mu.Unlock()
}

// lockIndexReversed acquires the same pair the other way around.
func (l *Log) lockIndexReversed() {
	l.idx.mu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	l.idx.mu.Unlock()
}
