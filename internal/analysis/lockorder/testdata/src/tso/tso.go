// Package tso is the golden model of the timestamp-ordering engine's
// commit path for the publish-under-log-mutex contract: publishCommit may
// run inside the LogCommit callback, on the durability-off path, or on
// the log-error fallback path — anywhere else is a violation.
package tso

import (
	"github.com/epsilondb/epsilondb/internal/analysis/lockorder/testdata/src/storage"
)

// Engine mirrors tso.Engine.
type Engine struct {
	dur  storage.Durability
	objs []*storage.Object
}

// publishCommit installs the committed values; the analyzer treats any
// method of this name as the publish step.
func (e *Engine) publishCommit(v int64) {
	for _, o := range e.objs {
		o.Lock()
		o.Commit(v)
		o.Unlock()
	}
}

// Commit follows the contract on every path: the callback runs under the
// WAL's log mutex, the else-branch knows durability is off, and the
// error branch knows the log write already failed.
func (e *Engine) Commit(v int64) error {
	var ack storage.Ack
	var err error
	if d := e.dur; d != nil {
		rec := &storage.TxnCommit{}
		ack, err = d.LogCommit(rec, func() { e.publishCommit(v) })
		if err != nil {
			e.publishCommit(v)
		}
	} else {
		e.publishCommit(v)
	}
	if err == nil && ack != nil {
		err = ack.Wait()
	}
	return err
}

// commitEager publishes before the commit record is logged: a crash
// between the two would expose unlogged state.
func (e *Engine) commitEager(v int64) error {
	e.publishCommit(v) // want `commit publish outside the durability log callback`
	rec := &storage.TxnCommit{}
	ack, err := e.dur.LogCommit(rec, func() {})
	if err != nil {
		return err
	}
	return ack.Wait()
}

// commitUnguarded publishes on the success path after LogCommit returned,
// outside the callback: the publish races the group-commit fsync.
func (e *Engine) commitUnguarded(v int64) error {
	rec := &storage.TxnCommit{}
	ack, err := e.dur.LogCommit(rec, func() { e.publishCommit(v) })
	if err == nil {
		e.publishCommit(v) // want `commit publish outside the durability log callback`
	}
	return waitIfSet(ack, err)
}

func waitIfSet(ack storage.Ack, err error) error {
	if err == nil && ack != nil {
		return ack.Wait()
	}
	return err
}
