package lockorder_test

import (
	"testing"

	"github.com/epsilondb/epsilondb/internal/analysis/analysistest"
	"github.com/epsilondb/epsilondb/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "storage", "wal", "tso", "twopl")
}
