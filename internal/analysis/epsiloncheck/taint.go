package epsiloncheck

// Out-of-core taint tracking (DESIGN.md §7): an inconsistency value
// pulled out of the accounting machinery through a read accessor may be
// compared, stored, returned, or handed to another function — but not
// recombined with arithmetic. The paper's control loop depends on every
// derived bound passing back through the Accumulator's saturating,
// bottom-up checks; a caller that computes `remaining - d` by hand
// silently drops the saturation and the group levels. The analysis is a
// forward may-taint dataflow over the CFG: accessor results taint the
// locals they are assigned to, assignments propagate and reassignments
// clear, and arithmetic on a tainted operand is reported with the
// accessor the value came from.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/epsilondb/epsilondb/internal/analysis"
)

// accessorRule names the read accessors of one protected type whose
// results carry inconsistency values. Matching is by package, type, and
// method name, like the write rules, so goldens can model the real types.
type accessorRule struct {
	pkg, typ string
	methods  map[string]bool
}

var taintSources = []accessorRule{
	{"core", "Accumulator", sset("Total", "Used", "Limit", "Remaining")},
	{"storage", "Object", sset("OIL", "OEL", "ExportDistance")},
}

func sset(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// taintFact maps each tainted local to the accessor its value traces to.
type taintFact map[types.Object]string

// checkTaint runs the taint dataflow over one function body, then over
// every function literal it contains (each literal is its own CFG; taint
// does not flow through captures).
func checkTaint(pass *analysis.Pass, body *ast.BlockStmt) {
	analyzeTaint(pass, body)
	for _, lit := range directLits(body) {
		checkTaint(pass, lit.Body)
	}
}

// directLits returns the function literals in body that are not nested
// inside another literal.
func directLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		return true
	})
	return lits
}

func analyzeTaint(pass *analysis.Pass, body *ast.BlockStmt) {
	g := analysis.NewCFG(body)
	fl := &analysis.Flow[taintFact]{
		CFG:  g,
		Init: taintFact{},
		Clone: func(f taintFact) taintFact {
			out := make(taintFact, len(f))
			for k, v := range f {
				out[k] = v
			}
			return out
		},
		Join: func(dst, src taintFact) bool {
			changed := false
			for k, v := range src {
				if _, ok := dst[k]; !ok {
					dst[k] = v
					changed = true
				}
			}
			return changed
		},
		Transfer: func(n ast.Node, f taintFact) taintFact {
			taintTransfer(pass, n, f)
			return f
		},
	}
	ins := fl.Run()

	// Replay each reachable block once, in construction order, reporting
	// arithmetic with the fact in force at each node.
	blocks := make([]*analysis.Block, 0, len(ins))
	for b := range ins {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Index < blocks[j].Index })
	for _, b := range blocks {
		fl.Replay(b, ins[b], func(n ast.Node, f taintFact) {
			reportTaintedArith(pass, n, f)
		})
	}
}

// taintTransfer applies one CFG node's effect on the taint fact. Only
// assignments and declarations move taint; everything else is a read.
func taintTransfer(pass *analysis.Pass, n ast.Node, f taintFact) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// Compound assignment: the target keeps its taint and absorbs
			// the operand's.
			src := exprSource(pass, f, s.Lhs[0])
			if src == "" {
				src = exprSource(pass, f, s.Rhs[0])
			}
			setTaint(pass, f, s.Lhs[0], src)
			return
		}
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			// Multi-value call: every target shares the source's taint.
			src := exprSource(pass, f, s.Rhs[0])
			for _, lhs := range s.Lhs {
				setTaint(pass, f, lhs, src)
			}
			return
		}
		for i, lhs := range s.Lhs {
			if i < len(s.Rhs) {
				setTaint(pass, f, lhs, exprSource(pass, f, s.Rhs[i]))
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var src string
				switch {
				case len(vs.Values) == len(vs.Names):
					src = exprSource(pass, f, vs.Values[i])
				case len(vs.Values) == 1:
					src = exprSource(pass, f, vs.Values[0])
				}
				if obj := pass.Pkg.Info.Defs[name]; obj != nil {
					if src != "" {
						f[obj] = src
					} else {
						delete(f, obj)
					}
				}
			}
		}
	}
}

// setTaint records (or clears, when src is empty) the taint of an
// assignment target. Only plain identifiers are tracked: a write through
// a field or index leaves the flow, and the write rules own that case.
func setTaint(pass *analysis.Pass, f taintFact, lhs ast.Expr, src string) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pass.Pkg.Info.Defs[id]
	if obj == nil {
		obj = pass.Pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if src != "" {
		f[obj] = src
	} else {
		delete(f, obj)
	}
}

// exprSource reports the accessor a value expression traces to, or "".
// Calls are boundaries: handing a tainted value to a function is the
// blessed flow, so arguments are not inspected — except conversions,
// which keep the operand's identity.
func exprSource(pass *analysis.Pass, f taintFact, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := pass.Pkg.Info.Uses[e]; obj != nil {
			return f[obj]
		}
	case *ast.ParenExpr:
		return exprSource(pass, f, e.X)
	case *ast.UnaryExpr:
		return exprSource(pass, f, e.X)
	case *ast.BinaryExpr:
		if src := exprSource(pass, f, e.X); src != "" {
			return src
		}
		return exprSource(pass, f, e.Y)
	case *ast.CallExpr:
		if src := accessorSource(pass, e); src != "" {
			return src
		}
		if tv, ok := pass.Pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return exprSource(pass, f, e.Args[0])
		}
	}
	return ""
}

// accessorSource reports whether call invokes a taint-source accessor,
// returning its qualified name.
func accessorSource(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection := pass.Pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return ""
	}
	m := selection.Obj()
	typ := namedName(selection.Recv())
	if typ == "" || m.Pkg() == nil {
		return ""
	}
	for _, a := range taintSources {
		if a.pkg == m.Pkg().Name() && a.typ == typ && a.methods[m.Name()] {
			return a.pkg + "." + a.typ + "." + m.Name()
		}
	}
	return ""
}

// reportTaintedArith walks one CFG node and reports arithmetic whose
// operands carry inconsistency taint. Only the outermost tainted
// expression is reported; compound statements that the CFG re-expands
// elsewhere (range bodies, selects, literals) are not descended into.
func reportTaintedArith(pass *analysis.Pass, n ast.Node, f taintFact) {
	switch s := n.(type) {
	case *ast.RangeStmt:
		// Head node carries the whole statement; the body has its own
		// blocks. Only the range expression is evaluated here.
		reportTaintedArith(pass, s.X, f)
		return
	case *ast.SelectStmt:
		// Clause bodies and comm statements appear as their own nodes.
		return
	case *ast.IncDecStmt:
		if src := exprSource(pass, f, s.X); src != "" {
			pass.Reportf(s.Pos(), taintMessage(src))
		}
		return
	case *ast.AssignStmt:
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			if src := exprSource(pass, f, s.Lhs[0]); src != "" {
				pass.Reportf(s.Pos(), taintMessage(src))
				return
			}
			if src := exprSource(pass, f, s.Rhs[0]); src != "" {
				pass.Reportf(s.Pos(), taintMessage(src))
				return
			}
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if !arithOps[m.Op] {
				return true
			}
			src := exprSource(pass, f, m.X)
			if src == "" {
				src = exprSource(pass, f, m.Y)
			}
			if src != "" {
				pass.Reportf(m.Pos(), taintMessage(src))
				return false
			}
		}
		return true
	})
}

func taintMessage(src string) string {
	return "raw arithmetic on an inconsistency value from " + src +
		" outside internal/core: route the bound through the accounting helpers"
}
