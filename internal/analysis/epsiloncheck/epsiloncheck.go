// Package epsiloncheck enforces the ESR accounting discipline: the state
// that meters imported/exported inconsistency — the heart of the
// Kamath/Ramamritham control loop — may only move through the designated
// accounting helpers. Any other assignment to those fields bypasses the
// bottom-up bounds check of §5.3.1 and silently breaks the epsilon
// guarantee, so it is reported as an error.
//
// The protected state and its writers:
//
//	core.Accumulator.used / .limits      — NewAccumulator, Init, Admit, Reset
//	core.AggregateTracker.minmax / .order — NewAggregateTracker, Observe, Reset
//	storage.Object.oil / .oel            — NewObject, SetLimits
//	storage.Object.maxQueryReadTS / .maxUpdateReadTS — NewObject, RecordRead
//
// Matching is by declaring package name, type name, and field name, so
// the golden testdata packages can model the real ones without importing
// them. Because every protected field is unexported, a violation can only
// originate inside the declaring package; the analyzer therefore gives
// complete coverage even under per-package (go vet -vettool) execution.
//
// Two flow rules sharpen the write rule:
//
//   - In the declaring package, raw arithmetic on a protected field (a
//     read feeding +, -, *, / or %) is confined to the allowed writers
//     plus a per-rule arithmetic allowlist (e.g. Accumulator.Remaining,
//     which computes the root headroom). Any other in-package arithmetic
//     is a bounds computation happening outside the accounting helpers.
//
//   - Outside internal/core, inconsistency values obtained from the
//     accounting accessors (Accumulator.Total/Used/Limit/Remaining,
//     Object.OIL/OEL/ExportDistance) are tracked through local variables
//     with a forward taint dataflow over the CFG (see taint.go). Raw
//     arithmetic on a tainted value is reported; comparisons and passing
//     the value to another function — the blessed flows — are not.
//     Because core.Distance is an alias of int64, provenance, not type
//     identity, is what the analysis tracks.
package epsiloncheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/epsilondb/epsilondb/internal/analysis"
)

// Analyzer is the epsiloncheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "epsiloncheck",
	Doc:  "inconsistency counters may only be written by the accounting helpers",
	Run:  run,
}

// rule protects the fields of one type.
type rule struct {
	pkg     string   // declaring package name
	typ     string   // declaring named type
	fields  []string // protected fields
	writers []string // functions/methods allowed to write them
	arith   []string // additional functions allowed raw arithmetic on them
}

var rules = []rule{
	{"core", "Accumulator", []string{"used", "limits"}, []string{"NewAccumulator", "Init", "Admit", "Reset"}, []string{"Remaining"}},
	{"core", "AggregateTracker", []string{"minmax", "order"}, []string{"NewAggregateTracker", "Observe", "Reset"}, nil},
	{"storage", "Object", []string{"oil", "oel"}, []string{"NewObject", "SetLimits"}, nil},
	{"storage", "Object", []string{"maxQueryReadTS", "maxUpdateReadTS"}, []string{"NewObject", "RecordRead"}, nil},
}

// arithOps are the operators that count as raw arithmetic. Comparisons
// are deliberately absent: checking a bound is reading it, not computing
// a new one.
var arithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true,
	token.QUO: true, token.REM: true,
}

// findRule returns the rule protecting (pkg, typ, field), if any.
func findRule(pkg, typ, field string) *rule {
	for i := range rules {
		r := &rules[i]
		if r.pkg != pkg || r.typ != typ {
			continue
		}
		for _, f := range r.fields {
			if f == field {
				return r
			}
		}
	}
	return nil
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	taint := pkg.Types.Name() != "core"
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, fn)
				if taint {
					checkTaint(pass, fn.Body)
				}
			}
		}
	}
	return nil
}

// checkFunc walks one function body for writes to protected fields.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, fn, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, fn, n.X)
		case *ast.UnaryExpr:
			// &x.field escapes the field for arbitrary later writes.
			if n.Op == token.AND {
				checkWrite(pass, fn, n.X)
			}
		case *ast.BinaryExpr:
			if arithOps[n.Op] {
				checkArith(pass, fn, n.X)
				checkArith(pass, fn, n.Y)
			}
		case *ast.CompositeLit:
			checkCompositeLit(pass, fn, n)
		}
		return true
	})
}

// checkWrite reports lhs if it denotes a protected field and fn is not an
// allowed writer.
func checkWrite(pass *analysis.Pass, fn *ast.FuncDecl, lhs ast.Expr) {
	sel := baseSelector(lhs)
	if sel == nil {
		return
	}
	selection := pass.Pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	field := selection.Obj()
	typ := namedName(selection.Recv())
	if typ == "" || field.Pkg() == nil {
		return
	}
	r := findRule(field.Pkg().Name(), typ, field.Name())
	if r == nil {
		return
	}
	if allowed(r, fn) {
		return
	}
	pass.Reportf(lhs.Pos(),
		"inconsistency accounting field %s.%s.%s written outside its accounting helpers (allowed: %s)",
		r.pkg, r.typ, field.Name(), strings.Join(r.writers, ", "))
}

// checkArith reports operand if it denotes a protected field read by an
// arithmetic operator and fn may neither write the field nor compute
// with it (the rule's arith allowlist).
func checkArith(pass *analysis.Pass, fn *ast.FuncDecl, operand ast.Expr) {
	sel := baseSelector(operand)
	if sel == nil {
		return
	}
	selection := pass.Pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	field := selection.Obj()
	typ := namedName(selection.Recv())
	if typ == "" || field.Pkg() == nil {
		return
	}
	r := findRule(field.Pkg().Name(), typ, field.Name())
	if r == nil || allowed(r, fn) || allowedArith(r, fn) {
		return
	}
	pass.Reportf(operand.Pos(),
		"raw arithmetic on inconsistency accounting field %s.%s.%s outside its accounting helpers (allowed: %s)",
		r.pkg, r.typ, field.Name(), strings.Join(append(append([]string{}, r.writers...), r.arith...), ", "))
}

// checkCompositeLit reports protected fields initialized by keyed
// composite literals outside the allowed writers.
func checkCompositeLit(pass *analysis.Pass, fn *ast.FuncDecl, lit *ast.CompositeLit) {
	tv, ok := pass.Pkg.Info.Types[ast.Expr(lit)]
	if !ok {
		return
	}
	typ := namedName(tv.Type)
	if typ == "" {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		r := findRule(pass.Pkg.Types.Name(), typ, key.Name)
		if r == nil || allowed(r, fn) {
			continue
		}
		pass.Reportf(kv.Pos(),
			"inconsistency accounting field %s.%s.%s written outside its accounting helpers (allowed: %s)",
			r.pkg, r.typ, key.Name, strings.Join(r.writers, ", "))
	}
}

// allowed reports whether fn is one of the rule's permitted writers.
func allowed(r *rule, fn *ast.FuncDecl) bool {
	for _, w := range r.writers {
		if fn.Name.Name == w {
			return true
		}
	}
	return false
}

// allowedArith reports whether fn is on the rule's arithmetic allowlist.
func allowedArith(r *rule, fn *ast.FuncDecl) bool {
	for _, w := range r.arith {
		if fn.Name.Name == w {
			return true
		}
	}
	return false
}

// baseSelector unwraps index/star/paren wrappers down to the selector
// expression naming a field, e.g. a.used[g] -> a.used.
func baseSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// namedName returns the name of the named struct type behind t (through
// pointers), or "".
func namedName(t types.Type) string {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x.Obj().Name()
		default:
			return ""
		}
	}
}
