package epsiloncheck_test

import (
	"testing"

	"github.com/epsilondb/epsilondb/internal/analysis/analysistest"
	"github.com/epsilondb/epsilondb/internal/analysis/epsiloncheck"
)

func TestEpsiloncheck(t *testing.T) {
	analysistest.Run(t, "testdata", epsiloncheck.Analyzer, "core", "storage", "client")
}
