// Package client models an engine-side consumer of the accounting
// accessors: the flow-sensitive taint cases for epsiloncheck. Reading,
// comparing, storing, returning, and passing an inconsistency value to a
// helper are all blessed flows; arithmetic on one is not.
package client

import (
	"github.com/epsilondb/epsilondb/internal/analysis/epsiloncheck/testdata/src/core"
	"github.com/epsilondb/epsilondb/internal/analysis/epsiloncheck/testdata/src/storage"
)

// report reads, compares, and routes the value back through a helper:
// no diagnostics.
func report(a *core.Accumulator, o *storage.Object) (int64, bool) {
	d := a.Total()
	if d > o.OIL() {
		return d, false
	}
	return d, a.Admit(0, d)
}

// scaled computes with a tainted local directly.
func scaled(a *core.Accumulator) int64 {
	d := a.Total()
	return d * 2 // want `raw arithmetic on an inconsistency value from core\.Accumulator\.Total`
}

// headroom misuses the sanctioned accessor's result.
func headroom(a *core.Accumulator) int64 {
	return a.Remaining() - 1 // want `raw arithmetic on an inconsistency value from core\.Accumulator\.Remaining`
}

// propagated carries taint through a plain assignment and a compound one.
func propagated(o *storage.Object) int64 {
	lim := o.OEL()
	copied := lim
	copied += 3 // want `raw arithmetic on an inconsistency value from storage\.Object\.OEL`
	return copied
}

// bumped increments a tainted local.
func bumped(o *storage.Object) int64 {
	lim := o.OIL()
	lim++ // want `raw arithmetic on an inconsistency value from storage\.Object\.OIL`
	return lim
}

// reassigned is the flow-sensitive case: overwriting the local with a
// clean value on every path clears the taint.
func reassigned(a *core.Accumulator) int64 {
	d := a.Total()
	if d > 10 {
		return d
	}
	d = 0
	return d + 1 // clean: the accessor's value was overwritten
}

// merged is the may-join case: tainted on one branch only is still
// tainted after the join.
func merged(a *core.Accumulator, cond bool) int64 {
	var d int64
	if cond {
		d = a.Total()
	}
	return d + 1 // want `raw arithmetic on an inconsistency value from core\.Accumulator\.Total`
}

// converted keeps identity through a type conversion.
func converted(a *core.Accumulator) float64 {
	f := float64(a.Total())
	return f / 2 // want `raw arithmetic on an inconsistency value from core\.Accumulator\.Total`
}

// exported taints through the multi-valued accessor.
func exported(o *storage.Object, v int64) int64 {
	d, ok := o.ExportDistance(v)
	if !ok {
		return 0
	}
	return d / 2 // want `raw arithmetic on an inconsistency value from storage\.Object\.ExportDistance`
}
