// Package core is the golden model of the real internal/core accounting
// types for the epsiloncheck analyzer: same package name, type names, and
// field names, so the analyzer's rules match without importing the real
// package.
package core

// Distance mirrors core.Distance.
type Distance = int64

// Accumulator mirrors the hierarchical inconsistency accumulator.
type Accumulator struct {
	limits []Distance
	used   []Distance
	path   []int
}

// NewAccumulator is an allowed writer.
func NewAccumulator(n int) *Accumulator {
	a := &Accumulator{limits: make([]Distance, n), used: make([]Distance, n)}
	a.limits[0] = 42
	return a
}

// Init is an allowed writer: the in-place (allocation-free) form of
// NewAccumulator used by embedded accumulators.
func (a *Accumulator) Init(n int) {
	a.limits = make([]Distance, n)
	a.used = make([]Distance, n)
}

// Admit is an allowed writer: the bounds-check accounting path.
func (a *Accumulator) Admit(g int, d Distance) bool {
	if a.used[g]+d > a.limits[g] {
		return false
	}
	a.used[g] += d
	return true
}

// Reset is an allowed writer.
func (a *Accumulator) Reset() {
	for i := range a.used {
		a.used[i] = 0
	}
}

// Total only reads accounting state: no diagnostic.
func (a *Accumulator) Total() Distance { return a.used[0] }

// Remaining is on the arithmetic allowlist: its raw subtraction over the
// protected slices is the sanctioned headroom computation.
func (a *Accumulator) Remaining() Distance {
	return a.limits[0] - a.used[0]
}

// headroomByHand recomputes the bound outside the allowlist: both
// protected operands are flagged.
func (a *Accumulator) headroomByHand() Distance {
	return a.limits[0] - a.used[0] // want `raw arithmetic on inconsistency accounting field core\.Accumulator\.limits` `raw arithmetic on inconsistency accounting field core\.Accumulator\.used`
}

// ForceCharge bypasses the bounds check: every mutation is flagged.
func (a *Accumulator) ForceCharge(g int, d Distance) {
	a.used[g] += d  // want `accounting field core\.Accumulator\.used written outside`
	a.limits[g] = 0 // want `accounting field core\.Accumulator\.limits written outside`
}

// Drain leaks a pointer to the accounting array, defeating the analyzer's
// visibility: taking the address counts as a write.
func (a *Accumulator) Drain() *Distance {
	return &a.used[0] // want `accounting field core\.Accumulator\.used written outside`
}

// rebuild constructs an Accumulator outside the allowed writers.
func rebuild() *Accumulator {
	a := new(Accumulator)
	a.used = nil // want `accounting field core\.Accumulator\.used written outside`
	return a
}

// AggregateTracker mirrors the §5.3.2 aggregate envelope tracker.
type AggregateTracker struct {
	minmax map[int][2]int64
	order  []int
}

// NewAggregateTracker is an allowed writer.
func NewAggregateTracker() *AggregateTracker {
	return &AggregateTracker{minmax: make(map[int][2]int64)}
}

// Observe is an allowed writer.
func (t *AggregateTracker) Observe(obj int, v int64) {
	if _, ok := t.minmax[obj]; !ok {
		t.order = append(t.order, obj)
	}
	t.minmax[obj] = [2]int64{v, v}
}

// Forget drops one observation outside Reset: flagged, because a
// selectively forgotten envelope under-reports result inconsistency.
func (t *AggregateTracker) Forget(obj int) {
	t.order = t.order[:0]                    // want `accounting field core\.AggregateTracker\.order written outside`
	t.minmax = make(map[int][2]int64)        // want `accounting field core\.AggregateTracker\.minmax written outside`
	_ = &AggregateTracker{order: []int{obj}} // want `accounting field core\.AggregateTracker\.order written outside`
}
