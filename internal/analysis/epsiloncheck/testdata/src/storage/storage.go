// Package storage is the golden model of the real internal/storage
// object for the epsiloncheck analyzer: OIL/OEL and the read-timestamp
// maxima may only move through their accounting helpers.
package storage

// Object mirrors the fields epsiloncheck protects on storage.Object.
type Object struct {
	id  int
	oil int64
	oel int64

	maxQueryReadTS  uint64
	maxUpdateReadTS uint64
}

// NewObject is an allowed writer.
func NewObject(id int, oil, oel int64) *Object {
	return &Object{id: id, oil: oil, oel: oel}
}

// SetLimits is an allowed writer.
func (o *Object) SetLimits(oil, oel int64) {
	o.oil = oil
	o.oel = oel
}

// RecordRead is an allowed writer.
func (o *Object) RecordRead(ts uint64, fromQuery bool) {
	if fromQuery {
		if ts > o.maxQueryReadTS {
			o.maxQueryReadTS = ts
		}
	} else if ts > o.maxUpdateReadTS {
		o.maxUpdateReadTS = ts
	}
}

// OIL only reads: no diagnostic.
func (o *Object) OIL() int64 { return o.oil }

// OEL only reads: no diagnostic.
func (o *Object) OEL() int64 { return o.oel }

// ExportDistance mirrors the multi-valued accessor; the model computes
// nothing from the protected fields.
func (o *Object) ExportDistance(v int64) (int64, bool) { return v, v != 0 }

// loosen widens the object's limits outside SetLimits: flagged.
func (o *Object) loosen() {
	o.oel++ // want `accounting field storage\.Object\.oel written outside`
}

// rewind moves a read-timestamp maximum backwards outside RecordRead:
// flagged, because it would re-admit late writes as consistent.
func (o *Object) rewind() {
	o.maxQueryReadTS = 0 // want `accounting field storage\.Object\.maxQueryReadTS written outside`
	o.id = 0             // unprotected field: no diagnostic
}
