package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the slice of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Error      *listError
}

type listError struct {
	Err string
}

// Load lists the packages matching patterns (resolved relative to dir),
// parses and typechecks every non-standard one, and returns them as a
// Program. Dependencies are resolved from compiler export data produced
// by `go list -export`, the same mechanism `go vet` uses, so loading
// works offline and never re-typechecks the standard library from source.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go %v: %v\n%s", args, err, stderr.String())
	}

	var listed []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}

	// Export data for every dependency, keyed by canonical import path.
	exports := make(map[string]string)
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	prog := &Program{Fset: fset}
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	if len(prog.Packages) == 0 {
		return nil, fmt.Errorf("analysis: patterns %v matched no non-standard packages", patterns)
	}
	return prog, nil
}

// typecheck parses and checks one listed package against export data.
func typecheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	names := append(append([]string{}, lp.GoFiles...), lp.CgoFiles...)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typechecking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
