// Package goleak checks goroutine ownership: every `go` statement must
// spawn a function with a reachable termination path. A goroutine whose
// body's only steady state is an unbreakable loop — `for {}` with no
// reachable break or return, or `for { select { ... } }` where no case
// leaves the loop — can never be shut down, survives Close/Shutdown, and
// accumulates across reconnects and test runs.
//
// The check is intraprocedural and structural: it asks whether the CFG's
// exit is reachable, not whether the program ever takes that path. A
// polling loop guarded by a condition or a select with a quit-channel
// case therefore passes; the analyzer's job is to force every spawn to
// HAVE a shutdown edge, and the fault-injection harness's job is to
// exercise it. Spawns of function values and interface methods are
// skipped — there is no body to inspect.
package goleak

import (
	"go/ast"

	"github.com/epsilondb/epsilondb/internal/analysis"
)

// Analyzer is the goleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name:         "goleak",
	Doc:          "every go statement must spawn a function with a reachable termination path",
	ProgramLevel: true,
	Run:          run,
}

func run(pass *analysis.Pass) error {
	graph := analysis.BuildCallGraph(pass.Program)
	for _, pkg := range pass.Program.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				check(pass, pkg, graph, g)
				return true
			})
		}
	}
	return nil
}

func check(pass *analysis.Pass, pkg *analysis.Package, graph *analysis.CallGraph, g *ast.GoStmt) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if !analysis.NewCFG(fun.Body).Terminates() {
			pass.Reportf(g.Pos(), "goroutine has no reachable termination path: add a quit/stop case that returns or breaks the loop")
		}
	default:
		callee := analysis.ResolveCallee(pkg.Info, g.Call)
		if callee == nil {
			return // function value or interface method: no body to inspect
		}
		src, ok := graph.Decls[callee]
		if !ok {
			return // body not loaded (other module, export-data only)
		}
		if !analysis.NewCFG(src.Decl.Body).Terminates() {
			pass.Reportf(g.Pos(), "goroutine %s has no reachable termination path: add a quit/stop case that returns or breaks the loop", callee.Name())
		}
	}
}
