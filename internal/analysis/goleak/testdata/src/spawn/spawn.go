// Package spawn exercises the goleak analyzer: every `go` statement
// must spawn a body whose CFG can reach its exit.
package spawn

import "time"

// forever has no termination path at all.
func forever() {
	for {
		time.Sleep(time.Millisecond)
	}
}

// pollUntil exits when its condition turns false: a conditional loop
// always has the exit edge.
func pollUntil(done *bool) {
	for !*done {
		time.Sleep(time.Millisecond)
	}
}

// serve drains its channel until a quit signal returns out of the loop.
func serve(work chan int, quit chan struct{}) {
	for {
		select {
		case <-work:
		case <-quit:
			return
		}
	}
}

func spawnAll(work chan int, quit chan struct{}, done *bool) {
	go forever() // want `goroutine forever has no reachable termination path`
	go pollUntil(done)
	go serve(work, quit)

	go func() { // want `goroutine has no reachable termination path`
		for {
			select {
			case <-work:
			}
		}
	}()

	go func() {
		for {
			select {
			case <-work:
			case <-quit:
				return
			}
		}
	}()

	go func() { // want `goroutine has no reachable termination path`
		select {}
	}()

	go func() {
		for {
			if *done {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}()
}
