package goleak_test

import (
	"testing"

	"github.com/epsilondb/epsilondb/internal/analysis/analysistest"
	"github.com/epsilondb/epsilondb/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, "testdata", goleak.Analyzer, "spawn")
}
