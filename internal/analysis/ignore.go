package analysis

// //lint:ignore — the suppression grammar (DESIGN.md §7). A directive
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses diagnostics from the named analyzers on the line it
// annotates: its own line when it trails code, the line directly below
// when it stands alone. The reason is mandatory: a suppression without a
// recorded justification is itself reported (analyzer "lint"), so `make
// lint` cannot be quieted silently. Suppressed diagnostics are counted
// and surfaced by `esr-lint -json` so CI can audit what is being waived.

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool
	reason    string
	pos       token.Position
}

const ignorePrefix = "lint:ignore"

// ignoreIndex maps filename -> line -> directives covering that line.
type ignoreIndex map[string]map[int][]*ignoreDirective

// buildIgnoreIndex scans every file's comments for lint:ignore
// directives. Malformed directives (no analyzers, or no reason) are
// returned as diagnostics.
func buildIgnoreIndex(prog *Program) (ignoreIndex, []Diagnostic) {
	idx := make(ignoreIndex)
	var malformed []Diagnostic
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			codeCol := firstCodeColumns(prog, f)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
					names, reason, ok := splitIgnore(rest)
					if !ok {
						malformed = append(malformed, Diagnostic{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer>[,<analyzer>] <reason>`",
						})
						continue
					}
					d := &ignoreDirective{analyzers: names, reason: reason, pos: pos}
					lines := idx[pos.Filename]
					if lines == nil {
						lines = make(map[int][]*ignoreDirective)
						idx[pos.Filename] = lines
					}
					if col, hasCode := codeCol[pos.Line]; hasCode && col < pos.Column {
						// Trailing form: code precedes the comment, so the
						// directive annotates its own line only.
						lines[pos.Line] = append(lines[pos.Line], d)
					} else {
						// Standalone form: the directive annotates the
						// line below it.
						lines[pos.Line+1] = append(lines[pos.Line+1], d)
					}
				}
			}
		}
	}
	return idx, malformed
}

// firstCodeColumns maps each source line of f to the smallest column at
// which a non-comment node starts, distinguishing trailing directives
// (code before them on the line) from standalone ones.
func firstCodeColumns(prog *Program, f *ast.File) map[int]int {
	cols := make(map[int]int)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		pos := prog.Fset.Position(n.Pos())
		if cur, ok := cols[pos.Line]; !ok || pos.Column < cur {
			cols[pos.Line] = pos.Column
		}
		return true
	})
	return cols
}

// splitIgnore parses "<names> <reason>"; names is a comma-separated
// analyzer list.
func splitIgnore(s string) (names map[string]bool, reason string, ok bool) {
	fields := strings.SplitN(s, " ", 2)
	if len(fields) < 2 || strings.TrimSpace(fields[1]) == "" {
		return nil, "", false
	}
	names = make(map[string]bool)
	for _, n := range strings.Split(fields[0], ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, "", false
		}
		names[n] = true
	}
	return names, strings.TrimSpace(fields[1]), true
}

// suppress partitions diags into kept and suppressed under the index.
func (idx ignoreIndex) suppress(diags []Diagnostic) (kept, suppressed []Diagnostic) {
	for _, d := range diags {
		matched := false
		for _, dir := range idx[d.Pos.Filename][d.Pos.Line] {
			if dir.analyzers[d.Analyzer] {
				matched = true
				break
			}
		}
		if matched {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}
