package tracecomplete_test

import (
	"testing"

	"github.com/epsilondb/epsilondb/internal/analysis/analysistest"
	"github.com/epsilondb/epsilondb/internal/analysis/tracecomplete"
)

func TestTraceComplete(t *testing.T) {
	analysistest.Run(t, "testdata", tracecomplete.Analyzer, "tso", "twopl", "mvto")
}
