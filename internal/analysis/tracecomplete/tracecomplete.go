// Package tracecomplete verifies that the engines' trace streams are
// complete: every transaction state transition — begin, read, write,
// commit, abort — emits its trace event before the engine returns control
// (and thus before the client is acked). The offline epsilon-
// serializability oracle (internal/esrcheck) replays recorded histories
// and proves or refutes the bounds from the events alone, so a single
// transition that commits state without tracing it silently blinds the
// oracle; this analyzer makes the completeness obligation static.
//
// The transition markers are the calls every engine already makes to its
// metrics *Collector — Begin, ReadExecuted, WriteExecuted, Commit, Abort
// — because each marks exactly one successful state transition. For each
// marker call in an engine package (tso, twopl, mvto) the analyzer
// demands that on every control-flow path through the function, a trace
// emission of the corresponding event kind (EvBegin, EvRead, EvWrite,
// EvCommit, EvAbort) happens either before the marker or between the
// marker and the function's exit. A violation therefore needs two
// witnesses: an emission-free path from entry to the marker AND an
// emission-free path from the marker to the exit.
//
// An emission is a call to a method named Trace (the tso.Tracer
// interface, matched by name since interface dispatch is not statically
// resolvable) or a call whose callee transitively reaches one, computed
// over the program call graph. The event kind is narrowed at the call
// site from an Event{Kind: EvX, ...} composite-literal argument; a
// non-literal event argument emits an unknown kind and satisfies any
// obligation. Emissions inside `go` statements do not count: a spawned
// goroutine runs after the engine may already have acked the client, so
// the event could be reordered after — or lost entirely on a crash
// between ack and emission.
package tracecomplete

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/epsilondb/epsilondb/internal/analysis"
)

// Analyzer is the trace-completeness check.
var Analyzer = &analysis.Analyzer{
	Name:         "tracecomplete",
	Doc:          "engine state transitions must emit their trace event before returning (oracle trace completeness)",
	ProgramLevel: true,
	Run:          run,
}

// enginePkgs are the package names whose transitions feed the oracle.
var enginePkgs = map[string]bool{
	"tso":   true,
	"twopl": true,
	"mvto":  true,
}

// markerEvent maps a Collector transition method to the event kind its
// trace emission must carry.
var markerEvent = map[string]string{
	"Begin":         "EvBegin",
	"ReadExecuted":  "EvRead",
	"WriteExecuted": "EvWrite",
	"Commit":        "EvCommit",
	"Abort":         "EvAbort",
}

// kindSet is the set of event kinds a call may emit. all covers every
// kind (an emission whose Event argument is not a composite literal).
type kindSet struct {
	all   bool
	kinds map[string]bool
}

func (k kindSet) empty() bool { return !k.all && len(k.kinds) == 0 }
func (k kindSet) covers(ev string) bool {
	return k.all || k.kinds[ev]
}

func (k *kindSet) merge(o kindSet) bool {
	changed := false
	if o.all && !k.all {
		k.all = true
		changed = true
	}
	for kind := range o.kinds {
		if !k.kinds[kind] {
			if k.kinds == nil {
				k.kinds = make(map[string]bool)
			}
			k.kinds[kind] = true
			changed = true
		}
	}
	return changed
}

// marker is one transition call found in a function body.
type marker struct {
	pos    token.Pos
	method string
	event  string
}

// emission is one trace-emitting call found in a function body.
type emission struct {
	pos   token.Pos
	kinds kindSet
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass.Program)
	emitters := buildEmitters(g)

	for _, pkg := range pass.Program.Packages {
		if !enginePkgs[pkg.Types.Name()] {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkBody(pass, pkg, emitters, fn.Body)
				// Go-spawned literal bodies run outside the caller's
				// extent; any marker inside one carries its own
				// obligation, checked against that body alone.
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
						checkBody(pass, pkg, emitters, lit.Body)
					}
					return true
				})
			}
		}
	}
	return nil
}

// checkBody verifies every transition marker in one function body.
func checkBody(pass *analysis.Pass, pkg *analysis.Package, emitters map[*types.Func]kindSet, body *ast.BlockStmt) {
	cfg := analysis.NewCFG(body)

	markersOf := make(map[*analysis.Block][]marker)
	emitsOf := make(map[*analysis.Block][]emission)
	any := false
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			scanNode(pkg, emitters, n, func(m marker) {
				markersOf[b] = append(markersOf[b], m)
				any = true
			}, func(e emission) {
				emitsOf[b] = append(emitsOf[b], e)
			})
		}
	}
	if !any {
		return
	}

	for _, b := range cfg.Blocks {
		for _, m := range markersOf[b] {
			if missingBefore(cfg, emitsOf, b, m) && missingAfter(cfg, emitsOf, b, m) {
				pass.Reportf(m.pos,
					"Collector.%s acked without a %s trace event on some path: the offline checker would miss this transition",
					m.method, m.event)
			}
		}
	}
}

// missingBefore reports whether some path from the entry reaches the
// marker without emitting its event kind.
func missingBefore(cfg *analysis.CFG, emitsOf map[*analysis.Block][]emission, mb *analysis.Block, m marker) bool {
	// Within the marker's own block, an earlier emission covers every
	// path (blocks are straight-line).
	for _, e := range emitsOf[mb] {
		if e.pos < m.pos && e.kinds.covers(m.event) {
			return false
		}
	}
	clean := func(b *analysis.Block) bool {
		for _, e := range emitsOf[b] {
			if e.kinds.covers(m.event) {
				return false
			}
		}
		return true
	}
	// Blocks whose start is reachable from the entry along emission-free
	// blocks.
	in := map[*analysis.Block]bool{cfg.Entry: true}
	stack := []*analysis.Block{cfg.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !clean(b) {
			continue
		}
		for _, s := range b.Succs {
			if !in[s] {
				in[s] = true
				stack = append(stack, s)
			}
		}
	}
	return in[mb]
}

// missingAfter reports whether some path from the marker reaches the
// exit without emitting its event kind.
func missingAfter(cfg *analysis.CFG, emitsOf map[*analysis.Block][]emission, mb *analysis.Block, m marker) bool {
	for _, e := range emitsOf[mb] {
		if e.pos > m.pos && e.kinds.covers(m.event) {
			return false
		}
	}
	clean := func(b *analysis.Block) bool {
		for _, e := range emitsOf[b] {
			if e.kinds.covers(m.event) {
				return false
			}
		}
		return true
	}
	// Blocks from whose start an emission-free path reaches the exit,
	// computed backward to a fixpoint.
	out := map[*analysis.Block]bool{cfg.Exit: true}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			if out[b] || !clean(b) {
				continue
			}
			for _, s := range b.Succs {
				if out[s] {
					out[b] = true
					changed = true
					break
				}
			}
		}
	}
	for _, s := range mb.Succs {
		if out[s] {
			return true
		}
	}
	return false
}

// scanNode walks one CFG node, reporting transition markers and trace
// emissions. GoStmt subtrees are skipped: their bodies are separate
// functions and their emissions happen after the engine may have acked.
func scanNode(pkg *analysis.Package, emitters map[*types.Func]kindSet, n ast.Node, onMarker func(marker), onEmit func(emission)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if method, ok := collectorMarker(pkg.Info, n); ok {
				onMarker(marker{pos: n.Pos(), method: method, event: markerEvent[method]})
				return true
			}
			if ks, ok := emissionKinds(pkg.Info, emitters, n); ok {
				onEmit(emission{pos: n.Pos(), kinds: ks})
			}
		}
		return true
	})
}

// collectorMarker reports whether call is a transition-marker method on a
// metrics Collector (matched by receiver type name, so golden stubs work
// like the real package).
func collectorMarker(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, ok := markerEvent[sel.Sel.Name]; !ok {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Collector" {
		return "", false
	}
	return sel.Sel.Name, true
}

// emissionKinds classifies call as a trace emission: a direct Trace
// method call, or a call to a function that transitively emits. The kind
// is narrowed from an Event composite-literal argument when present.
func emissionKinds(info *types.Info, emitters map[*types.Func]kindSet, call *ast.CallExpr) (kindSet, bool) {
	if isTraceCall(info, call) {
		if k, ok := literalKind(call); ok {
			return k, true
		}
		return kindSet{all: true}, true
	}
	callee := analysis.ResolveCallee(info, call)
	if callee == nil {
		return kindSet{}, false
	}
	ks, ok := emitters[callee]
	if !ok || ks.empty() {
		return kindSet{}, false
	}
	if k, ok := literalKind(call); ok {
		return k, true
	}
	return ks, true
}

// isTraceCall reports whether call invokes a method named Trace. The
// Tracer is an interface field, so the callee cannot be resolved
// statically; the name is the contract, as with storage.Ack.Wait in
// lockorder.
func isTraceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Trace" {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	_, ok = selection.Obj().(*types.Func)
	return ok
}

// literalKind extracts the event kind from an Event{Kind: EvX, ...}
// composite-literal argument. A Kind field bound to anything but a plain
// EvX identifier yields the unknown (all) kind; an Event literal with
// keyed fields but no Kind carries the zero kind, EvBegin.
func literalKind(call *ast.CallExpr) (kindSet, bool) {
	for _, arg := range call.Args {
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
			arg = u.X
		}
		cl, ok := arg.(*ast.CompositeLit)
		if !ok || !isEventType(cl.Type) {
			continue
		}
		keyed := false
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			keyed = true
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Kind" {
				continue
			}
			if name, ok := identName(kv.Value); ok {
				return kindSet{kinds: map[string]bool{name: true}}, true
			}
			return kindSet{all: true}, true
		}
		if keyed {
			// Keyed literal without an explicit Kind: the zero value.
			return kindSet{kinds: map[string]bool{"EvBegin": true}}, true
		}
		return kindSet{all: true}, true
	}
	return kindSet{}, false
}

// isEventType matches Event and pkg.Event type expressions.
func isEventType(t ast.Expr) bool {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name == "Event"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Event"
	}
	return false
}

// identName resolves EvX / tso.EvX value expressions.
func identName(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		return e.Sel.Name, true
	}
	return "", false
}

// buildEmitters computes, for every declared function, the set of event
// kinds it may emit — directly through Trace calls or transitively
// through callees — to a fixpoint. Call-site Event literals narrow the
// contribution: e.trace(Event{Kind: EvCommit}) emits exactly EvCommit
// even though the trace helper itself can emit anything.
func buildEmitters(g *analysis.CallGraph) map[*types.Func]kindSet {
	emitters := make(map[*types.Func]kindSet)
	for fn, src := range g.Decls {
		ks := kindSet{}
		ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if isTraceCall(src.Pkg.Info, n) {
					if k, ok := literalKind(n); ok {
						ks.merge(k)
					} else {
						ks.merge(kindSet{all: true})
					}
				}
			}
			return true
		})
		if !ks.empty() {
			emitters[fn] = ks
		}
	}
	for changed := true; changed; {
		changed = false
		for caller, sites := range g.Calls {
			for _, site := range sites {
				callee := emitters[site.Callee]
				if callee.empty() {
					continue
				}
				contrib := callee
				if k, ok := literalKind(site.Call); ok {
					contrib = k
				}
				cur := emitters[caller]
				if cur.merge(contrib) {
					emitters[caller] = cur
					changed = true
				}
			}
		}
	}
	return emitters
}
