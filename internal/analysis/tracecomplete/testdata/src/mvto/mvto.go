// Package mvto is the golden model of the multiversion engine's trace
// obligations, seeding the abort-path violation: an abort that only
// traces on one branch leaves the other branch's transaction dangling
// forever in the oracle's view.
package mvto

// Event mirrors tso.Event.
type Event struct {
	Kind int
	Txn  uint64
}

// Event kinds.
const (
	EvBegin = iota
	EvRead
	EvWrite
	EvCommit
	EvAbort
)

// Tracer mirrors tso.Tracer.
type Tracer interface {
	Trace(ev Event)
}

// Collector mirrors metrics.Collector.
type Collector struct{}

func (c *Collector) Begin()                    {}
func (c *Collector) WriteExecuted(inc bool)    {}
func (c *Collector) Commit()                   {}
func (c *Collector) Abort(reason int, n int64) {}

// Engine mirrors the MVTO engine's tracer plumbing.
type Engine struct {
	col    *Collector
	tracer Tracer
}

func (e *Engine) trace(ev Event) {
	if e.tracer != nil {
		e.tracer.Trace(ev)
	}
}

// finishAbort pairs the transition with its event: compliant. The nil
// guard inside trace does not count against completeness — a disabled
// tracer is the operator's choice, not a lost event.
func (e *Engine) finishAbort(txn uint64) {
	e.col.Abort(0, 0)
	e.trace(Event{Kind: EvAbort, Txn: txn})
}

// abortQuietOnRetry only traces terminal aborts; the retryable branch
// marks the transition but emits nothing, so those aborts never reach
// the trace.
func (e *Engine) abortQuietOnRetry(txn uint64, terminal bool) {
	e.col.Abort(0, 0) // want `Collector.Abort acked without a EvAbort trace event on some path`
	if terminal {
		e.trace(Event{Kind: EvAbort, Txn: txn})
	}
}

// commitDualPath emits on both the durable and in-memory branches, like
// the real MVTO commit: compliant.
func (e *Engine) commitDualPath(txn uint64, durable bool) {
	if durable {
		e.col.Commit()
		e.trace(Event{Kind: EvCommit, Txn: txn})
		return
	}
	e.col.Commit()
	e.trace(Event{Kind: EvCommit, Txn: txn})
}
