// Package twopl is the golden model of the two-phase-locking engine's
// trace obligations, seeding the event-after-ack violation: an emission
// inside a `go` statement races the client ack and does not discharge
// the obligation.
package twopl

// Event mirrors tso.Event.
type Event struct {
	Kind int
	Txn  uint64
}

// Event kinds.
const (
	EvBegin = iota
	EvRead
	EvWrite
	EvCommit
	EvAbort
)

// Tracer mirrors tso.Tracer.
type Tracer interface {
	Trace(ev Event)
}

// Collector mirrors metrics.Collector.
type Collector struct{}

func (c *Collector) Begin()                    {}
func (c *Collector) ReadExecuted(inc bool)     {}
func (c *Collector) Commit()                   {}
func (c *Collector) Abort(reason int, n int64) {}

// Engine mirrors the 2PL engine's tracer plumbing.
type Engine struct {
	col    *Collector
	tracer Tracer
}

func (e *Engine) trace(ev Event) {
	if e.tracer != nil {
		e.tracer.Trace(ev)
	}
}

// Commit pairs transition and event synchronously: compliant.
func (e *Engine) Commit(txn uint64) {
	e.col.Commit()
	e.trace(Event{Kind: EvCommit, Txn: txn})
}

// commitAsyncTrace defers the emission to a goroutine: by the time it
// runs, the caller has been acked, so a crash (or a reordering in the
// sink) loses the commit from the trace.
func (e *Engine) commitAsyncTrace(txn uint64) {
	e.col.Commit() // want `Collector.Commit acked without a EvCommit trace event on some path`
	go func() {
		e.trace(Event{Kind: EvCommit, Txn: txn})
	}()
}

// readViaHelper discharges the obligation through a transitive helper:
// compliant.
func (e *Engine) readViaHelper(txn uint64) {
	e.traceRead(txn)
	e.col.ReadExecuted(false)
}

func (e *Engine) traceRead(txn uint64) {
	e.trace(Event{Kind: EvRead, Txn: txn})
}
