// Package tso is the golden model of the timestamp-ordering engine's
// trace obligations: every Collector transition call must be paired with
// a trace event of the matching kind on every path.
package tso

// EventKind mirrors tso.EventKind.
type EventKind uint8

// Event kinds.
const (
	EvBegin EventKind = iota
	EvRead
	EvWrite
	EvCommit
	EvAbort
)

// Event mirrors tso.Event.
type Event struct {
	Kind EventKind
	Txn  uint64
}

// Tracer mirrors tso.Tracer.
type Tracer interface {
	Trace(ev Event)
}

// Collector mirrors metrics.Collector; the analyzer matches transition
// methods by the receiver type name.
type Collector struct{}

func (c *Collector) Begin()                    {}
func (c *Collector) ReadExecuted(inc bool)     {}
func (c *Collector) WriteExecuted(inc bool)    {}
func (c *Collector) Commit()                   {}
func (c *Collector) Abort(reason int, n int64) {}

// Engine mirrors the tso engine's tracer plumbing.
type Engine struct {
	col    *Collector
	tracer Tracer
}

// trace is the guarded emission helper: an unresolved-kind emitter whose
// callers narrow the kind with an Event literal at the call site.
func (e *Engine) trace(ev Event) {
	if e.tracer != nil {
		e.tracer.Trace(ev)
	}
}

// Begin pairs the transition with its event: compliant.
func (e *Engine) Begin(txn uint64) {
	e.col.Begin()
	e.trace(Event{Kind: EvBegin, Txn: txn})
}

// Read traces before the marker, as the real read path does under the
// object lock: compliant.
func (e *Engine) Read(txn uint64) int {
	e.trace(Event{Kind: EvRead, Txn: txn})
	e.col.ReadExecuted(false)
	return 0
}

// Commit emits through the helper with a call-site literal: compliant.
func (e *Engine) Commit(txn uint64) {
	e.col.Commit()
	e.trace(Event{Kind: EvCommit, Txn: txn})
}

// commitSilently marks the transition but never emits: the oracle would
// see a transaction whose effects are visible in later reads but whose
// commit never happened.
func (e *Engine) commitSilently(txn uint64) {
	e.col.Commit() // want `Collector.Commit acked without a EvCommit trace event on some path`
}

// commitWrongKind emits an event of the wrong kind: the commit is still
// invisible to the oracle.
func (e *Engine) commitWrongKind(txn uint64) {
	e.col.Commit() // want `Collector.Commit acked without a EvCommit trace event on some path`
	e.trace(Event{Kind: EvAbort, Txn: txn})
}

// commitBranchy emits on every path even though the emission sites
// differ per branch: compliant.
func (e *Engine) commitBranchy(txn uint64, durable bool) {
	e.col.Commit()
	if durable {
		e.trace(Event{Kind: EvCommit, Txn: txn})
		return
	}
	e.trace(Event{Kind: EvCommit, Txn: txn})
}

// abortLoop pairs inside a retry loop, like readUpdate's ladder:
// compliant.
func (e *Engine) abortLoop(txn uint64, tries int) {
	for i := 0; i < tries; i++ {
		if i == tries-1 {
			e.col.Abort(0, 1)
			e.trace(Event{Kind: EvAbort, Txn: txn})
			return
		}
	}
}

// opaqueEvent forwards an event it did not build; the unknown kind
// satisfies any obligation: compliant.
func (e *Engine) opaqueEvent(ev Event) {
	e.col.WriteExecuted(false)
	e.trace(ev)
}
