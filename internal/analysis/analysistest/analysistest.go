// Package analysistest runs an analyzer over golden packages under a
// testdata directory and checks its diagnostics against expectations
// written in the source, mirroring the x/tools package of the same name.
//
// Expectations are trailing comments of the form
//
//	x.counter++ // want `accessed atomically elsewhere`
//
// where each back-quoted (or double-quoted) string is a regular
// expression that must match the message of exactly one diagnostic
// reported on that line. Lines without a want comment must produce no
// diagnostics, and every want expectation must be matched — both
// directions fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/epsilondb/epsilondb/internal/analysis"
)

// expectation is one want pattern at a file line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the packages at testdata/src/<pkg> for each named pkg, runs
// the analyzer over the resulting program, and compares diagnostics
// against the // want comments in those packages.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	patterns := make([]string, len(pkgs))
	for i, p := range pkgs {
		patterns[i] = "./src/" + p
	}
	prog, err := analysis.Load(testdata, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := prog.Run([]*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			wants = append(wants, parseWants(t, prog, f)...)
		}
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation matching d and reports
// whether one was found.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the want expectations from one file's comments.
func parseWants(t *testing.T, prog *analysis.Program, f *ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := prog.Fset.Position(c.Pos())
			patterns, err := splitPatterns(strings.TrimPrefix(text, "want "))
			if err != nil {
				t.Fatalf("%s: bad want comment: %v", pos, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return wants
}

// splitPatterns parses a sequence of back-quoted or double-quoted
// strings: `a` "b" ...
func splitPatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated back-quoted pattern in %q", s)
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Find the closing quote, honoring escapes, then unquote.
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted pattern in %q", s)
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = s[end+1:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", s)
		}
	}
}
