package atomicmetrics_test

import (
	"testing"

	"github.com/epsilondb/epsilondb/internal/analysis/analysistest"
	"github.com/epsilondb/epsilondb/internal/analysis/atomicmetrics"
)

func TestAtomicmetrics(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmetrics.Analyzer, "metrics")
}
