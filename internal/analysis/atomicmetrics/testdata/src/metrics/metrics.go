// Package metrics exercises the atomicmetrics analyzer: commits and
// aborts are driven through sync/atomic, so every plain access to them
// is a race; name is never touched atomically and stays unflagged.
package metrics

import "sync/atomic"

type Counters struct {
	commits int64
	aborts  int64
	name    string
}

func (c *Counters) Commit() {
	atomic.AddInt64(&c.commits, 1)
}

func (c *Counters) Abort() {
	atomic.AddInt64(&c.aborts, 1)
}

// Snapshot loads commits correctly but reads aborts with a plain load.
func (c *Counters) Snapshot() (int64, int64) {
	return atomic.LoadInt64(&c.commits), c.aborts // want `field metrics\.Counters\.aborts is accessed with sync/atomic .* but non-atomically here`
}

// Reset mixes a plain store into an atomically-managed field.
func (c *Counters) Reset() {
	c.commits = 0 // want `field metrics\.Counters\.commits is accessed with sync/atomic .* but non-atomically here`
	atomic.StoreInt64(&c.aborts, 0)
}

// Name touches only a field never used atomically: no diagnostic.
func (c *Counters) Name() string {
	return c.name
}
