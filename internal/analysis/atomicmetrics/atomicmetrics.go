// Package atomicmetrics enforces all-or-nothing atomicity on struct
// fields: a field that is passed by address to any sync/atomic function
// anywhere in the program must be accessed through sync/atomic
// everywhere. Mixing atomic.AddInt64(&m.commits, 1) on the hot path with
// a plain m.commits read in a snapshot is a data race the race detector
// only catches when the schedule cooperates; this analyzer catches it
// statically.
//
// The pass is program-level and runs in two phases: first it collects
// every field that appears as &x.f in an argument to a function from
// sync/atomic, then it reports every other access to one of those
// fields. Fields are keyed by (package name, receiver type name, field
// name); fields reached through embedding are keyed by the outer
// receiver type, so promote-and-mix across embeddings is out of scope.
//
// Fields of type atomic.Int64 and friends need no checking (the type
// system already forbids plain access) and are ignored here — the
// analyzer is aimed at raw integer fields driven through the
// atomic.AddInt64-style function API.
package atomicmetrics

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/epsilondb/epsilondb/internal/analysis"
)

// Analyzer is the atomicmetrics pass.
var Analyzer = &analysis.Analyzer{
	Name:         "atomicmetrics",
	Doc:          "fields accessed with sync/atomic anywhere must be accessed with sync/atomic everywhere",
	ProgramLevel: true,
	Run:          run,
}

// fieldKey names a struct field across packages by name strings, so
// source-typechecked and export-data views of the same type agree.
type fieldKey struct {
	pkg   string
	typ   string
	field string
}

func run(pass *analysis.Pass) error {
	// Phase 1: find fields used atomically, remembering the selector
	// nodes so phase 2 does not report the atomic sites themselves.
	atomicSites := make(map[*ast.SelectorExpr]bool)
	atomicFields := make(map[fieldKey]token.Pos)
	for _, pkg := range pass.Program.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					key, ok := fieldOf(pkg, sel)
					if !ok {
						continue
					}
					atomicSites[sel] = true
					if _, seen := atomicFields[key]; !seen {
						atomicFields[key] = sel.Pos()
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Phase 2: every other access to one of those fields is a race.
	for _, pkg := range pass.Program.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicSites[sel] {
					return true
				}
				key, ok := fieldOf(pkg, sel)
				if !ok {
					return true
				}
				if first, hot := atomicFields[key]; hot {
					firstPos := pass.Fset.Position(first)
					pass.Reportf(sel.Pos(),
						"field %s.%s.%s is accessed with sync/atomic (e.g. %s:%d) but non-atomically here",
						key.pkg, key.typ, key.field, shortFile(firstPos.Filename), firstPos.Line)
				}
				return true
			})
		}
	}
	return nil
}

// isAtomicCall reports whether call invokes a function from sync/atomic
// (atomic.AddInt64, atomic.LoadUint32, ...).
func isAtomicCall(pkg *analysis.Package, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// fieldOf resolves sel to a struct-field key if sel selects a field.
func fieldOf(pkg *analysis.Package, sel *ast.SelectorExpr) (fieldKey, bool) {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return fieldKey{}, false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || v.Pkg() == nil {
		return fieldKey{}, false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return fieldKey{}, false
	}
	return fieldKey{pkg: v.Pkg().Name(), typ: named.Obj().Name(), field: v.Name()}, true
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// shortFile trims the path to its final element for compact messages.
func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			return path[i+1:]
		}
	}
	return path
}
