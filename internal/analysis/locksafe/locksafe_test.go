package locksafe_test

import (
	"testing"

	"github.com/epsilondb/epsilondb/internal/analysis/analysistest"
	"github.com/epsilondb/epsilondb/internal/analysis/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer, "a", "wal")
}
