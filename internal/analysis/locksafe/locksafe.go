// Package locksafe flags control paths that leave a function while a
// sync.Mutex or sync.RWMutex acquired in that function is still held and
// no defer releases it. Early returns and panics under a held engine
// mutex deadlock every later operation on the same shard, and the
// compiler cannot see it; this analyzer can.
//
// The analysis is a forward walk over each function body tracking the set
// of held locks, keyed by the receiver expression of the Lock call
// ("e.mu", "s.mu.RLock" tracks "e.mu/R"):
//
//   - m.Lock() / m.RLock() adds the lock unless a defer already released
//     it; defer m.Unlock() / defer func(){ ... m.Unlock() ... }() removes
//     it permanently; m.Unlock() / m.RUnlock() removes it.
//   - return and panic statements are reported if any lock is held.
//   - branches (if/switch/select) are analyzed with copies of the held
//     set; the fall-through state is the union of the non-
//     terminating branches, so a path that releases before returning
//     keeps the continuation precise.
//   - loop bodies are analyzed against a copy (the unlock-wait-relock
//     pattern of the engines stays precise inside the body); the state
//     after the loop is the state before it.
//
// Functions named Lock/Unlock/RLock/RUnlock/TryLock are skipped: they are
// the lock wrappers themselves (e.g. storage.Object.Lock) and hold by
// design. Aliased mutexes (two expressions naming one lock) are not
// tracked; the engine packages never alias their mutexes.
//
// The pass also enforces the wal package's single-committer discipline:
// in packages named "wal", any .Sync() or .SyncDir() call outside the
// committer goroutine's call chain (run, flushOnce, writeSnapshot,
// rollSegment, openSegment) or the sync wrappers themselves is flagged —
// an fsync from an appender would race the committer's exclusive
// ownership of the segment files.
package locksafe

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"github.com/epsilondb/epsilondb/internal/analysis"
)

// Analyzer is the locksafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "no return or panic may leave a function while a mutex it locked is held without a defer",
	Run:  run,
}

// wrapperNames are functions that exist to acquire or release a lock.
var wrapperNames = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true, "TryLock": true, "TryRLock": true,
}

func run(pass *analysis.Pass) error {
	isWAL := pass.Pkg.Types.Name() == "wal"
	for _, file := range pass.Pkg.Files {
		if isWAL {
			checkWALFsync(pass, file)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && !wrapperNames[fn.Name.Name] {
					newChecker(pass).checkBody(fn.Body)
				}
			case *ast.FuncLit:
				// Function literals are independent scopes: locks held by
				// the enclosing function are the literal's caller's
				// problem, and vice versa.
				newChecker(pass).checkBody(fn.Body)
				return true
			}
			return true
		})
	}
	return nil
}

// walFsyncAllowed are the wal functions that may touch the disk-sync
// surface: the committer goroutine's call chain plus the wrappers that
// ARE the sync surface (Log.Sync barrier, FS SyncDir, File Sync).
var walFsyncAllowed = map[string]bool{
	"run": true, "flushOnce": true, "writeSnapshot": true,
	"writeBatchSynced": true, "writeEachSynced": true,
	"rollSegment": true, "openSegment": true,
	"Sync": true, "SyncDir": true,
}

// checkWALFsync flags Sync/SyncDir calls outside the committer's call
// chain in packages named "wal".
func checkWALFsync(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || walFsyncAllowed[fn.Name.Name] {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name := sel.Sel.Name; name == "Sync" || name == "SyncDir" {
				pass.Reportf(call.Pos(),
					"%s called in %s, outside the committer goroutine's call chain: only the committer may fsync",
					name, fn.Name.Name)
			}
			return true
		})
	}
}

// lockInfo records one held lock.
type lockInfo struct {
	pos  token.Pos // the Lock call
	name string    // display name, e.g. "e.mu"
}

// held maps lock keys (receiver expression + R/W mode) to acquisitions.
type held map[string]lockInfo

func (h held) clone() held {
	out := make(held, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

type checker struct {
	pass *analysis.Pass
	// deferred holds lock keys released by a defer: re-acquisitions of
	// these are covered for the rest of the function.
	deferred map[string]bool
}

func newChecker(pass *analysis.Pass) *checker {
	return &checker{pass: pass, deferred: make(map[string]bool)}
}

// checkBody analyzes one function body from an empty lock state.
func (c *checker) checkBody(body *ast.BlockStmt) {
	c.stmts(body.List, make(held))
}

// stmts analyzes a statement list, mutating h, and reports whether the
// list definitely terminates (ends control flow in this function).
func (c *checker) stmts(list []ast.Stmt, h held) (terminated bool) {
	for _, s := range list {
		if c.stmt(s, h) {
			return true
		}
	}
	return false
}

// stmt analyzes one statement; the returned bool means control cannot
// fall through to the next statement.
func (c *checker) stmt(s ast.Stmt, h held) (terminated bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if c.isPanic(call) {
				c.reportExit(call.Pos(), "panic", h)
				return true
			}
			c.call(call, h)
		}

	case *ast.DeferStmt:
		c.deferRelease(s.Call, h)

	case *ast.ReturnStmt:
		c.reportExit(s.Pos(), "return", h)
		return true

	case *ast.BranchStmt:
		// break/continue/goto leave the current block; treat as
		// terminating this list without an exit check (the lock state at
		// the jump target is not modeled).
		return true

	case *ast.BlockStmt:
		return c.stmts(s.List, h)

	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, h)

	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, h)
		}
		branches := []held{}
		thenState := h.clone()
		if !c.stmts(s.Body.List, thenState) {
			branches = append(branches, thenState)
		}
		elseTerm := false
		if s.Else != nil {
			elseState := h.clone()
			elseTerm = c.stmt(s.Else, elseState)
			if !elseTerm {
				branches = append(branches, elseState)
			}
		} else {
			branches = append(branches, h.clone())
		}
		if len(branches) == 0 {
			return true
		}
		c.replace(h, merge(branches))

	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, h)
		}
		c.stmts(s.Body.List, h.clone())

	case *ast.RangeStmt:
		c.stmts(s.Body.List, h.clone())

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.branching(s, h)

	case *ast.GoStmt:
		// The goroutine body is analyzed independently as a FuncLit.

	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		// No lock-relevant control flow; calls in these positions (e.g.
		// v := m.TryLock()) are deliberately not tracked.
	}
	return false
}

// branching analyzes switch/type-switch/select: each clause gets a copy
// of the state, and the continuation is the union of the clauses that
// fall through (plus the incoming state unless a default clause makes
// fall-past impossible — select without default blocks, so it always
// enters a clause).
func (c *checker) branching(s ast.Stmt, h held) (terminated bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, h)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, h)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
		hasDefault = false
	}
	branches := []held{}
	nClauses := 0
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
			if cl.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cl.Body
			if cl.Comm == nil {
				hasDefault = true
			}
		}
		nClauses++
		state := h.clone()
		if !c.stmts(stmts, state) {
			branches = append(branches, state)
		}
	}
	if _, isSelect := s.(*ast.SelectStmt); isSelect && nClauses > 0 {
		// A select with no default still blocks until one clause runs.
		hasDefault = true
	}
	if !hasDefault {
		branches = append(branches, h.clone())
	}
	if len(branches) == 0 {
		return true
	}
	c.replace(h, merge(branches))
	return false
}

// call updates h for a direct Lock/Unlock-style call on a tracked mutex.
func (c *checker) call(call *ast.CallExpr, h held) {
	key, name, method, ok := c.mutexCall(call)
	if !ok {
		return
	}
	switch method {
	case "Lock", "RLock":
		if !c.deferred[key] {
			h[key] = lockInfo{pos: call.Pos(), name: name}
		}
	case "Unlock", "RUnlock":
		delete(h, key)
	}
}

// deferRelease handles defer statements: any Unlock reachable in the
// deferred call (directly or inside a deferred func literal) releases
// the lock for all exits.
func (c *checker) deferRelease(call *ast.CallExpr, h held) {
	mark := func(inner *ast.CallExpr) {
		key, _, method, ok := c.mutexCall(inner)
		if !ok {
			return
		}
		if method == "Unlock" || method == "RUnlock" {
			delete(h, key)
			c.deferred[key] = true
		}
	}
	mark(call)
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				mark(inner)
			}
			return true
		})
	}
}

// mutexCall decomposes a call of the form expr.Method() where expr has
// type sync.Mutex or sync.RWMutex (possibly via pointer). The key
// distinguishes reader and writer state on an RWMutex.
func (c *checker) mutexCall(call *ast.CallExpr) (key, name, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	method = sel.Sel.Name
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", "", false
	}
	tv, found := c.pass.Pkg.Info.Types[sel.X]
	if !found || !isSyncMutex(tv.Type) {
		return "", "", "", false
	}
	name = exprString(sel.X)
	key = name
	if method == "RLock" || method == "RUnlock" {
		key += "/R"
	}
	return key, name, method, true
}

// isPanic reports whether call is the builtin panic.
func (c *checker) isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	obj := c.pass.Pkg.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// reportExit reports every lock still held at a function exit.
func (c *checker) reportExit(pos token.Pos, kind string, h held) {
	for _, info := range h {
		lockPos := c.pass.Fset.Position(info.pos)
		c.pass.Reportf(pos, "%s while %s is still locked (acquired at %s:%d with no defer unlock)",
			kind, info.name, shortFile(lockPos.Filename), lockPos.Line)
	}
}

// replace copies src into the caller's live map h.
func (c *checker) replace(h held, src held) {
	for k := range h {
		delete(h, k)
	}
	for k, v := range src {
		h[k] = v
	}
}

// merge unions the branch states: a lock held on any path that can fall
// through stays tracked, so a conditional acquire without a matching
// conditional release is caught at the next exit.
func merge(states []held) held {
	out := states[0]
	for _, s := range states[1:] {
		for k, v := range s {
			if _, ok := out[k]; !ok {
				out[k] = v
			}
		}
	}
	return out
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex, through
// pointers.
func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// exprString renders the receiver expression for keys and messages.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return buf.String()
}

// shortFile trims the path to its final element for compact messages.
func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			return path[i+1:]
		}
	}
	return path
}
