// Package wal exercises the locksafe analyzer's single-committer fsync
// rule: in packages named "wal", Sync and SyncDir may only be called
// from the committer goroutine's call chain.
package wal

type file struct{}

func (file) Write(p []byte) (int, error) { return len(p), nil }
func (file) Sync() error                 { return nil }

type dirFS struct{}

func (dirFS) SyncDir() error { return nil }

type log struct {
	seg file
	fs  dirFS
}

// flushOnce is on the committer's call chain: fsync allowed.
func (l *log) flushOnce() {
	l.seg.Write(nil)
	l.seg.Sync()
}

// openSegment is on the committer's call chain: both syncs allowed.
func (l *log) openSegment() {
	l.seg.Sync()
	l.fs.SyncDir()
}

// writeSnapshot is on the committer's call chain.
func (l *log) writeSnapshot() {
	l.seg.Sync()
}

// rollSegment is on the committer's call chain.
func (l *log) rollSegment() {
	l.fs.SyncDir()
}

// run is the committer itself.
func (l *log) run() {
	l.seg.Sync()
}

// Sync is a sync wrapper by name: its own body may forward the call.
func (l *log) Sync() error {
	l.seg.Sync()
	return nil
}

// logCommit is an appender: it must hand the batch to the committer,
// never fsync itself.
func (l *log) logCommit() {
	l.seg.Write(nil)
	l.seg.Sync() // want `Sync called in logCommit, outside the committer goroutine`
}

// close sneaks a directory sync outside the committer.
func (l *log) close() {
	l.fs.SyncDir() // want `SyncDir called in close, outside the committer goroutine`
}
