// Package a exercises the locksafe analyzer: early returns and panics
// under held mutexes are flagged; deferred unlocks, branch-balanced
// unlocks, and the engines' unlock-wait-relock loop pattern are not.
package a

import "sync"

type engine struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	n    int
	cond chan struct{}
}

// leakReturn forgets the unlock on the error path.
func (e *engine) leakReturn(fail bool) int {
	e.mu.Lock()
	if fail {
		return -1 // want `return while e\.mu is still locked`
	}
	n := e.n
	e.mu.Unlock()
	return n
}

// leakPanic panics under the lock.
func (e *engine) leakPanic() {
	e.mu.Lock()
	if e.n < 0 {
		panic("negative") // want `panic while e\.mu is still locked`
	}
	e.mu.Unlock()
}

// leakImplicit falls off the end of an if with the read lock held on one
// branch: the merge keeps the lock and the final return reports it.
func (e *engine) leakImplicit(lock bool) int {
	if lock {
		e.rw.RLock()
	}
	return e.n // want `return while e\.rw is still locked`
}

// deferred is the safe idiom.
func (e *engine) deferred() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		return 0
	}
	return e.n
}

// deferredClosure releases inside a deferred func literal.
func (e *engine) deferredClosure() int {
	e.mu.Lock()
	defer func() {
		e.n++
		e.mu.Unlock()
	}()
	return e.n
}

// balancedBranches unlocks on every exit path by hand.
func (e *engine) balancedBranches(fail bool) (int, error) {
	e.mu.Lock()
	if fail {
		e.mu.Unlock()
		return 0, nil
	}
	n := e.n
	e.mu.Unlock()
	return n, nil
}

// unlockWaitRelock is the engines' strict-ordering wait shape: release,
// block, re-acquire, loop. No diagnostic.
func (e *engine) unlockWaitRelock() int {
	e.mu.Lock()
	for {
		if e.n > 0 {
			n := e.n
			e.mu.Unlock()
			return n
		}
		ch := e.cond
		e.mu.Unlock()
		<-ch
		e.mu.Lock()
	}
}

// switchLeak misses the unlock in one case only.
func (e *engine) switchLeak(k int) int {
	e.mu.Lock()
	switch k {
	case 0:
		e.mu.Unlock()
		return 0
	case 1:
		return 1 // want `return while e\.mu is still locked`
	default:
		e.mu.Unlock()
		return 2
	}
}

// readerWriter tracks RLock and Lock as distinct states.
func (e *engine) readerWriter() int {
	e.rw.RLock()
	n := e.n
	e.rw.RUnlock()
	e.rw.Lock()
	e.n = n + 1
	e.rw.Unlock()
	return n
}

// goroutineScope: the literal's lock discipline is its own; the outer
// function holds nothing at return.
func (e *engine) goroutineScope(fail bool) {
	go func() {
		e.mu.Lock()
		if fail {
			return // want `return while e\.mu is still locked`
		}
		e.mu.Unlock()
	}()
}
