package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses `func f() { <src> }` and returns the body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file, err := parser.ParseFile(token.NewFileSet(), "x.go", "package p\nfunc f() {\n"+src+"\n}", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

func TestTerminates(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"empty", "", true},
		{"return", "return", true},
		{"infinite loop", "for {\n}", false},
		{"infinite loop with sleep", "for {\n_ = 1\n}", false},
		{"conditional loop", "for x := 0; x < 10; x++ {\n}", true},
		{"loop with break", "for {\nbreak\n}", true},
		{"loop with return", "for {\nreturn\n}", true},
		{"loop with cond return", "for {\nif true {\nreturn\n}\n}", true},
		{"empty select", "select {\n}", false},
		{"select loop no escape", "for {\nselect {\ncase <-ch:\n}\n}", false},
		{"select loop with return", "for {\nselect {\ncase <-ch:\nreturn\n}\n}", true},
		{"select loop labeled break", "L:\nfor {\nselect {\ncase <-ch:\nbreak L\n}\n}", true},
		{"panic", "panic(1)", true},
		{"goto forever", "L:\ngoto L", false},
		{"goto forward", "goto L\nL:\nreturn", true},
		{"range loop", "for range xs {\n}", true},
		{"dead code after infinite loop", "for {\n}\nreturn", false},
		{"nested infinite outer", "for {\nfor {\nbreak\n}\n}", false},
		{"switch falls through", "switch x {\ncase 1:\n}", true},
		{"break inside switch stays in loop", "for {\nswitch x {\ncase 1:\nbreak\n}\n}", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewCFG(parseBody(t, tc.src))
			if got := g.Terminates(); got != tc.want {
				t.Errorf("Terminates(%q) = %v, want %v", tc.src, got, tc.want)
			}
		})
	}
}

// TestFlowBranchRefinement checks that facts are refined per edge: a
// counter incremented in the true branch only must reach the join as the
// join of both sides.
func TestFlowBranchRefinement(t *testing.T) {
	body := parseBody(t, "if cond {\na()\n} else {\nb()\n}\nc()")
	g := NewCFG(body)

	// Fact: set of call names seen on the path (joined by intersection
	// for "must have called").
	type fact = map[string]bool
	fl := &Flow[fact]{
		CFG:  g,
		Init: fact{},
		Clone: func(f fact) fact {
			out := fact{}
			for k := range f {
				out[k] = true
			}
			return out
		},
		Join: func(dst, src fact) bool {
			changed := false
			for k := range dst {
				if !src[k] {
					delete(dst, k)
					changed = true
				}
			}
			return changed
		},
		Transfer: func(n ast.Node, f fact) fact {
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						f[id.Name] = true
					}
				}
				return true
			})
			return f
		},
	}
	ins := fl.Run()

	// Find the block containing the c() call: neither a nor b is a
	// must-call there, since only one branch ran.
	found := false
	for b, f := range ins {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || call.Fun.(*ast.Ident).Name != "c" {
				continue
			}
			found = true
			if f["a"] || f["b"] {
				t.Errorf("at c(): must-call fact contains a branch-only call: %v", f)
			}
		}
	}
	if !found {
		t.Fatal("c() call not found in any reachable block")
	}
}

// TestCondEdgeOrder pins the true-edge-first contract Branch refinement
// relies on.
func TestCondEdgeOrder(t *testing.T) {
	body := parseBody(t, "if cond {\na()\n} else {\nb()\n}")
	g := NewCFG(body)
	var condBlk *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			condBlk = b
			break
		}
	}
	if condBlk == nil {
		t.Fatal("no conditional block")
	}
	if len(condBlk.Succs) != 2 {
		t.Fatalf("cond block has %d successors, want 2", len(condBlk.Succs))
	}
	hasCall := func(b *Block, name string) bool {
		found := false
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
		}
		return found
	}
	if !hasCall(condBlk.Succs[0], "a") {
		t.Error("Succs[0] is not the true (then) branch")
	}
	if !hasCall(condBlk.Succs[1], "b") {
		t.Error("Succs[1] is not the false (else) branch")
	}
}
