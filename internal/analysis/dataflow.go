package analysis

// Forward dataflow over a CFG: the generic fixpoint engine under the
// flow-sensitive analyzers. An analyzer supplies a fact type T (held-lock
// sets for lockorder, taint sets for epsiloncheck, contract bits for the
// publish-under-log-mutex rule), a transfer function applied node by
// node, and a join; the engine iterates to a fixpoint and hands back the
// fact at every reachable block's entry. Analyzers then replay the
// transfer over each block once more with reporting enabled — replay is
// deterministic, so diagnostics come out stable without the fixpoint
// needing to know about them.

import (
	"go/ast"
)

// Flow configures one forward dataflow problem over a CFG.
type Flow[T any] struct {
	// CFG is the graph to analyze.
	CFG *CFG
	// Init is the fact at the function entry.
	Init T
	// Clone copies a fact so block-local mutation stays local.
	Clone func(T) T
	// Join merges src into dst, reporting whether dst changed. The
	// lattice must be finite-height for termination (sets over program
	// identifiers are).
	Join func(dst, src T) bool
	// Transfer applies one node's effect to the fact, in place or by
	// returning a replacement.
	Transfer func(n ast.Node, fact T) T
	// Branch, when set, refines the fact flowing across a conditional
	// edge: cond is the block's condition, taken the edge's direction.
	// It must not mutate fact; it returns the refined fact (possibly
	// fact itself).
	Branch func(cond ast.Expr, taken bool, fact T) T
}

// Run iterates to a fixpoint and returns the entry fact of every
// reachable block. Unreachable blocks are absent from the result.
func (fl *Flow[T]) Run() map[*Block]T {
	in := make(map[*Block]T)
	in[fl.CFG.Entry] = fl.Clone(fl.Init)
	work := []*Block{fl.CFG.Entry}
	queued := map[*Block]bool{fl.CFG.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := fl.Clone(in[b])
		for _, n := range b.Nodes {
			out = fl.Transfer(n, out)
		}
		for i, succ := range b.Succs {
			edgeFact := out
			if b.Cond != nil && fl.Branch != nil && i < 2 {
				edgeFact = fl.Branch(b.Cond, i == 0, out)
			}
			cur, seen := in[succ]
			if !seen {
				in[succ] = fl.Clone(edgeFact)
			} else if !fl.Join(cur, edgeFact) {
				continue
			}
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// Replay applies the transfer over one block from its entry fact,
// invoking visit before each node with the fact in force at that node.
// Analyzers use it after Run to report with flow context.
func (fl *Flow[T]) Replay(b *Block, entry T, visit func(n ast.Node, fact T)) {
	fact := fl.Clone(entry)
	for _, n := range b.Nodes {
		visit(n, fact)
		fact = fl.Transfer(n, fact)
	}
}
