// Package wire mimics the shape of the real wire package: a MsgType
// enum, a String method, per-message MsgType() methods, and a decode
// factory. Deliberate gaps exercise each wireexhaustive check.
package wire

import "fmt"

type MsgType uint8

const (
	MsgBegin   MsgType = 1
	MsgRead    MsgType = 2 // want `request MsgRead is not handled by any wire\.Message type switch in the server package`
	MsgCommit  MsgType = 3 // want `wire message MsgCommit has no case in the decode factory newMessage`
	MsgDup     MsgType = 4 // want `wire message MsgDup is returned by 2 MsgType\(\) methods: frame types must be unique`
	MsgGhost   MsgType = 5 // want `wire message MsgGhost is returned by no MsgType\(\) method: no message struct encodes it` `request MsgGhost is not handled by any wire\.Message type switch in the server package`
	MsgSync    MsgType = 6 // want `request MsgSync is not classified by the Batchable switch in the wire package`
	MsgBeginOK MsgType = 64
	MsgError   MsgType = 65 // want `wire message MsgError has no case in MsgType\.String`
)

func (t MsgType) String() string {
	switch t {
	case MsgBegin:
		return "Begin"
	case MsgRead:
		return "Read"
	case MsgCommit:
		return "Commit"
	case MsgDup:
		return "Dup"
	case MsgGhost:
		return "Ghost"
	case MsgSync:
		return "Sync"
	case MsgBeginOK:
		return "BeginOK"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is the frame interface.
type Message interface {
	MsgType() MsgType
}

type Begin struct{}

func (*Begin) MsgType() MsgType { return MsgBegin }

type Read struct{ Key uint64 }

func (*Read) MsgType() MsgType { return MsgRead }

type Commit struct{}

func (*Commit) MsgType() MsgType { return MsgCommit }

type Dup struct{}

func (*Dup) MsgType() MsgType { return MsgDup }

// DupTwin wrongly claims the same frame tag as Dup.
type DupTwin struct{}

func (*DupTwin) MsgType() MsgType { return MsgDup }

type Sync struct{ Ticks int64 }

func (*Sync) MsgType() MsgType { return MsgSync }

type BeginOK struct{ Txn uint64 }

func (*BeginOK) MsgType() MsgType { return MsgBeginOK }

type ErrorMsg struct{ Text string }

func (*ErrorMsg) MsgType() MsgType { return MsgError }

func newMessage(t MsgType) (Message, error) {
	switch t {
	case MsgBegin:
		return &Begin{}, nil
	case MsgRead:
		return &Read{}, nil
	// MsgCommit deliberately missing.
	case MsgDup:
		return &Dup{}, nil
	case MsgGhost:
		return nil, fmt.Errorf("ghost has no frame")
	case MsgSync:
		return &Sync{}, nil
	case MsgBeginOK:
		return &BeginOK{}, nil
	case MsgError:
		return &ErrorMsg{}, nil
	}
	return nil, fmt.Errorf("unknown message type %d", t)
}

var _ = newMessage

// Batchable mimics the real package's batch-transport classifier: every
// request constant must be deliberately classified. MsgSync is
// deliberately missing from the switch to exercise check 5.
func Batchable(t MsgType) bool {
	switch t {
	case MsgBegin, MsgRead:
		return true
	case MsgCommit, MsgDup, MsgGhost:
		return false
	}
	return false
}

var _ = Batchable
