// Package server mimics the real server's dispatch: a type switch over
// wire.Message. MsgRead's frame is deliberately not handled.
package server

import wire "github.com/epsilondb/epsilondb/internal/analysis/wireexhaustive/testdata/src/wire"

type Server struct{}

func (s *Server) dispatch(msg wire.Message) wire.Message {
	switch m := msg.(type) {
	case *wire.Begin:
		_ = m
		return &wire.BeginOK{Txn: 1}
	case *wire.Commit:
		return &wire.BeginOK{}
	case *wire.Dup:
		return &wire.BeginOK{}
	case *wire.Sync:
		return &wire.BeginOK{}
	}
	return &wire.ErrorMsg{Text: "unhandled"}
}

var _ = (*Server).dispatch
