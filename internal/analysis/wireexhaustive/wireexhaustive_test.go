package wireexhaustive_test

import (
	"testing"

	"github.com/epsilondb/epsilondb/internal/analysis/analysistest"
	"github.com/epsilondb/epsilondb/internal/analysis/wireexhaustive"
)

func TestWireexhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", wireexhaustive.Analyzer, "wire", "server")
}
