// Package wireexhaustive enforces end-to-end plumbing of the wire
// protocol: every message-type constant declared in the wire package must
// be decodable, encodable, printable, and — for request types — handled
// by the server. Adding a MsgFoo constant without the rest of the
// plumbing fails `make lint` instead of failing at runtime with a
// generic "unknown message" error.
//
// Checks, anchored at the constant's declaration:
//
//  1. a case in the decode factory (the function named newMessage);
//  2. a case in MsgType.String (protocol observability);
//  3. exactly one message struct whose MsgType() method returns it
//     (the encode linkage: frames are typed by that method);
//  4. for request constants (value < responseBase, i.e. 64), a case for
//     the corresponding message struct in at least one type switch over
//     wire.Message in the server package (the handler);
//  5. for request constants, a case in the batch-transport classifier
//     (the function named Batchable, when declared): a new request must
//     be deliberately classified as batchable or not, never fall to the
//     default silently.
//
// The analyzer is program-level: checks 1–3 and 5 run whenever the
// program contains a package named "wire" declaring a MsgType; check 4
// runs only when a package named "server" is loaded with it, so
// per-package vettool runs degrade gracefully to the wire-local checks.
package wireexhaustive

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"github.com/epsilondb/epsilondb/internal/analysis"
)

// responseBase is the first response MsgType value; constants below it
// are requests the server must handle.
const responseBase = 64

// Analyzer is the wireexhaustive pass.
var Analyzer = &analysis.Analyzer{
	Name:         "wireexhaustive",
	Doc:          "every wire message type must appear in decode, String, an encode method, and a server handler",
	ProgramLevel: true,
	Run:          run,
}

// msgConst is one MsgType constant.
type msgConst struct {
	name  string
	value int64
	pos   token.Pos
}

func run(pass *analysis.Pass) error {
	wire := pass.Program.Package("wire")
	if wire == nil {
		return nil
	}
	consts := msgTypeConsts(wire)
	if len(consts) == 0 {
		return nil
	}

	decodeCases := switchCaseIdents(wire, funcBody(wire, "newMessage"))
	stringCases := switchCaseIdents(wire, methodBody(wire, "MsgType", "String"))
	encodeOwner := msgTypeMethodReturns(wire)
	batchBody := funcBody(wire, "Batchable")
	batchCases := switchCaseIdents(wire, batchBody)

	handled := map[string]bool{}
	if server := pass.Program.Package("server"); server != nil {
		handled = messageSwitchTypes(server)
	}

	for _, c := range consts {
		if !decodeCases[c.name] {
			pass.Reportf(c.pos, "wire message %s has no case in the decode factory newMessage", c.name)
		}
		if !stringCases[c.name] {
			pass.Reportf(c.pos, "wire message %s has no case in MsgType.String", c.name)
		}
		owners := encodeOwner[c.name]
		switch {
		case len(owners) == 0:
			pass.Reportf(c.pos, "wire message %s is returned by no MsgType() method: no message struct encodes it", c.name)
		case len(owners) > 1:
			pass.Reportf(c.pos, "wire message %s is returned by %d MsgType() methods: frame types must be unique", c.name, len(owners))
		}
		if c.value < responseBase && len(handled) > 0 {
			covered := false
			for _, owner := range owners {
				if handled[owner] {
					covered = true
				}
			}
			if !covered {
				pass.Reportf(c.pos, "request %s is not handled by any wire.Message type switch in the server package", c.name)
			}
		}
		if c.value < responseBase && batchBody != nil && !batchCases[c.name] {
			pass.Reportf(c.pos, "request %s is not classified by the Batchable switch in the wire package", c.name)
		}
	}
	return nil
}

// msgTypeConsts collects the package-level constants of type MsgType.
func msgTypeConsts(pkg *analysis.Package) []msgConst {
	var out []msgConst
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		cn, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := cn.Type().(*types.Named)
		if !ok || named.Obj().Name() != "MsgType" {
			continue
		}
		v, ok := constant.Int64Val(cn.Val())
		if !ok {
			continue
		}
		out = append(out, msgConst{name: name, value: v, pos: cn.Pos()})
	}
	return out
}

// funcBody finds the body of the package-level function with the given
// name, or nil.
func funcBody(pkg *analysis.Package, name string) *ast.BlockStmt {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if ok && fn.Recv == nil && fn.Name.Name == name {
				return fn.Body
			}
		}
	}
	return nil
}

// methodBody finds the body of recv.name, or nil.
func methodBody(pkg *analysis.Package, recv, name string) *ast.BlockStmt {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Name.Name != name || len(fn.Recv.List) == 0 {
				continue
			}
			if recvTypeName(fn.Recv.List[0].Type) == recv {
				return fn.Body
			}
		}
	}
	return nil
}

// switchCaseIdents collects the identifiers used as case expressions in
// every switch inside body.
func switchCaseIdents(pkg *analysis.Package, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	if body == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if id, ok := unparen(e).(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// msgTypeMethodReturns maps each returned MsgType constant name to the
// receiver type names of the MsgType() methods returning it.
func msgTypeMethodReturns(pkg *analysis.Package) map[string][]string {
	out := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Name.Name != "MsgType" || fn.Body == nil || len(fn.Recv.List) == 0 {
				continue
			}
			owner := recvTypeName(fn.Recv.List[0].Type)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || len(ret.Results) != 1 {
					return true
				}
				if id, ok := unparen(ret.Results[0]).(*ast.Ident); ok {
					out[id.Name] = append(out[id.Name], owner)
				}
				return true
			})
		}
	}
	return out
}

// messageSwitchTypes collects, across all type switches in the package
// whose subject is a named type Message from a package named wire, the
// names of the case types (through pointers).
func messageSwitchTypes(pkg *analysis.Package) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			if !isWireMessageSwitch(pkg, ts) {
				return true
			}
			for _, clause := range ts.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					tv, ok := pkg.Info.Types[e]
					if !ok {
						continue
					}
					if name := namedTypeName(tv.Type, "wire"); name != "" {
						out[name] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// isWireMessageSwitch reports whether the type switch asserts on a value
// of type wire.Message.
func isWireMessageSwitch(pkg *analysis.Package, ts *ast.TypeSwitchStmt) bool {
	var assert *ast.TypeAssertExpr
	switch s := ts.Assign.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			assert, _ = s.Rhs[0].(*ast.TypeAssertExpr)
		}
	case *ast.ExprStmt:
		assert, _ = s.X.(*ast.TypeAssertExpr)
	}
	if assert == nil {
		return false
	}
	tv, ok := pkg.Info.Types[assert.X]
	if !ok {
		return false
	}
	return namedTypeName(tv.Type, "wire") == "Message"
}

// namedTypeName returns the name of the named type behind t (through one
// pointer) if it is declared in a package with the given name, else "".
func namedTypeName(t types.Type, pkgName string) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != pkgName {
		return ""
	}
	return obj.Name()
}

// recvTypeName returns the base identifier of a receiver type.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.ParenExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
