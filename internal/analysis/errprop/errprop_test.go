package errprop_test

import (
	"testing"

	"github.com/epsilondb/epsilondb/internal/analysis/analysistest"
	"github.com/epsilondb/epsilondb/internal/analysis/errprop"
)

func TestErrprop(t *testing.T) {
	analysistest.Run(t, "testdata", errprop.Analyzer, "storage", "wal", "client")
}
