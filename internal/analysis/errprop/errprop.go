// Package errprop checks durability error propagation. A transaction
// that commits in memory but whose log write fails is the one state the
// paper's recovery argument cannot repair silently, so the error results
// of the durability surface — methods of the storage.Durability and
// storage.Ack interfaces, methods of *wal.Log, and the wal package's
// functions — must reach a handler: returned, wrapped (engines match
// them as *DurabilityError), or branched on. Discarding one is reported:
//
//   - a bare call statement (`d.LogCreate(...)`),
//   - assignment to the blank identifier (`_ = log.Sync()`),
//   - assignment to a variable that is never subsequently read,
//   - `go` / `defer` of such a call (the result is unrecoverable there).
//
// A deliberate discard must say why:
//
//	//lint:ignore errprop <reason>
//
// either trailing on the call's line or on the line above it. The
// suppression is surfaced by `esr-lint -json` so waived call sites stay
// auditable.
package errprop

import (
	"go/ast"
	"go/types"

	"github.com/epsilondb/epsilondb/internal/analysis"
)

// Analyzer is the errprop analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errprop",
	Doc:  "error results of the durability surface (storage.Durability, storage.Ack, wal) must be handled or explicitly suppressed",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	reads := countReads(pkg)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, fn := matchCall(pkg, n.X); fn != nil && len(errIndices(fn)) > 0 {
					pass.Reportf(call.Pos(), "error result of %s discarded: handle it, return it, or annotate //lint:ignore errprop", fnLabel(fn))
				}
			case *ast.GoStmt:
				if call, fn := matchCall(pkg, n.Call); fn != nil && len(errIndices(fn)) > 0 {
					pass.Reportf(call.Pos(), "error result of %s lost in go statement: call it synchronously or handle the error in the goroutine", fnLabel(fn))
				}
			case *ast.DeferStmt:
				if call, fn := matchCall(pkg, n.Call); fn != nil && len(errIndices(fn)) > 0 {
					pass.Reportf(call.Pos(), "error result of %s lost in defer: wrap it in a closure that handles the error", fnLabel(fn))
				}
			case *ast.AssignStmt:
				checkAssign(pass, pkg, reads, n)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags error results of a matched call assigned to blank or
// to variables never read afterwards.
func checkAssign(pass *analysis.Pass, pkg *analysis.Package, reads map[types.Object]int, n *ast.AssignStmt) {
	if len(n.Rhs) != 1 {
		return
	}
	call, fn := matchCall(pkg, n.Rhs[0])
	if fn == nil {
		return
	}
	for _, i := range errIndices(fn) {
		if i >= len(n.Lhs) {
			continue
		}
		id, ok := n.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "error result of %s discarded: handle it, return it, or annotate //lint:ignore errprop", fnLabel(fn))
			continue
		}
		var obj types.Object
		if obj = pkg.Info.Defs[id]; obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj != nil && reads[obj] == 0 {
			pass.Reportf(call.Pos(), "error result of %s assigned to %s but never read", fnLabel(fn), id.Name)
		}
	}
}

// matchCall returns the called function when e is a call into the
// durability surface: methods of the storage.Durability or storage.Ack
// interfaces, methods of wal.Log, or wal package functions.
func matchCall(pkg *analysis.Package, e ast.Expr) (*ast.CallExpr, *types.Func) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return call, nil
	}
	if s, ok := pkg.Info.Selections[sel]; ok {
		fn, ok := s.Obj().(*types.Func)
		if !ok {
			return call, nil
		}
		if named := namedOf(s.Recv()); named != nil {
			obj := named.Obj()
			if obj.Pkg() == nil {
				return call, nil
			}
			switch {
			case obj.Pkg().Name() == "storage" && (obj.Name() == "Durability" || obj.Name() == "Ack"):
				return call, fn
			case obj.Pkg().Name() == "wal" && obj.Name() == "Log":
				return call, fn
			}
		}
		return call, nil
	}
	// Package-qualified: wal.Open, wal.Replay, ...
	if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
		if fn.Pkg() != nil && fn.Pkg().Name() == "wal" && fn.Type().(*types.Signature).Recv() == nil {
			return call, fn
		}
	}
	return call, nil
}

// errIndices returns the result positions of type error.
func errIndices(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []int
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), types.Universe.Lookup("error").Type()) {
			out = append(out, i)
		}
	}
	return out
}

func fnLabel(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// countReads counts genuine reads per object: every use that is not the
// target of an assignment. Writing a variable again does not consume the
// error previously stored in it.
func countReads(pkg *analysis.Package) map[types.Object]int {
	assignTargets := map[*ast.Ident]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if a, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range a.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						assignTargets[id] = true
					}
				}
			}
			return true
		})
	}
	reads := map[types.Object]int{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || assignTargets[id] {
				return true
			}
			if obj := pkg.Info.Uses[id]; obj != nil {
				reads[obj]++
			}
			return true
		})
	}
	return reads
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
