// Package wal is the golden model of the concrete log type and package
// functions whose error results the errprop analyzer tracks.
package wal

// Log mirrors wal.Log.
type Log struct{}

// Sync flushes and fsyncs the log.
func (l *Log) Sync() error { return nil }

// Close stops the committer.
func (l *Log) Close() error { return nil }

// Kill stops the committer without flushing; it cannot fail.
func (l *Log) Kill() {}

// Open replays and opens a log directory.
func Open(dir string) (*Log, error) { return &Log{}, nil }
