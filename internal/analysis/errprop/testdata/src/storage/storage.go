// Package storage is the golden model of the durability surface the
// errprop analyzer guards: the Durability and Ack interfaces.
package storage

// TxnCommit mirrors the durability commit record.
type TxnCommit struct{ Txn int }

// Ack mirrors the group-commit acknowledgement handle.
type Ack interface{ Wait() error }

// Durability mirrors the engine-facing durability interface.
type Durability interface {
	LogCommit(rec *TxnCommit, publish func()) (Ack, error)
	LogCreate(id int, apply func() error) error
	LogSetAllLimits(oil, oel int64, apply func()) error
}
