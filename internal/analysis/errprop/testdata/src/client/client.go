// Package client exercises the errprop analyzer: every way a durability
// error can be dropped, and the shapes that consume it properly.
package client

import (
	"github.com/epsilondb/epsilondb/internal/analysis/errprop/testdata/src/storage"
	"github.com/epsilondb/epsilondb/internal/analysis/errprop/testdata/src/wal"
)

// savedErr is written by stash below and never read anywhere.
var savedErr error

// DurabilityError mirrors the engines' typed wrapper; the contract is
// that discarded-looking errors are in fact wrapped and returned.
type DurabilityError struct{ Err error }

func (e *DurabilityError) Error() string { return "durability: " + e.Err.Error() }

func drops(d storage.Durability, l *wal.Log) {
	d.LogCreate(1, nil) // want `error result of Durability.LogCreate discarded`

	_ = l.Sync() // want `error result of Log.Sync discarded`

	_, _ = d.LogCommit(&storage.TxnCommit{}, nil) // want `error result of Durability.LogCommit discarded`

	savedErr = l.Sync() // want `error result of Log.Sync assigned to savedErr but never read`

	go l.Sync() // want `error result of Log.Sync lost in go statement`

	defer l.Sync() // want `error result of Log.Sync lost in defer`

	l.Kill() // no error result: nothing to drop
}

// ignoredDurabilityError is the annotated form of a deliberate drop: the
// suppression needs a reason and is surfaced by esr-lint -json.
func ignoredDurabilityError(d storage.Durability) {
	//lint:ignore errprop limit sweep must proceed on a poisoned log; commits surface the failure
	d.LogSetAllLimits(1, 2, nil)
}

func handles(d storage.Durability, l *wal.Log) error {
	if err := l.Sync(); err != nil {
		return &DurabilityError{Err: err}
	}
	ack, err := d.LogCommit(&storage.TxnCommit{}, func() {})
	if err != nil {
		return &DurabilityError{Err: err}
	}
	if err := ack.Wait(); err != nil {
		return &DurabilityError{Err: err}
	}
	lg, err := wal.Open("dir")
	if err != nil {
		return err
	}
	return lg.Close()
}
