package server

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/client"
	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/txnlang"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// startServer builds a server over n objects (ids 1..n, value 100*id,
// unbounded object limits) and returns its address plus a cleanup.
func startServer(t *testing.T, n int, engineOpts tso.Options, opts Options) (string, *Server) {
	t.Helper()
	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for i := 1; i <= n; i++ {
		if _, err := st.Create(core.ObjectID(i), core.Value(100*i)); err != nil {
			t.Fatal(err)
		}
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	srv := New(tso.NewEngine(st, engineOpts), opts)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String(), srv
}

// sharedClock gives every client and the server one logical time source
// so timestamps are comparable across sites.
func dialLogical(t *testing.T, addr string, site int, clock tsgen.Clock) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, client.Options{Site: site, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestEndToEndUpdateThenQuery(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	addr, _ := startServer(t, 3, tso.Options{}, Options{Clock: clock})
	c := dialLogical(t, addr, 1, clock)

	up := core.NewUpdate(0).Read(1).WriteDelta(2, 50)
	if _, _, err := c.RunRetry(up, 10); err != nil {
		t.Fatal(err)
	}
	res, _, err := c.RunRetry(core.NewQuery(0, 1, 2, 3), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 100+250+300 {
		t.Errorf("Sum = %d, want 650", res.Sum)
	}
}

func TestEndToEndAbortAndRetryAcrossClients(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	col := &metrics.Collector{}
	addr, _ := startServer(t, 1, tso.Options{Collector: col}, Options{Clock: clock})
	c1 := dialLogical(t, addr, 1, clock)
	c2 := dialLogical(t, addr, 2, clock)

	// c1 begins an SR query with an older timestamp, c2 commits a write,
	// then c1's read must abort and the retry succeed.
	q, err := c1.Begin(core.Query, core.SRSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.RunRetry(core.NewUpdate(0).WriteDelta(1, 7), 10); err != nil {
		t.Fatal(err)
	}
	_, err = q.Read(1)
	ae, ok := client.IsAbort(err)
	if !ok {
		t.Fatalf("want abort, got %v", err)
	}
	if ae.Reason != metrics.AbortLateRead {
		t.Errorf("reason = %v, want late-read", ae.Reason)
	}
	res, attempts, err := c1.RunRetry(core.NewQuery(0, 1), 10)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 || res.Sum != 107 {
		t.Errorf("attempts=%d sum=%d", attempts, res.Sum)
	}
	if col.Snapshot().Aborts() != 1 {
		t.Errorf("server aborts = %d, want 1", col.Snapshot().Aborts())
	}
}

func TestClockSkewCorrectedBySyncHandshake(t *testing.T) {
	// The server runs on a reference clock; the client's local clock lags
	// by "two minutes" of ticks. Without correction every client
	// timestamp would be hopelessly old and every read late; the sync
	// handshake must fix it.
	ref := &tsgen.LogicalClock{}
	ref.Set(1_000_000)
	addr, _ := startServer(t, 1, tso.Options{}, Options{Clock: ref})

	skewed := tsgen.SkewedClock{Base: ref, Skew: -120_000}
	c, err := client.Dial(addr, client.Options{Site: 1, Clock: skewed})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if corr := c.Correction(); corr < 119_000 || corr > 121_000 {
		t.Errorf("correction = %d, want ≈120000", corr)
	}

	// A fast client on the reference clock commits writes; the skewed
	// client must still make progress thanks to the correction.
	fast := dialLogical(t, addr, 2, ref)
	for i := 0; i < 5; i++ {
		if _, _, err := fast.RunRetry(core.NewUpdate(0).WriteDelta(1, 1), 10); err != nil {
			t.Fatal(err)
		}
		if _, attempts, err := c.RunRetry(core.NewQuery(0, 1), 10); err != nil {
			t.Fatal(err)
		} else if attempts > 3 {
			t.Errorf("skewed client needed %d attempts", attempts)
		}
	}
}

func TestStatsProbe(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	col := &metrics.Collector{}
	addr, _ := startServer(t, 2, tso.Options{Collector: col}, Options{Clock: clock})
	c := dialLogical(t, addr, 1, clock)
	if _, _, err := c.RunRetry(core.NewQuery(0, 1, 2), 10); err != nil {
		t.Fatal(err)
	}
	snap, misses, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Commits != 1 || snap.ReadsExecuted != 2 {
		t.Errorf("snapshot = %+v", snap)
	}
	if misses != 0 {
		t.Errorf("misses = %d", misses)
	}
}

func TestCommitUnknownTxnIsGenericError(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	addr, _ := startServer(t, 1, tso.Options{}, Options{Clock: clock})
	c := dialLogical(t, addr, 1, clock)
	txn, err := c.Begin(core.Query, core.SRSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	err = txn.Commit()
	if err == nil || !strings.Contains(err.Error(), "already finished") {
		t.Errorf("double commit error = %v", err)
	}
}

func TestSimulatedLatencySlowsOperations(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	addr, _ := startServer(t, 1, tso.Options{}, Options{Clock: clock, SimulatedLatency: 20 * time.Millisecond})
	c := dialLogical(t, addr, 1, clock)
	start := time.Now()
	if _, _, err := c.RunRetry(core.NewQuery(0, 1), 10); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("one read took %v, want ≥ simulated 20ms", elapsed)
	}
}

func TestConcurrentClientsConservation(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	addr, srv := startServer(t, 5, tso.Options{}, Options{Clock: clock})
	const clients = 4
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		site := i + 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{Site: site, Clock: clock})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 25; j++ {
				a := core.ObjectID(1 + (site+j)%5)
				b := core.ObjectID(1 + (site+j+2)%5)
				p := core.NewUpdate(core.NoLimit).WriteDelta(a, 5).WriteDelta(b, -5)
				if _, _, err := c.RunRetry(p, 0); err != nil {
					t.Errorf("site %d: %v", site, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if total := srv.Engine().Store().TotalValue(); total != 100+200+300+400+500 {
		t.Errorf("total = %d, conservation violated", total)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	addr, srv := startServer(t, 1, tso.Options{}, Options{Clock: clock})
	c := dialLogical(t, addr, 1, clock)
	if _, _, err := c.RunRetry(core.NewQuery(0, 1), 10); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RunRetry(core.NewQuery(0, 1), 1); err == nil {
		t.Error("request after Close succeeded")
	}
}

func TestESRQueryAgainstConcurrentUpdatesEndToEnd(t *testing.T) {
	// The paper's §3.2.1 promise, end to end over TCP: a query with TIL
	// T returns a sum within T of a consistent value, even while updates
	// run. One updater repeatedly moves ±delta; the query's result must
	// stay within TIL of the (conserved) true total.
	clock := &tsgen.LogicalClock{}
	addr, srv := startServer(t, 4, tso.Options{}, Options{Clock: clock})
	trueTotal := srv.Engine().Store().TotalValue()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := client.Dial(addr, client.Options{Site: 9, Clock: clock})
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := core.NewUpdate(core.NoLimit).WriteDelta(1, 3).WriteDelta(2, -3)
			if _, _, err := c.RunRetry(p, 0); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const til = 500
	qc := dialLogical(t, addr, 1, clock)
	for i := 0; i < 20; i++ {
		res, _, err := qc.RunRetry(core.NewQuery(til, 1, 2, 3, 4), 0)
		if err != nil {
			t.Fatal(err)
		}
		diff := res.Sum - trueTotal
		if diff < 0 {
			diff = -diff
		}
		// Imports are bounded by TIL; concurrent unbounded-TEL exports
		// can add at most the updater's per-txn delta (3) per concurrent
		// update. Use a generous but finite envelope.
		if diff > til+100 {
			t.Errorf("query sum %d deviates by %d from %d", res.Sum, diff, trueTotal)
		}
	}
	close(stop)
	wg.Wait()
}

func TestTransactionLanguageOverTCP(t *testing.T) {
	// The paper's end-to-end shape: a txnlang script submitted by a
	// client, executed by the server, retried on aborts.
	clock := &tsgen.LogicalClock{}
	addr, _ := startServer(t, 3, tso.Options{}, Options{Clock: clock})
	c := dialLogical(t, addr, 1, clock)

	update, err := txnlang.Parse("BEGIN Update TEL 0\nt = Read 1\nWrite 2 , t+50\nCOMMIT\n")
	if err != nil {
		t.Fatal(err)
	}
	runner := txnlang.ClientRunner{Client: c}
	if _, _, err := txnlang.RunRetry(update, runner, nil, 10); err != nil {
		t.Fatal(err)
	}

	query, err := txnlang.Parse("BEGIN Query TIL 100\nt1 = Read 2\nt2 = Read 3\noutput(\"sum: \", t1+t2)\nCOMMIT\n")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := txnlang.RunRetry(query, runner, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 || res.Outputs[0].Text != "sum: 450" {
		t.Errorf("outputs = %v, want sum: 450", res.Outputs)
	}
}

func TestServerRejectsResponseTypedRequests(t *testing.T) {
	// A peer sending a response-typed message must get a generic error,
	// not a crash or a hang.
	clock := &tsgen.LogicalClock{}
	addr, _ := startServer(t, 1, tso.Options{}, Options{Clock: clock})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := wire.NewConn(nc)
	if err := conn.WriteMessage(&wire.BeginOK{Txn: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	we, ok := resp.(*wire.Error)
	if !ok || we.Code != wire.CodeGeneric {
		t.Errorf("resp = %#v", resp)
	}
}

func TestServerSurvivesGarbageBytes(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	addr, _ := startServer(t, 1, tso.Options{}, Options{Clock: clock, Logf: func(string, ...any) {}})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	nc.Close()
	// The server must still serve a proper client afterwards.
	c := dialLogical(t, addr, 3, clock)
	if _, _, err := c.RunRetry(core.NewQuery(0, 1), 10); err != nil {
		t.Fatal(err)
	}
}

func TestServerReportsUnknownMessageAndCloses(t *testing.T) {
	// A frame with an unrecognized type byte must produce a protocol
	// error naming the tag, then a clean close — not a silent hang or a
	// dropped connection with no explanation.
	clock := &tsgen.LogicalClock{}
	addr, _ := startServer(t, 1, tso.Options{}, Options{Clock: clock, Logf: func(string, ...any) {}})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	frame := []byte{wire.Magic[0], wire.Magic[1], wire.Version, 42, 0, 0, 0, 0}
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn := wire.NewConn(nc)
	resp, err := conn.ReadMessage()
	if err != nil {
		t.Fatalf("reading error response: %v", err)
	}
	we, ok := resp.(*wire.Error)
	if !ok || we.Code != wire.CodeGeneric || !strings.Contains(we.Message, "unknown message type 42") {
		t.Errorf("resp = %#v, want generic error naming type 42", resp)
	}
	if _, err := conn.ReadMessage(); err != io.EOF {
		t.Errorf("read after error response = %v, want io.EOF (server closed)", err)
	}
}
