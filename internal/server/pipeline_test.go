package server

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/client"
	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/wal"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// dialPipelined dials with the demultiplexing core enabled.
func dialPipelined(t *testing.T, addr string, site, depth int, clock tsgen.Clock) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, client.Options{Site: site, Clock: clock, Pipeline: depth})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestPipelinedEndToEnd drives many concurrent transactions through one
// pipelined connection against the real server: tagged decode, inline
// dispatch, async commit acks and reply coalescing all on the line.
func TestPipelinedEndToEnd(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	addr, srv := startServer(t, 8, tso.Options{}, Options{Clock: clock})
	c := dialPipelined(t, addr, 1, 16, clock)

	const workers, txnsEach = 4, 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obj := core.ObjectID(w + 1)
			for i := 0; i < txnsEach; i++ {
				p := core.NewUpdate(0).WriteDelta(obj, 1)
				if _, _, err := c.RunRetry(p, 0); err != nil {
					errs <- fmt.Errorf("worker %d txn %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every increment must have landed exactly once.
	for w := 0; w < workers; w++ {
		obj := core.ObjectID(w + 1)
		q := core.NewQuery(core.NoLimit).Read(obj)
		res, _, err := c.RunRetry(q, 0)
		if err != nil {
			t.Fatalf("verify read %d: %v", obj, err)
		}
		want := core.Value(100*int(obj) + txnsEach)
		if res.Sum != want {
			t.Errorf("object %d = %d, want %d", obj, res.Sum, want)
		}
	}
	if live := srv.Engine().Live(); live != 0 {
		t.Errorf("%d transactions still live after drain", live)
	}
}

// TestBatchedProgramEndToEnd runs whole programs as Batch frames against
// the real server, including the abort/retry path.
func TestBatchedProgramEndToEnd(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	addr, srv := startServer(t, 4, tso.Options{}, Options{Clock: clock})
	c := dialPipelined(t, addr, 1, 8, clock)

	p := core.NewUpdate(0).Read(1).WriteDelta(2, 5).WriteDelta(3, -2)
	res, err := c.RunProgramBatched(p, 0) // whole program in one frame
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 100 {
		t.Errorf("read value = %d, want 100", res.Values[0])
	}
	if res.Values[1] != 205 || res.Values[2] != 298 {
		t.Errorf("write results = %v", res.Values[1:])
	}
	// Small batches chunk the same program across frames.
	if _, err := c.RunProgramBatched(p, 2); err != nil {
		t.Fatal(err)
	}
	q := core.NewQuery(core.NoLimit).Read(2).Read(3)
	qres, _, err := c.RunRetryBatched(q, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := core.Value(205 + 5 + 298 - 2); qres.Sum != want {
		t.Errorf("query sum = %d, want %d", qres.Sum, want)
	}
	if live := srv.Engine().Live(); live != 0 {
		t.Errorf("%d transactions still live", live)
	}
}

// TestPipelinedGroupCommitAcks commits many transactions concurrently
// over one pipelined connection with a WAL underneath: the async commit
// dispatchers block on the same group-commit fsyncs, and every ack must
// still reach its caller.
func TestPipelinedGroupCommitAcks(t *testing.T) {
	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for i := 1; i <= 8; i++ {
		if _, err := st.Create(core.ObjectID(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	l, err := wal.Open(wal.NewMemFS(), st, wal.Options{SyncInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	clock := &tsgen.LogicalClock{}
	srv := New(tso.NewEngine(st, tso.Options{Durability: l}), Options{Clock: clock, Logf: t.Logf})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := dialPipelined(t, addr.String(), 1, 32, clock)

	const workers, txnsEach = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsEach; i++ {
				p := core.NewUpdate(0).WriteDelta(core.ObjectID(w+1), 1)
				if _, _, err := c.RunRetry(p, 0); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		res, _, err := c.RunRetry(core.NewQuery(core.NoLimit).Read(core.ObjectID(w+1)), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sum != txnsEach {
			t.Errorf("object %d = %d, want %d", w+1, res.Sum, txnsEach)
		}
	}
}

// TestUntaggedFrameAfterPipeliningDrops pins the mode latch: once a
// connection spoke an envelope frame, a bare request is a protocol error
// and the server hangs up instead of racing its response writer.
func TestUntaggedFrameAfterPipeliningDrops(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	addr, _ := startServer(t, 2, tso.Options{}, Options{Clock: clock})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := wire.NewConn(nc)
	if err := conn.WriteMessage(&wire.Tagged{Tag: 1, Inner: &wire.Sync{ClientTicks: 1}}); err != nil {
		t.Fatal(err)
	}
	m, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if tr, ok := m.(*wire.TaggedReply); !ok || tr.Tag != 1 {
		t.Fatalf("first reply = %v, want TaggedReply tag 1", m.MsgType())
	}
	// Now break the rules: a bare Sync on a pipelined connection.
	if err := conn.WriteMessage(&wire.Sync{ClientTicks: 2}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.ReadMessage(); err == nil {
		t.Fatal("server answered an untagged frame on a pipelined connection")
	}
}
