package server

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"

	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/tso"
)

// debugEngines is the set of engines exposed through the process-wide
// expvar namespace. expvar.Publish panics on duplicate names, so the
// variable is published once and reads whatever engines are currently
// registered (tests and embedded deployments may build several).
var (
	debugMu      sync.Mutex
	debugEngines []*tso.Engine
	debugOnce    sync.Once
)

func registerDebugEngine(e *tso.Engine) {
	debugMu.Lock()
	debugEngines = append(debugEngines, e)
	debugMu.Unlock()
	debugOnce.Do(func() {
		expvar.Publish("esr", expvar.Func(func() any {
			debugMu.Lock()
			engines := append([]*tso.Engine(nil), debugEngines...)
			debugMu.Unlock()
			if len(engines) == 1 {
				return debugStats(engines[0])
			}
			out := make([]any, len(engines))
			for i, e := range engines {
				out[i] = debugStats(e)
			}
			return out
		}))
	})
}

// latencySummary is the per-path digest served by /debug/esr.
type latencySummary struct {
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P95Ns  int64   `json:"p95_ns"`
	P99Ns  int64   `json:"p99_ns"`
}

func summarize(h metrics.HistogramSnapshot) latencySummary {
	return latencySummary{
		Count:  h.Count,
		MeanNs: h.Mean(),
		P50Ns:  h.Quantile(0.50),
		P95Ns:  h.Quantile(0.95),
		P99Ns:  h.Quantile(0.99),
	}
}

// debugStats assembles the live observability view of one engine.
func debugStats(e *tso.Engine) map[string]any {
	s := e.MetricsSnapshot()
	lat := e.LatencySnapshot()
	latencies := make(map[string]latencySummary, len(lat))
	for k := range lat {
		latencies[metrics.LatencyKind(k).String()] = summarize(lat[k])
	}
	return map[string]any{
		"counters": map[string]int64{
			"begins":               s.Begins,
			"commits":              s.Commits,
			"aborts":               s.Aborts(),
			"reads_executed":       s.ReadsExecuted,
			"writes_executed":      s.WritesExecuted,
			"inconsistent_reads":   s.InconsistentReads,
			"inconsistent_writes":  s.InconsistentWrites,
			"wasted_ops":           s.WastedOps,
			"waits":                s.Waits,
			"dirty_source_aborted": s.DirtySourceAborted,
			"proper_misses":        e.Store().ProperMisses(),
		},
		"abort_breakdown": s.AbortBreakdown(),
		"live_txns":       e.Live(),
		"latency":         latencies,
	}
}

// DebugMux builds the HTTP handler behind esr-server's -debug-addr: the
// expvar dump at /debug/vars, the pprof suite at /debug/pprof/, and the
// ESR-specific /debug/esr JSON with counters, the abort-reason breakdown,
// the live-transaction gauge, and p50/p95/p99 per engine path.
func DebugMux(e *tso.Engine) *http.ServeMux {
	registerDebugEngine(e)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/esr", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(debugStats(e)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
