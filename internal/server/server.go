// Package server implements the central transaction server of the
// prototype (§6). Architecturally it matches the paper's decomposition:
//
//   - the *scheduler* front-end receives transaction requests from
//     clients and orders operations by timestamp — here, the per-
//     connection goroutines dispatching into the engine;
//   - the *transaction manager* maintains per-transaction state
//     (timestamps, accumulated inconsistency) — internal/tso;
//   - the *data manager* maintains the objects and their inconsistency
//     bookkeeping — internal/storage.
//
// The database lives in main memory and is loaded from start-up data at
// launch; object limits are defined server-side (§6). A configurable
// per-operation latency reproduces the prototype's RPC cost (a null RPC
// took ~11 ms, the average call 17–20 ms) so paper-scale and scaled-down
// runs share one code path.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/wal"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// Options configures a Server.
type Options struct {
	// SimulatedLatency is added to every data operation, emulating the
	// prototype's RPC round trip. Zero disables it.
	SimulatedLatency time.Duration
	// Clock answers Sync probes; nil means the wall clock. Experiments
	// use a logical clock for determinism.
	Clock tsgen.Clock
	// Logf receives connection-level diagnostics; nil uses log.Printf.
	Logf func(format string, args ...any)
	// IdleTimeout bounds the wait for the next request on a connection.
	// A client that dies mid-transaction without breaking the TCP
	// stream (network partition, frozen process, a dropped request
	// frame) would otherwise pin its open transactions — and every
	// conflicting operation behind their pending writes — forever. On
	// expiry the connection is dropped and its open transactions
	// aborted. Zero disables (the seed behavior).
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response; a peer that stops
	// reading cannot wedge the connection goroutine once the kernel
	// buffer fills. Zero disables.
	WriteTimeout time.Duration
	// WrapConn, when non-nil, wraps every accepted connection before it
	// is served — the hook the fault-injection harness uses. The
	// wrapper must forward deadlines and Close.
	WrapConn func(net.Conn) net.Conn
	// Feed, when non-nil, enables the replication feed: a connection
	// that sends ReplicaHello turns into a one-way committed-write
	// stream subscribed to this log. Nil rejects the handshake.
	Feed *wal.Log
}

// Backend is the engine surface the server dispatches requests into.
// *tso.Engine is the primary implementation; replica.Engine serves the
// query-only follower role.
type Backend interface {
	Begin(kind core.Kind, ts tsgen.Timestamp, spec core.BoundSpec) (core.TxnID, error)
	Read(txn core.TxnID, obj core.ObjectID) (core.Value, error)
	Write(txn core.TxnID, obj core.ObjectID, v core.Value) error
	WriteDelta(txn core.TxnID, obj core.ObjectID, delta core.Value) (core.Value, error)
	Commit(txn core.TxnID) error
	Abort(txn core.TxnID) error
	MetricsSnapshot() metrics.Snapshot
	LatencySnapshot() metrics.LatencySet
	Live() int
	Store() *storage.Store
}

// Server accepts client connections and serves the five basic operations
// plus the sync and stats probes.
type Server struct {
	engine Backend
	// tsoEngine is set when the backend is the primary TO engine; it is
	// what Engine() exposes to embedded deployments and tools.
	tsoEngine *tso.Engine
	opts      Options

	// drain is closed when shutdown begins: connection goroutines stop
	// picking up new requests, the accept loop stops backoff waits.
	drain chan struct{}

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// New returns a server around the primary TO engine.
func New(engine *tso.Engine, opts Options) *Server {
	s := NewBackend(engine, opts)
	s.tsoEngine = engine
	return s
}

// NewBackend returns a server around any Backend — the constructor the
// replica process uses to serve query transactions from a follower.
func NewBackend(engine Backend, opts Options) *Server {
	if opts.Clock == nil {
		opts.Clock = tsgen.WallClock{}
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	return &Server{
		engine: engine,
		opts:   opts,
		conns:  make(map[net.Conn]struct{}),
		drain:  make(chan struct{}),
	}
}

// Engine exposes the underlying TO engine when the server fronts one
// (nil for replica backends); used by embedded deployments and the
// measurement tools.
func (s *Server) Engine() *tso.Engine { return s.tsoEngine }

// Backend exposes the dispatch target regardless of its concrete type.
func (s *Server) Backend() Backend { return s.engine }

// Listen starts accepting on the address and returns the bound listener
// address (useful with ":0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := s.Serve(l); err != nil {
		l.Close()
		return nil, err
	}
	return l.Addr(), nil
}

// Serve starts accepting on an existing listener (Listen with a caller-
// built listener — fault-injecting wrappers, systemd sockets, tests).
// It returns immediately; the accept loop runs until Shutdown or Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return nil
}

// acceptBackoffMax caps the accept-loop retry delay.
const acceptBackoffMax = time.Second

// acceptLoop accepts connections until the listener closes. A failed
// Accept is fatal only when it means the listener is gone (net.ErrClosed
// on shutdown); anything else — EMFILE under fd exhaustion,
// ECONNABORTED from a peer that gave up in the backlog — is transient,
// and treating it as fatal (or retrying it hot) would let one overload
// spike take the whole endpoint down. Transient errors are logged and
// retried under exponential backoff that resets on the next success.
func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			s.opts.Logf("server: accept: %v (retrying in %v)", err, backoff)
			timer := time.NewTimer(backoff)
			select {
			case <-s.drain:
				timer.Stop()
				return
			case <-timer.C:
			}
			continue
		}
		backoff = 0
		if s.opts.WrapConn != nil {
			conn = s.opts.WrapConn(conn)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
			conn.Close()
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Shutdown stops the server gracefully: it stops accepting, lets every
// request already executing finish and its response reach the wire,
// aborts transactions still open on their connections (releasing engine
// state so nothing stays blocked behind their pending writes), and only
// then closes the connections. Connections idle in a read wait are
// nudged out via an immediate read deadline rather than a hard close, so
// no response is ever truncated.
//
// If ctx expires before the drain completes, the remaining connections
// are hard-closed (their open transactions are still aborted by the
// connection goroutines' cleanup on the way out). The returned error is
// the listener's close error, if any.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.closed
	s.closed = true
	l := s.listener
	s.listener = nil
	s.mu.Unlock()
	if first {
		close(s.drain)
	}
	var err error
	if l != nil {
		err = l.Close()
	}
	// Unblock connections waiting for a request; their serve loops see
	// the drain signal and exit through the open-transaction cleanup.
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now()) //nolint:errcheck // best-effort nudge
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	// Re-nudge periodically: a connection goroutine that was between its
	// drain check and its next read when the first nudge landed may have
	// re-armed its own (longer) deadline over it.
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return err
		case <-ticker.C:
			s.mu.Lock()
			for c := range s.conns {
				c.SetReadDeadline(time.Now()) //nolint:errcheck
			}
			s.mu.Unlock()
		case <-ctx.Done():
			s.mu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.mu.Unlock()
			<-done
			return err
		}
	}
}

// Close is Shutdown with zero grace: in-flight requests are cut off by
// closing their connections, though open transactions are still aborted
// and engine state released before Close returns.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return s.Shutdown(ctx)
}

// draining reports whether shutdown has begun.
func (s *Server) draining() bool {
	select {
	case <-s.drain:
		return true
	default:
		return false
	}
}

// ServeConn serves one client connection until EOF, error, idle timeout
// or server shutdown. It may be called directly with an in-process pipe
// for embedded deployments (deadlines and shutdown nudges then apply
// only if the pipe implements them).
//
// The server tracks the transactions each connection has open and aborts
// any still live when the connection ends — whatever the exit path: a
// client that dies (or whose wire breaks, or that goes silent past the
// idle timeout) mid-transaction must not strand pending writes that
// block every later conflicting operation.
func (s *Server) ServeConn(rw io.ReadWriter) {
	conn := wire.NewConn(rw)
	open := make(map[core.TxnID]struct{})
	// rb holds this connection's response structs. On the untagged path
	// RPC is synchronous — one request in flight per connection — so the
	// previous response is always fully written before dispatch builds
	// the next one, and the loop reuses the same structs instead of
	// allocating per reply. The pipelined path draws from respBufPool
	// instead (pipeline.go).
	var rb respBuf
	defer func() {
		for txn := range open {
			// ErrUnknownTxn just means the engine finished it first.
			if err := s.engine.Abort(txn); err == nil {
				s.opts.Logf("server: %s: aborted orphaned txn %d on disconnect", conn.RemoteAddr(), txn)
			}
		}
	}()
	// cp is non-nil once the connection switched into pipelined mode.
	// Its teardown defer runs before the orphan cleanup above (LIFO):
	// async commits complete and their acks reach the wire first, so a
	// clean exit never re-aborts a transaction whose commit is in
	// flight.
	var cp *connPipeline
	defer func() {
		if cp != nil {
			cp.shutdown()
		}
	}()
	for {
		// Arm the idle deadline before checking for shutdown: the
		// shutdown nudge (an immediate read deadline) can then never be
		// lost under a later-armed longer deadline without the drain
		// check seeing the signal first.
		if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		if s.draining() {
			return
		}
		req, err := conn.ReadMessage()
		if err != nil {
			// An unknown message type is a protocol mismatch, not a broken
			// stream (the frame was consumed whole): tell the client which
			// tag we rejected before hanging up, so a newer client sees
			// more than a dropped connection.
			var unknown *wire.ErrUnknownMessage
			if errors.As(err, &unknown) {
				s.opts.Logf("server: %s: rejecting unknown message type %d", conn.RemoteAddr(), uint8(unknown.Tag))
				resp := &wire.Error{Code: wire.CodeGeneric, Message: unknown.Error()}
				if werr := conn.WriteMessage(resp); werr != nil {
					s.opts.Logf("server: %s: %v", conn.RemoteAddr(), werr)
				}
				return
			}
			switch {
			case s.draining():
				// The shutdown nudge, not a real fault; exit quietly.
			case isTimeout(err):
				s.opts.Logf("server: %s: idle timeout, dropping connection (%d open txns)", conn.RemoteAddr(), len(open))
			case err != io.EOF:
				s.opts.Logf("server: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		switch m := req.(type) {
		case *wire.Tagged:
			if cp == nil {
				cp = newConnPipeline(s, conn)
			}
			tag, inner := m.Tag, m.Inner
			wire.Recycle(m) // shallow: inner's ownership moves to handleOp
			cp.handleOp(tag, inner, open)

		case *wire.Batch:
			if cp == nil {
				cp = newConnPipeline(s, conn)
			}
			for i := range m.Ops {
				cp.handleOp(m.Ops[i].Tag, m.Ops[i].Msg, open)
				m.Ops[i].Msg = nil
			}
			wire.Recycle(m)

		case *wire.ReplicaHello:
			if cp != nil {
				s.opts.Logf("server: %s: ReplicaHello on a pipelined connection", conn.RemoteAddr())
				wire.Recycle(m)
				return
			}
			after := m.AfterLSN
			wire.Recycle(m)
			s.serveFeed(conn, after)
			return

		default:
			if cp != nil {
				// Once pipelined, the response writer owns the write side;
				// an untagged frame would race it for the stream.
				s.opts.Logf("server: %s: untagged %v frame on a pipelined connection", conn.RemoteAddr(), req.MsgType())
				wire.Recycle(req)
				return
			}
			if s.opts.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
			}
			resp := s.dispatch(req, &rb)
			trackTxn(open, req, resp)
			err = conn.WriteMessage(resp)
			// The request was decoded from a pool; its fields are dead once
			// the response is on the wire.
			wire.Recycle(req)
			if err != nil {
				s.opts.Logf("server: %s: %v", conn.RemoteAddr(), err)
				return
			}
		}
		if cp != nil && cp.failed.Load() {
			return
		}
	}
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// trackTxn maintains the connection's open-transaction set from one
// request/response exchange.
func trackTxn(open map[core.TxnID]struct{}, req, resp wire.Message) {
	switch m := req.(type) {
	case *wire.Begin:
		if ok, isOK := resp.(*wire.BeginOK); isOK {
			open[ok.Txn] = struct{}{}
		}
	case *wire.Read:
		// Any error response finishes the attempt as far as this
		// connection is concerned: CodeAbort means the engine aborted it
		// internally, CodeGeneric means the transaction was unknown or
		// already finished. Keeping it in the open set would make the
		// disconnect cleanup re-abort a transaction this client no longer
		// owns.
		if _, isErr := resp.(*wire.Error); isErr {
			delete(open, m.Txn)
		}
	case *wire.Write:
		if _, isErr := resp.(*wire.Error); isErr {
			delete(open, m.Txn)
		}
	case *wire.Commit:
		// Finished on OK; on error it is either aborted (CodeAbort) or
		// already gone (unknown txn) — no longer this connection's to
		// clean up either way.
		delete(open, m.Txn)
	case *wire.Abort:
		delete(open, m.Txn)
	}
}

// respBuf holds one connection's reusable response structs; dispatch
// fills the one matching the outcome and returns its address. With one
// request in flight per connection the previous response is always dead
// by the next dispatch, so the steady-state reply path allocates nothing.
type respBuf struct {
	beginOK wire.BeginOK
	value   wire.Value
	ok      wire.OK
	syncOK  wire.SyncOK
	statsOK wire.StatsOK
	err     wire.Error
}

// redirecter is the structural shape of the replica package's typed
// redirect error (declared here to avoid an import the primary-only
// server never needs).
type redirecter interface{ ReplicaRedirect() bool }

// wireError maps an engine error into the reused Error response.
func (rb *respBuf) wireError(err error) *wire.Error {
	var rd redirecter
	switch {
	case errors.As(err, &rd) && rd.ReplicaRedirect():
		rb.err = wire.Error{Code: wire.CodeRedirect, Message: err.Error()}
	default:
		if ae, ok := tso.IsAbort(err); ok {
			rb.err = wire.Error{Code: wire.CodeAbort, Reason: ae.Reason, Message: ae.Error()}
		} else {
			rb.err = wire.Error{Code: wire.CodeGeneric, Message: err.Error()}
		}
	}
	return &rb.err
}

// dispatch executes one request and builds its response in rb.
func (s *Server) dispatch(req wire.Message, rb *respBuf) wire.Message {
	switch m := req.(type) {
	case *wire.Begin:
		txn, err := s.engine.Begin(m.Kind, m.Timestamp, m.Spec)
		if err != nil {
			return rb.wireError(err)
		}
		rb.beginOK.Txn = txn
		return &rb.beginOK

	case *wire.Read:
		s.simulateLatency()
		v, err := s.engine.Read(m.Txn, m.Object)
		if err != nil {
			return rb.wireError(err)
		}
		rb.value.Value = v
		return &rb.value

	case *wire.Write:
		s.simulateLatency()
		var err error
		v := m.Value
		if m.Delta {
			v, err = s.engine.WriteDelta(m.Txn, m.Object, m.Value)
		} else {
			err = s.engine.Write(m.Txn, m.Object, m.Value)
		}
		if err != nil {
			return rb.wireError(err)
		}
		rb.value.Value = v
		return &rb.value

	case *wire.Commit:
		if err := s.engine.Commit(m.Txn); err != nil {
			return rb.wireError(err)
		}
		return &rb.ok

	case *wire.Abort:
		if err := s.engine.Abort(m.Txn); err != nil {
			return rb.wireError(err)
		}
		return &rb.ok

	case *wire.Sync:
		rb.syncOK.ServerTicks = s.opts.Clock.Now()
		return &rb.syncOK

	case *wire.Stats:
		// The engine may run without a collector; a nil collector
		// snapshots as zeros.
		rb.statsOK = wire.StatsOK{
			Snapshot:     s.engine.MetricsSnapshot(),
			ProperMisses: s.engine.Store().ProperMisses(),
			Live:         int64(s.engine.Live()),
			Latencies:    s.engine.LatencySnapshot(),
		}
		return &rb.statsOK

	default:
		rb.err = wire.Error{Code: wire.CodeGeneric, Message: fmt.Sprintf("unexpected request %v", req.MsgType())}
		return &rb.err
	}
}

// simulateLatency sleeps for the configured per-operation latency.
func (s *Server) simulateLatency() {
	if s.opts.SimulatedLatency > 0 {
		time.Sleep(s.opts.SimulatedLatency)
	}
}
