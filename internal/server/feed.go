package server

import (
	"time"

	"github.com/epsilondb/epsilondb/internal/wal"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// feedSnapChunk is the bootstrap-image chunk size: comfortably under
// wire.MaxPayload with room for the frame header and LSN fields.
const feedSnapChunk = 256 << 10

// serveFeed turns one connection into a replication feed: an optional
// chunked bootstrap snapshot, then committed-write record frames as the
// WAL syncs them, until the follower disconnects, the subscriber lags
// out, or the server drains. Runs on the connection's serve goroutine.
func (s *Server) serveFeed(conn *wire.Conn, afterLSN uint64) {
	if s.opts.Feed == nil {
		s.writeFeedError(conn, &wire.Error{Code: wire.CodeGeneric, Message: "server: replication feed not enabled"})
		return
	}
	tail, image, err := s.opts.Feed.SubscribeFrom(afterLSN)
	if err != nil {
		s.writeFeedError(conn, &wire.Error{Code: wire.CodeGeneric, Message: err.Error()})
		return
	}
	defer tail.Close()

	// The follower sends nothing after the hello, so the idle deadline
	// armed by the serve loop must not reap this connection; the reader
	// goroutine below only watches for disconnect.
	conn.SetReadDeadline(time.Time{})
	gone := make(chan struct{})
	go func() {
		defer close(gone)
		// Any read outcome — EOF, reset, even an unexpected frame — ends
		// the feed; the follower reconnects and resumes by LSN.
		if _, rerr := conn.ReadMessage(); rerr == nil {
			s.opts.Logf("server: %s: unexpected frame on feed connection", conn.RemoteAddr())
		}
	}()
	// Unblock tail.Next when the follower disconnects or the server
	// drains; Next then returns ErrTailClosed and the loop exits.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-gone:
		case <-s.drain:
		case <-watchDone:
		}
		tail.Close()
	}()

	if image != nil {
		lsn, err := wal.SnapshotImageLSN(image)
		if err != nil {
			s.opts.Logf("server: %s: feed bootstrap: %v", conn.RemoteAddr(), err)
			return
		}
		for off := 0; ; {
			end := off + feedSnapChunk
			if end > len(image) {
				end = len(image)
			}
			msg := &wire.ReplicaSnap{LSN: lsn, Done: end == len(image), Chunk: image[off:end]}
			if !s.writeFeedMessage(conn, msg) {
				return
			}
			if end == len(image) {
				break
			}
			off = end
		}
	}

	for {
		frames, head, err := tail.Next()
		if err != nil {
			// ErrTailClosed on disconnect/drain is the clean exit;
			// ErrTailLagging and log poisoning also just end the stream —
			// the follower reconnects and resubscribes from its LSN.
			s.opts.Logf("server: %s: feed ended: %v", conn.RemoteAddr(), err)
			return
		}
		if !s.writeFeedMessage(conn, &wire.ReplicaRecords{HeadLSN: head, Frames: frames}) {
			return
		}
	}
}

// writeFeedMessage writes one feed frame under the write deadline,
// logging and reporting failure.
func (s *Server) writeFeedMessage(conn *wire.Conn, msg wire.Message) bool {
	if s.opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	}
	if err := conn.WriteMessage(msg); err != nil {
		s.opts.Logf("server: %s: feed write: %v", conn.RemoteAddr(), err)
		return false
	}
	return true
}

// writeFeedError reports a feed setup failure to the follower.
func (s *Server) writeFeedError(conn *wire.Conn, e *wire.Error) {
	if s.opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	}
	if err := conn.WriteMessage(e); err != nil {
		s.opts.Logf("server: %s: %v", conn.RemoteAddr(), err)
	}
}
