package server

import (
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// TestTrackTxnDropsTxnOnAnyDataOpError pins the open-set bookkeeping: a
// data operation answered with an Error — CodeAbort (engine aborted the
// attempt) or CodeGeneric (the transaction is unknown or was finished
// through another connection) — leaves the transaction out of this
// connection's open set, so the disconnect cleanup does not try to abort
// a transaction the connection no longer owns.
func TestTrackTxnDropsTxnOnAnyDataOpError(t *testing.T) {
	cases := []struct {
		name     string
		req      wire.Message
		resp     wire.Message
		wantOpen bool
	}{
		{"read abort", &wire.Read{Txn: 5, Object: 1},
			&wire.Error{Code: wire.CodeAbort, Reason: metrics.AbortLateRead}, false},
		{"read generic", &wire.Read{Txn: 5, Object: 1},
			&wire.Error{Code: wire.CodeGeneric, Message: "unknown txn"}, false},
		{"write abort", &wire.Write{Txn: 5, Object: 1, Value: 2},
			&wire.Error{Code: wire.CodeAbort, Reason: metrics.AbortLateWrite}, false},
		{"write generic", &wire.Write{Txn: 5, Object: 1, Value: 2},
			&wire.Error{Code: wire.CodeGeneric, Message: "unknown txn"}, false},
		{"read ok stays open", &wire.Read{Txn: 5, Object: 1},
			&wire.Value{Value: 7}, true},
		{"write ok stays open", &wire.Write{Txn: 5, Object: 1, Value: 2},
			&wire.Value{Value: 2}, true},
		{"commit ok", &wire.Commit{Txn: 5}, &wire.OK{}, false},
		{"commit generic", &wire.Commit{Txn: 5},
			&wire.Error{Code: wire.CodeGeneric, Message: "unknown txn"}, false},
		{"abort ok", &wire.Abort{Txn: 5}, &wire.OK{}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			open := map[core.TxnID]struct{}{5: {}}
			trackTxn(open, tc.req, tc.resp)
			if _, stillOpen := open[5]; stillOpen != tc.wantOpen {
				t.Errorf("txn open after %s = %v, want %v", tc.name, stillOpen, tc.wantOpen)
			}
		})
	}
	// Begin enters the set only on BeginOK.
	open := map[core.TxnID]struct{}{}
	trackTxn(open, &wire.Begin{}, &wire.BeginOK{Txn: 9})
	if _, ok := open[9]; !ok {
		t.Error("BeginOK did not enter the open set")
	}
	trackTxn(open, &wire.Begin{}, &wire.Error{Code: wire.CodeGeneric})
	if len(open) != 1 {
		t.Errorf("failed Begin changed the open set: %v", open)
	}
}
