package server

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

// grace returns a context with the given shutdown grace period.
func grace(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// TestShutdownAbortsOpenTxnsExactlyOnce pins the drain contract: open
// transactions on connected clients are aborted exactly once, the engine
// transaction table ends empty, and the counters stay consistent
// (begins = commits + aborts).
func TestShutdownAbortsOpenTxnsExactlyOnce(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	col := &metrics.Collector{}
	addr, srv := startServer(t, 3, tso.Options{Collector: col}, Options{Clock: clock})
	c := dialLogical(t, addr, 1, clock)

	// One committed transaction, two left open (one with a pending
	// write, one read-only).
	if _, _, err := c.RunRetry(core.NewUpdate(0).WriteDelta(1, 5), 10); err != nil {
		t.Fatal(err)
	}
	t1, err := c.Begin(core.Update, core.UnboundedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(2, 999); err != nil {
		t.Fatal(err)
	}
	t2, err := c.Begin(core.Query, core.SRSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read(3); err != nil {
		t.Fatal(err)
	}
	if live := srv.Engine().Live(); live != 2 {
		t.Fatalf("Live before shutdown = %d, want 2", live)
	}

	if err := srv.Shutdown(grace(t, 5*time.Second)); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if live := srv.Engine().Live(); live != 0 {
		t.Errorf("Live after shutdown = %d, want 0", live)
	}
	snap := col.Snapshot()
	if snap.Begins != 3 || snap.Commits != 1 || snap.Aborts() != 2 {
		t.Errorf("begins=%d commits=%d aborts=%d, want 3/1/2 (each open txn aborted exactly once)",
			snap.Begins, snap.Commits, snap.Aborts())
	}
	// The pending write must have been rolled back, not published.
	if v := srv.Engine().Store().TotalValue(); v != 100+200+300+5 {
		t.Errorf("total value after shutdown = %d, want 605 (pending write rolled back)", v)
	}
	// Calls after shutdown fail rather than hang.
	if _, err := t1.Read(1); err == nil {
		t.Error("operation on shut-down server succeeded")
	}
}

// TestShutdownDrainsInFlightRequest pins graceful drain: a request that
// is executing when Shutdown begins completes and its response reaches
// the client, rather than being cut off mid-operation.
func TestShutdownDrainsInFlightRequest(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	col := &metrics.Collector{}
	addr, srv := startServer(t, 1, tso.Options{Collector: col},
		Options{Clock: clock, SimulatedLatency: 150 * time.Millisecond})
	c := dialLogical(t, addr, 1, clock)

	txn, err := c.Begin(core.Query, core.SRSpec())
	if err != nil {
		t.Fatal(err)
	}
	type readResult struct {
		v   core.Value
		err error
	}
	res := make(chan readResult, 1)
	go func() {
		v, err := txn.Read(1)
		res <- readResult{v, err}
	}()
	time.Sleep(50 * time.Millisecond) // the Read is now inside dispatch
	if err := srv.Shutdown(grace(t, 5*time.Second)); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-res
	if r.err != nil {
		t.Errorf("in-flight Read during graceful shutdown failed: %v", r.err)
	} else if r.v != 100 {
		t.Errorf("in-flight Read = %d, want 100", r.v)
	}
	if live := srv.Engine().Live(); live != 0 {
		t.Errorf("Live after shutdown = %d, want 0", live)
	}
	snap := col.Snapshot()
	if snap.Begins != snap.Commits+snap.Aborts() {
		t.Errorf("begins=%d != commits+aborts=%d", snap.Begins, snap.Commits+snap.Aborts())
	}
}

// TestCloseZeroGraceStillReleasesEngineState pins that the hard path
// (Close = zero grace) may cut connections mid-request but never leaks
// transactions or double-aborts.
func TestCloseZeroGraceStillReleasesEngineState(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	col := &metrics.Collector{}
	addr, srv := startServer(t, 2, tso.Options{Collector: col},
		Options{Clock: clock, SimulatedLatency: 100 * time.Millisecond})
	c := dialLogical(t, addr, 1, clock)

	txn, err := c.Begin(core.Update, core.UnboundedSpec())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		txn.Write(1, 5) //nolint:errcheck // may fail: conn cut mid-request
	}()
	time.Sleep(30 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	<-done
	if live := srv.Engine().Live(); live != 0 {
		t.Errorf("Live after Close = %d, want 0", live)
	}
	snap := col.Snapshot()
	if snap.Begins != snap.Commits+snap.Aborts() {
		t.Errorf("begins=%d != commits+aborts=%d", snap.Begins, snap.Commits+snap.Aborts())
	}
}

// TestShutdownIdempotent pins that a second Shutdown/Close is a no-op.
func TestShutdownIdempotent(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	_, srv := startServer(t, 1, tso.Options{}, Options{Clock: clock})
	if err := srv.Shutdown(grace(t, time.Second)); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	if err := srv.Shutdown(grace(t, time.Second)); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close after Shutdown: %v", err)
	}
}

// TestIdleTimeoutAbortsOrphanedTxns pins the idle-connection reaper: a
// client that goes silent mid-transaction is dropped after IdleTimeout
// and its transactions aborted, unblocking conflicting operations.
func TestIdleTimeoutAbortsOrphanedTxns(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	col := &metrics.Collector{}
	addr, srv := startServer(t, 1, tso.Options{Collector: col},
		Options{Clock: clock, IdleTimeout: 100 * time.Millisecond})

	silent := dialLogical(t, addr, 1, clock)
	txn, err := silent.Begin(core.Update, core.UnboundedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Write(1, 42); err != nil {
		t.Fatal(err)
	}
	// ... and now the client says nothing more. The server must reap the
	// connection and release the pending write.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Engine().Live() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if live := srv.Engine().Live(); live != 0 {
		t.Fatalf("Live = %d after idle timeout, want 0", live)
	}
	if aborts := col.Snapshot().Aborts(); aborts != 1 {
		t.Errorf("aborts = %d, want 1", aborts)
	}
	// A fresh client can now write the object the orphan had pending.
	c2 := dialLogical(t, addr, 2, clock)
	if _, _, err := c2.RunRetry(core.NewUpdate(0).WriteDelta(1, 1), 10); err != nil {
		t.Errorf("write after orphan reaped: %v", err)
	}
}

// flakyListener fails the first n Accepts with a transient error, then
// delegates to the real listener.
type flakyListener struct {
	net.Listener
	remaining atomic.Int64
}

var errTransient = errors.New("accept: resource temporarily unavailable")

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.remaining.Add(-1) >= 0 {
		return nil, errTransient
	}
	return l.Listener.Accept()
}

// TestAcceptLoopSurvivesTransientErrors pins the satellite fix: a
// transient Accept failure (EMFILE, ECONNABORTED) must not kill — or
// hot-spin — the accept loop; net.ErrClosed on shutdown must still end
// it cleanly (Close would hang otherwise).
func TestAcceptLoopSurvivesTransientErrors(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	if _, err := st.Create(1, 100); err != nil {
		t.Fatal(err)
	}
	var logged atomic.Int64
	srv := New(tso.NewEngine(st, tso.Options{}), Options{Clock: clock, Logf: func(format string, args ...any) {
		logged.Add(1)
	}})
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: base}
	fl.remaining.Store(3)
	if err := srv.Serve(fl); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// The loop must ride out the 3 injected failures and then serve this
	// client normally.
	c := dialLogical(t, base.Addr().String(), 1, clock)
	if _, _, err := c.RunRetry(core.NewQuery(0, 1), 10); err != nil {
		t.Fatalf("query after transient accept errors: %v", err)
	}
	if logged.Load() < 3 {
		t.Errorf("transient accept errors logged %d times, want ≥3", logged.Load())
	}
	// Close must end the accept loop via net.ErrClosed, not treat it as
	// one more transient error; a hang here fails the test by timeout.
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
