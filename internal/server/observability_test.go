package server

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// rawDial opens a bare wire connection, bypassing the client package, so
// tests can exercise the protocol (and misbehave) directly.
func rawDial(t *testing.T, addr string) (*wire.Conn, net.Conn) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return wire.NewConn(nc), nc
}

func call(t *testing.T, c *wire.Conn, req wire.Message) wire.Message {
	t.Helper()
	resp, err := c.Call(req)
	if err != nil {
		t.Fatalf("%v: %v", req.MsgType(), err)
	}
	return resp
}

func TestStatsCarriesLiveGaugeAndLatencies(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	col := &metrics.Collector{}
	addr, _ := startServer(t, 2, tso.Options{Collector: col}, Options{Clock: clock})
	conn, nc := rawDial(t, addr)
	defer nc.Close()

	// One committed update, then one transaction left open.
	ok := call(t, conn, &wire.Begin{Kind: core.Update, Timestamp: tsgen.Make(1, 0), Spec: core.SRSpec()}).(*wire.BeginOK)
	call(t, conn, &wire.Read{Txn: ok.Txn, Object: 1})
	call(t, conn, &wire.Write{Txn: ok.Txn, Object: 1, Value: 7})
	call(t, conn, &wire.Commit{Txn: ok.Txn})
	open := call(t, conn, &wire.Begin{Kind: core.Update, Timestamp: tsgen.Make(2, 0), Spec: core.SRSpec()}).(*wire.BeginOK)

	stats := call(t, conn, &wire.Stats{}).(*wire.StatsOK)
	if stats.Live != 1 {
		t.Errorf("Live = %d, want 1", stats.Live)
	}
	if stats.Snapshot.Commits != 1 {
		t.Errorf("Commits = %d, want 1", stats.Snapshot.Commits)
	}
	for _, k := range []metrics.LatencyKind{metrics.LatRead, metrics.LatWrite, metrics.LatCommit} {
		if h := stats.Latencies[k]; h.Count == 0 || h.Quantile(0.5) <= 0 {
			t.Errorf("%v histogram over the wire: count=%d p50=%d, want populated", k, h.Count, h.Quantile(0.5))
		}
	}
	call(t, conn, &wire.Abort{Txn: open.Txn})
}

// TestDisconnectAbortsOrphanedTxns pins the server-side cleanup: a client
// that drops mid-transaction must not leave the transaction live (its
// pending writes would block every later conflicting operation forever).
func TestDisconnectAbortsOrphanedTxns(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	col := &metrics.Collector{}
	addr, srv := startServer(t, 2, tso.Options{Collector: col}, Options{Clock: clock})
	conn, nc := rawDial(t, addr)

	ok := call(t, conn, &wire.Begin{Kind: core.Update, Timestamp: tsgen.Make(1, 0), Spec: core.SRSpec()}).(*wire.BeginOK)
	call(t, conn, &wire.Write{Txn: ok.Txn, Object: 1, Value: 1})
	if live := srv.Engine().Live(); live != 1 {
		t.Fatalf("Live before disconnect = %d, want 1", live)
	}

	nc.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Engine().Live() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Live = %d after disconnect, want 0", srv.Engine().Live())
		}
		time.Sleep(time.Millisecond)
	}
	if got := col.Snapshot().AbortExplicit; got != 1 {
		t.Errorf("AbortExplicit = %d, want 1 (server-side cleanup abort)", got)
	}
}

// TestDisconnectDoesNotAbortFinishedTxns: transactions the client finished
// (commit, abort, or server-side abort) must not be re-aborted at teardown.
func TestDisconnectLeavesFinishedTxnsAlone(t *testing.T) {
	clock := &tsgen.LogicalClock{}
	col := &metrics.Collector{}
	addr, srv := startServer(t, 2, tso.Options{Collector: col}, Options{Clock: clock})
	conn, nc := rawDial(t, addr)

	ok := call(t, conn, &wire.Begin{Kind: core.Update, Timestamp: tsgen.Make(1, 0), Spec: core.SRSpec()}).(*wire.BeginOK)
	call(t, conn, &wire.Write{Txn: ok.Txn, Object: 1, Value: 1})
	call(t, conn, &wire.Commit{Txn: ok.Txn})
	nc.Close()
	srv.Close() // waits for the connection goroutine, so teardown has run

	if s := col.Snapshot(); s.Commits != 1 || s.Aborts() != 0 {
		t.Errorf("after teardown: commits=%d aborts=%v, want 1 commit and no aborts",
			s.Commits, s.AbortBreakdown())
	}
}

func TestDebugMuxServesStats(t *testing.T) {
	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	if _, err := st.Create(1, 100); err != nil {
		t.Fatal(err)
	}
	col := &metrics.Collector{}
	e := tso.NewEngine(st, tso.Options{Collector: col})
	txn, err := e.Begin(core.Update, tsgen.Make(1, 0), core.SRSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(txn, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(txn, 1, 7); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(txn); err != nil {
		t.Fatal(err)
	}
	// One explicit abort so the breakdown is nonempty.
	txn2, err := e.Begin(core.Update, tsgen.Make(2, 0), core.SRSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(txn2); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(DebugMux(e))
	defer ts.Close()

	var stats struct {
		Counters       map[string]int64          `json:"counters"`
		AbortBreakdown map[string]int64          `json:"abort_breakdown"`
		LiveTxns       int                       `json:"live_txns"`
		Latency        map[string]latencySummary `json:"latency"`
	}
	resp, err := ts.Client().Get(ts.URL + "/debug/esr")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/esr status = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Counters["commits"] != 1 {
		t.Errorf("commits = %d, want 1", stats.Counters["commits"])
	}
	if stats.AbortBreakdown["explicit"] != 1 {
		t.Errorf("abort_breakdown = %v, want explicit:1", stats.AbortBreakdown)
	}
	if stats.LiveTxns != 0 {
		t.Errorf("live_txns = %d, want 0", stats.LiveTxns)
	}
	for _, path := range []string{"read", "write", "commit"} {
		sum, ok := stats.Latency[path]
		if !ok || sum.Count == 0 || sum.P99Ns <= 0 {
			t.Errorf("latency[%q] = %+v, want populated percentiles", path, sum)
		}
	}

	// expvar and pprof are mounted.
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		r, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != 200 {
			t.Errorf("GET %s status = %d", path, r.StatusCode)
		}
	}

	// A second mux over another engine must not panic on the expvar
	// re-publish path.
	st2 := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	DebugMux(tso.NewEngine(st2, tso.Options{}))
}
