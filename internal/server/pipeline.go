package server

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// The server half of pipelining (DESIGN.md §12). A connection switches
// into pipelined mode on its first Tagged or Batch frame and stays
// there: from then on every response is emitted by a dedicated response
// writer goroutine, which lets replies leave in completion order rather
// than arrival order. Two things exploit that freedom:
//
//   - Commits dispatch asynchronously. Commit is the one operation that
//     blocks on durability (the WAL's group-commit fsync), so executing
//     it inline would stall every later op behind the disk. Instead the
//     connection goroutine spawns a commit dispatcher and keeps
//     decoding; reads and writes of other transactions proceed while
//     the fsync is in flight.
//
//   - The response writer coalesces. Responses that are ready together
//     — typically a group of commit acks released by one fsync, or the
//     inline replies of a batch — are folded into one BatchReply frame
//     and one flush, mirroring the client writer's small-write
//     coalescing.
//
// The untagged path is untouched: a connection that never sends an
// envelope frame is served by the seed loop, byte-identical and
// allocation-free. Once pipelined, an untagged frame is a protocol
// error and drops the connection.

// respBufPool feeds the pipelined dispatch path, where several
// responses are in flight per connection and the conn-local respBuf
// cannot be reused. Buffers return to the pool after their response is
// on the wire.
var respBufPool = sync.Pool{New: func() any { return new(respBuf) }}

// taggedResp is one response queued for the response writer.
type taggedResp struct {
	tag uint32
	msg wire.Message
	rb  *respBuf // released to respBufPool once msg is written
}

// outQueueDepth bounds the response queue. A full queue applies
// backpressure to the connection goroutine and the commit dispatchers;
// the writer drains it in coalesced frames, so the bound is generous.
const outQueueDepth = 256

// maxReplyCoalesce caps how many queued responses fold into one
// BatchReply frame (and bounds the frame size).
const maxReplyCoalesce = 64

// connPipeline is the pipelined-mode state of one connection.
type connPipeline struct {
	s    *Server
	conn *wire.Conn

	out  chan taggedResp // dispatch results → response writer
	done chan struct{}   // closed when the response writer exits
	wg   sync.WaitGroup  // outstanding async commit dispatchers

	// failed flips when a response write fails; the writer then drains
	// without writing (so producers never block on a dead peer) and the
	// connection goroutine exits at its next check.
	failed atomic.Bool
}

// newConnPipeline switches a connection into pipelined mode.
func newConnPipeline(s *Server, conn *wire.Conn) *connPipeline {
	cp := &connPipeline{
		s:    s,
		conn: conn,
		out:  make(chan taggedResp, outQueueDepth),
		done: make(chan struct{}),
	}
	go cp.writeLoop()
	return cp
}

// shutdown completes the pipelined teardown: async commits finish and
// enqueue their acks, the queue closes, and the writer drains it before
// the caller closes the connection — no ack is dropped on a clean exit.
func (cp *connPipeline) shutdown() {
	cp.wg.Wait()
	close(cp.out)
	<-cp.done
}

// handleOp executes one tagged operation. Commits go to an async
// dispatcher; everything else executes inline, in arrival order, on the
// connection goroutine (preserving per-transaction op order without any
// reordering machinery). Ownership of inner transfers here: it is
// recycled once executed.
func (cp *connPipeline) handleOp(tag uint32, inner wire.Message, open map[core.TxnID]struct{}) {
	if m, isCommit := inner.(*wire.Commit); isCommit {
		// The open-set update happens here, on the connection goroutine,
		// so the map never crosses goroutines. Matching trackTxn: a
		// commit finishes the transaction whatever its outcome.
		delete(open, m.Txn)
		cp.wg.Add(1)
		go cp.dispatchCommit(tag, m)
		return
	}
	rb := respBufPool.Get().(*respBuf)
	resp := cp.s.dispatch(inner, rb)
	trackTxn(open, inner, resp)
	wire.Recycle(inner)
	cp.out <- taggedResp{tag: tag, msg: resp, rb: rb}
}

// dispatchCommit runs one commit to durability and queues its ack.
// Dispatchers blocked on the same group-commit fsync complete together,
// and their acks coalesce into one BatchReply downstream.
func (cp *connPipeline) dispatchCommit(tag uint32, m *wire.Commit) {
	defer cp.wg.Done()
	rb := respBufPool.Get().(*respBuf)
	var resp wire.Message
	if err := cp.s.engine.Commit(m.Txn); err != nil {
		resp = rb.wireError(err)
	} else {
		resp = &rb.ok
	}
	wire.Recycle(m)
	cp.out <- taggedResp{tag: tag, msg: resp, rb: rb}
}

// writeLoop is the response writer: it drains the queue, folding
// responses that are ready together into one BatchReply frame, and owns
// the connection's write side (and write deadline) in pipelined mode.
// After a write error it keeps draining so producers never block; it
// exits when the queue closes.
func (cp *connPipeline) writeLoop() {
	defer close(cp.done)
	var reply wire.TaggedReply
	var batch wire.BatchReply
	items := make([]taggedResp, 0, maxReplyCoalesce)
	for {
		first, ok := <-cp.out
		if !ok {
			return
		}
		items = append(items[:0], first)
	drain:
		for len(items) < maxReplyCoalesce {
			select {
			case r, ok := <-cp.out:
				if !ok {
					break drain
				}
				items = append(items, r)
			default:
				break drain
			}
		}
		if !cp.failed.Load() {
			if cp.s.opts.WriteTimeout > 0 {
				cp.conn.SetWriteDeadline(time.Now().Add(cp.s.opts.WriteTimeout))
			}
			var err error
			if len(items) == 1 {
				reply.Tag, reply.Inner = items[0].tag, items[0].msg
				err = cp.conn.WriteMessage(&reply)
			} else {
				batch.Replies = batch.Replies[:0]
				for i := range items {
					batch.Replies = append(batch.Replies, wire.BatchItem{Tag: items[i].tag, Msg: items[i].msg})
				}
				err = cp.conn.WriteMessage(&batch)
			}
			if err != nil {
				cp.failed.Store(true)
				cp.s.opts.Logf("server: %s: %v", cp.conn.RemoteAddr(), err)
			}
		}
		for i := range items {
			if items[i].rb != nil {
				respBufPool.Put(items[i].rb)
			}
			items[i] = taggedResp{}
		}
	}
}
