// Strict mode: the ε=0 special case of the oracle. Every read is a hard
// conflict — no relaxation is admissible — so the check degenerates to
// classic conflict serializability over the committed projection, exactly
// what internal/history's checker established before this package
// existed. history.CheckSerializable now delegates here.
package esrcheck

import (
	"fmt"
	"sort"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

// CheckSerializable verifies that the committed projection of the
// history is conflict serializable with no reads of never-committed
// versions — the ε=0 contract. Unlike Check, no read may be excused by a
// bound: a dirty read of an aborted writer or a conflict cycle is an
// error regardless of any limits in the trace.
func CheckSerializable(events []tso.Event) error {
	committed := make(map[core.TxnID]bool)
	for _, ev := range events {
		if ev.Kind == tso.EvCommit {
			committed[ev.Txn] = true
		}
	}

	type vrec struct {
		ts     tsgen.Timestamp
		writer core.TxnID
	}
	type rrec struct {
		reader  core.TxnID
		version tsgen.Timestamp
	}
	versions := make(map[core.ObjectID][]vrec)
	writerOf := make(map[core.ObjectID]map[tsgen.Timestamp]core.TxnID)
	reads := make(map[core.ObjectID][]rrec)
	for _, ev := range events {
		if !committed[ev.Txn] {
			continue
		}
		switch ev.Kind {
		case tso.EvWrite:
			versions[ev.Object] = append(versions[ev.Object], vrec{ts: ev.Version, writer: ev.Txn})
			m := writerOf[ev.Object]
			if m == nil {
				m = make(map[tsgen.Timestamp]core.TxnID)
				writerOf[ev.Object] = m
			}
			m[ev.Version] = ev.Txn
		case tso.EvRead:
			reads[ev.Object] = append(reads[ev.Object], rrec{reader: ev.Txn, version: ev.Version})
		}
	}

	edges := make(map[core.TxnID]map[core.TxnID]bool)
	addEdge := func(from, to core.TxnID) {
		if from == to {
			return
		}
		m := edges[from]
		if m == nil {
			m = make(map[core.TxnID]bool)
			edges[from] = m
		}
		m[to] = true
	}

	for obj, vs := range versions {
		sort.Slice(vs, func(i, j int) bool { return vs[i].ts.Before(vs[j].ts) })
		versions[obj] = vs
		for i := 1; i < len(vs); i++ {
			addEdge(vs[i-1].writer, vs[i].writer) // WW
		}
	}

	neverCommitted := 0
	for obj, rs := range reads {
		vs := versions[obj]
		for _, r := range rs {
			// WR: the writer of the version read precedes the reader;
			// version "none" is the initial load with no writer.
			if !r.version.IsNone() {
				if w, ok := writerOf[obj][r.version]; ok {
					addEdge(w, r.reader)
				} else {
					neverCommitted++
				}
			}
			// RW: the reader precedes the writer of the next version.
			for _, v := range vs {
				if r.version.Before(v.ts) {
					addEdge(r.reader, v.writer)
					break
				}
			}
		}
	}
	if neverCommitted > 0 {
		return fmt.Errorf("%d read(s) of versions that never committed", neverCommitted)
	}

	nodeSet := make(map[core.TxnID]bool, len(edges))
	for from, tos := range edges {
		nodeSet[from] = true
		for to := range tos {
			nodeSet[to] = true
		}
	}
	nodes := make([]core.TxnID, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	if _, cycle := topoOrder(nodes, edges); cycle != nil {
		return fmt.Errorf("conflict cycle %v", cycle)
	}
	return nil
}
