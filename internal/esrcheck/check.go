// Package esrcheck is the offline epsilon-serializability oracle: it
// consumes a recorded execution history (the tso.Event stream, live from
// a history.Recorder or decoded from an esr-trace JSONL file) and
// proves or refutes the paper's guarantee — that the committed execution
// stays within its declared inconsistency bounds of some serializable
// execution.
//
// The checker follows the witness-order construction of Biswas & Enea
// ("On the Complexity of Checking Transactional Consistency") restricted
// to the timestamp-ordered histories our engines produce, where the
// version order per object is the write-timestamp order, so no version-
// order search is needed and the check is polynomial:
//
//  1. Classify every committed read as proper or relaxed. A read is
//     proper when it observed the retrospective proper version — the
//     last committed version of the object with a write timestamp not
//     after the reader's — and the data was committed at read time. A
//     relaxed read (ESR cases 1–3: late read of committed data, dirty
//     read of uncommitted data, or a late case-3 write committing under
//     the read it raced) observed something else; it is the epsilon.
//  2. Build the hard conflict graph over committed transactions: WW
//     edges from the per-object version order, and WR/RW edges for
//     proper reads only. Relaxed reads impose no ordering — their
//     divergence is metered instead. A topological order of this graph
//     is the serializable witness; a cycle refutes the guarantee.
//  3. Meter every relaxed read's true divergence from recorded values:
//     |observed − retrospective proper value|, recomputed independently
//     of what the engine charged, and check it against the declared
//     object bound (the OIL stamped on the read event, or the OEL of
//     the covering case-3 write when the reader was not charged).
//  4. Cross-check the accounting: the per-operation charges must sum to
//     the final inconsistency on the commit event, which must fit the
//     transaction's root bound (TIL/TEL from the begin event).
//  5. Zero-epsilon transactions (root bound 0, including everything the
//     serializable baseline engines emit) must have no relaxed reads at
//     all, so a history whose transactions are all zero-epsilon is
//     certified exactly conflict-serializable — the classic checker in
//     internal/history delegates to this package for that special case.
//
// Soundness depends on trace completeness: a commit path that skips its
// trace event is invisible here. The tracecomplete analyzer
// (internal/analysis/tracecomplete) closes that hole statically.
package esrcheck

import (
	"fmt"
	"sort"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

// Violation is one refutation of the guarantee.
type Violation struct {
	// Code classifies the violation: "unknown-version", "update-relaxed",
	// "zero-epsilon-relaxed", "zero-epsilon-replica", "object-import",
	// "object-export", "op-over-limit", "txn-limit", "accounting",
	// "conflict-cycle".
	Code string `json:"code"`
	// Txn is the offending transaction (0 when structural).
	Txn core.TxnID `json:"txn,omitempty"`
	// Object is the object involved (0 when transaction-level).
	Object core.ObjectID `json:"object,omitempty"`
	// Msg is the human-readable refutation.
	Msg string `json:"msg"`
}

// Report is the oracle's verdict over one history.
type Report struct {
	// Txns is the number of committed transactions checked.
	Txns int `json:"txns"`
	// Aborted is the number of aborted attempts (excluded from checks).
	Aborted int `json:"aborted"`
	// Ops is the number of committed read/write operations.
	Ops int `json:"ops"`
	// RelaxedReads is the number of committed reads classified relaxed.
	RelaxedReads int `json:"relaxed_reads"`
	// DirtyReads is the number of committed reads of then-uncommitted data.
	DirtyReads int `json:"dirty_reads"`
	// MaxDistance is the largest recomputed divergence of any relaxed
	// read. Zero for a serializable history.
	MaxDistance core.Distance `json:"max_distance"`
	// TotalImported / TotalExported sum the committed transactions'
	// final inconsistency from their commit events.
	TotalImported core.Distance `json:"total_imported"`
	TotalExported core.Distance `json:"total_exported"`
	// Witness is a serializable order of the committed transactions
	// consistent with every hard conflict (nil when a cycle refutes it).
	Witness []core.TxnID `json:"witness,omitempty"`
	// Notes are non-fatal observations (e.g. distances that could not be
	// recomputed because the initial value never appears in the trace).
	Notes []string `json:"notes,omitempty"`
	// Violations refute the guarantee; empty means certified.
	Violations []Violation `json:"violations,omitempty"`
}

// OK reports whether the history was certified.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil for a certified history, or an error describing the
// first violation (and the total count).
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	v := r.Violations[0]
	if len(r.Violations) == 1 {
		return fmt.Errorf("esrcheck: %s: %s", v.Code, v.Msg)
	}
	return fmt.Errorf("esrcheck: %d violations, first %s: %s", len(r.Violations), v.Code, v.Msg)
}

func (r *Report) violate(code string, txn core.TxnID, obj core.ObjectID, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Code: code, Txn: txn, Object: obj, Msg: fmt.Sprintf(format, args...),
	})
}

// txn is the checker's digest of one attempt.
type txn struct {
	id        core.TxnID
	kind      core.Kind
	ts        tsgen.Timestamp
	rootLimit core.Distance // from the begin event; 0 = zero-epsilon
	hasBegin  bool
	committed bool
	aborted   bool
	commitInc core.Distance // final inconsistency from the commit event
	commitLim core.Distance
	chargeSum core.Distance // sum of per-op charges
}

// versionRec is one committed version of an object.
type versionRec struct {
	ts      tsgen.Timestamp
	writer  core.TxnID
	value   core.Value
	charged core.Distance // the export charged on the write event
	oel     core.Distance // the write event's export limit
}

// readRec is one committed read.
type readRec struct {
	reader  core.TxnID
	readTS  tsgen.Timestamp
	object  core.ObjectID
	version tsgen.Timestamp
	value   core.Value
	charged core.Distance
	limit   core.Distance // the read event's import limit (OIL)
	dirty   bool
	replica bool // served by a bounded-stale follower
}

// Check runs the full epsilon-serializability oracle over a history and
// returns its verdict. The event stream must contain whole transactions
// (a commit or abort for every begin); incomplete tails from live
// recorders are tolerated — attempts with no outcome are skipped.
func Check(events []tso.Event) *Report {
	rep := &Report{}
	txns := collectTxns(events, rep)
	versions, reads := collectOps(events, txns, rep)

	// Per-object version order = write-timestamp order (timestamp-ordered
	// engines guarantee committed versions have strictly increasing ts).
	for obj, vs := range versions {
		sort.Slice(vs, func(i, j int) bool { return vs[i].ts.Before(vs[j].ts) })
		for i := 1; i < len(vs); i++ {
			if !vs[i-1].ts.Before(vs[i].ts) {
				rep.violate("unknown-version", vs[i].writer, obj,
					"two committed versions of object %d share timestamp %v", obj, vs[i].ts)
			}
		}
		for _, v := range vs {
			if v.charged > v.oel {
				rep.violate("op-over-limit", v.writer, obj,
					"txn %d exported %d on object %d over its export limit %d",
					v.writer, v.charged, obj, v.oel)
			}
		}
		versions[obj] = vs
	}

	// Initial values, best effort: a read of the version-less initial
	// state carries it.
	initial := make(map[core.ObjectID]core.Value)
	hasInitial := make(map[core.ObjectID]bool)
	for _, r := range reads {
		if r.version.IsNone() && !r.dirty && !hasInitial[r.object] {
			initial[r.object] = r.value
			hasInitial[r.object] = true
		}
	}

	edges := make(map[core.TxnID]map[core.TxnID]bool)
	addEdge := func(from, to core.TxnID) {
		if from == to {
			return
		}
		m := edges[from]
		if m == nil {
			m = make(map[core.TxnID]bool)
			edges[from] = m
		}
		m[to] = true
	}
	for _, vs := range versions {
		for i := 1; i < len(vs); i++ {
			addEdge(vs[i-1].writer, vs[i].writer) // WW
		}
	}

	unrecomputable := 0
	for _, r := range reads {
		t := txns[r.reader]
		vs := versions[r.object]
		rep.Ops++

		// Locate what was read and the retrospective proper version: the
		// last committed version with ts ≤ the reader's timestamp.
		readIdx := -1
		properIdx := -1
		for i, v := range vs {
			if v.ts == r.version {
				readIdx = i
			}
			if !v.ts.After(r.readTS) {
				properIdx = i
			}
		}
		if r.version == r.readTS && readIdx >= 0 && vs[readIdx].writer == r.reader {
			// Read of the transaction's own write: no constraint, no
			// divergence.
			continue
		}
		if readIdx < 0 && !r.version.IsNone() {
			// The version read never committed: a dirty read of a later-
			// aborted writer, tolerated (and metered) under ESR, §5.1.
			if !r.dirty {
				rep.violate("unknown-version", r.reader, r.object,
					"txn %d read version %v of object %d which never committed, not flagged dirty",
					r.reader, r.version, r.object)
				continue
			}
		}
		if r.dirty {
			rep.DirtyReads++
		}
		if r.replica && t.rootLimit == 0 {
			// Routing policy, checked before classification: a zero-epsilon
			// query demands strict serializability and must never touch a
			// follower — even a read that happened to observe the proper
			// version, because the follower cannot prove it did.
			rep.violate("zero-epsilon-replica", r.reader, r.object,
				"zero-epsilon txn %d read object %d from a replica", r.reader, r.object)
			continue
		}

		proper := !r.dirty && readIdx == properIdx
		if proper {
			// Hard read: writer of the version before the reader, reader
			// before the writer of the next version.
			if readIdx >= 0 {
				addEdge(vs[readIdx].writer, r.reader) // WR
			}
			if readIdx+1 < len(vs) {
				addEdge(r.reader, vs[readIdx+1].writer) // RW
			}
			if r.charged != 0 {
				rep.violate("accounting", r.reader, r.object,
					"txn %d charged %d on a consistent read of object %d", r.reader, r.charged, r.object)
			}
			continue
		}

		// Relaxed read. Update-ET reads must never be: their writes
		// depend on them (§3.2.1).
		rep.RelaxedReads++
		if r.charged > r.limit {
			rep.violate("op-over-limit", r.reader, r.object,
				"txn %d charged %d on object %d over its import limit %d",
				r.reader, r.charged, r.object, r.limit)
		}
		if t.kind == core.Update {
			rep.violate("update-relaxed", r.reader, r.object,
				"update txn %d read version %v of object %d, proper is %v",
				r.reader, r.version, r.object, properVersionTS(vs, properIdx))
			continue
		}
		if t.rootLimit == 0 {
			rep.violate("zero-epsilon-relaxed", r.reader, r.object,
				"zero-epsilon txn %d took a relaxed read of object %d (version %v, proper %v, dirty %v)",
				r.reader, r.object, r.version, properVersionTS(vs, properIdx), r.dirty)
			continue
		}

		// Recompute the true divergence from recorded values.
		var properVal core.Value
		known := true
		if properIdx >= 0 {
			properVal = vs[properIdx].value
		} else if hasInitial[r.object] {
			properVal = initial[r.object]
		} else {
			known = false
		}
		d := r.charged
		if known {
			d = absDist(r.value, properVal)
		} else {
			unrecomputable++
		}
		if d > rep.MaxDistance {
			rep.MaxDistance = d
		}
		if r.charged > 0 || r.dirty || r.replica {
			// Reader-charged relaxation (cases 1 and 2, and replica lag):
			// the divergence was admitted against the object's import
			// limit. A lagging follower always charges its own side, never
			// a primary writer, so replica reads are never case 3.
			if d > r.limit {
				rep.violate("object-import", r.reader, r.object,
					"txn %d imported divergence %d on object %d, import limit %d",
					r.reader, d, r.object, r.limit)
			}
		} else {
			// Writer-charged relaxation (case 3): a late write committed
			// under this read; its export was admitted against the
			// object's export limit, stamped on the covering write.
			oel := r.limit
			if properIdx >= 0 {
				oel = vs[properIdx].oel
			}
			if d > oel {
				rep.violate("object-export", r.reader, r.object,
					"txn %d views divergence %d on object %d from a late write, export limit %d",
					r.reader, d, r.object, oel)
			}
		}
	}
	if unrecomputable > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%d relaxed read(s) checked against engine-charged distance: initial value never observed", unrecomputable))
	}

	checkAccounting(txns, rep)

	// A topological order of the hard graph is the serializable witness.
	order, cycle := topoOrder(committedIDs(txns), edges)
	if cycle != nil {
		rep.violate("conflict-cycle", 0, 0, "hard conflict cycle %v", cycle)
	} else {
		rep.Witness = order
	}
	return rep
}

// properVersionTS formats the proper version for diagnostics.
func properVersionTS(vs []versionRec, properIdx int) tsgen.Timestamp {
	if properIdx < 0 {
		return tsgen.None
	}
	return vs[properIdx].ts
}

// collectTxns builds the transaction table from control events.
func collectTxns(events []tso.Event, rep *Report) map[core.TxnID]*txn {
	txns := make(map[core.TxnID]*txn)
	get := func(ev tso.Event) *txn {
		t := txns[ev.Txn]
		if t == nil {
			t = &txn{id: ev.Txn, kind: ev.TxnKind, ts: ev.TS}
			txns[ev.Txn] = t
		}
		return t
	}
	for _, ev := range events {
		switch ev.Kind {
		case tso.EvBegin:
			t := get(ev)
			t.hasBegin = true
			t.rootLimit = ev.Limit
		case tso.EvCommit:
			t := get(ev)
			t.committed = true
			t.commitInc = ev.Inconsistency
			t.commitLim = ev.Limit
		case tso.EvAbort:
			get(ev).aborted = true
		}
	}
	for _, t := range txns {
		if t.committed {
			rep.Txns++
			if t.kind == core.Query {
				rep.TotalImported += t.commitInc
			} else {
				rep.TotalExported += t.commitInc
			}
		} else if t.aborted {
			rep.Aborted++
		}
	}
	return txns
}

// collectOps gathers the committed transactions' reads and writes.
func collectOps(events []tso.Event, txns map[core.TxnID]*txn, rep *Report) (map[core.ObjectID][]versionRec, []readRec) {
	versions := make(map[core.ObjectID][]versionRec)
	var reads []readRec
	for _, ev := range events {
		t := txns[ev.Txn]
		if t == nil || !t.committed {
			continue
		}
		switch ev.Kind {
		case tso.EvWrite:
			t.chargeSum += ev.Inconsistency
			versions[ev.Object] = append(versions[ev.Object], versionRec{
				ts: ev.Version, writer: ev.Txn, value: ev.Value,
				charged: ev.Inconsistency, oel: ev.Limit,
			})
			rep.Ops++
		case tso.EvRead:
			t.chargeSum += ev.Inconsistency
			reads = append(reads, readRec{
				reader: ev.Txn, readTS: ev.TS, object: ev.Object,
				version: ev.Version, value: ev.Value,
				charged: ev.Inconsistency, limit: ev.Limit, dirty: ev.DirtyRead,
				replica: ev.Replica,
			})
		}
	}
	return versions, reads
}

// checkAccounting verifies per-transaction totals against the commit
// events and the root bounds.
func checkAccounting(txns map[core.TxnID]*txn, rep *Report) {
	ids := committedIDs(txns)
	for _, id := range ids {
		t := txns[id]
		if t.chargeSum != t.commitInc {
			rep.violate("accounting", t.id, 0,
				"txn %d per-op charges sum to %d but committed with inconsistency %d",
				t.id, t.chargeSum, t.commitInc)
		}
		limit := t.rootLimit
		if !t.hasBegin {
			// Torn trace head: the begin was recorded before this file
			// started; fall back to the commit event's stamp.
			limit = t.commitLim
		}
		if t.commitInc > limit {
			rep.violate("txn-limit", t.id, 0,
				"%s txn %d committed inconsistency %d over its transaction limit %d",
				t.kind, t.id, t.commitInc, limit)
		}
	}
}

// committedIDs returns the committed transaction ids in ascending order.
func committedIDs(txns map[core.TxnID]*txn) []core.TxnID {
	ids := make([]core.TxnID, 0, len(txns))
	for id, t := range txns {
		if t.committed {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// topoOrder returns a deterministic topological order of nodes under
// edges, or (nil, cycle) when a cycle exists. Ties broken by id, so the
// witness is reproducible.
func topoOrder(nodes []core.TxnID, edges map[core.TxnID]map[core.TxnID]bool) ([]core.TxnID, []core.TxnID) {
	indeg := make(map[core.TxnID]int, len(nodes))
	for _, n := range nodes {
		indeg[n] = 0
	}
	for from, tos := range edges {
		if _, ok := indeg[from]; !ok {
			continue
		}
		for to := range tos {
			if _, ok := indeg[to]; ok {
				indeg[to]++
			}
		}
	}
	// Kahn's algorithm with a sorted frontier.
	var ready []core.TxnID
	for _, n := range nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	order := make([]core.TxnID, 0, len(nodes))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		var woken []core.TxnID
		for to := range edges[n] {
			if _, ok := indeg[to]; !ok {
				continue
			}
			indeg[to]--
			if indeg[to] == 0 {
				woken = append(woken, to)
			}
		}
		sort.Slice(woken, func(i, j int) bool { return woken[i] < woken[j] })
		ready = append(ready, woken...)
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	}
	if len(order) != len(nodes) {
		// The leftover nodes all sit on or behind cycles; report one.
		return nil, findCycle(nodes, edges, indeg)
	}
	return order, nil
}

// findCycle extracts one concrete cycle among the nodes Kahn's algorithm
// could not order.
func findCycle(nodes []core.TxnID, edges map[core.TxnID]map[core.TxnID]bool, indeg map[core.TxnID]int) []core.TxnID {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[core.TxnID]int)
	parent := make(map[core.TxnID]core.TxnID)
	var cycleStart, cycleEnd core.TxnID
	var found bool
	var dfs func(u core.TxnID)
	dfs = func(u core.TxnID) {
		if found {
			return
		}
		color[u] = grey
		succs := make([]core.TxnID, 0, len(edges[u]))
		for v := range edges[u] {
			if _, ok := indeg[v]; ok {
				succs = append(succs, v)
			}
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, v := range succs {
			if found {
				return
			}
			switch color[v] {
			case white:
				parent[v] = u
				dfs(v)
			case grey:
				cycleStart, cycleEnd, found = v, u, true
				return
			}
		}
		color[u] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
			if found {
				break
			}
		}
	}
	if !found {
		return nil
	}
	cycle := []core.TxnID{cycleStart}
	for at := cycleEnd; at != cycleStart; at = parent[at] {
		cycle = append(cycle, at)
	}
	for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
		cycle[i], cycle[j] = cycle[j], cycle[i]
	}
	return append(cycle, cycleStart)
}

// absDist is the Absolute metric: |u − v| as a distance.
func absDist(u, v core.Value) core.Distance {
	if u >= v {
		return u - v
	}
	return v - u
}
