// Mutation tests for the oracle itself: record real engine executions,
// certify them, then perturb the recorded history — drop an event,
// inflate a value divergence past the object import limit, repoint a
// witness edge — and require the checker to flag every seeded violation.
// An oracle that cannot catch its own mutations would certify anything.
package esrcheck_test

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/esrcheck"
	"github.com/epsilondb/epsilondb/internal/history"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

func ts(n int64) tsgen.Timestamp { return tsgen.Make(n, 0) }

// recordZeroEpsilonRun drives a concurrent zero-epsilon workload on the
// real TO engine and returns its recorded history.
func recordZeroEpsilonRun(t *testing.T) []tso.Event {
	t.Helper()
	rec := history.NewRecorder()
	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for i := 1; i <= 6; i++ {
		if _, err := st.Create(core.ObjectID(i), core.Value(100*i)); err != nil {
			t.Fatal(err)
		}
	}
	e := tso.NewEngine(st, tso.Options{Tracer: rec})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 11))
			gen := tsgen.NewGenerator(w, &tsgen.LogicalClock{})
			for i := 0; i < 40; i++ {
				var p *core.Program
				if rng.Intn(2) == 0 {
					p = core.NewQuery(0, core.ObjectID(1+rng.Intn(6)))
					p.Read(core.ObjectID(1 + (int(p.Ops[0].Object)+2)%6))
				} else {
					a := core.ObjectID(1 + rng.Intn(6))
					p = core.NewUpdate(0).Read(a).WriteDelta(core.ObjectID(1+(int(a)+1)%6), core.Value(rng.Intn(20)))
				}
				if p.Validate() != nil {
					continue
				}
				if _, _, err := e.RunRetry(p, gen, 500); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return rec.Events()
}

func TestUnperturbedZeroEpsilonRunCertifiedWithDistanceZero(t *testing.T) {
	events := recordZeroEpsilonRun(t)
	rep := esrcheck.Check(events)
	if err := rep.Err(); err != nil {
		t.Fatalf("genuine zero-epsilon run refuted: %v", err)
	}
	if rep.RelaxedReads != 0 || rep.DirtyReads != 0 || rep.MaxDistance != 0 {
		t.Errorf("zero-epsilon run not certified at distance 0: %+v", rep)
	}
	if len(rep.Witness) != rep.Txns {
		t.Errorf("witness covers %d of %d committed txns", len(rep.Witness), rep.Txns)
	}
	// Differential: the oracle's strict mode and the classic conflict-
	// graph checker must agree the run is serializable.
	if err := esrcheck.CheckSerializable(events); err != nil {
		t.Errorf("strict mode disagrees: %v", err)
	}
	if err := history.CheckSerializable(events); err != nil {
		t.Errorf("history checker disagrees: %v", err)
	}
}

func TestMutationDroppedWriteEventFlagged(t *testing.T) {
	events := recordZeroEpsilonRun(t)
	// Find a committed read of a real version and drop the write event
	// that produced it: the oracle must notice the version is gone.
	mutIdx := -1
	for _, r := range events {
		if r.Kind != tso.EvRead || r.Version.IsNone() || r.Version == r.TS {
			continue
		}
		for j, w := range events {
			if w.Kind == tso.EvWrite && w.Object == r.Object && w.Version == r.Version && w.Txn != r.Txn {
				mutIdx = j
				break
			}
		}
		if mutIdx >= 0 {
			break
		}
	}
	if mutIdx < 0 {
		t.Fatal("workload produced no cross-transaction read; cannot seed mutation")
	}
	mutated := append(append([]tso.Event(nil), events[:mutIdx]...), events[mutIdx+1:]...)
	rep := esrcheck.Check(mutated)
	if rep.OK() {
		t.Fatal("dropped write event not flagged")
	}
	wantCode(t, rep, "unknown-version")
}

func TestMutationRepointedWitnessEdgeFlagged(t *testing.T) {
	events := recordZeroEpsilonRun(t)
	// Repoint a read at a later version of its object than the one it
	// observed — reversing the read's witness edge (reader-before-writer
	// becomes writer-before-reader). In a zero-epsilon history that is
	// exactly a forbidden relaxation.
	committed := make(map[core.TxnID]bool)
	for _, ev := range events {
		if ev.Kind == tso.EvCommit {
			committed[ev.Txn] = true
		}
	}
	mutated := append([]tso.Event(nil), events...)
	seeded := false
	for i, r := range mutated {
		if r.Kind != tso.EvRead || r.TxnKind != core.Query || !committed[r.Txn] || r.Version == r.TS {
			continue
		}
		for _, w := range mutated {
			if w.Kind == tso.EvWrite && committed[w.Txn] && w.Object == r.Object &&
				w.Txn != r.Txn && w.Version.After(r.Version) && w.Version.After(r.TS) {
				mutated[i].Version = w.Version
				seeded = true
				break
			}
		}
		if seeded {
			break
		}
	}
	if !seeded {
		t.Fatal("workload produced no later version to repoint at")
	}
	rep := esrcheck.Check(mutated)
	if rep.OK() {
		t.Fatal("repointed witness edge not flagged")
	}
	wantCode(t, rep, "zero-epsilon-relaxed")
}

// recordBoundedCaseOneRun produces a real ESR case-1 history: the query
// begins before an update commits newer data, then reads it within the
// object import limit.
func recordBoundedCaseOneRun(t *testing.T) []tso.Event {
	t.Helper()
	rec := history.NewRecorder()
	st := storage.NewStore(storage.Config{DefaultOIL: 50, DefaultOEL: 50})
	if _, err := st.Create(1, 100); err != nil {
		t.Fatal(err)
	}
	e := tso.NewEngine(st, tso.Options{Tracer: rec})
	// An early consistent read pins the initial value in the trace, so
	// the oracle can recompute divergences instead of trusting charges.
	q0, err := e.Begin(core.Query, ts(5), core.BoundSpec{Transaction: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(q0, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(q0); err != nil {
		t.Fatal(err)
	}
	q, err := e.Begin(core.Query, ts(10), core.BoundSpec{Transaction: core.NoLimit})
	if err != nil {
		t.Fatal(err)
	}
	u, err := e.Begin(core.Update, ts(20), core.BoundSpec{Transaction: core.NoLimit})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write(u, 1, 130); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(q, 1); err != nil { // case 1: late read, d=30 ≤ OIL 50
		t.Fatal(err)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

func TestMutationInflatedDivergenceFlagged(t *testing.T) {
	events := recordBoundedCaseOneRun(t)
	rep := esrcheck.Check(events)
	if err := rep.Err(); err != nil {
		t.Fatalf("bounded case-1 run refuted: %v", err)
	}
	if rep.RelaxedReads != 1 || rep.MaxDistance != 30 {
		t.Fatalf("unexpected baseline report: %+v", rep)
	}
	// Inflate the relaxed read's observed value so the true divergence
	// (200) dwarfs both what was charged and the object import limit.
	mutated := append([]tso.Event(nil), events...)
	seeded := false
	for i, ev := range mutated {
		if ev.Kind == tso.EvRead && ev.Inconsistency > 0 {
			mutated[i].Value = 300
			seeded = true
			break
		}
	}
	if !seeded {
		t.Fatal("no charged read to inflate")
	}
	rep = esrcheck.Check(mutated)
	if rep.OK() {
		t.Fatal("inflated divergence not flagged")
	}
	wantCode(t, rep, "object-import")
}

func wantCode(t *testing.T, rep *esrcheck.Report, code string) {
	t.Helper()
	for _, v := range rep.Violations {
		if v.Code == code {
			return
		}
	}
	t.Fatalf("no %q violation in %+v", code, rep.Violations)
}
