package esrcheck

import (
	"bytes"
	"strings"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

func ts(n int64) tsgen.Timestamp { return tsgen.Make(n, 0) }

// Terse event builders for hand-written histories. Transactions are
// queries unless built with the u* variants.
func begin(txn core.TxnID, at int64, til core.Distance) tso.Event {
	return tso.Event{Kind: tso.EvBegin, Txn: txn, TxnKind: core.Query, TS: ts(at), Limit: til}
}
func ubegin(txn core.TxnID, at int64, tel core.Distance) tso.Event {
	return tso.Event{Kind: tso.EvBegin, Txn: txn, TxnKind: core.Update, TS: ts(at), Limit: tel}
}
func commit(txn core.TxnID, at int64, inc, lim core.Distance) tso.Event {
	return tso.Event{Kind: tso.EvCommit, Txn: txn, TxnKind: core.Query, TS: ts(at), Inconsistency: inc, Limit: lim}
}
func ucommit(txn core.TxnID, at int64, inc, lim core.Distance) tso.Event {
	return tso.Event{Kind: tso.EvCommit, Txn: txn, TxnKind: core.Update, TS: ts(at), Inconsistency: inc, Limit: lim}
}
func abort(txn core.TxnID, at int64) tso.Event {
	return tso.Event{Kind: tso.EvAbort, Txn: txn, TxnKind: core.Update, TS: ts(at)}
}
func uwrite(txn core.TxnID, at int64, obj core.ObjectID, v core.Value, inc, oel core.Distance) tso.Event {
	return tso.Event{Kind: tso.EvWrite, Txn: txn, TxnKind: core.Update, TS: ts(at),
		Object: obj, Value: v, Version: ts(at), Inconsistency: inc, Limit: oel}
}
func qread(txn core.TxnID, at int64, obj core.ObjectID, version int64, v core.Value, inc, oil core.Distance, dirty bool) tso.Event {
	vts := tsgen.None
	if version >= 0 {
		vts = ts(version)
	}
	return tso.Event{Kind: tso.EvRead, Txn: txn, TxnKind: core.Query, TS: ts(at),
		Object: obj, Value: v, Version: vts, Inconsistency: inc, Limit: oil, DirtyRead: dirty}
}
func uread(txn core.TxnID, at int64, obj core.ObjectID, version int64, v core.Value) tso.Event {
	vts := tsgen.None
	if version >= 0 {
		vts = ts(version)
	}
	return tso.Event{Kind: tso.EvRead, Txn: txn, TxnKind: core.Update, TS: ts(at),
		Object: obj, Value: v, Version: vts}
}

func wantViolation(t *testing.T, rep *Report, code string) {
	t.Helper()
	for _, v := range rep.Violations {
		if v.Code == code {
			return
		}
	}
	t.Fatalf("no %q violation in %+v", code, rep.Violations)
}

func TestCertifiesSerialZeroEpsilonHistory(t *testing.T) {
	events := []tso.Event{
		ubegin(1, 10, 0), uwrite(1, 10, 1, 100, 0, 0), uwrite(1, 10, 2, 200, 0, 0), ucommit(1, 10, 0, 0),
		begin(2, 20, 0), qread(2, 20, 1, 10, 100, 0, 0, false), qread(2, 20, 2, 10, 200, 0, 0, false), commit(2, 20, 0, 0),
		ubegin(3, 30, 0), uwrite(3, 30, 1, 150, 0, 0), ucommit(3, 30, 0, 0),
	}
	rep := Check(events)
	if err := rep.Err(); err != nil {
		t.Fatalf("serial history refuted: %v", err)
	}
	if rep.Txns != 3 || rep.RelaxedReads != 0 || rep.MaxDistance != 0 {
		t.Errorf("report = %+v", rep)
	}
	want := []core.TxnID{1, 2, 3}
	if len(rep.Witness) != 3 {
		t.Fatalf("witness = %v", rep.Witness)
	}
	for i, id := range want {
		if rep.Witness[i] != id {
			t.Errorf("witness = %v, want %v", rep.Witness, want)
		}
	}
}

func TestZeroEpsilonRelaxedReadRefuted(t *testing.T) {
	// Query 2 (TIL 0) reads the initial version of object 1 after txn 1's
	// write at ts 10 committed: a late read no zero-epsilon run may take.
	events := []tso.Event{
		ubegin(1, 10, 0), uwrite(1, 10, 1, 100, 0, 0), ucommit(1, 10, 0, 0),
		begin(2, 20, 0), qread(2, 20, 1, -1, 42, 0, 0, false), commit(2, 20, 0, 0),
	}
	rep := Check(events)
	wantViolation(t, rep, "zero-epsilon-relaxed")
}

func TestBoundedLateReadCertified(t *testing.T) {
	// ESR case 1: query 2 (ts 15) views txn 3's later committed value on
	// object 1 (version 20, value 130) instead of its proper version 10
	// (value 100): divergence 30, within OIL 50 and TIL 50.
	events := []tso.Event{
		ubegin(1, 10, 0), uwrite(1, 10, 1, 100, 0, 0), ucommit(1, 10, 0, 0),
		ubegin(3, 20, 0), uwrite(3, 20, 1, 130, 0, 0), ucommit(3, 20, 0, 0),
		begin(2, 15, 50), qread(2, 15, 1, 20, 130, 30, 50, false), commit(2, 15, 30, 50),
	}
	rep := Check(events)
	if err := rep.Err(); err != nil {
		t.Fatalf("bounded history refuted: %v", err)
	}
	if rep.RelaxedReads != 1 || rep.MaxDistance != 30 || rep.TotalImported != 30 {
		t.Errorf("report = %+v", rep)
	}
}

func TestRecomputedDivergenceOverObjectImportLimit(t *testing.T) {
	// Same shape, but the true divergence (30) exceeds the OIL the read
	// was admitted under (10) — the engine undercharged.
	events := []tso.Event{
		ubegin(1, 10, 0), uwrite(1, 10, 1, 100, 0, 0), ucommit(1, 10, 0, 0),
		ubegin(3, 20, 0), uwrite(3, 20, 1, 130, 0, 0), ucommit(3, 20, 0, 0),
		begin(2, 15, 50), qread(2, 15, 1, 20, 130, 5, 10, false), commit(2, 15, 5, 50),
	}
	rep := Check(events)
	wantViolation(t, rep, "object-import")
}

func TestAccountingMismatchRefuted(t *testing.T) {
	// The commit event claims total 10 but the single read charged 30.
	events := []tso.Event{
		ubegin(1, 10, 0), uwrite(1, 10, 1, 100, 0, 0), ucommit(1, 10, 0, 0),
		ubegin(3, 20, 0), uwrite(3, 20, 1, 130, 0, 0), ucommit(3, 20, 0, 0),
		begin(2, 15, 50), qread(2, 15, 1, 20, 130, 30, 50, false), commit(2, 15, 10, 50),
	}
	rep := Check(events)
	wantViolation(t, rep, "accounting")
}

func TestTransactionLimitExceeded(t *testing.T) {
	// Committed total 30 over a declared TIL of 20.
	events := []tso.Event{
		ubegin(1, 10, 0), uwrite(1, 10, 1, 100, 0, 0), ucommit(1, 10, 0, 0),
		ubegin(3, 20, 0), uwrite(3, 20, 1, 130, 0, 0), ucommit(3, 20, 0, 0),
		begin(2, 15, 20), qread(2, 15, 1, 20, 130, 30, 50, false), commit(2, 15, 30, 20),
	}
	rep := Check(events)
	wantViolation(t, rep, "txn-limit")
}

func TestDirtyReadOfAbortedWriterMeteredNotRefuted(t *testing.T) {
	// ESR case 2 where the dirty source later aborts (§5.1): allowed and
	// metered under a nonzero bound, an error under strict SR.
	events := []tso.Event{
		ubegin(1, 10, 0), uwrite(1, 10, 1, 100, 0, 0), ucommit(1, 10, 0, 0),
		ubegin(3, 20, core.NoLimit), uwrite(3, 20, 1, 130, 0, core.NoLimit),
		begin(2, 25, 50), qread(2, 25, 1, 20, 130, 30, 50, true), commit(2, 25, 30, 50),
		abort(3, 20),
	}
	rep := Check(events)
	if err := rep.Err(); err != nil {
		t.Fatalf("metered dirty read refuted: %v", err)
	}
	if rep.DirtyReads != 1 || rep.MaxDistance != 30 {
		t.Errorf("report = %+v", rep)
	}
	if err := CheckSerializable(events); err == nil || !strings.Contains(err.Error(), "never committed") {
		t.Errorf("strict mode error = %v, want never-committed", err)
	}
}

func TestUnknownVersionWithoutDirtyFlagRefuted(t *testing.T) {
	// A read claiming a committed version that never committed and not
	// flagged dirty is trace corruption, not an epsilon.
	events := []tso.Event{
		begin(2, 25, 50), qread(2, 25, 1, 20, 130, 0, 50, false), commit(2, 25, 0, 50),
	}
	rep := Check(events)
	wantViolation(t, rep, "unknown-version")
}

func TestNonSerializableInterleavingRefuted(t *testing.T) {
	// The classic anomaly: query 1 read x before zero-epsilon update 2
	// wrote it and y after. Retrospectively the x-read is relaxed (the
	// write committed under it), so the oracle refutes it through the
	// writer's zero export limit rather than a graph cycle — all hard
	// edges in a timestamp-ordered trace point forward in timestamp.
	events := []tso.Event{
		begin(1, 30, 0),
		qread(1, 30, 1, -1, 0, 0, 0, false),
		ubegin(2, 20, 0), uwrite(2, 20, 1, 5, 0, 0), uwrite(2, 20, 2, 6, 0, 0), ucommit(2, 20, 0, 0),
		qread(1, 30, 2, 20, 6, 0, 0, false),
		commit(1, 30, 0, 0),
	}
	rep := Check(events)
	wantViolation(t, rep, "zero-epsilon-relaxed")
	// The strict checker sees the same history as a conflict cycle.
	if err := CheckSerializable(events); err == nil || !strings.Contains(err.Error(), "conflict cycle") {
		t.Errorf("strict mode error = %v, want conflict cycle", err)
	}
}

func TestCaseThreeLateWriteCheckedAgainstExportLimit(t *testing.T) {
	// ESR case 3: query 2 (ts 30) read object 1's version 10 properly,
	// then update 3 (ts 20) wrote under it and committed. The query's
	// read is retrospectively relaxed; the divergence was charged to the
	// writer's export, bounded by the OEL on its write event.
	events := []tso.Event{
		ubegin(1, 10, 0), uwrite(1, 10, 1, 100, 0, 0), ucommit(1, 10, 0, 0),
		begin(2, 30, 50), qread(2, 30, 1, 10, 100, 0, 50, false),
		ubegin(3, 20, 50), uwrite(3, 20, 1, 130, 30, 40), ucommit(3, 20, 30, 50),
		commit(2, 30, 0, 50),
	}
	rep := Check(events)
	if err := rep.Err(); err != nil {
		t.Fatalf("bounded case-3 history refuted: %v", err)
	}
	if rep.RelaxedReads != 1 || rep.MaxDistance != 30 || rep.TotalExported != 30 {
		t.Errorf("report = %+v", rep)
	}

	// Same history with the divergence over the writer's OEL.
	over := make([]tso.Event, len(events))
	copy(over, events)
	over[6].Value = 200         // update 3's write
	over[6].Inconsistency = 100 // charged export
	over[7].Inconsistency = 100 // its commit total
	rep = Check(over)
	wantViolation(t, rep, "object-export")
}

func TestUpdateRelaxedReadRefuted(t *testing.T) {
	// An update ET viewing a non-proper version is always a violation:
	// its writes depend on its reads (§3.2.1), no bound excuses it.
	events := []tso.Event{
		ubegin(1, 10, 0), uwrite(1, 10, 1, 100, 0, 0), ucommit(1, 10, 0, 0),
		ubegin(3, 20, 0), uwrite(3, 20, 1, 130, 0, 0), ucommit(3, 20, 0, 0),
		ubegin(2, 15, core.NoLimit), uread(2, 15, 1, 20, 130), ucommit(2, 15, 0, core.NoLimit),
	}
	rep := Check(events)
	wantViolation(t, rep, "update-relaxed")
}

func TestOwnWriteReadUnconstrained(t *testing.T) {
	events := []tso.Event{
		ubegin(1, 10, 0), uwrite(1, 10, 1, 100, 0, 0), uread(1, 10, 1, 10, 100), ucommit(1, 10, 0, 0),
	}
	rep := Check(events)
	if err := rep.Err(); err != nil {
		t.Fatalf("own-write read refuted: %v", err)
	}
}

// rread is a replica-served query read: like qread but flagged Replica.
func rread(txn core.TxnID, at int64, obj core.ObjectID, version int64, v core.Value, inc, oil core.Distance) tso.Event {
	ev := qread(txn, at, obj, version, v, inc, oil, false)
	ev.Replica = true
	return ev
}

func TestReplicaLagReadCertified(t *testing.T) {
	// A follower lagging one commit serves query 2 (ts 25) the old version
	// of object 1 (version 10, value 100) while the proper version is 20
	// (value 130). The lag distance 30 was charged against OIL 50, TIL 50.
	events := []tso.Event{
		ubegin(1, 10, 0), uwrite(1, 10, 1, 100, 0, 0), ucommit(1, 10, 0, 0),
		ubegin(3, 20, 0), uwrite(3, 20, 1, 130, 0, 0), ucommit(3, 20, 0, 0),
		begin(2, 25, 50), rread(2, 25, 1, 10, 100, 30, 50), commit(2, 25, 30, 50),
	}
	rep := Check(events)
	if err := rep.Err(); err != nil {
		t.Fatalf("bounded replica read refuted: %v", err)
	}
	if rep.RelaxedReads != 1 || rep.MaxDistance != 30 || rep.TotalImported != 30 {
		t.Errorf("report = %+v", rep)
	}
}

func TestZeroEpsilonReplicaReadRefuted(t *testing.T) {
	// The replica happened to be caught up — the read observed the proper
	// version with zero charge — but a TIL-0 query must never be routed to
	// a follower at all, so the policy check still refutes it.
	events := []tso.Event{
		ubegin(1, 10, 0), uwrite(1, 10, 1, 100, 0, 0), ucommit(1, 10, 0, 0),
		begin(2, 20, 0), rread(2, 20, 1, 10, 100, 0, 0), commit(2, 20, 0, 0),
	}
	rep := Check(events)
	wantViolation(t, rep, "zero-epsilon-replica")
}

func TestReplicaUnchargedStaleReadReaderCharged(t *testing.T) {
	// The follower had not even received txn 3's write, so it charged
	// nothing — yet the true divergence (30) exceeds the OIL (10). The
	// replica flag must force the reader-charged branch: this is an
	// object-import violation, never a case-3 object-export, because no
	// primary writer paid for the follower's lag.
	events := []tso.Event{
		ubegin(1, 10, 0), uwrite(1, 10, 1, 100, 0, 0), ucommit(1, 10, 0, 0),
		ubegin(3, 20, 0), uwrite(3, 20, 1, 130, 0, 25), ucommit(3, 20, 0, 0),
		begin(2, 25, 50), rread(2, 25, 1, 10, 100, 0, 10), commit(2, 25, 0, 50),
	}
	rep := Check(events)
	wantViolation(t, rep, "object-import")
	for _, v := range rep.Violations {
		if v.Code == "object-export" {
			t.Fatalf("replica lag misattributed to a primary writer: %+v", rep.Violations)
		}
	}
}

func TestReadTraceRoundTrip(t *testing.T) {
	events := []tso.Event{
		begin(1, 10, core.NoLimit),
		qread(1, 10, 7, -1, -25, 0, core.NoLimit, false),
		{Kind: tso.EvRead, Txn: 1, TxnKind: core.Query, TS: ts(10), Object: 8,
			Value: 5, Version: ts(4), Inconsistency: 3, Limit: 50, DirtyRead: true},
		rread(1, 10, 9, 4, 7, 2, 50),
		commit(1, 10, 3, core.NoLimit),
	}
	var buf bytes.Buffer
	buf.Write(tso.AppendTraceHeaderJSON(nil))
	buf.WriteByte('\n')
	for _, ev := range events {
		buf.Write(tso.AppendEventJSON(nil, ev))
		buf.WriteByte('\n')
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Schema != "esr-trace/2" || tr.TornTail {
		t.Errorf("trace = %+v", tr)
	}
	if len(tr.Events) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(tr.Events), len(events))
	}
	for i, want := range events {
		got := tr.Events[i]
		if got != want {
			t.Errorf("event %d = %+v, want %+v", i, got, want)
		}
	}
	// NoLimit must survive exactly — float64 decoding would corrupt it.
	if tr.Events[0].Limit != core.NoLimit {
		t.Errorf("NoLimit decoded as %d", tr.Events[0].Limit)
	}
}

func TestReadTraceTornTailTolerated(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(tso.AppendTraceHeaderJSON(nil))
	buf.WriteByte('\n')
	buf.Write(tso.AppendEventJSON(nil, begin(1, 10, 0)))
	buf.WriteByte('\n')
	full := tso.AppendEventJSON(nil, commit(1, 10, 0, 0))
	buf.Write(full[:len(full)/2]) // sheared mid-record by a crash
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.TornTail || len(tr.Events) != 1 {
		t.Errorf("trace = %+v", tr)
	}
}

func TestReadTraceMidStreamCorruptionRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("{\"ev\":garbage\n")
	buf.Write(tso.AppendEventJSON(nil, begin(1, 10, 0)))
	buf.WriteByte('\n')
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("mid-stream corruption accepted")
	}
}

func TestReadTraceUnsupportedSchemaRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("{\"schema\":\"other-trace/9\"}\n")
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("foreign schema accepted")
	}
}
