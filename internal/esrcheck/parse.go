// Trace decoding: the inverse of tso.AppendEventJSON for the
// esr-trace schema. Decoding is strict about field meaning and lenient
// about the physical stream: a missing header is accepted (flight-
// recorder dumps carry none), and a torn final line — the signature of a
// crash mid-append — is tolerated and flagged rather than failing the
// whole trace, because crash traces are exactly the ones worth checking.
package esrcheck

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

// Trace is a decoded event stream.
type Trace struct {
	// Schema is the header's schema identifier ("" when the stream had
	// no header line).
	Schema string
	// Events are the decoded events in stream order.
	Events []tso.Event
	// TornTail is true when the final line was truncated mid-record and
	// dropped (a crash during append).
	TornTail bool
}

// jsonEvent mirrors the wire fields of AppendEventJSON. Integer fields
// are int64/uint64 so NoLimit (2^63−1) survives the round trip exactly —
// decoding through float64 would corrupt it.
type jsonEvent struct {
	Ev     string `json:"ev"`
	Schema string `json:"schema"`
	Txn    uint64 `json:"txn"`
	Kind   string `json:"kind"`
	AtNs   int64  `json:"at_ns"`
	TS     uint64 `json:"ts"`
	Obj    uint32 `json:"obj"`
	Val    int64  `json:"val"`
	Ver    uint64 `json:"ver"`
	Inc    int64  `json:"inc"`
	Lim     int64 `json:"lim"`
	Dirty   bool  `json:"dirty"`
	Replica bool  `json:"replica"`
}

// ReadTrace decodes a JSONL trace stream.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	tr := &Trace{}
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			// The malformed line was not the last one: real corruption.
			return nil, pendingErr
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(line, &je); err != nil {
			pendingErr = fmt.Errorf("esrcheck: trace line %d: %w", lineNo, err)
			continue
		}
		if je.Schema != "" {
			if lineNo != 1 {
				return nil, fmt.Errorf("esrcheck: trace line %d: schema header not on first line", lineNo)
			}
			if !strings.HasPrefix(je.Schema, tso.TraceSchemaName+"/") {
				return nil, fmt.Errorf("esrcheck: unsupported trace schema %q", je.Schema)
			}
			tr.Schema = je.Schema
			continue
		}
		kind, ok := tso.ParseEventKind(je.Ev)
		if !ok {
			// Forward compatibility: later minor schema versions may add
			// event kinds; they cannot affect the checks defined here.
			continue
		}
		ev := tso.Event{
			Kind:          kind,
			Txn:           core.TxnID(je.Txn),
			At:            time.Duration(je.AtNs),
			TS:            tsgen.Timestamp(je.TS),
			Object:        core.ObjectID(je.Obj),
			Value:         core.Value(je.Val),
			Version:       tsgen.Timestamp(je.Ver),
			Inconsistency: core.Distance(je.Inc),
			Limit:         core.Distance(je.Lim),
			DirtyRead:     je.Dirty,
			Replica:       je.Replica,
		}
		switch je.Kind {
		case "query":
			ev.TxnKind = core.Query
		case "update":
			ev.TxnKind = core.Update
		default:
			return nil, fmt.Errorf("esrcheck: trace line %d: unknown transaction kind %q", lineNo, je.Kind)
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("esrcheck: reading trace: %w", err)
	}
	if pendingErr != nil {
		// Only the final record failed to decode: sheared by a crash
		// mid-append, drop it.
		tr.TornTail = true
	}
	return tr, nil
}
