// Package txnshard provides the sharded transaction tables behind the
// engines' hot paths. A single engine-wide mutex around the live-
// transaction map serializes Begin/lookup/remove from every connection;
// under concurrent clients that one cache line becomes the whole
// engine's convoy point — the same shared-capacity contention the paper
// measures at the workload level (§8, thrashing). Sharding the table by
// transaction id removes the convoy: ids are assigned sequentially, so
// id&mask spreads consecutive transactions round-robin across shards and
// two concurrent connections almost never touch the same lock.
//
// The map is generic over the value type so the TO, 2PL and MVTO engines
// share one implementation for their *txnState tables, and the TO engine
// reuses it for the dirty-reader counters.
package txnshard

import (
	"sync"

	"github.com/epsilondb/epsilondb/internal/core"
)

// NumShards is the shard count. Power of two so the shard index is a
// mask; 64 keeps the per-shard collision probability negligible for any
// realistic number of simultaneously live transactions while the whole
// shard array stays a few KiB.
const NumShards = 64

const shardMask = NumShards - 1

// shard is one lock-striped slice of the table. The struct is padded to
// a 64-byte cache line so neighbouring shards' locks do not false-share.
type shard[V any] struct {
	mu sync.RWMutex
	m  map[core.TxnID]V
	// 24 bytes of RWMutex + 8 bytes of map header = 32; pad to 64.
	_ [32]byte
}

// Map is a sharded map keyed by transaction id. The zero value is not
// ready for use; construct with New.
type Map[V any] struct {
	shards [NumShards]shard[V]
}

// New returns an empty sharded map.
func New[V any]() *Map[V] {
	m := &Map[V]{}
	for i := range m.shards {
		m.shards[i].m = make(map[core.TxnID]V)
	}
	return m
}

func (m *Map[V]) shardFor(id core.TxnID) *shard[V] {
	return &m.shards[uint64(id)&shardMask]
}

// Store inserts or replaces the value for id.
func (m *Map[V]) Store(id core.TxnID, v V) {
	s := m.shardFor(id)
	s.mu.Lock()
	s.m[id] = v
	s.mu.Unlock()
}

// Load returns the value for id.
func (m *Map[V]) Load(id core.TxnID) (V, bool) {
	s := m.shardFor(id)
	s.mu.RLock()
	v, ok := s.m[id]
	s.mu.RUnlock()
	return v, ok
}

// Delete removes id and returns the value it held. The check-and-remove
// is atomic: exactly one of two racing Delete calls observes ok=true,
// which is what makes it the engines' double-finish guard.
func (m *Map[V]) Delete(id core.TxnID) (V, bool) {
	s := m.shardFor(id)
	s.mu.Lock()
	v, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
	return v, ok
}

// Mutate atomically rewrites the entry for id: f receives the current
// value (or the zero value with ok=false when absent) and returns the
// new value and whether to keep the entry; returning keep=false deletes
// it. Used for the dirty-reader counters, whose increment must not race
// with the writer's teardown.
func (m *Map[V]) Mutate(id core.TxnID, f func(v V, ok bool) (V, bool)) {
	s := m.shardFor(id)
	s.mu.Lock()
	v, ok := s.m[id]
	nv, keep := f(v, ok)
	if keep {
		s.m[id] = nv
	} else if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
}

// Len returns the number of entries across all shards. The count is a
// consistent sum of per-shard snapshots, not an atomic snapshot of the
// whole table — exactly the guarantee a quiescence check needs.
func (m *Map[V]) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls f for every entry until f returns false. Each shard is
// visited under its read lock; entries stored or deleted concurrently in
// other shards may or may not be observed.
func (m *Map[V]) Range(f func(id core.TxnID, v V) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for id, v := range s.m {
			if !f(id, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}
