package txnshard

import (
	"sync"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
)

func TestStoreLoadDelete(t *testing.T) {
	m := New[string]()
	if _, ok := m.Load(1); ok {
		t.Error("empty map reported an entry")
	}
	m.Store(1, "a")
	m.Store(NumShards+1, "b") // same shard as 1
	m.Store(2, "c")
	if v, ok := m.Load(1); !ok || v != "a" {
		t.Errorf("Load(1) = %q, %v", v, ok)
	}
	if v, ok := m.Load(NumShards + 1); !ok || v != "b" {
		t.Errorf("Load(%d) = %q, %v", NumShards+1, v, ok)
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d, want 3", m.Len())
	}
	if v, ok := m.Delete(1); !ok || v != "a" {
		t.Errorf("Delete(1) = %q, %v", v, ok)
	}
	if _, ok := m.Delete(1); ok {
		t.Error("second Delete(1) reported ok")
	}
	if m.Len() != 2 {
		t.Errorf("Len after delete = %d, want 2", m.Len())
	}
}

// TestDeleteIsDoubleFinishGuard is the property the engines rely on:
// of N racing Delete calls for one id, exactly one observes ok=true.
func TestDeleteIsDoubleFinishGuard(t *testing.T) {
	m := New[int]()
	for id := core.TxnID(1); id <= 100; id++ {
		m.Store(id, int(id))
	}
	const racers = 8
	wins := make([]int, racers)
	var wg sync.WaitGroup
	for r := 0; r < racers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for id := core.TxnID(1); id <= 100; id++ {
				if _, ok := m.Delete(id); ok {
					wins[r]++
				}
			}
		}(r)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != 100 {
		t.Errorf("%d total successful deletes, want exactly 100", total)
	}
}

func TestMutate(t *testing.T) {
	m := New[int]()
	inc := func(v int, _ bool) (int, bool) { return v + 1, true }
	m.Mutate(7, inc)
	m.Mutate(7, inc)
	if v, _ := m.Load(7); v != 2 {
		t.Errorf("counter = %d, want 2", v)
	}
	// keep=false deletes.
	m.Mutate(7, func(v int, ok bool) (int, bool) { return 0, false })
	if _, ok := m.Load(7); ok {
		t.Error("Mutate(keep=false) left the entry")
	}
	// keep=false on an absent entry is a no-op.
	m.Mutate(8, func(v int, ok bool) (int, bool) {
		if ok {
			t.Error("absent entry reported present")
		}
		return 0, false
	})
	if m.Len() != 0 {
		t.Errorf("Len = %d, want 0", m.Len())
	}
}

func TestRange(t *testing.T) {
	m := New[int]()
	for id := core.TxnID(1); id <= 200; id++ {
		m.Store(id, 1)
	}
	sum := 0
	m.Range(func(_ core.TxnID, v int) bool { sum += v; return true })
	if sum != 200 {
		t.Errorf("full Range visited %d entries, want 200", sum)
	}
	seen := 0
	m.Range(func(_ core.TxnID, _ int) bool { seen++; return seen < 5 })
	if seen != 5 {
		t.Errorf("early-exit Range visited %d entries, want 5", seen)
	}
}

// TestConcurrentChurn hammers all operations from many goroutines; run
// under -race it is the package's data-race canary.
func TestConcurrentChurn(t *testing.T) {
	m := New[int]()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := core.TxnID(w*perWorker + i)
				m.Store(id, i)
				m.Mutate(id, func(v int, ok bool) (int, bool) { return v + 1, true })
				if v, ok := m.Load(id); !ok || v != i+1 {
					t.Errorf("Load(%d) = %d, %v; want %d", id, v, ok, i+1)
				}
				_ = m.Len()
				if _, ok := m.Delete(id); !ok {
					t.Errorf("Delete(%d) missed own entry", id)
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != 0 {
		t.Errorf("Len = %d after churn, want 0", m.Len())
	}
}
