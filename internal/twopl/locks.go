package twopl

import (
	"fmt"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/tso"
)

// acquire takes obj in the requested mode for st, blocking behind
// incompatible holders. It detects deadlocks at block time by cycle
// search over the waits-for graph derived from the lock table, aborting
// the youngest transaction on the cycle.
func (e *Engine) acquire(st *txnState, obj core.ObjectID, mode lockMode) error {
	e.mu.Lock()
	if cur, ok := e.txns.Load(st.id); !ok || cur != st {
		// The transaction was finished by another goroutine between the
		// caller's lookup and this acquire; granting now would install a
		// lock nothing will ever release. Checking under mu is enough:
		// every finish path removes the txn from the registry before it
		// cancels queued requests under mu, so if the removal happens
		// after this check, the cancellation necessarily runs after our
		// enqueue below and sweeps the request.
		e.mu.Unlock()
		return tso.ErrUnknownTxn
	}
	entry := e.locks[obj]
	if entry == nil {
		entry = &lockEntry{obj: obj, holders: make(map[core.TxnID]lockMode)}
		e.locks[obj] = entry
	}

	if held, ok := st.locks[obj]; ok {
		if held == lockExclusive || mode == lockShared {
			// Already sufficient.
			e.mu.Unlock()
			return nil
		}
		// Upgrade S→X: immediate when we are the sole holder.
		if len(entry.holders) == 1 {
			entry.holders[st.id] = lockExclusive
			st.locks[obj] = lockExclusive
			e.mu.Unlock()
			return nil
		}
	} else if e.grantableLocked(entry, st.id, mode) {
		entry.holders[st.id] = mode
		st.locks[obj] = mode
		e.mu.Unlock()
		return nil
	}

	// Block: enqueue and look for a deadlock.
	req := &request{txn: st.id, mode: mode, granted: make(chan struct{})}
	entry.queue = append(entry.queue, req)
	if victim := e.findDeadlockVictimLocked(st.id); victim != 0 {
		if victim == st.id {
			e.removeRequestLocked(entry, req)
			e.mu.Unlock()
			// An explicit Abort may race this self-abort; the registry's
			// atomic delete picks the single finisher.
			if _, registered := e.txns.Delete(st.id); registered {
				e.finishAbort(st, metrics.AbortDeadlock)
			}
			return &AbortError{Txn: st.id, Reason: metrics.AbortDeadlock,
				Err: fmt.Errorf("twopl: deadlock victim waiting for object %d", obj)}
		}
		e.abortWaiterLocked(victim)
	}
	if e.parker != nil {
		req.parked = true
	}
	e.mu.Unlock()

	e.col.Waited()
	if req.parked {
		e.parker.Suspend()
	}
	<-req.granted
	if req.cancelled {
		// Another goroutine finished this transaction (explicit Abort or
		// Commit) while the request was queued; its cleanup and metrics
		// already ran there, so this operation only reports it gone.
		return tso.ErrUnknownTxn
	}
	if req.aborted {
		_, registered := e.txns.Delete(st.id)
		// An explicit Abort may have finished the transaction between the
		// victim wakeup and this cleanup; finishing twice would double the
		// abort counters and re-release locks.
		if registered {
			e.finishAbort(st, metrics.AbortDeadlock)
		}
		return &AbortError{Txn: st.id, Reason: metrics.AbortDeadlock,
			Err: fmt.Errorf("twopl: chosen as deadlock victim on object %d", obj)}
	}
	return nil
}

// grantableLocked reports whether txn may take the lock immediately:
// the mode must be compatible with the holders and, for fairness, no
// other request may be queued ahead.
func (e *Engine) grantableLocked(entry *lockEntry, txn core.TxnID, mode lockMode) bool {
	if len(entry.queue) > 0 {
		return false
	}
	for holder, held := range entry.holders {
		if holder == txn {
			continue
		}
		if held == lockExclusive || mode == lockExclusive {
			return false
		}
	}
	return true
}

// releaseAll drops every lock st holds and grants what becomes
// available, crediting parked waiters on the timeline before waking them.
func (e *Engine) releaseAll(st *txnState) {
	e.mu.Lock()
	var wake []*request
	for obj := range st.locks {
		entry := e.locks[obj]
		if entry == nil {
			continue
		}
		delete(entry.holders, st.id)
		wake = append(wake, e.grantQueueLocked(entry)...)
		if len(entry.holders) == 0 && len(entry.queue) == 0 {
			delete(e.locks, obj)
		}
	}
	st.locks = make(map[core.ObjectID]lockMode)
	e.mu.Unlock()
	for _, req := range wake {
		if req.parked && e.parker != nil {
			e.parker.Resume()
		}
		close(req.granted)
	}
}

// grantQueueLocked grants queued requests FIFO while compatible,
// including S→X upgrades for sole holders. It returns the requests to
// wake; the caller closes their channels after releasing the engine
// lock.
func (e *Engine) grantQueueLocked(entry *lockEntry) []*request {
	var wake []*request
	for len(entry.queue) > 0 {
		head := entry.queue[0]
		holder, _ := e.txns.Load(head.txn)
		if holder == nil {
			// The requester vanished (aborted elsewhere); cancel it so a
			// goroutine still blocked on the request is not stranded.
			entry.queue = entry.queue[1:]
			head.cancelled = true
			wake = append(wake, head)
			continue
		}
		compatible := true
		for h, held := range entry.holders {
			if h == head.txn {
				continue
			}
			if held == lockExclusive || head.mode == lockExclusive {
				compatible = false
				break
			}
		}
		if !compatible {
			return wake
		}
		entry.holders[head.txn] = head.mode
		holder.locks[entry.obj] = head.mode
		entry.queue = entry.queue[1:]
		wake = append(wake, head)
	}
	return wake
}

// cancelRequestsLocked removes every queued request of txn from the lock
// table, marking each cancelled, and grants whatever the removals
// unblock. The caller wakes the returned requests after releasing the
// engine lock; granted and cancelled waiters take the same wakeup path.
func (e *Engine) cancelRequestsLocked(txn core.TxnID) []*request {
	var wake []*request
	for obj, entry := range e.locks {
		removed := false
		for i := 0; i < len(entry.queue); {
			req := entry.queue[i]
			if req.txn != txn {
				i++
				continue
			}
			entry.queue = append(entry.queue[:i], entry.queue[i+1:]...)
			req.cancelled = true
			wake = append(wake, req)
			removed = true
		}
		if removed {
			wake = append(wake, e.grantQueueLocked(entry)...)
			if len(entry.holders) == 0 && len(entry.queue) == 0 {
				delete(e.locks, obj)
			}
		}
	}
	return wake
}

// removeRequestLocked deletes a pending request from an entry's queue.
func (e *Engine) removeRequestLocked(entry *lockEntry, req *request) {
	for i, r := range entry.queue {
		if r == req {
			entry.queue = append(entry.queue[:i], entry.queue[i+1:]...)
			return
		}
	}
}

// abortWaiterLocked marks a waiting transaction as a deadlock victim,
// removes its pending requests, and wakes it; the victim's goroutine
// performs its own cleanup when it observes the flag.
func (e *Engine) abortWaiterLocked(victim core.TxnID) {
	for _, entry := range e.locks {
		for i := 0; i < len(entry.queue); i++ {
			req := entry.queue[i]
			if req.txn != victim {
				continue
			}
			entry.queue = append(entry.queue[:i], entry.queue[i+1:]...)
			req.aborted = true
			if req.parked && e.parker != nil {
				e.parker.Resume()
			}
			close(req.granted)
			return
		}
	}
}

// findDeadlockVictimLocked searches for a waits-for cycle reachable from
// start and returns the youngest (largest-timestamp) transaction on it,
// or 0 when there is no cycle. Edges run from each queued requester to
// every current holder of the requested object.
func (e *Engine) findDeadlockVictimLocked(start core.TxnID) core.TxnID {
	// Build the waits-for adjacency from the lock table.
	edges := make(map[core.TxnID][]core.TxnID)
	for _, entry := range e.locks {
		for _, req := range entry.queue {
			for holder := range entry.holders {
				if holder != req.txn {
					edges[req.txn] = append(edges[req.txn], holder)
				}
			}
		}
	}
	// DFS from start looking for a cycle through start's component.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[core.TxnID]int)
	stack := []core.TxnID{}
	var cycle []core.TxnID
	var dfs func(u core.TxnID) bool
	dfs = func(u core.TxnID) bool {
		color[u] = grey
		stack = append(stack, u)
		for _, v := range edges[u] {
			switch color[v] {
			case white:
				if dfs(v) {
					return true
				}
			case grey:
				// Extract the cycle from the stack.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == v {
						break
					}
				}
				return true
			}
		}
		color[u] = black
		stack = stack[:len(stack)-1]
		return false
	}
	if !dfs(start) {
		return 0
	}
	// Victim: youngest timestamp on the cycle.
	var victim core.TxnID
	var victimState *txnState
	for _, txn := range cycle {
		st, _ := e.txns.Load(txn)
		if st == nil {
			continue
		}
		if victimState == nil || st.ts.After(victimState.ts) {
			victim, victimState = txn, st
		}
	}
	return victim
}
