package twopl

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

func newTestEngine(t *testing.T, n int) (*Engine, *metrics.Collector) {
	t.Helper()
	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for i := 1; i <= n; i++ {
		if _, err := st.Create(core.ObjectID(i), core.Value(100*i)); err != nil {
			t.Fatal(err)
		}
	}
	col := &metrics.Collector{}
	return NewEngine(st, col, nil), col
}

func begin(t *testing.T, e *Engine, ts int64) core.TxnID {
	t.Helper()
	txn, err := e.Begin(core.Update, tsgen.Make(ts, 0), core.SRSpec())
	if err != nil {
		t.Fatal(err)
	}
	return txn
}

func TestBasicReadWriteCommit(t *testing.T) {
	e, col := newTestEngine(t, 2)
	u := begin(t, e, 10)
	v, err := e.Read(u, 1)
	if err != nil || v != 100 {
		t.Fatalf("read = %d,%v", v, err)
	}
	got, err := e.WriteDelta(u, 2, 50)
	if err != nil || got != 250 {
		t.Fatalf("write delta = %d,%v", got, err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	q := begin(t, e, 20)
	if v, err := e.Read(q, 2); err != nil || v != 250 {
		t.Fatalf("after commit = %d,%v", v, err)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
	if s := col.Snapshot(); s.Commits != 2 || s.Aborts() != 0 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestAbortRestoresValue(t *testing.T) {
	e, _ := newTestEngine(t, 1)
	u := begin(t, e, 10)
	if err := e.Write(u, 1, 999); err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(u); err != nil {
		t.Fatal(err)
	}
	q := begin(t, e, 20)
	if v, _ := e.Read(q, 1); v != 100 {
		t.Errorf("value after abort = %d", v)
	}
}

func TestDoubleWriteBySameTxn(t *testing.T) {
	e, _ := newTestEngine(t, 1)
	u := begin(t, e, 10)
	if err := e.Write(u, 1, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WriteDelta(u, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	q := begin(t, e, 20)
	if v, _ := e.Read(q, 1); v != 205 {
		t.Errorf("value = %d, want 205", v)
	}
	if err := e.Commit(q); err != nil { // release the S lock
		t.Fatal(err)
	}
	// Abort path of a double write must restore the original value.
	u2 := begin(t, e, 30)
	if err := e.Write(u2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WriteDelta(u2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(u2); err != nil {
		t.Fatal(err)
	}
	q2 := begin(t, e, 40)
	if v, _ := e.Read(q2, 1); v != 205 {
		t.Errorf("value after abort = %d, want 205", v)
	}
}

func TestSharedLocksDoNotBlock(t *testing.T) {
	e, _ := newTestEngine(t, 1)
	a := begin(t, e, 10)
	b := begin(t, e, 20)
	if _, err := e.Read(a, 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.Read(b, 1)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("shared read blocked behind shared read")
	}
	if err := e.Commit(a); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(b); err != nil {
		t.Fatal(err)
	}
}

func TestWriterBlocksUntilCommit(t *testing.T) {
	e, _ := newTestEngine(t, 1)
	a := begin(t, e, 10)
	if err := e.Write(a, 1, 150); err != nil {
		t.Fatal(err)
	}
	b := begin(t, e, 20)
	got := make(chan core.Value, 1)
	go func() {
		v, err := e.Read(b, 1)
		if err != nil {
			got <- -1
			return
		}
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("read returned %d before writer committed", v)
	case <-time.After(30 * time.Millisecond):
	}
	if err := e.Commit(a); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 150 {
			t.Errorf("read = %d, want 150", v)
		}
	case <-time.After(time.Second):
		t.Fatal("reader never woke")
	}
	if err := e.Commit(b); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetectedAndVictimAborted(t *testing.T) {
	e, col := newTestEngine(t, 2)
	a := begin(t, e, 10) // older
	b := begin(t, e, 20) // younger → victim
	if err := e.Write(a, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(b, 2, 2); err != nil {
		t.Fatal(err)
	}
	// a → wants 2 (held by b); b → wants 1 (held by a): deadlock.
	aDone := make(chan error, 1)
	go func() { aDone <- e.Write(a, 2, 3) }()
	time.Sleep(20 * time.Millisecond) // let a block
	err := e.Write(b, 1, 4)
	var ae *AbortError
	if !errors.As(err, &ae) {
		// b may have survived if the detector victimized a instead.
		t.Fatalf("expected deadlock abort for b, got %v", err)
	}
	if ae.Reason != metrics.AbortDeadlock {
		t.Errorf("reason = %v, want deadlock", ae.Reason)
	}
	// a should now proceed and commit.
	select {
	case err := <-aDone:
		if err != nil {
			t.Fatalf("a's blocked write failed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("a never unblocked after victim abort")
	}
	if err := e.Commit(a); err != nil {
		t.Fatal(err)
	}
	if col.Snapshot().AbortDeadlock == 0 {
		t.Error("deadlock abort not counted")
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	e, _ := newTestEngine(t, 1)
	a := begin(t, e, 10)
	if _, err := e.Read(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(a, 1, 500); err != nil {
		t.Fatalf("sole-holder upgrade failed: %v", err)
	}
	if err := e.Commit(a); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeDeadlockBetweenTwoReaders(t *testing.T) {
	// Both transactions hold S and request X: the classic upgrade
	// deadlock; the detector must sacrifice one.
	e, _ := newTestEngine(t, 1)
	a := begin(t, e, 10)
	b := begin(t, e, 20)
	if _, err := e.Read(a, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(b, 1); err != nil {
		t.Fatal(err)
	}
	aDone := make(chan error, 1)
	go func() { aDone <- e.Write(a, 1, 1) }()
	time.Sleep(20 * time.Millisecond)
	bErr := e.Write(b, 1, 2)
	var aErr error
	select {
	case aErr = <-aDone:
	case <-time.After(time.Second):
		t.Fatal("upgrade deadlock not resolved")
	}
	aborts := 0
	if _, ok := tso.IsAbort(aErr); ok {
		aborts++
	} else if aErr != nil {
		t.Fatalf("a error: %v", aErr)
	}
	if _, ok := tso.IsAbort(bErr); ok {
		aborts++
	} else if bErr != nil {
		t.Fatalf("b error: %v", bErr)
	}
	if aborts != 1 {
		t.Fatalf("want exactly one victim, got %d", aborts)
	}
}

func TestUnknownTxnAndMissingObject(t *testing.T) {
	e, _ := newTestEngine(t, 1)
	if _, err := e.Read(core.TxnID(99), 1); !errors.Is(err, tso.ErrUnknownTxn) {
		t.Errorf("unknown txn: %v", err)
	}
	u := begin(t, e, 10)
	_, err := e.Read(u, 42)
	ae, ok := tso.IsAbort(err)
	if !ok || ae.Reason != metrics.AbortMissingObject {
		t.Errorf("missing object: %v", err)
	}
	if err := e.Commit(u); !errors.Is(err, tso.ErrUnknownTxn) {
		t.Errorf("commit after internal abort: %v", err)
	}
	if _, err := e.Begin(core.Kind(7), tsgen.Make(1, 0), core.SRSpec()); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestConcurrentTransfersAreSerializableAndConserve(t *testing.T) {
	e, _ := newTestEngine(t, 5)
	var initial core.Value = 100 + 200 + 300 + 400 + 500
	var wg sync.WaitGroup
	clock := &tsgen.LogicalClock{}
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			gen := tsgen.NewGenerator(w, clock)
			for i := 0; i < 40; i++ {
				for attempt := 0; attempt < 100; attempt++ {
					txn, err := e.Begin(core.Update, gen.Next(), core.SRSpec())
					if err != nil {
						t.Error(err)
						return
					}
					a := core.ObjectID(1 + rng.Intn(5))
					b := core.ObjectID(1 + (int(a)+rng.Intn(4))%5)
					amt := core.Value(1 + rng.Intn(20))
					if _, err := e.WriteDelta(txn, a, amt); err != nil {
						continue // aborted; retry
					}
					if _, err := e.WriteDelta(txn, b, -amt); err != nil {
						continue
					}
					if err := e.Commit(txn); err == nil {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	// Sum via a final transaction.
	q := begin(t, e, 1<<40)
	var total core.Value
	for i := 1; i <= 5; i++ {
		v, err := e.Read(q, core.ObjectID(i))
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
	if total != initial {
		t.Errorf("total = %d, want %d", total, initial)
	}
}
