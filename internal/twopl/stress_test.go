package twopl

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

// TestConcurrentAbortVsBlockedAcquire is the regression test for the
// stranded-waiter bug: an explicit Abort of a transaction blocked in
// acquire must cancel its queued request and wake the goroutine.
// Previously the queue entry of a deregistered transaction was silently
// dropped at grant time, leaving the acquirer parked on its channel
// forever.
func TestConcurrentAbortVsBlockedAcquire(t *testing.T) {
	e, col := newTestEngine(t, 1)
	writer := begin(t, e, 10)
	if err := e.Write(writer, 1, 500); err != nil {
		t.Fatalf("Write: %v", err)
	}
	reader := begin(t, e, 20)
	done := make(chan error, 1)
	go func() {
		_, err := e.Read(reader, 1)
		done <- err
	}()

	// Wait until the read is queued behind the exclusive lock, then
	// abort the reading transaction out from under it.
	deadline := time.Now().Add(5 * time.Second)
	for col.Snapshot().Waits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("read never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.Abort(reader); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, tso.ErrUnknownTxn) {
			t.Fatalf("blocked read returned %v, want ErrUnknownTxn", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked acquire never woke after abort: stranded waiter")
	}

	s := col.Snapshot()
	if got := s.Aborts(); got != 1 {
		t.Errorf("aborts = %d, want exactly 1 (no double count)", got)
	}
	if err := e.Commit(writer); err != nil {
		t.Fatalf("writer commit after race: %v", err)
	}
	if n := e.Live(); n != 0 {
		t.Errorf("Live() = %d, want 0", n)
	}
}

// TestAbortVsBlockedAcquireUnblocksQueue checks that cancelling a queued
// request re-grants what the removal unblocks: a reader queued behind a
// cancelled upgrade-style waiter must not stay stuck until the holder
// commits.
func TestAbortVsBlockedAcquireUnblocksQueue(t *testing.T) {
	e, col := newTestEngine(t, 1)
	holder := begin(t, e, 10)
	if _, err := e.Read(holder, 1); err != nil {
		t.Fatalf("Read: %v", err)
	}
	// blockedWriter queues an X request behind holder's S lock.
	blockedWriter := begin(t, e, 20)
	writerDone := make(chan error, 1)
	go func() {
		writerDone <- e.Write(blockedWriter, 1, 500)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for col.Snapshot().Waits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	// reader queues an S request behind the X request (FIFO fairness).
	reader := begin(t, e, 30)
	readerDone := make(chan error, 1)
	go func() {
		_, err := e.Read(reader, 1)
		readerDone <- err
	}()
	for col.Snapshot().Waits < 2 {
		if time.Now().After(deadline) {
			t.Fatal("reader never blocked")
		}
		time.Sleep(time.Millisecond)
	}

	// Cancelling the writer must immediately grant the reader's S lock —
	// it is compatible with the holder.
	if err := e.Abort(blockedWriter); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if err := <-writerDone; !errors.Is(err, tso.ErrUnknownTxn) {
		t.Fatalf("cancelled writer returned %v, want ErrUnknownTxn", err)
	}
	select {
	case err := <-readerDone:
		if err != nil {
			t.Fatalf("reader after cancellation: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader stayed queued after the blocking request was cancelled")
	}
	for _, txn := range []core.TxnID{holder, reader} {
		if err := e.Commit(txn); err != nil {
			t.Fatalf("Commit(%d): %v", txn, err)
		}
	}
	if n := e.Live(); n != 0 {
		t.Errorf("Live() = %d, want 0", n)
	}
}

// TestAbortCommitStressRace hammers the engine with conflicting
// transactions that commit and abort concurrently (run under -race via
// make check / CI). Every transaction must finish exactly once and the
// lock table must drain.
func TestAbortCommitStressRace(t *testing.T) {
	const (
		workers = 8
		iters   = 60
		objects = 4
		opsPer  = 4
	)
	e, col := newTestEngine(t, objects)
	var ts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				txn, err := e.Begin(core.Update, tsgen.Make(ts.Add(1), 0), core.SRSpec())
				if err != nil {
					t.Errorf("Begin: %v", err)
					return
				}
				alive := true
				for k := 0; k < opsPer && alive; k++ {
					obj := core.ObjectID(1 + rng.Intn(objects))
					if rng.Intn(2) == 0 {
						_, err = e.Read(txn, obj)
					} else {
						err = e.Write(txn, obj, core.Value(rng.Intn(1000)))
					}
					// Deadlock victims are finished by the engine; stop
					// driving the attempt.
					alive = err == nil
				}
				if alive {
					if rng.Intn(4) == 0 {
						e.Abort(txn)
					} else {
						e.Commit(txn)
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()

	if n := e.Live(); n != 0 {
		t.Errorf("Live() = %d, want 0 after stress", n)
	}
	e.mu.Lock()
	stranded := len(e.locks)
	e.mu.Unlock()
	if stranded != 0 {
		t.Errorf("lock table holds %d entries after stress, want 0", stranded)
	}
	s := col.Snapshot()
	if total := s.Commits + s.Aborts(); total != workers*iters {
		t.Errorf("commits(%d) + aborts(%d) = %d, want %d: a transaction finished twice or never",
			s.Commits, s.Aborts(), total, workers*iters)
	}
}

// TestRacingFinishersExactlyOnce races Commit against Abort for every
// transaction from two goroutines. The sharded registry's atomic
// check-and-delete must let exactly one finisher through — a double
// finish would double-count metrics and re-release locks; a lost finish
// would strand locks forever.
func TestRacingFinishersExactlyOnce(t *testing.T) {
	const sites = 8
	const perSite = 100
	e, col := newTestEngine(t, sites)
	var ts atomic.Int64
	var finished atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < sites; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			obj := core.ObjectID(1 + s)
			for i := 0; i < perSite; i++ {
				txn, err := e.Begin(core.Update, tsgen.Make(ts.Add(1), 0), core.SRSpec())
				if err != nil {
					t.Errorf("Begin: %v", err)
					return
				}
				if err := e.Write(txn, obj, core.Value(i)); err != nil {
					continue
				}
				var inner sync.WaitGroup
				inner.Add(2)
				go func() {
					defer inner.Done()
					if e.Commit(txn) == nil {
						finished.Add(1)
					}
				}()
				go func() {
					defer inner.Done()
					if e.Abort(txn) == nil {
						finished.Add(1)
					}
				}()
				inner.Wait()
			}
		}(s)
	}
	wg.Wait()
	if n := e.Live(); n != 0 {
		t.Errorf("Live() = %d, want 0", n)
	}
	s := col.Snapshot()
	if got := s.Commits + s.AbortExplicit; got != finished.Load() {
		t.Errorf("commits+explicit aborts = %d, want %d (one finisher per txn)", got, finished.Load())
	}
}
