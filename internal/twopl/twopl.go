// Package twopl implements strict two-phase locking with deadlock
// detection — the concurrency control the paper deliberately avoided
// ("we chose timestamp ordering for concurrency control to avoid the
// problem of deadlock detection and recovery that is present in the case
// of 2PL", §4). It exists as an ablation baseline: the esr-bench cc
// comparison runs the same workloads under epsilon-TO, strict 2PL, and
// MVTO.
//
// The engine takes shared locks for reads and exclusive locks for
// writes, holds every lock until commit or abort (strictness), and
// detects deadlocks by cycle search over the waits-for graph at block
// time, aborting the youngest transaction on the cycle. Lock waits
// integrate with the harness timeline the same way the TO engine's
// strict-ordering waits do: a blocked acquirer suspends the timeline and
// the releaser credits it back before waking it.
package twopl

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/txnshard"
)

// lockMode is the requested access.
type lockMode uint8

const (
	lockShared lockMode = iota
	lockExclusive
)

// AbortError mirrors tso.AbortError for the 2PL engine.
type AbortError = tso.AbortError

// request is one queued lock acquisition.
type request struct {
	txn  core.TxnID
	mode lockMode
	// granted is closed when the request is granted; the granter credits
	// the waiter's timeline first.
	granted chan struct{}
	// aborted is set (under the engine lock) when the waiter was chosen
	// as a deadlock victim; granted is closed as the wakeup.
	aborted bool
	// cancelled is set (under the engine lock) when the transaction was
	// finished by another goroutine (explicit Abort or Commit) while this
	// request was queued; the waiter's cleanup already ran elsewhere.
	cancelled bool
	// parked marks a waiter that suspended the timeline.
	parked bool
}

// lockEntry is the lock state of one object.
type lockEntry struct {
	obj     core.ObjectID
	holders map[core.TxnID]lockMode
	queue   []*request
}

// txnState tracks one attempt's footprint.
type txnState struct {
	id     core.TxnID
	ts     tsgen.Timestamp
	kind   core.Kind
	locks  map[core.ObjectID]lockMode
	writes []*storage.Object
	ops    int64
}

// Engine is the strict-2PL engine. It satisfies the experiment harness's
// Engine interface.
type Engine struct {
	store  *storage.Store
	col    *metrics.Collector
	parker tso.Parker

	nextTxn atomic.Uint64

	// mu guards the lock table. A single mutex keeps deadlock detection
	// simple; the paper's prototype was a single server as well.
	mu    sync.Mutex
	locks map[core.ObjectID]*lockEntry

	// txns is the transaction registry, sharded by id so Begin/lookup
	// from concurrent connections do not contend on the lock-table
	// mutex. Lock order: mu may be held while touching a shard (the
	// grant and deadlock paths resolve states under mu); no shard lock
	// is ever held while acquiring mu — the Map's operations are self-
	// contained. Liveness checks in acquire stay race-free because every
	// finish path removes the txn from the registry first and only then
	// cancels its queued requests under mu, so an acquirer that enqueues
	// under mu either sees the removal or has its request cancelled.
	txns *txnshard.Map[*txnState]

	// dur, when set, makes commits durable through the write-ahead log.
	dur storage.Durability

	// tracer, when set, receives the same execution events the TO engine
	// emits (schema esr-trace/1), so recorded 2PL histories feed the same
	// offline checker. Limits are always zero: 2PL is a serializable
	// baseline and ignores bounds.
	tracer tso.Tracer
	// now stamps trace events; wall clock since engine creation.
	now func() time.Duration
}

// SetDurability routes commits through d. Call before serving traffic.
func (e *Engine) SetDurability(d storage.Durability) { e.dur = d }

// SetTracer installs a trace-event consumer. Call before serving traffic.
func (e *Engine) SetTracer(t tso.Tracer) { e.tracer = t }

// trace emits an event if a tracer is installed, stamping it with the
// engine's timeline.
func (e *Engine) trace(ev tso.Event) {
	if e.tracer != nil {
		ev.At = e.now()
		e.tracer.Trace(ev)
	}
}

// NewEngine returns a 2PL engine over the store. The collector and
// parker may be nil.
func NewEngine(store *storage.Store, col *metrics.Collector, parker tso.Parker) *Engine {
	start := time.Now()
	return &Engine{
		store:  store,
		col:    col,
		parker: parker,
		locks:  make(map[core.ObjectID]*lockEntry),
		txns:   txnshard.New[*txnState](),
		now:    func() time.Duration { return time.Since(start) },
	}
}

// Begin starts an attempt. The bound specification is ignored — 2PL is
// the serializable baseline — but the signature matches the harness.
func (e *Engine) Begin(kind core.Kind, ts tsgen.Timestamp, _ core.BoundSpec) (core.TxnID, error) {
	if kind != core.Query && kind != core.Update {
		return 0, fmt.Errorf("twopl: invalid transaction kind %d", kind)
	}
	st := &txnState{
		id:    core.TxnID(e.nextTxn.Add(1)),
		ts:    ts,
		kind:  kind,
		locks: make(map[core.ObjectID]lockMode),
	}
	e.txns.Store(st.id, st)
	e.col.Begin()
	e.trace(tso.Event{Kind: tso.EvBegin, Txn: st.id, TxnKind: kind, TS: ts})
	return st.id, nil
}

// Read acquires a shared lock and returns the value.
func (e *Engine) Read(txn core.TxnID, obj core.ObjectID) (core.Value, error) {
	st, o, err := e.prepare(txn, obj)
	if err != nil {
		return 0, err
	}
	if err := e.acquire(st, obj, lockShared); err != nil {
		return 0, err
	}
	o.Lock()
	v := o.Value()
	ver := o.CommittedTS()
	if owner, dirty := o.Dirty(); dirty && owner == st.id {
		ver = o.WriteTS() // reading our own pending write
	}
	e.trace(tso.Event{Kind: tso.EvRead, Txn: st.id, TxnKind: st.kind, TS: st.ts,
		Object: o.ID(), Value: v, Version: ver})
	o.Unlock()
	st.ops++
	e.col.ReadExecuted(false)
	return v, nil
}

// Write acquires an exclusive lock and installs an absolute value.
func (e *Engine) Write(txn core.TxnID, obj core.ObjectID, value core.Value) error {
	_, err := e.write(txn, obj, value, false)
	return err
}

// WriteDelta acquires an exclusive lock and installs current+delta,
// returning the value written.
func (e *Engine) WriteDelta(txn core.TxnID, obj core.ObjectID, delta core.Value) (core.Value, error) {
	return e.write(txn, obj, delta, true)
}

func (e *Engine) write(txn core.TxnID, obj core.ObjectID, v core.Value, isDelta bool) (core.Value, error) {
	st, o, err := e.prepare(txn, obj)
	if err != nil {
		return 0, err
	}
	if err := e.acquire(st, obj, lockExclusive); err != nil {
		return 0, err
	}
	o.Lock()
	newValue := v
	if isDelta {
		newValue = o.Value() + v
	}
	owner, dirty := o.Dirty()
	if dirty && owner != st.id {
		// Impossible under an exclusive lock; a hit means lock-table
		// corruption.
		o.Unlock()
		return 0, e.abortNow(st, metrics.AbortOther,
			fmt.Errorf("twopl: object %d dirty by txn %d under our X lock", obj, owner))
	}
	if dirty {
		// Second write by the same transaction: rewrite the pending
		// value while keeping the pre-transaction shadow for abort.
		o.AbortWrite(st.id)
	}
	if err := o.BeginWrite(st.id, st.ts, newValue); err != nil {
		o.Unlock()
		return 0, e.abortNow(st, metrics.AbortOther, err)
	}
	e.trace(tso.Event{Kind: tso.EvWrite, Txn: st.id, TxnKind: st.kind, TS: st.ts,
		Object: o.ID(), Value: newValue, Version: st.ts})
	o.Unlock()
	if !dirty {
		st.writes = append(st.writes, o)
	}
	st.ops++
	e.col.WriteExecuted(false)
	return newValue, nil
}

// prepare resolves the attempt and object.
func (e *Engine) prepare(txn core.TxnID, obj core.ObjectID) (*txnState, *storage.Object, error) {
	st, ok := e.txns.Load(txn)
	if !ok {
		return nil, nil, tso.ErrUnknownTxn
	}
	o, err := e.store.Get(obj)
	if err != nil {
		return nil, nil, e.abortNow(st, metrics.AbortMissingObject, err)
	}
	return st, o, nil
}

// Live reports the number of live transactions (begun, not yet finished).
func (e *Engine) Live() int { return e.txns.Len() }

// Commit publishes writes and releases all locks. The registry's atomic
// check-and-delete is the double-finish guard; requests the transaction
// still has queued are cancelled before its footprint is released.
//
// With durability set, the commit record is logged and the writes
// published under the log mutex, then the locks are released BEFORE
// waiting on the group-commit fsync — holding 2PL locks across an fsync
// would serialize the whole lock footprint on disk latency.
func (e *Engine) Commit(txn core.TxnID) error {
	st, ok := e.txns.Delete(txn)
	if !ok {
		return tso.ErrUnknownTxn
	}
	e.mu.Lock()
	wake := e.cancelRequestsLocked(txn)
	e.mu.Unlock()
	e.wakeCancelled(wake)
	publish := func() {
		for _, o := range st.writes {
			o.Lock()
			o.CommitWrite(st.id)
			o.Unlock()
		}
	}
	var durAck storage.Ack
	var durErr error
	if e.dur != nil {
		rec := &storage.TxnCommit{Txn: st.id, Kind: st.kind, TS: st.ts}
		if len(st.writes) > 0 {
			rec.Writes = make([]storage.CommittedWrite, 0, len(st.writes))
			for _, o := range st.writes {
				o.Lock()
				if owner, dirty := o.Dirty(); dirty && owner == st.id {
					rec.Writes = append(rec.Writes, storage.CommittedWrite{
						Object: o.ID(), Value: o.Value(), TS: o.WriteTS(),
					})
				}
				o.Unlock()
			}
		}
		durAck, durErr = e.dur.LogCommit(rec, publish)
		if durErr != nil {
			publish()
		}
	} else {
		publish()
	}
	e.releaseAll(st)
	e.col.Commit()
	e.trace(tso.Event{Kind: tso.EvCommit, Txn: st.id, TxnKind: st.kind, TS: st.ts})
	if durErr == nil && durAck != nil {
		durErr = durAck.Wait()
	}
	if durErr != nil {
		return &tso.DurabilityError{Txn: st.id, Err: durErr}
	}
	return nil
}

// Abort discards writes and releases all locks.
func (e *Engine) Abort(txn core.TxnID) error {
	st, ok := e.txns.Delete(txn)
	if !ok {
		return tso.ErrUnknownTxn
	}
	e.mu.Lock()
	wake := e.cancelRequestsLocked(txn)
	e.mu.Unlock()
	e.wakeCancelled(wake)
	e.finishAbort(st, metrics.AbortExplicit)
	return nil
}

// abortNow aborts internally and builds the error the operation returns.
// When another goroutine already finished the transaction, only the
// error is built: finishing twice would double-count the abort and
// re-release state.
func (e *Engine) abortNow(st *txnState, reason metrics.AbortReason, cause error) error {
	_, registered := e.txns.Delete(st.id)
	e.mu.Lock()
	wake := e.cancelRequestsLocked(st.id)
	e.mu.Unlock()
	e.wakeCancelled(wake)
	if registered {
		e.finishAbort(st, reason)
	}
	return &AbortError{Txn: st.id, Reason: reason, Err: cause}
}

// wakeCancelled wakes requests removed by cancelRequestsLocked, crediting
// parked waiters' timelines first, exactly like the grant path.
func (e *Engine) wakeCancelled(wake []*request) {
	for _, req := range wake {
		if req.parked && e.parker != nil {
			e.parker.Resume()
		}
		close(req.granted)
	}
}

// finishAbort restores writes and releases locks.
func (e *Engine) finishAbort(st *txnState, reason metrics.AbortReason) {
	for _, o := range st.writes {
		o.Lock()
		o.AbortWrite(st.id)
		o.Unlock()
	}
	e.releaseAll(st)
	e.col.Abort(reason, st.ops)
	e.trace(tso.Event{Kind: tso.EvAbort, Txn: st.id, TxnKind: st.kind, TS: st.ts})
}
