package client

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/wire"
)

func TestAbortErrorTypes(t *testing.T) {
	ae := &AbortError{Reason: metrics.AbortLateRead, Message: "too old"}
	if !strings.Contains(ae.Error(), "late-read") || !strings.Contains(ae.Error(), "too old") {
		t.Errorf("Error() = %q", ae.Error())
	}
	if got, ok := IsAbort(ae); !ok || got != ae {
		t.Error("IsAbort failed on direct AbortError")
	}
	wrapped := fmt.Errorf("op failed: %w", ae)
	if _, ok := IsAbort(wrapped); !ok {
		t.Error("IsAbort failed on wrapped AbortError")
	}
	if _, ok := IsAbort(errors.New("plain")); ok {
		t.Error("IsAbort matched a plain error")
	}
}

// fakeServer answers the sync handshake then dispatches with fn.
func fakeServer(t *testing.T, fn func(wire.Message) wire.Message) *Client {
	t.Helper()
	a, b := net.Pipe()
	serverConn := wire.NewConn(b)
	go func() {
		defer serverConn.Close()
		for {
			req, err := serverConn.ReadMessage()
			if err != nil {
				return
			}
			var resp wire.Message
			if s, ok := req.(*wire.Sync); ok {
				resp = &wire.SyncOK{ServerTicks: s.ClientTicks + 500}
			} else {
				resp = fn(req)
			}
			if err := serverConn.WriteMessage(resp); err != nil {
				return
			}
		}
	}()
	c, err := NewPipe(wire.NewConn(a), Options{Site: 3, Clock: &tsgen.LogicalClock{}, SyncSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSyncHandshakeInstallsCorrection(t *testing.T) {
	c := fakeServer(t, func(wire.Message) wire.Message {
		return &wire.Error{Code: wire.CodeGeneric, Message: "unused"}
	})
	// The fake server reports local+500; correction must be ≈500 (the
	// logical clock consumes a tick per probe, so allow slack).
	if corr := c.Correction(); corr < 490 || corr > 510 {
		t.Errorf("Correction = %d, want ≈500", corr)
	}
	if c.Site() != 3 {
		t.Errorf("Site = %d", c.Site())
	}
}

func TestServerAbortBecomesAbortError(t *testing.T) {
	c := fakeServer(t, func(req wire.Message) wire.Message {
		if _, ok := req.(*wire.Begin); ok {
			return &wire.BeginOK{Txn: 1}
		}
		return &wire.Error{Code: wire.CodeAbort, Reason: metrics.AbortExportLimit, Message: "tel"}
	})
	txn, err := c.Begin(core.Update, core.SRSpec())
	if err != nil {
		t.Fatal(err)
	}
	err = txn.Write(1, 5)
	ae, ok := IsAbort(err)
	if !ok || ae.Reason != metrics.AbortExportLimit {
		t.Errorf("err = %v", err)
	}
	// The attempt is finished after a server abort; Abort is a no-op.
	if err := txn.Abort(); err != nil {
		t.Errorf("Abort after server abort: %v", err)
	}
}

func TestGenericErrorIsNotAbort(t *testing.T) {
	c := fakeServer(t, func(wire.Message) wire.Message {
		return &wire.Error{Code: wire.CodeGeneric, Message: "nope"}
	})
	_, err := c.Begin(core.Query, core.SRSpec())
	if err == nil {
		t.Fatal("expected error")
	}
	if _, ok := IsAbort(err); ok {
		t.Error("generic error classified as abort")
	}
}

func TestUnexpectedResponseTypesRejected(t *testing.T) {
	c := fakeServer(t, func(req wire.Message) wire.Message {
		switch req.(type) {
		case *wire.Begin:
			return &wire.OK{} // wrong: should be BeginOK
		default:
			return &wire.OK{}
		}
	})
	_, err := c.Begin(core.Query, core.SRSpec())
	if err == nil || !strings.Contains(err.Error(), "unexpected Begin response") {
		t.Errorf("err = %v", err)
	}
}

func TestRunRetryStopsOnNonAbortError(t *testing.T) {
	calls := 0
	c := fakeServer(t, func(req wire.Message) wire.Message {
		calls++
		return &wire.Error{Code: wire.CodeGeneric, Message: "broken"}
	})
	_, attempts, err := c.RunRetry(core.NewQuery(0, 1), 0)
	if err == nil {
		t.Fatal("expected error")
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on generic errors)", attempts)
	}
}

func TestRunRetryRetriesAborts(t *testing.T) {
	begins := 0
	c := fakeServer(t, func(req wire.Message) wire.Message {
		switch req.(type) {
		case *wire.Begin:
			begins++
			return &wire.BeginOK{Txn: core.TxnID(begins)}
		case *wire.Read:
			if begins < 3 {
				return &wire.Error{Code: wire.CodeAbort, Reason: metrics.AbortLateRead, Message: "late"}
			}
			return &wire.Value{Value: 42}
		case *wire.Commit:
			return &wire.OK{}
		}
		return &wire.Error{Code: wire.CodeGeneric, Message: "?"}
	})
	res, attempts, err := c.RunRetry(core.NewQuery(0, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 || res.Sum != 42 {
		t.Errorf("attempts=%d sum=%d, want 3, 42", attempts, res.Sum)
	}
}

func TestRunRetryHonoursMaxAttempts(t *testing.T) {
	c := fakeServer(t, func(req wire.Message) wire.Message {
		if _, ok := req.(*wire.Begin); ok {
			return &wire.BeginOK{Txn: 1}
		}
		return &wire.Error{Code: wire.CodeAbort, Reason: metrics.AbortLateRead, Message: "late"}
	})
	_, attempts, err := c.RunRetry(core.NewQuery(0, 1), 2)
	if err == nil {
		t.Fatal("expected error after max attempts")
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", Options{}); err == nil {
		t.Error("Dial to closed port succeeded")
	}
}
