package client

import (
	"fmt"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// The asynchronous call surface. CallAsync and Batch expose the
// demultiplexing core directly; RunProgramBatched and RunRetryBatched
// build on Batch to run a whole transaction program in a handful of
// round trips instead of one per operation. On a client without
// pipelining (Options.Pipeline <= 1) every entry point degrades to the
// synchronous path with identical semantics, so callers need not branch
// on configuration.

// Pending is a handle to an in-flight call issued with CallAsync. It is
// resolved by Wait; a Pending belongs to one goroutine at a time.
type Pending struct {
	call *pendingCall // nil once resolved (or on the synchronous path)
	resp wire.Message
	err  error
}

// Wait blocks until the call resolves and returns its response, with
// server aborts mapped to AbortError exactly like synchronous calls.
// Wait is idempotent: later calls return the cached result.
func (p *Pending) Wait() (wire.Message, error) {
	if p.call != nil {
		<-p.call.done
		p.resp, p.err = callResult(p.call)
		p.call = nil
	}
	if p.err != nil {
		return nil, mapAbort(p.err)
	}
	return p.resp, nil
}

// CallAsync issues one request without waiting for its response. On a
// pipelined client the call occupies one pipeline slot until resolved
// (CallAsync itself blocks only while the pipeline is at depth); on a
// synchronous client the round trip completes before CallAsync returns
// and Wait merely reports it.
func (c *Client) CallAsync(req wire.Message) *Pending {
	if c.pipe == nil {
		resp, err := c.callWire(req)
		return &Pending{resp: resp, err: err}
	}
	if c.closed.Load() {
		return &Pending{err: ErrClientClosed}
	}
	call, err := c.pipe.register(req)
	if err != nil {
		return &Pending{err: err}
	}
	if err := c.pipe.enqueue(sendItem{calls: []*pendingCall{call}}); err != nil {
		<-call.done // teardown resolved it; Wait reports that error
	}
	return &Pending{call: call}
}

// BatchResult is one operation's outcome within a Batch. Each op
// succeeds or fails alone — the batch is a transport optimization, not
// an atomicity domain.
type BatchResult struct {
	Msg wire.Message
	Err error
}

// Batch executes a sequence of batchable requests (wire.Batchable
// types) and returns their positional results. On a pipelined client
// the ops travel in one CRC-framed Batch frame and their replies are
// demultiplexed by tag; on a synchronous client they run as ordinary
// sequential calls. The returned error reports failures to issue the
// batch at all (a non-batchable type, a broken connection); per-op
// failures land in the corresponding BatchResult.
func (c *Client) Batch(reqs []wire.Message) ([]BatchResult, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	if c.pipe == nil {
		results := make([]BatchResult, len(reqs))
		for i, req := range reqs {
			if !wire.Batchable(req.MsgType()) {
				return nil, fmt.Errorf("client: %v is not batchable", req.MsgType())
			}
			results[i].Msg, results[i].Err = c.call(req)
		}
		return results, nil
	}
	results, err := c.pipe.batch(reqs)
	if err != nil {
		return nil, err
	}
	for i := range results {
		results[i].Err = mapAbort(results[i].Err)
	}
	return results, nil
}

// RunProgramBatched executes one attempt of a program like RunProgram,
// but ships the operations (and the final commit) in Batch frames of at
// most batchSize ops — batchSize <= 0 means one frame for the whole
// program, turning an N-op transaction into two round trips (Begin,
// then ops+Commit). Semantics match RunProgram: the first failing op
// decides the attempt, and every error exit aborts the attempt so no
// transaction leaks server-side.
//
// The latency trade is real: a batched attempt cannot observe an abort
// until the whole frame's replies return, so under heavy conflict the
// per-op RunProgram wastes less work per abort. The open-loop load
// generator measures exactly this trade.
func (c *Client) RunProgramBatched(p *core.Program, batchSize int) (*Result, error) {
	t, err := c.Begin(p.Kind, p.Bounds)
	if err != nil {
		return nil, err
	}
	reqs := make([]wire.Message, 0, len(p.Ops)+1)
	for _, op := range p.Ops {
		switch op.Kind {
		case core.OpRead:
			reqs = append(reqs, &wire.Read{Txn: t.id, Object: op.Object})
		case core.OpWrite:
			w := &wire.Write{Txn: t.id, Object: op.Object}
			if op.UseDelta {
				w.Delta, w.Value = true, op.Delta
			} else {
				w.Value = op.Value
			}
			reqs = append(reqs, w)
		}
	}
	reqs = append(reqs, &wire.Commit{Txn: t.id})
	if batchSize <= 0 {
		batchSize = len(reqs)
	}

	res := &Result{Values: make([]core.Value, 0, len(p.Ops))}
	var firstErr error
scan:
	for start := 0; start < len(reqs); start += batchSize {
		end := min(start+batchSize, len(reqs))
		results, err := c.Batch(reqs[start:end])
		if err != nil {
			firstErr = err
			break
		}
		for i, r := range results {
			// The first failing op decides the attempt; later results of
			// the same frame are collateral of the server-side abort.
			if r.Err != nil {
				firstErr = r.Err
				break scan
			}
			if start+i == len(reqs)-1 {
				// The commit ack.
				t.done = true
				continue
			}
			v, ok := r.Msg.(*wire.Value)
			if !ok {
				firstErr = fmt.Errorf("client: unexpected op response %v", r.Msg.MsgType())
				break scan
			}
			res.Values = append(res.Values, v.Value)
			if p.Ops[start+i].Kind == core.OpRead {
				res.Sum += v.Value
			}
		}
	}
	if firstErr != nil {
		if _, isAbort := IsAbort(firstErr); isAbort {
			t.done = true // server already cleaned the footprint up
		}
		_ = t.Abort() // best-effort cleanup; the original error wins
		return nil, firstErr
	}
	return res, nil
}

// RunRetryBatched is RunRetry over RunProgramBatched: it resubmits
// batched attempts after every abort with a fresh timestamp, sleeping
// per the client's Backoff schedule between attempts. maxAttempts caps
// retries; zero means unlimited.
func (c *Client) RunRetryBatched(p *core.Program, batchSize, maxAttempts int) (*Result, int, error) {
	attempts := 0
	for {
		attempts++
		res, err := c.RunProgramBatched(p, batchSize)
		if err == nil {
			return res, attempts, nil
		}
		if _, isAbort := IsAbort(err); !isAbort {
			return nil, attempts, err
		}
		if maxAttempts > 0 && attempts >= maxAttempts {
			return nil, attempts, err
		}
		if d := c.jitterDelay(attempts); d > 0 {
			time.Sleep(d)
		}
	}
}
