package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/epsilondb/epsilondb/internal/wire"
)

// The demultiplexing core. With Options.Pipeline > 1 a client splits its
// connection between two goroutines: a writer that drains a bounded send
// queue, coalescing queued frames into one flush (and so usually one
// syscall), and a reader that matches TaggedReply/BatchReply frames back
// to waiter slots by tag. The synchronous Call path of the seed protocol
// is preserved as the single-slot special case: a depth-1 client never
// starts the core and stays byte-identical on the wire.
//
// Lock discipline (enforced by the lockorder analyzer's client
// vocabulary): pipe.mu is a leaf mutex ordered after nothing; no channel
// receive, select or Wait may execute while it is held. The writer and
// reader goroutines therefore take mu only for slot-table bookkeeping
// and always release it before blocking on the queue, the wire, or a
// waiter.

// ErrConnBroken is wrapped into the error every outstanding call fails
// with when the pipelined connection dies underneath them — a read or
// write error, an undecodable frame, or a tag-protocol violation. Match
// with errors.Is. A Close-initiated teardown fails calls with
// ErrClientClosed instead.
var ErrConnBroken = errors.New("client: connection broken")

// ErrCallTimeout is wrapped into the error a pipelined call fails with
// when its per-call deadline (Options.CallTimeout) expires. The timeout
// resolves only that slot: the connection and every other outstanding
// call keep going, and a late response for the expired tag is discarded
// when it eventually arrives.
var ErrCallTimeout = errors.New("client: call timeout")

// callState is the lifecycle of a waiter slot, guarded by pipe.mu.
type callState uint8

const (
	// callLive: registered, response pending, waiter waiting.
	callLive callState = iota
	// callAbandoned: the waiter already gave up (per-call timeout), but
	// the tag stays registered until the response arrives or the
	// connection dies, so a late response is recognized and discarded
	// instead of being mistaken for an unknown tag.
	callAbandoned
)

// pendingCall is one waiter slot.
type pendingCall struct {
	tag   uint32
	req   wire.Message
	state callState

	// group is the slot semaphore accounting: all calls of one frame
	// (a single Tagged request, or every op of a Batch) share a group,
	// and the frame's pipeline slot is released when the last of them
	// resolves.
	group *callGroup

	// resp/err are published before done is closed.
	resp  wire.Message
	err   error
	once  sync.Once
	done  chan struct{}
	timer *time.Timer
}

// finish resolves the waiter exactly once; later resolutions (a timeout
// racing a delivery) lose.
func (c *pendingCall) finish(resp wire.Message, err error) {
	c.once.Do(func() {
		if c.timer != nil {
			c.timer.Stop()
		}
		c.resp, c.err = resp, err
		close(c.done)
	})
}

// callGroup tracks how many calls of one frame are still unresolved.
type callGroup struct {
	mu        sync.Mutex
	remaining int
	pipe      *pipe
}

// resolveOne releases the group's pipeline slot when the last member
// resolves.
func (g *callGroup) resolveOne() {
	g.mu.Lock()
	g.remaining--
	release := g.remaining == 0
	g.mu.Unlock()
	if release {
		<-g.pipe.slots
	}
}

// sendItem is one frame's worth of calls queued for the writer: a single
// tagged request, or a batch group sent as one Batch frame.
type sendItem struct {
	calls []*pendingCall
	batch bool
}

// maxCoalesce caps how many queued frames the writer folds into one
// flush.
const maxCoalesce = 64

// pipe is the per-connection demultiplexing state.
type pipe struct {
	conn        *wire.Conn
	callTimeout time.Duration

	mu      sync.Mutex
	pending map[uint32]*pendingCall
	free    []uint32
	nextTag uint32
	broken  error // sticky teardown cause; nil while healthy

	// slots bounds the number of request frames in flight or queued
	// (the pipeline depth); sendq is sized to match so enqueues after a
	// slot acquisition never block.
	slots chan struct{}
	sendq chan sendItem

	quit       chan struct{}
	readerDone chan struct{}
	writerDone chan struct{}
}

// startPipe spins up the demultiplexing core on a connection that has
// already completed the synchronous handshake.
func startPipe(conn *wire.Conn, depth int, callTimeout time.Duration) *pipe {
	p := &pipe{
		conn:        conn,
		callTimeout: callTimeout,
		pending:     make(map[uint32]*pendingCall, depth),
		nextTag:     1,
		slots:       make(chan struct{}, depth),
		sendq:       make(chan sendItem, depth),
		quit:        make(chan struct{}),
		readerDone:  make(chan struct{}),
		writerDone:  make(chan struct{}),
	}
	go p.readLoop()
	go p.writeLoop()
	return p
}

// register allocates a tag and waiter slot for one request. Completed
// tags are reused LIFO, so the tag space stays small and dense.
func (p *pipe) register(req wire.Message) (*pendingCall, error) {
	call := &pendingCall{req: req, done: make(chan struct{})}
	p.mu.Lock()
	if p.broken != nil {
		err := p.broken
		p.mu.Unlock()
		return nil, err
	}
	if n := len(p.free); n > 0 {
		call.tag = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		call.tag = p.nextTag
		p.nextTag++
	}
	p.pending[call.tag] = call
	p.mu.Unlock()
	if p.callTimeout > 0 {
		call.timer = time.AfterFunc(p.callTimeout, func() { p.abandon(call) })
	}
	return call, nil
}

// abandon resolves a call whose deadline expired without unregistering
// its tag: the slot is poisoned, not the connection.
func (p *pipe) abandon(call *pendingCall) {
	p.mu.Lock()
	if p.broken == nil && p.pending[call.tag] == call {
		call.state = callAbandoned
	}
	p.mu.Unlock()
	call.finish(nil, fmt.Errorf("%w after %v (tag %d)", ErrCallTimeout, p.callTimeout, call.tag))
}

// enqueue hands one frame's calls to the writer, blocking while the
// pipeline is at depth.
func (p *pipe) enqueue(item sendItem) error {
	group := &callGroup{remaining: len(item.calls), pipe: p}
	// Group assignment happens under mu: deliver reads call.group under
	// the same lock, and a (misbehaving) peer could otherwise respond to
	// a registered tag before its group is visible.
	p.mu.Lock()
	for _, c := range item.calls {
		c.group = group
	}
	p.mu.Unlock()
	select {
	case p.slots <- struct{}{}:
	case <-p.quit:
		return p.teardownErr()
	}
	// The slot acquisition races teardown: both selects pick randomly
	// among ready cases, and the buffered channels stay ready after quit
	// closes, so without the re-check a send could "succeed" on a dead
	// pipe with its slot token stranded. On the teardown paths the token
	// is handed back deterministically — nothing will ever deliver a
	// response that would release it.
	if err := p.teardownCause(); err != nil {
		<-p.slots
		return err
	}
	select {
	case p.sendq <- item:
		// A teardown that lands after this send already resolved every
		// registered call, so the caller's wait returns its error.
		return nil
	case <-p.quit:
		<-p.slots
		return p.teardownErr()
	}
}

// call runs one tagged request to completion: register, enqueue, wait.
// Error responses come back as Go errors, mirroring wire.Conn.Call.
func (p *pipe) call(req wire.Message) (wire.Message, error) {
	call, err := p.register(req)
	if err != nil {
		return nil, err
	}
	if err := p.enqueue(sendItem{calls: []*pendingCall{call}}); err != nil {
		// Teardown already resolved the call; fall through to its error.
		<-call.done
	}
	<-call.done
	return callResult(call)
}

// callResult unwraps a resolved waiter slot.
func callResult(call *pendingCall) (wire.Message, error) {
	if call.err != nil {
		return nil, call.err
	}
	if e, ok := call.resp.(*wire.Error); ok {
		return nil, e
	}
	return call.resp, nil
}

// batch sends reqs as one Batch frame and waits for every op's reply.
// Results are positional; each op succeeds or fails alone.
func (p *pipe) batch(reqs []wire.Message) ([]BatchResult, error) {
	calls := make([]*pendingCall, 0, len(reqs))
	for _, req := range reqs {
		if !wire.Batchable(req.MsgType()) {
			// Unwind: the already-registered tags must not leak.
			p.unregister(calls)
			return nil, fmt.Errorf("client: %v is not batchable", req.MsgType())
		}
		call, err := p.register(req)
		if err != nil {
			p.unregister(calls)
			return nil, err
		}
		calls = append(calls, call)
	}
	if err := p.enqueue(sendItem{calls: calls, batch: true}); err != nil {
		for _, c := range calls {
			<-c.done
		}
	}
	results := make([]BatchResult, len(calls))
	for i, c := range calls {
		<-c.done
		results[i].Msg, results[i].Err = callResult(c)
	}
	return results, nil
}

// unregister frees tags that were registered but never enqueued.
func (p *pipe) unregister(calls []*pendingCall) {
	p.mu.Lock()
	for _, c := range calls {
		if p.pending[c.tag] == c {
			delete(p.pending, c.tag)
			p.free = append(p.free, c.tag)
		}
	}
	p.mu.Unlock()
	for _, c := range calls {
		if c.timer != nil {
			c.timer.Stop()
		}
	}
}

// writeLoop drains the send queue, coalescing queued frames into one
// flush. It owns the connection's write side.
func (p *pipe) writeLoop() {
	defer close(p.writerDone)
	var tagged wire.Tagged // reused request envelope
	var batch wire.Batch   // reused batch frame (retains Ops capacity)
	for {
		var first sendItem
		select {
		case first = <-p.sendq:
		case <-p.quit:
			return
		}
		items := []sendItem{first}
		for len(items) < maxCoalesce {
			select {
			case it := <-p.sendq:
				items = append(items, it)
			default:
				goto write
			}
		}
	write:
		for _, item := range items {
			var err error
			if item.batch {
				batch.Ops = batch.Ops[:0]
				for _, c := range item.calls {
					batch.Ops = append(batch.Ops, wire.BatchItem{Tag: c.tag, Msg: c.req})
				}
				err = p.conn.WriteMessageNoFlush(&batch)
			} else {
				tagged.Tag, tagged.Inner = item.calls[0].tag, item.calls[0].req
				err = p.conn.WriteMessageNoFlush(&tagged)
			}
			if err != nil {
				p.fail(fmt.Errorf("%w: %v", ErrConnBroken, err))
				return
			}
		}
		if err := p.conn.Flush(); err != nil {
			p.fail(fmt.Errorf("%w: %v", ErrConnBroken, err))
			return
		}
	}
}

// readLoop owns the connection's read side: it decodes reply frames and
// routes each tagged reply to its waiter slot.
func (p *pipe) readLoop() {
	defer close(p.readerDone)
	for {
		m, err := p.conn.ReadMessage()
		if err != nil {
			p.fail(fmt.Errorf("%w: %v", ErrConnBroken, err))
			return
		}
		switch m := m.(type) {
		case *wire.TaggedReply:
			tag, inner := m.Tag, m.Inner
			wire.Recycle(m) // shallow: inner now belongs to the waiter
			if !p.deliver(tag, inner) {
				return
			}
		case *wire.BatchReply:
			ok := true
			for i := range m.Replies {
				if ok {
					ok = p.deliver(m.Replies[i].Tag, m.Replies[i].Msg)
				}
				m.Replies[i].Msg = nil
			}
			wire.Recycle(m)
			if !ok {
				return
			}
		default:
			p.fail(fmt.Errorf("%w: untagged %v frame on a pipelined connection", ErrConnBroken, m.MsgType()))
			return
		}
	}
}

// deliver routes one tagged reply to its slot. A tag that names no slot
// — never issued, or already completed (a duplicate) — is a protocol
// violation that kills the connection: the stream's framing can no
// longer be trusted. It reports whether the connection survives.
func (p *pipe) deliver(tag uint32, msg wire.Message) bool {
	p.mu.Lock()
	call, ok := p.pending[tag]
	if !ok {
		p.mu.Unlock()
		if msg != nil {
			wire.Recycle(msg)
		}
		p.fail(fmt.Errorf("%w: response for unknown or duplicate tag %d", ErrConnBroken, tag))
		return false
	}
	delete(p.pending, tag)
	p.free = append(p.free, tag)
	abandoned := call.state == callAbandoned
	group := call.group
	p.mu.Unlock()
	if abandoned {
		wire.Recycle(msg) // late response for a timed-out slot: discard
	} else {
		call.finish(msg, nil)
	}
	if group != nil {
		group.resolveOne()
	}
	return true
}

// fail tears the pipe down exactly once: every outstanding call resolves
// with err, the connection closes (waking both loops), and later
// register calls are refused with the sticky cause.
func (p *pipe) fail(err error) {
	p.mu.Lock()
	if p.broken != nil {
		p.mu.Unlock()
		return
	}
	p.broken = err
	calls := make([]*pendingCall, 0, len(p.pending))
	for _, c := range p.pending {
		calls = append(calls, c)
	}
	p.pending = map[uint32]*pendingCall{}
	// The tag allocator dies with the pipe: clearing the free list keeps
	// the invariant that no free tag names a pending call, and register is
	// refused from here on, so a tag can never be handed out twice.
	p.free = nil
	p.mu.Unlock()
	close(p.quit)
	p.conn.Close()
	for _, c := range calls {
		c.finish(nil, err)
	}
}

// teardownCause returns the sticky teardown cause, nil while healthy.
func (p *pipe) teardownCause() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.broken
}

// teardownErr returns the sticky teardown cause.
func (p *pipe) teardownErr() error {
	if err := p.teardownCause(); err != nil {
		return err
	}
	return ErrConnBroken
}

// close tears the pipe down on behalf of Client.Close and joins both
// goroutines, so a closed client leaks nothing.
func (p *pipe) close() {
	p.fail(ErrClientClosed)
	<-p.readerDone
	<-p.writerDone
}
