package client

import (
	"sync/atomic"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// answer scripts a trivial synchronous server: BeginOK for begins,
// Value(value) for reads and writes, OK for commit/abort. With redirect
// set every Begin bounces with CodeRedirect, the way a bounded-stale
// follower refuses work it must not serve. got, when non-nil, counts
// frames received after the handshake.
func answer(t *testing.T, value int64, redirect bool, got *atomic.Int64) func(sc *wire.Conn) {
	return func(sc *wire.Conn) {
		for {
			m, err := sc.ReadMessage()
			if err != nil {
				return
			}
			if got != nil {
				got.Add(1)
			}
			var resp wire.Message
			switch m.(type) {
			case *wire.Begin:
				if redirect {
					resp = &wire.Error{Code: wire.CodeRedirect, Message: "updates run on the primary"}
				} else {
					resp = &wire.BeginOK{Txn: 7}
				}
			case *wire.Read, *wire.Write:
				resp = &wire.Value{Value: value}
			case *wire.Commit, *wire.Abort:
				resp = &wire.OK{}
			default:
				t.Errorf("script got unexpected %v", m.MsgType())
				wire.Recycle(m)
				return
			}
			wire.Recycle(m)
			if err := sc.WriteMessage(resp); err != nil {
				return
			}
		}
	}
}

func TestRouterRoutesQueriesToReplicaUpdatesToPrimary(t *testing.T) {
	primary := pipeClient(t, 1, 0, answer(t, 1, false, nil))
	replica := pipeClient(t, 1, 0, answer(t, 42, false, nil))
	r := NewRouter(primary, replica)

	res, err := r.RunProgram(core.NewQuery(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 42 {
		t.Errorf("query read %d, want 42 (the replica's value)", res.Sum)
	}
	if _, err := r.RunProgram(core.NewUpdate(core.NoLimit).WriteDelta(5, 3)); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.ReplicaRuns != 1 || st.PrimaryRuns != 1 || st.Redirects != 0 || st.Failovers != 0 {
		t.Errorf("stats %+v, want 1 replica run and 1 primary run", st)
	}
}

func TestRouterRedirectFallsBackToPrimary(t *testing.T) {
	primary := pipeClient(t, 1, 0, answer(t, 7, false, nil))
	replica := pipeClient(t, 1, 0, answer(t, 42, true, nil))
	r := NewRouter(primary, replica)

	res, err := r.RunProgram(core.NewQuery(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 7 {
		t.Errorf("redirected query read %d, want 7 (the primary's value)", res.Sum)
	}
	st := r.Stats()
	if st.Redirects != 1 || st.PrimaryRuns != 1 || st.ReplicaRuns != 0 {
		t.Errorf("stats %+v, want the redirect replayed on the primary", st)
	}
}

func TestRouterZeroEpsilonNeverTouchesReplica(t *testing.T) {
	var replicaFrames atomic.Int64
	primary := pipeClient(t, 1, 0, answer(t, 7, false, nil))
	replica := pipeClient(t, 1, 0, answer(t, 42, false, &replicaFrames))
	r := NewRouter(primary, replica)

	res, err := r.RunProgram(core.NewQuery(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 7 {
		t.Errorf("zero-epsilon query read %d, want 7 (the primary's value)", res.Sum)
	}
	if n := replicaFrames.Load(); n != 0 {
		t.Errorf("replica saw %d frames for a zero-epsilon query, want 0", n)
	}
	if st := r.Stats(); st.PrimaryRuns != 1 || st.ReplicaRuns != 0 {
		t.Errorf("stats %+v, want the query pinned to the primary", st)
	}
}

func TestRouterFailsOverWhenReplicaDies(t *testing.T) {
	primary := pipeClient(t, 1, 0, answer(t, 7, false, nil))
	replica := pipeClient(t, 1, 0, answer(t, 42, false, nil))
	r := NewRouter(primary, replica)
	replica.Close()

	res, err := r.RunProgram(core.NewQuery(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 7 {
		t.Errorf("failed-over query read %d, want 7 (the primary's value)", res.Sum)
	}
	if st := r.Stats(); st.Failovers != 1 || st.PrimaryRuns != 1 {
		t.Errorf("stats %+v, want one failover onto the primary", st)
	}
}

func TestRouterRoundRobinsAcrossReplicas(t *testing.T) {
	primary := pipeClient(t, 1, 0, answer(t, 1, false, nil))
	ra := pipeClient(t, 1, 0, answer(t, 10, false, nil))
	rb := pipeClient(t, 1, 0, answer(t, 20, false, nil))
	r := NewRouter(primary, ra, rb)

	var sums []core.Value
	for i := 0; i < 4; i++ {
		res, err := r.RunProgram(core.NewQuery(100, 5))
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, res.Sum)
	}
	want := []core.Value{10, 20, 10, 20}
	for i, s := range sums {
		if s != want[i] {
			t.Errorf("query %d read %d, want %d (round-robin)", i, s, want[i])
		}
	}
}

func TestRouterAbortPassesThrough(t *testing.T) {
	primary := pipeClient(t, 1, 0, answer(t, 7, false, nil))
	abortScript := func(sc *wire.Conn) {
		for {
			m, err := sc.ReadMessage()
			if err != nil {
				return
			}
			var resp wire.Message
			switch m.(type) {
			case *wire.Begin:
				resp = &wire.BeginOK{Txn: 7}
			case *wire.Abort:
				resp = &wire.OK{}
			default:
				resp = &wire.Error{Code: wire.CodeAbort, Reason: 0, Message: "limit"}
			}
			wire.Recycle(m)
			if err := sc.WriteMessage(resp); err != nil {
				return
			}
		}
	}
	replica := pipeClient(t, 1, 0, abortScript)
	r := NewRouter(primary, replica)

	_, err := r.RunProgram(core.NewQuery(100, 5))
	if _, ok := IsAbort(err); !ok {
		t.Fatalf("replica abort surfaced as %v, want AbortError", err)
	}
	// A genuine abort belongs to the retry loop, not the failover path.
	if st := r.Stats(); st.ReplicaRuns != 1 || st.PrimaryRuns != 0 || st.Failovers != 0 {
		t.Errorf("stats %+v, want the abort counted as a replica run", st)
	}
}
