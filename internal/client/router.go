package client

import (
	"sync/atomic"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
)

// Router fans a workload out over a primary and a set of bounded-stale
// read replicas. Query ETs with a nonzero TIL round-robin across the
// replicas — their replication lag is charged against the query's import
// limit server-side, so any answer a replica gives is still within the
// transaction's epsilon. Everything a follower must not serve goes to
// the primary: update ETs, zero-epsilon queries (which the router never
// even offers to a replica), and any query a replica bounces with a
// typed redirect. A replica that fails outright — connection broken,
// client closed — is not fatal either; the query fails over to the
// primary, which can always serve it.
type Router struct {
	primary  *Client
	replicas []*Client
	next     atomic.Uint64

	primaryRuns atomic.Int64
	replicaRuns atomic.Int64
	redirects   atomic.Int64
	failovers   atomic.Int64
}

// NewRouter builds a router over a primary and zero or more replicas.
// With no replicas every call degrades to the primary client.
func NewRouter(primary *Client, replicas ...*Client) *Router {
	return &Router{primary: primary, replicas: replicas}
}

// Primary returns the router's primary client.
func (r *Router) Primary() *Client { return r.primary }

// Replicas returns the router's replica clients.
func (r *Router) Replicas() []*Client { return r.replicas }

// Close closes the primary and every replica client; the first error
// wins.
func (r *Router) Close() error {
	err := r.primary.Close()
	for _, c := range r.replicas {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// routable reports whether a program may be served by a replica: a
// query that tolerates some inconsistency, with a replica to send it
// to. A TIL-0 query admits no replication lag at all, so the router
// does not waste a round trip learning that from a follower.
func (r *Router) routable(p *core.Program) bool {
	return len(r.replicas) > 0 && p.Kind == core.Query && p.Bounds.Transaction != 0
}

// pick round-robins across the replica set.
func (r *Router) pick() *Client {
	return r.replicas[int((r.next.Add(1)-1)%uint64(len(r.replicas)))]
}

// RunProgram executes one attempt of a program, routing it per the
// policy above. Abort errors pass through untouched — a limit violation
// on a replica is a real abort, and the caller's retry loop owns it.
func (r *Router) RunProgram(p *core.Program) (*Result, error) {
	if !r.routable(p) {
		r.primaryRuns.Add(1)
		return r.primary.RunProgram(p)
	}
	res, err := r.pick().RunProgram(p)
	switch {
	case err == nil:
		r.replicaRuns.Add(1)
		return res, nil
	case IsRedirect(err):
		r.redirects.Add(1)
	default:
		if _, isAbort := IsAbort(err); isAbort {
			r.replicaRuns.Add(1)
			return nil, err
		}
		r.failovers.Add(1)
	}
	r.primaryRuns.Add(1)
	return r.primary.RunProgram(p)
}

// RunRetry executes a program to completion through the router,
// resubmitting after every abort with a fresh timestamp and sleeping
// per the primary client's backoff schedule, mirroring Client.RunRetry.
// maxAttempts caps retries; zero means unlimited.
func (r *Router) RunRetry(p *core.Program, maxAttempts int) (*Result, int, error) {
	attempts := 0
	for {
		attempts++
		res, err := r.RunProgram(p)
		if err == nil {
			return res, attempts, nil
		}
		if _, isAbort := IsAbort(err); !isAbort {
			return nil, attempts, err
		}
		if maxAttempts > 0 && attempts >= maxAttempts {
			return nil, attempts, err
		}
		if d := r.primary.jitterDelay(attempts); d > 0 {
			time.Sleep(d)
		}
	}
}

// RouterStats counts where the router sent work.
type RouterStats struct {
	// PrimaryRuns counts attempts executed on the primary, including
	// redirect and failover replays.
	PrimaryRuns int64
	// ReplicaRuns counts attempts a replica answered — committed or
	// genuinely aborted there.
	ReplicaRuns int64
	// Redirects counts attempts a replica bounced with a typed redirect.
	Redirects int64
	// Failovers counts attempts replayed on the primary after a replica
	// failed outright (connection broken, client closed).
	Failovers int64
}

// Stats snapshots the routing counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		PrimaryRuns: r.primaryRuns.Load(),
		ReplicaRuns: r.replicaRuns.Load(),
		Redirects:   r.redirects.Load(),
		Failovers:   r.failovers.Load(),
	}
}
