package client

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// pipeClient builds a pipelined client over a net.Pipe whose server side
// is scripted by serve. The handshake is answered here; serve gets the
// connection once the client is in pipelined mode, free to hold,
// reorder, duplicate or misaddress replies.
func pipeClient(t *testing.T, depth int, callTimeout time.Duration, serve func(sc *wire.Conn)) *Client {
	t.Helper()
	a, b := net.Pipe()
	sc := wire.NewConn(b)
	served := make(chan struct{})
	go func() {
		defer close(served)
		defer sc.Close()
		for i := 0; i < 2; i++ { // SyncSamples below
			req, err := sc.ReadMessage()
			if err != nil {
				return
			}
			s, ok := req.(*wire.Sync)
			if !ok {
				t.Errorf("pre-handshake frame %v", req.MsgType())
				return
			}
			ticks := s.ClientTicks
			wire.Recycle(req)
			if err := sc.WriteMessage(&wire.SyncOK{ServerTicks: ticks}); err != nil {
				return
			}
		}
		serve(sc)
	}()
	c, err := NewPipe(wire.NewConn(a), Options{
		Site: 1, Clock: &tsgen.LogicalClock{}, SyncSamples: 2,
		Pipeline: depth, CallTimeout: callTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		<-served // the script must exit too: no leaked server goroutine
	})
	return c
}

// readTagged reads one Tagged frame and returns its tag and inner op.
func readTagged(t *testing.T, sc *wire.Conn) (uint32, wire.Message) {
	t.Helper()
	m, err := sc.ReadMessage()
	if err != nil {
		// Usually the client hanging up at test cleanup; scripts treat a
		// nil inner as "stop serving".
		return 0, nil
	}
	tg, ok := m.(*wire.Tagged)
	if !ok {
		t.Errorf("script read %v, want Tagged", m.MsgType())
		return 0, nil
	}
	tag, inner := tg.Tag, tg.Inner
	wire.Recycle(tg)
	return tag, inner
}

func TestPipelinedOutOfOrderResponses(t *testing.T) {
	c := pipeClient(t, 4, 0, func(sc *wire.Conn) {
		// Collect two reads, answer them in reverse arrival order.
		type held struct {
			tag uint32
			obj uint32
		}
		var hs []held
		for len(hs) < 2 {
			tag, inner := readTagged(t, sc)
			if inner == nil {
				return
			}
			hs = append(hs, held{tag, uint32(inner.(*wire.Read).Object)})
			wire.Recycle(inner)
		}
		for i := len(hs) - 1; i >= 0; i-- {
			if err := sc.WriteMessage(&wire.TaggedReply{Tag: hs[i].tag, Inner: &wire.Value{Value: int64(hs[i].obj)}}); err != nil {
				return
			}
		}
	})
	p1 := c.CallAsync(&wire.Read{Txn: 1, Object: 101})
	p2 := c.CallAsync(&wire.Read{Txn: 1, Object: 202})
	r2, err := p2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// Each call must get the reply for ITS tag despite the reversal.
	if v := r1.(*wire.Value).Value; v != 101 {
		t.Errorf("call 1 got value %d, want 101", v)
	}
	if v := r2.(*wire.Value).Value; v != 202 {
		t.Errorf("call 2 got value %d, want 202", v)
	}
}

func TestTagReuseAfterCompletion(t *testing.T) {
	var mu sync.Mutex
	var tags []uint32
	c := pipeClient(t, 4, 0, func(sc *wire.Conn) {
		for {
			tag, inner := readTagged(t, sc)
			if inner == nil {
				return
			}
			wire.Recycle(inner)
			mu.Lock()
			tags = append(tags, tag)
			mu.Unlock()
			if err := sc.WriteMessage(&wire.TaggedReply{Tag: tag, Inner: &wire.Value{Value: 1}}); err != nil {
				return
			}
		}
	})
	for i := 0; i < 5; i++ {
		if _, err := c.CallAsync(&wire.Read{Txn: 1, Object: 1}).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// Sequential calls complete before the next registers, so the freed
	// tag is reused every time: the tag space stays dense.
	for i, tag := range tags {
		if tag != 1 {
			t.Errorf("call %d used tag %d, want reused tag 1", i, tag)
		}
	}
}

// brokenCause polls the pipe's sticky teardown cause.
func brokenCause(t *testing.T, c *Client) error {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.pipe.mu.Lock()
		err := c.pipe.broken
		c.pipe.mu.Unlock()
		if err != nil {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("pipe never broke")
	return nil
}

func TestUnknownTagBreaksConnection(t *testing.T) {
	c := pipeClient(t, 4, 0, func(sc *wire.Conn) {
		tag, inner := readTagged(t, sc)
		if inner == nil {
			return
		}
		wire.Recycle(inner)
		// Respond to a tag that was never issued.
		sc.WriteMessage(&wire.TaggedReply{Tag: tag + 999, Inner: &wire.Value{Value: 1}}) //nolint:errcheck
	})
	_, err := c.CallAsync(&wire.Read{Txn: 1, Object: 1}).Wait()
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("call error = %v, want ErrConnBroken", err)
	}
	// The connection is dead for good: later calls refuse immediately.
	if _, err := c.CallAsync(&wire.Read{Txn: 1, Object: 2}).Wait(); !errors.Is(err, ErrConnBroken) {
		t.Errorf("post-breakage call error = %v, want ErrConnBroken", err)
	}
}

func TestDuplicateTagBreaksConnection(t *testing.T) {
	c := pipeClient(t, 4, 0, func(sc *wire.Conn) {
		tag, inner := readTagged(t, sc)
		if inner == nil {
			return
		}
		wire.Recycle(inner)
		// Answer once, then again: the duplicate names a completed tag.
		for i := 0; i < 2; i++ {
			if err := sc.WriteMessage(&wire.TaggedReply{Tag: tag, Inner: &wire.Value{Value: 1}}); err != nil {
				return
			}
		}
	})
	if _, err := c.CallAsync(&wire.Read{Txn: 1, Object: 1}).Wait(); err != nil {
		t.Fatalf("first call: %v", err)
	}
	if err := brokenCause(t, c); !errors.Is(err, ErrConnBroken) {
		t.Errorf("teardown cause = %v, want ErrConnBroken", err)
	}
}

func TestCallTimeoutExpiresOneSlotWithoutPoisoning(t *testing.T) {
	release := make(chan struct{})
	c := pipeClient(t, 4, 75*time.Millisecond, func(sc *wire.Conn) {
		var heldTag uint32
		held := false
		for {
			tag, inner := readTagged(t, sc)
			if inner == nil {
				return
			}
			r, isRead := inner.(*wire.Read)
			hold := isRead && r.Object == 99
			wire.Recycle(inner)
			if hold {
				// Park this op; release it (late) on demand.
				heldTag, held = tag, true
				continue
			}
			if held {
				select {
				case <-release:
					if err := sc.WriteMessage(&wire.TaggedReply{Tag: heldTag, Inner: &wire.Value{Value: 99}}); err != nil {
						return
					}
					held = false
				default:
				}
			}
			if err := sc.WriteMessage(&wire.TaggedReply{Tag: tag, Inner: &wire.Value{Value: 1}}); err != nil {
				return
			}
		}
	})
	slow := c.CallAsync(&wire.Read{Txn: 1, Object: 99})
	// A concurrent prompt call keeps working while the slow one pends.
	if _, err := c.CallAsync(&wire.Read{Txn: 1, Object: 1}).Wait(); err != nil {
		t.Fatalf("prompt call during hold: %v", err)
	}
	if _, err := slow.Wait(); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("held call error = %v, want ErrCallTimeout", err)
	}
	// The timeout expired one slot, not the connection.
	if _, err := c.CallAsync(&wire.Read{Txn: 1, Object: 2}).Wait(); err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
	// Release the late response: it must be discarded quietly — its tag is
	// still known (abandoned), so it is NOT an unknown-tag violation.
	close(release)
	for i := 0; i < 3; i++ {
		if _, err := c.CallAsync(&wire.Read{Txn: 1, Object: 3}).Wait(); err != nil {
			t.Fatalf("call after late response: %v", err)
		}
	}
	c.pipe.mu.Lock()
	broken := c.pipe.broken
	c.pipe.mu.Unlock()
	if broken != nil {
		t.Errorf("late response broke the connection: %v", broken)
	}
}

func TestDroppedConnectionFailsAllOutstanding(t *testing.T) {
	const n = 4
	c := pipeClient(t, n, 0, func(sc *wire.Conn) {
		// Swallow n requests, then drop the connection mid-pipeline.
		for i := 0; i < n; i++ {
			_, inner := readTagged(t, sc)
			if inner == nil {
				return
			}
			wire.Recycle(inner)
		}
		sc.Close()
	})
	pendings := make([]*Pending, n)
	for i := range pendings {
		pendings[i] = c.CallAsync(&wire.Read{Txn: 1, Object: 1})
	}
	for i, p := range pendings {
		if _, err := p.Wait(); !errors.Is(err, ErrConnBroken) {
			t.Errorf("call %d error = %v, want ErrConnBroken", i, err)
		}
	}
}

func TestCloseFailsAllOutstandingAndJoins(t *testing.T) {
	entered := make(chan struct{}, 8)
	c := pipeClient(t, 8, 0, func(sc *wire.Conn) {
		for {
			_, inner := readTagged(t, sc)
			if inner == nil {
				return
			}
			wire.Recycle(inner)
			entered <- struct{}{}
		}
	})
	pendings := make([]*Pending, 4)
	for i := range pendings {
		pendings[i] = c.CallAsync(&wire.Read{Txn: 1, Object: 1})
	}
	for range pendings {
		<-entered // all four are on the wire before Close
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	for i, p := range pendings {
		if _, err := p.Wait(); !errors.Is(err, ErrClientClosed) {
			t.Errorf("call %d error = %v, want ErrClientClosed", i, err)
		}
	}
	if _, err := c.CallAsync(&wire.Read{Txn: 1, Object: 1}).Wait(); !errors.Is(err, ErrClientClosed) {
		t.Errorf("post-close call error = %v, want ErrClientClosed", err)
	}
}

func TestClientBatchViaBatchFrame(t *testing.T) {
	c := pipeClient(t, 8, 0, func(sc *wire.Conn) {
		m, err := sc.ReadMessage()
		if err != nil {
			return
		}
		b, ok := m.(*wire.Batch)
		if !ok {
			t.Errorf("script read %v, want Batch", m.MsgType())
			return
		}
		reply := &wire.BatchReply{}
		for _, op := range b.Ops {
			var inner wire.Message
			switch op.Msg.(type) {
			case *wire.Read:
				inner = &wire.Value{Value: 7}
			case *wire.Write:
				inner = &wire.Error{Code: wire.CodeAbort, Reason: 1, Message: "injected"}
			case *wire.Commit:
				inner = &wire.OK{}
			}
			reply.Replies = append(reply.Replies, wire.BatchItem{Tag: op.Tag, Msg: inner})
		}
		wire.Recycle(m)
		sc.WriteMessage(reply) //nolint:errcheck
	})
	results, err := c.Batch([]wire.Message{
		&wire.Read{Txn: 1, Object: 1},
		&wire.Write{Txn: 1, Object: 2, Value: 5},
		&wire.Commit{Txn: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := results[0].Msg.(*wire.Value).Value; results[0].Err != nil || v != 7 {
		t.Errorf("read result = (%v, %v)", results[0].Msg, results[0].Err)
	}
	// Per-op failure: the write aborts, mapped to AbortError, while its
	// neighbors succeed — the batch is not an atomicity domain.
	if _, isAbort := IsAbort(results[1].Err); !isAbort {
		t.Errorf("write result err = %v, want AbortError", results[1].Err)
	}
	if _, ok := results[2].Msg.(*wire.OK); results[2].Err != nil || !ok {
		t.Errorf("commit result = (%v, %v)", results[2].Msg, results[2].Err)
	}
}

func TestBatchRejectsUnbatchable(t *testing.T) {
	c := pipeClient(t, 4, 0, func(sc *wire.Conn) {
		// Stay alive so an erroneous frame would be visible as a read.
		for {
			if _, err := sc.ReadMessage(); err != nil {
				return
			}
			t.Error("non-batchable batch reached the wire")
		}
	})
	if _, err := c.Batch([]wire.Message{&wire.Stats{}}); err == nil {
		t.Fatal("Batch accepted a Stats op")
	}
	// The refused batch must not leak its tags: the pipe still works...
	// (brokenness or a wedged tag table would surface here).
	c.pipe.mu.Lock()
	pending, brokenErr := len(c.pipe.pending), c.pipe.broken
	c.pipe.mu.Unlock()
	if pending != 0 || brokenErr != nil {
		t.Errorf("after refused batch: %d pending tags, broken=%v", pending, brokenErr)
	}
}

func TestDepthOneKeepsSynchronousPath(t *testing.T) {
	// Pipeline 1 (and 0) must not start the demultiplexing core: the
	// frames on the wire stay the seed protocol's untagged encoding.
	c := fakeServer(t, func(req wire.Message) wire.Message {
		return &wire.Value{Value: 3}
	})
	if c.pipe != nil {
		t.Fatal("depth-1 client started a pipe")
	}
	// Batch and CallAsync degrade to the synchronous path.
	results, err := c.Batch([]wire.Message{&wire.Read{Txn: 1, Object: 1}})
	if err != nil || results[0].Err != nil {
		t.Fatalf("sync-path Batch: %v / %v", err, results[0].Err)
	}
	if v := results[0].Msg.(*wire.Value).Value; v != 3 {
		t.Errorf("sync-path Batch value = %d", v)
	}
	if _, err := c.CallAsync(&wire.Read{Txn: 1, Object: 1}).Wait(); err != nil {
		t.Errorf("sync-path CallAsync: %v", err)
	}
}
