package client

import (
	"errors"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// fakeServerOpts is fakeServer with caller-controlled client options
// (the sync handshake fields are filled in).
func fakeServerOpts(t *testing.T, opts Options, fn func(wire.Message) wire.Message) *Client {
	t.Helper()
	a, b := net.Pipe()
	serverConn := wire.NewConn(b)
	go func() {
		defer serverConn.Close()
		for {
			req, err := serverConn.ReadMessage()
			if err != nil {
				return
			}
			var resp wire.Message
			if s, ok := req.(*wire.Sync); ok {
				resp = &wire.SyncOK{ServerTicks: s.ClientTicks}
			} else {
				resp = fn(req)
				if resp == nil {
					continue // simulate a dropped response: never answer
				}
			}
			if err := serverConn.WriteMessage(resp); err != nil {
				return
			}
		}
	}()
	opts.Clock = &tsgen.LogicalClock{}
	opts.SyncSamples = 2
	c, err := NewPipe(wire.NewConn(a), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func okServer(req wire.Message) wire.Message {
	switch req.(type) {
	case *wire.Begin:
		return &wire.BeginOK{Txn: 7}
	case *wire.Read, *wire.Write:
		return &wire.Value{Value: 1}
	case *wire.Commit, *wire.Abort:
		return &wire.OK{}
	}
	return &wire.Error{Code: wire.CodeGeneric, Message: "unexpected"}
}

func TestClosedClientReturnsTypedError(t *testing.T) {
	c := fakeServerOpts(t, Options{Site: 1}, okServer)
	if err := c.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close = %v, want nil (idempotent)", err)
	}
	if _, err := c.Begin(core.Query, core.SRSpec()); !errors.Is(err, ErrClientClosed) {
		t.Errorf("Begin after Close = %v, want ErrClientClosed", err)
	}
	if _, _, err := c.RunRetry(core.NewQuery(0, 1), 1); !errors.Is(err, ErrClientClosed) {
		t.Errorf("RunRetry after Close = %v, want ErrClientClosed", err)
	}
	if _, err := c.StatsFull(); !errors.Is(err, ErrClientClosed) {
		t.Errorf("StatsFull after Close = %v, want ErrClientClosed", err)
	}
}

func TestCloseDuringBlockedCallReturnsTypedError(t *testing.T) {
	blocked := make(chan struct{})
	c := fakeServerOpts(t, Options{Site: 1}, func(req wire.Message) wire.Message {
		if _, ok := req.(*wire.Begin); ok {
			close(blocked)
			return nil // swallow: the client stays blocked on the response
		}
		return okServer(req)
	})
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Begin(core.Query, core.SRSpec())
		errCh <- err
	}()
	<-blocked
	c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClientClosed) {
			t.Errorf("blocked call after Close = %v, want ErrClientClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call still blocked 2s after Close")
	}
}

func TestTxnOpsAfterFinishShortCircuit(t *testing.T) {
	var requests atomic.Int64
	c := fakeServerOpts(t, Options{Site: 1}, func(req wire.Message) wire.Message {
		requests.Add(1)
		return okServer(req)
	})
	txn, err := c.Begin(core.Update, core.SRSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	onWire := requests.Load()

	if _, err := txn.Read(1); !errors.Is(err, ErrTxnFinished) {
		t.Errorf("Read after Commit = %v, want ErrTxnFinished", err)
	}
	if err := txn.Write(1, 5); !errors.Is(err, ErrTxnFinished) {
		t.Errorf("Write after Commit = %v, want ErrTxnFinished", err)
	}
	if _, err := txn.WriteDelta(1, 5); !errors.Is(err, ErrTxnFinished) {
		t.Errorf("WriteDelta after Commit = %v, want ErrTxnFinished", err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnFinished) {
		t.Errorf("double Commit = %v, want ErrTxnFinished", err)
	}
	if err := txn.Abort(); err != nil {
		t.Errorf("Abort after Commit = %v, want nil no-op", err)
	}
	if got := requests.Load(); got != onWire {
		t.Errorf("%d extra wire round trips for finished-txn ops, want 0", got-onWire)
	}
}

func TestCallTimeoutUnblocksDroppedResponse(t *testing.T) {
	c := fakeServerOpts(t, Options{Site: 1, CallTimeout: 50 * time.Millisecond},
		func(req wire.Message) wire.Message {
			return nil // every post-handshake response is dropped
		})
	start := time.Now()
	_, err := c.Begin(core.Query, core.SRSpec())
	if err == nil {
		t.Fatal("Begin succeeded with all responses dropped")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want a net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
}

func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond}
	want := []time.Duration{
		0,                    // attempt 0: never sleeps
		time.Millisecond,     // 1st abort
		2 * time.Millisecond, // doubling
		4 * time.Millisecond,
		8 * time.Millisecond, // hits cap
		8 * time.Millisecond, // stays bounded
	}
	for n, w := range want {
		if got := b.Delay(n, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
	if got := (Backoff{}).Delay(5, nil); got != 0 {
		t.Errorf("zero Backoff Delay = %v, want 0 (disabled)", got)
	}
	// Jitter keeps every draw inside [(1-j)·d, d].
	jb := Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond, Jitter: 0.5}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		d := jb.Delay(3, rng)
		if d < 2*time.Millisecond || d > 4*time.Millisecond {
			t.Fatalf("jittered Delay(3) = %v outside [2ms, 4ms]", d)
		}
	}
	// Overflow safety: huge attempt counts stay at the cap.
	if got := b.Delay(64, nil); got != 8*time.Millisecond {
		t.Errorf("Delay(64) = %v, want cap", got)
	}
}

func TestRunRetryBacksOffBetweenAborts(t *testing.T) {
	begins := 0
	opts := Options{Site: 1, Backoff: &Backoff{Base: 20 * time.Millisecond, Max: 20 * time.Millisecond}}
	c := fakeServerOpts(t, opts, func(req wire.Message) wire.Message {
		switch req.(type) {
		case *wire.Begin:
			begins++
			return &wire.BeginOK{Txn: core.TxnID(begins)}
		case *wire.Read:
			if begins < 3 {
				return &wire.Error{Code: wire.CodeAbort, Reason: 0, Message: "late"}
			}
			return &wire.Value{Value: 9}
		case *wire.Commit:
			return &wire.OK{}
		}
		return &wire.Error{Code: wire.CodeGeneric, Message: "?"}
	})
	start := time.Now()
	_, attempts, err := c.RunRetry(core.NewQuery(0, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	// Two retries at ≥20ms each (jitter 0 by explicit schedule).
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("RunRetry finished in %v, want ≥40ms of backoff", elapsed)
	}
}
