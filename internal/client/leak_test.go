package client

import (
	"sync/atomic"
	"testing"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// leakServer scripts a fake server that opens transactions normally and
// fails one operation, recording whether the client cleans up with Abort.
type leakServer struct {
	aborts  atomic.Int64
	commits atomic.Int64
	failOp  func(wire.Message) wire.Message // non-nil response = injected failure
}

func (s *leakServer) dispatch(req wire.Message) wire.Message {
	if resp := s.failOp(req); resp != nil {
		return resp
	}
	switch req.(type) {
	case *wire.Begin:
		return &wire.BeginOK{Txn: 42}
	case *wire.Read, *wire.Write:
		return &wire.Value{Value: 1}
	case *wire.Commit:
		s.commits.Add(1)
		return &wire.OK{}
	case *wire.Abort:
		s.aborts.Add(1)
		return &wire.OK{}
	}
	return &wire.Error{Code: wire.CodeGeneric, Message: "unexpected"}
}

// TestRunProgramAbortsOnError pins the transaction-leak fix: when an
// operation fails for a non-abort reason, RunProgram must abort the open
// attempt instead of leaving it live on the server.
func TestRunProgramAbortsOnError(t *testing.T) {
	cases := []struct {
		name       string
		fail       func(wire.Message) wire.Message
		wantAborts int64
	}{
		{
			name: "generic error on read",
			fail: func(req wire.Message) wire.Message {
				if _, ok := req.(*wire.Read); ok {
					return &wire.Error{Code: wire.CodeGeneric, Message: "disk on fire"}
				}
				return nil
			},
			wantAborts: 1,
		},
		{
			name: "unexpected response type on write",
			fail: func(req wire.Message) wire.Message {
				if _, ok := req.(*wire.Write); ok {
					return &wire.OK{} // protocol violation: Write answers with Value
				}
				return nil
			},
			wantAborts: 1,
		},
		{
			name: "generic error on commit",
			fail: func(req wire.Message) wire.Message {
				if _, ok := req.(*wire.Commit); ok {
					return &wire.Error{Code: wire.CodeGeneric, Message: "commit glitch"}
				}
				return nil
			},
			wantAborts: 1,
		},
		{
			// A server-side abort already cleaned up the footprint; the
			// client must NOT send a redundant Abort for a finished txn.
			name: "server abort on read",
			fail: func(req wire.Message) wire.Message {
				if _, ok := req.(*wire.Read); ok {
					return &wire.Error{Code: wire.CodeAbort, Reason: metrics.AbortLateRead, Message: "too old"}
				}
				return nil
			},
			wantAborts: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := &leakServer{failOp: tc.fail}
			c := fakeServer(t, srv.dispatch)
			p := core.NewUpdate(0).Read(1).WriteDelta(2, 5)
			if _, err := c.RunProgram(p); err == nil {
				t.Fatal("RunProgram succeeded, want injected failure")
			}
			if got := srv.aborts.Load(); got != tc.wantAborts {
				t.Errorf("aborts sent = %d, want %d", got, tc.wantAborts)
			}
			if srv.commits.Load() != 0 {
				t.Error("commit recorded despite failure")
			}
		})
	}
}

// TestStatsFullReportsLiveAndLatencies pins the extended stats probe.
func TestStatsFullReportsLiveAndLatencies(t *testing.T) {
	srv := &leakServer{failOp: func(wire.Message) wire.Message { return nil }}
	c := fakeServer(t, func(req wire.Message) wire.Message {
		if _, ok := req.(*wire.Stats); ok {
			col := &metrics.Collector{}
			col.ObserveLatency(metrics.LatRead, 1e6)
			return &wire.StatsOK{Live: 3, Latencies: col.LatencySnapshot()}
		}
		return srv.dispatch(req)
	})
	st, err := c.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 3 {
		t.Errorf("Live = %d, want 3", st.Live)
	}
	if st.Latencies[metrics.LatRead].Count != 1 {
		t.Errorf("read latency count = %d, want 1", st.Latencies[metrics.LatRead].Count)
	}
}
