// Package client implements the transaction clients of the prototype:
// they connect to the central server, synchronize their virtual clock,
// submit transactions operation by operation over a synchronous
// connection, and resubmit aborted transactions with fresh timestamps
// until they commit (§6).
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/wire"
)

// ErrClientClosed is returned by every call on a Client after Close: a
// closed client must fail with one recognizable error, not whatever raw
// io.EOF or poll error the dead connection happens to produce.
var ErrClientClosed = errors.New("client: closed")

// ErrTxnFinished is returned by operations on a transaction attempt that
// already committed or aborted. The client short-circuits these locally:
// round-tripping to the server just to learn the transaction is gone
// wastes an RPC and, under simulated per-operation latency, real time.
var ErrTxnFinished = errors.New("client: transaction already finished")

// AbortError is the client-side view of a server abort; the retry loop
// catches it and resubmits.
type AbortError struct {
	Reason  metrics.AbortReason
	Message string
}

// Error implements error.
func (e *AbortError) Error() string {
	return fmt.Sprintf("client: aborted (%s): %s", e.Reason, e.Message)
}

// IsAbort reports whether err is a server abort.
func IsAbort(err error) (*AbortError, bool) {
	var ae *AbortError
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}

// RedirectError is the client-side view of a replica redirect: the
// server the request reached is a bounded-stale follower that must not
// serve it — an update ET, or a zero-epsilon query that admits no
// replication lag. The Router catches it and replays the transaction
// against the primary.
type RedirectError struct {
	Message string
}

// Error implements error.
func (e *RedirectError) Error() string {
	return fmt.Sprintf("client: redirected to primary: %s", e.Message)
}

// IsRedirect reports whether err is a replica redirect.
func IsRedirect(err error) bool {
	var re *RedirectError
	return errors.As(err, &re)
}

// Options configures a client connection.
type Options struct {
	// Site is this client's site id, appended to every timestamp for
	// uniqueness across clients (§6).
	Site int
	// Clock is the client's local clock; nil means the wall clock. The
	// paper's workstation clocks disagreed by up to two minutes —
	// simulate that with tsgen.SkewedClock.
	Clock tsgen.Clock
	// SyncSamples is the number of round trips used to estimate the
	// clock correction factor; zero means 4.
	SyncSamples int
	// CallTimeout bounds each synchronous RPC round trip (including the
	// sync handshake probes). Zero means no deadline — the seed
	// behavior, where a dropped response frame hangs the client forever.
	// It only takes effect when the underlying stream supports
	// deadlines (net.Conn does; in-process test pipes may not).
	CallTimeout time.Duration
	// Pipeline is the maximum number of request frames the client keeps
	// in flight on the connection. Zero or one keeps the seed protocol's
	// synchronous single-slot path — byte-identical frames, no extra
	// goroutines. Greater than one starts the demultiplexing core
	// (pipeline.go): requests travel in Tagged envelopes, a writer
	// goroutine coalesces queued frames into single flushes, and a
	// reader goroutine matches replies to waiters by tag, so calls and
	// batches may be issued concurrently.
	Pipeline int
	// Dialer overrides how Dial opens the connection; nil means
	// net.Dial("tcp", addr). Fault-injection harnesses use this to
	// interpose faultnet wrappers.
	Dialer func(addr string) (net.Conn, error)
	// Backoff bounds the retry delays of RunRetry; nil means
	// DefaultBackoff(). An explicit &Backoff{} (zero Base) disables
	// backoff entirely.
	Backoff *Backoff
	// ResumeAfter floors this client's timestamps past a predecessor's
	// last issued timestamp (LastTimestamp of the connection being
	// replaced). A reconnecting caller that keeps its site id MUST pass
	// it: the new connection re-estimates its clock correction, and
	// without the floor it can reissue a (tick, site) pair the old
	// connection already committed under — two committed writes sharing
	// a timestamp, which the engine aborts and the oracle refutes.
	ResumeAfter tsgen.Timestamp
}

// Backoff is a bounded exponential backoff schedule with jitter. After
// the n-th consecutive abort RunRetry sleeps for Base·2ⁿ⁻¹ capped at
// Max, with the final delay drawn uniformly from [(1−Jitter)·d, d].
// Without it, abort storms in the low-epsilon regime (the paper's
// Figure 9 shows aborts climbing steeply as epsilon shrinks) degenerate
// into livelock: every client resubmits instantly with a fresh — and
// instantly late — timestamp.
type Backoff struct {
	// Base is the first delay; zero disables backoff.
	Base time.Duration
	// Max caps the delay; zero means no cap.
	Max time.Duration
	// Jitter is the fraction of each delay randomized away, in [0, 1].
	// Jitter decorrelates clients that aborted on the same conflict, so
	// they do not retry in lockstep and collide again.
	Jitter float64
}

// DefaultBackoff is the schedule used when Options.Backoff is nil:
// sub-millisecond first retry, capped well below the paper's RPC
// latency scale so throughput experiments stay comparable.
func DefaultBackoff() Backoff {
	return Backoff{Base: 250 * time.Microsecond, Max: 25 * time.Millisecond, Jitter: 0.5}
}

// Delay returns the sleep before retry attempt n (1-based: n is the
// number of aborts seen so far). rng may be nil for a jitter-free
// schedule.
func (b Backoff) Delay(n int, rng *rand.Rand) time.Duration {
	if b.Base <= 0 || n <= 0 {
		return 0
	}
	d := b.Base
	for i := 1; i < n; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 && rng != nil {
		lo := float64(d) * (1 - b.Jitter)
		d = time.Duration(lo + rng.Float64()*(float64(d)-lo))
	}
	return d
}

// Client is one transaction client: a connection plus a synchronized
// timestamp generator. Without pipelining it is not safe for concurrent
// use — the prototype's clients are single-threaded and its RPC
// synchronous. With Options.Pipeline > 1 the call-level API (Begin and
// transaction ops, CallAsync, Batch, Run*) may be used from multiple
// goroutines; an individual Txn still belongs to one goroutine at a
// time. RunRetry's jittered backoff draws from a per-client rng and
// stays single-goroutine either way.
type Client struct {
	conn        *wire.Conn
	pipe        *pipe // demultiplexing core; nil at pipeline depth <= 1
	gen         *tsgen.Generator
	site        int
	callTimeout time.Duration
	backoff     Backoff
	rngMu       sync.Mutex
	rng         *rand.Rand // jitter source, seeded by site for determinism
	closed      atomic.Bool
}

// jitterDelay draws the next backoff delay; the lock makes the shared
// rng safe for concurrent RunRetry loops on a pipelined client.
func (c *Client) jitterDelay(attempts int) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.backoff.Delay(attempts, c.rng)
}

// Dial connects to a server, performs the clock-synchronization
// handshake, and returns a ready client.
func Dial(addr string, opts Options) (*Client, error) {
	dial := opts.Dialer
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	nc, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c, err := newClient(wire.NewConn(nc), opts)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// NewPipe builds a client over an existing byte stream (e.g. a net.Pipe
// to an embedded server). It performs the same sync handshake as Dial.
func NewPipe(conn *wire.Conn, opts Options) (*Client, error) {
	return newClient(conn, opts)
}

func newClient(conn *wire.Conn, opts Options) (*Client, error) {
	clock := opts.Clock
	if clock == nil {
		clock = tsgen.WallClock{}
	}
	backoff := DefaultBackoff()
	if opts.Backoff != nil {
		backoff = *opts.Backoff
	}
	c := &Client{
		conn:        conn,
		gen:         tsgen.NewGenerator(opts.Site, clock),
		site:        opts.Site,
		callTimeout: opts.CallTimeout,
		backoff:     backoff,
		rng:         rand.New(rand.NewSource(int64(opts.Site)*104729 + 1)),
	}
	samples := opts.SyncSamples
	if samples <= 0 {
		samples = 4
	}
	// Virtual clock synchronization (§6): estimate server − local over a
	// few probes and install the correction factor.
	var total int64
	for i := 0; i < samples; i++ {
		local := clock.Now()
		resp, err := c.callWire(&wire.Sync{ClientTicks: local})
		if err != nil {
			return nil, fmt.Errorf("client: clock sync: %w", err)
		}
		so, ok := resp.(*wire.SyncOK)
		if !ok {
			return nil, fmt.Errorf("client: clock sync: unexpected response %v", resp.MsgType())
		}
		total += so.ServerTicks - local
	}
	c.gen.SetCorrection(total / int64(samples))
	// The floor applies after the correction: whatever the new estimate
	// says, this client never reissues a tick its predecessor used.
	c.gen.Advance(opts.ResumeAfter.Ticks())
	// The sync handshake above ran on the plain synchronous path; only a
	// fully synchronized client switches to the demultiplexing core.
	if opts.Pipeline > 1 {
		c.pipe = startPipe(conn, opts.Pipeline, c.callTimeout)
	}
	return c, nil
}

// Close closes the connection. It is idempotent: the first call closes
// and reports any close error, later calls return nil. Calls issued
// after (or racing with) Close fail with ErrClientClosed.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	if c.pipe != nil {
		// Tears down the core: every outstanding call fails with
		// ErrClientClosed, the connection closes, and both goroutines are
		// joined before Close returns, so a closed client leaks nothing.
		c.pipe.close()
		return nil
	}
	return c.conn.Close()
}

// Site returns the client's site id.
func (c *Client) Site() int { return c.site }

// Correction returns the installed clock correction factor.
func (c *Client) Correction() int64 { return c.gen.Correction() }

// LastTimestamp returns the most recent timestamp this client issued
// (the zero Timestamp before the first transaction). A caller replacing
// this connection while keeping the site id passes it as the successor's
// Options.ResumeAfter so the site's timestamps stay unique across the
// reconnect.
func (c *Client) LastTimestamp() tsgen.Timestamp {
	return tsgen.Make(c.gen.LastTicks(), c.site)
}

// callWire performs one deadline-bounded round trip on the wire without
// error classification (the sync handshake runs before call's abort
// mapping is meaningful).
func (c *Client) callWire(req wire.Message) (wire.Message, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	if c.pipe != nil {
		// Pipelined path: per-call deadlines are armed by the pipe's
		// register (connection deadlines cannot bound individual calls
		// once several share the stream), and a Close-initiated teardown
		// already fails calls with ErrClientClosed.
		return c.pipe.call(req)
	}
	if c.callTimeout > 0 {
		if c.conn.SetDeadline(time.Now().Add(c.callTimeout)) {
			defer c.conn.SetDeadline(time.Time{})
		}
	}
	resp, err := c.conn.Call(req)
	if err != nil && c.closed.Load() {
		// A concurrent Close tore the connection under this call; the
		// raw read/write error (io.EOF, "use of closed network
		// connection") is an artifact of the teardown, not the fault.
		var we *wire.Error
		if !errors.As(err, &we) {
			return nil, ErrClientClosed
		}
	}
	return resp, err
}

// call sends a request and converts abort responses to AbortError.
func (c *Client) call(req wire.Message) (wire.Message, error) {
	resp, err := c.callWire(req)
	if err != nil {
		return nil, mapAbort(err)
	}
	return resp, nil
}

// mapAbort converts server abort and redirect errors to their typed
// client-side forms, leaving every other error untouched.
func mapAbort(err error) error {
	var we *wire.Error
	if errors.As(err, &we) {
		switch we.Code {
		case wire.CodeAbort:
			return &AbortError{Reason: we.Reason, Message: we.Message}
		case wire.CodeRedirect:
			return &RedirectError{Message: we.Message}
		}
	}
	return err
}

// Txn is one transaction attempt in progress.
type Txn struct {
	c    *Client
	id   core.TxnID
	kind core.Kind
	done bool
}

// Begin starts an attempt with a fresh timestamp.
func (c *Client) Begin(kind core.Kind, spec core.BoundSpec) (*Txn, error) {
	resp, err := c.call(&wire.Begin{Kind: kind, Timestamp: c.gen.Next(), Spec: spec})
	if err != nil {
		return nil, err
	}
	ok, isOK := resp.(*wire.BeginOK)
	if !isOK {
		return nil, fmt.Errorf("client: unexpected Begin response %v", resp.MsgType())
	}
	return &Txn{c: c, id: ok.Txn, kind: kind}, nil
}

// Read reads one object.
func (t *Txn) Read(obj core.ObjectID) (core.Value, error) {
	if t.done {
		return 0, ErrTxnFinished
	}
	resp, err := t.c.call(&wire.Read{Txn: t.id, Object: obj})
	if err != nil {
		t.noteIfAbort(err)
		return 0, err
	}
	v, ok := resp.(*wire.Value)
	if !ok {
		return 0, fmt.Errorf("client: unexpected Read response %v", resp.MsgType())
	}
	return v.Value, nil
}

// Write writes an absolute value.
func (t *Txn) Write(obj core.ObjectID, value core.Value) error {
	_, err := t.writeMsg(&wire.Write{Txn: t.id, Object: obj, Value: value})
	return err
}

// WriteDelta writes current+delta and returns the value written.
func (t *Txn) WriteDelta(obj core.ObjectID, delta core.Value) (core.Value, error) {
	return t.writeMsg(&wire.Write{Txn: t.id, Object: obj, Delta: true, Value: delta})
}

func (t *Txn) writeMsg(m *wire.Write) (core.Value, error) {
	if t.done {
		return 0, ErrTxnFinished
	}
	resp, err := t.c.call(m)
	if err != nil {
		t.noteIfAbort(err)
		return 0, err
	}
	v, ok := resp.(*wire.Value)
	if !ok {
		return 0, fmt.Errorf("client: unexpected Write response %v", resp.MsgType())
	}
	return v.Value, nil
}

// Commit finishes the attempt.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnFinished
	}
	_, err := t.c.call(&wire.Commit{Txn: t.id})
	if err == nil {
		t.done = true
	} else {
		t.noteIfAbort(err)
	}
	return err
}

// Abort abandons the attempt.
func (t *Txn) Abort() error {
	if t.done {
		return nil
	}
	_, err := t.c.call(&wire.Abort{Txn: t.id})
	t.done = true
	return err
}

// noteIfAbort marks the attempt finished when the server aborted it
// internally (the footprint is already cleaned up server-side).
func (t *Txn) noteIfAbort(err error) {
	if _, ok := IsAbort(err); ok {
		t.done = true
	}
}

// Result mirrors tso.Result for network executions.
type Result struct {
	Values []core.Value
	Sum    core.Value
}

// RunProgram executes one attempt of a program over the connection. Every
// error exit aborts the attempt first: returning with the transaction
// still open would leak it server-side, where its pending writes keep
// blocking conflicting operations until the connection dies. The abort is
// a no-op when the server already finished the transaction.
func (c *Client) RunProgram(p *core.Program) (*Result, error) {
	t, err := c.Begin(p.Kind, p.Bounds)
	if err != nil {
		return nil, err
	}
	res, err := runOps(t, p)
	if err == nil {
		err = t.Commit()
	}
	if err != nil {
		_ = t.Abort() // best-effort cleanup; the original error wins
		return nil, err
	}
	return res, nil
}

// runOps executes a program's operations against one attempt.
func runOps(t *Txn, p *core.Program) (*Result, error) {
	res := &Result{Values: make([]core.Value, 0, len(p.Ops))}
	for _, op := range p.Ops {
		switch op.Kind {
		case core.OpRead:
			v, err := t.Read(op.Object)
			if err != nil {
				return nil, err
			}
			res.Values = append(res.Values, v)
			res.Sum += v
		case core.OpWrite:
			var v core.Value
			var err error
			if op.UseDelta {
				v, err = t.WriteDelta(op.Object, op.Delta)
			} else {
				v, err = op.Value, t.Write(op.Object, op.Value)
			}
			if err != nil {
				return nil, err
			}
			res.Values = append(res.Values, v)
		}
	}
	return res, nil
}

// RunRetry executes a program to completion, resubmitting after every
// abort with a fresh timestamp — the client loop of §6. maxAttempts caps
// retries; zero means unlimited. It returns the result and the number of
// attempts made.
//
// Between attempts it sleeps per the client's Backoff schedule. The seed
// prototype retried immediately; at low epsilon that turns the Figure 9
// abort climb into a hot loop where every client's resubmission is
// instantly late again.
func (c *Client) RunRetry(p *core.Program, maxAttempts int) (*Result, int, error) {
	attempts := 0
	for {
		attempts++
		res, err := c.RunProgram(p)
		if err == nil {
			return res, attempts, nil
		}
		if _, isAbort := IsAbort(err); !isAbort {
			return nil, attempts, err
		}
		if maxAttempts > 0 && attempts >= maxAttempts {
			return nil, attempts, err
		}
		if d := c.jitterDelay(attempts); d > 0 {
			time.Sleep(d)
		}
	}
}

// ServerStats is the full observability payload of the Stats probe.
type ServerStats struct {
	Snapshot     metrics.Snapshot
	ProperMisses int64
	// Live is the server's live-transaction gauge at probe time.
	Live int64
	// Latencies holds the server's per-path histograms; quantiles come
	// from HistogramSnapshot.Quantile.
	Latencies metrics.LatencySet
}

// Stats fetches the server's performance counters.
func (c *Client) Stats() (metrics.Snapshot, int64, error) {
	st, err := c.StatsFull()
	return st.Snapshot, st.ProperMisses, err
}

// StatsFull fetches the counters together with the live-transaction gauge
// and the per-path latency histograms added in protocol version 2.
func (c *Client) StatsFull() (ServerStats, error) {
	resp, err := c.call(&wire.Stats{})
	if err != nil {
		return ServerStats{}, err
	}
	so, ok := resp.(*wire.StatsOK)
	if !ok {
		return ServerStats{}, fmt.Errorf("client: unexpected Stats response %v", resp.MsgType())
	}
	return ServerStats{
		Snapshot:     so.Snapshot,
		ProperMisses: so.ProperMisses,
		Live:         so.Live,
		Latencies:    so.Latencies,
	}, nil
}
