package client

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/wire"
)

// Tag-slot lifecycle under teardown. A Close racing a storm of CallAsync
// issuers exercises the enqueue/teardown windows: the slot semaphore and
// the quit channel stay ready simultaneously, so without the re-checks
// in enqueue a call could be queued on a dead pipe with its slot token
// stranded. These tests pin the invariants: every waiter resolves, the
// pipe ends with a sticky cause and an empty pending table, and the tag
// allocator never holds a tag twice or a tag that still names a call.
// Run with -race.

// pipeInvariants asserts the tag-table consistency of a pipe.
func pipeInvariants(t *testing.T, p *pipe) {
	t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := make(map[uint32]bool, len(p.free))
	for _, tag := range p.free {
		if seen[tag] {
			t.Errorf("tag %d on the free list twice", tag)
		}
		seen[tag] = true
		if _, ok := p.pending[tag]; ok {
			t.Errorf("free tag %d still names a pending call", tag)
		}
		if tag == 0 || tag >= p.nextTag {
			t.Errorf("free tag %d outside the allocated range [1, %d)", tag, p.nextTag)
		}
	}
	for tag, call := range p.pending {
		if call.tag != tag {
			t.Errorf("pending slot %d holds a call registered as %d", tag, call.tag)
		}
	}
}

func TestCloseRacingCallAsyncTagLifecycle(t *testing.T) {
	c := pipeClient(t, 8, 0, func(sc *wire.Conn) {
		for {
			tag, inner := readTagged(t, sc)
			if inner == nil {
				return
			}
			wire.Recycle(inner)
			if err := sc.WriteMessage(&wire.TaggedReply{Tag: tag, Inner: &wire.Value{Value: 7}}); err != nil {
				return
			}
		}
	})
	const issuers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < issuers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 64; j++ {
				p := c.CallAsync(&wire.Read{Txn: 1, Object: 5})
				if _, err := p.Wait(); err != nil {
					// Teardown reached this issuer; the error must be the
					// typed close, never a raw transport artifact.
					if !errors.Is(err, ErrClientClosed) {
						t.Errorf("post-close call failed with %v, want ErrClientClosed", err)
					}
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let the storm overlap the close
	c.Close()
	wg.Wait()

	p := c.pipe
	pipeInvariants(t, p)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken == nil {
		t.Fatal("closed pipe has no sticky teardown cause")
	}
	if n := len(p.pending); n != 0 {
		t.Errorf("%d calls still pending after close", n)
	}
}

func TestCloseUnblocksEnqueueWaiters(t *testing.T) {
	// The script answers nothing: both slots fill immediately and every
	// later CallAsync blocks inside enqueue waiting for a slot. Close
	// must resolve all of them — the blocked waiters via the quit select,
	// the in-flight ones via fail's pending sweep.
	c := pipeClient(t, 2, 0, func(sc *wire.Conn) {
		for {
			_, inner := readTagged(t, sc)
			if inner == nil {
				return
			}
			wire.Recycle(inner)
		}
	})
	const waiters = 16
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.CallAsync(&wire.Read{Txn: 1, Object: 5}).Wait()
			errs <- err
		}()
	}
	time.Sleep(2 * time.Millisecond) // fill the slots, pile up waiters
	c.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("CallAsync waiters did not resolve after Close")
	}
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrClientClosed) {
			t.Errorf("waiter failed with %v, want ErrClientClosed", err)
		}
	}
	pipeInvariants(t, c.pipe)
}

func TestBatchUnwindKeepsTagTableConsistent(t *testing.T) {
	c := pipeClient(t, 4, 0, func(sc *wire.Conn) {
		for {
			_, inner := readTagged(t, sc)
			if inner == nil {
				return
			}
			wire.Recycle(inner)
		}
	})
	// A batch with a non-batchable frame unwinds its already-registered
	// tags; they must return to the free list exactly once.
	_, err := c.Batch([]wire.Message{
		&wire.Read{Txn: 1, Object: 5},
		&wire.Stats{}, // not batchable
	})
	if err == nil {
		t.Fatal("batch with non-batchable frame succeeded")
	}
	pipeInvariants(t, c.pipe)
	c.pipe.mu.Lock()
	pending, free := len(c.pipe.pending), len(c.pipe.free)
	c.pipe.mu.Unlock()
	if pending != 0 {
		t.Errorf("%d tags still pending after unwind", pending)
	}
	if free != 1 {
		t.Errorf("free list holds %d tags after unwind, want 1", free)
	}
}
