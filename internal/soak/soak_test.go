package soak

import (
	"runtime"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/faultnet"
)

// checkGoroutines asserts the goroutine count settles back to the
// pre-run baseline: a robustness layer that survives faults by leaking
// a blocked goroutine per fault has not survived them.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Errorf("goroutines: %d before run, %d still alive 5s after; stacks:\n%s", baseline, n, buf)
}

// run executes a soak config and applies the full invariant battery.
func run(t *testing.T, cfg Config) *Report {
	t.Helper()
	baseline := runtime.NumGoroutine()
	cfg.Logf = t.Logf
	report, err := Run(cfg)
	if report != nil {
		t.Log(report.String())
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Err(); err != nil {
		t.Error(err)
	}
	if report.Committed != int64(cfg.Clients*cfg.TxnsPerClient) {
		t.Errorf("committed %d programs, want %d", report.Committed, cfg.Clients*cfg.TxnsPerClient)
	}
	checkGoroutines(t, baseline)
	return report
}

// TestSoakBankingUnderFaults is the acceptance soak: the banking
// workload through drops, added latency, fragmented reads and periodic
// mid-frame resets, ending in a graceful shutdown with zero leaked
// goroutines and zero live transactions.
func TestSoakBankingUnderFaults(t *testing.T) {
	cfg := DefaultConfig()
	if testing.Short() {
		cfg.Clients = 3
		cfg.TxnsPerClient = 10
	}
	report := run(t, cfg)
	// The schedule must actually have bitten: a soak that injected no
	// faults proves nothing.
	if report.Faults.Total() == 0 {
		t.Error("no faults injected — schedule did not engage")
	}
	if report.Faults.Resets.Load() == 0 {
		t.Error("no mid-frame resets injected")
	}
	if report.Faults.Drops.Load() == 0 {
		t.Error("no frames dropped")
	}
	if report.Reconnects == 0 {
		t.Error("no reconnects — clients never exercised the recovery path")
	}
}

// TestSoakCleanNetworkBaseline pins that the harness itself is quiet:
// with no faults configured, no reconnects happen and every program
// commits on the wire it started on.
func TestSoakCleanNetworkBaseline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clients = 2
	cfg.TxnsPerClient = 15
	cfg.Faults = faultnet.Config{}
	report := run(t, cfg)
	if report.Reconnects != 0 {
		t.Errorf("clean network produced %d reconnects", report.Reconnects)
	}
	if report.Faults.Total() != 0 {
		t.Errorf("clean network injected %d faults", report.Faults.Total())
	}
}

// TestSoakZeroEpsilonCertified pins the oracle gate at ε=0: with zero
// bounds every client runs strict timestamp ordering, so the certified
// history must show no relaxed or dirty reads and zero accumulated
// inconsistency — the serializable special case, proven offline from
// the trace rather than assumed from the configuration.
func TestSoakZeroEpsilonCertified(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clients = 3
	cfg.TxnsPerClient = 10
	cfg.TIL = 0
	cfg.TEL = 0
	report := run(t, cfg)
	o := report.Oracle
	if o == nil {
		t.Fatal("Certify set but no oracle report")
	}
	if o.RelaxedReads != 0 || o.DirtyReads != 0 || o.MaxDistance != 0 {
		t.Errorf("zero-epsilon run not serializable: %d relaxed, %d dirty, max distance %d",
			o.RelaxedReads, o.DirtyReads, o.MaxDistance)
	}
	if o.TotalImported != 0 || o.TotalExported != 0 {
		t.Errorf("zero-epsilon run accumulated inconsistency %d/%d", o.TotalImported, o.TotalExported)
	}
	if len(o.Witness) != o.Txns {
		t.Errorf("witness covers %d of %d committed txns", len(o.Witness), o.Txns)
	}
}

// TestSoakPipelinedUnderFaults runs the acceptance soak over the
// pipelined wire protocol: every connection holds a whole program's
// operations in flight inside tagged Batch frames while the fault
// schedule drops, fragments and resets the stream. The invariant
// battery is unchanged — conservation, zero live transactions, zero
// leaked goroutines (the demultiplexer's waiters included), and a
// certified epsilon-serializable history — plus the teardown contract:
// dropped connections must surface as the client's typed errors, never
// as hung calls.
func TestSoakPipelinedUnderFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pipeline = 8
	// The batched protocol coalesces a whole program into ~2 conn
	// writes, so the default schedule (tuned to ~20 frames per program)
	// barely bites; rescale drops and resets to frame counts.
	cfg.Faults.Seed = 5
	cfg.Faults.DropProb = 0.05
	cfg.Faults.ResetAfterWrites = 10
	if testing.Short() {
		cfg.Clients = 3
		cfg.TxnsPerClient = 10
	}
	report := run(t, cfg)
	if report.Faults.Total() == 0 {
		t.Error("no faults injected — schedule did not engage")
	}
	if report.Reconnects == 0 {
		t.Error("no reconnects — pipelined clients never exercised the recovery path")
	}
	if report.TypedConnFailures == 0 {
		t.Error("no typed connection failures — teardown never failed an outstanding tagged call")
	}
	if report.Oracle == nil {
		t.Fatal("Certify set but no oracle report")
	}
}

// TestSoakPipelinedChunkedBatches is the pipelined soak with programs
// split across several small Batch frames (BatchOps 2), exercising the
// partial-progress path: a connection can die between a program's
// frames, not just mid-frame.
func TestSoakPipelinedChunkedBatches(t *testing.T) {
	if testing.Short() {
		t.Skip("chunked-batch soak skipped in -short")
	}
	cfg := DefaultConfig()
	cfg.Pipeline = 4
	cfg.BatchOps = 2
	cfg.Clients = 3
	cfg.TxnsPerClient = 12
	run(t, cfg)
}

// TestSoakHeavyResets leans on the reset path: every connection dies
// mid-frame after a few messages, so every client lives through many
// reconnects — and the engine still ends clean.
func TestSoakHeavyResets(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy-reset soak skipped in -short")
	}
	cfg := DefaultConfig()
	cfg.Clients = 3
	cfg.TxnsPerClient = 8
	cfg.Faults = faultnet.Config{
		Seed:             3,
		ResetAfterWrites: 12,
	}
	report := run(t, cfg)
	if report.Reconnects < int64(cfg.Clients) {
		t.Errorf("reconnects = %d, want ≥ %d under per-conn resets", report.Reconnects, cfg.Clients)
	}
}
