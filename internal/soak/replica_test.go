package soak

import (
	"runtime"
	"testing"
)

// TestReplicaSoak streams the primary's WAL to two followers over
// connections that fragment reads, inject latency, and reset roughly
// every sixty reads, while the followers serve bounded-stale queries.
// The run must converge, conserve the bank total on every node, certify
// the merged trace, and leak no goroutines.
func TestReplicaSoak(t *testing.T) {
	cfg := DefaultReplicaConfig()
	cfg.Logf = t.Logf
	if !testing.Short() {
		cfg.UpdatesTotal = 1200
	}

	baseline := runtime.NumGoroutine()
	rep, err := RunReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if err := rep.Err(); err != nil {
		t.Error(err)
	}
	if rep.Faults.Resets.Load() == 0 || rep.Faults.Partials.Load() == 0 {
		t.Errorf("fault schedule barely fired (%d resets, %d partials) — the soak proved nothing",
			rep.Faults.Resets.Load(), rep.Faults.Partials.Load())
	}
	checkGoroutines(t, baseline)
}
