package soak

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/esrcheck"
	"github.com/epsilondb/epsilondb/internal/history"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/wal"
)

// CrashConfig parameterizes a kill-and-restart soak: the banking
// workload runs in-process against a WAL-backed engine over a MemFS,
// and the "machine" is crashed between cycles — sometimes cleanly
// (after a durability barrier), sometimes mid-flight with a random torn
// tail. Every restart recovers from the log and re-checks the
// invariants durability must preserve across crashes.
type CrashConfig struct {
	// Cycles is the number of run/crash/recover rounds.
	Cycles int
	// Workers and TxnsPerWorker size each cycle's workload.
	Workers       int
	TxnsPerWorker int
	// Accounts and InitialBalance shape the bank.
	Accounts       int
	InitialBalance core.Value
	// QueryFraction is the probability a program is an audit query.
	QueryFraction float64
	// TIL bounds audit queries, TEL bounds transfers; both are audited
	// per commit record after the final crash.
	TIL core.Distance
	TEL core.Distance
	// HistoryDepth is the per-object committed history bound the
	// recovery must restore.
	HistoryDepth int
	// SyncInterval and SnapshotEvery configure the log under test.
	SyncInterval  time.Duration
	SnapshotEvery int
	// DirtyEvery makes every Nth cycle end in a mid-flight kill with a
	// random torn tail instead of a clean barriered kill; 0 keeps every
	// kill clean.
	DirtyEvery int
	// Certify runs the offline epsilon-serializability oracle over every
	// cycle's recorded trace after its drain. The state recovered from
	// the log is presented to the oracle as a synthetic initial
	// transaction (recovery is the first committed transaction of the
	// next epoch's history), so reads of pre-crash versions resolve.
	Certify bool
	// Seed drives the workload and the crash points.
	Seed int64
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// DefaultCrashConfig returns a short adversarial run mixing clean and
// dirty kills.
func DefaultCrashConfig() CrashConfig {
	return CrashConfig{
		Cycles:         6,
		Workers:        4,
		TxnsPerWorker:  40,
		Accounts:       16,
		InitialBalance: 5_000,
		QueryFraction:  0.25,
		TIL:            10_000,
		TEL:            5_000,
		HistoryDepth:   4,
		SyncInterval:   200 * time.Microsecond,
		SnapshotEvery:  64,
		DirtyEvery:     2,
		Certify:        true,
		Seed:           1,
	}
}

// CrashReport summarizes a crash soak.
type CrashReport struct {
	// Cycles ran; CleanKills + DirtyKills == Cycles.
	Cycles, CleanKills, DirtyKills int
	// Committed counts commits whose durability ack resolved nil — these
	// MUST survive every later crash. DurabilityLost counts commits that
	// published in memory but whose ack failed (killed log): outcome
	// legitimately unknown after the crash.
	Committed, Attempts, DurabilityLost int64
	// ReplayedCommits sums the commit records replayed across all
	// recoveries (tail only; snapshot-covered records don't re-replay).
	ReplayedCommits int
	// TornTails counts recoveries that discarded a torn final record.
	TornTails int
	// CertifiedCycles counts cycles whose trace the offline oracle
	// certified (equal to Cycles when Certify is on and nothing failed).
	CertifiedCycles int
	// InitialTotal/FinalTotal are the conservation check ends.
	InitialTotal, FinalTotal core.Value
	// FinalImported/FinalExported are the recovered accumulated
	// inconsistency after the last crash.
	FinalImported, FinalExported core.Distance

	violations []string
}

// String renders the report for the command line.
func (r *CrashReport) String() string {
	return fmt.Sprintf(
		"crash soak: %d cycles (%d clean, %d dirty kills); %d commits acked, %d attempts, %d lost-durability\n"+
			"recovery: %d tail commits replayed, %d torn tails discarded; %d cycles certified by the oracle\n"+
			"final total %d (start %d), inconsistency %d/%d",
		r.Cycles, r.CleanKills, r.DirtyKills, r.Committed, r.Attempts, r.DurabilityLost,
		r.ReplayedCommits, r.TornTails, r.CertifiedCycles,
		r.FinalTotal, r.InitialTotal, r.FinalImported, r.FinalExported)
}

// Err returns the first invariant violation, or nil.
func (r *CrashReport) Err() error {
	if len(r.violations) > 0 {
		return errors.New("crash soak: " + r.violations[0])
	}
	return nil
}

func (r *CrashReport) violate(format string, args ...any) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

// crashCounters is the workers' shared tally for one run.
type crashCounters struct {
	committed, attempts, lost atomic.Int64
}

// RunCrash executes the kill-and-restart soak. The returned error
// covers infrastructure failures; invariant verdicts live in
// Report.Err, mirroring Run.
func RunCrash(cfg CrashConfig) (*CrashReport, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Cycles <= 0 || cfg.Workers <= 0 || cfg.TxnsPerWorker <= 0 || cfg.Accounts < 2 {
		return nil, fmt.Errorf("soak: crash config needs ≥1 cycle/worker/txn and ≥2 accounts; got %+v", cfg)
	}
	fs := wal.NewMemFS()
	rng := rand.New(rand.NewSource(cfg.Seed))
	report := &CrashReport{InitialTotal: core.Value(cfg.Accounts) * cfg.InitialBalance}
	counts := &crashCounters{}
	clock := &tsgen.LogicalClock{}
	storeCfg := storage.Config{HistoryDepth: cfg.HistoryDepth}
	walOpts := wal.Options{SyncInterval: cfg.SyncInterval, SnapshotEvery: cfg.SnapshotEvery, Collector: &metrics.Collector{}, Logf: logf}

	// cleanCapture is the exact durable state a clean kill promised; nil
	// after a dirty kill, where only the prefix invariants hold.
	var cleanCapture *storage.StoreState
	var prevImported, prevExported core.Distance

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		store, l, info, err := wal.Recover(fs, storeCfg, walOpts)
		if err != nil {
			return report, fmt.Errorf("soak: cycle %d: recover: %w", cycle, err)
		}
		report.ReplayedCommits += info.Commits
		if info.TornTail {
			report.TornTails++
		}
		if cycle == 0 {
			for i := 1; i <= cfg.Accounts; i++ {
				if _, err := store.CreateWithLimits(core.ObjectID(i), cfg.InitialBalance, core.NoLimit, core.NoLimit); err != nil {
					return report, fmt.Errorf("soak: create account %d: %w", i, err)
				}
			}
		} else {
			checkRecovered(cfg, report, store, cycle, cleanCapture, prevImported, prevExported)
		}
		prevImported, prevExported = store.CommittedInconsistency()

		// New timestamps must land after everything recovered, or the TO
		// engine would reject the first writes as late.
		maxTicks := int64(0)
		for _, os := range store.CaptureState().Objects {
			if t := os.WriteTS.Ticks(); t > maxTicks {
				maxTicks = t
			}
		}
		clock.Set(maxTicks + 1)

		engineOpts := tso.Options{Collector: &metrics.Collector{}, Durability: l}
		var rec *history.Recorder
		if cfg.Certify {
			rec = history.NewRecorder()
			for _, ev := range recoveryEvents(store) {
				rec.Trace(ev)
			}
			engineOpts.Tracer = rec
		}
		engine := tso.NewEngine(store, engineOpts)
		dirty := cfg.DirtyEvery > 0 && (cycle+1)%cfg.DirtyEvery == 0

		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(site int, seed int64) {
				defer wg.Done()
				crashWorker(cfg, engine, clock, site, seed, counts, &stop)
			}(cycle*cfg.Workers+w+1, cfg.Seed+int64(cycle*1_000+w)*7919)
		}
		var killerDone chan struct{}
		if dirty {
			// Kill once roughly half the cycle's workload has committed:
			// mid-flight commits get ErrLogKilled acks, the tail of the
			// segment is torn randomly.
			target := counts.committed.Load() + int64(cfg.Workers*cfg.TxnsPerWorker/2)
			killerDone = make(chan struct{})
			go func() {
				defer close(killerDone)
				for counts.committed.Load() < target && !stop.Load() {
					time.Sleep(100 * time.Microsecond)
				}
				l.Kill()
				stop.Store(true)
			}()
		}
		wg.Wait()
		if killerDone != nil {
			// If the workers drained without ever reaching the kill
			// target (heavy abort cycles), the killer would keep spinning
			// on the cumulative commit counter and fire into a later
			// cycle; release it and join before reusing the counters.
			stop.Store(true)
			<-killerDone
		}
		if live := engine.Live(); live != 0 {
			report.violate("cycle %d: %d transactions still live after drain", cycle, live)
		}
		if rec != nil {
			if err := esrcheck.Check(rec.Events()).Err(); err != nil {
				report.violate("cycle %d: history refuted: %v", cycle, err)
			} else {
				report.CertifiedCycles++
			}
		}
		if dirty {
			l.Kill() // idempotent if the killer already fired
			fs.Crash(rng)
			cleanCapture = nil
			report.DirtyKills++
		} else {
			if err := l.Sync(); err != nil {
				return report, fmt.Errorf("soak: cycle %d: final sync: %w", cycle, err)
			}
			cleanCapture = store.CaptureState()
			l.Kill()
			fs.Crash(nil) // drop every unsynced byte: the barrier must suffice
			report.CleanKills++
		}
		report.Cycles++
	}

	// Final recovery: run every invariant once more, prove replay is
	// idempotent, and audit the surviving commit records against the
	// epsilon bounds the engine enforced.
	store, finalInfo, err := wal.Replay(fs, storeCfg)
	if err != nil {
		return report, fmt.Errorf("soak: final replay: %w", err)
	}
	checkRecovered(cfg, report, store, cfg.Cycles, cleanCapture, prevImported, prevExported)
	again, _, err := wal.Replay(fs, storeCfg)
	if err != nil {
		return report, fmt.Errorf("soak: final replay (2nd): %w", err)
	}
	if !reflect.DeepEqual(store.CaptureState(), again.CaptureState()) {
		report.violate("replaying the final log twice produced different states")
	}
	if finalInfo.TornTail {
		report.TornTails++
	}
	report.ReplayedCommits += finalInfo.Commits
	report.FinalTotal = store.TotalValue()
	report.FinalImported, report.FinalExported = store.CommittedInconsistency()
	report.Committed = counts.committed.Load()
	report.Attempts = counts.attempts.Load()
	report.DurabilityLost = counts.lost.Load()

	_, err = wal.Scan(fs, func(rec wal.Record) error {
		if rec.Type != wal.RecordCommit {
			return nil
		}
		if cfg.TIL != core.NoLimit && rec.Commit.Imported > cfg.TIL {
			report.violate("txn %d imported %d > TIL %d", rec.Commit.Txn, rec.Commit.Imported, cfg.TIL)
		}
		if cfg.TEL != core.NoLimit && rec.Commit.Exported > cfg.TEL {
			report.violate("txn %d exported %d > TEL %d", rec.Commit.Txn, rec.Commit.Exported, cfg.TEL)
		}
		return nil
	})
	if err != nil && err != wal.ErrNoLog {
		return report, fmt.Errorf("soak: audit scan: %w", err)
	}
	return report, nil
}

// checkRecovered asserts the invariants every recovery must satisfy:
// money conserved, accumulated inconsistency a monotone prefix of what
// was live, bounded history depth restored, and — after a clean kill —
// the exact captured state.
func checkRecovered(cfg CrashConfig, report *CrashReport, store *storage.Store, cycle int, cleanCapture *storage.StoreState, prevImported, prevExported core.Distance) {
	if got := store.Len(); got != cfg.Accounts {
		report.violate("cycle %d: recovered %d accounts, want %d", cycle, got, cfg.Accounts)
	}
	want := core.Value(cfg.Accounts) * cfg.InitialBalance
	if got := store.TotalValue(); got != want {
		report.violate("cycle %d: conservation violated: total %d, want %d", cycle, got, want)
	}
	imp, exp := store.CommittedInconsistency()
	if imp < prevImported || exp < prevExported {
		report.violate("cycle %d: inconsistency went backwards: %d/%d -> %d/%d",
			cycle, prevImported, prevExported, imp, exp)
	}
	st := store.CaptureState()
	for _, os := range st.Objects {
		if len(os.History) < 1 || len(os.History) > cfg.HistoryDepth {
			report.violate("cycle %d: object %d history depth %d outside [1,%d]",
				cycle, os.ID, len(os.History), cfg.HistoryDepth)
		}
	}
	if cleanCapture != nil && !reflect.DeepEqual(cleanCapture, st) {
		report.violate("cycle %d: clean kill did not round-trip the captured state", cycle)
	}
}

// recoveryTxnID labels the synthetic initial transaction far above any
// id the engine assigns.
const recoveryTxnID = core.TxnID(1) << 62

// recoveryEvents renders the recovered store state as one committed
// synthetic transaction writing every surviving version, so the
// per-cycle oracle can resolve reads of pre-crash data instead of
// flagging them as reads of unknown versions. Versions with the None
// timestamp (initial loads) are omitted — the oracle already treats
// those as initial values.
func recoveryEvents(store *storage.Store) []tso.Event {
	st := store.CaptureState()
	var writes []tso.Event
	var maxTS tsgen.Timestamp
	for _, os := range st.Objects {
		for _, h := range os.History {
			if h.TS.IsNone() {
				continue
			}
			writes = append(writes, tso.Event{
				Kind: tso.EvWrite, Txn: recoveryTxnID, TxnKind: core.Update,
				TS: h.TS, Object: os.ID, Value: h.Value, Version: h.TS,
				Limit: core.NoLimit,
			})
			if h.TS.After(maxTS) {
				maxTS = h.TS
			}
		}
	}
	if len(writes) == 0 {
		return nil
	}
	evs := make([]tso.Event, 0, len(writes)+2)
	evs = append(evs, tso.Event{Kind: tso.EvBegin, Txn: recoveryTxnID,
		TxnKind: core.Update, TS: maxTS, Limit: core.NoLimit})
	evs = append(evs, writes...)
	evs = append(evs, tso.Event{Kind: tso.EvCommit, Txn: recoveryTxnID,
		TxnKind: core.Update, TS: maxTS, Limit: core.NoLimit})
	return evs
}

// crashWorker drives transfers and audit queries directly against the
// engine, retrying aborts, until its quota is done or the log dies
// under it.
func crashWorker(cfg CrashConfig, engine *tso.Engine, clock tsgen.Clock, site int, seed int64, counts *crashCounters, stop *atomic.Bool) {
	rng := rand.New(rand.NewSource(seed))
	gen := tsgen.NewGenerator(site&tsgen.MaxSite, clock)
	for i := 0; i < cfg.TxnsPerWorker; i++ {
		if stop.Load() {
			return
		}
		var err error
		if rng.Float64() < cfg.QueryFraction {
			err = runCrashQuery(cfg, engine, gen, rng, counts)
		} else {
			err = runCrashTransfer(cfg, engine, gen, rng, counts)
		}
		if err != nil {
			// The log died under us (kill): published in memory, durability
			// unknown. Stop generating.
			var de *tso.DurabilityError
			if errors.As(err, &de) {
				counts.lost.Add(1)
			}
			return
		}
	}
}

const maxCrashRetries = 100

// runCrashTransfer moves money between two accounts; zero-sum, so any
// replayed prefix conserves the total.
func runCrashTransfer(cfg CrashConfig, engine *tso.Engine, gen *tsgen.Generator, rng *rand.Rand, counts *crashCounters) error {
	from := core.ObjectID(1 + rng.Intn(cfg.Accounts))
	to := from
	for to == from {
		to = core.ObjectID(1 + rng.Intn(cfg.Accounts))
	}
	amount := core.Value(1 + rng.Intn(200))
	for attempt := 0; ; attempt++ {
		counts.attempts.Add(1)
		txn, err := engine.Begin(core.Update, gen.Next(), core.BoundSpec{Transaction: cfg.TEL})
		if err != nil {
			return err
		}
		if _, err = engine.WriteDelta(txn, from, -amount); err == nil {
			_, err = engine.WriteDelta(txn, to, amount)
		}
		if err == nil {
			err = engine.Commit(txn)
		}
		if err == nil {
			counts.committed.Add(1)
			return nil
		}
		if _, isAbort := tso.IsAbort(err); isAbort && attempt < maxCrashRetries {
			continue // aborted and cleaned up; retry with a fresh timestamp
		}
		return err
	}
}

// runCrashQuery audits a random clutch of accounts under TIL.
func runCrashQuery(cfg CrashConfig, engine *tso.Engine, gen *tsgen.Generator, rng *rand.Rand, counts *crashCounters) error {
	n := 3 + rng.Intn(5)
	for attempt := 0; ; attempt++ {
		counts.attempts.Add(1)
		txn, err := engine.Begin(core.Query, gen.Next(), core.BoundSpec{Transaction: cfg.TIL})
		if err != nil {
			return err
		}
		for i := 0; i < n && err == nil; i++ {
			_, err = engine.Read(txn, core.ObjectID(1+rng.Intn(cfg.Accounts)))
		}
		if err == nil {
			err = engine.Commit(txn)
		}
		if err == nil {
			counts.committed.Add(1)
			return nil
		}
		if _, isAbort := tso.IsAbort(err); isAbort && attempt < maxCrashRetries {
			continue
		}
		return err
	}
}
