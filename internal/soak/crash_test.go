package soak

import (
	"testing"
	"time"
)

// TestCrashSoakDefault runs the default kill-and-restart schedule:
// clean and dirty kills alternating, conservation and epsilon-bound
// invariants checked at every recovery.
func TestCrashSoakDefault(t *testing.T) {
	cfg := DefaultCrashConfig()
	cfg.Logf = t.Logf
	report, err := RunCrash(cfg)
	if report != nil {
		t.Log(report)
	}
	if err != nil {
		t.Fatalf("RunCrash: %v", err)
	}
	if err := report.Err(); err != nil {
		t.Fatal(err)
	}
	if report.Committed == 0 {
		t.Fatal("no commits acked — the workload never ran")
	}
	if report.CleanKills == 0 || report.DirtyKills == 0 {
		t.Fatalf("schedule did not mix kills: %d clean, %d dirty", report.CleanKills, report.DirtyKills)
	}
}

// TestCrashSoakAllDirty hammers the torn-tail path: every cycle is a
// mid-flight kill with a random crash point, across several seeds.
func TestCrashSoakAllDirty(t *testing.T) {
	if testing.Short() {
		t.Skip("crash soak sweep skipped in -short")
	}
	for seed := int64(1); seed <= 4; seed++ {
		cfg := DefaultCrashConfig()
		cfg.Seed = seed
		cfg.DirtyEvery = 1
		cfg.Cycles = 4
		cfg.SnapshotEvery = 24
		cfg.SyncInterval = 100 * time.Microsecond
		report, err := RunCrash(cfg)
		if err != nil {
			t.Fatalf("seed %d: RunCrash: %v", seed, err)
		}
		if err := report.Err(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, report)
		}
	}
}

// TestCrashSoakPerAppendFsync runs the per-transaction fsync baseline
// (negative interval) through crashes: every acked commit is durable on
// its own fsync, so dirty kills can only lose unacked tails.
func TestCrashSoakPerAppendFsync(t *testing.T) {
	cfg := DefaultCrashConfig()
	cfg.SyncInterval = -1
	cfg.Cycles = 4
	cfg.TxnsPerWorker = 15
	report, err := RunCrash(cfg)
	if err != nil {
		t.Fatalf("RunCrash: %v", err)
	}
	if err := report.Err(); err != nil {
		t.Fatalf("%v\n%s", err, report)
	}
}
