package soak

// The replication feed soak: a durable primary streaming its WAL to
// bounded-stale followers over connections wrapped with read-side
// faultnet schedules — injected latency, fragmented reads, and hard
// resets mid-stream. The feed must survive by reconnecting and resuming
// from its applied LSN; the soak then asserts the strongest invariants
// the design claims:
//
//   - conservation everywhere: the zero-sum transfer load keeps the
//     bank's total constant, and once every follower has applied the
//     primary's head, each follower store must show the same total —
//     a feed that dropped, duplicated, or reordered a record cannot;
//   - convergence: every follower's applied LSN reaches the primary's
//     head despite the fault schedule (a nudge load keeps records
//     flowing so a reset that ate the tail of the stream is always
//     followed by traffic that exposes it);
//   - accounting: queries served by the followers during the churn
//     charge their replication lag against TIL, and the merged
//     primary+replica trace certifies under the offline oracle;
//   - routing: zero-epsilon queries are refused by every follower with
//     a typed redirect and served by the primary instead;
//   - cleanliness: no live transactions after shutdown, and (asserted
//     by the test) no leaked goroutines.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/esrcheck"
	"github.com/epsilondb/epsilondb/internal/faultnet"
	"github.com/epsilondb/epsilondb/internal/history"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/replica"
	"github.com/epsilondb/epsilondb/internal/server"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/wal"
)

// ReplicaConfig parameterizes one replication feed soak.
type ReplicaConfig struct {
	// Replicas is the number of followers, each fed over its own
	// fault-wrapped connection.
	Replicas int
	// Writers is the number of concurrent transfer workers on the
	// primary; UpdatesTotal commits are split between them.
	Writers      int
	UpdatesTotal int
	// Accounts is the database size; balances start at InitialBalance.
	Accounts       int
	InitialBalance core.Value
	// TIL bounds the follower queries' import of replication lag.
	TIL core.Distance
	// Seed drives the workload generators; the fault schedule has its
	// own seed inside Faults.
	Seed int64
	// WriterPace spaces the transfer commits out so the feed carries a
	// sustained stream instead of one burst, letting the count-based
	// fault triggers accumulate reads on every replication connection.
	WriterPace time.Duration
	// Faults is the schedule wrapped around every replication dial.
	// Read-side faults are the interesting ones: the feed writes one
	// hello per connection and then only reads.
	Faults faultnet.Config
	// FeedBackoff/FeedMaxBackoff tune the feed's reconnect delays; the
	// soak keeps them tight so an aggressive reset schedule still
	// converges quickly.
	FeedBackoff    time.Duration
	FeedMaxBackoff time.Duration
	// CatchUpGrace bounds the post-load wait for every follower to
	// reach the primary's head.
	CatchUpGrace  time.Duration
	ShutdownGrace time.Duration
	// MaxDuration aborts the whole run (a schedule that starves all
	// feed progress must fail loudly, not hang).
	MaxDuration time.Duration
	// Logf receives run diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// DefaultReplicaConfig returns a short adversarial run: fragmented
// reads, jittered latency, and every replication connection reset after
// a few hundred reads. The schedule is aggressive but live: a feed
// message is at most the WAL's tail chunk (512KiB), and the budget a
// connection can move before its reset — ResetAfterReads reads of up to
// PartialReadMax bytes — comfortably exceeds that, so every connection
// completes at least one batch and the feed always makes progress.
func DefaultReplicaConfig() ReplicaConfig {
	return ReplicaConfig{
		Replicas:       2,
		Writers:        2,
		UpdatesTotal:   300,
		Accounts:       32,
		InitialBalance: 5_000,
		TIL:            10_000,
		Seed:           1,
		WriterPace:     time.Millisecond,
		Faults: faultnet.Config{
			Seed:            1,
			ReadLatency:     20 * time.Microsecond,
			LatencyJitter:   0.5,
			PartialReadMax:  2048,
			ResetAfterReads: 120,
		},
		FeedBackoff:    time.Millisecond,
		FeedMaxBackoff: 20 * time.Millisecond,
		CatchUpGrace:   20 * time.Second,
		ShutdownGrace:  5 * time.Second,
		MaxDuration:    2 * time.Minute,
	}
}

// ReplicaReport summarizes a replication soak run.
type ReplicaReport struct {
	// UpdateCommits counts transfers committed on the primary,
	// including the nudges that flush the feed during catch-up.
	UpdateCommits int64
	// QueryCommits/QueryAborts count bounded queries the followers
	// served during the churn; ReplicaReads is the read total.
	QueryCommits, QueryAborts int64
	ReplicaReads              int64
	// LagImported is the lag inconsistency those queries charged.
	LagImported core.Distance
	// Redirects counts zero-epsilon queries the followers refused.
	Redirects int64
	// FeedBatches counts feed deliveries across all followers —
	// reconnect churn shows up as many small batches.
	FeedBatches int64
	// Faults is the injected-fault tally of the replication conns.
	Faults *faultnet.Stats
	// HeadLSN and AppliedLSN record convergence at shutdown.
	HeadLSN    uint64
	AppliedLSN []uint64
	// TotalPrimary and TotalReplica are the conserved bank totals.
	TotalPrimary core.Value
	TotalReplica []core.Value
	// LivePrimary/LiveReplica are the live-transaction gauges after
	// shutdown; nonzero means leaked transactions.
	LivePrimary int
	LiveReplica []int
	// Oracle is the verdict over the merged primary+replica trace.
	Oracle  *esrcheck.Report
	Elapsed time.Duration

	want core.Value // expected total, for Err
}

// String renders the report for logs.
func (r *ReplicaReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replica soak: %d updates, %d follower queries (%d aborts, %d reads, lag imported %d), %d redirects in %v\n",
		r.UpdateCommits, r.QueryCommits, r.QueryAborts, r.ReplicaReads, r.LagImported, r.Redirects, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  feed: %d batches through %d delays, %d partial reads, %d resets\n",
		r.FeedBatches, r.Faults.Delays.Load(), r.Faults.Partials.Load(), r.Faults.Resets.Load())
	fmt.Fprintf(&b, "  convergence: head %d, applied %v; totals: primary %d, replicas %v\n",
		r.HeadLSN, r.AppliedLSN, r.TotalPrimary, r.TotalReplica)
	if r.Oracle != nil {
		fmt.Fprintf(&b, "  oracle: %d txns, %d relaxed reads, err=%v", r.Oracle.Txns, r.Oracle.RelaxedReads, r.Oracle.Err())
	}
	return b.String()
}

// Err applies the invariant battery; nil means the run passed.
func (r *ReplicaReport) Err() error {
	if r.TotalPrimary != r.want {
		return fmt.Errorf("replica soak: primary total %d, want %d", r.TotalPrimary, r.want)
	}
	for i, total := range r.TotalReplica {
		if total != r.want {
			return fmt.Errorf("replica soak: follower %d total %d, want %d (feed lost or duplicated a record)", i, total, r.want)
		}
	}
	for i, lsn := range r.AppliedLSN {
		if lsn != r.HeadLSN {
			return fmt.Errorf("replica soak: follower %d applied %d, head %d", i, lsn, r.HeadLSN)
		}
	}
	if r.LivePrimary != 0 {
		return fmt.Errorf("replica soak: %d transactions leaked on the primary", r.LivePrimary)
	}
	for i, n := range r.LiveReplica {
		if n != 0 {
			return fmt.Errorf("replica soak: %d query attempts leaked on follower %d", n, i)
		}
	}
	if r.QueryCommits == 0 || r.ReplicaReads == 0 {
		return errors.New("replica soak: followers served no queries — the soak exercised nothing")
	}
	if r.Redirects == 0 {
		return errors.New("replica soak: no zero-epsilon redirect was exercised")
	}
	if r.Oracle != nil && r.Oracle.Err() != nil {
		return fmt.Errorf("replica soak: merged trace refuted: %w", r.Oracle.Err())
	}
	return nil
}

// RunReplica executes the replication soak. The returned error covers
// infrastructure failures; invariant verdicts live in Report.Err.
func RunReplica(cfg ReplicaConfig) (*ReplicaReport, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Replicas < 1 || cfg.Writers < 1 || cfg.UpdatesTotal < 1 || cfg.Accounts < 2 {
		return nil, fmt.Errorf("replica soak: need ≥1 replica, ≥1 writer, ≥1 update, ≥2 accounts; got %+v", cfg)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}

	// Primary: a durable store whose creations are logged, so followers
	// rebuild the database from the stream alone.
	store := storage.NewStore(storage.Config{HistoryDepth: 16})
	l, err := wal.Open(wal.NewMemFS(), store, wal.Options{SyncInterval: 200 * time.Microsecond})
	if err != nil {
		return nil, err
	}
	defer func() {
		if err := l.Close(); err != nil {
			logf("replica soak: wal close: %v", err)
		}
	}()
	store.SetDurability(l)
	primRec := history.NewRecorder()
	engine := tso.NewEngine(store, tso.Options{Durability: l, Tracer: primRec, Collector: &metrics.Collector{}})
	for i := 1; i <= cfg.Accounts; i++ {
		if _, err := store.CreateWithLimits(core.ObjectID(i), cfg.InitialBalance, core.NoLimit, core.NoLimit); err != nil {
			return nil, err
		}
	}
	clock := &tsgen.LogicalClock{}
	srv := server.New(engine, server.Options{Clock: clock, Logf: logf, Feed: l})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	ctx := context.Background()
	if cfg.MaxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.MaxDuration)
		defer cancel()
	}

	// Followers, each fed through its own fault-wrapped dial.
	stats := &faultnet.Stats{}
	dial := faultnet.Dialer(cfg.Faults, stats)
	type node struct {
		f    *replica.Follower
		eng  *replica.Engine
		feed *replica.Feed
		rec  *history.Recorder
	}
	nodes := make([]*node, cfg.Replicas)
	for i := range nodes {
		n := &node{f: replica.NewFollower(storage.Config{HistoryDepth: 16}), rec: history.NewRecorder()}
		n.eng = replica.NewEngine(n.f, replica.Options{Collector: &metrics.Collector{}, Tracer: n.rec, Index: i})
		n.feed, err = replica.StartFeed(n.f, replica.FeedOptions{
			Dial:       func() (net.Conn, error) { return dial(addr.String()) },
			Logf:       logf,
			Backoff:    cfg.FeedBackoff,
			MaxBackoff: cfg.FeedMaxBackoff,
		})
		if err != nil {
			return nil, err
		}
		defer n.feed.Stop()
		nodes[i] = n
	}

	start := time.Now()
	var updateCommits, queryCommits, queryAborts, redirects atomic.Int64
	var fatal atomic.Value
	fail := func(err error) { fatal.CompareAndSwap(nil, err) }

	// transfer commits one zero-sum update on the primary, retrying
	// aborts with fresh timestamps.
	transfer := func(gen *tsgen.Generator, rng *rand.Rand) error {
		for ctx.Err() == nil {
			from := core.ObjectID(1 + rng.Intn(cfg.Accounts))
			to := core.ObjectID(1 + rng.Intn(cfg.Accounts))
			for to == from {
				to = core.ObjectID(1 + rng.Intn(cfg.Accounts))
			}
			amount := core.Value(1 + rng.Intn(50))
			txn, err := engine.Begin(core.Update, gen.Next(), core.UnboundedSpec())
			if err != nil {
				return err
			}
			if _, err = engine.WriteDelta(txn, from, -amount); err == nil {
				if _, err = engine.WriteDelta(txn, to, amount); err == nil {
					err = engine.Commit(txn)
				}
			}
			var ae *tso.AbortError
			switch {
			case err == nil:
				updateCommits.Add(1)
				return nil
			case errors.As(err, &ae):
				continue // fresh timestamp, try again
			default:
				_ = engine.Abort(txn)
				return err
			}
		}
		return ctx.Err()
	}

	// The transfer load.
	var writers sync.WaitGroup
	perWriter := (cfg.UpdatesTotal + cfg.Writers - 1) / cfg.Writers
	for w := 0; w < cfg.Writers; w++ {
		writers.Add(1)
		gen := tsgen.NewGenerator(100+w, clock)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
		go func() {
			defer writers.Done()
			for n := 0; n < perWriter && ctx.Err() == nil; n++ {
				if err := transfer(gen, rng); err != nil && ctx.Err() == nil {
					fail(fmt.Errorf("replica soak: writer: %w", err))
					return
				}
				if cfg.WriterPace > 0 {
					time.Sleep(cfg.WriterPace)
				}
			}
		}()
	}

	// One query worker per follower, running through the churn: bounded
	// queries whose lag charge must stay within TIL, plus a periodic
	// zero-epsilon probe that must bounce with a typed redirect and be
	// served by the primary instead.
	stopQueries := make(chan struct{})
	var queries sync.WaitGroup
	for i, n := range nodes {
		queries.Add(1)
		gen := tsgen.NewGenerator(200+i, clock)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*104729 + 11))
		eng := n.eng
		go func() {
			defer queries.Done()
			for round := 0; ; round++ {
				select {
				case <-stopQueries:
					return
				default:
				}
				// A breath between rounds: the interesting interleavings
				// come from the feed churn, not from spinning the engine.
				time.Sleep(200 * time.Microsecond)
				if round%8 == 7 {
					_, err := eng.Begin(core.Query, gen.Next(), core.SRSpec())
					var re *replica.RedirectError
					if !errors.As(err, &re) {
						fail(fmt.Errorf("replica soak: zero-epsilon Begin on a follower returned %v, want a redirect", err))
						return
					}
					redirects.Add(1)
					if err := runPrimaryQuery(engine, gen, rng, cfg.Accounts); err != nil {
						fail(fmt.Errorf("replica soak: redirected query on the primary: %w", err))
						return
					}
					continue
				}
				switch err := runReplicaQuery(eng, gen, rng, cfg); {
				case err == nil:
					queryCommits.Add(1)
				default:
					var ae *tso.AbortError
					if !errors.As(err, &ae) {
						fail(fmt.Errorf("replica soak: follower query: %w", err))
						return
					}
					queryAborts.Add(1)
				}
			}
		}()
	}

	writers.Wait()
	// Stop the query load before waiting for convergence: the primary
	// logs every commit — including the redirected zero-epsilon queries
	// the probes replay there — so a standing query load keeps the head
	// moving and the throttled feed would chase it forever.
	close(stopQueries)
	queries.Wait()
	if err, ok := fatal.Load().(error); ok && err != nil {
		return nil, err
	}

	// Catch-up: wait for every follower to apply the head. Read-side
	// faults cannot silently lose records — a reset kills the connection
	// and the feed resumes from the applied LSN — so the stream drains
	// on its own; the nudge below is a wedge-breaker for the theoretical
	// stall, committed only when no follower has advanced for a while,
	// never a standing load the throttled feed would have to outrun.
	nudgeGen := tsgen.NewGenerator(99, clock)
	nudgeRng := rand.New(rand.NewSource(cfg.Seed ^ 0x0eed))
	deadline := time.Now().Add(cfg.CatchUpGrace)
	var lastMin uint64
	lastAdvance := time.Now()
	for fatal.Load() == nil {
		head := l.Head()
		minApplied := head
		for _, n := range nodes {
			if a := n.f.AppliedLSN(); a < minApplied {
				minApplied = a
			}
		}
		if minApplied >= head {
			break
		}
		if minApplied > lastMin {
			lastMin = minApplied
			lastAdvance = time.Now()
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return nil, fmt.Errorf("replica soak: followers stuck at lsn %d of %d after %v (%d resets injected)",
				minApplied, head, cfg.CatchUpGrace, stats.Resets.Load())
		}
		if time.Since(lastAdvance) > 500*time.Millisecond {
			if err := transfer(nudgeGen, nudgeRng); err != nil && ctx.Err() == nil {
				return nil, fmt.Errorf("replica soak: nudge: %w", err)
			}
			lastAdvance = time.Now()
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, n := range nodes {
		n.feed.Stop()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.ShutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return nil, fmt.Errorf("replica soak: shutdown: %w", err)
	}

	report := &ReplicaReport{
		UpdateCommits: updateCommits.Load(),
		QueryCommits:  queryCommits.Load(),
		QueryAborts:   queryAborts.Load(),
		Redirects:     redirects.Load(),
		Faults:        stats,
		HeadLSN:       l.Head(),
		TotalPrimary:  store.TotalValue(),
		LivePrimary:   engine.Live(),
		Elapsed:       time.Since(start),
		want:          core.Value(cfg.Accounts) * cfg.InitialBalance,
	}
	merged := primRec.Events()
	for _, n := range nodes {
		report.AppliedLSN = append(report.AppliedLSN, n.f.AppliedLSN())
		report.TotalReplica = append(report.TotalReplica, n.f.Store().TotalValue())
		report.LiveReplica = append(report.LiveReplica, n.eng.Live())
		report.ReplicaReads += n.eng.ReadsServed()
		report.LagImported += n.eng.ImportedTotal()
		report.FeedBatches += n.f.Batches()
		merged = append(merged, n.rec.Events()...)
	}
	report.Oracle = esrcheck.Check(merged)
	return report, nil
}

// runReplicaQuery executes one bounded query on a follower.
func runReplicaQuery(eng *replica.Engine, gen *tsgen.Generator, rng *rand.Rand, cfg ReplicaConfig) error {
	txn, err := eng.Begin(core.Query, gen.Next(), core.BoundSpec{Transaction: cfg.TIL})
	if err != nil {
		return err
	}
	for j := 0; j < 3; j++ {
		if _, err := eng.Read(txn, core.ObjectID(1+rng.Intn(cfg.Accounts))); err != nil {
			return err // the engine aborted the attempt internally
		}
	}
	return eng.Commit(txn)
}

// runPrimaryQuery serves one zero-epsilon query on the primary, the way
// the router replays a redirected query.
func runPrimaryQuery(engine *tso.Engine, gen *tsgen.Generator, rng *rand.Rand, accounts int) error {
	for {
		txn, err := engine.Begin(core.Query, gen.Next(), core.SRSpec())
		if err != nil {
			return err
		}
		_, err = engine.Read(txn, core.ObjectID(1+rng.Intn(accounts)))
		if err == nil {
			return engine.Commit(txn)
		}
		var ae *tso.AbortError
		if errors.As(err, &ae) {
			continue // a strict query raced an update; fresh timestamp
		}
		_ = engine.Abort(txn)
		return err
	}
}
