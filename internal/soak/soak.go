// Package soak drives the banking workload end to end — real TCP, real
// clients, real server — through a fault-injecting network and checks
// that the robustness layer holds: no leaked transactions, no stranded
// engine state, money conserved, and a clean graceful shutdown at the
// end. It is the adversarial-schedule counterpart of the experiment
// package's well-behaved sweeps: the paper's prototype assumed a polite
// network; this harness assumes the opposite.
//
// The workload is the Figure 1 banking scenario reduced to its invariant
// core: tellers move money between accounts with zero-sum transfers
// while auditors run bounded-inconsistency sum queries. Zero-sum
// transfers make the conservation check robust to at-least-once
// delivery — when a commit response is swallowed by the network, the
// client cannot know whether the commit landed and may resubmit, but a
// double-applied transfer still conserves the total.
//
// Both the soak test (internal/soak) and esr-bench -soak run through
// Run, so a schedule that fails in CI is reproducible from the command
// line with the same flags.
package soak

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/epsilondb/epsilondb/internal/client"
	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/esrcheck"
	"github.com/epsilondb/epsilondb/internal/faultnet"
	"github.com/epsilondb/epsilondb/internal/history"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/server"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

// Config parameterizes one soak run. The zero value is not runnable; use
// DefaultConfig.
type Config struct {
	// Clients is the number of concurrent banking clients (the MPL).
	Clients int
	// TxnsPerClient is how many programs each client must drive to
	// completion.
	TxnsPerClient int
	// Accounts is the database size; balances start at InitialBalance.
	Accounts       int
	InitialBalance core.Value
	// QueryFraction is the probability a program is an audit query
	// (sum over a random account subset, bounded by TIL) instead of a
	// zero-sum transfer.
	QueryFraction float64
	// TIL bounds audit queries; TEL bounds transfers.
	TIL core.Distance
	TEL core.Distance
	// Seed drives the workload generators (per-client sub-seeds) — the
	// fault schedule has its own seed inside Faults.
	Seed int64

	// Pipeline, when > 1, dials every client with the tagged pipelined
	// wire protocol at that depth (client.Options.Pipeline) and drives
	// programs through RunRetryBatched, so a transaction's operations
	// travel in one CRC-framed Batch frame with many tags outstanding
	// per connection — exactly the surface the fault schedule attacks.
	// Zero or one keeps the seed's synchronous one-op-per-round-trip
	// protocol.
	Pipeline int
	// BatchOps caps the operations per Batch frame when Pipeline > 1;
	// <= 0 ships each whole program (ops + commit) in a single frame.
	BatchOps int

	// Faults is the client-side fault schedule; every dialed connection
	// gets a derived deterministic schedule.
	Faults faultnet.Config

	// CallTimeout bounds each client RPC (needed to survive silent
	// drops), IdleTimeout reaps silent connections server-side, and
	// ShutdownGrace bounds the final drain.
	CallTimeout   time.Duration
	IdleTimeout   time.Duration
	WriteTimeout  time.Duration
	ShutdownGrace time.Duration

	// MaxDuration aborts the whole run if the workload has not finished
	// in time (a pathological fault schedule can starve all progress).
	// Zero means no bound.
	MaxDuration time.Duration

	// Certify records the engine's full trace and runs the offline
	// epsilon-serializability oracle (internal/esrcheck) over it after
	// shutdown; an uncertified history fails Report.Err. At-least-once
	// resubmission is compatible with certification: a resubmitted
	// program is a fresh attempt with its own timestamp, checked
	// independently.
	Certify bool

	// Logf receives run diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// DefaultConfig returns a short adversarial run: drops, added latency
// and periodic mid-frame resets, with timeouts tight enough to keep the
// run fast.
func DefaultConfig() Config {
	return Config{
		Clients:        4,
		TxnsPerClient:  25,
		Accounts:       32,
		InitialBalance: 5_000,
		QueryFraction:  0.3,
		TIL:            10_000,
		TEL:            core.NoLimit,
		Seed:           1,
		Faults: faultnet.Config{
			Seed:             1,
			WriteLatency:     200 * time.Microsecond,
			LatencyJitter:    0.5,
			DropProb:         0.01,
			PartialReadMax:   7,
			ResetAfterWrites: 40,
		},
		CallTimeout:   150 * time.Millisecond,
		IdleTimeout:   250 * time.Millisecond,
		WriteTimeout:  250 * time.Millisecond,
		ShutdownGrace: 5 * time.Second,
		MaxDuration:   2 * time.Minute,
		Certify:       true,
	}
}

// Report summarizes a run.
type Report struct {
	// Committed counts programs driven to a successful commit;
	// Transfers and Queries split it by kind.
	Committed, Transfers, Queries int64
	// Attempts counts transaction attempts, committed or aborted.
	Attempts int64
	// Reconnects counts connections abandoned for a fresh dial after a
	// network-level failure.
	Reconnects int64
	// TypedConnFailures counts program failures surfaced as the
	// pipelined client's typed teardown errors (ErrConnBroken,
	// ErrCallTimeout, ErrClientClosed) — the demultiplexer failing
	// outstanding tagged calls loudly instead of hanging them.
	TypedConnFailures int64
	// Faults is the shared counter set of every injected fault.
	Faults *faultnet.Stats
	// LiveAfterShutdown is the engine's live-transaction gauge after
	// the graceful shutdown — nonzero means leaked transactions.
	LiveAfterShutdown int
	// TotalBefore/TotalAfter are the bank's total balance before and
	// after; transfers are zero-sum, so inequality means lost money.
	TotalBefore, TotalAfter core.Value
	// Snapshot is the server's final counter state.
	Snapshot metrics.Snapshot
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// Oracle is the offline checker's verdict over the recorded trace
	// (nil unless Config.Certify was set).
	Oracle *esrcheck.Report
}

// String renders the report for the command line.
func (r *Report) String() string {
	return fmt.Sprintf(
		"soak: %d committed (%d transfers, %d queries) in %v; %d attempts, %d reconnects (%d typed teardowns)\n"+
			"faults injected: %d delays, %d drops, %d partials, %d resets\n"+
			"after shutdown: %d live txns, total balance %d (start %d), %d commits / %d aborts server-side",
		r.Committed, r.Transfers, r.Queries, r.Elapsed.Round(time.Millisecond),
		r.Attempts, r.Reconnects, r.TypedConnFailures,
		r.Faults.Delays.Load(), r.Faults.Drops.Load(), r.Faults.Partials.Load(), r.Faults.Resets.Load(),
		r.LiveAfterShutdown, r.TotalAfter, r.TotalBefore,
		r.Snapshot.Commits, r.Snapshot.Aborts())
}

// Err returns a non-nil error when the run violated an invariant the
// robustness layer must hold even under faults.
func (r *Report) Err() error {
	switch {
	case r.LiveAfterShutdown != 0:
		return fmt.Errorf("soak: %d transactions still live after shutdown", r.LiveAfterShutdown)
	case r.TotalAfter != r.TotalBefore:
		return fmt.Errorf("soak: conservation violated: total %d -> %d", r.TotalBefore, r.TotalAfter)
	case r.Snapshot.Begins != r.Snapshot.Commits+r.Snapshot.Aborts():
		return fmt.Errorf("soak: counter drift: %d begins != %d commits + %d aborts",
			r.Snapshot.Begins, r.Snapshot.Commits, r.Snapshot.Aborts())
	}
	if r.Oracle != nil {
		if err := r.Oracle.Err(); err != nil {
			return fmt.Errorf("soak: history refuted: %w", err)
		}
	}
	return nil
}

// Run executes the soak: server up, clients hammering through faults,
// graceful shutdown, invariants measured. The returned error covers
// infrastructure failures (bind, populate, deadline exceeded); invariant
// verdicts live in Report.Err so callers can print the report either way.
func Run(cfg Config) (*Report, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Clients <= 0 || cfg.TxnsPerClient <= 0 || cfg.Accounts < 2 {
		return nil, fmt.Errorf("soak: need ≥1 client, ≥1 txn, ≥2 accounts; got %+v", cfg)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}

	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for i := 1; i <= cfg.Accounts; i++ {
		if _, err := st.Create(core.ObjectID(i), cfg.InitialBalance); err != nil {
			return nil, err
		}
	}
	col := &metrics.Collector{}
	opts := tso.Options{Collector: col}
	var rec *history.Recorder
	if cfg.Certify {
		rec = history.NewRecorder()
		opts.Tracer = rec
	}
	engine := tso.NewEngine(st, opts)
	clock := &tsgen.LogicalClock{}
	srv := server.New(engine, server.Options{
		Clock:        clock,
		Logf:         logf,
		IdleTimeout:  cfg.IdleTimeout,
		WriteTimeout: cfg.WriteTimeout,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	ctx := context.Background()
	if cfg.MaxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.MaxDuration)
		defer cancel()
	}

	stats := &faultnet.Stats{}
	counts := &counters{}
	dial := faultnet.Dialer(cfg.Faults, stats)
	start := time.Now()

	var wg sync.WaitGroup
	var workerErr atomic.Value // first fatal worker error
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			w := &worker{
				cfg:    cfg,
				addr:   addr.String(),
				site:   site,
				clock:  clock,
				dial:   dial,
				rng:    rand.New(rand.NewSource(cfg.Seed + int64(site)*7919)),
				counts: counts,
				logf:   logf,
			}
			if err := w.run(ctx); err != nil {
				workerErr.CompareAndSwap(nil, err)
			}
		}(i + 1)
	}
	wg.Wait()

	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.ShutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return nil, fmt.Errorf("soak: shutdown: %w", err)
	}
	report := &Report{
		Committed:         counts.committed.Load(),
		Transfers:         counts.transfers.Load(),
		Queries:           counts.queries.Load(),
		Attempts:          counts.attempts.Load(),
		Reconnects:        counts.reconnects.Load(),
		TypedConnFailures: counts.typedConnFailures.Load(),
		Faults:            stats,
		TotalBefore:       core.Value(cfg.Accounts) * cfg.InitialBalance,
		Elapsed:           time.Since(start),
		LiveAfterShutdown: engine.Live(),
		TotalAfter:        st.TotalValue(),
		Snapshot:          col.Snapshot(),
	}
	if rec != nil {
		report.Oracle = esrcheck.Check(rec.Events())
	}
	if err, ok := workerErr.Load().(error); ok && err != nil {
		return report, err
	}
	return report, nil
}

// counters is the workers' shared tally.
type counters struct {
	committed, transfers, queries, attempts, reconnects atomic.Int64
	typedConnFailures                                   atomic.Int64
}

// worker drives one client site to completion, reconnecting through
// network faults.
type worker struct {
	cfg    Config
	addr   string
	site   int
	clock  *tsgen.LogicalClock
	dial   func(string) (net.Conn, error)
	rng    *rand.Rand
	counts *counters
	logf   func(string, ...any)
	// resume carries the last issued timestamp across reconnects: the
	// replacement client floors its generator past it, so the site never
	// reissues a (tick, site) pair no matter what the fresh clock-sync
	// correction estimates.
	resume tsgen.Timestamp
}

// maxConsecutiveFailures is the livelock valve: a fault schedule that
// never lets a program through (every write dropped, say) must fail the
// run loudly instead of spinning until MaxDuration.
const maxConsecutiveFailures = 200

func (w *worker) run(ctx context.Context) error {
	var c *client.Client
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	for done := 0; done < w.cfg.TxnsPerClient; done++ {
		p, isQuery := w.nextProgram()
		failures := 0
		for {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("soak: site %d timed out after %d/%d txns: %w",
					w.site, done, w.cfg.TxnsPerClient, err)
			}
			if c == nil {
				var err error
				c, err = w.connect()
				if err != nil {
					if failures++; failures > maxConsecutiveFailures {
						return fmt.Errorf("soak: site %d cannot reconnect: %w", w.site, err)
					}
					w.counts.reconnects.Add(1)
					continue
				}
			}
			attempts, err := w.runProgram(c, p)
			w.counts.attempts.Add(int64(attempts))
			if err == nil {
				w.counts.committed.Add(1)
				if isQuery {
					w.counts.queries.Add(1)
				} else {
					w.counts.transfers.Add(1)
				}
				break
			}
			// The retry loops only return non-abort errors: a network-
			// level failure (timeout, injected reset, torn frame,
			// desynced stream) or a server-side generic error after the
			// engine reaped our transaction. Either way the connection's
			// state is suspect — drop it and redial. Transfers are
			// zero-sum, so resubmitting a possibly-committed program
			// cannot break conservation.
			if errors.Is(err, client.ErrConnBroken) ||
				errors.Is(err, client.ErrCallTimeout) ||
				errors.Is(err, client.ErrClientClosed) {
				w.counts.typedConnFailures.Add(1)
			}
			if failures++; failures > maxConsecutiveFailures {
				return fmt.Errorf("soak: site %d stuck on program after %d failures: %w",
					w.site, failures, err)
			}
			w.resume = c.LastTimestamp()
			c.Close()
			c = nil
			w.counts.reconnects.Add(1)
		}
	}
	return nil
}

// runProgram drives one program to commit through the client's retry
// loop: pipelined clients ship the operations in Batch frames so many
// tagged calls ride each connection; synchronous clients keep the
// seed's one-op-per-round-trip protocol.
func (w *worker) runProgram(c *client.Client, p *core.Program) (int, error) {
	if w.cfg.Pipeline > 1 {
		_, attempts, err := c.RunRetryBatched(p, w.cfg.BatchOps, 0)
		return attempts, err
	}
	_, attempts, err := c.RunRetry(p, 0)
	return attempts, err
}

// connect dials through the fault-injecting dialer. The sync handshake
// itself runs over the faulty wire, so a connection can be dead on
// arrival — the caller retries.
func (w *worker) connect() (*client.Client, error) {
	return client.Dial(w.addr, client.Options{
		Site:        w.site,
		Clock:       w.clock,
		CallTimeout: w.cfg.CallTimeout,
		Dialer:      w.dial,
		Pipeline:    w.cfg.Pipeline,
		ResumeAfter: w.resume,
		// One sync probe: every connection shares the logical clock, and
		// the default four probes eat into the write budget of conns
		// whose fault schedule resets them after N frames.
		SyncSamples: 1,
	})
}

// nextProgram generates a transfer or an audit query.
func (w *worker) nextProgram() (*core.Program, bool) {
	if w.rng.Float64() < w.cfg.QueryFraction {
		// Audit: sum a random clutch of accounts under TIL.
		n := 3 + w.rng.Intn(5)
		objs := make([]core.ObjectID, 0, n)
		for i := 0; i < n; i++ {
			objs = append(objs, core.ObjectID(1+w.rng.Intn(w.cfg.Accounts)))
		}
		return core.NewQuery(w.cfg.TIL, objs...), true
	}
	// Teller: move a random amount between two distinct accounts.
	from := core.ObjectID(1 + w.rng.Intn(w.cfg.Accounts))
	to := from
	for to == from {
		to = core.ObjectID(1 + w.rng.Intn(w.cfg.Accounts))
	}
	amount := core.Value(1 + w.rng.Intn(200))
	return core.NewUpdate(w.cfg.TEL).WriteDelta(from, -amount).WriteDelta(to, amount), false
}
