// Package experiment reproduces the paper's performance evaluation: it
// runs closed-loop multiprogramming experiments against the epsilon-TO
// engine and derives the series behind every figure of §8.
//
//	Figure  7 — throughput vs multiprogramming level (four epsilon levels)
//	Figure  8 — successful inconsistent operations vs MPL
//	Figure  9 — number of aborts (retries) vs MPL
//	Figure 10 — total operations executed (R+W) vs MPL
//	Figure 11 — throughput vs TIL at MPL 4 (TEL held at three levels)
//	Figure 12 — throughput vs OIL at MPL 4 (TIL held at three levels)
//	Figure 13 — average operations per transaction vs OIL (TIL varies)
//
// The multiprogramming level is the number of concurrent closed-loop
// clients, each synchronously submitting one operation at a time and
// resubmitting aborted transactions with fresh timestamps until they
// commit — exactly the prototype's client behaviour (§6). A configurable
// per-operation latency stands in for the prototype's RPC cost; scaling
// it uniformly preserves the relative shapes the figures report.
package experiment

import (
	"fmt"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/workload"
)

// Protocol selects the concurrency control under test.
type Protocol string

const (
	// ProtocolTO is the paper's engine: timestamp ordering with the ESR
	// relaxations (SR when all bounds are zero).
	ProtocolTO Protocol = "tso"
	// ProtocolTwoPL is the strict two-phase-locking baseline the paper
	// deliberately avoided (ablation A1).
	ProtocolTwoPL Protocol = "2pl"
	// ProtocolMVTO is multi-version timestamp ordering, which §5.1
	// contrasts with the bounded write history (ablation A1).
	ProtocolMVTO Protocol = "mvto"
)

// Config is one experiment cell.
type Config struct {
	// MPL is the multiprogramming level: the number of client goroutines.
	MPL int
	// Duration is the measurement window.
	Duration time.Duration
	// Warmup runs before measurement begins; counters reset after it.
	Warmup time.Duration
	// Workload configures the transaction generator.
	Workload workload.Params
	// OILMin/OILMax and OELMin/OELMax bound the per-object limits drawn
	// at load time (§6: "the values of OIL and OEL are randomly
	// generated within a specified range").
	OILMin, OILMax core.Distance
	OELMin, OELMax core.Distance
	// OpLatency is the simulated per-operation server service time (the
	// part of the prototype's 17–20 ms RPC spent in the server).
	// Operation service occupies one of the ServerThreads slots, so the
	// server's total capacity is ServerThreads/OpLatency operations per
	// second.
	OpLatency time.Duration
	// NetLatency is the per-operation network/client time — the
	// prototype's ~11 ms null-RPC cost — which elapses outside the
	// server slots and therefore does not consume shared capacity.
	NetLatency time.Duration
	// ServerThreads is the number of operations the server can service
	// concurrently — the capacity of the paper's single multithreaded
	// DECstation server. Work wasted on aborted attempts consumes this
	// shared capacity, which is what makes throughput thrash beyond the
	// saturation point. Zero means 3.
	ServerThreads int
	// HistoryDepth is the per-object committed-write history length
	// (paper: 20).
	HistoryDepth int
	// Seed makes the database load and workloads reproducible.
	Seed int64
	// Protocol selects the concurrency control; empty means ProtocolTO.
	Protocol Protocol
	// MaxAttempts caps retries per transaction as a hang guard; zero
	// means 10,000.
	MaxAttempts int
	// Reps repeats the cell and reports the median-throughput run,
	// suppressing scheduler noise the way the paper repeated its tests
	// ("the tests were repeated a few times to eliminate any
	// disturbances"). Zero means 1.
	Reps int
	// RealTime runs the cell against the wall clock instead of the
	// default virtual timeline. Virtual cells are noise-free and
	// complete in milliseconds regardless of Duration; real-time cells
	// reproduce the prototype's wall-clock regime (use with
	// paper-scale latencies).
	RealTime bool
}

// DefaultConfig is the scaled-down version of the paper's setup: the
// same workload shape with a ~1 ms effective operation latency (the
// prototype's RPC cost was 17–20 ms) so a full sweep finishes in
// seconds while keeping the 50–60 txn/s single-client regime.
func DefaultConfig(level workload.Level) Config {
	return Config{
		MPL:           4,
		Duration:      time.Second,
		Warmup:        200 * time.Millisecond,
		Workload:      workload.DefaultParams(level),
		OILMin:        core.NoLimit,
		OILMax:        core.NoLimit,
		OELMin:        core.NoLimit,
		OELMax:        core.NoLimit,
		OpLatency:     time.Millisecond,
		NetLatency:    0,
		ServerThreads: 3,
		HistoryDepth:  20,
		Seed:          1,
		Protocol:      ProtocolTO,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MPL <= 0 {
		return fmt.Errorf("experiment: MPL must be positive, got %d", c.MPL)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("experiment: Duration must be positive, got %v", c.Duration)
	}
	switch c.Protocol {
	case "", ProtocolTO, ProtocolTwoPL, ProtocolMVTO:
	default:
		return fmt.Errorf("experiment: unknown protocol %q", c.Protocol)
	}
	return c.Workload.Validate()
}

// Result is the outcome of one cell.
type Result struct {
	// Config echoes the cell's key parameters.
	MPL int
	// Elapsed is the actual measurement duration.
	Elapsed time.Duration
	// Commits, Aborts, TotalOps, InconsistentOps and OpsPerCommit are
	// the paper's metrics over the measurement window.
	Commits         int64
	Aborts          int64
	TotalOps        int64
	InconsistentOps int64
	WastedOps       int64
	Waits           int64
	OpsPerCommit    float64
	// Throughput is committed transactions per second.
	Throughput float64
	// ProperMisses counts inexact proper-value lookups (history depth
	// exceeded) during the whole run including warmup.
	ProperMisses int64
	// Label names the sweep cell this result came from (set by the
	// interleaved sweep driver).
	Label string
	// AbortBreakdown maps abort-reason names to counts over the window.
	AbortBreakdown map[string]int64
	// OpP50/95/99 are operation-latency percentiles (reads and writes
	// merged) over the measurement window, on the run's timeline —
	// virtual durations for vclock runs, wall durations for -realtime.
	// WaitP* and CommitP* cover the strict-ordering wait and commit
	// paths. All are zero for engines that do not record latencies.
	OpP50, OpP95, OpP99             time.Duration
	WaitP50, WaitP95, WaitP99       time.Duration
	CommitP50, CommitP95, CommitP99 time.Duration
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("mpl=%d tput=%.1f txn/s commits=%d aborts=%d ops=%d incons=%d ops/txn=%.1f",
		r.MPL, r.Throughput, r.Commits, r.Aborts, r.TotalOps, r.InconsistentOps, r.OpsPerCommit)
}
