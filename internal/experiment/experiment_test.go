package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/workload"
)

// quickConfig is a small, fast cell on the virtual timeline.
func quickConfig(level workload.Level) Config {
	cfg := DefaultConfig(level)
	cfg.Duration = 300 * time.Millisecond
	cfg.Warmup = 50 * time.Millisecond
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := quickConfig(workload.LevelZero)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.MPL = 0
	if err := bad.Validate(); err == nil {
		t.Error("MPL=0 accepted")
	}
	bad = good
	bad.Duration = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero duration accepted")
	}
	bad = good
	bad.Protocol = "vaporware"
	if err := bad.Validate(); err == nil {
		t.Error("unknown protocol accepted")
	}
	bad = good
	bad.Workload.NumObjects = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestRunProducesActivity(t *testing.T) {
	res, err := Run(quickConfig(workload.LevelHigh))
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Error("no commits in a 300ms virtual window")
	}
	if res.TotalOps == 0 {
		t.Error("no operations executed")
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %f", res.Throughput)
	}
	if res.Elapsed < 290*time.Millisecond || res.Elapsed > 310*time.Millisecond {
		t.Errorf("virtual elapsed = %v, want ≈300ms", res.Elapsed)
	}
	if res.String() == "" {
		t.Error("empty Result.String")
	}
}

func TestRunDeterministicOnVirtualTimeline(t *testing.T) {
	cfg := quickConfig(workload.LevelMedium)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The virtual timeline removes timer noise; runs with the same seed
	// should agree closely (goroutine scheduling can still reorder a
	// handful of operations).
	diff := a.Commits - b.Commits
	if diff < 0 {
		diff = -diff
	}
	if diff > a.Commits/10+2 {
		t.Errorf("virtual runs diverged: %d vs %d commits", a.Commits, b.Commits)
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	cfg := quickConfig(workload.LevelZero)
	cfg.Protocol = Protocol("vaporware")
	if _, err := Run(cfg); err == nil {
		t.Error("unregistered protocol did not error")
	}
}

func TestSRHasZeroInconsistentOps(t *testing.T) {
	res, err := Run(quickConfig(workload.LevelZero))
	if err != nil {
		t.Fatal(err)
	}
	if res.InconsistentOps != 0 {
		t.Errorf("SR run recorded %d inconsistent ops", res.InconsistentOps)
	}
}

func TestESRBeatsSRUnderContention(t *testing.T) {
	// The paper's headline: at a contended MPL, high-epsilon throughput
	// exceeds SR. Use medians over three seeds for robustness.
	run := func(level workload.Level) float64 {
		cfg := quickConfig(level)
		cfg.MPL = 4
		cfg.Duration = 500 * time.Millisecond
		cfg.Reps = 3
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	sr := run(workload.LevelZero)
	esr := run(workload.LevelHigh)
	if esr <= sr {
		t.Errorf("high-epsilon throughput %.1f not above SR %.1f", esr, sr)
	}
}

func TestRunMPLSweepAndFigures(t *testing.T) {
	base := quickConfig(workload.LevelZero)
	base.Duration = 200 * time.Millisecond
	levels := []workload.Level{workload.LevelZero, workload.LevelHigh}
	mpls := []int{1, 2, 3}
	var progressLines int
	s, err := RunMPLSweep(base, mpls, levels, func(string) { progressLines++ })
	if err != nil {
		t.Fatal(err)
	}
	if progressLines != len(levels)*len(mpls) {
		t.Errorf("progress lines = %d, want %d", progressLines, len(levels)*len(mpls))
	}
	f7 := s.Figure7()
	if len(f7.Series) != 2 || len(f7.Series[0].Y) != 3 {
		t.Fatalf("figure 7 shape: %+v", f7)
	}
	f8 := s.Figure8()
	if len(f8.Series) != 1 {
		t.Errorf("figure 8 must omit the zero-epsilon series, got %d series", len(f8.Series))
	}
	if s.Figure9().ID != "fig9" || s.Figure10().ID != "fig10" {
		t.Error("figure ids wrong")
	}
	tp := s.ThrashingPoint(0)
	if tp < 1 || tp > 3 {
		t.Errorf("thrashing point = %d outside sweep range", tp)
	}
}

func TestRunTILSweep(t *testing.T) {
	base := quickConfig(workload.LevelZero)
	base.Duration = 200 * time.Millisecond
	f, results, err := RunTILSweep(base, 2, []core.Distance{0, 10_000}, []core.Distance{1_000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 1 || len(f.Series[0].X) != 2 {
		t.Fatalf("figure 11 shape: %+v", f)
	}
	if f.Series[0].Name != "TEL=1000" {
		t.Errorf("series name = %q", f.Series[0].Name)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d cells, want 2", len(results))
	}
	for _, r := range results {
		if r.Label == "" {
			t.Errorf("cell result missing label: %+v", r)
		}
		// The virtual timeline drives the histograms: with a 1 ms-scale
		// simulated op latency every cell must see nonzero percentiles.
		if r.Commits > 0 && (r.OpP50 <= 0 || r.OpP99 < r.OpP50) {
			t.Errorf("%s: op percentiles p50=%v p99=%v", r.Label, r.OpP50, r.OpP99)
		}
	}
}

func TestRunOILSweep(t *testing.T) {
	base := quickConfig(workload.LevelZero)
	base.Duration = 200 * time.Millisecond
	s, err := RunOILSweep(base, 2, []float64{0, 8}, []core.Distance{10_000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f12, f13 := s.Figure12(), s.Figure13()
	if len(f12.Series) != 1 || len(f13.Series) != 1 {
		t.Fatal("OIL sweep series count wrong")
	}
	// OIL=0 admits no inconsistency on any object: throughput should not
	// exceed the relaxed cell.
	if f12.Series[0].Y[0] > f12.Series[0].Y[1]*1.2 {
		t.Errorf("OIL=0 throughput %f above OIL=8w %f", f12.Series[0].Y[0], f12.Series[0].Y[1])
	}
}

func TestBoundLevelsTable(t *testing.T) {
	f := BoundLevelsTable()
	if f.ID != "table1" || len(f.Series) != 2 {
		t.Fatalf("table shape: %+v", f)
	}
	if f.Series[0].Y[0] != 100_000 || f.Series[1].Y[0] != 10_000 {
		t.Errorf("high level row wrong: %v %v", f.Series[0].Y, f.Series[1].Y)
	}
}

func TestRunHierarchyOverhead(t *testing.T) {
	f, err := RunHierarchyOverhead([]int{1, 4}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	se := f.Series[0]
	if len(se.Y) != 2 || se.Y[0] <= 0 || se.Y[1] <= 0 {
		t.Fatalf("overhead series: %+v", se)
	}
	if _, err := RunHierarchyOverhead([]int{0}, 10); err == nil {
		t.Error("depth 0 accepted")
	}
}

func TestRunHistoryAblation(t *testing.T) {
	base := quickConfig(workload.LevelMedium)
	base.Duration = 200 * time.Millisecond
	f, _, err := RunHistoryAblation(base, []int{1, 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("history ablation series = %d", len(f.Series))
	}
	misses := f.Series[2]
	if misses.Y[0] < misses.Y[1] {
		t.Errorf("K=1 should miss at least as often as K=20: %v", misses.Y)
	}
}

func TestRunCCComparisonSkipsUnregistered(t *testing.T) {
	base := quickConfig(workload.LevelZero)
	base.Duration = 100 * time.Millisecond
	f, _, err := RunCCComparison(base, []int{1}, workload.LevelZero,
		[]Protocol{ProtocolTO, Protocol("vaporware")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 1 || f.Series[0].Name != string(ProtocolTO) {
		t.Errorf("series = %+v", f.Series)
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	f := Figure{
		ID: "figX", Title: "Test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20.5}},
			{Name: "b,quoted", X: []float64{1}, Y: []float64{7}},
		},
	}
	var table bytes.Buffer
	if err := WriteTable(&table, f); err != nil {
		t.Fatal(err)
	}
	out := table.String()
	for _, frag := range []string{"FIGX", "20.5", "a", "b,quoted", "-"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, f); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), csv.String())
	}
	if lines[0] != `x,a,"b,quoted"` {
		t.Errorf("csv header = %q", lines[0])
	}
	if lines[2] != "2,20.5," {
		t.Errorf("csv row = %q", lines[2])
	}
}

func TestScaleForQuickRun(t *testing.T) {
	cfg := DefaultConfig(workload.LevelZero)
	scaled := ScaleForQuickRun(cfg, 10*time.Millisecond, time.Millisecond, 100*time.Microsecond)
	if scaled.Duration != 10*time.Millisecond || scaled.Warmup != time.Millisecond || scaled.OpLatency != 100*time.Microsecond {
		t.Errorf("scaled = %+v", scaled)
	}
}

func TestRunRealTimeWallClock(t *testing.T) {
	// The wall-clock path (-realtime / -paper-scale) shares the harness
	// code; a short cell must still commit work and take real time.
	cfg := quickConfig(workload.LevelHigh)
	cfg.RealTime = true
	cfg.Duration = 150 * time.Millisecond
	cfg.Warmup = 20 * time.Millisecond
	cfg.OpLatency = time.Millisecond
	start := time.Now()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall < 150*time.Millisecond {
		t.Errorf("real-time cell finished in %v", wall)
	}
	if res.Commits == 0 {
		t.Error("no commits on the wall-clock path")
	}
}
