package experiment

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders a figure as an aligned text table: one row per x
// value, one column per series — the same rows/series the paper plots.
func WriteTable(w io.Writer, f Figure) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(&sb, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %16s", s.Name)
	}
	sb.WriteByte('\n')
	for i := 0; i < rows(f); i++ {
		fmt.Fprintf(&sb, "%-14s", trimFloat(xAt(f, i)))
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&sb, " %16s", trimFloat(s.Y[i]))
			} else {
				fmt.Fprintf(&sb, " %16s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders a figure as CSV with an x column and one column per
// series.
func WriteCSV(w io.Writer, f Figure) error {
	var sb strings.Builder
	sb.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(s.Name))
	}
	sb.WriteByte('\n')
	for i := 0; i < rows(f); i++ {
		sb.WriteString(trimFloat(xAt(f, i)))
		for _, s := range f.Series {
			sb.WriteByte(',')
			if i < len(s.Y) {
				sb.WriteString(trimFloat(s.Y[i]))
			}
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// rows returns the longest series length.
func rows(f Figure) int {
	n := 0
	for _, s := range f.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	return n
}

// xAt returns the x value of row i from the first series long enough.
func xAt(f Figure, i int) float64 {
	for _, s := range f.Series {
		if i < len(s.X) {
			return s.X[i]
		}
	}
	return 0
}

// trimFloat renders integers without a decimal point and other values
// with one digit.
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.1f", v)
}

// csvEscape quotes fields containing commas or quotes.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
