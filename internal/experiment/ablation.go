package experiment

import (
	"fmt"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/workload"
)

// RunHistoryAblation measures the effect of the per-object write-history
// depth (§5.1's empirically chosen K=20): throughput, aborts, and
// inexact proper-value lookups at medium epsilon as K varies. Shallow
// histories force the engine to approximate proper values (or abort,
// under AbortOnProperMiss), which distorts inconsistency accounting.
func RunHistoryAblation(base Config, depths []int, progress func(string)) (Figure, []Result, error) {
	base.Workload.TIL = workload.LevelMedium.TIL
	base.Workload.TEL = workload.LevelMedium.TEL
	tput := Series{Name: "closed-loop throughput (txn/s)"}
	aborts := Series{Name: "aborts"}
	misses := Series{Name: "proper misses"}
	var results []Result
	for _, k := range depths {
		cfg := base
		cfg.HistoryDepth = k
		res, err := Run(cfg)
		if err != nil {
			return Figure{}, nil, fmt.Errorf("history ablation k=%d: %w", k, err)
		}
		res.Label = fmt.Sprintf("k=%d", k)
		results = append(results, res)
		if progress != nil {
			progress(fmt.Sprintf("K=%-4d %s misses=%d", k, res, res.ProperMisses))
		}
		x := float64(k)
		tput.X = append(tput.X, x)
		tput.Y = append(tput.Y, res.Throughput)
		aborts.X = append(aborts.X, x)
		aborts.Y = append(aborts.Y, float64(res.Aborts))
		misses.X = append(misses.X, x)
		misses.Y = append(misses.Y, float64(res.ProperMisses))
	}
	return Figure{
		ID:     "abl-hist",
		Title:  "Ablation: write-history depth K (medium epsilon, §5.1)",
		XLabel: "history depth K",
		YLabel: "metric",
		Series: []Series{tput, aborts, misses},
	}, results, nil
}

// RunCCComparison compares the registered concurrency-control protocols
// across multiprogramming levels at the given epsilon level (the ESR
// bounds only act on the TO engine; 2PL and MVTO are serializable
// baselines). Unregistered protocols are skipped.
func RunCCComparison(base Config, mpls []int, level workload.Level, protocols []Protocol, progress func(string)) (Figure, []Result, error) {
	base.Workload.TIL = level.TIL
	base.Workload.TEL = level.TEL
	f := Figure{
		ID:     "abl-cc",
		Title:  fmt.Sprintf("Ablation: concurrency control protocols (%s bounds)", level.Name),
		XLabel: "Multiprogramming Level",
		YLabel: "Closed-loop throughput (txn/s)",
	}
	var registered []Protocol
	var cells []cell
	for _, p := range protocols {
		if _, ok := protocolRegistry[p]; !ok {
			continue
		}
		registered = append(registered, p)
		for _, mpl := range mpls {
			cfg := base
			cfg.MPL = mpl
			cfg.Protocol = p
			cells = append(cells, cell{label: fmt.Sprintf("%-5s mpl=%d", p, mpl), cfg: cfg})
		}
	}
	results, err := runCellsInterleaved(cells, progress)
	if err != nil {
		return Figure{}, nil, fmt.Errorf("cc ablation: %w", err)
	}
	for i, p := range registered {
		se := Series{Name: string(p)}
		for j, mpl := range mpls {
			se.X = append(se.X, float64(mpl))
			se.Y = append(se.Y, results[i*len(mpls)+j].Throughput)
		}
		f.Series = append(f.Series, se)
	}
	return f, results, nil
}

// RunHierarchyOverhead measures the §3.1 caveat that "hierarchical
// specification and control does not come free of charge": the CPU cost
// of the bottom-up Admit walk as hierarchy depth grows, in nanoseconds
// per admitted operation.
func RunHierarchyOverhead(depths []int, opsPerDepth int) (Figure, error) {
	if opsPerDepth <= 0 {
		opsPerDepth = 200_000
	}
	se := Series{Name: "ns per Admit"}
	for _, depth := range depths {
		if depth < 1 {
			return Figure{}, fmt.Errorf("hierarchy overhead: depth %d < 1", depth)
		}
		schema := core.NewSchema()
		parent := core.RootGroup
		spec := core.BoundSpec{Transaction: core.NoLimit}
		for level := 0; level < depth-1; level++ {
			name := fmt.Sprintf("g%d", level)
			g, err := schema.AddGroup(name, parent)
			if err != nil {
				return Figure{}, err
			}
			spec = spec.WithGroup(name, core.NoLimit)
			parent = g
		}
		if err := schema.Assign(1, parent); err != nil {
			return Figure{}, err
		}
		acc, err := core.NewAccumulator(schema, spec, true)
		if err != nil {
			return Figure{}, err
		}
		start := time.Now()
		for i := 0; i < opsPerDepth; i++ {
			if err := acc.Admit(1, 1, core.NoLimit); err != nil {
				return Figure{}, err
			}
		}
		elapsed := time.Since(start)
		se.X = append(se.X, float64(depth))
		se.Y = append(se.Y, float64(elapsed.Nanoseconds())/float64(opsPerDepth))
	}
	return Figure{
		ID:     "abl-hier",
		Title:  "Ablation: hierarchical control overhead (Admit cost vs depth)",
		XLabel: "hierarchy depth (levels)",
		YLabel: "ns per admitted operation",
		Series: []Series{se},
	}, nil
}
