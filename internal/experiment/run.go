package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/mvto"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
	"github.com/epsilondb/epsilondb/internal/twopl"
	"github.com/epsilondb/epsilondb/internal/vclock"
	"github.com/epsilondb/epsilondb/internal/workload"
)

// Engine is the concurrency-control surface the harness drives. The
// epsilon-TO engine implements it; the 2PL and MVTO baselines implement
// the same surface for the ablation experiments.
type Engine interface {
	Begin(kind core.Kind, ts tsgen.Timestamp, spec core.BoundSpec) (core.TxnID, error)
	Read(txn core.TxnID, obj core.ObjectID) (core.Value, error)
	WriteDelta(txn core.TxnID, obj core.ObjectID, delta core.Value) (core.Value, error)
	Commit(txn core.TxnID) error
	Abort(txn core.TxnID) error
}

// engineBuilder constructs an Engine over a populated store. The parker
// integrates the engine's internal waits with the harness timeline; now
// reads that timeline, so latency histograms measure virtual durations on
// the virtual clock and wall durations in -realtime runs. The registry is
// extended by the baseline packages via RegisterProtocol.
type engineBuilder func(store *storage.Store, col *metrics.Collector, parker tso.Parker, now func() time.Duration) Engine

var protocolRegistry = map[Protocol]engineBuilder{
	ProtocolTO: func(store *storage.Store, col *metrics.Collector, parker tso.Parker, now func() time.Duration) Engine {
		return tso.NewEngine(store, tso.Options{Collector: col, Parker: parker, Now: now})
	},
	ProtocolTwoPL: func(store *storage.Store, col *metrics.Collector, parker tso.Parker, now func() time.Duration) Engine {
		return twopl.NewEngine(store, col, parker)
	},
	ProtocolMVTO: func(store *storage.Store, col *metrics.Collector, parker tso.Parker, now func() time.Duration) Engine {
		return mvto.NewEngine(store, col, parker)
	},
}

// RegisterProtocol installs a baseline engine builder (used by the
// ablation packages at init time through the harness's setup code).
func RegisterProtocol(p Protocol, build func(store *storage.Store, col *metrics.Collector, parker tso.Parker, now func() time.Duration) Engine) {
	protocolRegistry[p] = build
}

// Run executes one experiment cell: populate a database, start MPL
// closed-loop clients, measure the counters over the configured window.
// With Reps > 1 the cell runs repeatedly and the median-throughput run
// is reported. Sweeps should prefer runCellsInterleaved, which
// decorrelates periodic machine noise from cell identity.
func Run(cfg Config) (Result, error) {
	reps := cfg.Reps
	if reps <= 1 {
		return runOnce(cfg)
	}
	results := make([]Result, 0, reps)
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1_000_003
		r, err := runOnce(c)
		if err != nil {
			return Result{}, err
		}
		results = append(results, r)
	}
	return medianResult(results), nil
}

// medianResult picks the run with the median throughput.
func medianResult(results []Result) Result {
	sort.Slice(results, func(i, j int) bool { return results[i].Throughput < results[j].Throughput })
	return results[len(results)/2]
}

// cell is one labelled sweep configuration.
type cell struct {
	label string
	cfg   Config
}

// runCell executes a single repetition of a cell. It is a variable so
// orchestration tests can stub the (expensive, internally concurrent)
// cell body and observe scheduling behaviour in isolation.
var runCell = runOnce

// sweepPar holds the sweep worker count; see SetSweepParallelism.
var sweepPar struct {
	mu sync.Mutex
	n  int
}

// SetSweepParallelism sets how many sweep cells run concurrently and
// returns the previous setting. n <= 0 restores the default, GOMAXPROCS;
// n == 1 forces the sequential path (the esr-bench -seq escape hatch).
// Cells are self-contained — each builds its own store, engine, virtual
// timeline and RNGs from the cell seed — so concurrent cells share no
// state and per-cell results are identical to a sequential run.
func SetSweepParallelism(n int) int {
	sweepPar.mu.Lock()
	defer sweepPar.mu.Unlock()
	prev := sweepPar.n
	if n < 0 {
		n = 0
	}
	sweepPar.n = n
	return prev
}

// sweepParallelism reports the effective worker count.
func sweepParallelism() int {
	sweepPar.mu.Lock()
	defer sweepPar.mu.Unlock()
	if sweepPar.n > 0 {
		return sweepPar.n
	}
	return runtime.GOMAXPROCS(0)
}

// runCellsInterleaved executes every cell once per repetition pass —
// visiting all cells before repeating any — and reports the per-cell
// median-throughput result. Interleaving matters on shared machines:
// periodic background load would otherwise always hit the same cells,
// biasing whole regions of a figure. The repetition count is taken from
// the first cell's Reps (minimum 1).
//
// Up to SetSweepParallelism cells run concurrently. Parallelism does not
// change the output: each (cell, rep) derives its seed from the cell
// config and rep index alone, results land in a preassigned slot so the
// median sees them in rep order, progress lines are buffered and emitted
// in the sequential order, and on failure the error reported is the one
// the sequential schedule would have hit first.
func runCellsInterleaved(cells []cell, progress func(string)) ([]Result, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	reps := cells[0].cfg.Reps
	if reps < 1 {
		reps = 1
	}
	all := make([][]Result, len(cells))
	for i := range all {
		all[i] = make([]Result, reps)
	}
	// Job j is rep j/len(cells) of cell j%len(cells): rep-major, the
	// sequential interleaving order.
	total := len(cells) * reps
	run := func(j int) (Result, error) {
		rep, i := j/len(cells), j%len(cells)
		cfg := cells[i].cfg
		cfg.Reps = 1
		cfg.Seed += int64(rep) * 1_000_003
		r, err := runCell(cfg)
		if err != nil {
			return Result{}, fmt.Errorf("%s: %w", cells[i].label, err)
		}
		r.Label = cells[i].label
		return r, nil
	}
	line := func(j int, r Result) string {
		rep, i := j/len(cells), j%len(cells)
		return fmt.Sprintf("[rep %d/%d] %s %s", rep+1, reps, cells[i].label, r)
	}

	workers := sweepParallelism()
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		for j := 0; j < total; j++ {
			r, err := run(j)
			if err != nil {
				return nil, err
			}
			all[j%len(cells)][j/len(cells)] = r
			if progress != nil {
				progress(line(j, r))
			}
		}
	} else {
		var (
			mu       sync.Mutex
			done     = make([]bool, total)
			lines    = make([]string, total)
			emitted  int
			firstErr error
			errJob   = total
		)
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					r, err := run(j)
					mu.Lock()
					if err != nil {
						if j < errJob {
							firstErr, errJob = err, j
						}
					} else {
						all[j%len(cells)][j/len(cells)] = r
						lines[j] = line(j, r)
						done[j] = true
						for progress != nil && emitted < total && done[emitted] {
							progress(lines[emitted])
							emitted++
						}
					}
					mu.Unlock()
				}
			}()
		}
		for j := 0; j < total; j++ {
			jobs <- j
		}
		close(jobs)
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}

	out := make([]Result, len(cells))
	for i := range cells {
		out[i] = medianResult(all[i])
	}
	return out, nil
}

// runOnce executes a single repetition of a cell.
func runOnce(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtocolTO
	}
	build, ok := protocolRegistry[cfg.Protocol]
	if !ok {
		return Result{}, fmt.Errorf("experiment: protocol %q not registered", cfg.Protocol)
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 10_000
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	store := storage.NewStore(storage.Config{HistoryDepth: cfg.HistoryDepth})
	if err := store.Populate(cfg.Workload.NumObjects, 1000, 9999,
		cfg.OILMin, cfg.OILMax, cfg.OELMin, cfg.OELMax, rng); err != nil {
		return Result{}, err
	}
	// The timeline: virtual by default (noise-free, runs in milliseconds
	// of CPU regardless of the configured Duration), wall clock when
	// RealTime is set.
	var timeline vclock.Timeline
	if cfg.RealTime {
		timeline = vclock.NewReal()
	} else {
		timeline = vclock.NewVirtual()
	}

	col := &metrics.Collector{}
	engine := build(store, col, timeline, timeline.Now)
	// latCol records client-perceived operation latencies — network,
	// server queueing, service time, and engine waits together, measured
	// on the run's timeline. It is separate from col because the TO
	// engine also records its internal (engine-only) latencies there, and
	// the two views must not blend in one histogram.
	latCol := &metrics.Collector{}

	// One logical clock shared by all sites: timestamp order equals
	// Begin order, the deterministic stand-in for the prototype's
	// virtually synchronized workstation clocks.
	clock := &tsgen.LogicalClock{}

	// The server's shared capacity: every operation occupies one slot
	// for OpLatency. Wasted operations from aborted attempts consume
	// the same slots as useful ones, coupling the clients the way the
	// prototype's single server did.
	threads := cfg.ServerThreads
	if threads <= 0 {
		threads = 3
	}
	slots := vclock.NewSemaphore(threads)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Register the coordinator and every client before any goroutine
	// starts, so the virtual clock cannot advance prematurely.
	timeline.Enter()
	clients := make([]func(), 0, cfg.MPL)
	for site := 0; site < cfg.MPL; site++ {
		gen := tsgen.NewGenerator(site, clock)
		wl, err := workload.NewGenerator(cfg.Workload, cfg.Seed+int64(site)*9973+7)
		if err != nil {
			timeline.Exit()
			close(stop)
			return Result{}, err
		}
		timeline.Enter()
		jitter := rand.New(rand.NewSource(cfg.Seed ^ int64(site)*7919 ^ 0x5eed))
		clients = append(clients, func() {
			defer timeline.Exit()
			runClient(engine, timeline, gen, wl, cfg.OpLatency, cfg.NetLatency, jitter, slots, maxAttempts, latCol, stop)
		})
	}
	for _, c := range clients {
		wg.Add(1)
		go func(run func()) {
			defer wg.Done()
			run()
		}(c)
	}

	timeline.Sleep(cfg.Warmup)
	before := col.Snapshot()
	engLatBefore := col.LatencySnapshot()
	cliLatBefore := latCol.LatencySnapshot()
	start := timeline.Now()
	timeline.Sleep(cfg.Duration)
	after := col.Snapshot()
	engLatAfter := col.LatencySnapshot()
	cliLatAfter := latCol.LatencySnapshot()
	elapsed := timeline.Now() - start
	close(stop)
	timeline.Exit()
	wg.Wait()

	delta := after.Sub(before)
	engLat := engLatAfter.Sub(engLatBefore)
	cliLat := cliLatAfter.Sub(cliLatBefore)
	ops := cliLat.Ops()
	res := Result{
		MPL:             cfg.MPL,
		Elapsed:         elapsed,
		Commits:         delta.Commits,
		Aborts:          delta.Aborts(),
		TotalOps:        delta.TotalOps(),
		InconsistentOps: delta.InconsistentOps(),
		WastedOps:       delta.WastedOps,
		Waits:           delta.Waits,
		OpsPerCommit:    delta.OpsPerCommit(),
		Throughput:      float64(delta.Commits) / elapsed.Seconds(),
		ProperMisses:    store.ProperMisses(),
		AbortBreakdown:  delta.AbortBreakdown(),
		OpP50:           time.Duration(ops.Quantile(0.50)),
		OpP95:           time.Duration(ops.Quantile(0.95)),
		OpP99:           time.Duration(ops.Quantile(0.99)),
		WaitP50:         time.Duration(engLat[metrics.LatWait].Quantile(0.50)),
		WaitP95:         time.Duration(engLat[metrics.LatWait].Quantile(0.95)),
		WaitP99:         time.Duration(engLat[metrics.LatWait].Quantile(0.99)),
		CommitP50:       time.Duration(cliLat[metrics.LatCommit].Quantile(0.50)),
		CommitP95:       time.Duration(cliLat[metrics.LatCommit].Quantile(0.95)),
		CommitP99:       time.Duration(cliLat[metrics.LatCommit].Quantile(0.99)),
	}
	return res, nil
}

// runClient is one closed-loop client: generate a transaction, submit it
// operation by operation with the simulated per-operation latency, and
// on abort resubmit with a fresh timestamp until it commits (§6).
func runClient(e Engine, timeline vclock.Timeline, gen *tsgen.Generator, wl *workload.Generator, opLatency, netLatency time.Duration, jitter *rand.Rand, slots *vclock.Semaphore, maxAttempts int, latCol *metrics.Collector, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		p := wl.Next()
		for attempt := 0; attempt < maxAttempts; attempt++ {
			ok, fatal := runAttempt(e, timeline, gen, p, opLatency, netLatency, jitter, slots, latCol, stop)
			if ok || fatal {
				break
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}
}

// runAttempt executes one attempt; ok reports commit, fatal reports a
// non-retryable condition (engine rejected Begin, or shutdown). Each
// successful operation's client-perceived latency — network time, server
// queueing, service time, and any engine wait — is recorded into latCol
// on the run's timeline.
func runAttempt(e Engine, timeline vclock.Timeline, gen *tsgen.Generator, p *core.Program, opLatency, netLatency time.Duration, jitter *rand.Rand, slots *vclock.Semaphore, latCol *metrics.Collector, stop <-chan struct{}) (ok, fatal bool) {
	txn, err := e.Begin(p.Kind, gen.Next(), p.Bounds)
	if err != nil {
		return false, true
	}
	for _, op := range p.Ops {
		select {
		case <-stop:
			_ = e.Abort(txn)
			return false, true
		default:
		}
		opStart := timeline.Now()
		// The network/client component of the RPC elapses outside the
		// server, then the service component occupies one server slot —
		// queueing there is the saturation behaviour of the shared
		// server. Both components carry ±50% uniform jitter: constant
		// times phase-lock the closed-loop clients into convoys that no
		// real system exhibits.
		if netLatency > 0 {
			timeline.Sleep(netLatency/2 + time.Duration(jitter.Int63n(int64(netLatency))))
		}
		if opLatency > 0 {
			d := opLatency/2 + time.Duration(jitter.Int63n(int64(opLatency)))
			slots.Acquire(timeline)
			timeline.Sleep(d)
			slots.Release(timeline)
		}
		switch op.Kind {
		case core.OpRead:
			if _, err := e.Read(txn, op.Object); err != nil {
				return false, false
			}
			latCol.ObserveLatency(metrics.LatRead, timeline.Now()-opStart)
		case core.OpWrite:
			if _, err := e.WriteDelta(txn, op.Object, op.Delta); err != nil {
				return false, false
			}
			latCol.ObserveLatency(metrics.LatWrite, timeline.Now()-opStart)
		}
	}
	commitStart := timeline.Now()
	if err := e.Commit(txn); err != nil {
		return false, false
	}
	latCol.ObserveLatency(metrics.LatCommit, timeline.Now()-commitStart)
	return true, false
}
