package experiment

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/workload"
)

func TestMedianResult(t *testing.T) {
	mk := func(tps ...float64) []Result {
		out := make([]Result, len(tps))
		for i, tp := range tps {
			out[i] = Result{Throughput: tp, Commits: int64(tp)}
		}
		return out
	}
	// Odd count: the true median.
	if r := medianResult(mk(3, 1, 2)); r.Throughput != 2 {
		t.Errorf("median of {1,2,3} = %v, want 2", r.Throughput)
	}
	// Even count: the upper of the two middle runs — a real run, never an
	// interpolated value, so every reported figure comes from one
	// internally consistent repetition.
	if r := medianResult(mk(4, 1, 3, 2)); r.Throughput != 3 {
		t.Errorf("even-rep median of {1,2,3,4} = %v, want 3", r.Throughput)
	}
	if r := medianResult(mk(7)); r.Throughput != 7 {
		t.Errorf("single-rep median = %v, want 7", r.Throughput)
	}
}

func TestRunCellsInterleavedEmpty(t *testing.T) {
	for _, workers := range []int{1, 8} {
		prev := SetSweepParallelism(workers)
		res, err := runCellsInterleaved(nil, func(string) {
			t.Error("progress called with no cells")
		})
		SetSweepParallelism(prev)
		if err != nil || res != nil {
			t.Errorf("workers=%d: empty cell list = %v, %v; want nil, nil", workers, res, err)
		}
	}
}

// stubCells installs a deterministic fake cell runner whose result is a
// pure function of the config, with a seed-dependent sleep so concurrent
// completion order is shaken, and returns a small sweep over it.
func stubCells(t *testing.T, reps int) []cell {
	t.Helper()
	prevRun := runCell
	runCell = func(cfg Config) (Result, error) {
		time.Sleep(time.Duration(cfg.Seed%7) * time.Millisecond)
		return Result{
			MPL:        cfg.MPL,
			Commits:    cfg.Seed,
			Throughput: float64(cfg.Seed % 1009),
		}, nil
	}
	t.Cleanup(func() { runCell = prevRun })
	cells := make([]cell, 5)
	for i := range cells {
		cfg := quickConfig(workload.LevelZero)
		cfg.MPL = i + 1
		cfg.Seed = int64(i+1) * 31
		cfg.Reps = reps
		cells[i] = cell{label: fmt.Sprintf("cell%d", i), cfg: cfg}
	}
	return cells
}

// TestParallelSweepMatchesSequential pins the determinism contract of
// the worker-pool mode: identical results in identical order, and the
// progress callback sees the exact line sequence of a sequential run.
func TestParallelSweepMatchesSequential(t *testing.T) {
	cells := stubCells(t, 4)

	runWith := func(workers int) ([]Result, []string) {
		prev := SetSweepParallelism(workers)
		defer SetSweepParallelism(prev)
		var lines []string
		res, err := runCellsInterleaved(cells, func(s string) { lines = append(lines, s) })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, lines
	}

	seqRes, seqLines := runWith(1)
	parRes, parLines := runWith(8)

	if len(seqLines) != len(cells)*4 {
		t.Fatalf("sequential progress lines = %d, want %d", len(seqLines), len(cells)*4)
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Errorf("parallel results differ from sequential:\n seq %v\n par %v", seqRes, parRes)
	}
	if !reflect.DeepEqual(seqLines, parLines) {
		t.Errorf("parallel progress lines differ from sequential:\n seq %q\n par %q", seqLines, parLines)
	}
}

// TestParallelSweepReportsFirstSequentialError: when cells fail, the
// parallel mode must surface the error the sequential schedule would
// have hit first, not whichever worker lost the race.
func TestParallelSweepReportsFirstSequentialError(t *testing.T) {
	prevRun := runCell
	boom := errors.New("boom")
	runCell = func(cfg Config) (Result, error) {
		if cfg.MPL >= 3 {
			return Result{}, fmt.Errorf("mpl %d: %w", cfg.MPL, boom)
		}
		return Result{Throughput: float64(cfg.MPL)}, nil
	}
	t.Cleanup(func() { runCell = prevRun })
	cells := make([]cell, 6)
	for i := range cells {
		cfg := quickConfig(workload.LevelZero)
		cfg.MPL = i + 1
		cells[i] = cell{label: fmt.Sprintf("cell%d", i), cfg: cfg}
	}
	prev := SetSweepParallelism(8)
	defer SetSweepParallelism(prev)
	_, err := runCellsInterleaved(cells, nil)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// Job order is rep-major, so cell2 (MPL 3) errors first.
	if want := "cell2: mpl 3"; err.Error() != want+": boom" {
		t.Errorf("err = %q, want %q", err, want+": boom")
	}
}

// TestParallelSweepRealCells runs real virtual-timeline cells through
// both modes. Cell bodies are internally concurrent, so per-cell counters
// can diverge slightly between any two runs (see
// TestRunDeterministicOnVirtualTimeline); the orchestration guarantees
// checked here are label order, progress count, and plausible results.
func TestParallelSweepRealCells(t *testing.T) {
	var cells []cell
	for i, mpl := range []int{1, 2, 5} {
		cfg := quickConfig(workload.LevelZero)
		cfg.MPL = mpl
		cfg.Reps = 2
		cells = append(cells, cell{label: fmt.Sprintf("mpl=%d", mpl), cfg: cfg})
		_ = i
	}
	prev := SetSweepParallelism(4)
	defer SetSweepParallelism(prev)
	progress := 0
	res, err := runCellsInterleaved(cells, func(string) { progress++ })
	if err != nil {
		t.Fatal(err)
	}
	if progress != len(cells)*2 {
		t.Errorf("progress calls = %d, want %d", progress, len(cells)*2)
	}
	if len(res) != len(cells) {
		t.Fatalf("results = %d, want %d", len(res), len(cells))
	}
	for i, r := range res {
		if r.Label != cells[i].label {
			t.Errorf("result %d label = %q, want %q", i, r.Label, cells[i].label)
		}
		if r.Commits == 0 || r.Throughput <= 0 {
			t.Errorf("cell %q produced no work: %+v", cells[i].label, r)
		}
	}
}
