package experiment

import (
	"encoding/json"
	"io"
	"time"
)

// cellJSON is the machine-readable per-cell record emitted alongside each
// figure: the paper's counters plus the observability layer's latency
// percentiles and abort-reason mix. Durations are milliseconds on the
// run's timeline (virtual for vclock runs, wall for -realtime).
type cellJSON struct {
	Figure          string           `json:"figure,omitempty"`
	Cell            string           `json:"cell"`
	MPL             int              `json:"mpl"`
	ElapsedMs       float64          `json:"elapsed_ms"`
	Throughput      float64          `json:"throughput_txn_s"`
	Commits         int64            `json:"commits"`
	Aborts          int64            `json:"aborts"`
	AbortBreakdown  map[string]int64 `json:"abort_breakdown,omitempty"`
	TotalOps        int64            `json:"total_ops"`
	InconsistentOps int64            `json:"inconsistent_ops"`
	WastedOps       int64            `json:"wasted_ops"`
	Waits           int64            `json:"waits"`
	OpsPerCommit    float64          `json:"ops_per_commit"`
	ProperMisses    int64            `json:"proper_misses"`
	OpP50Ms         float64          `json:"op_p50_ms"`
	OpP95Ms         float64          `json:"op_p95_ms"`
	OpP99Ms         float64          `json:"op_p99_ms"`
	WaitP50Ms       float64          `json:"wait_p50_ms"`
	WaitP95Ms       float64          `json:"wait_p95_ms"`
	WaitP99Ms       float64          `json:"wait_p99_ms"`
	CommitP50Ms     float64          `json:"commit_p50_ms"`
	CommitP95Ms     float64          `json:"commit_p95_ms"`
	CommitP99Ms     float64          `json:"commit_p99_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteCellsJSON writes one JSON object per line for every cell of a
// figure — the bench's machine-readable companion to the aligned tables.
func WriteCellsJSON(w io.Writer, figureID string, results []Result) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		rec := cellJSON{
			Figure:          figureID,
			Cell:            r.Label,
			MPL:             r.MPL,
			ElapsedMs:       ms(r.Elapsed),
			Throughput:      r.Throughput,
			Commits:         r.Commits,
			Aborts:          r.Aborts,
			AbortBreakdown:  r.AbortBreakdown,
			TotalOps:        r.TotalOps,
			InconsistentOps: r.InconsistentOps,
			WastedOps:       r.WastedOps,
			Waits:           r.Waits,
			OpsPerCommit:    r.OpsPerCommit,
			ProperMisses:    r.ProperMisses,
			OpP50Ms:         ms(r.OpP50),
			OpP95Ms:         ms(r.OpP95),
			OpP99Ms:         ms(r.OpP99),
			WaitP50Ms:       ms(r.WaitP50),
			WaitP95Ms:       ms(r.WaitP95),
			WaitP99Ms:       ms(r.WaitP99),
			CommitP50Ms:     ms(r.CommitP50),
			CommitP95Ms:     ms(r.CommitP95),
			CommitP99Ms:     ms(r.CommitP99),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
