package experiment

import (
	"fmt"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/workload"
)

// Series is one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one reproduced figure: labelled series over a shared x axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// MPLSweep holds the results of the first test set (§7): every epsilon
// level crossed with every multiprogramming level, with OIL/OEL held
// high. One sweep yields Figures 7–10.
type MPLSweep struct {
	Levels []workload.Level
	MPLs   []int
	// Cells[levelIdx][mplIdx] is the cell result.
	Cells [][]Result
}

// RunMPLSweep executes the sweep. base supplies everything except MPL
// and the transaction bounds.
func RunMPLSweep(base Config, mpls []int, levels []workload.Level, progress func(string)) (*MPLSweep, error) {
	s := &MPLSweep{Levels: levels, MPLs: mpls}
	var cells []cell
	for _, level := range levels {
		for _, mpl := range mpls {
			cfg := base
			cfg.MPL = mpl
			cfg.Workload.TIL = level.TIL
			cfg.Workload.TEL = level.TEL
			cells = append(cells, cell{label: fmt.Sprintf("%-14s mpl=%d", level.Name, mpl), cfg: cfg})
		}
	}
	results, err := runCellsInterleaved(cells, progress)
	if err != nil {
		return nil, fmt.Errorf("mpl sweep: %w", err)
	}
	for i := range levels {
		s.Cells = append(s.Cells, results[i*len(mpls):(i+1)*len(mpls)])
	}
	return s, nil
}

// AllResults flattens the sweep's cells in label order, for the per-cell
// JSON emission.
func (s *MPLSweep) AllResults() []Result {
	var out []Result
	for _, row := range s.Cells {
		out = append(out, row...)
	}
	return out
}

// figure extracts one metric across the sweep.
func (s *MPLSweep) figure(id, title, ylabel string, skipZero bool, metric func(Result) float64) Figure {
	f := Figure{ID: id, Title: title, XLabel: "Multiprogramming Level", YLabel: ylabel}
	for i, level := range s.Levels {
		if skipZero && level.TIL == 0 && level.TEL == 0 {
			continue
		}
		se := Series{Name: level.Name}
		for j, mpl := range s.MPLs {
			se.X = append(se.X, float64(mpl))
			se.Y = append(se.Y, metric(s.Cells[i][j]))
		}
		f.Series = append(f.Series, se)
	}
	return f
}

// Figure7 is throughput vs multiprogramming level.
func (s *MPLSweep) Figure7() Figure {
	return s.figure("fig7", "Throughput vs Multiprogramming Level", "Closed-loop throughput (txn/s)", false,
		func(r Result) float64 { return r.Throughput })
}

// Figure8 is successful inconsistent operations vs MPL. The zero-epsilon
// series is omitted, as in the paper ("we do not have the case of zero
// epsilon here as this corresponds to the SR case").
func (s *MPLSweep) Figure8() Figure {
	return s.figure("fig8", "Successful Inconsistent Operations vs Multiprogramming Level", "Inconsistent operations", true,
		func(r Result) float64 { return float64(r.InconsistentOps) })
}

// Figure9 is the number of aborts (retries) vs MPL.
func (s *MPLSweep) Figure9() Figure {
	return s.figure("fig9", "Number of Aborts vs Multiprogramming Level", "Aborts", false,
		func(r Result) float64 { return float64(r.Aborts) })
}

// Figure10 is the total number of operations executed (R+W) vs MPL.
func (s *MPLSweep) Figure10() Figure {
	return s.figure("fig10", "Number of Operations (R+W) vs Multiprogramming Level", "Operations executed", false,
		func(r Result) float64 { return float64(r.TotalOps) })
}

// ThrashingPoint returns, for a level index, the paper's thrashing point:
// the MPL where throughput begins to drop. Because measured curves hold
// near-peak plateaus before declining, the point is defined as the last
// MPL whose throughput is within 5% of the peak — argmax alone would
// call a flat plateau "thrashed" at its first spike.
func (s *MPLSweep) ThrashingPoint(levelIdx int) int {
	peak := -1.0
	for j := range s.MPLs {
		if t := s.Cells[levelIdx][j].Throughput; t > peak {
			peak = t
		}
	}
	// Extend the plateau contiguously to the right of the peak; a later
	// noisy recovery above the threshold does not un-thrash the curve.
	peakIdx := 0
	for j := range s.MPLs {
		if s.Cells[levelIdx][j].Throughput == peak {
			peakIdx = j
			break
		}
	}
	last := peakIdx
	for j := peakIdx + 1; j < len(s.MPLs); j++ {
		if s.Cells[levelIdx][j].Throughput < 0.95*peak {
			break
		}
		last = j
	}
	return s.MPLs[last]
}

// RunTILSweep reproduces Figure 11: at a fixed MPL, throughput as TIL
// grows, with TEL held at each of the given levels. OIL/OEL stay high so
// only the transaction bounds act. The raw per-cell results accompany the
// figure for machine-readable emission.
func RunTILSweep(base Config, mpl int, tils []core.Distance, tels []core.Distance, progress func(string)) (Figure, []Result, error) {
	f := Figure{ID: "fig11", Title: fmt.Sprintf("Throughput vs Transaction Import Limit (MPL %d)", mpl),
		XLabel: "TIL", YLabel: "Closed-loop throughput (txn/s)"}
	var cells []cell
	for _, tel := range tels {
		for _, til := range tils {
			cfg := base
			cfg.MPL = mpl
			cfg.Workload.TIL = til
			cfg.Workload.TEL = tel
			cells = append(cells, cell{label: fmt.Sprintf("tel=%-6d til=%d", tel, til), cfg: cfg})
		}
	}
	results, err := runCellsInterleaved(cells, progress)
	if err != nil {
		return Figure{}, nil, fmt.Errorf("til sweep: %w", err)
	}
	for i, tel := range tels {
		se := Series{Name: fmt.Sprintf("TEL=%d", tel)}
		for j, til := range tils {
			se.X = append(se.X, float64(til))
			se.Y = append(se.Y, results[i*len(tils)+j].Throughput)
		}
		f.Series = append(f.Series, se)
	}
	return f, results, nil
}

// OILSweep holds the results behind Figures 12 and 13: at a fixed MPL,
// OIL swept in units of w (the mean write delta) with TIL held at each
// of the given levels. OEL and TEL stay high so only the import bounds
// act.
type OILSweep struct {
	MPL     int
	TILs    []core.Distance
	OILsInW []float64
	W       core.Value
	// Cells[tilIdx][oilIdx].
	Cells [][]Result
}

// RunOILSweep executes the sweep.
func RunOILSweep(base Config, mpl int, oilsInW []float64, tils []core.Distance, progress func(string)) (*OILSweep, error) {
	s := &OILSweep{MPL: mpl, TILs: tils, OILsInW: oilsInW, W: base.Workload.MeanWriteDelta}
	var cells []cell
	for _, til := range tils {
		for _, k := range oilsInW {
			cfg := base
			cfg.MPL = mpl
			cfg.Workload.TIL = til
			oil := core.Distance(k * float64(s.W))
			cfg.OILMin, cfg.OILMax = oil, oil
			cells = append(cells, cell{label: fmt.Sprintf("til=%-7d oil=%.1fw", til, k), cfg: cfg})
		}
	}
	results, err := runCellsInterleaved(cells, progress)
	if err != nil {
		return nil, fmt.Errorf("oil sweep: %w", err)
	}
	for i := range tils {
		s.Cells = append(s.Cells, results[i*len(oilsInW):(i+1)*len(oilsInW)])
	}
	return s, nil
}

// AllResults flattens the sweep's cells in label order, for the per-cell
// JSON emission.
func (s *OILSweep) AllResults() []Result {
	var out []Result
	for _, row := range s.Cells {
		out = append(out, row...)
	}
	return out
}

// figure extracts one metric across the OIL sweep.
func (s *OILSweep) figure(id, title, ylabel string, metric func(Result) float64) Figure {
	f := Figure{ID: id, Title: title, XLabel: "OIL (in units of w)", YLabel: ylabel}
	for i, til := range s.TILs {
		se := Series{Name: fmt.Sprintf("TIL=%d", til)}
		for j, k := range s.OILsInW {
			se.X = append(se.X, k)
			se.Y = append(se.Y, metric(s.Cells[i][j]))
		}
		f.Series = append(f.Series, se)
	}
	return f
}

// Figure12 is throughput vs OIL.
func (s *OILSweep) Figure12() Figure {
	return s.figure("fig12", fmt.Sprintf("Throughput vs Object Import Limit (MPL %d)", s.MPL),
		"Closed-loop throughput (txn/s)", func(r Result) float64 { return r.Throughput })
}

// Figure13 is the average number of operations executed per completed
// transaction vs OIL (including operations of aborted attempts).
func (s *OILSweep) Figure13() Figure {
	return s.figure("fig13", fmt.Sprintf("Average Operations per Transaction vs Object Import Limit (MPL %d)", s.MPL),
		"Operations per committed txn", func(r Result) float64 { return r.OpsPerCommit })
}

// BoundLevelsTable reproduces the §7 table of bound magnitudes.
func BoundLevelsTable() Figure {
	f := Figure{ID: "table1", Title: "Approximate magnitude of inconsistency bounds (§7)",
		XLabel: "level", YLabel: "limit"}
	til := Series{Name: "TIL"}
	tel := Series{Name: "TEL"}
	for i, l := range []workload.Level{workload.LevelHigh, workload.LevelMedium, workload.LevelLow} {
		til.X = append(til.X, float64(i))
		til.Y = append(til.Y, float64(l.TIL))
		tel.X = append(tel.X, float64(i))
		tel.Y = append(tel.Y, float64(l.TEL))
	}
	f.Series = []Series{til, tel}
	return f
}

// ScaleForQuickRun shrinks a config's timing for tests and benchmarks.
func ScaleForQuickRun(cfg Config, duration, warmup time.Duration, opLatency time.Duration) Config {
	cfg.Duration = duration
	cfg.Warmup = warmup
	cfg.OpLatency = opLatency
	return cfg
}
