package mvto

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

// TestConcurrentAbortVsBlockedRead drives the abort-while-blocked race:
// a reader waiting on an uncommitted visible version while another
// goroutine aborts the reading attempt. When the writer resolves and the
// reader wakes, it must observe its own transaction gone instead of
// completing a read (and mutating metrics) for an aborted attempt.
func TestConcurrentAbortVsBlockedRead(t *testing.T) {
	e, col := newTestEngine(t, 1)
	writer := begin(t, e, core.Update, 10)
	if err := e.Write(writer, 1, 500); err != nil {
		t.Fatalf("Write: %v", err)
	}
	reader := begin(t, e, core.Query, 20)
	done := make(chan error, 1)
	go func() {
		_, err := e.Read(reader, 1)
		done <- err
	}()

	deadline := time.Now().Add(5 * time.Second)
	for col.Snapshot().Waits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("read never blocked on the uncommitted version")
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.Abort(reader); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	// The reader stays parked until the version resolves; commit the
	// writer to wake it.
	if err := e.Commit(writer); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, tso.ErrUnknownTxn) {
			t.Fatalf("blocked read returned %v, want ErrUnknownTxn", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked read never woke")
	}

	s := col.Snapshot()
	if got := s.Aborts(); got != 1 {
		t.Errorf("aborts = %d, want exactly 1 (no double count)", got)
	}
	if s.Commits != 1 {
		t.Errorf("commits = %d, want 1", s.Commits)
	}
	if n := e.Live(); n != 0 {
		t.Errorf("Live() = %d, want 0", n)
	}
}

// TestAbortCommitStressRace runs conflicting updates and queries that
// commit and abort concurrently (under -race via make check / CI). Every
// attempt must finish exactly once and no reader may stay blocked.
func TestAbortCommitStressRace(t *testing.T) {
	const (
		workers = 8
		iters   = 60
		objects = 4
		opsPer  = 4
	)
	e, col := newTestEngine(t, objects)
	var ts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				txn, err := e.Begin(core.Update, tsgen.Make(ts.Add(1), 0), core.SRSpec())
				if err != nil {
					t.Errorf("Begin: %v", err)
					return
				}
				alive := true
				for k := 0; k < opsPer && alive; k++ {
					obj := core.ObjectID(1 + rng.Intn(objects))
					if rng.Intn(2) == 0 {
						_, err = e.Read(txn, obj)
					} else {
						err = e.Write(txn, obj, core.Value(rng.Intn(1000)))
					}
					// Late writes abort internally; stop driving the
					// attempt once the engine finished it.
					alive = err == nil
				}
				if alive {
					if rng.Intn(4) == 0 {
						e.Abort(txn)
					} else {
						e.Commit(txn)
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()

	if n := e.Live(); n != 0 {
		t.Errorf("Live() = %d, want 0 after stress", n)
	}
	s := col.Snapshot()
	if total := s.Commits + s.Aborts(); total != workers*iters {
		t.Errorf("commits(%d) + aborts(%d) = %d, want %d: an attempt finished twice or never",
			s.Commits, s.Aborts(), total, workers*iters)
	}
	// No uncommitted version may survive the stress: every writer
	// resolved its versions on commit or abort.
	for id, o := range e.objects {
		o.mu.Lock()
		for _, v := range o.versions {
			if !v.committed {
				t.Errorf("object %d retains uncommitted version by txn %d", id, v.writer)
			}
			if len(v.waiters) != 0 {
				t.Errorf("object %d retains %d blocked readers", id, len(v.waiters))
			}
		}
		o.mu.Unlock()
	}
}

// TestRacingFinishersExactlyOnce races Commit against Abort for every
// transaction; the sharded registry's atomic check-and-delete must let
// exactly one finisher resolve the versions and count the outcome.
func TestRacingFinishersExactlyOnce(t *testing.T) {
	const sites = 8
	const perSite = 100
	e, col := newTestEngine(t, sites)
	var ts atomic.Int64
	var finished atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < sites; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			obj := core.ObjectID(1 + s)
			for i := 0; i < perSite; i++ {
				txn, err := e.Begin(core.Update, tsgen.Make(ts.Add(1), 0), core.UnboundedSpec())
				if err != nil {
					t.Errorf("Begin: %v", err)
					return
				}
				if err := e.Write(txn, obj, core.Value(i)); err != nil {
					continue
				}
				var inner sync.WaitGroup
				inner.Add(2)
				go func() {
					defer inner.Done()
					if e.Commit(txn) == nil {
						finished.Add(1)
					}
				}()
				go func() {
					defer inner.Done()
					if e.Abort(txn) == nil {
						finished.Add(1)
					}
				}()
				inner.Wait()
			}
		}(s)
	}
	wg.Wait()
	if n := e.Live(); n != 0 {
		t.Errorf("Live() = %d, want 0", n)
	}
	s := col.Snapshot()
	if got := s.Commits + s.AbortExplicit; got != finished.Load() {
		t.Errorf("commits+explicit aborts = %d, want %d (one finisher per txn)", got, finished.Load())
	}
}
