package mvto

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/epsilondb/epsilondb/internal/core"
	"github.com/epsilondb/epsilondb/internal/metrics"
	"github.com/epsilondb/epsilondb/internal/storage"
	"github.com/epsilondb/epsilondb/internal/tsgen"
	"github.com/epsilondb/epsilondb/internal/tso"
)

func newTestEngine(t *testing.T, n int) (*Engine, *metrics.Collector) {
	t.Helper()
	st := storage.NewStore(storage.Config{DefaultOIL: core.NoLimit, DefaultOEL: core.NoLimit})
	for i := 1; i <= n; i++ {
		if _, err := st.Create(core.ObjectID(i), core.Value(100*i)); err != nil {
			t.Fatal(err)
		}
	}
	col := &metrics.Collector{}
	return NewEngine(st, col, nil), col
}

func begin(t *testing.T, e *Engine, kind core.Kind, ts int64) core.TxnID {
	t.Helper()
	txn, err := e.Begin(kind, tsgen.Make(ts, 0), core.SRSpec())
	if err != nil {
		t.Fatal(err)
	}
	return txn
}

func TestBasicReadWrite(t *testing.T) {
	e, col := newTestEngine(t, 2)
	u := begin(t, e, core.Update, 10)
	if v, err := e.Read(u, 1); err != nil || v != 100 {
		t.Fatalf("read = %d,%v", v, err)
	}
	if v, err := e.WriteDelta(u, 2, 25); err != nil || v != 225 {
		t.Fatalf("write = %d,%v", v, err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	q := begin(t, e, core.Query, 20)
	if v, err := e.Read(q, 2); err != nil || v != 225 {
		t.Fatalf("read after commit = %d,%v", v, err)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
	if s := col.Snapshot(); s.Commits != 2 {
		t.Errorf("commits = %d", s.Commits)
	}
}

func TestLateReadServedFromOldVersion(t *testing.T) {
	// The defining MVTO behaviour (§5.1): a read older than the newest
	// committed write does NOT abort — it reads the old version.
	e, _ := newTestEngine(t, 1)
	q := begin(t, e, core.Query, 10) // older query
	u := begin(t, e, core.Update, 20)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	v, err := e.Read(q, 1)
	if err != nil {
		t.Fatalf("late read aborted under MVTO: %v", err)
	}
	if v != 100 {
		t.Errorf("late read = %d, want old version 100", v)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
}

func TestLateWriteInvalidatingReadAborts(t *testing.T) {
	e, _ := newTestEngine(t, 1)
	q := begin(t, e, core.Query, 20)
	if _, err := e.Read(q, 1); err != nil { // reads version none at ts 20
		t.Fatal(err)
	}
	u := begin(t, e, core.Update, 10) // older writer
	err := e.Write(u, 1, 150)
	ae, ok := tso.IsAbort(err)
	if !ok || ae.Reason != metrics.AbortLateWrite {
		t.Fatalf("want late-write abort, got %v", err)
	}
	if err := e.Commit(q); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBetweenVersionsAllowed(t *testing.T) {
	// A write whose predecessor version was never read by a younger
	// transaction succeeds even if newer versions exist.
	e, _ := newTestEngine(t, 1)
	u2 := begin(t, e, core.Update, 30)
	if err := e.Write(u2, 1, 300); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(u2); err != nil {
		t.Fatal(err)
	}
	u1 := begin(t, e, core.Update, 20) // writes between none and 30
	if err := e.Write(u1, 1, 200); err != nil {
		t.Fatalf("in-between write rejected: %v", err)
	}
	if err := e.Commit(u1); err != nil {
		t.Fatal(err)
	}
	// Readers see timestamp-consistent versions.
	q1 := begin(t, e, core.Query, 25)
	if v, _ := e.Read(q1, 1); v != 200 {
		t.Errorf("read@25 = %d, want 200", v)
	}
	q2 := begin(t, e, core.Query, 35)
	if v, _ := e.Read(q2, 1); v != 300 {
		t.Errorf("read@35 = %d, want 300", v)
	}
}

func TestReaderWaitsForUncommittedVisibleVersion(t *testing.T) {
	e, _ := newTestEngine(t, 1)
	u := begin(t, e, core.Update, 10)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	q := begin(t, e, core.Query, 20)
	got := make(chan core.Value, 1)
	go func() {
		v, err := e.Read(q, 1)
		if err != nil {
			got <- -1
			return
		}
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("read returned %d before writer resolved", v)
	case <-time.After(30 * time.Millisecond):
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 150 {
			t.Errorf("read = %d, want 150", v)
		}
	case <-time.After(time.Second):
		t.Fatal("reader never woke")
	}
}

func TestReaderWaitsThroughWriterAbort(t *testing.T) {
	e, _ := newTestEngine(t, 1)
	u := begin(t, e, core.Update, 10)
	if err := e.Write(u, 1, 150); err != nil {
		t.Fatal(err)
	}
	q := begin(t, e, core.Query, 20)
	got := make(chan core.Value, 1)
	go func() {
		v, _ := e.Read(q, 1)
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	if err := e.Abort(u); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 100 {
			t.Errorf("read after writer abort = %d, want 100", v)
		}
	case <-time.After(time.Second):
		t.Fatal("reader never woke after abort")
	}
}

func TestDoubleWriteSameTxn(t *testing.T) {
	e, _ := newTestEngine(t, 1)
	u := begin(t, e, core.Update, 10)
	if err := e.Write(u, 1, 200); err != nil {
		t.Fatal(err)
	}
	if v, err := e.WriteDelta(u, 1, 5); err != nil || v != 205 {
		t.Fatalf("second write = %d,%v", v, err)
	}
	if err := e.Commit(u); err != nil {
		t.Fatal(err)
	}
	q := begin(t, e, core.Query, 20)
	if v, _ := e.Read(q, 1); v != 205 {
		t.Errorf("value = %d, want 205", v)
	}
}

func TestVersionPruning(t *testing.T) {
	e, _ := newTestEngine(t, 1)
	for i := int64(1); i <= int64(DefaultMaxVersions+10); i++ {
		u := begin(t, e, core.Update, 10*i)
		if err := e.Write(u, 1, core.Value(i)); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(u); err != nil {
			t.Fatal(err)
		}
	}
	o := e.objects[1]
	o.mu.Lock()
	n := len(o.versions)
	o.mu.Unlock()
	if n > DefaultMaxVersions {
		t.Errorf("retained %d versions, bound %d", n, DefaultMaxVersions)
	}
	// A reader older than every retained version aborts (pruned).
	q := begin(t, e, core.Query, 1)
	_, err := e.Read(q, 1)
	ae, ok := tso.IsAbort(err)
	if !ok || ae.Reason != metrics.AbortLateRead {
		t.Errorf("pruned read: %v", err)
	}
}

func TestQueryCannotWrite(t *testing.T) {
	e, _ := newTestEngine(t, 1)
	q := begin(t, e, core.Query, 10)
	if err := e.Write(q, 1, 5); err == nil {
		t.Error("query write accepted")
	}
}

func TestUnknownTxnAndObject(t *testing.T) {
	e, _ := newTestEngine(t, 1)
	if _, err := e.Read(core.TxnID(99), 1); !errors.Is(err, tso.ErrUnknownTxn) {
		t.Errorf("unknown txn: %v", err)
	}
	u := begin(t, e, core.Update, 10)
	if _, err := e.Read(u, 42); err == nil {
		t.Error("missing object read succeeded")
	}
	u2 := begin(t, e, core.Update, 20)
	if err := e.Write(u2, 42, 1); err == nil {
		t.Error("missing object write succeeded")
	}
	if _, err := e.Begin(core.Kind(9), tsgen.Make(1, 0), core.SRSpec()); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestConcurrentTransfersConserve(t *testing.T) {
	e, _ := newTestEngine(t, 5)
	initial := core.Value(100 + 200 + 300 + 400 + 500)
	clock := &tsgen.LogicalClock{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			gen := tsgen.NewGenerator(w, clock)
			for i := 0; i < 40; i++ {
				for attempt := 0; attempt < 200; attempt++ {
					txn, err := e.Begin(core.Update, gen.Next(), core.SRSpec())
					if err != nil {
						t.Error(err)
						return
					}
					a := core.ObjectID(1 + rng.Intn(5))
					b := core.ObjectID(1 + (int(a)+rng.Intn(4))%5)
					amt := core.Value(1 + rng.Intn(20))
					if _, err := e.WriteDelta(txn, a, amt); err != nil {
						continue
					}
					if _, err := e.WriteDelta(txn, b, -amt); err != nil {
						continue
					}
					if err := e.Commit(txn); err == nil {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	q := begin(t, e, core.Query, 1<<40)
	var total core.Value
	for i := 1; i <= 5; i++ {
		v, err := e.Read(q, core.ObjectID(i))
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	if total != initial {
		t.Errorf("total = %d, want %d", total, initial)
	}
}
